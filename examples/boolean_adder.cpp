/**
 * @file
 * Standalone TFHE on the HEAP substrate (Section VII-A): a 4-bit
 * encrypted ripple-carry adder built from bootstrapped boolean gates.
 * Every gate output is a fresh ciphertext — the circuit composes to
 * any depth, which is exactly what the BlindRotate datapath buys.
 *
 * Build & run:  ./build/examples/boolean_adder
 */

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "tfhe/gates.h"

int
main()
{
    using namespace heap;
    using namespace heap::tfhe;

    BooleanContext ctx{BooleanParams{}, 2026};
    std::printf("boolean TFHE context: ring N=%zu, LWE n_t=%zu\n\n",
                ctx.params().ringN, ctx.params().lweDim);

    auto encryptNibble = [&](int v) {
        std::vector<lwe::LweCiphertext> bits;
        for (int i = 0; i < 4; ++i) {
            bits.push_back(ctx.encrypt((v >> i) & 1));
        }
        return bits;
    };
    auto fullAdder = [&](const lwe::LweCiphertext& a,
                         const lwe::LweCiphertext& b,
                         const lwe::LweCiphertext& cin) {
        const auto axb = ctx.gateXor(a, b);
        const auto sum = ctx.gateXor(axb, cin);
        const auto carry =
            ctx.gateOr(ctx.gateAnd(a, b), ctx.gateAnd(axb, cin));
        return std::pair{sum, carry};
    };

    for (const auto [x, y] : {std::pair{3, 5}, {9, 7}, {15, 15},
                              {12, 1}}) {
        const auto a = encryptNibble(x);
        const auto b = encryptNibble(y);
        auto carry = ctx.encrypt(false);

        Timer t;
        const size_t boots0 = ctx.bootstrapCount();
        std::vector<lwe::LweCiphertext> sum;
        for (int i = 0; i < 4; ++i) {
            auto [s, c] = fullAdder(a[i], b[i], carry);
            sum.push_back(std::move(s));
            carry = std::move(c);
        }
        int result = 0;
        for (int i = 0; i < 4; ++i) {
            result |= static_cast<int>(ctx.decrypt(sum[i])) << i;
        }
        result |= static_cast<int>(ctx.decrypt(carry)) << 4;
        std::printf("%2d + %2d = %2d encrypted (expected %2d), "
                    "%zu gate bootstraps in %.0f ms\n",
                    x, y, result, x + y,
                    ctx.bootstrapCount() - boots0, t.millis());
    }
    std::printf("\nEach gate = one BlindRotate + Extract + LWE "
                "KeySwitch — the HEAP functional units of Section IV "
                "running the paper's other scheme end to end.\n");
    return 0;
}
