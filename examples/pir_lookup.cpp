/**
 * @file
 * Encrypted database lookup (PIR) served as a tenant class: a client
 * encrypts a database index as per-dimension RGSW selection bits, a
 * 2-pod ServiceCluster folds the plaintext database through CMux
 * trees to one RLWE answer, and the client decodes the EXACT entry —
 * the server never sees the index, and the cluster serves the lookup
 * next to bootstrap traffic with the same admission control and
 * failover.
 *
 * Build & run:  ./build/examples/pir_lookup
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "ckks/evaluator.h"
#include "math/primes.h"
#include "serve/cluster.h"

int
main()
{
    using namespace heap;

    // ---- Protocol parameters: 64 entries factored 8 x 8 -----------
    const size_t n = 64;
    pir::PirParams pp;
    pp.basis = std::make_shared<math::RnsBasis>(
        n, math::generateNttPrimes(30, n, 2));
    pp.limbs = 2;
    pp.dims = {8, 8};
    pp.entries = 64;
    pp.payloadCoeffs = 4;
    pp.scaleBits = 35;
    pp.payloadBits = 16;
    pp.gadget = rlwe::GadgetParams{.baseBits = 5, .digitsPerLimb = 6};
    pp.validate();

    // ---- Server side: the plaintext database ----------------------
    std::vector<std::vector<int64_t>> db;
    for (size_t i = 0; i < pp.entries; ++i) {
        // Entry i holds (i, i*i, -7i, 1000+i): anything recognizable.
        db.push_back({static_cast<int64_t>(i),
                      static_cast<int64_t>(i * i),
                      -7 * static_cast<int64_t>(i),
                      1000 + static_cast<int64_t>(i)});
    }
    const pir::PirServer server(pp, db);
    std::printf("database: %zu entries, dims 8x8, query carries %zu "
                "RGSW bits (budget floor %.1f bits)\n\n",
                pp.entries, pp.queryBitCount(),
                pp.answerBudgetBits());

    // ---- Client side: key + query ---------------------------------
    Rng rng(7);
    const auto sk = rlwe::SecretKey::sampleTernary(pp.basis, rng);
    const pir::PirClient client(pp, sk);

    // ---- A serving cluster with the lookup tenant class -----------
    ckks::CkksParams cp;
    cp.n = 64;
    cp.limbBits = 30;
    cp.levels = 2;
    cp.auxLimbs = 1;
    cp.scale = std::pow(2.0, 30);
    cp.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    cp.secretHamming = 16;
    ckks::Context ctx(cp, 7);
    const auto brGadget =
        rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};
    boot::DistributedBootstrapper dist0(ctx, 1, brGadget);
    boot::DistributedBootstrapper dist1(dist0, 1);

    serve::TenantRegistry reg;
    reg.registerTenant(serve::TenantSpec{.id = 1, .name = "alice"});
    serve::ClusterConfig ccfg;
    ccfg.pirServer = &server;
    ccfg.pirPod.workers = 2;
    serve::ServiceCluster cluster({&dist0, &dist1}, reg, ccfg);

    // ---- Look up a few indices through the cluster ----------------
    for (const size_t index : {size_t{3}, size_t{42}, size_t{63}}) {
        const auto query = std::make_shared<const pir::PirQuery>(
            client.makeQuery(index, rng));
        const auto ticket = cluster.submitPir(1, query);
        const rlwe::Ciphertext answer = ticket->wait();
        const std::vector<int64_t> got = client.decode(answer);
        const bool exact = got == db[index];
        std::printf("index %2zu -> (%lld, %lld, %lld, %lld)  "
                    "served by pod %d, %s\n",
                    index, static_cast<long long>(got[0]),
                    static_cast<long long>(got[1]),
                    static_cast<long long>(got[2]),
                    static_cast<long long>(got[3]),
                    ticket->report().servedPod,
                    exact ? "exact" : "MISMATCH");
    }
    cluster.shutdown();
    return 0;
}
