/**
 * @file
 * The bootstrap serving runtime end to end: a BootstrapService wraps
 * the Section V distributed bootstrapper (primary + 2 secondaries)
 * and serves TWO encrypted logistic-regression trainers concurrently
 * — each trainer plugs the service in as its refresher, so when
 * training exhausts the level budget, the weight ciphertexts from
 * both clients are decomposed into blind-rotate work items and packed
 * into shared batches (vLLM-style continuous batching, applied to
 * FHE bootstrapping).
 *
 * Build & run:  ./build/examples/bootstrap_service
 */

#include <cmath>
#include <cstdio>
#include <thread>

#include "apps/logreg.h"
#include "boot/distributed.h"
#include "common/timer.h"
#include "serve/service.h"

int
main()
{
    using namespace heap;
    using namespace heap::apps;

    const size_t features = 8, batch = 4;
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 5;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    ckks::Context ctx(p, 99);

    std::printf("generating distributed bootstrap keys "
                "(primary + 2 secondaries)...\n");
    boot::DistributedBootstrapper dist(
        ctx, 2, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    // The shared serving runtime: 2 dispatch workers, batches capped
    // below N so refreshes from different trainers can share one.
    serve::ServiceConfig scfg;
    scfg.workers = 2;
    scfg.maxBatchItems = 48;
    serve::BootstrapService svc(dist, scfg);

    // Two tenants, each training on its own synthetic dataset. The
    // refresher hook routes every level-exhaustion refresh through
    // the shared service instead of a private bootstrapper.
    Rng rngA(3), rngB(17);
    const auto dataA = makeSyntheticMnist38(batch, features, rngA);
    const auto dataB = makeSyntheticMnist38(batch, features, rngB);
    EncryptedLogisticRegression tenantA(ctx, features, batch, nullptr,
                                        /*sigmoidDegree=*/1);
    EncryptedLogisticRegression tenantB(ctx, features, batch, nullptr,
                                        /*sigmoidDegree=*/1);
    for (EncryptedLogisticRegression* t : {&tenantA, &tenantB}) {
        t->setRefresher([&svc](const ckks::Ciphertext& w) {
            return svc.submit(w)->wait();
        });
    }
    const auto batchA = tenantA.encryptBatch(dataA, 0);
    const auto batchB = tenantB.encryptBatch(dataB, 0);

    std::printf("training two tenants concurrently (3 GD iterations "
                "each; levels force mid-training refreshes)...\n");
    Timer t;
    std::thread a([&] { tenantA.train(batchA, 3, 1.0); });
    std::thread b([&] { tenantB.train(batchB, 3, 1.0); });
    a.join();
    b.join();
    std::printf("done in %.1f s — tenant A refreshed %zu time(s), "
                "tenant B %zu time(s)\n\n",
                t.seconds(), tenantA.bootstrapCount(),
                tenantB.bootstrapCount());

    const serve::ServiceMetrics m = svc.metrics();
    std::printf("service metrics:\n"
                "  completed            %llu\n"
                "  batches              %llu\n"
                "  batch occupancy      %.2f distinct requests/batch\n"
                "  mean batch items     %.1f\n"
                "  latency p50/p99      %.0f / %.0f ms\n"
                "  min returned budget  %.1f bits (guard trips: %llu)\n",
                static_cast<unsigned long long>(m.completed),
                static_cast<unsigned long long>(m.batches),
                m.batchOccupancy, m.meanBatchItems, m.p50Ms, m.p99Ms,
                m.minReturnedBudgetBits,
                static_cast<unsigned long long>(m.guardTrips));

    std::printf("\nstaged pipeline (front = modswitch+extract, rotate "
                "= batch dispatch,\nfinish = repack+rescale):\n");
    for (const serve::StageMetrics& s : m.pipeline.stages) {
        std::printf("  %-6s occupancy %.2f  tasks %llu  stall %.0f ms  "
                    "max queue %zu\n",
                    s.name, s.occupancy,
                    static_cast<unsigned long long>(s.tasks), s.stallMs,
                    s.maxQueueDepth);
    }
    std::printf("  stage overlap %.2f (above 1.0 = stages genuinely "
                "ran concurrently)\n",
                m.pipeline.overlap);

    const auto wA = tenantA.decryptWeights();
    const auto wB = tenantB.decryptWeights();
    std::printf("\ntenant A w[0..3]: %.4f %.4f %.4f %.4f\n", wA[0],
                wA[1], wA[2], wA[3]);
    std::printf("tenant B w[0..3]: %.4f %.4f %.4f %.4f\n", wB[0],
                wB[1], wB[2], wB[3]);
    std::printf("\nBoth trainings stayed correct while sharing one "
                "bootstrap pod — see DESIGN.md \"Serving layer\".\n");
    return 0;
}
