/**
 * @file
 * Noise-budget walkthrough: the analytic estimator (ckks/noise.h)
 * predicts the phase-error growth of each primitive and the
 * measurement confirms it — the tooling used to pick gadget bases and
 * level budgets (the d/h trade of Section III-C).
 *
 * Build & run:  ./build/examples/noise_budget
 */

#include <cmath>
#include <cstdio>

#include "ckks/evaluator.h"
#include "ckks/noise.h"
#include "common/table.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    CkksParams p;
    p.n = 512;
    p.limbBits = 30;
    p.levels = 4;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    Context ctx(p, 314);
    Evaluator ev(ctx);
    NoiseEstimator est(ctx);
    ctx.makeRotationKeys(std::array<int64_t, 1>{1});

    Rng rng(15);
    std::vector<Complex> z(p.n / 2), z2(p.n / 2);
    for (size_t i = 0; i < z.size(); ++i) {
        z[i] = Complex(2 * rng.uniformReal() - 1,
                       2 * rng.uniformReal() - 1);
        z2[i] = Complex(2 * rng.uniformReal() - 1,
                        2 * rng.uniformReal() - 1);
    }
    const auto c1 = ctx.encrypt(std::span<const Complex>(z));
    const auto c2 = ctx.encrypt(std::span<const Complex>(z2));

    std::vector<Complex> zsum(z.size()), zprod(z.size()), zrot(z.size());
    for (size_t i = 0; i < z.size(); ++i) {
        zsum[i] = z[i] + z2[i];
        zprod[i] = z[i] * z2[i];
        zrot[i] = z[(i + 1) % z.size()];
    }

    const double fresh = est.freshPublic();
    const double rms =
        est.messageRms(std::sqrt(2.0 / 3.0), p.scale);

    Table t({"Operation", "Predicted std", "Measured std",
             "bits of budget used"});
    auto row = [&](const char* name, double pred, double meas,
                   double scaleBits) {
        t.addRow({name, Table::num(pred, 1), Table::num(meas, 1),
                  Table::num(std::log2(std::max(meas, 1.0)), 1) + " / "
                      + Table::num(scaleBits, 0)});
    };
    const double sb = std::log2(p.scale);
    row("fresh encrypt", fresh, est.measure(c1, z), sb);
    row("add", est.afterAdd(fresh, fresh),
        est.measure(ev.add(c1, c2), zsum), sb);
    // The unrescaled product sits at scale^2 (60 bits of budget).
    row("multiply+relin", est.afterMultiply(fresh, fresh, rms, rms),
        est.measure(ev.multiply(c1, c2), zprod), 2 * sb);
    row("rotate (hybrid KS)", est.afterRotate(fresh),
        est.measure(ev.rotate(c1, 1), zrot), sb);
    t.print();

    std::printf("\nKey-switch noise by method at this parameter set:\n"
                "  digit gadget (B=2^9, d=4): %.0f\n"
                "  hybrid (special prime)   : %.1f\n"
                "The evaluator auto-selects hybrid switching because "
                "an auxiliary prime is present.\n",
                est.gadgetNoise(ctx.maxLevel(), p.gadget),
                est.hybridNoise(ctx.maxLevel()));
    return 0;
}
