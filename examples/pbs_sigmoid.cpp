/**
 * @file
 * TFHE programmable bootstrapping evaluating a sigmoid lookup table —
 * the scheme-switching motivation of Section III-A: non-linear
 * functions that cost many CKKS levels are one BlindRotate in TFHE
 * (the function f is encoded in the test polynomial).
 *
 * Build & run:  ./build/examples/pbs_sigmoid
 */

#include <cmath>
#include <cstdio>

#include "math/modarith.h"
#include "math/primes.h"
#include "tfhe/blind_rotate.h"

int
main()
{
    using namespace heap;

    const size_t n = 256;       // TFHE ring dimension
    const size_t lweDim = 32;   // LWE mask length n_t
    Rng rng(42);

    const auto basis = std::make_shared<math::RnsBasis>(
        n, math::generateNttPrimes(30, n, 2));
    const uint64_t q = basis->modulus(0);

    const auto rlweKey = rlwe::SecretKey::sampleTernary(basis, rng);
    const auto lweKey = lwe::LweSecretKey::sampleTernary(lweDim, rng);
    const rlwe::GadgetParams gadget{.baseBits = 8, .digitsPerLimb = 4};
    std::printf("generating %zu blind-rotate key pairs...\n", lweDim);
    const auto brk =
        tfhe::makeBlindRotateKey(rlweKey, lweKey.coeffs, gadget, rng);

    // Fixed-point layout: x in [-4, 4) at delta = q/16. The LUT of a
    // blind rotation must satisfy F(u+N) = -F(u) (negacyclic), which
    // a sigmoid does not; the standard fix shifts the input by +4 so
    // the working domain [0, 8) maps onto phases [0, N) only.
    const double delta = static_cast<double>(q) / 16.0;
    const int64_t offset = static_cast<int64_t>(std::llround(4.0 * delta));
    auto sigmoidLut = [&](uint64_t u) {
        // u in [0, N) indexes the shifted domain: x = u/delta' - 4.
        const double x = static_cast<double>(u) * 16.0
                             / static_cast<double>(2 * n)
                         - 4.0;
        const double sig = 1.0 / (1.0 + std::exp(-x));
        return static_cast<int64_t>(std::llround(sig * delta));
    };

    std::printf("\n  x      sigmoid(x)   PBS result   |error|\n");
    const lwe::LweSecretKey ringKey{rlweKey.coeffs()};
    double worst = 0;
    for (double x : {-3.5, -2.0, -1.0, -0.25, 0.0, 0.5, 1.5, 3.0}) {
        auto ct = lwe::lweEncrypt(
            static_cast<int64_t>(std::llround(x * delta)), lweKey, q,
            rng);
        // Homomorphic domain shift: add the public offset to b.
        ct.b = math::addMod(ct.b, math::fromCentered(offset, q), q);
        const auto out = tfhe::programmableBootstrap(ct, sigmoidLut,
                                                     brk, basis, 2);
        const double got =
            static_cast<double>(lwe::lweDecrypt(out, ringKey)) / delta;
        const double want = 1.0 / (1.0 + std::exp(-x));
        worst = std::max(worst, std::abs(got - want));
        std::printf("%6.2f   %.6f     %.6f     %.4f\n", x, want, got,
                    std::abs(got - want));
    }
    std::printf("\nmax LUT error: %.4f (quantization = 2N buckets; the "
                "output ciphertext is *fresh* — bootstrapping and the "
                "non-linear function came for the price of one "
                "BlindRotate)\n",
                worst);
    return 0;
}
