/**
 * @file
 * Private table lookup with a CMux tree — the standalone-TFHE
 * operation set of Section VII-A in action: RGSW-encrypted selector
 * bits steer RLWE-encrypted values through multiplexers without the
 * server learning the index.
 *
 * Build & run:  ./build/examples/cmux_lookup
 */

#include <cstdio>

#include "math/primes.h"
#include "tfhe/blind_rotate.h"

int
main()
{
    using namespace heap;

    const size_t n = 128;
    Rng rng(99);
    const auto basis = std::make_shared<math::RnsBasis>(
        n, math::generateNttPrimes(30, n, 2));
    const auto sk = rlwe::SecretKey::sampleTernary(basis, rng);
    const rlwe::GadgetParams gadget{.baseBits = 5, .digitsPerLimb = 6};

    // A table of four encrypted values.
    const int64_t table[4] = {1111111, -2222222, 3333333, -4444444};
    std::vector<rlwe::Ciphertext> values;
    for (const int64_t v : table) {
        std::vector<int64_t> m(n, 0);
        m[0] = v;
        values.push_back(
            rlwe::encrypt(sk, math::rnsFromSigned(basis, 2, m), rng));
    }

    std::printf("table: {%lld, %lld, %lld, %lld}\n\n",
                static_cast<long long>(table[0]),
                static_cast<long long>(table[1]),
                static_cast<long long>(table[2]),
                static_cast<long long>(table[3]));

    for (int index = 0; index < 4; ++index) {
        // The client encrypts the selector bits as RGSW ciphertexts.
        const int b0 = index & 1, b1 = (index >> 1) & 1;
        const auto selLo = rlwe::rgswEncryptConstant(sk, b0, gadget, rng);
        const auto selHi = rlwe::rgswEncryptConstant(sk, b1, gadget, rng);

        // The server evaluates the CMux tree obliviously.
        const auto r01 = tfhe::cmux(selLo, values[0], values[1]);
        const auto r23 = tfhe::cmux(selLo, values[2], values[3]);
        const auto out = tfhe::cmux(selHi, r01, r23);

        const auto dec = rlwe::decryptSigned(out, sk);
        std::printf("index %d -> %9lld (expected %9lld, error %lld)\n",
                    index, static_cast<long long>(dec[0]),
                    static_cast<long long>(table[index]),
                    static_cast<long long>(dec[0] - table[index]));
    }
    std::printf("\nEach lookup is two levels of CMux (one external "
                "product each) — the same primitive BlindRotate "
                "iterates n_t times (Algorithm 1).\n");
    return 0;
}
