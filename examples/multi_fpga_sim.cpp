/**
 * @file
 * Walkthrough of the multi-FPGA system model (Section V): how the
 * scheme-switching bootstrap scales with the number of FPGAs and the
 * n_br packing knob, and where the time goes (compute vs 100G
 * communication vs repacking).
 *
 * Build & run:  ./build/examples/multi_fpga_sim
 */

#include <cstdio>

#include "common/table.h"
#include "hw/bootstrap_model.h"
#include "hw/timeline.h"

int
main()
{
    using namespace heap;
    using namespace heap::hw;

    const FpgaConfig cfg;
    const HeapParams params;

    std::printf("HEAP system model: N=2^13, logQ=216, n_t=500, "
                "100G inter-FPGA links, %zu-wide FU array @ %.0f MHz\n\n",
                cfg.modFUs, cfg.kernelClockHz / 1e6);

    // FPGA scaling at full packing.
    Table scale({"FPGAs", "BlindRotate (ms)", "Comm (ms)",
                 "Finish (ms)", "Total (ms)", "Speedup vs 1"});
    const double base = BootstrapModel(cfg, params, 1)
                            .bootstrap(4096)
                            .totalMs;
    for (const size_t f : {1u, 2u, 4u, 8u, 16u}) {
        const BootstrapModel bm(cfg, params, f);
        const auto b = bm.bootstrap(4096);
        scale.addRow({std::to_string(f), Table::num(b.blindRotateMs, 3),
                      Table::num(b.commMs, 3), Table::num(b.finishMs, 3),
                      Table::num(b.totalMs, 3),
                      Table::speedup(base / b.totalMs)});
    }
    std::printf("Fully packed bootstrap (4096 slots) vs FPGA count —\n"
                "the paper's FAB baseline gained only ~20%% from 8 "
                "FPGAs; HEAP's independent blind rotations scale "
                "almost linearly:\n");
    scale.print();

    // The n_br knob (sparse packing).
    Table knob({"Packed slots (n_br)", "LWE cts/FPGA", "Total (ms)"});
    const BootstrapModel bm(cfg, params, 8);
    for (const size_t s : {4096u, 2048u, 1024u, 512u, 256u}) {
        knob.addRow({std::to_string(s), std::to_string((s + 7) / 8),
                     Table::num(bm.bootstrap(s).totalMs, 3)});
    }
    std::printf("\nSparse packing (Section V's n_br state-machine "
                "parameter; LR uses 256, ResNet-20 uses 1024):\n");
    knob.print();

    std::printf("\nKey traffic per bootstrap: %.2f GB of blind-rotate "
                "keys vs ~%.0f GB conventional (%.0fx less).\n",
                bm.keyReadBytes() / 1e9,
                bm.conventionalKeyReadBytes() / 1e9,
                bm.conventionalKeyReadBytes() / bm.keyReadBytes());

    // Section V schedule as a Gantt chart: M=ModSwitch, D=distribute,
    // #=BlindRotate, R=repack, >/<=100G link traffic.
    std::printf("\nFully packed bootstrap schedule (8 FPGAs):\n");
    const auto tl = buildBootstrapTimeline(bm, 4096);
    std::fputs(tl.render().c_str(), stdout);
    std::printf("No FPGA sits idle during the BlindRotate window and "
                "the links stay far from saturation — the paper's "
                "\"communication is not the bottleneck\" claim.\n");
    return 0;
}
