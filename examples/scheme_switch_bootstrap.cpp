/**
 * @file
 * The paper's headline operation end to end: a CKKS ciphertext
 * exhausts its levels, switches schemes (Extract -> BlindRotate ->
 * repack, Algorithm 2), and comes back at the top level — then keeps
 * computing. Also demonstrates the multi-worker fan-out (the paper's
 * multi-FPGA parallelism mapped to threads) and prints the step
 * breakdown mirrored after Section VI-E.
 *
 * Build & run:  ./build/examples/scheme_switch_bootstrap
 */

#include <cmath>
#include <cstdio>

#include "boot/scheme_switch.h"
#include "common/timer.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    CkksParams params;
    params.n = 1 << 6; // demo-sized ring (see DESIGN.md)
    params.levels = 2;
    params.auxLimbs = 1;
    params.limbBits = 30;
    params.scale = std::pow(2.0, 30);
    params.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    params.secretHamming = 16;

    Context ctx(params, 7);
    Evaluator ev(ctx);

    std::printf("generating bootstrapping keys (brk: %zu RGSW pairs, "
                "packing: %d automorphism keys)...\n",
                params.n, 6);
    Timer keyTimer;
    boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
    std::printf("keys ready in %.2f s (%.1f MB)\n\n", keyTimer.seconds(),
                static_cast<double>(boot.keyBytes()) / 1e6);

    // Encrypt, square once (burn a level), then bootstrap.
    std::vector<Complex> z;
    for (size_t i = 0; i < params.n / 2; ++i) {
        z.emplace_back(0.7 * std::cos(0.4 * static_cast<double>(i)),
                       0.3 * std::sin(0.2 * static_cast<double>(i)));
    }
    Ciphertext ct = ctx.encrypt(std::span<const Complex>(z));
    ct = ev.multiplyRescale(ct, ct);
    std::printf("after squaring: level %zu of %zu -> bootstrapping\n",
                ct.level(), ctx.maxLevel());

    Timer bootTimer;
    Ciphertext fresh = boot.bootstrap(ct);
    const double total = bootTimer.millis();
    const auto& t = boot.lastStepTimes();
    std::printf("bootstrap done in %.0f ms (level %zu restored)\n",
                total, fresh.level());
    std::printf("  steps 1-2 ModulusSwitch : %8.2f ms\n"
                "  step 3 Extract+BlindRot : %8.2f ms  (%.0f%%)\n"
                "  step 3 repack           : %8.2f ms\n"
                "  steps 4-5 finish        : %8.2f ms\n",
                t.modSwitchMs, t.blindRotateMs,
                100.0 * t.blindRotateMs / total, t.repackMs, t.finishMs);
    std::printf("(paper, N=2^13 on 8 FPGAs: 0.0025 / 1.3303 / 0.1672 "
                "ms — BlindRotate dominates there too)\n\n");

    // Verify the message survived, then keep computing on it.
    const auto back = ctx.decrypt(fresh);
    double worst = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        worst = std::max(worst, std::abs(back[i] - z[i] * z[i]));
    }
    std::printf("max slot error vs z^2 after bootstrap: %.2e\n", worst);

    Ciphertext again = ev.multiplyRescale(fresh, fresh);
    const auto z4 = ctx.decrypt(again);
    double worst4 = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        worst4 = std::max(worst4, std::abs(z4[i] - std::pow(z[i], 4)));
    }
    std::printf("computation continues: z^4 error %.2e\n\n", worst4);

    // Parallel fan-out: the blind rotations are data-independent.
    for (const size_t workers : {size_t{1}, size_t{4}}) {
        boot.setWorkers(workers);
        Ciphertext in = ct;
        Timer w;
        (void)boot.bootstrap(in);
        std::printf("workers=%zu: bootstrap %.0f ms "
                    "(bit-identical output)\n",
                    workers, w.millis());
    }
    return 0;
}
