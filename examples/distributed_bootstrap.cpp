/**
 * @file
 * The Section V system, functionally: one primary and seven secondary
 * nodes bootstrap a CKKS ciphertext by exchanging *serialized*
 * ciphertext batches over byte-counting links — the same protocol the
 * paper runs over 100G Ethernet between eight FPGAs.
 *
 * Build & run:  ./build/examples/distributed_bootstrap
 */

#include <cmath>
#include <cstdio>

#include "boot/distributed.h"
#include "ckks/evaluator.h"
#include "common/timer.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    Context ctx(p, 7);
    Evaluator ev(ctx);

    std::printf("deploying 1 primary + 7 secondary nodes "
                "(shared keys, serialized links)...\n");
    boot::DistributedBootstrapper cluster(
        ctx, 7, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    std::vector<Complex> z;
    for (size_t i = 0; i < p.n / 2; ++i) {
        z.emplace_back(0.6 * std::cos(0.25 * static_cast<double>(i)),
                       0.4 * std::sin(0.15 * static_cast<double>(i)));
    }
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    ev.dropToLevel(ct, 1);

    Timer t;
    const auto fresh = cluster.bootstrap(ct);
    const double ms = t.millis();

    const auto back = ctx.decrypt(fresh);
    double worst = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        worst = std::max(worst, std::abs(back[i] - z[i]));
    }
    const auto& traffic = cluster.lastTraffic();
    std::printf("\nbootstrap complete in %.0f ms "
                "(level %zu restored, max slot error %.1e)\n",
                ms, fresh.level(), worst);
    std::printf("per-node share: each secondary blind-rotated %zu LWE "
                "ciphertexts\n",
                cluster.node(0).processed());
    std::printf("link traffic: %.1f KB of LWE batches out, %.1f KB of "
                "accumulators back (%zu batches)\n",
                static_cast<double>(traffic.lweBytesOut) / 1e3,
                static_cast<double>(traffic.accBytesIn) / 1e3,
                traffic.batches);
    std::printf("\nAt paper scale the same protocol moves 4096 LWE "
                "ciphertexts (~2.3 KB each packed) across 100G links, "
                "fully overlapped with compute — see "
                "examples/multi_fpga_sim for the timing model.\n");
    return 0;
}
