/**
 * @file
 * Encrypted logistic-regression training (the paper's Section VI-F.1
 * workload, demo-sized): the HELR pipeline runs under CKKS, exhausts
 * its levels, is refreshed by the scheme-switching bootstrapper, and
 * keeps training — with the plaintext pipeline as the oracle.
 *
 * Build & run:  ./build/examples/lr_training
 */

#include <cmath>
#include <cstdio>

#include "apps/logreg.h"
#include "common/timer.h"

int
main()
{
    using namespace heap;
    using namespace heap::apps;

    // Demo geometry: 8 features x 4 samples fills the 32-slot ring.
    const size_t features = 8, batch = 4;
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 5;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    ckks::Context ctx(p, 99);

    std::printf("generating scheme-switching bootstrap keys...\n");
    boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    Rng rng(3);
    const auto data = makeSyntheticMnist38(batch, features, rng);
    EncryptedLogisticRegression enc(ctx, features, batch, &boot,
                                    /*sigmoidDegree=*/1);
    const auto batchCt = enc.encryptBatch(data, 0);

    std::printf("training 3 encrypted GD iterations (levels force a "
                "bootstrap mid-training)...\n");
    Timer t;
    enc.train(batchCt, 3, 1.0);
    std::printf("done in %.1f s with %zu scheme-switching "
                "bootstrap(s)\n\n",
                t.seconds(), enc.bootstrapCount());

    // Plaintext oracle with the identical pipeline.
    std::vector<double> w(features, 0.0);
    for (int it = 0; it < 3; ++it) {
        std::vector<double> grad(features, 0.0);
        for (size_t b = 0; b < batch; ++b) {
            double u = 0;
            for (size_t f = 0; f < features; ++f) {
                u += w[f] * data.x[b][f] * data.y[b];
            }
            const double g = 0.5 - 0.25 * u;
            for (size_t f = 0; f < features; ++f) {
                grad[f] += g * data.y[b] * data.x[b][f];
            }
        }
        for (size_t f = 0; f < features; ++f) {
            w[f] += grad[f] / static_cast<double>(batch);
        }
    }

    const auto wEnc = enc.decryptWeights();
    std::printf("feature   plaintext w   encrypted w   |diff|\n");
    double worst = 0;
    for (size_t f = 0; f < features; ++f) {
        worst = std::max(worst, std::abs(wEnc[f] - w[f]));
        std::printf("  %2zu      %9.5f     %9.5f     %.4f\n", f, w[f],
                    wEnc[f], std::abs(wEnc[f] - w[f]));
    }
    std::printf("\nmax deviation %.4f — encrypted training tracks the "
                "plaintext pipeline across the bootstrap.\n"
                "At full scale this pipeline reaches ~97%%+ accuracy "
                "(run bench/accuracy_lr).\n",
                worst);
    return 0;
}
