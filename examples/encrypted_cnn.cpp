/**
 * @file
 * Encrypted CNN inference — the functional, demo-sized face of the
 * paper's ResNet-20 workload (Section VI-F.2): a convolution (as a
 * homomorphic BSGS linear transform, the same machinery Lee et al.'s
 * multiplexed convolutions use), a polynomial activation, and a dense
 * classifier head, all on ciphertext.
 *
 * Build & run:  ./build/examples/encrypted_cnn
 */

#include <cmath>
#include <cstdio>

#include "apps/cnn.h"
#include "common/timer.h"

int
main()
{
    using namespace heap;
    using namespace heap::apps;

    ckks::CkksParams p;
    p.n = 128; // 64 slots = one 8x8 image
    p.limbBits = 30;
    p.levels = 4;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    ckks::Context ctx(p, 2024);

    Rng rng(5);
    const auto calib = makeSyntheticMnist38(128, 64, rng);
    SmallCnn cnn(8, 2);
    cnn.calibrate(calib);

    std::printf("building homomorphic conv + dense transforms "
                "(BSGS rotations)...\n");
    EncryptedCnn enc(ctx, cnn);

    const auto test = makeSyntheticMnist38(16, 64, rng);
    size_t encCorrect = 0, plainCorrect = 0, agree = 0;
    double totalMs = 0;
    std::printf("\n img   plain logits          encrypted logits      "
                "label\n");
    for (size_t i = 0; i < test.size(); ++i) {
        Timer t;
        const auto out = enc.infer(enc.encryptImage(test.x[i]));
        totalMs += t.millis();
        const auto logits = enc.decryptLogits(out);
        const auto want = cnn.infer(test.x[i]);
        const int encCls = logits[0] > logits[1] ? 1 : -1;
        const int plainCls = cnn.classify(test.x[i]);
        encCorrect += encCls == test.y[i];
        plainCorrect += plainCls == test.y[i];
        agree += encCls == plainCls;
        if (i < 6) {
            std::printf(" %2zu   (%+.4f, %+.4f)   (%+.4f, %+.4f)    "
                        "%+d\n",
                        i, want[0], want[1], logits[0], logits[1],
                        test.y[i]);
        }
    }
    std::printf("\nencrypted accuracy %zu/%zu, plaintext %zu/%zu, "
                "agreement %zu/%zu\n",
                encCorrect, test.size(), plainCorrect, test.size(),
                agree, test.size());
    std::printf("avg encrypted inference: %.1f ms (conv + square + "
                "dense, %zu levels)\n",
                totalMs / static_cast<double>(test.size()),
                enc.levelsPerInference());
    std::printf("\nAt ResNet-20 scale this pipeline repeats ~20 conv "
                "layers deep and bootstraps between blocks — the "
                "workload of Table VII (run bench/table7_resnet).\n");
    return 0;
}
