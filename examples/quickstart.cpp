/**
 * @file
 * Quickstart: encrypt a vector under CKKS, compute on it (add,
 * multiply, rotate), and decrypt. Mirrors the first steps any HEAP
 * user takes before touching bootstrapping.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cmath>
#include <cstdio>

#include "ckks/evaluator.h"

int
main()
{
    using namespace heap;
    using namespace heap::ckks;

    // Small, fast parameters (demo-sized; see DESIGN.md's parameter
    // policy — correctness is parameter-generic).
    CkksParams params;
    params.n = 1 << 10;           // ring dimension
    params.levels = 4;            // multiplicative budget
    params.limbBits = 30;
    params.scale = std::pow(2.0, 30);
    params.gadget = rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

    Context ctx(params, /*seed=*/2024);
    Evaluator ev(ctx);
    ctx.makeRotationKeys(std::array<int64_t, 2>{1, -1});

    // Encrypt two vectors of 512 slots.
    std::vector<double> a(512), b(512);
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = std::sin(0.01 * static_cast<double>(i));
        b[i] = 0.5 + 0.001 * static_cast<double>(i);
    }
    const Ciphertext ctA = ctx.encrypt(std::span<const double>(a));
    const Ciphertext ctB = ctx.encrypt(std::span<const double>(b));
    std::printf("encrypted %zu slots at level %zu, scale 2^%.0f\n",
                ctA.slots, ctA.level(), std::log2(ctA.scale));

    // a + b, a * b (with relinearize + rescale), rotate(a, 1).
    const auto sum = ctx.decrypt(ev.add(ctA, ctB));
    const auto prod = ctx.decrypt(ev.multiplyRescale(ctA, ctB));
    const auto rot = ctx.decrypt(ev.rotate(ctA, 1));

    double worstAdd = 0, worstMul = 0, worstRot = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        worstAdd = std::max(worstAdd,
                            std::abs(sum[i].real() - (a[i] + b[i])));
        worstMul = std::max(worstMul,
                            std::abs(prod[i].real() - a[i] * b[i]));
        worstRot = std::max(
            worstRot,
            std::abs(rot[i].real() - a[(i + 1) % a.size()]));
    }
    std::printf("max error: add %.2e, mult %.2e, rotate %.2e\n",
                worstAdd, worstMul, worstRot);

    // Exhaust the level budget: this is where bootstrapping (see
    // examples/scheme_switch_bootstrap.cpp) becomes necessary.
    Ciphertext c = ctA;
    while (c.level() > 1) {
        c = ev.multiplyRescale(c, c);
        std::printf("squared: level %zu remaining\n", c.level());
    }
    std::printf("level budget exhausted -> bootstrap required\n");
    return 0;
}
