/**
 * @file
 * Tests for the RLWE layer: encrypt/decrypt round trips, homomorphic
 * addition, limb restriction, modulus lifting, gadget decomposition
 * correctness, key switching, and RGSW external products.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "math/primes.h"
#include "rlwe/gadget.h"
#include "rlwe/rlwe.h"

namespace heap::rlwe {
namespace {

constexpr size_t kN = 128;

struct RlweFixture : ::testing::Test {
    std::shared_ptr<const math::RnsBasis> basis =
        std::make_shared<math::RnsBasis>(
            kN, math::generateNttPrimes(30, kN, 3));
    Rng rng{2024};
    SecretKey sk = SecretKey::sampleTernary(basis, rng);
    GadgetParams gadget{.baseBits = 10, .digitsPerLimb = 3};

    std::vector<int64_t>
    randomMessage(int64_t bound)
    {
        std::vector<int64_t> m(kN);
        for (auto& v : m) {
            v = static_cast<int64_t>(rng.uniform(
                    static_cast<uint64_t>(2 * bound))) - bound;
        }
        return m;
    }

    double
    maxAbsError(const std::vector<int64_t>& got,
                const std::vector<int64_t>& want)
    {
        double m = 0;
        for (size_t i = 0; i < got.size(); ++i) {
            m = std::max(m, std::abs(static_cast<double>(got[i])
                                     - static_cast<double>(want[i])));
        }
        return m;
    }
};

TEST_F(RlweFixture, EncryptDecryptRoundTrip)
{
    const auto m = randomMessage(1 << 20);
    const auto msg = math::rnsFromSigned(basis, 2, m);
    const auto ct = encrypt(sk, msg, rng);
    const auto dec = decryptSigned(ct, sk);
    // Fresh noise is a few stddevs of 3.2.
    EXPECT_LE(maxAbsError(dec, m), 32.0);
}

TEST_F(RlweFixture, TrivialEncryptIsExact)
{
    const auto m = randomMessage(1 << 20);
    const auto msg = math::rnsFromSigned(basis, 3, m);
    const auto ct = trivialEncrypt(msg);
    EXPECT_EQ(decryptSigned(ct, sk), m);
}

TEST_F(RlweFixture, HomomorphicAddSub)
{
    const auto m1 = randomMessage(1 << 18);
    const auto m2 = randomMessage(1 << 18);
    auto ct1 = encrypt(sk, math::rnsFromSigned(basis, 3, m1), rng);
    const auto ct2 = encrypt(sk, math::rnsFromSigned(basis, 3, m2), rng);
    ct1.addInPlace(ct2);
    std::vector<int64_t> sum(kN);
    for (size_t i = 0; i < kN; ++i) {
        sum[i] = m1[i] + m2[i];
    }
    EXPECT_LE(maxAbsError(decryptSigned(ct1, sk), sum), 64.0);
    ct1.subInPlace(ct2);
    EXPECT_LE(maxAbsError(decryptSigned(ct1, sk), m1), 96.0);
}

TEST_F(RlweFixture, MonomialMulShiftsPhase)
{
    std::vector<int64_t> m(kN, 0);
    m[0] = 1000;
    m[3] = -500;
    auto ct = encrypt(sk, math::rnsFromSigned(basis, 2, m), rng);
    ct.toCoeff();
    const auto rot = ct.monomialMul(kN - 1); // X^{N-1}
    const auto dec = decryptSigned(rot, sk);
    // m * X^{N-1}: coeff0 -> N-1; coeff3 -> wraps to 2 with sign flip.
    EXPECT_NEAR(static_cast<double>(dec[kN - 1]), 1000.0, 40.0);
    EXPECT_NEAR(static_cast<double>(dec[2]), 500.0, 40.0);
}

TEST_F(RlweFixture, LiftPreservesSmallPhases)
{
    // A single-limb ciphertext with small message+noise lifts to a
    // multi-limb ciphertext whose phase gains only a q*I term, which
    // vanishes when message magnitudes are << q... here we use a
    // trivial ciphertext so the lift is exact.
    std::vector<int64_t> m(kN, 0);
    m[0] = 12345;
    m[1] = -777;
    auto msg = math::rnsFromSigned(basis, 1, m);
    auto ct = trivialEncrypt(std::move(msg));
    const auto lifted = liftToLimbs(ct, 3);
    EXPECT_EQ(lifted.limbCount(), 3u);
    const auto dec = decryptSigned(lifted, sk);
    EXPECT_EQ(dec[0], 12345);
    // -777 lifts to q0 - 777 as an integer (lift is of residues).
    EXPECT_EQ(dec[1], static_cast<int64_t>(basis->modulus(0)) - 777);
}

TEST_F(RlweFixture, GadgetDecomposeRecomposes)
{
    Rng r2(7);
    const auto x = math::sampleUniformRns(basis, 3, math::Domain::Coeff,
                                          r2);
    GadgetParams plain = gadget;
    plain.balanced = false; // this test checks the unsigned digits
    const auto digits = gadgetDecompose(x, plain);
    ASSERT_EQ(digits.size(), 3u * 3u);
    // Per limb: sum_j digit_j * B^j == original limb value.
    for (size_t i = 0; i < 3; ++i) {
        for (size_t t = 0; t < kN; ++t) {
            uint64_t v = 0;
            for (int j = 2; j >= 0; --j) {
                v = (v << gadget.baseBits)
                    + digits[i * 3 + static_cast<size_t>(j)][t];
            }
            ASSERT_EQ(v, x.limb(i)[t]) << "limb " << i << " t " << t;
        }
    }
}

TEST_F(RlweFixture, BalancedGadgetDecomposeRecomposes)
{
    Rng r2(8);
    const auto x = math::sampleUniformRns(basis, 3, math::Domain::Coeff,
                                          r2);
    GadgetParams bal = gadget;
    bal.balanced = true;
    const auto digits = gadgetDecompose(x, bal);
    const int64_t base = 1LL << bal.baseBits;
    for (size_t i = 0; i < 3; ++i) {
        const uint64_t qi = basis->modulus(i);
        for (size_t t = 0; t < kN; ++t) {
            int64_t v = 0;
            int64_t radix = 1;
            for (int j = 0; j < 3; ++j) {
                const int64_t dig =
                    digits[i * 3 + static_cast<size_t>(j)][t];
                // All but the top digit are balanced.
                if (j < 2) {
                    ASSERT_LE(std::abs(dig), base / 2);
                }
                v += dig * radix;
                radix *= base;
            }
            ASSERT_EQ(math::fromCentered(v, qi), x.limb(i)[t])
                << "limb " << i << " t " << t;
        }
    }
}

TEST_F(RlweFixture, BalancedGadgetHalvesKeySwitchNoise)
{
    SecretKey sk2 = SecretKey::sampleTernary(basis, rng);
    const auto m = randomMessage(1 << 20);
    const auto ct = encrypt(sk2, math::rnsFromSigned(basis, 3, m), rng);
    math::RnsPoly sk2Coeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());

    auto measure = [&](bool balanced) {
        GadgetParams g = gadget;
        g.balanced = balanced;
        Rng kr(99); // same key randomness for both modes
        const auto ksk = makeKeySwitchKey(sk, sk2Coeff, g, kr);
        const auto dec = decryptSigned(switchKey(ct, ksk), sk);
        double sum = 0;
        for (size_t i = 0; i < kN; ++i) {
            const double e = static_cast<double>(dec[i] - m[i]);
            sum += e * e;
        }
        return std::sqrt(sum / kN);
    };
    const double unsignedNoise = measure(false);
    const double balancedNoise = measure(true);
    // Balanced digits have half the magnitude and zero mean: expect
    // roughly a 2x noise reduction.
    EXPECT_LT(balancedNoise, 0.75 * unsignedNoise);
}

TEST_F(RlweFixture, GadgetParamsValidation)
{
    GadgetParams tooFew{.baseBits = 10, .digitsPerLimb = 2};
    EXPECT_THROW(tooFew.validateFor(*basis), UserError); // 20 < 30 bits
    GadgetParams ok{.baseBits = 15, .digitsPerLimb = 2};
    EXPECT_NO_THROW(ok.validateFor(*basis));
    GadgetParams bad{.baseBits = 0, .digitsPerLimb = 2};
    EXPECT_THROW(bad.validateFor(*basis), UserError);
}

TEST_F(RlweFixture, KeySwitchPreservesMessage)
{
    // Encrypt under sk2, switch to sk, decrypt under sk.
    SecretKey sk2 = SecretKey::sampleTernary(basis, rng);
    const auto m = randomMessage(1 << 20);
    const auto ct = encrypt(sk2, math::rnsFromSigned(basis, 3, m), rng);

    math::RnsPoly sk2Coeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());
    const auto ksk = makeKeySwitchKey(sk, sk2Coeff, gadget, rng);
    const auto switched = switchKey(ct, ksk);
    const auto dec = decryptSigned(switched, sk);
    // Key-switch noise ~ B * sigma * sqrt(N * l * d).
    EXPECT_LE(maxAbsError(dec, m), 1e6);
    // Under the wrong key the phase is essentially uniform mod Q.
    const auto junk = decryptCentered(ct, sk);
    long double worst = 0;
    for (size_t i = 0; i < kN; ++i) {
        worst = std::max(worst, std::abs(junk[i]
                                         - static_cast<long double>(m[i])));
    }
    EXPECT_GT(static_cast<double>(worst), 1e8)
        << "ct must not decrypt under the wrong key";
}

TEST_F(RlweFixture, KeySwitchWorksAtLowerLevel)
{
    SecretKey sk2 = SecretKey::sampleTernary(basis, rng);
    const auto m = randomMessage(1 << 20);
    // Two limbs only: the full-basis key must restrict correctly.
    const auto ct = encrypt(sk2, math::rnsFromSigned(basis, 2, m), rng);
    math::RnsPoly sk2Coeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());
    const auto ksk = makeKeySwitchKey(sk, sk2Coeff, gadget, rng);
    const auto switched = switchKey(ct, ksk);
    EXPECT_EQ(switched.limbCount(), 2u);
    EXPECT_LE(maxAbsError(decryptSigned(switched, sk), m), 1e6);
}

TEST_F(RlweFixture, ExternalProductByConstant)
{
    const auto m = randomMessage(1 << 18);
    const auto ct = encrypt(sk, math::rnsFromSigned(basis, 3, m), rng);
    const auto C = rgswEncryptConstant(sk, 3, gadget, rng);
    const auto prod = externalProduct(ct, C);
    std::vector<int64_t> want(kN);
    for (size_t i = 0; i < kN; ++i) {
        want[i] = 3 * m[i];
    }
    EXPECT_LE(maxAbsError(decryptSigned(prod, sk), want), 1e6);
}

TEST_F(RlweFixture, ExternalProductByMonomial)
{
    std::vector<int64_t> m(kN, 0);
    m[0] = 100000;
    const auto ct = encrypt(sk, math::rnsFromSigned(basis, 3, m), rng);
    // mu = X (shift by one coefficient).
    std::vector<int64_t> muc(kN, 0);
    muc[1] = 1;
    const auto mu = math::rnsFromSigned(basis, basis->size(), muc);
    const auto C = rgswEncrypt(sk, mu, gadget, rng);
    const auto prod = externalProduct(ct, C);
    const auto dec = decryptSigned(prod, sk);
    EXPECT_NEAR(static_cast<double>(dec[1]), 100000.0, 1e6);
    EXPECT_NEAR(static_cast<double>(dec[0]), 0.0, 1e6);
}

TEST_F(RlweFixture, ExternalProductChain)
{
    // Repeated external products keep noise additive-ish: multiply an
    // encryption of 1<<20 by RGSW(1) five times and verify survival.
    std::vector<int64_t> m(kN, 0);
    m[0] = 1 << 20;
    auto ct = encrypt(sk, math::rnsFromSigned(basis, 3, m), rng);
    const auto one = rgswEncryptConstant(sk, 1, gadget, rng);
    for (int i = 0; i < 5; ++i) {
        ct = externalProduct(ct, one);
    }
    const auto dec = decryptSigned(ct, sk);
    EXPECT_NEAR(static_cast<double>(dec[0]), std::pow(2.0, 20), 5e6);
}

TEST_F(RlweFixture, InternalProductMultipliesMessages)
{
    // RGSW(2) (x) RGSW(3) acts on an RLWE ciphertext like RGSW(6)
    // (Section VII-A standalone-TFHE construction). The compounded
    // decomposition noise calls for a finer gadget base.
    const GadgetParams fine{.baseBits = 5, .digitsPerLimb = 6};
    const auto A = rgswEncryptConstant(sk, 2, fine, rng);
    const auto B = rgswEncryptConstant(sk, 3, fine, rng);
    const auto AB = internalProduct(A, B);

    std::vector<int64_t> m(kN, 0);
    m[0] = 1 << 18;
    const auto ct = encrypt(sk, math::rnsFromSigned(basis, 3, m), rng);
    const auto prod = externalProduct(ct, AB);
    const auto dec = decryptSigned(prod, sk);
    EXPECT_NEAR(static_cast<double>(dec[0]), 6.0 * (1 << 18), 5e6);
    EXPECT_NEAR(static_cast<double>(dec[1]), 0.0, 5e6);
}

TEST_F(RlweFixture, InternalProductByMonomialShifts)
{
    // RGSW(X) (x) RGSW(X^2) = RGSW(X^3).
    const GadgetParams fine{.baseBits = 5, .digitsPerLimb = 6};
    auto mono = [&](size_t k) {
        std::vector<int64_t> mu(kN, 0);
        mu[k] = 1;
        return rgswEncrypt(
            sk, math::rnsFromSigned(basis, basis->size(), mu), fine,
            rng);
    };
    const auto AB = internalProduct(mono(1), mono(2));
    std::vector<int64_t> m(kN, 0);
    m[0] = 1 << 18;
    const auto ct = encrypt(sk, math::rnsFromSigned(basis, 3, m), rng);
    const auto dec = decryptSigned(externalProduct(ct, AB), sk);
    EXPECT_NEAR(static_cast<double>(dec[3]), 1 << 18, 5e6);
    EXPECT_NEAR(static_cast<double>(dec[0]), 0.0, 5e6);
}

TEST_F(RlweFixture, SecretKeyRejectsWrongLength)
{
    EXPECT_THROW(SecretKey(basis, std::vector<int64_t>(kN - 1, 0)),
                 UserError);
}

} // namespace
} // namespace heap::rlwe
