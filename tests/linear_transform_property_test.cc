/**
 * @file
 * Property tests for homomorphic linear transforms: structured
 * matrices with known semantics (identity, cyclic shift, averaging,
 * projection) must act exactly as their plaintext counterparts, in
 * both plain-diagonal and BSGS scheduling.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/linear_transform.h"

namespace heap::ckks {
namespace {

constexpr size_t kSlots = 64;

CkksParams
ltParams()
{
    CkksParams p;
    p.n = 2 * kSlots;
    p.limbBits = 30;
    p.levels = 3;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    return p;
}

class LtStructured : public ::testing::TestWithParam<bool> {
  protected:
    Context ctx{ltParams(), 77};
    Evaluator ev{ctx};
    Rng rng{88};

    std::vector<Complex>
    randomSlots()
    {
        std::vector<Complex> z(kSlots);
        for (auto& v : z) {
            v = Complex(2 * rng.uniformReal() - 1,
                        2 * rng.uniformReal() - 1);
        }
        return z;
    }

    std::vector<Complex>
    applyHom(const SlotMatrix& M, const std::vector<Complex>& z)
    {
        LinearTransform lt(ctx, M, GetParam());
        ctx.makeRotationKeys(lt.requiredRotations());
        const auto ct = ctx.encrypt(std::span<const Complex>(z));
        return ctx.decrypt(lt.apply(ev, ct));
    }
};

TEST_P(LtStructured, IdentityMatrix)
{
    SlotMatrix M(kSlots, std::vector<Complex>(kSlots, Complex(0, 0)));
    for (size_t i = 0; i < kSlots; ++i) {
        M[i][i] = Complex(1, 0);
    }
    const auto z = randomSlots();
    const auto got = applyHom(M, z);
    for (size_t i = 0; i < kSlots; ++i) {
        ASSERT_LT(std::abs(got[i] - z[i]), 1e-3);
    }
}

TEST_P(LtStructured, CyclicShiftMatrixEqualsRotation)
{
    // M z = z rotated left by 5.
    SlotMatrix M(kSlots, std::vector<Complex>(kSlots, Complex(0, 0)));
    for (size_t i = 0; i < kSlots; ++i) {
        M[i][(i + 5) % kSlots] = Complex(1, 0);
    }
    const auto z = randomSlots();
    const auto got = applyHom(M, z);
    for (size_t i = 0; i < kSlots; ++i) {
        ASSERT_LT(std::abs(got[i] - z[(i + 5) % kSlots]), 1e-3);
    }
}

TEST_P(LtStructured, AveragingMatrix)
{
    SlotMatrix M(kSlots,
                 std::vector<Complex>(kSlots,
                                      Complex(1.0 / kSlots, 0)));
    const auto z = randomSlots();
    Complex mean(0, 0);
    for (const auto& v : z) {
        mean += v;
    }
    mean /= static_cast<double>(kSlots);
    const auto got = applyHom(M, z);
    for (size_t i = 0; i < kSlots; ++i) {
        ASSERT_LT(std::abs(got[i] - mean), 2e-3);
    }
}

TEST_P(LtStructured, ProjectionIsIdempotentUpToNoise)
{
    // Projector onto even slots.
    SlotMatrix M(kSlots, std::vector<Complex>(kSlots, Complex(0, 0)));
    for (size_t i = 0; i < kSlots; i += 2) {
        M[i][i] = Complex(1, 0);
    }
    const auto z = randomSlots();
    const auto once = applyHom(M, z);
    for (size_t i = 0; i < kSlots; ++i) {
        const Complex want = (i % 2 == 0) ? z[i] : Complex(0, 0);
        ASSERT_LT(std::abs(once[i] - want), 1e-3);
    }
}

TEST_P(LtStructured, ComplexDiagonalActsSlotwise)
{
    SlotMatrix M(kSlots, std::vector<Complex>(kSlots, Complex(0, 0)));
    std::vector<Complex> d(kSlots);
    for (size_t i = 0; i < kSlots; ++i) {
        d[i] = Complex(std::cos(0.1 * static_cast<double>(i)),
                       std::sin(0.1 * static_cast<double>(i)));
        M[i][i] = d[i];
    }
    const auto z = randomSlots();
    const auto got = applyHom(M, z);
    for (size_t i = 0; i < kSlots; ++i) {
        ASSERT_LT(std::abs(got[i] - d[i] * z[i]), 1e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(Scheduling, LtStructured,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                             return info.param ? "bsgs" : "plain";
                         });

TEST(LtValidation, RejectsBadShapes)
{
    Context ctx(ltParams(), 3);
    SlotMatrix notSquare(kSlots, std::vector<Complex>(kSlots - 1));
    EXPECT_THROW(LinearTransform(ctx, notSquare, false), UserError);
    SlotMatrix sparsePack(kSlots / 2,
                          std::vector<Complex>(kSlots / 2));
    EXPECT_THROW(LinearTransform(ctx, sparsePack, false), UserError);
}

} // namespace
} // namespace heap::ckks
