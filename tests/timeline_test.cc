/**
 * @file
 * Tests for the Section V schedule timeline: event accounting, lane
 * utilization, Gantt rendering, and the bootstrap schedule's
 * structural properties (staggered distribution, idle-free compute
 * window, unsaturated links).
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/timeline.h"

namespace heap::hw {
namespace {

TEST(Timeline, EventAccountingAndRendering)
{
    ScheduleTimeline tl;
    tl.add("a", 0, 1, '#');
    tl.add("a", 2, 4, '#');
    tl.add("b", 1, 2, '>');
    EXPECT_DOUBLE_EQ(tl.spanMs(), 4.0);
    EXPECT_DOUBLE_EQ(tl.utilization("a"), 0.75);
    EXPECT_DOUBLE_EQ(tl.utilization("b"), 0.25);

    const std::string g = tl.render(40);
    EXPECT_NE(g.find("a |"), std::string::npos);
    EXPECT_NE(g.find('#'), std::string::npos);
    EXPECT_NE(g.find('>'), std::string::npos);
    EXPECT_NE(g.find("75%"), std::string::npos);

    EXPECT_THROW(tl.add("c", 2, 1, '#'), heap::UserError);
    ScheduleTimeline empty;
    EXPECT_THROW(empty.render(), heap::UserError);
}

TEST(Timeline, BootstrapScheduleShape)
{
    const FpgaConfig cfg;
    const HeapParams params;
    const BootstrapModel bm(cfg, params, 8);
    const auto tl = buildBootstrapTimeline(bm, 4096);

    // The schedule covers at least the modeled bootstrap latency.
    EXPECT_GE(tl.spanMs(), bm.bootstrap(4096).totalMs * 0.9);
    // The primary is the busiest lane; the links are far from
    // saturated (Section V's overlap claim).
    EXPECT_GT(tl.utilization("fpga0 (primary)"), 0.9);
    EXPECT_LT(tl.utilization("link out"), 0.5);
    EXPECT_LT(tl.utilization("link in"), 0.5);
    // Every secondary spends the same blind-rotate time.
    const double u1 = tl.utilization("fpga1");
    for (int j = 2; j < 8; ++j) {
        EXPECT_NEAR(tl.utilization("fpga" + std::to_string(j)), u1,
                    0.02);
    }
}

TEST(Timeline, FewerSlotsShrinkTheSchedule)
{
    const FpgaConfig cfg;
    const HeapParams params;
    const BootstrapModel bm(cfg, params, 8);
    EXPECT_LT(buildBootstrapTimeline(bm, 256).spanMs(),
              buildBootstrapTimeline(bm, 4096).spanMs());
}

} // namespace
} // namespace heap::hw
