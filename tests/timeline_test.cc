/**
 * @file
 * Tests for the Section V schedule timeline: event accounting, lane
 * utilization, Gantt rendering, and the bootstrap schedule's
 * structural properties (staggered distribution, idle-free compute
 * window, unsaturated links).
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/timeline.h"

namespace heap::hw {
namespace {

TEST(Timeline, EventAccountingAndRendering)
{
    ScheduleTimeline tl;
    tl.add("a", 0, 1, '#');
    tl.add("a", 2, 4, '#');
    tl.add("b", 1, 2, '>');
    EXPECT_DOUBLE_EQ(tl.spanMs(), 4.0);
    EXPECT_DOUBLE_EQ(tl.utilization("a"), 0.75);
    EXPECT_DOUBLE_EQ(tl.utilization("b"), 0.25);

    const std::string g = tl.render(40);
    EXPECT_NE(g.find("a |"), std::string::npos);
    EXPECT_NE(g.find('#'), std::string::npos);
    EXPECT_NE(g.find('>'), std::string::npos);
    EXPECT_NE(g.find("75%"), std::string::npos);

    EXPECT_THROW(tl.add("c", 2, 1, '#'), heap::UserError);
    ScheduleTimeline empty;
    EXPECT_THROW(empty.render(), heap::UserError);
}

TEST(Timeline, BootstrapScheduleShape)
{
    const FpgaConfig cfg;
    const HeapParams params;
    const BootstrapModel bm(cfg, params, 8);
    const auto tl = buildBootstrapTimeline(bm, 4096);

    // The schedule covers at least the modeled bootstrap latency.
    EXPECT_GE(tl.spanMs(), bm.bootstrap(4096).totalMs * 0.9);
    // The primary is the busiest lane; the links are far from
    // saturated (Section V's overlap claim).
    EXPECT_GT(tl.utilization("fpga0 (primary)"), 0.9);
    EXPECT_LT(tl.utilization("link out"), 0.5);
    EXPECT_LT(tl.utilization("link in"), 0.5);
    // Every secondary spends the same blind-rotate time.
    const double u1 = tl.utilization("fpga1");
    for (int j = 2; j < 8; ++j) {
        EXPECT_NEAR(tl.utilization("fpga" + std::to_string(j)), u1,
                    0.02);
    }
}

TEST(Timeline, FewerSlotsShrinkTheSchedule)
{
    const FpgaConfig cfg;
    const HeapParams params;
    const BootstrapModel bm(cfg, params, 8);
    EXPECT_LT(buildBootstrapTimeline(bm, 256).spanMs(),
              buildBootstrapTimeline(bm, 4096).spanMs());
}

TEST(Timeline, ServePipelineOverlapsStages)
{
    const FpgaConfig cfg;
    const HeapParams params;
    const BootstrapModel bm(cfg, params, 4);
    const ServePipelineSpec spec{/*requests=*/8,
                                 /*itemsPerRequest=*/4096,
                                 /*batchItems=*/1024,
                                 /*secondaries=*/3};
    const auto tl = buildServePipelineTimeline(bm, spec);

    const StageOccupancy occ = serveStageOccupancy(tl);
    // Rotation dominates, every stage does real work, and the summed
    // occupancy proves the stages (and rotate lanes) overlap — the
    // modeled counterpart of ServiceMetrics::pipeline.overlap.
    EXPECT_GT(occ.rotate, occ.front);
    EXPECT_GT(occ.rotate, occ.finish);
    EXPECT_GT(occ.front, 0.0);
    EXPECT_GT(occ.finish, 0.0);
    EXPECT_GT(occ.overlap(), 1.0);

    // Pipelining beats executing the same batch schedule with no
    // overlap at all (every batch serial, every stage serial) by a
    // wide margin.
    const size_t batches =
        (spec.itemsPerRequest + spec.batchItems - 1) / spec.batchItems;
    const auto b = bm.bootstrap(spec.itemsPerRequest);
    const double noOverlapMs =
        static_cast<double>(spec.requests)
        * (b.modSwitchMs
           + static_cast<double>(batches)
                 * (bm.blindRotateBatchMs(spec.batchItems)
                    + bm.batchCommMs(spec.batchItems))
           + b.finishMs);
    EXPECT_LT(tl.spanMs(), 0.5 * noOverlapMs);

    // The chart renders every stage lane.
    const std::string g = tl.render(64);
    EXPECT_NE(g.find("front"), std::string::npos);
    EXPECT_NE(g.find("rotate:0"), std::string::npos);
    EXPECT_NE(g.find("rotate:3"), std::string::npos);
    EXPECT_NE(g.find("finish"), std::string::npos);
}

TEST(Timeline, ServePipelineMoreLanesShortenTheSchedule)
{
    const FpgaConfig cfg;
    const HeapParams params;
    const BootstrapModel bm(cfg, params, 4);
    ServePipelineSpec spec{8, 4096, 512, 0};
    const double solo = buildServePipelineTimeline(bm, spec).spanMs();
    spec.secondaries = 3;
    const double pod = buildServePipelineTimeline(bm, spec).spanMs();
    EXPECT_LT(pod, solo);

    ServePipelineSpec bad{0, 1, 1, 0};
    EXPECT_THROW(buildServePipelineTimeline(bm, bad), heap::UserError);
}

} // namespace
} // namespace heap::hw
