/**
 * @file
 * Parameterized property tests for the CKKS evaluator: algebraic
 * identities (commutativity, distributivity, rotation composition,
 * conjugation involution, plaintext-ciphertext consistency) must hold
 * across a grid of ring dimensions and limb widths.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"

namespace heap::ckks {
namespace {

struct GridPoint {
    size_t n;
    int limbBits;
    size_t levels;
};

class EvaluatorProperty : public ::testing::TestWithParam<GridPoint> {
  protected:
    void
    SetUp() override
    {
        const auto gp = GetParam();
        CkksParams p;
        p.n = gp.n;
        p.limbBits = gp.limbBits;
        p.levels = gp.levels;
        p.auxLimbs = 0;
        p.scale = std::pow(2.0, gp.limbBits);
        const int digits = (gp.limbBits + 6 + 8) / 9;
        p.gadget =
            rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = digits};
        ctx_ = std::make_unique<Context>(p, gp.n + gp.levels);
        ev_ = std::make_unique<Evaluator>(*ctx_);
        rng_ = std::make_unique<Rng>(gp.n * 31 + gp.levels);
    }

    std::vector<Complex>
    randomSlots(double bound = 1.0)
    {
        std::vector<Complex> z(ctx_->params().n / 2);
        for (auto& v : z) {
            v = Complex((2 * rng_->uniformReal() - 1) * bound,
                        (2 * rng_->uniformReal() - 1) * bound);
        }
        return z;
    }

    double
    maxErr(const std::vector<Complex>& a, const std::vector<Complex>& b)
    {
        double m = 0;
        for (size_t i = 0; i < a.size(); ++i) {
            m = std::max(m, std::abs(a[i] - b[i]));
        }
        return m;
    }

    std::unique_ptr<Context> ctx_;
    std::unique_ptr<Evaluator> ev_;
    std::unique_ptr<Rng> rng_;
};

TEST_P(EvaluatorProperty, AdditionCommutes)
{
    const auto z1 = randomSlots();
    const auto z2 = randomSlots();
    const auto a = ctx_->encrypt(std::span<const Complex>(z1));
    const auto b = ctx_->encrypt(std::span<const Complex>(z2));
    const auto ab = ctx_->decrypt(ev_->add(a, b));
    const auto ba = ctx_->decrypt(ev_->add(b, a));
    EXPECT_LT(maxErr(ab, ba), 1e-9);
}

TEST_P(EvaluatorProperty, MultiplicationCommutes)
{
    const auto z1 = randomSlots();
    const auto z2 = randomSlots();
    const auto a = ctx_->encrypt(std::span<const Complex>(z1));
    const auto b = ctx_->encrypt(std::span<const Complex>(z2));
    const auto ab = ctx_->decrypt(ev_->multiplyRescale(a, b));
    const auto ba = ctx_->decrypt(ev_->multiplyRescale(b, a));
    EXPECT_LT(maxErr(ab, ba), 1e-9);
}

TEST_P(EvaluatorProperty, DistributesOverAddition)
{
    const auto z1 = randomSlots(0.7);
    const auto z2 = randomSlots(0.7);
    const auto z3 = randomSlots(0.7);
    const auto a = ctx_->encrypt(std::span<const Complex>(z1));
    const auto b = ctx_->encrypt(std::span<const Complex>(z2));
    const auto c = ctx_->encrypt(std::span<const Complex>(z3));
    // a*(b+c) vs a*b + a*c.
    const auto lhs =
        ctx_->decrypt(ev_->multiplyRescale(a, ev_->add(b, c)));
    const auto rhs = ctx_->decrypt(ev_->add(
        ev_->multiplyRescale(a, b), ev_->multiplyRescale(a, c)));
    EXPECT_LT(maxErr(lhs, rhs), 1e-2);
}

TEST_P(EvaluatorProperty, PlainAndCipherMultiplyAgree)
{
    const auto z1 = randomSlots(0.8);
    const auto z2 = randomSlots(0.8);
    const auto a = ctx_->encrypt(std::span<const Complex>(z1));
    const auto b = ctx_->encrypt(std::span<const Complex>(z2));
    const auto pt = ev_->makePlaintext(std::span<const Complex>(z2),
                                       ctx_->params().scale, a.level());
    const auto viaCt = ctx_->decrypt(ev_->multiplyRescale(a, b));
    const auto viaPt =
        ctx_->decrypt(ev_->rescale(ev_->multiplyPlain(a, pt)));
    EXPECT_LT(maxErr(viaCt, viaPt), 1e-2);
}

TEST_P(EvaluatorProperty, ConjugationIsInvolution)
{
    const auto z = randomSlots();
    const auto ct = ctx_->encrypt(std::span<const Complex>(z));
    const auto back = ctx_->decrypt(ev_->conjugate(ev_->conjugate(ct)));
    EXPECT_LT(maxErr(back, z), 5e-2);
}

TEST_P(EvaluatorProperty, RotationsCompose)
{
    ctx_->makeRotationKeys(std::array<int64_t, 3>{1, 2, 3});
    const auto z = randomSlots();
    const auto ct = ctx_->encrypt(std::span<const Complex>(z));
    const auto oneThenTwo =
        ctx_->decrypt(ev_->rotate(ev_->rotate(ct, 1), 2));
    const auto three = ctx_->decrypt(ev_->rotate(ct, 3));
    EXPECT_LT(maxErr(oneThenTwo, three), 5e-2);
}

TEST_P(EvaluatorProperty, NegateIsSubtractFromZero)
{
    const auto z = randomSlots();
    const auto ct = ctx_->encrypt(std::span<const Complex>(z));
    const auto neg = ctx_->decrypt(ev_->negate(ct));
    for (size_t i = 0; i < z.size(); ++i) {
        ASSERT_LT(std::abs(neg[i] + z[i]), 1e-3);
    }
}

TEST_P(EvaluatorProperty, SquareMatchesSelfMultiply)
{
    const auto z = randomSlots(0.9);
    const auto ct = ctx_->encrypt(std::span<const Complex>(z));
    const auto sq = ctx_->decrypt(ev_->square(ct));
    const auto mm = ctx_->decrypt(ev_->multiply(ct, ct));
    EXPECT_LT(maxErr(sq, mm), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EvaluatorProperty,
    ::testing::Values(GridPoint{128, 30, 2}, GridPoint{256, 30, 3},
                      GridPoint{256, 36, 2}, GridPoint{512, 30, 3},
                      GridPoint{1024, 30, 2}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
        return "n" + std::to_string(info.param.n) + "q"
               + std::to_string(info.param.limbBits) + "L"
               + std::to_string(info.param.levels);
    });

} // namespace
} // namespace heap::ckks
