/**
 * @file
 * Cluster failure-domain tests: circuit-breaker state machine (trip,
 * probe cadence, probe cancellation, wedge detection), pod crash /
 * recover and injected-failure semantics, ticket double-wait
 * regression, scripted chaos determinism, request failover with exact
 * tenant accounting, deadline/brownout load shedding, and
 * breaker-driven routing around crashed and wedged pods.
 */

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "hw/bootstrap_model.h"
#include "serve/cluster.h"

namespace heap::serve {
namespace {

// Same miniature parameter set as serve_test.cc / cluster_test.cc.
ckks::CkksParams
serveParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

struct PodSet {
    std::unique_ptr<ckks::Context> ctx;
    std::unique_ptr<ckks::Evaluator> ev;
    std::vector<std::unique_ptr<boot::DistributedBootstrapper>> dists;
};

PodSet
makePods(uint64_t seed, size_t count, size_t secondaries)
{
    PodSet s;
    s.ctx = std::make_unique<ckks::Context>(serveParams(), seed);
    s.ev = std::make_unique<ckks::Evaluator>(*s.ctx);
    s.dists.push_back(std::make_unique<boot::DistributedBootstrapper>(
        *s.ctx, secondaries, kBrGadget));
    for (size_t i = 1; i < count; ++i) {
        s.dists.push_back(
            std::make_unique<boot::DistributedBootstrapper>(
                *s.dists[0], secondaries));
    }
    return s;
}

std::vector<boot::DistributedBootstrapper*>
distPtrs(PodSet& pods)
{
    std::vector<boot::DistributedBootstrapper*> out;
    for (auto& d : pods.dists) {
        out.push_back(d.get());
    }
    return out;
}

ckks::Ciphertext
makeInput(const ckks::Context& ctx, ckks::Evaluator& ev, size_t r)
{
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < 16; ++i) {
        const double t = static_cast<double>(i);
        const double s = static_cast<double>(r);
        z.emplace_back(0.7 * std::cos(0.2 * t + 0.3 * s),
                       0.4 * std::sin(0.5 * t - 0.1 * s));
    }
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);
    return ct;
}

// ---------------------------------------------------------------------
// CircuitBreaker unit tests (pure state machine, no pods).

BreakerConfig
tightBreaker()
{
    BreakerConfig c;
    c.window = 8;
    c.minSamples = 4;
    c.failureThreshold = 0.5;
    c.probeAfterSkips = 3;
    c.wedgeDecisions = 0; // wedge detection off unless a test wants it
    return c;
}

TEST(Breaker, TripsOnFailureRateThenProbesDeterministically)
{
    CircuitBreaker b(tightBreaker());
    EXPECT_EQ(b.state(), BreakerState::Closed);
    b.onOutcome(true, false);
    b.onOutcome(true, false);
    b.onOutcome(false, false);
    EXPECT_EQ(b.state(), BreakerState::Closed); // 1/3 under threshold
    b.onOutcome(false, false);                  // 2/4 hits 0.5
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.stats().opens, 1u);

    // Deterministic probe cadence: exactly probeAfterSkips skipped
    // decisions, then one probe admission.
    for (int i = 0; i < 3; ++i) {
        const auto g = b.gate();
        EXPECT_FALSE(g.admit) << "skip " << i;
    }
    const auto probe = b.gate();
    EXPECT_TRUE(probe.admit);
    EXPECT_TRUE(probe.probe);
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    EXPECT_EQ(b.stats().probes, 1u);

    // Probe success closes and clears the window.
    b.onOutcome(true, true);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.stats().closes, 1u);
    EXPECT_EQ(b.stats().windowCount, 0u);
}

TEST(Breaker, ProbeFailureReopensAndKeepsProbing)
{
    CircuitBreaker b(tightBreaker());
    for (int i = 0; i < 4; ++i) {
        b.onOutcome(false, false);
    }
    ASSERT_EQ(b.state(), BreakerState::Open);
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(b.gate().admit);
    }
    ASSERT_TRUE(b.gate().probe);
    b.onOutcome(false, true); // probe failed
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.stats().opens, 2u);
    // The cadence restarts: another probeAfterSkips skips, then probe.
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(b.gate().admit);
    }
    EXPECT_TRUE(b.gate().probe);
}

TEST(Breaker, CancelledProbeRetriesOnNextDecision)
{
    CircuitBreaker b(tightBreaker());
    for (int i = 0; i < 4; ++i) {
        b.onOutcome(false, false);
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(b.gate().admit);
    }
    ASSERT_TRUE(b.gate().probe);
    // The probe was never dispatched (pod full): the next routing
    // decision must probe again, not wait out a fresh skip budget.
    b.cancelProbe();
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_TRUE(b.gate().probe);
}

TEST(Breaker, WedgeDetectionOpensAndCompletionClears)
{
    BreakerConfig c = tightBreaker();
    c.wedgeDecisions = 5;
    CircuitBreaker b(c);
    // Backlog but no completions for wedgeDecisions decisions.
    for (int i = 0; i < 4; ++i) {
        b.noteDecision(true);
        EXPECT_EQ(b.state(), BreakerState::Closed);
    }
    b.noteDecision(true);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_TRUE(b.stats().wedged);
    EXPECT_EQ(b.stats().wedgeOpens, 1u);
    // A wedged pod is never probed — it would swallow the probe.
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(b.gate().admit);
    }
    // Any completion is progress: the wedge clears.
    b.onOutcome(true, false);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_FALSE(b.stats().wedged);
    EXPECT_GE(b.stats().closes, 1u);
}

TEST(Breaker, NoBacklogNeverWedges)
{
    BreakerConfig c = tightBreaker();
    c.wedgeDecisions = 3;
    CircuitBreaker b(c);
    for (int i = 0; i < 50; ++i) {
        b.noteDecision(false); // idle pod: staleness resets
    }
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.stats().wedgeOpens, 0u);
}

TEST(Breaker, MinSamplesGuardsAgainstEarlyTrip)
{
    CircuitBreaker b(tightBreaker()); // minSamples = 4
    b.onOutcome(false, false);
    b.onOutcome(false, false);
    b.onOutcome(false, false);
    EXPECT_EQ(b.state(), BreakerState::Closed)
        << "3 samples must not trip a minSamples=4 breaker";
}

// ---------------------------------------------------------------------
// HalfOpen canary fraction (halfOpenCanaryFraction > 0).

/** Trips the breaker and consumes the Open skip budget, so the next
 *  gate() is the episode's FIRST HalfOpen decision. */
void
tripAndSkipToHalfOpen(CircuitBreaker& b)
{
    for (int i = 0; i < 4; ++i) {
        b.onOutcome(false, false);
    }
    ASSERT_EQ(b.state(), BreakerState::Open);
    for (uint64_t i = 0; i < b.config().probeAfterSkips; ++i) {
        ASSERT_FALSE(b.gate().admit);
    }
}

TEST(Breaker, CanaryFractionAdmitsDeterministicStride)
{
    BreakerConfig c = tightBreaker();
    c.halfOpenCanaryFraction = 0.25;
    CircuitBreaker b(c);
    tripAndSkipToHalfOpen(b);
    // Decision-by-decision: the k-th HalfOpen decision probes when
    // ceil(k * 0.25) exceeds the admissions so far — decisions 1, 5,
    // 9, 13 probe, everything between routes around.
    for (int k = 1; k <= 13; ++k) {
        const auto g = b.gate();
        const bool shouldProbe = (k - 1) % 4 == 0;
        EXPECT_EQ(g.admit, shouldProbe) << "decision " << k;
        EXPECT_EQ(g.probe, shouldProbe) << "decision " << k;
        EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    }
    EXPECT_EQ(b.stats().probes, 4u);
    EXPECT_EQ(b.stats().probesInFlight, 4u);

    // The FIRST canary success closes the episode, with the other
    // three still flying.
    b.onOutcome(true, true);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.stats().closes, 1u);
    EXPECT_EQ(b.stats().probesInFlight, 0u);
    // Stragglers from the closed episode only feed the totals.
    b.onOutcome(true, true);
    b.onOutcome(false, true);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.stats().closes, 1u);
    EXPECT_EQ(b.stats().opens, 1u);
}

TEST(Breaker, CanaryFailureReopensDespiteOthersInFlight)
{
    BreakerConfig c = tightBreaker();
    c.halfOpenCanaryFraction = 0.5;
    CircuitBreaker b(c);
    tripAndSkipToHalfOpen(b);
    // f = 0.5: decisions 1 and 3 probe, decision 2 routes around.
    EXPECT_TRUE(b.gate().probe);
    EXPECT_FALSE(b.gate().admit);
    EXPECT_TRUE(b.gate().probe);
    EXPECT_EQ(b.stats().probesInFlight, 2u);
    // ANY canary failure reopens, immediately.
    b.onOutcome(false, true);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.stats().opens, 2u);
    EXPECT_EQ(b.stats().probesInFlight, 0u);
    // The surviving canary's late success must not close the reopened
    // breaker — the new episode gets its own probes.
    b.onOutcome(true, true);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.stats().closes, 0u);
    // And the reopened episode's cadence restarts from the top.
    for (uint64_t i = 0; i < c.probeAfterSkips; ++i) {
        EXPECT_FALSE(b.gate().admit);
    }
    EXPECT_TRUE(b.gate().probe);
}

TEST(Breaker, CanaryCancelRevertsOnlyWhenLastProbeCancelled)
{
    BreakerConfig c = tightBreaker();
    c.halfOpenCanaryFraction = 1.0;
    CircuitBreaker b(c);
    tripAndSkipToHalfOpen(b);
    // f = 1: every HalfOpen decision carries a canary.
    EXPECT_TRUE(b.gate().probe);
    EXPECT_TRUE(b.gate().probe);
    EXPECT_TRUE(b.gate().probe);
    EXPECT_EQ(b.stats().probesInFlight, 3u);
    // Cancelling while other canaries fly stays HalfOpen: they will
    // resolve the episode.
    b.cancelProbe();
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    b.cancelProbe();
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    EXPECT_EQ(b.stats().probesInFlight, 1u);
    // Cancelling the LAST probe reverts to Open with the skip budget
    // refilled — the very next decision probes again.
    b.cancelProbe();
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.stats().probesInFlight, 0u);
    EXPECT_TRUE(b.gate().probe);
}

TEST(Breaker, LegacyZeroFractionAdmitsOneProbeAtATime)
{
    CircuitBreaker b(tightBreaker()); // halfOpenCanaryFraction = 0
    tripAndSkipToHalfOpen(b);
    EXPECT_TRUE(b.gate().probe);
    // Exactly one probe outstanding: every further HalfOpen decision
    // routes around until it resolves.
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(b.gate().admit) << "decision " << i;
    }
    EXPECT_EQ(b.stats().probes, 1u);
    EXPECT_EQ(b.stats().probesInFlight, 1u);
    b.onOutcome(true, true);
    EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(Breaker, CanaryFractionValidated)
{
    BreakerConfig c = tightBreaker();
    c.halfOpenCanaryFraction = 1.5;
    EXPECT_THROW(CircuitBreaker{c}, UserError);
    c.halfOpenCanaryFraction = -0.1;
    EXPECT_THROW(CircuitBreaker{c}, UserError);
}

// ---------------------------------------------------------------------
// Chaos schedule determinism.

TEST(Chaos, ScriptedScheduleIsSeedDeterministic)
{
    const ChaosSpec a = ChaosSpec::scripted(42, 3, 24);
    const ChaosSpec b = ChaosSpec::scripted(42, 3, 24);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].pod, b.events[i].pod);
        EXPECT_EQ(a.events[i].atSubmit, b.events[i].atSubmit);
        EXPECT_EQ(a.events[i].count, b.events[i].count);
    }
    // A different seed must produce a different schedule.
    const ChaosSpec c = ChaosSpec::scripted(43, 3, 24);
    bool differs = c.events.size() != a.events.size();
    for (size_t i = 0; !differs && i < a.events.size(); ++i) {
        differs = a.events[i].pod != c.events[i].pod
                  || a.events[i].atSubmit != c.events[i].atSubmit;
    }
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// Pod-level crash / recover and fault injection.

TEST(ServiceChaos, CrashFailsLiveWorkAndRejectsUntilRecover)
{
    auto pods = makePods(7, 1, 1);
    ServiceConfig cfg;
    cfg.workers = 2;
    BootstrapService svc(*pods.dists[0], cfg);

    svc.pause(); // hold the requests so the crash provably hits them
    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    for (size_t r = 0; r < 3; ++r) {
        tickets.push_back(
            svc.submit(makeInput(*pods.ctx, *pods.ev, r)));
    }
    svc.crash();
    for (auto& t : tickets) {
        EXPECT_THROW(t->wait(), PodError);
    }
    // Intake rejects while crashed.
    EXPECT_THROW(svc.submit(makeInput(*pods.ctx, *pods.ev, 9)),
                 UserError);
    svc.recover();
    svc.resume();
    auto ok = svc.submit(makeInput(*pods.ctx, *pods.ev, 4));
    EXPECT_NO_THROW(ok->wait());
    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.crashes, 1u);
    EXPECT_EQ(m.failed, 3u);
    EXPECT_EQ(m.completed, 1u);
}

TEST(ServiceChaos, InjectedFailuresHitTheNextRequests)
{
    auto pods = makePods(7, 1, 1);
    BootstrapService svc(*pods.dists[0], {});
    svc.injectFailures(2);
    auto t1 = svc.submit(makeInput(*pods.ctx, *pods.ev, 0));
    auto t2 = svc.submit(makeInput(*pods.ctx, *pods.ev, 1));
    auto t3 = svc.submit(makeInput(*pods.ctx, *pods.ev, 2));
    EXPECT_THROW(t1->wait(), PodError);
    EXPECT_THROW(t2->wait(), PodError);
    EXPECT_NO_THROW(t3->wait());
    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.injectedFailures, 2u);
    EXPECT_EQ(m.failed, 2u);
    EXPECT_EQ(m.completed, 1u);
}

// Regression: wait() used to dereference a moved-out optional on the
// second call (UB). It must throw a clear UserError instead, while a
// FAILED ticket keeps rethrowing its original error on every wait().
TEST(ServiceChaos, TicketDoubleWaitThrowsUserError)
{
    auto pods = makePods(7, 1, 1);
    BootstrapService svc(*pods.dists[0], {});
    auto t = svc.submit(makeInput(*pods.ctx, *pods.ev, 0));
    EXPECT_NO_THROW(t->wait());
    EXPECT_THROW(t->wait(), UserError);

    svc.injectFailures(1);
    auto f = svc.submit(makeInput(*pods.ctx, *pods.ev, 1));
    EXPECT_THROW(f->wait(), PodError);
    EXPECT_THROW(f->wait(), PodError); // error is re-thrown, not UserError
}

// ---------------------------------------------------------------------
// Cluster failover, shedding, and breaker-driven routing.

TEST(ClusterChaos, FailoverCompletesOnAnotherPodWithExactAccounting)
{
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .name = "t1"});
    ServiceCluster cluster(distPtrs(pods), reg, {});
    const size_t pref = cluster.preferredPod(1);

    cluster.pod(pref).injectFailures(1);
    auto t = cluster.submit(1, makeInput(*pods.ctx, *pods.ev, 0));
    EXPECT_NO_THROW(t->wait());
    const RequestReport rep = t->report();
    EXPECT_EQ(rep.attempts, 2u);
    EXPECT_EQ(rep.servedPod, static_cast<int>(1 - pref));
    cluster.drain();

    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.requestsCompleted, 1u);
    EXPECT_EQ(m.requestsFailed, 0u);
    EXPECT_EQ(m.failovers, 1u);
    EXPECT_EQ(m.failoverSucceeded, 1u);
    EXPECT_EQ(m.liveFlights, 0u);
    // Exactly one admission, settled exactly once, despite 2 attempts.
    const TenantStats ts = reg.stats(1);
    EXPECT_EQ(ts.submitted, 1u);
    EXPECT_EQ(ts.completed, 1u);
    EXPECT_EQ(ts.failed, 0u);
    EXPECT_EQ(ts.inFlight, 0u);
    // The failover landed cache-cold on the other pod: both caches
    // saw the tenant's keys.
    EXPECT_GE(cluster.keyCache(pref).stats().misses, 1u);
    EXPECT_GE(cluster.keyCache(1 - pref).stats().misses, 1u);
}

TEST(ClusterChaos, FailoverBudgetExhaustionIsTerminal)
{
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .name = "t1"});
    ClusterConfig cfg;
    cfg.failover.maxAttempts = 1; // failover disabled
    ServiceCluster cluster(distPtrs(pods), reg, cfg);

    cluster.pod(cluster.preferredPod(1)).injectFailures(1);
    auto t = cluster.submit(1, makeInput(*pods.ctx, *pods.ev, 0));
    EXPECT_THROW(t->wait(), PodError);
    cluster.drain();

    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.requestsFailed, 1u);
    EXPECT_EQ(m.failoverExhausted, 1u);
    EXPECT_EQ(m.failovers, 0u);
    const TenantStats ts = reg.stats(1);
    EXPECT_EQ(ts.completed, 0u);
    EXPECT_EQ(ts.failed, 1u);
    EXPECT_EQ(ts.inFlight, 0u);
}

TEST(ClusterChaos, DeadlineShedRejectsNegativeSlack)
{
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .name = "t1"});
    ClusterConfig cfg;
    cfg.shedding.enabled = true;
    cfg.shedding.slackFactor = 1.0;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);

    // Modeled request cost without a model is n * 0.01 ms = 0.64 ms:
    // a 0.01 ms deadline has negative modeled slack even on an idle
    // pod and must be shed BEFORE any admission.
    SubmitOptions tight;
    tight.deadlineMs = 0.01;
    EXPECT_THROW(
        cluster.submit(1, makeInput(*pods.ctx, *pods.ev, 0), tight),
        UserError);
    // A generous deadline passes.
    SubmitOptions loose;
    loose.deadlineMs = 60000.0;
    auto t =
        cluster.submit(1, makeInput(*pods.ctx, *pods.ev, 1), loose);
    EXPECT_NO_THROW(t->wait());
    cluster.drain();

    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.rejectedShedDeadline, 1u);
    EXPECT_EQ(m.rejectedShedBrownout, 0u);
    const TenantStats ts = reg.stats(1);
    EXPECT_EQ(ts.rejectedShed, 1u);
    // The shed never touched the admission accounting.
    EXPECT_EQ(ts.submitted, 1u);
    EXPECT_EQ(ts.inFlight, 0u);
}

TEST(ClusterChaos, BrownoutShedsLowPriorityUnderOverload)
{
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .name = "t1"});
    ClusterConfig cfg;
    cfg.shedding.enabled = true;
    cfg.shedding.brownoutLoadMs = 0.1; // any outstanding work trips it
    cfg.shedding.brownoutMinPriority = 1;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);

    // Hold the pods so modeled load stays outstanding.
    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).pause();
    }
    SubmitOptions high;
    high.priority = 2;
    auto t1 =
        cluster.submit(1, makeInput(*pods.ctx, *pods.ev, 0), high);
    // Low-priority work is browned out while load is outstanding...
    SubmitOptions low;
    low.priority = 0;
    EXPECT_THROW(
        cluster.submit(1, makeInput(*pods.ctx, *pods.ev, 1), low),
        UserError);
    // ...but priority at/above the floor still gets in.
    auto t2 =
        cluster.submit(1, makeInput(*pods.ctx, *pods.ev, 2), high);
    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).resume();
    }
    EXPECT_NO_THROW(t1->wait());
    EXPECT_NO_THROW(t2->wait());
    cluster.drain();

    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.rejectedShedBrownout, 1u);
    EXPECT_EQ(m.requestsCompleted, 2u);
    EXPECT_EQ(reg.stats(1).rejectedShed, 1u);
    EXPECT_EQ(reg.stats(1).inFlight, 0u);
}

TEST(ClusterChaos, BreakerOpensOnCrashedPodAndReclosesAfterRecovery)
{
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .name = "t1"});
    ClusterConfig cfg;
    cfg.breaker.window = 4;
    cfg.breaker.minSamples = 2;
    cfg.breaker.failureThreshold = 0.5;
    cfg.breaker.probeAfterSkips = 2;
    cfg.breaker.wedgeDecisions = 0;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);
    const size_t pref = cluster.preferredPod(1);

    cluster.pod(pref).crash();
    // Sequential submissions: each routing decision observes the
    // crash deterministically, trips the breaker after minSamples,
    // probes after probeAfterSkips, and every request still completes
    // on the healthy pod.
    for (size_t r = 0; r < 5; ++r) {
        auto t = cluster.submit(1, makeInput(*pods.ctx, *pods.ev, r));
        ASSERT_NO_THROW(t->wait()) << "request " << r;
        EXPECT_EQ(t->report().servedPod,
                  static_cast<int>(1 - pref));
    }
    {
        const BreakerStats bs = cluster.breakerStats(pref);
        EXPECT_EQ(bs.state, BreakerState::Open);
        EXPECT_GE(bs.opens, 1u);
        EXPECT_GE(bs.skippedRouting, 1u);
    }
    cluster.pod(pref).recover();
    // Keep submitting: the probe cadence re-tests the pod, the probe
    // succeeds, and the breaker re-closes.
    bool reclosed = false;
    for (size_t r = 5; r < 15 && !reclosed; ++r) {
        auto t = cluster.submit(1, makeInput(*pods.ctx, *pods.ev, r));
        ASSERT_NO_THROW(t->wait());
        reclosed =
            cluster.breakerStats(pref).state == BreakerState::Closed;
    }
    EXPECT_TRUE(reclosed) << "breaker never re-closed after recovery";
    EXPECT_GE(cluster.breakerStats(pref).probes, 1u);
    EXPECT_GE(cluster.breakerStats(pref).closes, 1u);
    cluster.drain();
    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.requestsFailed, 0u);
    EXPECT_EQ(reg.stats(1).inFlight, 0u);
}

TEST(ClusterChaos, WedgedPodIsDetectedAndRoutedAround)
{
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .name = "t1"});
    ClusterConfig cfg;
    cfg.breaker.wedgeDecisions = 3;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);
    const size_t pref = cluster.preferredPod(1);

    // Wedge the preferred pod BEFORE any submission so the first
    // requests deterministically sit in it (pause stops processing,
    // not intake).
    cluster.pod(pref).pause();
    // Routing decision 1 sees no backlog anywhere (a pod with no
    // outstanding work cannot be wedged) and lands on the preferred
    // pod, where the request sits. Decisions 2 and 3 see the backlog
    // but are still under the wedgeDecisions staleness budget, so
    // they land there too; decision 4 crosses it, declares the pod
    // wedged, and routes around it from then on.
    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    for (size_t r = 0; r < 6; ++r) {
        tickets.push_back(
            cluster.submit(1, makeInput(*pods.ctx, *pods.ev, r)));
    }
    {
        const BreakerStats bs = cluster.breakerStats(pref);
        EXPECT_TRUE(bs.wedged);
        EXPECT_EQ(bs.wedgeOpens, 1u);
    }
    // Unwedging lets the held requests finish; completions clear the
    // wedge.
    cluster.pod(pref).resume();
    for (auto& t : tickets) {
        EXPECT_NO_THROW(t->wait());
    }
    cluster.drain();
    EXPECT_EQ(tickets[0]->report().servedPod, static_cast<int>(pref));
    EXPECT_EQ(tickets[5]->report().servedPod,
              static_cast<int>(1 - pref))
        << "post-detection submissions must route around the wedge";
    const BreakerStats bs = cluster.breakerStats(pref);
    EXPECT_FALSE(bs.wedged);
    EXPECT_EQ(cluster.metrics().requestsFailed, 0u);
    EXPECT_EQ(reg.stats(1).inFlight, 0u);
}

} // namespace
} // namespace heap::serve
