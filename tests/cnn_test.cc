/**
 * @file
 * Encrypted CNN inference tests: the conv matrix matches the direct
 * convolution, the homomorphic forward pass tracks the plaintext one,
 * and encrypted classification agrees with plaintext classification
 * on the synthetic dataset.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/cnn.h"

namespace heap::apps {
namespace {

ckks::CkksParams
cnnParams()
{
    ckks::CkksParams p;
    p.n = 128; // 64 slots = 8x8 image
    p.limbBits = 30;
    p.levels = 4;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    return p;
}

struct CnnFixture : ::testing::Test {
    Rng rng{44};
    Dataset data = makeSyntheticMnist38(64, 64, rng);
    SmallCnn cnn{8, 2};

    CnnFixture() { cnn.calibrate(data); }
};

TEST_F(CnnFixture, ConvMatrixMatchesDirectConvolution)
{
    const auto M = cnn.convMatrix();
    const auto& img = data.x[0];
    // Matrix-vector product == infer's internal convolution, checked
    // via the identity head trick: compare against a hand convolution.
    std::vector<double> viaMatrix(64, 0.0);
    for (size_t r = 0; r < 64; ++r) {
        for (size_t c = 0; c < 64; ++c) {
            viaMatrix[r] += M[r][c] * img[c];
        }
    }
    // Interior pixel (3,3): direct stencil application.
    double direct = 0;
    const double k[3][3] = {{0.05, 0.10, 0.05},
                            {0.10, 0.40, 0.10},
                            {0.05, 0.10, 0.05}};
    for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
            direct += k[dr + 1][dc + 1]
                      * img[static_cast<size_t>((3 + dr) * 8 + 3 + dc)];
        }
    }
    EXPECT_NEAR(viaMatrix[3 * 8 + 3], direct, 1e-12);
    // Corner pixel: zero padding drops five taps.
    EXPECT_LT(viaMatrix[0], 0.7 * 1.0 + 1e-9);
}

TEST_F(CnnFixture, PlainClassifierBeatsChance)
{
    Rng rng2(45);
    const auto test = makeSyntheticMnist38(200, 64, rng2);
    size_t correct = 0;
    for (size_t i = 0; i < test.size(); ++i) {
        correct += cnn.classify(test.x[i]) == test.y[i];
    }
    EXPECT_GT(static_cast<double>(correct)
                  / static_cast<double>(test.size()),
              0.8);
}

TEST_F(CnnFixture, EncryptedLogitsMatchPlain)
{
    ckks::Context ctx(cnnParams(), 4242);
    EncryptedCnn enc(ctx, cnn);
    for (size_t i = 0; i < 4; ++i) {
        const auto ct = enc.encryptImage(data.x[i]);
        const auto out = enc.infer(ct);
        EXPECT_EQ(out.level(),
                  ctx.maxLevel() - enc.levelsPerInference());
        const auto got = enc.decryptLogits(out);
        const auto want = cnn.infer(data.x[i]);
        for (size_t k = 0; k < 2; ++k) {
            EXPECT_NEAR(got[k], want[k], 0.05)
                << "image " << i << " logit " << k;
        }
    }
}

TEST_F(CnnFixture, EncryptedClassificationMatchesPlain)
{
    ckks::Context ctx(cnnParams(), 4243);
    EncryptedCnn enc(ctx, cnn);
    Rng rng3(46);
    const auto test = makeSyntheticMnist38(12, 64, rng3);
    size_t agree = 0;
    for (size_t i = 0; i < test.size(); ++i) {
        const auto logits =
            enc.decryptLogits(enc.infer(enc.encryptImage(test.x[i])));
        const int encClass = logits[0] > logits[1] ? 1 : -1;
        agree += encClass == cnn.classify(test.x[i]);
    }
    // CKKS noise may flip near-tie logits; require strong agreement.
    EXPECT_GE(agree, test.size() - 1);
}

TEST_F(CnnFixture, Validation)
{
    EXPECT_THROW(SmallCnn(2, 2), UserError);
    ckks::Context ctx(cnnParams(), 1);
    SmallCnn wrongSize(16, 2); // 256 pixels != 64 slots
    EXPECT_THROW(EncryptedCnn(ctx, wrongSize), UserError);
}

} // namespace
} // namespace heap::apps
