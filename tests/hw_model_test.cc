/**
 * @file
 * Hardware-model tests: the modeled numbers must land on the paper's
 * reported values (Tables II-VII shapes) — resource counts exactly,
 * timings within stated tolerances — and must scale structurally
 * (FPGA count, slot count, n_t).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/app_model.h"
#include "hw/fab_model.h"
#include "hw/pir_model.h"
#include "hw/reference.h"

namespace heap::hw {
namespace {

/** |model/paper - 1| */
double
relErr(double model, double paper)
{
    return std::abs(model / paper - 1.0);
}

struct HwFixture : ::testing::Test {
    FpgaConfig cfg;
    HeapParams params;
};

TEST_F(HwFixture, ParameterSetMatchesSectionIIIC)
{
    EXPECT_EQ(params.logQ(), 216u);
    // RLWE ciphertext ~0.44 MB.
    EXPECT_NEAR(params.rlweBytes() / 1e6, 0.44, 0.02);
    // LWE ciphertext ~2.3 KB.
    EXPECT_NEAR(params.lweBytes() / 1e3, 2.3, 0.1);
}

TEST_F(HwFixture, ResourceModelReproducesTableII)
{
    ResourceModel rm(cfg, params);
    // Memory layout constants of Figures 2-3.
    EXPECT_EQ(rm.uramBlocksPerRlwe(), 12u);
    EXPECT_EQ(rm.bramBlocksPerRlwe(), 192u);
    EXPECT_EQ(rm.uramRlweCapacity(), 80u);
    EXPECT_EQ(rm.bramRlweCapacity(), 20u);

    const auto u = rm.utilization();
    EXPECT_EQ(u.dsp, 6144u);
    EXPECT_EQ(u.uram, 960u);
    EXPECT_EQ(u.bram, 3840u);
    EXPECT_LT(relErr(static_cast<double>(u.lut), 1012000), 0.03);
    EXPECT_LT(relErr(static_cast<double>(u.ff), 1936000), 0.03);
}

TEST_F(HwFixture, KeySizesMatchSectionIIIC)
{
    // Our structural key-size formula gives ~2.1 MB/key (the paper
    // reports 3.52 MB; see EXPERIMENTS.md) — same order, and the
    // headline "an order of magnitude less key traffic than the
    // ~32 GB of conventional bootstrapping" holds either way.
    EXPECT_GT(params.brkBytes(), 1e6);
    EXPECT_LT(params.brkBytes(), 5e6);
    EXPECT_GT(HeapParams::conventionalKeyBytes()
                  / params.brkTotalBytes(),
              10.0);
}

TEST_F(HwFixture, BasicOpsLandNearTableIII)
{
    const OpCostModel ops(cfg, params);
    const auto& rows = ref::table3();
    // Add 0.001 ms, Mult 0.028 ms, Rescale 0.010 ms, Rotate 0.025 ms.
    EXPECT_LT(relErr(ops.addMs(), rows[0].heapMs), 0.5);
    EXPECT_LT(relErr(ops.multMs(), rows[1].heapMs), 0.5);
    EXPECT_LT(relErr(ops.rescaleMs(), rows[2].heapMs), 0.8);
    EXPECT_LT(relErr(ops.rotateMs(), rows[3].heapMs), 0.5);
    // BlindRotate within ~3x of 0.060 ms; the 156x-vs-TFHE-library
    // shape must survive regardless.
    EXPECT_LT(ops.blindRotateMs(), 3.0 * rows[4].heapMs);
    EXPECT_GT(rows[4].tfheMs / ops.blindRotateMs(), 30.0);
}

TEST_F(HwFixture, OperationOrderingMatchesPaper)
{
    const OpCostModel ops(cfg, params);
    // Add << Rescale < Rotate < Mult, as in Table III.
    EXPECT_LT(ops.addMs(), ops.rescaleMs());
    EXPECT_LT(ops.rescaleMs(), ops.rotateMs());
    EXPECT_LT(ops.rotateMs(), ops.multMs());
}

TEST_F(HwFixture, NttThroughputNearTableIV)
{
    const OpCostModel ops(cfg, params);
    const double got = ops.nttThroughputOpsPerSec();
    EXPECT_LT(relErr(got, 210e3), 0.25);
    // Faster than FAB (103K) and HEAX (90K).
    EXPECT_GT(got / 103e3, 1.5);
    EXPECT_GT(got / 90e3, 1.8);
}

TEST_F(HwFixture, BootstrapTimelineMatchesSectionVIE)
{
    const BootstrapModel bm(cfg, params, 8);
    const auto b = bm.bootstrap(4096);
    const auto anchors = ref::bootstrapStages();
    EXPECT_NEAR(b.modSwitchMs, anchors.modSwitchMs, 1e-4);
    EXPECT_NEAR(b.blindRotateMs, anchors.blindRotateMs, 0.01);
    EXPECT_NEAR(b.finishMs, anchors.finishMs, 0.01);
    EXPECT_NEAR(b.totalMs, 1.5, 0.1);
    // BlindRotate dominates the timeline.
    EXPECT_GT(b.blindRotateMs / b.totalMs, 0.8);
}

TEST_F(HwFixture, BootstrapScalesWithFpgasAndSlots)
{
    const BootstrapModel one(cfg, params, 1);
    const BootstrapModel eight(cfg, params, 8);
    // 8 FPGAs process the blind rotations ~8x faster.
    EXPECT_NEAR(one.bootstrap(4096).blindRotateMs
                    / eight.bootstrap(4096).blindRotateMs,
                8.0, 0.2);
    // Sparser packing => fewer LWE ciphertexts => faster (Table VI
    // discussion).
    EXPECT_LT(eight.bootstrap(256).totalMs,
              eight.bootstrap(4096).totalMs);
    EXPECT_LT(eight.bootstrap(1024).totalMs,
              eight.bootstrap(4096).totalMs);
}

TEST_F(HwFixture, BatchCostTermsScaleForTheServingScheduler)
{
    BootstrapModel bm(cfg, params, 8);
    // Compute term: strictly monotone in the batch size, and at the
    // anchor batch (512 cts on one FPGA) it reproduces the measured
    // BlindRotate stage time.
    EXPECT_GT(bm.blindRotateBatchMs(64), bm.blindRotateBatchMs(1));
    EXPECT_GT(bm.blindRotateBatchMs(512), bm.blindRotateBatchMs(64));
    EXPECT_NEAR(bm.blindRotateBatchMs(512), 1.3303, 0.01);
    // Communication term: monotone, and never free (the per-batch
    // CMAC framing overhead survives even a 1-ct batch).
    EXPECT_GT(bm.batchCommMs(64), bm.batchCommMs(1));
    EXPECT_GT(bm.batchCommMs(1), 0.0);
    // Link loss inflates the wire time of the same batch.
    const double clean = bm.batchCommMs(64);
    bm.setLinkLossRate(0.2);
    EXPECT_GT(bm.batchCommMs(64), clean);
    EXPECT_NEAR(bm.batchCommMs(64) / clean, 1.0 / 0.8, 0.2);
}

TEST_F(HwFixture, TMultPerSlotNearTableV)
{
    const BootstrapModel bm(cfg, params, 8);
    const double t = bm.tMultPerSlotUs(4096);
    // Paper: 0.031 us.
    EXPECT_LT(relErr(t, 0.031), 0.3);
    // Beats FAB by an order of magnitude; loses to ARK/SHARP in
    // wall-clock (Table V shape).
    EXPECT_GT(0.477 / t, 10.0);
    EXPECT_LT(0.014 / t, 1.0);
}

TEST_F(HwFixture, LrIterationNearTableVI)
{
    const AppModel app(cfg, params, 8);
    const double t = app.lrIterationSeconds();
    EXPECT_LT(relErr(t, 0.007), 0.25);
    // ~21% of the iteration in bootstrapping (Section VI-F.1).
    const double frac = app.bootstrapFraction(AppModel::helrIteration());
    EXPECT_NEAR(frac, 0.21, 0.08);
    // Beats FAB and FAB-2.
    EXPECT_GT(0.103 / t, 10.0);
    EXPECT_GT(0.081 / t, 8.0);
}

TEST_F(HwFixture, ResnetNearTableVII)
{
    const AppModel app(cfg, params, 8);
    const double t = app.resnetSeconds();
    EXPECT_LT(relErr(t, 0.267), 0.25);
    // ~44% of inference in bootstrapping (Section VI-F.2).
    const double frac =
        app.bootstrapFraction(AppModel::resnetInference());
    EXPECT_NEAR(frac, 0.44, 0.12);
    // Beats CraterLake, loses to ARK/SHARP (Table VII shape).
    EXPECT_GT(0.321 / t, 1.0);
    EXPECT_LT(0.125 / t, 1.0);
}

TEST_F(HwFixture, CommunicationStaysOffCriticalPath)
{
    // Section V: communication between FPGAs is overlapped so it is
    // not the bottleneck at full packing.
    const BootstrapModel bm(cfg, params, 8);
    const auto b = bm.bootstrap(4096);
    EXPECT_LT(b.commMs / b.totalMs, 0.1);
}

TEST_F(HwFixture, FirstPrinciplesEstimateIsReported)
{
    // The unanchored datapath estimate exists and is far larger than
    // the paper's stage anchor — a documented reproduction finding.
    const BootstrapModel bm(cfg, params, 8);
    const double fp = bm.firstPrinciplesBlindRotateMs(4096);
    EXPECT_GT(fp, bm.bootstrap(4096).blindRotateMs);
}

TEST_F(HwFixture, FabStructuralModelNearPublished)
{
    // The conventional-bootstrap baseline priced on the same FU
    // arithmetic must land within ~3x of FAB's published
    // T_mult,a/slot — close enough that every Table V/VI ordering
    // ("HEAP beats FAB by ~15x") is robust to the model error.
    const FabModel fab(cfg);
    const double t = fab.tMultPerSlotUs();
    EXPECT_GT(t, FabModel::publishedTMultPerSlotUs() / 3.0);
    EXPECT_LT(t, FabModel::publishedTMultPerSlotUs() * 3.0);
    // And HEAP's modeled bootstrap beats it by an order of magnitude.
    const BootstrapModel bm(cfg, params, 8);
    EXPECT_GT(t / bm.tMultPerSlotUs(4096), 10.0);
    // FAB's bootstrap dominates its LR iteration (~70%), unlike HEAP.
    EXPECT_GT(FabModel::publishedBootstrapFractionLr(), 0.5);
    // FAB-2: eight FPGAs buy < 20% on the serial bootstrap (the
    // paper's motivating observation) while HEAP scales ~8x.
    const double gain = fab.bootstrapMs() / fab.bootstrapMs(8);
    EXPECT_LT(gain, 1.25);
    EXPECT_GT(gain, 1.1);
    const BootstrapModel one(cfg, params, 1);
    EXPECT_GT(one.bootstrap(4096).blindRotateMs
                  / bm.bootstrap(4096).blindRotateMs,
              7.5);
}

TEST_F(HwFixture, PirModelScalesWithShapeAndFeedsAutoscaling)
{
    const PirModel pm(cfg, params);
    PirShape s;
    s.ringN = 8192;
    s.limbs = 2;
    s.digitsPerLimb = 2;
    s.dims = {64, 64};

    // Every cost term is positive and the timeline adds up.
    EXPECT_GT(pm.externalProductMs(s), 0.0);
    EXPECT_GT(pm.cmuxMs(s), pm.externalProductMs(s));
    EXPECT_GT(pm.queryBytes(s), 0.0);
    EXPECT_GT(pm.responseBytes(s), 0.0);
    // The query (log T RGSW ciphertexts) dwarfs the one-RLWE answer.
    EXPECT_GT(pm.queryBytes(s), pm.responseBytes(s));
    const PirBreakdown b = pm.answer(s);
    EXPECT_NEAR(b.totalMs, b.queryCommMs + b.foldMs + b.responseCommMs,
                1e-9);
    EXPECT_DOUBLE_EQ(b.foldMs, pm.answerMs(s));

    // Dimension 0 folds the full table and must dominate the later,
    // geometrically shrinking folds.
    EXPECT_GT(pm.dimensionFoldMs(s, 0), pm.dimensionFoldMs(s, 1));

    // More cells → more fold work; and the CMux count of a full fold
    // is factorization-invariant (T - 1 trees collapse T cells to 1
    // however the dimensions split), so a flat {4096} layout costs
    // exactly what {64, 64} does — the multi-dim win is the QUERY
    // volume vs the naive one-RLWE-per-cell packing, not the fold.
    PirShape bigger = s;
    bigger.dims = {128, 64};
    EXPECT_GT(pm.answerMs(bigger), pm.answerMs(s));
    PirShape flat = s;
    flat.dims = {4096};
    EXPECT_DOUBLE_EQ(pm.answerMs(flat), pm.answerMs(s));
    EXPECT_DOUBLE_EQ(pm.queryBytes(flat), pm.queryBytes(s));

    // Autoscaling oracle: throughput is the reciprocal cadence, and
    // podsNeeded covers the offered rate with the smallest count.
    const double qps = pm.podThroughputQps(s);
    EXPECT_GT(qps, 0.0);
    EXPECT_EQ(pm.podsNeeded(0.0, s), 1u);
    EXPECT_EQ(pm.podsNeeded(qps * 0.99, s), 1u);
    EXPECT_EQ(pm.podsNeeded(qps * 3.5, s), 4u);
}

TEST_F(HwFixture, ReferenceTablesAreComplete)
{
    EXPECT_EQ(ref::table2().size(), 5u);
    EXPECT_EQ(ref::table3().size(), 5u);
    EXPECT_EQ(ref::table4().size(), 3u);
    EXPECT_EQ(ref::table5().size(), 10u);
    EXPECT_EQ(ref::table6Lr().size(), 10u);
    EXPECT_EQ(ref::table7Resnet().size(), 6u);
    EXPECT_EQ(ref::table8().size(), 3u);
    // HEAP rows close each comparison table.
    EXPECT_EQ(ref::table5().back().work, "HEAP");
    EXPECT_EQ(ref::table6Lr().back().work, "HEAP");
    EXPECT_EQ(ref::table7Resnet().back().work, "HEAP");
}

} // namespace
} // namespace heap::hw
