/**
 * @file
 * TFHE layer tests: LUT/test-polynomial algebra (exhaustive over all
 * rotation amounts), BlindRotate correctness sweeps, CMux selection,
 * programmable bootstrapping, homomorphic automorphisms, and the
 * Chen et al. repacking.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "math/primes.h"
#include "tfhe/blind_rotate.h"
#include "tfhe/repack.h"

namespace heap::tfhe {
namespace {

constexpr size_t kN = 64;

struct TfheFixture : ::testing::Test {
    std::shared_ptr<const math::RnsBasis> basis =
        std::make_shared<math::RnsBasis>(
            kN, math::generateNttPrimes(30, kN, 2));
    Rng rng{777};
    rlwe::SecretKey sk = rlwe::SecretKey::sampleTernary(basis, rng);
    rlwe::GadgetParams gadget{.baseBits = 8, .digitsPerLimb = 4};

    /** Builds an LWE ciphertext mod 2N with an exact, chosen phase. */
    lwe::LweCiphertext
    lweWithPhase(uint64_t phase, const lwe::LweSecretKey& key)
    {
        const uint64_t q = 2 * kN;
        lwe::LweCiphertext ct;
        ct.modulus = q;
        ct.a.resize(key.coeffs.size());
        uint64_t dot = 0;
        for (size_t j = 0; j < ct.a.size(); ++j) {
            ct.a[j] = rng.uniform(q);
            dot = math::addMod(
                dot,
                math::mulModNaive(
                    ct.a[j], math::fromCentered(key.coeffs[j], q), q),
                q);
        }
        ct.b = math::subMod(phase % q, dot, q);
        return ct;
    }
};

TEST_F(TfheFixture, TestPolyEncodesLutExhaustively)
{
    // Pure polynomial property: for every u in [0, 2N), the constant
    // coefficient of f * X^u equals the negacyclic extension of F.
    auto F = [](uint64_t u) {
        return static_cast<int64_t>(u * u % 97) - 48;
    };
    const auto f = buildTestPoly(basis, 1, F);
    const uint64_t q = basis->modulus(0);
    for (uint64_t u = 0; u < 2 * kN; ++u) {
        const auto rotated = f.monomialMul(u);
        const int64_t got =
            math::toCentered(rotated.limb(0)[0], q);
        const int64_t want = u < kN ? F(u) : -F(u - kN);
        ASSERT_EQ(got, want) << "u=" << u;
    }
}

TEST_F(TfheFixture, IdentityTestPolyIsTriangleWave)
{
    const uint64_t scale = 1000;
    const auto f = buildIdentityTestPoly(basis, 1, scale);
    const uint64_t q = basis->modulus(0);
    // Identity region: centered u with |u| < N/2.
    for (int64_t u = -static_cast<int64_t>(kN) / 2 + 1;
         u < static_cast<int64_t>(kN) / 2; ++u) {
        const uint64_t uu = static_cast<uint64_t>(
            (u + 2 * static_cast<int64_t>(kN)) % (2 * static_cast<int64_t>(kN)));
        const auto rotated = f.monomialMul(uu);
        ASSERT_EQ(math::toCentered(rotated.limb(0)[0], q),
                  static_cast<int64_t>(scale) * u)
            << "u=" << u;
    }
}

TEST_F(TfheFixture, BlindRotateSweepsAllPhases)
{
    const size_t dim = 16;
    const auto lweKey = lwe::LweSecretKey::sampleTernary(dim, rng);
    const auto brk =
        makeBlindRotateKey(sk, lweKey.coeffs, gadget, rng);
    const uint64_t scale = 1 << 20;
    const auto f = buildIdentityTestPoly(basis, 2, scale);

    for (int64_t u : {0LL, 1LL, 5LL, -1LL, -17LL,
                      static_cast<long long>(kN) / 2 - 1,
                      -(static_cast<long long>(kN) / 2 - 1)}) {
        const uint64_t uu = static_cast<uint64_t>(
            (u + 4 * static_cast<int64_t>(kN)) % (2 * static_cast<int64_t>(kN)));
        const auto lwe = lweWithPhase(uu, lweKey);
        auto acc = blindRotate(lwe, f, brk);
        const auto dec = rlwe::decryptSigned(acc, sk);
        // Accumulated EP noise ~ 2 * dim * B * sigma * sqrt(N*l*d).
        EXPECT_NEAR(static_cast<double>(dec[0]),
                    static_cast<double>(u) * scale, 1.5e6)
            << "u=" << u;
    }
}

TEST_F(TfheFixture, BatchBlindRotateMatchesPerCiphertext)
{
    // The key-major schedule of Section IV-E must be bit-identical to
    // the per-ciphertext loop: the external products commute across
    // independent accumulators.
    const size_t dim = 8;
    const auto lweKey = lwe::LweSecretKey::sampleTernary(dim, rng);
    const auto brk = makeBlindRotateKey(sk, lweKey.coeffs, gadget, rng);
    const auto f = buildIdentityTestPoly(basis, 2, 1 << 18);

    std::vector<lwe::LweCiphertext> lwes;
    for (uint64_t u : {3ULL, 77ULL, 120ULL, 0ULL}) {
        lwes.push_back(lweWithPhase(u, lweKey));
    }
    const auto batch = blindRotateBatch(lwes, f, brk);
    ASSERT_EQ(batch.size(), lwes.size());
    for (size_t c = 0; c < lwes.size(); ++c) {
        const auto single = blindRotate(lwes[c], f, brk);
        for (size_t i = 0; i < single.limbCount(); ++i) {
            ASSERT_TRUE(std::equal(single.a.limb(i).begin(),
                                   single.a.limb(i).end(),
                                   batch[c].a.limb(i).begin()))
                << "ct " << c << " limb " << i;
            ASSERT_TRUE(std::equal(single.b.limb(i).begin(),
                                   single.b.limb(i).end(),
                                   batch[c].b.limb(i).begin()));
        }
    }
}

TEST_F(TfheFixture, BlindRotateRejectsWrongModulus)
{
    const auto lweKey = lwe::LweSecretKey::sampleTernary(4, rng);
    const auto brk = makeBlindRotateKey(sk, lweKey.coeffs, gadget, rng);
    const auto f = buildIdentityTestPoly(basis, 1, 100);
    lwe::LweCiphertext bad;
    bad.modulus = 4 * kN;
    bad.a.assign(4, 0);
    EXPECT_THROW(blindRotate(bad, f, brk), UserError);
}

TEST_F(TfheFixture, BlindRotateKeyRequiresTernarySecret)
{
    std::vector<int64_t> nonTernary = {0, 2, 1, 0};
    EXPECT_THROW(makeBlindRotateKey(sk, nonTernary, gadget, rng),
                 UserError);
}

TEST_F(TfheFixture, CmuxSelects)
{
    std::vector<int64_t> m0(kN, 0), m1(kN, 0);
    m0[0] = 1 << 20;
    m1[0] = -(1 << 20);
    const auto ct0 =
        rlwe::encrypt(sk, math::rnsFromSigned(basis, 2, m0), rng);
    const auto ct1 =
        rlwe::encrypt(sk, math::rnsFromSigned(basis, 2, m1), rng);
    const auto sel0 = rlwe::rgswEncryptConstant(sk, 0, gadget, rng);
    const auto sel1 = rlwe::rgswEncryptConstant(sk, 1, gadget, rng);

    const auto out0 = cmux(sel0, ct0, ct1);
    const auto out1 = cmux(sel1, ct0, ct1);
    EXPECT_NEAR(static_cast<double>(rlwe::decryptSigned(out0, sk)[0]),
                std::pow(2.0, 20), 2e5);
    EXPECT_NEAR(static_cast<double>(rlwe::decryptSigned(out1, sk)[0]),
                -std::pow(2.0, 20), 2e5);
}

TEST_F(TfheFixture, ProgrammableBootstrapEvaluatesLut)
{
    // 3-bit message space: LUT computes x -> x^2 mod 8, encoded in the
    // top bits of a 30-bit modulus.
    const size_t dim = 16;
    const auto lweKey = lwe::LweSecretKey::sampleTernary(dim, rng);
    const auto brk = makeBlindRotateKey(sk, lweKey.coeffs, gadget, rng);

    const uint64_t q = basis->modulus(0);
    // 3-bit messages at delta = q/16 so that the 2N-bucket rounding
    // error of the modulus switch (~ sqrt(dim)/2 buckets) stays well
    // inside one message step (2N/16 = 8 buckets).
    const double delta = static_cast<double>(q) / 16.0;
    auto F = [&](uint64_t u) {
        const double msg = static_cast<double>(u) * 16.0
                           / static_cast<double>(2 * kN);
        const auto x = static_cast<int64_t>(std::llround(msg)) % 8;
        return static_cast<int64_t>(
            std::llround(static_cast<double>((x * x) % 8) * delta));
    };
    for (int64_t x : {0LL, 1LL, 2LL, 3LL, 5LL, 7LL}) {
        const auto ct = lwe::lweEncrypt(
            static_cast<int64_t>(std::llround(delta * x)), lweKey, q,
            rng);
        const auto out = programmableBootstrap(ct, F, brk, basis, 2);
        const lwe::LweSecretKey ringKey{sk.coeffs()};
        double got = static_cast<double>(lwe::lweDecrypt(out, ringKey))
                     / delta;
        if (got < -0.5) {
            got += 16.0; // phase is centered; fold back to [0, 16)
        }
        EXPECT_NEAR(got, static_cast<double>((x * x) % 8), 0.05)
            << "x=" << x;
    }
}

TEST_F(TfheFixture, EvalAutoMatchesPlaintextAutomorphism)
{
    std::vector<int64_t> m(kN);
    for (auto& v : m) {
        v = static_cast<int64_t>(rng.uniform(1 << 18)) - (1 << 17);
    }
    auto ct = rlwe::encrypt(sk, math::rnsFromSigned(basis, 2, m), rng);
    const uint64_t t = 5;
    const auto key = rlwe::makeAutomorphismKey(sk, t, gadget, rng);
    const auto out = rlwe::evalAuto(ct, t, key);

    // Plaintext reference.
    const auto ref = math::rnsFromSigned(basis, 1, m).automorphism(t);
    const auto dec = rlwe::decryptSigned(out, sk);
    const uint64_t q0 = basis->modulus(0);
    for (size_t i = 0; i < kN; ++i) {
        ASSERT_NEAR(static_cast<double>(dec[i]),
                    static_cast<double>(
                        math::toCentered(ref.limb(0)[i], q0)),
                    2e5)
            << "i=" << i;
    }
}

TEST_F(TfheFixture, PackRlwesPlacesPayloads)
{
    const size_t count = 8;
    const auto keys = makePackingKeys(sk, count, gadget, rng);
    std::vector<rlwe::Ciphertext> cts;
    std::vector<int64_t> payload;
    for (size_t j = 0; j < count; ++j) {
        std::vector<int64_t> m(kN, 0);
        m[0] = (static_cast<int64_t>(j) - 3) * (1 << 18);
        payload.push_back(m[0]);
        auto ct =
            rlwe::encrypt(sk, math::rnsFromSigned(basis, 2, m), rng);
        ct.toCoeff();
        cts.push_back(std::move(ct));
    }
    const auto packed = packRlwes(cts, keys);
    const auto dec = rlwe::decryptSigned(packed, sk);
    for (size_t j = 0; j < count; ++j) {
        EXPECT_NEAR(static_cast<double>(dec[j * (kN / count)]),
                    static_cast<double>(count) *
                        static_cast<double>(payload[j]),
                    5e6)
            << "slot " << j;
    }
}

TEST_F(TfheFixture, PackRlwesValidation)
{
    const auto keys = makePackingKeys(sk, 4, gadget, rng);
    EXPECT_THROW(packRlwes({}, keys), UserError);
    std::vector<rlwe::Ciphertext> three(3);
    EXPECT_THROW(packRlwes(three, keys), UserError);
}

TEST_F(TfheFixture, LweToRlweKeepsConstantCoefficient)
{
    const lwe::LweSecretKey ringKey{sk.coeffs()};
    const uint64_t q0 = basis->modulus(0);
    const int64_t m = 1 << 22;
    const auto lct = lwe::lweEncrypt(m, ringKey, q0, rng);
    const auto rct = lweToRlwe(lct, basis, 1);
    const auto dec = rlwe::decryptSigned(rct, sk);
    EXPECT_NEAR(static_cast<double>(dec[0]), static_cast<double>(m),
                32.0);
}

} // namespace
} // namespace heap::tfhe
