/**
 * @file
 * LWE layer tests: encryption round trips, sample extraction against
 * the RLWE phase oracle, modulus switching error bounds, and LWE key
 * switching.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "lwe/lwe.h"
#include "math/modarith.h"
#include "math/primes.h"
#include "math/rns.h"
#include "math/sampling.h"
#include "rlwe/rlwe.h"

namespace heap::lwe {
namespace {

TEST(Lwe, EncryptDecryptRoundTrip)
{
    Rng rng(31);
    const uint64_t q = 1ULL << 30;
    const auto sk = LweSecretKey::sampleTernary(512, rng);
    for (int64_t m : {0LL, 1000LL, -1000LL, 1LL << 25, -(1LL << 25)}) {
        const auto ct = lweEncrypt(m, sk, q, rng);
        EXPECT_NEAR(static_cast<double>(lweDecrypt(ct, sk)),
                    static_cast<double>(m), 20.0);
    }
}

TEST(Lwe, PhaseIsLinear)
{
    Rng rng(32);
    const uint64_t q = (1ULL << 40) - 87; // any modulus works
    const auto sk = LweSecretKey::sampleTernary(128, rng);
    const auto c1 = lweEncrypt(5000, sk, q, rng);
    auto c2 = lweEncrypt(-3000, sk, q, rng);
    // Manual addition.
    LweCiphertext sum;
    sum.modulus = q;
    sum.b = math::addMod(c1.b, c2.b, q);
    sum.a.resize(c1.a.size());
    for (size_t i = 0; i < c1.a.size(); ++i) {
        sum.a[i] = math::addMod(c1.a[i], c2.a[i], q);
    }
    EXPECT_NEAR(static_cast<double>(lweDecrypt(sum, sk)), 2000.0, 40.0);
}

class ExtractTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExtractTest, MatchesRlwePhaseCoefficient)
{
    // The LWE extracted at index i must have exactly the phase of the
    // i-th coefficient of the RLWE phase polynomial.
    const size_t n = 64;
    Rng rng(33);
    const auto basis = std::make_shared<math::RnsBasis>(
        n, math::generateNttPrimes(30, n, 1));
    const uint64_t q = basis->modulus(0);
    const auto rsk = rlwe::SecretKey::sampleTernary(basis, rng);
    std::vector<int64_t> m(n);
    for (auto& v : m) {
        v = static_cast<int64_t>(rng.uniform(1 << 20)) - (1 << 19);
    }
    auto ct = rlwe::encrypt(rsk, math::rnsFromSigned(basis, 1, m), rng);
    ct.toCoeff();
    const auto phasePoly = rlwe::phase(ct, rsk);

    const LweSecretKey lsk{rsk.coeffs()};
    const size_t idx = GetParam();
    const auto lct = extractLwe(ct.a.limb(0), ct.b.limb(0), idx, q);
    const int64_t lphase = lwePhase(lct, lsk);
    EXPECT_EQ(lphase, math::toCentered(phasePoly.limb(0)[idx], q));
}

INSTANTIATE_TEST_SUITE_P(Indices, ExtractTest,
                         ::testing::Values<size_t>(0, 1, 31, 62, 63));

TEST(Lwe, ModSwitchKeepsScaledPhase)
{
    Rng rng(34);
    const uint64_t q = 1ULL << 32;
    const uint64_t q2 = 1ULL << 11; // 2N for N = 1024
    const size_t dim = 256;
    const auto sk = LweSecretKey::sampleTernary(dim, rng);
    // Message encoded in the high bits so it survives the switch.
    const int64_t m = 37LL << 22; // 37 * q / 2^10
    const auto ct = lweEncrypt(m, sk, q, rng);
    const auto sw = lweModSwitch(ct, q2);
    EXPECT_EQ(sw.modulus, q2);
    const int64_t got = lwePhase(sw, sk);
    const double want = static_cast<double>(m) * static_cast<double>(q2)
                        / static_cast<double>(q);
    // Rounding error ~ sqrt(dim)/2 per the modulus-switch analysis.
    EXPECT_NEAR(static_cast<double>(got), want,
                3.0 * std::sqrt(static_cast<double>(dim)));
}

TEST(Lwe, KeySwitchToShorterKey)
{
    Rng rng(35);
    const uint64_t q = 1ULL << 30;
    const auto skLong = LweSecretKey::sampleTernary(512, rng);
    const auto skShort = LweSecretKey::sampleTernary(128, rng);
    const auto ksk = makeLweKeySwitchKey(skShort, skLong, q, 5, rng);
    EXPECT_EQ(ksk.digits, 6);

    const int64_t m = 123LL << 20;
    const auto ct = lweEncrypt(m, skLong, q, rng);
    const auto sw = lweKeySwitch(ct, ksk);
    EXPECT_EQ(sw.dimension(), 128u);
    // KS noise ~ B * sigma * sqrt(srcDim * digits) ~ 2^5*3.2*sqrt(3072).
    EXPECT_NEAR(static_cast<double>(lweDecrypt(sw, skShort)),
                static_cast<double>(m), 1e5);
}

TEST(Lwe, KeySwitchRejectsDimensionMismatch)
{
    Rng rng(36);
    const uint64_t q = 1ULL << 30;
    const auto skLong = LweSecretKey::sampleTernary(64, rng);
    const auto skShort = LweSecretKey::sampleTernary(32, rng);
    const auto ksk = makeLweKeySwitchKey(skShort, skLong, q, 4, rng);
    const auto ct = lweEncrypt(0, skShort, q, rng); // wrong dim (32)
    EXPECT_THROW(lweKeySwitch(ct, ksk), UserError);
}

class LweModuliSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LweModuliSweep, RoundTripAndKeySwitchAcrossModuli)
{
    // The LWE layer must work at power-of-two and prime moduli alike
    // (2N for blind rotation, q0 for the gate pipeline).
    const uint64_t q = GetParam();
    Rng rng(q ^ 0xabcdef);
    const auto skLong = LweSecretKey::sampleTernary(128, rng);
    const auto skShort = LweSecretKey::sampleTernary(48, rng);
    const int64_t m = static_cast<int64_t>(q / 16);

    const auto ct = lweEncrypt(m, skLong, q, rng);
    EXPECT_NEAR(static_cast<double>(lweDecrypt(ct, skLong)),
                static_cast<double>(m), 20.0);

    const auto ksk = makeLweKeySwitchKey(skShort, skLong, q, 4, rng);
    const auto sw = lweKeySwitch(ct, ksk);
    // KS noise ~ B sigma sqrt(srcDim * digits) stays far below q/16.
    EXPECT_NEAR(static_cast<double>(lweDecrypt(sw, skShort)),
                static_cast<double>(m),
                static_cast<double>(q) / 64.0);
}

INSTANTIATE_TEST_SUITE_P(
    Moduli, LweModuliSweep,
    ::testing::Values(1ULL << 20, 1ULL << 30, 1ULL << 40,
                      (1ULL << 30) + 3393, 786433ULL));

TEST(Lwe, ExtractValidation)
{
    std::vector<uint64_t> a(8, 0), b(7, 0);
    EXPECT_THROW(extractLwe(a, b, 0, 97), UserError);
    b.resize(8);
    EXPECT_THROW(extractLwe(a, b, 8, 97), UserError);
}

} // namespace
} // namespace heap::lwe
