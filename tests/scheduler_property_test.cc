/**
 * @file
 * Property tests for the ItemQueue scheduling policy: random
 * add/formBatch sequences are replayed against a brute-force oracle
 * (selection sort under the documented ranking, greedy grab), and the
 * liveness invariants are checked on every step — the starvation
 * boost is monotone and dominant, EDF ties break by arrival, and no
 * request stays pending past the boost horizon while batches keep
 * forming.
 */

#include <algorithm>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "serve/scheduler.h"

namespace heap::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Brute-force reimplementation of the documented policy, kept
 * deliberately naive (selection scan instead of sort, explicit item
 * loop) so a bug in the real queue cannot hide in shared code.
 */
class OracleQueue {
  public:
    explicit OracleQueue(size_t starvationPasses)
        : horizon_(starvationPasses)
    {
    }

    void
    add(uint64_t id, int priority, double deadlineAbsMs,
        size_t itemCount)
    {
        entries_.push_back(
            {id, priority, deadlineAbsMs, seq_++, 0, itemCount, 0});
    }

    size_t
    pendingItems() const
    {
        size_t n = 0;
        for (const E& e : entries_) {
            n += e.count - e.next;
        }
        return n;
    }

    double
    minDeadline() const
    {
        double m = kInf;
        for (const E& e : entries_) {
            m = std::min(m, e.deadline);
        }
        return m;
    }

    /** Entries currently at or past the boost horizon, oldest first. */
    std::vector<uint64_t>
    boosted() const
    {
        std::vector<const E*> b;
        for (const E& e : entries_) {
            if (e.passes >= horizon_) {
                b.push_back(&e);
            }
        }
        std::sort(b.begin(), b.end(), [](const E* a, const E* c) {
            return a->seq < c->seq;
        });
        std::vector<uint64_t> ids;
        for (const E* e : b) {
            ids.push_back(e->id);
        }
        return ids;
    }

    std::vector<WorkItem>
    form(size_t maxItems)
    {
        // Rank all entries by repeated selection of the best one.
        std::vector<E*> order;
        std::vector<E*> rest;
        for (E& e : entries_) {
            rest.push_back(&e);
        }
        while (!rest.empty()) {
            size_t best = 0;
            for (size_t i = 1; i < rest.size(); ++i) {
                if (ranks(*rest[i], *rest[best])) {
                    best = i;
                }
            }
            order.push_back(rest[best]);
            rest.erase(rest.begin()
                       + static_cast<std::ptrdiff_t>(best));
        }

        std::vector<WorkItem> items;
        for (E* e : order) {
            if (items.size() == maxItems) {
                ++e->passes;
                continue;
            }
            while (e->next < e->count && items.size() < maxItems) {
                items.push_back(WorkItem{e->id, e->next++});
            }
            e->passes = 0;
        }
        entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                      [](const E& e) {
                                          return e.next == e.count;
                                      }),
                       entries_.end());
        return items;
    }

  private:
    struct E {
        uint64_t id;
        int priority;
        double deadline;
        uint64_t seq;
        size_t next;
        size_t count;
        size_t passes;
    };

    bool
    ranks(const E& a, const E& b) const
    {
        const bool aB = a.passes >= horizon_;
        const bool bB = b.passes >= horizon_;
        if (aB != bB) {
            return aB;
        }
        if (aB) {
            return a.seq < b.seq;
        }
        if (a.priority != b.priority) {
            return a.priority > b.priority;
        }
        if (a.deadline != b.deadline) {
            return a.deadline < b.deadline;
        }
        return a.seq < b.seq;
    }

    size_t horizon_;
    uint64_t seq_ = 0;
    std::vector<E> entries_;
};

TEST(ItemQueueProperty, RandomOpsMatchBruteForceOracle)
{
    for (const unsigned seed : {7u, 21u, 42u, 1234u}) {
        std::mt19937 rng(seed);
        const size_t horizon = 1 + rng() % 4;
        ItemQueue q(horizon);
        OracleQueue oracle(horizon);
        uint64_t nextId = 1;

        for (int step = 0; step < 400; ++step) {
            const bool doAdd = q.empty() || rng() % 3 != 0;
            if (doAdd) {
                const int pri = static_cast<int>(rng() % 5) - 2;
                const double dl = rng() % 2 == 0
                                      ? kInf
                                      : static_cast<double>(rng() % 7)
                                            * 100.0;
                const size_t items = 1 + rng() % 7;
                q.addRequest(nextId, pri, dl, items);
                oracle.add(nextId, pri, dl, items);
                ++nextId;
            } else {
                // Liveness precondition, checked BEFORE the batch
                // forms: whoever is past the boost horizon must open
                // the next batch, oldest arrival first.
                const auto boosted = oracle.boosted();
                const size_t maxItems = 1 + rng() % 10;
                const PlannedBatch got = q.formBatch(maxItems);
                const auto want = oracle.form(maxItems);

                ASSERT_EQ(got.items.size(), want.size())
                    << "seed " << seed << " step " << step;
                for (size_t i = 0; i < want.size(); ++i) {
                    EXPECT_EQ(got.items[i].requestId,
                              want[i].requestId)
                        << "seed " << seed << " step " << step
                        << " item " << i;
                    EXPECT_EQ(got.items[i].index, want[i].index)
                        << "seed " << seed << " step " << step
                        << " item " << i;
                }
                if (!boosted.empty() && !got.items.empty()) {
                    EXPECT_EQ(got.items[0].requestId, boosted[0])
                        << "seed " << seed << " step " << step;
                }
            }
            EXPECT_EQ(q.pendingItems(), oracle.pendingItems());
            EXPECT_EQ(q.empty(), oracle.pendingItems() == 0);
            EXPECT_EQ(q.minDeadlineAbsMs(), oracle.minDeadline());
        }
    }
}

TEST(ItemQueueProperty, NoRequestStarvesPastTheBoostHorizon)
{
    // An adversarial stream of fresh top-priority arrivals, each
    // exactly filling the next batch: the low-priority victim must
    // still be served within horizon + 1 batch formations.
    constexpr size_t kHorizon = 3;
    ItemQueue q(kHorizon);
    q.addRequest(1, -5, kInf, 2); // the victim
    uint64_t id = 100;
    size_t batchesUntilVictim = 0;
    bool victimServed = false;
    for (size_t round = 0; round < 2 * kHorizon && !victimServed;
         ++round) {
        q.addRequest(id++, 9, 10.0, 4);
        const PlannedBatch b = q.formBatch(4);
        ++batchesUntilVictim;
        for (const WorkItem& w : b.items) {
            victimServed |= w.requestId == 1;
        }
    }
    EXPECT_TRUE(victimServed);
    EXPECT_LE(batchesUntilVictim, kHorizon + 1);
}

TEST(ItemQueueProperty, BoostIsMonotoneUnderPartialService)
{
    // A partially served request resets its pass counter: it must NOT
    // retain boost credit from before the service.
    ItemQueue q(2);
    q.addRequest(1, 0, kInf, 6);
    q.addRequest(2, 9, kInf, 2);
    q.addRequest(3, 9, kInf, 2);
    // Two batches of 2 serve only the high-priority pair: request 1
    // accrues 2 passes and is boosted.
    EXPECT_EQ(q.formBatch(2).items[0].requestId, 2u);
    EXPECT_EQ(q.formBatch(2).items[0].requestId, 3u);
    // Boosted: request 1 wins over a fresh priority-9 arrival, but
    // only 2 of its 6 items fit — partial service resets the counter.
    q.addRequest(4, 9, kInf, 2);
    EXPECT_EQ(q.formBatch(2).items[0].requestId, 1u);
    // Counter reset: priority order applies again immediately.
    EXPECT_EQ(q.formBatch(2).items[0].requestId, 4u);
    // And the tail of request 1 still drains eventually.
    q.addRequest(5, 9, kInf, 2);
    EXPECT_EQ(q.formBatch(2).items[0].requestId, 5u);  // pass 2 on r1
    EXPECT_EQ(q.formBatch(8).items[0].requestId, 1u);  // boosted again
    EXPECT_TRUE(q.empty());
}

TEST(ItemQueueProperty, EdfTieBreaksByArrivalWithinEqualPriority)
{
    ItemQueue q(8);
    q.addRequest(1, 3, 200.0, 1);
    q.addRequest(2, 3, 200.0, 1); // same priority, same deadline
    q.addRequest(3, 3, 100.0, 1); // same priority, tighter deadline
    const PlannedBatch b = q.formBatch(3);
    ASSERT_EQ(b.items.size(), 3u);
    EXPECT_EQ(b.items[0].requestId, 3u); // EDF first
    EXPECT_EQ(b.items[1].requestId, 1u); // then arrival order
    EXPECT_EQ(b.items[2].requestId, 2u);
}

} // namespace
} // namespace heap::serve
