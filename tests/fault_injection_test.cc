/**
 * @file
 * Fault-tolerance tests for the Section V distributed bootstrap:
 * frame/CRC negative paths, deterministic link fault injection, the
 * retry/NACK protocol's equivalence guarantee (any fault pattern
 * below the retry cap yields a byte-identical bootstrap), reclaim of
 * dead secondaries, and the bounds/basis validation regressions.
 */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "boot/distributed.h"
#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "lwe/serialize.h"

namespace heap::boot {
namespace {

ckks::CkksParams
faultParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

TEST(FrameFormat, Crc32KnownVector)
{
    const std::string s = "123456789";
    const auto* p = reinterpret_cast<const uint8_t*>(s.data());
    EXPECT_EQ(crc32(std::span<const uint8_t>(p, s.size())),
              0xCBF43926u);
    EXPECT_EQ(crc32(std::span<const uint8_t>()), 0u);
}

TEST(FrameFormat, RoundTrip)
{
    const std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 7};
    const auto bytes = frameMessage(FrameType::Acc, 42, payload);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());
    const Frame f = parseFrame(bytes);
    EXPECT_EQ(f.type, FrameType::Acc);
    EXPECT_EQ(f.seq, 42u);
    EXPECT_EQ(f.payload, payload);

    // Empty payload (a NACK).
    const auto nack = frameMessage(FrameType::Nack, 7, {});
    const Frame fn = parseFrame(nack);
    EXPECT_EQ(fn.type, FrameType::Nack);
    EXPECT_EQ(fn.seq, 7u);
    EXPECT_TRUE(fn.payload.empty());
}

TEST(FrameFormat, EverySingleBitFlipIsRejected)
{
    // The CRC covers type, seq, and length as well as the payload, so
    // ANY single-bit corruption of a frame must throw — this is what
    // lets the protocol treat parseFrame() success as "intact".
    const std::vector<uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x00};
    const auto bytes = frameMessage(FrameType::Batch, 3, payload);
    for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto bad = bytes;
        bad[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        EXPECT_THROW(parseFrame(bad), UserError) << "bit " << bit;
    }
}

TEST(FrameFormat, TruncationAndInflationAreRejected)
{
    const std::vector<uint8_t> payload(100, 0x5a);
    const auto bytes = frameMessage(FrameType::Batch, 1, payload);
    // Every strict prefix fails (length mismatch or truncated header).
    for (size_t len = 0; len < bytes.size(); len += 7) {
        EXPECT_THROW(
            parseFrame(std::span<const uint8_t>(bytes.data(), len)),
            UserError)
            << "prefix " << len;
    }
    // Appended garbage fails the length check.
    auto padded = bytes;
    padded.push_back(0);
    EXPECT_THROW(parseFrame(padded), UserError);
    // A length field inflated past the actual payload fails before
    // any allocation or read happens.
    auto inflated = bytes;
    inflated[24] = 0xff; // low byte of the length field
    EXPECT_THROW(parseFrame(inflated), UserError);
}

TEST(FaultyLink, SameSeedSameFaultPattern)
{
    FaultSpec spec;
    spec.drop = 0.2;
    spec.bitflip = 0.2;
    spec.truncate = 0.1;
    spec.duplicate = 0.2;
    spec.reorder = 0.3;
    spec.delay = 0.3;

    auto run = [&](uint64_t seed) {
        SimulatedLink link;
        link.setFaults(spec, seed);
        for (uint8_t m = 0; m < 40; ++m) {
            link.send(std::vector<uint8_t>(8 + m, m));
        }
        std::vector<std::vector<uint8_t>> delivered;
        // Poll well past the max delay so everything drains.
        for (int p = 0; p < 80; ++p) {
            while (auto msg = link.tryReceive()) {
                delivered.push_back(std::move(*msg));
            }
        }
        EXPECT_TRUE(link.empty());
        return delivered;
    };

    const auto a = run(99);
    const auto b = run(99);
    EXPECT_EQ(a, b);
    const auto c = run(100);
    EXPECT_NE(a, c); // different stream actually changes the pattern
}

/** Builds brk/testPoly/node triples for the protocol-level tests. */
struct NodeFixture : ::testing::Test {
    ckks::Context ctx{faultParams(), 77};
    tfhe::BlindRotateKey brk = tfhe::makeBlindRotateKey(
        ctx.secretKey(), ctx.secretKey().coeffs(), kBrGadget, ctx.rng(),
        ctx.noiseParams());
    math::RnsPoly testPoly = makeBootstrapTestPoly(ctx.basis());
    SecondaryNode node{ctx.basis(), &brk, &testPoly};

    std::vector<uint8_t>
    makeBatch(size_t count, uint64_t modulus, size_t dim)
    {
        ByteWriter w;
        w.u64(count);
        for (size_t i = 0; i < count; ++i) {
            lwe::LweCiphertext ct;
            ct.modulus = modulus;
            ct.b = (5 + i) % modulus;
            ct.a.assign(dim, 1 % modulus);
            lwe::saveLwe(ct, w);
        }
        return w.bytes();
    }
};

TEST_F(NodeFixture, ReplyCountMismatchThrowsBeforeAnyWrite)
{
    // Regression for the unchecked `count` out-of-bounds write: a
    // reply whose header disagrees with the batch size the primary
    // sent must throw, never index rotated[] out of range.
    const size_t n = ctx.params().n;
    const auto batch = makeBatch(2, 2 * n, n);
    auto reply = node.processBatch(batch);

    // The honest reply parses against the matching batch size...
    const auto accs = loadAccumulatorReply(reply, 2, ctx.basis());
    EXPECT_EQ(accs.size(), 2u);
    // ...and throws against any other expected size.
    EXPECT_THROW(loadAccumulatorReply(reply, 3, ctx.basis()),
                 UserError);
    EXPECT_THROW(loadAccumulatorReply(reply, 1, ctx.basis()),
                 UserError);

    // Hand-corrupted count field (little-endian u64 at offset 0):
    // declares more accumulators than the batch had.
    auto inflated = reply;
    inflated[0] = 200;
    EXPECT_THROW(loadAccumulatorReply(inflated, 2, ctx.basis()),
                 UserError);
    // Absurdly large count: must throw without crashing or allocating.
    auto huge = reply;
    huge[7] = 0x7f;
    EXPECT_THROW(loadAccumulatorReply(huge, 2, ctx.basis()),
                 UserError);
}

TEST_F(NodeFixture, ForeignBasisBatchNamesTheOffset)
{
    const size_t n = ctx.params().n;
    // Wrong modulus (a different ring's 2N): rejected with the batch
    // offset of the offending LWE in the message.
    const auto wrongMod = makeBatch(2, 4 * n, n);
    try {
        (void)node.processBatch(wrongMod);
        FAIL() << "foreign-modulus batch was accepted";
    } catch (const UserError& e) {
        EXPECT_NE(std::string(e.what()).find("batch offset 0"),
                  std::string::npos)
            << e.what();
    }
    // Wrong dimension: also rejected with the offset.
    const auto wrongDim = makeBatch(1, 2 * n, n / 2);
    try {
        (void)node.processBatch(wrongDim);
        FAIL() << "foreign-dimension batch was accepted";
    } catch (const UserError& e) {
        EXPECT_NE(std::string(e.what()).find("batch offset 0"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(NodeFixture, MutatedBatchesNeverCrash)
{
    // Deterministic fuzz over mutation offsets: every truncation and
    // bit flip of a valid batch either throws UserError or decodes to
    // a structurally valid batch — never crashes, never reads out of
    // bounds (ASan/UBSan builds check the latter).
    const size_t n = ctx.params().n;
    const auto batch = makeBatch(1, 2 * n, n);
    for (size_t len = 0; len < batch.size(); len += 41) {
        try {
            (void)node.processBatch(
                std::span<const uint8_t>(batch.data(), len));
        } catch (const UserError&) {
            // expected for truncations
        }
    }
    for (size_t off = 0; off < batch.size(); off += 37) {
        auto bad = batch;
        bad[off] ^= 0x40;
        try {
            (void)node.processBatch(bad);
        } catch (const UserError&) {
            // rejected mutations are fine; accepted ones must simply
            // not crash (the CRC layer is what guarantees integrity)
        }
    }
}

struct FaultProtocolFixture : ::testing::Test {
    static std::vector<uint8_t>
    bootstrapBytes(uint64_t ctxSeed, size_t secondaries, size_t workers,
                   const FaultSpec* spec, DistributedTraffic* traffic,
                   long deadSecondary = -1)
    {
        ckks::Context ctx(faultParams(), ctxSeed);
        ckks::Evaluator ev(ctx);
        DistributedBootstrapper dist(ctx, secondaries, kBrGadget);
        dist.setWorkers(workers);
        if (spec != nullptr) {
            dist.setFaults(*spec);
        }
        if (deadSecondary >= 0) {
            FaultSpec dead;
            dead.drop = 1.0;
            dist.setSecondaryFaults(static_cast<size_t>(deadSecondary),
                                    dead);
        }
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            z.emplace_back(0.7 * std::cos(0.2 * static_cast<double>(i)),
                           0.4 * std::sin(0.5 * static_cast<double>(i)));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        const auto out = dist.bootstrap(ct);
        if (traffic != nullptr) {
            *traffic = dist.lastTraffic();
        }
        return ckks::saveCiphertext(out);
    }
};

TEST_F(FaultProtocolFixture, FaultedRunsAreByteIdenticalToFaultFree)
{
    // The tentpole invariant: for fault seeds whose faults stay under
    // the retry cap, the bootstrap output is byte-identical to the
    // fault-free run, and the retransmit accounting is reproducible
    // across worker counts 1/2/8.
    constexpr uint64_t kCtxSeed = 909;
    constexpr size_t kSecondaries = 3;
    DistributedTraffic clean;
    const auto want =
        bootstrapBytes(kCtxSeed, kSecondaries, 1, nullptr, &clean);
    EXPECT_EQ(clean.retransmits, 0u);

    size_t totalRetransmits = 0;
    for (const uint64_t faultSeed : {11ull, 22ull, 33ull}) {
        FaultSpec spec;
        spec.drop = 0.2;
        spec.bitflip = 0.15;
        spec.truncate = 0.1;
        spec.duplicate = 0.15;
        spec.reorder = 0.2;
        spec.delay = 0.25;
        spec.seed = faultSeed;

        DistributedTraffic ref;
        const auto got1 = bootstrapBytes(kCtxSeed, kSecondaries, 1,
                                         &spec, &ref);
        EXPECT_TRUE(got1 == want) << "seed " << faultSeed;
        EXPECT_GE(ref.wireBytesOut, ref.lweBytesOut);
        totalRetransmits += ref.retransmits;

        for (const size_t workers : {2ul, 8ul}) {
            DistributedTraffic t;
            const auto got = bootstrapBytes(kCtxSeed, kSecondaries,
                                            workers, &spec, &t);
            EXPECT_TRUE(got == want)
                << "seed " << faultSeed << ", " << workers << " workers";
            EXPECT_EQ(t.retransmits, ref.retransmits)
                << "seed " << faultSeed << ", " << workers << " workers";
            EXPECT_EQ(t.nacks, ref.nacks) << faultSeed;
            EXPECT_EQ(t.corruptFrames, ref.corruptFrames) << faultSeed;
            EXPECT_EQ(t.duplicateFrames, ref.duplicateFrames)
                << faultSeed;
            EXPECT_EQ(t.wireBytesOut, ref.wireBytesOut) << faultSeed;
            EXPECT_EQ(t.wireBytesIn, ref.wireBytesIn) << faultSeed;
            EXPECT_EQ(t.lweBytesOut, ref.lweBytesOut) << faultSeed;
            EXPECT_EQ(t.accBytesIn, ref.accBytesIn) << faultSeed;
            EXPECT_EQ(t.reclaimedBatches, ref.reclaimedBatches)
                << faultSeed;
        }
    }
    // With these probabilities at least one frame must have needed a
    // resend across the three seeds — otherwise the injector is dead.
    EXPECT_GT(totalRetransmits, 0u);
}

TEST_F(FaultProtocolFixture, DeadSecondaryIsReclaimedByThePrimary)
{
    // Secondary 1 drops every frame in both directions: the primary
    // must exhaust its retries, mark the node dead, blind-rotate the
    // share locally, and still produce the exact fault-free output.
    constexpr uint64_t kCtxSeed = 1234;
    constexpr size_t kSecondaries = 3;
    const auto want =
        bootstrapBytes(kCtxSeed, kSecondaries, 1, nullptr, nullptr);

    DistributedTraffic t;
    const auto got = bootstrapBytes(kCtxSeed, kSecondaries, 1, nullptr,
                                    &t, /*deadSecondary=*/1);
    EXPECT_TRUE(got == want);
    EXPECT_EQ(t.deadSecondaries, 1u);
    EXPECT_EQ(t.reclaimedBatches, 1u);
    // Every attempt after the first counts as a retransmit.
    RetryPolicy defaults;
    EXPECT_EQ(t.retransmits, defaults.maxRetries);
    // The two live secondaries' batches were still delivered.
    EXPECT_EQ(t.batches, 3u);
    EXPECT_GT(t.lweBytesOut, 0u);
    EXPECT_GT(t.accBytesIn, 0u);
}

} // namespace
} // namespace heap::boot
