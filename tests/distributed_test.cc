/**
 * @file
 * Tests for the Section V distributed bootstrap protocol: serialized
 * batches round-trip through the simulated links, the multi-node
 * result matches the message, every LWE ciphertext is processed
 * exactly once, and the byte accounting matches the wire format.
 */

#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "boot/distributed.h"
#include "boot/scheme_switch.h"
#include "ckks/serialize.h"

namespace heap::boot {
namespace {

ckks::CkksParams
distParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

TEST(SimulatedLink, FifoAndAccounting)
{
    SimulatedLink link;
    link.send({1, 2, 3});
    link.send({4});
    EXPECT_EQ(link.bytesTransferred(), 4u);
    EXPECT_EQ(link.messageCount(), 2u);
    EXPECT_EQ(link.receive(), (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_EQ(link.receive(), (std::vector<uint8_t>{4}));
    EXPECT_THROW(link.receive(), UserError);
}

struct DistFixture : ::testing::Test {
    ckks::Context ctx{distParams(), 909};
    ckks::Evaluator ev{ctx};
    DistributedBootstrapper dist{
        ctx, 7, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6}};

    ckks::Ciphertext
    levelOneCiphertext(const std::vector<ckks::Complex>& z)
    {
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        return ct;
    }
};

TEST_F(DistFixture, EightNodeBootstrapRestoresMessage)
{
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < 32; ++i) {
        z.emplace_back(0.8 * std::cos(0.3 * static_cast<double>(i)),
                       0.5 * std::sin(0.4 * static_cast<double>(i)));
    }
    const auto out = dist.bootstrap(levelOneCiphertext(z));
    EXPECT_EQ(out.level(), ctx.maxLevel());
    const auto back = ctx.decrypt(out);
    double worst = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        worst = std::max(worst, std::abs(back[i] - z[i]));
    }
    EXPECT_LT(worst, 5e-2);
}

TEST_F(DistFixture, WorkIsDistributedEvenly)
{
    std::vector<ckks::Complex> z(32, ckks::Complex(0.2, -0.1));
    (void)dist.bootstrap(levelOneCiphertext(z));
    // 64 coefficients over 8 nodes: each secondary gets exactly 8
    // (the primary keeps 8).
    size_t total = 0;
    for (size_t s = 0; s < dist.secondaryCount(); ++s) {
        EXPECT_EQ(dist.node(s).processed(), 8u) << "node " << s;
        total += dist.node(s).processed();
    }
    EXPECT_EQ(total, 56u);
    EXPECT_EQ(dist.lastTraffic().batches, 7u);
}

TEST_F(DistFixture, TrafficMatchesWireFormat)
{
    std::vector<ckks::Complex> z(32, ckks::Complex(-0.4, 0.25));
    (void)dist.bootstrap(levelOneCiphertext(z));
    const auto& t = dist.lastTraffic();
    // Each serialized LWE: magic + 10-word noise budget + modulus +
    // b + length + N mask words; each batch: frame header + count +
    // 8 LWEs.
    const size_t lweBytes = 8 * (14 + ctx.params().n);
    EXPECT_EQ(t.lweBytesOut,
              7u * (kFrameHeaderBytes + 8 + 8 * lweBytes));
    // Replies dominate: each accumulator is a full-basis RLWE pair.
    EXPECT_GT(t.accBytesIn, t.lweBytesOut);
    // The asymmetry the paper's CMAC schedule must absorb.
    const double ratio = static_cast<double>(t.accBytesIn)
                         / static_cast<double>(t.lweBytesOut);
    EXPECT_GT(ratio, 2.0);
    // Reliable links: effective bytes equal goodput, nothing retried.
    EXPECT_EQ(t.wireBytesOut, t.lweBytesOut);
    EXPECT_EQ(t.wireBytesIn, t.accBytesIn);
    EXPECT_EQ(t.retransmits, 0u);
    EXPECT_EQ(t.nacks, 0u);
    EXPECT_EQ(t.corruptFrames, 0u);
    EXPECT_EQ(t.reclaimedBatches, 0u);
    EXPECT_EQ(t.deadSecondaries, 0u);
}

TEST(DistributedStress, ConcurrentBatchesMatchSerialReference)
{
    // 4 secondaries driven by 4 worker threads, several bootstraps in
    // a row, against an identically-seeded serial-schedule reference:
    // per-node processed() totals and the repacked outputs must match
    // the single-threaded protocol exactly.
    const auto gadget =
        rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};
    ckks::Context ctxPar(distParams(), 31337);
    ckks::Context ctxSer(distParams(), 31337);
    ckks::Evaluator evPar(ctxPar);
    ckks::Evaluator evSer(ctxSer);
    DistributedBootstrapper par(ctxPar, 4, gadget);
    DistributedBootstrapper ser(ctxSer, 4, gadget);
    par.setWorkers(4);

    constexpr size_t kRounds = 2;
    for (size_t round = 0; round < kRounds; ++round) {
        std::vector<ckks::Complex> z(
            32, ckks::Complex(0.1 + 0.05 * static_cast<double>(round),
                              -0.2));
        auto ctP = ctxPar.encrypt(std::span<const ckks::Complex>(z));
        auto ctS = ctxSer.encrypt(std::span<const ckks::Complex>(z));
        evPar.dropToLevel(ctP, 1);
        evSer.dropToLevel(ctS, 1);
        const auto outP = par.bootstrap(ctP);
        const auto outS = ser.bootstrap(ctS);
        for (size_t i = 0; i < outP.ct.limbCount(); ++i) {
            EXPECT_TRUE(std::equal(outP.ct.a.limb(i).begin(),
                                   outP.ct.a.limb(i).end(),
                                   outS.ct.a.limb(i).begin()))
                << "a limb " << i << " round " << round;
            EXPECT_TRUE(std::equal(outP.ct.b.limb(i).begin(),
                                   outP.ct.b.limb(i).end(),
                                   outS.ct.b.limb(i).begin()))
                << "b limb " << i << " round " << round;
        }
        EXPECT_EQ(par.lastTraffic().lweBytesOut,
                  ser.lastTraffic().lweBytesOut);
        EXPECT_EQ(par.lastTraffic().accBytesIn,
                  ser.lastTraffic().accBytesIn);
        EXPECT_EQ(par.lastTraffic().batches, ser.lastTraffic().batches);
    }

    // N=64 over 5 nodes: shares of 13, so the secondaries process
    // 13 + 13 + 13 + 12 = 51 ciphertexts per bootstrap.
    size_t totalPar = 0;
    for (size_t s = 0; s < par.secondaryCount(); ++s) {
        EXPECT_EQ(par.node(s).processed(), ser.node(s).processed())
            << "node " << s;
        totalPar += par.node(s).processed();
    }
    EXPECT_EQ(totalPar, kRounds * 51u);
}

TEST(DistributedConcurrent, ConcurrentBootstrapCallsAreSerialized)
{
    // Two threads bootstrap different ciphertexts through ONE
    // DistributedBootstrapper. The internal mutex must serialize the
    // calls (links and traffic counters are per-object state): both
    // outputs must match an identically-keyed reference, in either
    // completion order. Runs under TSan via the concurrency label.
    const auto gadget =
        rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};
    ckks::Context ctx(distParams(), 4242);
    ckks::Context ctxRef(distParams(), 4242);
    ckks::Evaluator ev(ctx);
    ckks::Evaluator evRef(ctxRef);
    DistributedBootstrapper shared(ctx, 3, gadget);
    DistributedBootstrapper ref(ctxRef, 3, gadget);

    std::vector<ckks::Complex> z1(16, ckks::Complex(0.21, -0.35));
    std::vector<ckks::Complex> z2(16, ckks::Complex(-0.12, 0.4));
    // Identical encryption order on both contexts keeps the RNG
    // streams aligned, so ciphertexts (and outputs) coincide.
    auto ctA = ctx.encrypt(std::span<const ckks::Complex>(z1));
    auto ctB = ctx.encrypt(std::span<const ckks::Complex>(z2));
    auto refA = ctxRef.encrypt(std::span<const ckks::Complex>(z1));
    auto refB = ctxRef.encrypt(std::span<const ckks::Complex>(z2));
    ev.dropToLevel(ctA, 1);
    ev.dropToLevel(ctB, 1);
    evRef.dropToLevel(refA, 1);
    evRef.dropToLevel(refB, 1);

    const auto wantA = ckks::saveCiphertext(ref.bootstrap(refA));
    const auto wantB = ckks::saveCiphertext(ref.bootstrap(refB));

    std::vector<uint8_t> gotA, gotB;
    std::thread t1(
        [&] { gotA = ckks::saveCiphertext(shared.bootstrap(ctA)); });
    std::thread t2(
        [&] { gotB = ckks::saveCiphertext(shared.bootstrap(ctB)); });
    t1.join();
    t2.join();

    EXPECT_TRUE(gotA == wantA);
    EXPECT_TRUE(gotB == wantB);
    // Both calls completed a full, uncorrupted protocol run.
    size_t processed = 0;
    for (size_t s = 0; s < shared.secondaryCount(); ++s) {
        processed += shared.node(s).processed();
    }
    EXPECT_EQ(processed, 2u * 48u); // 64 - primary share of 16, twice
}

TEST_F(DistFixture, MatchesSingleProcessResultExactly)
{
    // Same keys => bit-identical result: rebuild a single-process
    // bootstrapper from an identically-seeded context.
    ckks::Context ctx2(distParams(), 909);
    ckks::Evaluator ev2(ctx2);
    DistributedBootstrapper dist2(
        ctx2, 3, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    std::vector<ckks::Complex> z(16, ckks::Complex(0.33, 0.44));
    auto ct1 = ctx.encrypt(std::span<const ckks::Complex>(z));
    // The contexts consumed identical randomness, so ciphertexts and
    // keys coincide; distributing over 7 vs 3 secondaries must not
    // change a single bit of the output.
    auto ct2 = ctx2.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct1, 1);
    ev2.dropToLevel(ct2, 1);
    const auto out1 = dist.bootstrap(ct1);
    const auto out2 = dist2.bootstrap(ct2);
    for (size_t i = 0; i < out1.ct.limbCount(); ++i) {
        EXPECT_TRUE(std::equal(out1.ct.b.limb(i).begin(),
                               out1.ct.b.limb(i).end(),
                               out2.ct.b.limb(i).begin()))
            << "limb " << i;
    }
}

} // namespace
} // namespace heap::boot
