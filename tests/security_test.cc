/**
 * @file
 * Security-estimation tests: exact table lookups, monotonicity, the
 * paper's parameter point, and the Qp observation recorded in
 * EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "math/security.h"

namespace heap::math {
namespace {

TEST(Security, StandardTableAnchors)
{
    EXPECT_EQ(maxLogQForSecurity(8192, 128), 218u);
    EXPECT_EQ(maxLogQForSecurity(8192, 192), 152u);
    EXPECT_EQ(maxLogQForSecurity(8192, 256), 118u);
    EXPECT_EQ(maxLogQForSecurity(32768, 128), 881u);
    EXPECT_EQ(maxLogQForSecurity(1024, 128), 27u);
    EXPECT_EQ(maxLogQForSecurity(512, 128), 0u);
}

TEST(Security, AnchorsEstimateAtTheirLevel)
{
    for (const size_t n : {2048u, 8192u, 32768u}) {
        EXPECT_NEAR(estimateSecurityBits(
                        n, static_cast<double>(
                               maxLogQForSecurity(n, 128))),
                    128.0, 1.0)
            << "n=" << n;
        EXPECT_NEAR(estimateSecurityBits(
                        n, static_cast<double>(
                               maxLogQForSecurity(n, 192))),
                    192.0, 1.0);
    }
}

TEST(Security, MonotoneInModulusAndDimension)
{
    // Larger modulus => less security; larger ring => more.
    EXPECT_GT(estimateSecurityBits(8192, 150),
              estimateSecurityBits(8192, 218));
    EXPECT_GT(estimateSecurityBits(8192, 218),
              estimateSecurityBits(8192, 300));
    EXPECT_GT(estimateSecurityBits(16384, 218),
              estimateSecurityBits(8192, 218));
}

TEST(Security, PaperParameterPoint)
{
    // Section III-C: N = 2^13, log Q = 216 => 128-bit (just inside
    // the standard's 218-bit budget).
    EXPECT_TRUE(meetsSecurity(8192, 216, 128));
    // Reproduction observation: the bootstrapping basis Qp
    // (216 + 36 = 252 bits) exceeds that budget at the same ring,
    // landing below 128 bits under the standard's accounting.
    EXPECT_FALSE(meetsSecurity(8192, 252, 128));
    EXPECT_GT(estimateSecurityBits(8192, 252), 100.0);
}

TEST(Security, DemoParametersOfferNoSecurity)
{
    EXPECT_LT(estimateSecurityBits(64, 96), 10.0);
    EXPECT_LT(estimateSecurityBits(256, 126), 10.0);
}

TEST(Security, Validation)
{
    EXPECT_THROW(maxLogQForSecurity(8192, 100), heap::UserError);
    EXPECT_THROW(estimateSecurityBits(1000, 27), heap::UserError);
    EXPECT_THROW(estimateSecurityBits(1024, 0), heap::UserError);
}

} // namespace
} // namespace heap::math
