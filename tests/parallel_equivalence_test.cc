/**
 * @file
 * Serial/parallel equivalence for the bootstrapping fan-out. The
 * determinism contract (DESIGN.md "Host parallelism") says parallel
 * bodies touch only pre-sampled data, so thread count must not change
 * a single bit of any output — asserted here by serializing whole
 * ciphertexts and comparing bytes, and by checking that the
 * distributed protocol's traffic accounting is identical under 1, 2,
 * and 8 worker threads.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "boot/distributed.h"
#include "boot/scheme_switch.h"
#include "ckks/serialize.h"

namespace heap::boot {
namespace {

ckks::CkksParams
smallParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr rlwe::GadgetParams kBrGadget{.baseBits = 6, .digitsPerLimb = 6};

std::vector<ckks::Complex>
testMessage(size_t slots)
{
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < slots; ++i) {
        z.emplace_back(0.7 * std::cos(0.5 * static_cast<double>(i)),
                       0.4 * std::sin(0.3 * static_cast<double>(i)));
    }
    return z;
}

TEST(ParallelEquivalence, SchemeSwitchBootstrapIsByteIdentical)
{
    ckks::Context ctx(smallParams(), 4242);
    ckks::Evaluator ev(ctx);
    SchemeSwitchBootstrapper boot(ctx, kBrGadget);

    const auto z = testMessage(32);
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);

    // bootstrap() draws no randomness, so the same bootstrapper can
    // serve as its own serial reference.
    boot.setWorkers(1);
    const auto serialBytes = ckks::saveCiphertext(boot.bootstrap(ct));
    for (const size_t workers : {2ul, 4ul, 8ul}) {
        boot.setWorkers(workers);
        const auto parallelBytes =
            ckks::saveCiphertext(boot.bootstrap(ct));
        EXPECT_TRUE(serialBytes == parallelBytes)
            << "output differs at " << workers << " workers";
    }

    // And the result is a valid bootstrap, not just a stable one.
    boot.setWorkers(4);
    const auto out = boot.bootstrap(ct);
    EXPECT_EQ(out.level(), ctx.maxLevel());
    const auto back = ctx.decrypt(out);
    double worst = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        worst = std::max(worst, std::abs(back[i] - z[i]));
    }
    EXPECT_LT(worst, 5e-2);
}

TEST(ParallelEquivalence, DistributedTrafficIsExactUnderAllWorkerCounts)
{
    ckks::Context ctx(smallParams(), 777);
    ckks::Evaluator ev(ctx);
    DistributedBootstrapper dist(ctx, 5, kBrGadget);

    const auto z = testMessage(16);
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);

    dist.setWorkers(1);
    const auto refBytes = ckks::saveCiphertext(dist.bootstrap(ct));
    const DistributedTraffic ref = dist.lastTraffic();
    EXPECT_GT(ref.lweBytesOut, 0u);
    EXPECT_GT(ref.accBytesIn, 0u);
    EXPECT_EQ(ref.batches, 5u);

    std::vector<size_t> processedAfterRef(dist.secondaryCount());
    for (size_t s = 0; s < dist.secondaryCount(); ++s) {
        processedAfterRef[s] = dist.node(s).processed();
    }

    for (const size_t workers : {2ul, 8ul}) {
        dist.setWorkers(workers);
        const auto bytes = ckks::saveCiphertext(dist.bootstrap(ct));
        EXPECT_TRUE(bytes == refBytes)
            << "output differs at " << workers << " workers";
        const DistributedTraffic& t = dist.lastTraffic();
        EXPECT_EQ(t.lweBytesOut, ref.lweBytesOut) << workers;
        EXPECT_EQ(t.accBytesIn, ref.accBytesIn) << workers;
        EXPECT_EQ(t.batches, ref.batches) << workers;
    }

    // Every run pushed the same share through every secondary.
    for (size_t s = 0; s < dist.secondaryCount(); ++s) {
        EXPECT_EQ(dist.node(s).processed(), 3 * processedAfterRef[s])
            << "node " << s;
    }
}

} // namespace
} // namespace heap::boot
