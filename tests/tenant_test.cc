/**
 * @file
 * Tenant-layer tests: TenantRegistry registration/quota/accounting
 * semantics, the WFQ virtual clock (charge at admission, refund on
 * cancel, idle catch-up), and weighted-fair share convergence when
 * the registry's tags drive the ItemQueue under a saturating
 * two-tenant load.
 */

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "serve/scheduler.h"
#include "serve/tenant.h"

namespace heap::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TenantRegistry, RegistrationAndSpecLookup)
{
    TenantRegistry reg(512);
    reg.registerTenant({.id = 1, .name = "acme", .weight = 2.0});
    reg.registerTenant(
        {.id = 2, .name = "globex", .priority = 3, .keyBytes = 99});
    EXPECT_TRUE(reg.known(1));
    EXPECT_FALSE(reg.known(3));
    EXPECT_EQ(reg.count(), 2u);
    EXPECT_EQ(reg.tenantIds(), (std::vector<uint64_t>{1, 2}));
    EXPECT_EQ(reg.spec(1).name, "acme");
    EXPECT_EQ(reg.spec(2).priority, 3);
    EXPECT_EQ(reg.keyBytesFor(1), 512u); // registry default
    EXPECT_EQ(reg.keyBytesFor(2), 99u);  // spec override

    EXPECT_THROW(reg.registerTenant({.id = 1}), UserError);
    EXPECT_THROW(reg.registerTenant({.id = 0}), UserError);
    EXPECT_THROW(reg.registerTenant({.id = 9, .weight = 0.0}),
                 UserError);
    EXPECT_THROW(reg.spec(1234), UserError);
}

TEST(TenantRegistry, QuotaBoundsInFlightAndCountsRejections)
{
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .maxInFlight = 2});
    ASSERT_TRUE(reg.tryAdmit(1, 64).has_value());
    ASSERT_TRUE(reg.tryAdmit(1, 64).has_value());
    EXPECT_FALSE(reg.tryAdmit(1, 64).has_value()); // quota
    EXPECT_EQ(reg.stats(1).rejectedQuota, 1u);
    EXPECT_EQ(reg.stats(1).inFlight, 2u);
    EXPECT_EQ(reg.stats(1).submitted, 2u);

    reg.onComplete(1, 64, /*ok=*/true);
    EXPECT_TRUE(reg.tryAdmit(1, 64).has_value()); // slot freed
    EXPECT_EQ(reg.stats(1).completed, 1u);
    EXPECT_EQ(reg.stats(1).servedItems, 64u);

    reg.onComplete(1, 64, /*ok=*/false);
    EXPECT_EQ(reg.stats(1).failed, 1u);
    EXPECT_EQ(reg.stats(1).servedItems, 64u); // failures earn nothing
}

TEST(TenantRegistry, VirtualClockChargesByWeightAndRefundsOnCancel)
{
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .weight = 1.0});
    reg.registerTenant({.id = 2, .weight = 4.0});

    // Tenant 1's first admission is tagged 0 and charged 100/1.
    const auto a1 = reg.tryAdmit(1, 100);
    EXPECT_DOUBLE_EQ(a1->fairRank, 0.0);
    // Tenant 2 wakes while tenant 1 is busy: it catches up to the
    // busy floor (100) first, then is charged 100/4 = 25.
    const auto a2 = reg.tryAdmit(2, 100);
    EXPECT_DOUBLE_EQ(a2->fairRank, 100.0);
    EXPECT_DOUBLE_EQ(reg.stats(2).virtualService, 125.0);
    // Identical item counts charge inversely to weight: +100 for
    // weight 1, +25 for weight 4.
    EXPECT_DOUBLE_EQ(reg.tryAdmit(1, 100)->fairRank, 100.0);
    EXPECT_DOUBLE_EQ(reg.tryAdmit(2, 100)->fairRank, 125.0);
    EXPECT_DOUBLE_EQ(reg.stats(1).virtualService, 200.0);
    EXPECT_DOUBLE_EQ(reg.stats(2).virtualService, 150.0);

    // A capacity rejection refunds the charge exactly.
    const double before = reg.stats(1).virtualService;
    ASSERT_TRUE(reg.tryAdmit(1, 100).has_value());
    reg.cancelAdmit(1, 100);
    EXPECT_DOUBLE_EQ(reg.stats(1).virtualService, before);
    EXPECT_EQ(reg.stats(1).rejectedCapacity, 1u);
    EXPECT_EQ(reg.stats(1).inFlight, 2u);
}

TEST(TenantRegistry, IdleTenantCatchesUpInsteadOfBankingCredit)
{
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .weight = 1.0});
    reg.registerTenant({.id = 2, .weight = 1.0});

    // Tenant 1 runs alone for a while: its clock advances to 500.
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(reg.tryAdmit(1, 100).has_value());
    }
    // Tenant 2 wakes up while tenant 1 is busy: it enters at the busy
    // floor (500), not at 0 — sleeping banked no credit.
    EXPECT_DOUBLE_EQ(reg.tryAdmit(2, 100)->fairRank, 500.0);
}

TEST(TenantRegistry, FairnessRatioIsWeightNormalized)
{
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .weight = 1.0});
    reg.registerTenant({.id = 2, .weight = 3.0});
    EXPECT_TRUE(std::isnan(reg.fairnessRatio())); // nobody qualified

    // Tenant 2 served exactly 3x tenant 1's items: weighted shares
    // are equal, the ratio is 1.
    (void)reg.tryAdmit(1, 64);
    reg.onComplete(1, 64, true);
    for (int i = 0; i < 3; ++i) {
        (void)reg.tryAdmit(2, 64);
        reg.onComplete(2, 64, true);
    }
    EXPECT_DOUBLE_EQ(reg.fairnessRatio(), 1.0);

    // minCompleted filters occasional tenants out.
    EXPECT_TRUE(std::isnan(reg.fairnessRatio(/*minCompleted=*/2)));
}

// ---------------------------------------------------------------- //
// Weighted-fair convergence: registry tags driving the ItemQueue   //
// ---------------------------------------------------------------- //

/**
 * Saturating closed-loop simulation: each tenant keeps `backlog`
 * requests pending at all times; batches of `batchItems` form from
 * the shared ItemQueue with the registry's fair tags. Returns served
 * items per tenant.
 */
std::map<uint64_t, uint64_t>
simulateFairShare(TenantRegistry& reg,
                  const std::vector<uint64_t>& tenants, size_t backlog,
                  size_t itemsPerRequest, size_t batchItems,
                  size_t batches)
{
    ItemQueue q(8);
    uint64_t nextReq = 1;
    std::map<uint64_t, uint64_t> reqTenant; ///< request -> tenant
    std::map<uint64_t, size_t> pendingPerTenant;
    std::map<uint64_t, uint64_t> served;
    std::map<uint64_t, size_t> itemsLeft; ///< per live request

    const auto refill = [&] {
        for (const uint64_t t : tenants) {
            while (pendingPerTenant[t] < backlog) {
                const auto adm = reg.tryAdmit(t, itemsPerRequest);
                ASSERT_TRUE(adm.has_value()) << "tenant " << t;
                q.addRequest(nextReq, 0, kInf, itemsPerRequest,
                             adm->fairRank);
                reqTenant[nextReq] = t;
                itemsLeft[nextReq] = itemsPerRequest;
                ++pendingPerTenant[t];
                ++nextReq;
            }
        }
    };

    for (size_t b = 0; b < batches; ++b) {
        refill();
        const PlannedBatch batch = q.formBatch(batchItems);
        for (const WorkItem& w : batch.items) {
            const uint64_t t = reqTenant.at(w.requestId);
            ++served[t];
            if (--itemsLeft.at(w.requestId) == 0) {
                reg.onComplete(t, itemsPerRequest, true);
                --pendingPerTenant.at(t);
                itemsLeft.erase(w.requestId);
            }
        }
    }
    return served;
}

TEST(WeightedFair, TwoTenantSharesConvergeToWeights)
{
    // Tenant 2 has 3x the weight of tenant 1; under a saturating
    // closed loop its served-item share must converge to 3x within
    // the ISSUE's 1.5x tolerance (it lands much closer).
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .weight = 1.0});
    reg.registerTenant({.id = 2, .weight = 3.0});
    const auto served = simulateFairShare(reg, {1, 2}, /*backlog=*/4,
                                          /*itemsPerRequest=*/64,
                                          /*batchItems=*/48,
                                          /*batches=*/200);
    const double ratio = static_cast<double>(served.at(2))
                         / static_cast<double>(served.at(1));
    EXPECT_GT(ratio, 3.0 / 1.5) << served.at(1) << ":" << served.at(2);
    EXPECT_LT(ratio, 3.0 * 1.5) << served.at(1) << ":" << served.at(2);
    // The registry agrees with the simulation's own count.
    EXPECT_EQ(reg.fairnessRatio() < 1.5, true)
        << "registry ratio " << reg.fairnessRatio();
}

TEST(WeightedFair, EqualWeightsSplitEvenlyDespitePriorityFlood)
{
    // Tenant 1 submits everything at priority 9; fairness outranks
    // priority, so equal weights still split the service evenly.
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .weight = 1.0, .priority = 9});
    reg.registerTenant({.id = 2, .weight = 1.0});

    ItemQueue q(8);
    uint64_t nextReq = 1;
    std::map<uint64_t, uint64_t> reqTenant;
    std::map<uint64_t, uint64_t> served;
    for (int round = 0; round < 50; ++round) {
        for (const uint64_t t : {1ull, 2ull}) {
            const auto adm = reg.tryAdmit(t, 8);
            ASSERT_TRUE(adm.has_value());
            q.addRequest(nextReq, t == 1 ? 9 : 0, kInf, 8,
                         adm->fairRank);
            reqTenant[nextReq] = t;
            ++nextReq;
        }
        const PlannedBatch b = q.formBatch(8);
        std::map<uint64_t, size_t> done;
        for (const WorkItem& w : b.items) {
            ++served[reqTenant.at(w.requestId)];
        }
        // Retire fully-served requests (every request is 8 items, so
        // each batch completes exactly one request).
        for (const WorkItem& w : b.items) {
            ++done[w.requestId];
        }
        for (const auto& [req, n] : done) {
            if (n == 8) {
                reg.onComplete(reqTenant.at(req), 8, true);
            }
        }
    }
    const double ratio = static_cast<double>(served.at(1))
                         / static_cast<double>(served.at(2));
    EXPECT_GT(ratio, 1.0 / 1.5);
    EXPECT_LT(ratio, 1.5);
}

} // namespace
} // namespace heap::serve
