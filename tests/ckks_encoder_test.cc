/**
 * @file
 * CKKS encoder tests: round trips (dense and sparse packing), the
 * canonical-embedding homomorphisms (ring multiplication <-> slotwise
 * product; automorphism <-> slot rotation / conjugation), and scale
 * handling.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "common/rng.h"
#include "math/modarith.h"
#include "math/ntt.h"
#include "math/poly.h"
#include "math/primes.h"

namespace heap::ckks {
namespace {

std::vector<Complex>
randomSlots(size_t count, Rng& rng, double bound = 1.0)
{
    std::vector<Complex> z(count);
    for (auto& v : z) {
        v = Complex((2 * rng.uniformReal() - 1) * bound,
                    (2 * rng.uniformReal() - 1) * bound);
    }
    return z;
}

std::vector<long double>
toLongDouble(const std::vector<int64_t>& v)
{
    return {v.begin(), v.end()};
}

double
maxSlotError(const std::vector<Complex>& a, const std::vector<Complex>& b)
{
    double m = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        m = std::max(m, std::abs(a[i] - b[i]));
    }
    return m;
}

class EncoderRoundTrip
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(EncoderRoundTrip, EncodeDecodeIdentity)
{
    const auto [n, slots] = GetParam();
    Encoder enc(n);
    Rng rng(n + slots);
    const double scale = std::pow(2.0, 30);
    const auto z = randomSlots(slots, rng);
    const auto coeffs = enc.encode(z, scale);
    const auto back = enc.decode(toLongDouble(coeffs), scale, slots);
    EXPECT_LT(maxSlotError(z, back), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncoderRoundTrip,
    ::testing::Values(std::make_tuple(64, 32), std::make_tuple(64, 8),
                      std::make_tuple(256, 128),
                      std::make_tuple(256, 1),
                      std::make_tuple(1024, 512),
                      std::make_tuple(1024, 64)));

TEST(Encoder, MultiplicationIsSlotwise)
{
    // encode(z1) *ring* encode(z2) must decode (at scale^2) to the
    // slotwise product — this uniquely pins the canonical embedding.
    const size_t n = 128;
    Encoder enc(n);
    Rng rng(5);
    const double scale = std::pow(2.0, 24);
    const auto z1 = randomSlots(n / 2, rng);
    const auto z2 = randomSlots(n / 2, rng);
    const auto c1 = enc.encode(z1, scale);
    const auto c2 = enc.encode(z2, scale);

    // Negacyclic product over a prime large enough to avoid wrap.
    const uint64_t q = math::generateNttPrimes(59, n, 1)[0];
    std::vector<uint64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = math::fromCentered(c1[i], q);
        b[i] = math::fromCentered(c2[i], q);
    }
    const auto prod = math::negacyclicConvolveSchoolbook(a, b, q);
    std::vector<long double> pc(n);
    for (size_t i = 0; i < n; ++i) {
        pc[i] = static_cast<long double>(math::toCentered(prod[i], q));
    }
    const auto got = enc.decode(pc, scale * scale, n / 2);
    std::vector<Complex> want(n / 2);
    for (size_t i = 0; i < n / 2; ++i) {
        want[i] = z1[i] * z2[i];
    }
    EXPECT_LT(maxSlotError(got, want), 1e-4);
}

TEST(Encoder, AdditionIsSlotwise)
{
    const size_t n = 128;
    Encoder enc(n);
    Rng rng(6);
    const double scale = std::pow(2.0, 24);
    const auto z1 = randomSlots(n / 2, rng);
    const auto z2 = randomSlots(n / 2, rng);
    auto c1 = enc.encode(z1, scale);
    const auto c2 = enc.encode(z2, scale);
    for (size_t i = 0; i < n; ++i) {
        c1[i] += c2[i];
    }
    const auto got = enc.decode(toLongDouble(c1), scale, n / 2);
    std::vector<Complex> want(n / 2);
    for (size_t i = 0; i < n / 2; ++i) {
        want[i] = z1[i] + z2[i];
    }
    EXPECT_LT(maxSlotError(got, want), 1e-6);
}

TEST(Encoder, AutomorphismRotatesSlots)
{
    const size_t n = 128;
    Encoder enc(n);
    Rng rng(7);
    const double scale = std::pow(2.0, 26);
    const auto z = randomSlots(n / 2, rng);
    const auto coeffs = enc.encode(z, scale);

    for (int64_t r : {1LL, 2LL, 5LL, 31LL}) {
        const uint64_t t = enc.rotationExponent(r);
        // Apply sigma_t on plain coefficients over a big prime.
        const uint64_t q = math::generateNttPrimes(59, n, 1)[0];
        std::vector<uint64_t> a(n), out(n);
        for (size_t i = 0; i < n; ++i) {
            a[i] = math::fromCentered(coeffs[i], q);
        }
        math::polyAutomorphism(a, t, out, q);
        std::vector<long double> oc(n);
        for (size_t i = 0; i < n; ++i) {
            oc[i] =
                static_cast<long double>(math::toCentered(out[i], q));
        }
        const auto got = enc.decode(oc, scale, n / 2);
        // Left rotation: slot i of the result is slot i+r of z.
        std::vector<Complex> want(n / 2);
        for (size_t i = 0; i < n / 2; ++i) {
            want[i] = z[(i + static_cast<size_t>(r)) % (n / 2)];
        }
        EXPECT_LT(maxSlotError(got, want), 1e-5) << "r=" << r;
    }
}

TEST(Encoder, ConjugationExponentConjugatesSlots)
{
    const size_t n = 64;
    Encoder enc(n);
    Rng rng(8);
    const double scale = std::pow(2.0, 26);
    const auto z = randomSlots(n / 2, rng);
    const auto coeffs = enc.encode(z, scale);
    const uint64_t t = enc.conjugationExponent();
    const uint64_t q = math::generateNttPrimes(59, n, 1)[0];
    std::vector<uint64_t> a(n), out(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = math::fromCentered(coeffs[i], q);
    }
    math::polyAutomorphism(a, t, out, q);
    std::vector<long double> oc(n);
    for (size_t i = 0; i < n; ++i) {
        oc[i] = static_cast<long double>(math::toCentered(out[i], q));
    }
    const auto got = enc.decode(oc, scale, n / 2);
    std::vector<Complex> want(n / 2);
    for (size_t i = 0; i < n / 2; ++i) {
        want[i] = std::conj(z[i]);
    }
    EXPECT_LT(maxSlotError(got, want), 1e-5);
}

TEST(Encoder, RealEncodeMatchesComplex)
{
    const size_t n = 64;
    Encoder enc(n);
    std::vector<double> vals = {1.5, -2.25, 0.0, 3.125};
    const auto c = enc.encodeReal(vals, 1 << 20);
    const auto back = enc.decode(toLongDouble(c), 1 << 20, 4);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(back[i].real(), vals[i], 1e-5);
        EXPECT_NEAR(back[i].imag(), 0.0, 1e-5);
    }
}

TEST(Encoder, Validation)
{
    Encoder enc(64);
    std::vector<Complex> tooMany(64);
    EXPECT_THROW(enc.encode(tooMany, 1 << 20), UserError);
    std::vector<Complex> notPow2(3);
    EXPECT_THROW(enc.encode(notPow2, 1 << 20), UserError);
    std::vector<Complex> ok(4);
    EXPECT_THROW(enc.encode(ok, -1.0), UserError);
    EXPECT_THROW(Encoder(48), UserError);
}

TEST(Encoder, ParsevalEnergyRelation)
{
    // The canonical embedding scales energy by the slot count:
    // sum|z_k|^2 = (N/2) * sum m_j^2 / scale^2 (within rounding).
    const size_t n = 256;
    Encoder enc(n);
    Rng rng(9);
    const double scale = std::pow(2.0, 28);
    const auto z = randomSlots(n / 2, rng);
    const auto coeffs = enc.encode(z, scale);
    double slotEnergy = 0, coeffEnergy = 0;
    for (const auto& v : z) {
        slotEnergy += std::norm(v);
    }
    for (const int64_t c : coeffs) {
        coeffEnergy += static_cast<double>(c) * static_cast<double>(c);
    }
    coeffEnergy /= scale * scale;
    EXPECT_NEAR(slotEnergy / coeffEnergy, static_cast<double>(n) / 2,
                0.01 * static_cast<double>(n));
}

TEST(Encoder, RealSlotsGiveConjugateSymmetricSpectrum)
{
    // Real slot vectors encode with zero imaginary half: coefficients
    // j >= N/2 vanish only for special inputs, but decoding the
    // conjugated input must equal the original (realness).
    const size_t n = 128;
    Encoder enc(n);
    std::vector<double> vals(n / 2);
    for (size_t i = 0; i < vals.size(); ++i) {
        vals[i] = std::sin(0.2 * static_cast<double>(i));
    }
    const auto c = enc.encodeReal(vals, 1 << 24);
    const auto back = enc.decode(toLongDouble(c), 1 << 24, n / 2);
    for (size_t i = 0; i < n / 2; ++i) {
        EXPECT_NEAR(back[i].imag(), 0.0, 1e-6) << "slot " << i;
    }
}

TEST(Encoder, EncodingIsAdditivelyExactUpToRounding)
{
    const size_t n = 128;
    Encoder enc(n);
    Rng rng(10);
    const double scale = std::pow(2.0, 26);
    const auto z1 = randomSlots(n / 2, rng);
    const auto z2 = randomSlots(n / 2, rng);
    std::vector<Complex> sum(n / 2);
    for (size_t i = 0; i < n / 2; ++i) {
        sum[i] = z1[i] + z2[i];
    }
    const auto c1 = enc.encode(z1, scale);
    const auto c2 = enc.encode(z2, scale);
    const auto cs = enc.encode(sum, scale);
    for (size_t j = 0; j < n; ++j) {
        EXPECT_LE(std::abs(cs[j] - (c1[j] + c2[j])), 2)
            << "coeff " << j;
    }
}

TEST(Encoder, RotationExponentProperties)
{
    Encoder enc(256);
    EXPECT_EQ(enc.rotationExponent(0), 1u);
    EXPECT_EQ(enc.rotationExponent(1), 5u);
    // Negative steps wrap: -1 == N/2 - 1 steps.
    EXPECT_EQ(enc.rotationExponent(-1), enc.rotationExponent(127));
    // Full cycle returns to identity.
    EXPECT_EQ(enc.rotationExponent(128), 1u);
}

} // namespace
} // namespace heap::ckks
