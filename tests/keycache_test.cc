/**
 * @file
 * BootstrappingKeyCache tests: LRU eviction order exactness,
 * hit/miss/eviction/byte counter exactness, capacity enforcement,
 * and the high-hit-rate property under Zipf-distributed tenant
 * traffic that the serving cluster relies on (HEAP's ~18x smaller
 * key material makes per-tenant keys cacheable at scale).
 */

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "serve/keycache.h"

namespace heap::serve {
namespace {

TEST(KeyCache, HitMissAndByteCountersAreExact)
{
    BootstrappingKeyCache c(100);
    EXPECT_FALSE(c.contains(1));
    EXPECT_FALSE(c.touch(1, 40)); // cold miss
    EXPECT_TRUE(c.contains(1));
    EXPECT_TRUE(c.touch(1, 40)); // hit
    EXPECT_FALSE(c.touch(2, 40)); // second tenant, fits
    EXPECT_TRUE(c.touch(1, 40));
    EXPECT_TRUE(c.touch(2, 40));

    const KeyCacheStats s = c.stats();
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.bytesLoaded, 80u);
    EXPECT_EQ(s.bytesEvicted, 0u);
    EXPECT_EQ(s.residentTenants, 2u);
    EXPECT_EQ(s.residentBytes, 80u);
    EXPECT_EQ(s.capacityBytes, 100u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 3.0 / 5.0);
}

TEST(KeyCache, LruEvictionOrderIsExact)
{
    BootstrappingKeyCache c(120);
    c.touch(1, 40);
    c.touch(2, 40);
    c.touch(3, 40); // full: 1 (LRU), 2, 3 (MRU)
    ASSERT_EQ(c.lruOrder(), (std::vector<uint64_t>{1, 2, 3}));

    // Touching 1 refreshes it: 2 becomes the LRU victim.
    EXPECT_TRUE(c.touch(1, 40));
    ASSERT_EQ(c.lruOrder(), (std::vector<uint64_t>{2, 3, 1}));

    EXPECT_FALSE(c.touch(4, 40)); // evicts exactly tenant 2
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(3));
    EXPECT_TRUE(c.contains(1));
    ASSERT_EQ(c.lruOrder(), (std::vector<uint64_t>{3, 1, 4}));

    const KeyCacheStats s = c.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.bytesEvicted, 40u);
    EXPECT_EQ(s.residentBytes, 120u);
}

TEST(KeyCache, LargeEntryEvictsAsManyVictimsAsNeeded)
{
    BootstrappingKeyCache c(150);
    c.touch(1, 30);
    c.touch(2, 30);
    c.touch(3, 30);
    // A 100-byte load only fits after evicting BOTH 1 and 2 (LRU
    // first), not just one victim: 90 + 100 > 150 and 60 + 100 > 150.
    EXPECT_FALSE(c.touch(4, 100));
    EXPECT_EQ(c.lruOrder(), (std::vector<uint64_t>{3, 4}));
    const KeyCacheStats s = c.stats();
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.bytesEvicted, 60u);
    EXPECT_EQ(s.residentBytes, 130u); // 30 (tenant 3) + 100
}

TEST(KeyCache, RejectsEntriesBeyondCapacity)
{
    BootstrappingKeyCache c(64);
    EXPECT_THROW(c.touch(1, 65), UserError);
    EXPECT_FALSE(c.contains(1));
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(KeyCache, ResidentBytesNeverExceedCapacity)
{
    BootstrappingKeyCache c(97);
    std::mt19937_64 rng(42);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t tenant = 1 + rng() % 37;
        const size_t bytes = 1 + (tenant * 7) % 50; // stable per tenant
        c.touch(tenant, bytes);
        const KeyCacheStats s = c.stats();
        ASSERT_LE(s.residentBytes, 97u) << "step " << i;
        ASSERT_EQ(s.bytesLoaded - s.bytesEvicted, s.residentBytes)
            << "step " << i;
        ASSERT_EQ(s.hits + s.misses, static_cast<uint64_t>(i + 1));
    }
}

TEST(KeyCache, MixedTenantClassesShareOneResidencyBudget)
{
    // One pod's cache serves BOTH tenant classes: bootstrap tenants
    // with ~MB bootstrapping-key sets and encrypted-lookup tenants
    // with small PIR query-key footprints, interleaved. Eviction
    // order and byte accounting must stay exact across the mix — a
    // big bootstrap load evicts however many small lookup footprints
    // the capacity demands, LRU first, regardless of class.
    constexpr size_t kBootBytes = 60; // bootstrap-class footprint
    constexpr size_t kPirBytes = 10;  // lookup-class footprint
    BootstrappingKeyCache c(130);

    c.touch(1, kBootBytes); // bootstrap tenant
    c.touch(2, kPirBytes);  // lookup tenant
    c.touch(3, kPirBytes);  // lookup tenant
    c.touch(4, kPirBytes);  // lookup tenant
    ASSERT_EQ(c.lruOrder(), (std::vector<uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(c.stats().residentBytes, 90u);

    // Interleaved traffic refreshes across classes: the bootstrap
    // tenant moves to MRU, a lookup tenant becomes the victim.
    EXPECT_TRUE(c.touch(1, kBootBytes));
    EXPECT_TRUE(c.touch(3, kPirBytes));
    ASSERT_EQ(c.lruOrder(), (std::vector<uint64_t>{2, 4, 1, 3}));

    // A second bootstrap tenant needs 60 bytes: 40 free, so the two
    // LRU lookup tenants (2, then 4) are evicted — exactly those two,
    // in that order, and not the fresher bootstrap set.
    EXPECT_FALSE(c.touch(5, kBootBytes));
    EXPECT_FALSE(c.contains(2));
    EXPECT_FALSE(c.contains(4));
    ASSERT_EQ(c.lruOrder(), (std::vector<uint64_t>{1, 3, 5}));

    KeyCacheStats s = c.stats();
    EXPECT_EQ(s.evictions, 2u);
    EXPECT_EQ(s.bytesEvicted, 2 * kPirBytes);
    EXPECT_EQ(s.bytesLoaded, 2 * kBootBytes + 3 * kPirBytes);
    EXPECT_EQ(s.residentBytes, 2 * kBootBytes + kPirBytes);
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 5u);

    // The reverse direction: lookup footprints returning after a
    // bootstrap-heavy phase evict the stale bootstrap set (tenant 1,
    // now LRU) only when the byte budget actually requires it.
    EXPECT_FALSE(c.touch(2, kPirBytes)); // 130 + 10 > 130: evicts 1
    EXPECT_FALSE(c.contains(1));
    ASSERT_EQ(c.lruOrder(), (std::vector<uint64_t>{3, 5, 2}));
    s = c.stats();
    EXPECT_EQ(s.evictions, 3u);
    EXPECT_EQ(s.bytesEvicted, 2 * kPirBytes + kBootBytes);
    EXPECT_EQ(s.residentBytes, kBootBytes + 2 * kPirBytes);
    EXPECT_EQ(s.bytesLoaded - s.bytesEvicted, s.residentBytes);
}

TEST(KeyCache, ZipfTenantsYieldHighHitRate)
{
    // The serving-scale claim: with Zipf-distributed tenant
    // popularity and a cache holding a fraction of the tenant
    // population, the hit rate stays high because the head of the
    // distribution stays resident. Mirrors the cluster bench's
    // tenant draw.
    constexpr size_t kTenants = 200;
    constexpr size_t kDraws = 4000;
    constexpr double kAlpha = 1.4;
    std::vector<double> cdf(kTenants);
    double sum = 0;
    for (size_t t = 0; t < kTenants; ++t) {
        sum += 1.0 / std::pow(static_cast<double>(t + 1), kAlpha);
        cdf[t] = sum;
    }
    // Cache holds 25% of the population's key bytes.
    BootstrappingKeyCache c(kTenants / 4 * 10);
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> u(0.0, sum);
    for (size_t i = 0; i < kDraws; ++i) {
        const double x = u(rng);
        const size_t tenant =
            static_cast<size_t>(std::lower_bound(cdf.begin(),
                                                 cdf.end(), x)
                                - cdf.begin())
            + 1;
        c.touch(tenant, 10);
    }
    const KeyCacheStats s = c.stats();
    EXPECT_GT(s.hitRate(), 0.8)
        << "hits " << s.hits << " misses " << s.misses;
    EXPECT_GT(s.evictions, 0u); // the bound actually bit
}

} // namespace
} // namespace heap::serve
