/**
 * @file
 * End-to-end CKKS tests: encrypt/decrypt, Add/Sub/PtAdd, Mult with
 * relinearization + Rescale, PtMult, Rotate, Conjugate, multiplicative
 * depth chains, and level/scale management.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"

namespace heap::ckks {
namespace {

CkksParams
testParams()
{
    CkksParams p;
    p.n = 256;
    p.limbBits = 30;
    p.levels = 3;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    return p;
}

struct CkksFixture : ::testing::Test {
    Context ctx{testParams(), 99};
    Evaluator ev{ctx};
    Rng rng{1234};

    std::vector<Complex>
    randomSlots(size_t count, double bound = 1.0)
    {
        std::vector<Complex> z(count);
        for (auto& v : z) {
            v = Complex((2 * rng.uniformReal() - 1) * bound,
                        (2 * rng.uniformReal() - 1) * bound);
        }
        return z;
    }

    double
    maxErr(const std::vector<Complex>& a, const std::vector<Complex>& b)
    {
        double m = 0;
        for (size_t i = 0; i < a.size(); ++i) {
            m = std::max(m, std::abs(a[i] - b[i]));
        }
        return m;
    }
};

TEST_F(CkksFixture, EncryptDecryptRoundTrip)
{
    const auto z = randomSlots(128);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    EXPECT_EQ(ct.level(), 3u);
    EXPECT_EQ(ct.slots, 128u);
    const auto back = ctx.decrypt(ct);
    EXPECT_LT(maxErr(z, back), 1e-3);
}

TEST_F(CkksFixture, SparseEncryptDecrypt)
{
    const auto z = randomSlots(16);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    const auto back = ctx.decrypt(ct);
    EXPECT_LT(maxErr(z, back), 1e-3);
}

TEST_F(CkksFixture, AddSub)
{
    const auto z1 = randomSlots(128);
    const auto z2 = randomSlots(128);
    const auto c1 = ctx.encrypt(std::span<const Complex>(z1));
    const auto c2 = ctx.encrypt(std::span<const Complex>(z2));
    const auto sum = ctx.decrypt(ev.add(c1, c2));
    const auto dif = ctx.decrypt(ev.sub(c1, c2));
    for (size_t i = 0; i < 128; ++i) {
        EXPECT_LT(std::abs(sum[i] - (z1[i] + z2[i])), 2e-3);
        EXPECT_LT(std::abs(dif[i] - (z1[i] - z2[i])), 2e-3);
    }
}

TEST_F(CkksFixture, AddPlainSubPlain)
{
    const auto z1 = randomSlots(128);
    const auto z2 = randomSlots(128);
    const auto c1 = ctx.encrypt(std::span<const Complex>(z1));
    const auto p2 = ev.makePlaintext(std::span<const Complex>(z2),
                                     c1.scale, c1.level());
    const auto sum = ctx.decrypt(ev.addPlain(c1, p2));
    const auto dif = ctx.decrypt(ev.subPlain(c1, p2));
    for (size_t i = 0; i < 128; ++i) {
        EXPECT_LT(std::abs(sum[i] - (z1[i] + z2[i])), 2e-3);
        EXPECT_LT(std::abs(dif[i] - (z1[i] - z2[i])), 2e-3);
    }
}

TEST_F(CkksFixture, MultiplyRelinearizeRescale)
{
    const auto z1 = randomSlots(128);
    const auto z2 = randomSlots(128);
    const auto c1 = ctx.encrypt(std::span<const Complex>(z1));
    const auto c2 = ctx.encrypt(std::span<const Complex>(z2));
    auto prod = ev.multiply(c1, c2);
    EXPECT_NEAR(prod.scale, c1.scale * c2.scale, 1.0);
    ev.rescaleInPlace(prod);
    EXPECT_EQ(prod.level(), 2u);
    const auto got = ctx.decrypt(prod);
    std::vector<Complex> want(128);
    for (size_t i = 0; i < 128; ++i) {
        want[i] = z1[i] * z2[i];
    }
    EXPECT_LT(maxErr(got, want), 5e-3);
}

TEST_F(CkksFixture, MultiplyPlain)
{
    const auto z1 = randomSlots(64);
    const auto z2 = randomSlots(64);
    const auto c1 = ctx.encrypt(std::span<const Complex>(z1));
    const auto p2 = ev.makePlaintext(std::span<const Complex>(z2),
                                     ctx.params().scale, c1.level());
    auto prod = ev.multiplyPlain(c1, p2);
    ev.rescaleInPlace(prod);
    const auto got = ctx.decrypt(prod);
    std::vector<Complex> want(64);
    for (size_t i = 0; i < 64; ++i) {
        want[i] = z1[i] * z2[i];
    }
    EXPECT_LT(maxErr(got, want), 5e-3);
}

TEST_F(CkksFixture, MultiplyScalar)
{
    const auto z = randomSlots(64);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    auto scaled = ev.multiplyScalar(ct, -2.5);
    ev.rescaleInPlace(scaled);
    const auto got = ctx.decrypt(scaled);
    for (size_t i = 0; i < 64; ++i) {
        EXPECT_LT(std::abs(got[i] - z[i] * (-2.5)), 5e-3);
    }
}

TEST_F(CkksFixture, DepthChainToLastLevel)
{
    // Squaring twice exhausts levels 3 -> 1 (the regime where
    // bootstrapping becomes necessary).
    const auto z = randomSlots(128, 0.9);
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    ct = ev.multiplyRescale(ct, ct);
    ct = ev.multiplyRescale(ct, ct);
    EXPECT_EQ(ct.level(), 1u);
    const auto got = ctx.decrypt(ct);
    for (size_t i = 0; i < 128; ++i) {
        const Complex want = std::pow(z[i], 4);
        EXPECT_LT(std::abs(got[i] - want), 5e-2) << "slot " << i;
    }
    // A further multiply must be rejected for want of limbs.
    EXPECT_THROW(ev.rescaleInPlace(ct), UserError);
}

TEST_F(CkksFixture, RotateLeftAndRight)
{
    ctx.makeRotationKeys(std::array<int64_t, 2>{1, -1});
    const auto z = randomSlots(128);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    const auto left = ctx.decrypt(ev.rotate(ct, 1));
    const auto right = ctx.decrypt(ev.rotate(ct, -1));
    for (size_t i = 0; i < 128; ++i) {
        EXPECT_LT(std::abs(left[i] - z[(i + 1) % 128]), 2e-2);
        EXPECT_LT(std::abs(right[i] - z[(i + 127) % 128]), 2e-2);
    }
}

TEST_F(CkksFixture, RotateByZeroIsIdentity)
{
    const auto z = randomSlots(128);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    const auto got = ctx.decrypt(ev.rotate(ct, 0));
    EXPECT_LT(maxErr(got, z), 1e-3);
}

TEST_F(CkksFixture, RotateRequiresKey)
{
    const auto z = randomSlots(128);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    EXPECT_THROW(ev.rotate(ct, 7), UserError);
}

TEST_F(CkksFixture, Conjugate)
{
    const auto z = randomSlots(128);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    const auto got = ctx.decrypt(ev.conjugate(ct));
    for (size_t i = 0; i < 128; ++i) {
        EXPECT_LT(std::abs(got[i] - std::conj(z[i])), 5e-3);
    }
}

TEST_F(CkksFixture, ScaleMismatchRejected)
{
    const auto z = randomSlots(32);
    const auto c1 = ctx.encrypt(std::span<const Complex>(z));
    auto c2 = ctx.encrypt(std::span<const Complex>(z));
    c2.scale *= 2;
    EXPECT_THROW(ev.add(c1, c2), UserError);
}

TEST_F(CkksFixture, LevelAlignment)
{
    const auto z = randomSlots(32);
    auto c1 = ctx.encrypt(std::span<const Complex>(z));
    auto c2 = ctx.encrypt(std::span<const Complex>(z));
    ev.dropToLevel(c2, 2);
    const auto sum = ev.add(c1, c2); // silently aligns to level 2
    EXPECT_EQ(sum.level(), 2u);
    const auto got = ctx.decrypt(sum);
    for (size_t i = 0; i < 32; ++i) {
        EXPECT_LT(std::abs(got[i] - 2.0 * z[i]), 5e-3);
    }
}

TEST_F(CkksFixture, AddScalarShiftsEverySlot)
{
    const auto z = randomSlots(64);
    const auto got = ctx.decrypt(
        ev.addScalar(ctx.encrypt(std::span<const Complex>(z)), 0.75));
    for (size_t i = 0; i < 64; ++i) {
        EXPECT_LT(std::abs(got[i] - (z[i] + 0.75)), 5e-3);
    }
}

TEST_F(CkksFixture, PowerMatchesRepeatedSquaring)
{
    const auto z = randomSlots(64, 0.9);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    // k = 3 uses one square + one multiply (2 levels of 3).
    const auto got = ctx.decrypt(ev.power(ct, 3));
    for (size_t i = 0; i < 64; ++i) {
        EXPECT_LT(std::abs(got[i] - std::pow(z[i], 3)), 5e-2);
    }
    EXPECT_THROW(ev.power(ct, 0), UserError);
}

TEST_F(CkksFixture, InnerSumFoldsWindows)
{
    ctx.makeRotationKeys(std::array<int64_t, 3>{1, 2, 4});
    const auto z = randomSlots(128);
    const auto got = ctx.decrypt(
        ev.innerSum(ctx.encrypt(std::span<const Complex>(z)), 8));
    for (size_t i = 0; i < 128; ++i) {
        Complex want(0, 0);
        for (size_t k = 0; k < 8; ++k) {
            want += z[(i + k) % 128];
        }
        ASSERT_LT(std::abs(got[i] - want), 5e-2) << "slot " << i;
    }
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    EXPECT_THROW(ev.innerSum(ct, 3), UserError);
}

TEST_F(CkksFixture, HammingWeightSecretOption)
{
    auto p = testParams();
    p.secretHamming = 32;
    Context ctx2(p, 7);
    size_t nonzero = 0;
    for (const auto c : ctx2.secretKey().coeffs()) {
        nonzero += c != 0;
    }
    EXPECT_EQ(nonzero, 32u);
    const auto z = randomSlots(16);
    const auto back =
        ctx2.decrypt(ctx2.encrypt(std::span<const Complex>(z)));
    double m = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        m = std::max(m, std::abs(z[i] - back[i]));
    }
    EXPECT_LT(m, 1e-3);
}

TEST_F(CkksFixture, PaperParamSetShape)
{
    const auto p = CkksParams::paperSet();
    EXPECT_EQ(p.n, 8192u);
    EXPECT_EQ(p.levels, 6u);
    EXPECT_EQ(p.limbBits, 36);
    EXPECT_EQ(p.gadget.digitsPerLimb, 2);
    EXPECT_EQ(p.gadget.baseBits, 18);
}

} // namespace
} // namespace heap::ckks
