/**
 * @file
 * Tests for the common utilities: RNG statistics/determinism, table
 * rendering, and the check macros.
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"

namespace heap {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next() == b.next();
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformBoundRespected)
{
    Rng rng(5);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 1000ULL, (1ULL << 40) + 7}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.uniform(bound), bound);
        }
    }
    EXPECT_THROW(rng.uniform(0), UserError);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(6);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniformReal();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Table, RendersAlignedRows)
{
    Table t({"Op", "Time"});
    t.addRow({"Add", "0.001"});
    t.addRow({"Mult", "0.028"});
    const std::string s = t.render();
    EXPECT_NE(s.find("| Op   | Time  |"), std::string::npos);
    EXPECT_NE(s.find("| Mult | 0.028 |"), std::string::npos);
    // Three rules: top, after header, bottom.
    size_t rules = 0, pos = 0;
    while ((pos = s.find("\n+--", pos)) != std::string::npos) {
        ++rules;
        pos += 3;
    }
    // The top rule starts the string (no leading newline).
    EXPECT_EQ(rules + 1, 3u);
}

TEST(Table, NumAndSpeedupFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::speedup(15.392), "15.39x");
    EXPECT_EQ(Table::speedup(std::numeric_limits<double>::infinity()),
              "-");
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"A", "B", "C"});
    t.addRow({"x"});
    EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

TEST(Check, MacrosThrowProperTypes)
{
    EXPECT_THROW(HEAP_CHECK(false, "user message " << 42), UserError);
    EXPECT_THROW(HEAP_ASSERT(false, "bug"), InternalError);
    EXPECT_NO_THROW(HEAP_CHECK(true, "ok"));
    try {
        HEAP_CHECK(1 == 2, "value was " << 7);
        FAIL() << "should have thrown";
    } catch (const UserError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("1 == 2"), std::string::npos);
        EXPECT_NE(msg.find("value was 7"), std::string::npos);
    }
}

TEST(Timer, MeasuresForwardTime)
{
    Timer t;
    double sink = 0;
    for (int i = 0; i < 100000; ++i) {
        sink += i;
    }
    ASSERT_GT(sink, 0.0);
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_GE(t.millis(), 0.0);
}

} // namespace
} // namespace heap
