/**
 * @file
 * Tests for the live noise-budget guard: per-ciphertext tracking,
 * the four guard policies, trip detection *before* a corrupting
 * decryption, byte-transparency of the tracking metadata, bootstrap
 * input validation, and budget preservation across the distributed
 * protocol's faulty links.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boot/distributed.h"
#include "boot/scheme_switch.h"
#include "ckks/evaluator.h"
#include "ckks/noise.h"
#include "ckks/serialize.h"

namespace heap::ckks {
namespace {

CkksParams
guardParams()
{
    CkksParams p;
    p.n = 256;
    p.limbBits = 30;
    p.levels = 3;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    return p;
}

std::vector<Complex>
halfBoxSlots(size_t count)
{
    std::vector<Complex> z(count);
    for (size_t i = 0; i < count; ++i) {
        z[i] = Complex(0.4 + 0.1 * std::cos(0.3 * static_cast<double>(i)),
                       0.1 * std::sin(0.5 * static_cast<double>(i)));
    }
    return z;
}

struct GuardFixture : ::testing::Test {
    Context ctx{guardParams(), 777};
    Evaluator ev{ctx};
};

TEST_F(GuardFixture, FreshCiphertextHasTrackedBudget)
{
    const auto z = halfBoxSlots(128);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    EXPECT_TRUE(ct.budget.tracked);
    EXPECT_GT(ct.budget.sigma, 0.0);
    EXPECT_GT(ct.budget.messageRms, 0.0);
    EXPECT_EQ(ct.budget.opChain(), "fresh");
    const double budget = ctx.noiseBudgetBits(ct);
    EXPECT_TRUE(std::isfinite(budget));
    EXPECT_GT(budget, 10.0);
    EXPECT_GT(ctx.noisePrecisionBits(ct), 10.0);
}

TEST_F(GuardFixture, OpChainAndCountersAccumulate)
{
    ctx.makeRotationKeys(std::array<int64_t, 1>{1});
    const auto z = halfBoxSlots(128);
    auto a = ctx.encrypt(std::span<const Complex>(z));
    auto b = ctx.encrypt(std::span<const Complex>(z));
    auto t = ev.multiplyRescale(a, b);
    t = ev.add(t, ev.rotate(t, 1));
    // add() merges both operands' histories, so the multiply/rescale
    // of the shared ancestor is counted once per operand.
    EXPECT_EQ(t.budget.mults, 2u);
    EXPECT_EQ(t.budget.rescales, 2u);
    EXPECT_GE(t.budget.rotations, 1u);
    EXPECT_GE(t.budget.adds, 1u);
    EXPECT_GE(t.budget.keySwitches, 2u); // relin + rotation
    const std::string chain = t.budget.opChain();
    EXPECT_NE(chain.find("mult"), std::string::npos);
    EXPECT_NE(chain.find("rescale"), std::string::npos);
}

// The acceptance chain: two unrescaled squarings. The first leaves
// budget headroom and decrypts correctly; the second pushes the
// message-plus-noise peak past q/2 and genuinely corrupts the result.
// Under Throw the guard must fire when the corrupting multiply is
// *performed* — before any decryption can return garbage.
TEST_F(GuardFixture, ThrowFiresBeforeDecryptionCorrupts)
{
    const auto z = halfBoxSlots(128);

    // Reference run, guard Off: the corruption is real.
    {
        auto maxErr = [](std::span<const Complex> got,
                         std::span<const Complex> want) {
            double worst = 0;
            for (size_t i = 0; i < want.size(); ++i) {
                worst = std::max(worst, std::abs(got[i] - want[i]));
            }
            return worst;
        };
        auto ct = ctx.encrypt(std::span<const Complex>(z));
        auto sq1 = ev.square(ct);
        std::vector<Complex> want2(z.size());
        for (size_t i = 0; i < z.size(); ++i) {
            want2[i] = z[i] * z[i];
        }
        // One squaring still decrypts to the right values.
        EXPECT_LT(maxErr(ctx.decrypt(sq1), want2), 1e-2);
        EXPECT_GT(ctx.noiseBudgetBits(sq1), 0.0);

        auto sq2 = ev.square(sq1);
        std::vector<Complex> want4(z.size());
        for (size_t i = 0; i < z.size(); ++i) {
            want4[i] = want2[i] * want2[i];
        }
        // The second squaring pushes the message coefficients past
        // q/2: the phase wraps and the decryption is garbage (the
        // surviving residue mod q is negligible at this scale).
        EXPECT_GT(maxErr(ctx.decrypt(sq2), want4), 1e-2);
        EXPECT_LT(ctx.noiseBudgetBits(sq2), 0.0);
    }

    // Guarded run on an identical context: same chain, but the
    // corrupting multiply raises UserError naming the op.
    Context guarded{guardParams(), 777};
    Evaluator gev{guarded};
    NoiseGuardConfig cfg;
    cfg.policy = NoiseGuardPolicy::Throw;
    guarded.setNoiseGuard(cfg);
    auto ct = guarded.encrypt(std::span<const Complex>(z));
    auto sq1 = gev.square(ct); // within budget: must not throw
    try {
        (void)gev.square(sq1);
        FAIL() << "guard did not fire on the corrupting multiply";
    } catch (const UserError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("decryption-failure"), std::string::npos);
        EXPECT_NE(what.find("multiply"), std::string::npos);
        EXPECT_NE(what.find("mult"), std::string::npos) << what;
    }
    EXPECT_GE(guarded.noiseStats().guardTrips(), 1u);
}

// Tracking is pure metadata: with the guard Off the ciphertext bytes
// of the whole chain are identical to a run under an active
// (non-throwing) policy on an identically seeded context.
TEST_F(GuardFixture, PolicyDoesNotAlterCiphertextBytes)
{
    const auto z = halfBoxSlots(128);

    auto runChain = [&](Context& c) {
        Evaluator e{c};
        auto ct = c.encrypt(std::span<const Complex>(z));
        auto sq1 = e.square(ct);
        auto sq2 = e.square(sq1); // trips under an active policy
        return std::make_pair(saveCiphertext(sq1), saveCiphertext(sq2));
    };

    Context off{guardParams(), 777};
    // off keeps the default policy (Off).
    Context cb{guardParams(), 777};
    NoiseGuardConfig cfg;
    cfg.policy = NoiseGuardPolicy::Callback;
    size_t events = 0;
    cfg.callback = [&](const NoiseEvent&) { ++events; };
    cb.setNoiseGuard(cfg);

    const auto [offSq1, offSq2] = runChain(off);
    const auto [cbSq1, cbSq2] = runChain(cb);
    EXPECT_EQ(offSq1, cbSq1);
    EXPECT_EQ(offSq2, cbSq2);
    EXPECT_GE(events, 1u); // the callback did observe the trip
}

TEST_F(GuardFixture, WarnPolicyWarnsWithoutThrowing)
{
    NoiseGuardConfig cfg;
    cfg.policy = NoiseGuardPolicy::Warn;
    ctx.setNoiseGuard(cfg);
    const auto z = halfBoxSlots(128);
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    EXPECT_NO_THROW({
        auto sq2 = ev.square(ev.square(ct));
        (void)sq2;
    });
    EXPECT_GE(ctx.noiseStats().guardTrips(), 1u);
}

TEST_F(GuardFixture, CallbackReceivesTripDetails)
{
    NoiseGuardConfig cfg;
    cfg.policy = NoiseGuardPolicy::Callback;
    std::vector<NoiseEvent> events;
    cfg.callback = [&](const NoiseEvent& e) { events.push_back(e); };
    ctx.setNoiseGuard(cfg);
    const auto z = halfBoxSlots(128);
    auto sq2 = ev.square(ev.square(ctx.encrypt(std::span<const Complex>(z))));
    (void)sq2;
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().kind, NoiseTripKind::DecryptionFailure);
    EXPECT_EQ(events.front().op, "multiply");
    EXPECT_LE(events.front().budgetBits, 0.0);
    EXPECT_NE(events.front().opChain.find("mult"), std::string::npos);
}

TEST_F(GuardFixture, PrecisionTripFiresOnTightThreshold)
{
    // A fresh ciphertext has ~25 precision bits here; demanding more
    // flags it immediately as a Precision trip (not a failure).
    NoiseGuardConfig cfg;
    cfg.policy = NoiseGuardPolicy::Callback;
    cfg.minPrecisionBits = 60.0;
    std::vector<NoiseEvent> events;
    cfg.callback = [&](const NoiseEvent& e) { events.push_back(e); };
    ctx.setNoiseGuard(cfg);
    const auto z = halfBoxSlots(128);
    (void)ctx.encrypt(std::span<const Complex>(z));
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().kind, NoiseTripKind::Precision);
    EXPECT_EQ(events.front().op, "encrypt");
}

TEST_F(GuardFixture, StatsTrackOpsAndMinBudget)
{
    ctx.noiseStats().reset();
    EXPECT_EQ(ctx.noiseStats().opsTracked(), 0u);
    EXPECT_TRUE(std::isinf(ctx.noiseStats().minBudgetBits()));
    const auto z = halfBoxSlots(128);
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    const auto after1 = ctx.noiseStats().minBudgetBits();
    EXPECT_TRUE(std::isfinite(after1));
    auto sq = ev.square(ct);
    (void)sq;
    EXPECT_GE(ctx.noiseStats().opsTracked(), 2u);
    EXPECT_LT(ctx.noiseStats().minBudgetBits(), after1);
}

TEST_F(GuardFixture, DropToLevelShrinksBudget)
{
    const auto z = halfBoxSlots(128);
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    const double before = ctx.noiseBudgetBits(ct);
    ev.dropToLevel(ct, 1);
    const double after = ctx.noiseBudgetBits(ct);
    EXPECT_LT(after, before - 30.0); // two ~30-bit limbs gone
}

} // namespace
} // namespace heap::ckks

namespace heap::boot {
namespace {

ckks::CkksParams
smallBootParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

std::vector<ckks::Complex>
smallSlots()
{
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < 32; ++i) {
        z.emplace_back(std::cos(0.2 * static_cast<double>(i)) * 0.5,
                       std::sin(0.3 * static_cast<double>(i)) * 0.5);
    }
    return z;
}

TEST(BootstrapGuard, SchemeSwitchValidatesInputBudget)
{
    ckks::Context ctx{smallBootParams(), 4242};
    ckks::Evaluator ev{ctx};
    SchemeSwitchBootstrapper boot{ctx, kBrGadget};
    NoiseGuardConfig cfg;
    cfg.policy = NoiseGuardPolicy::Throw;
    ctx.setNoiseGuard(cfg);

    const auto z = smallSlots();
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);

    // A healthy level-1 ciphertext passes validation and refreshes.
    auto boosted = boot.bootstrap(ct);
    EXPECT_TRUE(boosted.budget.tracked);
    EXPECT_EQ(boosted.budget.bootstraps, 1u);
    EXPECT_GT(ctx.noiseBudgetBits(boosted), 0.0);

    // An exhausted one is rejected up front, naming the path.
    auto bad = ct;
    bad.budget.sigma = static_cast<double>(ctx.basis()->modulus(0));
    try {
        (void)boot.bootstrap(bad);
        FAIL() << "bootstrap accepted an exhausted input";
    } catch (const UserError& e) {
        EXPECT_NE(std::string(e.what()).find("scheme-switch bootstrap"),
                  std::string::npos);
    }
}

TEST(BootstrapGuard, PredictedBudgetBracketsMeasuredBootstrapNoise)
{
    ckks::Context ctx{smallBootParams(), 4242};
    ckks::Evaluator ev{ctx};
    ckks::NoiseEstimator est{ctx};
    SchemeSwitchBootstrapper boot{ctx, kBrGadget};

    const auto z = smallSlots();
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);
    const auto out = boot.bootstrap(ct);
    ASSERT_TRUE(out.budget.tracked);

    // The blind-rotate estimate is a CLT bound composed across the
    // extract/rotate/repack pipeline; hold it to two orders of
    // magnitude of the measured phase error in either direction.
    const double measured = est.measure(out, z);
    EXPECT_LT(measured, 200.0 * out.budget.sigma)
        << "measured " << measured << " predicted " << out.budget.sigma;
    EXPECT_GT(measured, out.budget.sigma / 200.0)
        << "measured " << measured << " predicted " << out.budget.sigma;
    // Sanity: the predicted noise leaves usable precision at Delta.
    EXPECT_GT(ctx.noisePrecisionBits(out), 4.0);
}

TEST(BootstrapGuard, DistributedBudgetIdenticalUnderFaults)
{
    ckks::Context ctx{smallBootParams(), 4242};
    ckks::Evaluator ev{ctx};
    DistributedBootstrapper dist{ctx, 2, kBrGadget};

    const auto z = smallSlots();
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);

    const auto clean = dist.bootstrap(ct);
    ASSERT_TRUE(clean.budget.tracked);
    EXPECT_EQ(clean.budget.bootstraps, 1u);
    const auto cleanBytes = ckks::saveCiphertext(clean);

    FaultSpec spec;
    spec.seed = 99;
    spec.drop = 0.1;
    spec.bitflip = 0.1;
    spec.truncate = 0.05;
    spec.duplicate = 0.1;
    spec.reorder = 0.2;
    dist.setFaults(spec);
    const auto faulty = dist.bootstrap(ct);
    // Budgets ride the serialized LWE batches and the analytic output
    // record: byte-identical output regardless of link faults.
    EXPECT_EQ(ckks::saveCiphertext(faulty), cleanBytes);
}

} // namespace
} // namespace heap::boot
