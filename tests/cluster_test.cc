/**
 * @file
 * ServiceCluster tests: consistent routing determinism (same tenant
 * -> same pod absent spill), least-loaded spill when the preferred
 * pod is full, quota and cluster-capacity rejection accounting,
 * per-pod key-cache affinity, and byte-identity of cluster-served
 * bootstraps against the single-pod sequential path for seeds
 * {7, 21, 42}.
 */

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "hw/bootstrap_model.h"
#include "serve/cluster.h"

namespace heap::serve {
namespace {

// Same miniature parameter set as serve_test.cc: n = 64 keeps full
// bootstraps affordable while exercising every protocol path.
ckks::CkksParams
serveParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

/** A cluster's worth of pods: one context + key generation (the
 *  single-pod reference order: ctx, ev, dist), with pods 1..k-1 as
 *  key replicas of pod 0 — the paper's generate-once, replicate-to-
 *  every-FPGA-group deployment. */
struct PodSet {
    std::unique_ptr<ckks::Context> ctx;
    std::unique_ptr<ckks::Evaluator> ev;
    std::vector<std::unique_ptr<boot::DistributedBootstrapper>> dists;
};

PodSet
makePods(uint64_t seed, size_t count, size_t secondaries)
{
    PodSet s;
    s.ctx = std::make_unique<ckks::Context>(serveParams(), seed);
    s.ev = std::make_unique<ckks::Evaluator>(*s.ctx);
    s.dists.push_back(std::make_unique<boot::DistributedBootstrapper>(
        *s.ctx, secondaries, kBrGadget));
    for (size_t i = 1; i < count; ++i) {
        s.dists.push_back(
            std::make_unique<boot::DistributedBootstrapper>(
                *s.dists[0], secondaries));
    }
    return s;
}

std::vector<boot::DistributedBootstrapper*>
distPtrs(PodSet& pods)
{
    std::vector<boot::DistributedBootstrapper*> out;
    for (auto& d : pods.dists) {
        out.push_back(d.get());
    }
    return out;
}

/** Deterministic per-request payloads (16 slots each) — identical to
 *  the serve_test fixture's. */
std::vector<ckks::Ciphertext>
makeInputs(const ckks::Context& ctx, ckks::Evaluator& ev, size_t count)
{
    std::vector<ckks::Ciphertext> inputs;
    for (size_t r = 0; r < count; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            const double t = static_cast<double>(i);
            const double s = static_cast<double>(r);
            z.emplace_back(0.7 * std::cos(0.2 * t + 0.3 * s),
                           0.4 * std::sin(0.5 * t - 0.1 * s));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        inputs.push_back(std::move(ct));
    }
    return inputs;
}

/** The single-pod reference: sequential bootstrap() per request. */
std::vector<std::vector<uint8_t>>
sequentialBytes(uint64_t ctxSeed, size_t secondaries, size_t count)
{
    ckks::Context ctx(serveParams(), ctxSeed);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, secondaries, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, count);
    std::vector<std::vector<uint8_t>> out;
    for (const auto& in : inputs) {
        out.push_back(ckks::saveCiphertext(dist.bootstrap(in)));
    }
    return out;
}

TEST(Cluster, RoutingIsDeterministicAndCoversEveryPod)
{
    auto podsA = makePods(7, 3, 1);
    auto podsB = makePods(7, 3, 1);
    TenantRegistry regA, regB;
    ServiceCluster a(distPtrs(podsA), regA);
    ServiceCluster b(distPtrs(podsB), regB);

    std::vector<size_t> perPod(3, 0);
    for (uint64_t t = 1; t <= 300; ++t) {
        const size_t pod = a.preferredPod(t);
        ASSERT_LT(pod, 3u);
        // Stable within a cluster and across cluster instances: the
        // map is a pure function of (tenant id, pod count).
        EXPECT_EQ(a.preferredPod(t), pod);
        EXPECT_EQ(b.preferredPod(t), pod);
        ++perPod[pod];
    }
    // The mix spreads tenants across every pod (expected ~100 each).
    for (size_t p = 0; p < 3; ++p) {
        EXPECT_GT(perPod[p], 50u) << "pod " << p;
    }
}

TEST(Cluster, SameTenantStaysOnPreferredPodAbsentSpill)
{
    auto pods = makePods(21, 3, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 7, .keyBytes = 1000});
    ClusterConfig cfg;
    cfg.pod.maxBatchItems = 48;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);
    const size_t preferred = cluster.preferredPod(7);

    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).pause();
    }
    const auto inputs = makeInputs(*pods.ctx, *pods.ev, 3);
    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    for (const auto& in : inputs) {
        tickets.push_back(cluster.submit(7, in));
    }
    // With room on the preferred pod, nothing spills: the tenant's
    // key stays hot on exactly one pod.
    ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.routedPreferred, 3u);
    EXPECT_EQ(m.spilled, 0u);
    const KeyCacheStats kc = cluster.keyCache(preferred).stats();
    EXPECT_EQ(kc.misses, 1u); // first touch loads the key...
    EXPECT_EQ(kc.hits, 2u);   // ...the rest hit
    EXPECT_EQ(kc.residentTenants, 1u);
    EXPECT_EQ(kc.residentBytes, 1000u);

    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).resume();
    }
    for (auto& t : tickets) {
        EXPECT_GT(t->wait().slots, 0u);
    }
    cluster.shutdown(); // joins workers: completion hooks have run
    EXPECT_EQ(reg.stats(7).completed, 3u);
    EXPECT_EQ(reg.stats(7).inFlight, 0u);
}

TEST(Cluster, SpillsWhenPreferredPodIsFull)
{
    auto pods = makePods(42, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 3});
    ClusterConfig cfg;
    cfg.pod.maxQueuedRequests = 1; // one live request per pod
    ServiceCluster cluster(distPtrs(pods), reg, cfg);
    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).pause();
    }

    const auto inputs = makeInputs(*pods.ctx, *pods.ev, 2);
    auto t0 = cluster.submit(3, inputs[0]); // preferred pod
    auto t1 = cluster.submit(3, inputs[1]); // preferred full: spills
    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.submitted, 2u);
    EXPECT_EQ(m.routedPreferred, 1u);
    EXPECT_EQ(m.spilled, 1u);
    // One live request on each pod.
    EXPECT_EQ(cluster.pod(0).liveRequests(), 1u);
    EXPECT_EQ(cluster.pod(1).liveRequests(), 1u);

    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).resume();
    }
    EXPECT_GT(t0->wait().slots, 0u);
    EXPECT_GT(t1->wait().slots, 0u);
}

TEST(Cluster, QuotaRejectionIsCountedAtClusterAndTenant)
{
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 5, .maxInFlight = 1});
    ServiceCluster cluster(distPtrs(pods), reg);
    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).pause();
    }

    const auto inputs = makeInputs(*pods.ctx, *pods.ev, 2);
    auto t0 = cluster.submit(5, inputs[0]);
    EXPECT_THROW(cluster.submit(5, inputs[1]), UserError);
    EXPECT_EQ(cluster.metrics().rejectedQuota, 1u);
    EXPECT_EQ(reg.stats(5).rejectedQuota, 1u);
    EXPECT_EQ(reg.stats(5).inFlight, 1u);
    EXPECT_EQ(reg.stats(5).submitted, 1u);

    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).resume();
    }
    EXPECT_GT(t0->wait().slots, 0u);
}

TEST(Cluster, RejectsWhenEveryPodIsFull)
{
    auto pods = makePods(21, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 9});
    ClusterConfig cfg;
    cfg.pod.maxQueuedRequests = 1;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);
    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).pause();
    }

    const auto inputs = makeInputs(*pods.ctx, *pods.ev, 3);
    auto t0 = cluster.submit(9, inputs[0]);
    auto t1 = cluster.submit(9, inputs[1]);
    EXPECT_THROW(cluster.submit(9, inputs[2]), UserError);
    EXPECT_EQ(cluster.metrics().rejectedCapacity, 1u);
    // The failed admission was rolled back: the virtual clock and the
    // in-flight slot reflect only the two accepted requests.
    EXPECT_EQ(reg.stats(9).rejectedCapacity, 1u);
    EXPECT_EQ(reg.stats(9).inFlight, 2u);
    EXPECT_EQ(reg.stats(9).submitted, 2u);

    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cluster.pod(i).resume();
    }
    EXPECT_GT(t0->wait().slots, 0u);
    EXPECT_GT(t1->wait().slots, 0u);
}

TEST(Cluster, ByteIdenticalToSinglePodPath)
{
    // The determinism guarantee at cluster scale: wherever routing
    // lands a request, the returned ciphertext is byte-identical to a
    // sequential single-pod bootstrap under the same seed.
    constexpr size_t kRequests = 6;
    constexpr size_t kSecondaries = 1;
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        const auto want =
            sequentialBytes(seed, kSecondaries, kRequests);

        auto pods = makePods(seed, 3, kSecondaries);
        TenantRegistry reg;
        for (uint64_t t = 1; t <= kRequests; ++t) {
            reg.registerTenant({.id = t});
        }
        ClusterConfig cfg;
        cfg.pod.maxBatchItems = 48; // batches straddle requests
        ServiceCluster cluster(distPtrs(pods), reg, cfg);

        // Inputs from pod 0's context: every pod carries the same key
        // material, so any pod may serve any request.
        const auto inputs =
            makeInputs(*pods.ctx, *pods.ev, kRequests);
        std::vector<std::shared_ptr<BootstrapTicket>> tickets;
        for (size_t r = 0; r < kRequests; ++r) {
            tickets.push_back(cluster.submit(r + 1, inputs[r]));
        }
        for (size_t r = 0; r < kRequests; ++r) {
            EXPECT_TRUE(ckks::saveCiphertext(tickets[r]->wait())
                        == want[r])
                << "seed " << seed << ", request " << r;
        }
        cluster.shutdown();
        const ClusterMetrics m = cluster.metrics();
        EXPECT_EQ(m.completed, kRequests);
        EXPECT_EQ(m.failed, 0u);
        EXPECT_EQ(m.routedPreferred + m.spilled, kRequests);
        EXPECT_EQ(m.keyCacheTotal.hits + m.keyCacheTotal.misses,
                  kRequests);
    }
}

TEST(Cluster, ClusterSmoke)
{
    // Fast end-to-end pass kept cheap for CI: two pods, weighted
    // tenants, full completion, consistent roll-up accounting.
    auto pods = makePods(7, 2, 1);
    TenantRegistry reg;
    reg.registerTenant({.id = 1, .name = "t1", .weight = 1.0});
    reg.registerTenant({.id = 2, .name = "t2", .weight = 2.0});
    reg.registerTenant({.id = 3, .name = "t3", .weight = 4.0});
    const hw::BootstrapModel model(hw::FpgaConfig{}, hw::HeapParams{},
                                   8);
    ClusterConfig cfg;
    cfg.costModel = &model;
    // Must hold the model-derived ~1 GB default key footprint
    // (modeled accounting only, nothing is allocated).
    cfg.keyCacheBytes = size_t{4} << 30;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);
    EXPECT_EQ(cluster.itemsPerRequest(), 64u);

    const auto inputs = makeInputs(*pods.ctx, *pods.ev, 8);
    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    for (size_t r = 0; r < 8; ++r) {
        tickets.push_back(cluster.submit(1 + r % 3, inputs[r]));
    }
    for (auto& t : tickets) {
        EXPECT_GT(t->wait().slots, 0u);
    }
    cluster.shutdown();

    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.submitted, 8u);
    EXPECT_EQ(m.completed, 8u);
    EXPECT_EQ(m.failed, 0u);
    EXPECT_EQ(m.rejectedQuota + m.rejectedCapacity, 0u);
    EXPECT_EQ(m.pods.size(), 2u);
    EXPECT_EQ(m.keyCacheTotal.hits + m.keyCacheTotal.misses, 8u);
    // The model-derived default key footprint was charged.
    EXPECT_GT(m.keyCacheTotal.bytesLoaded, 0u);
    ASSERT_EQ(m.tenants.size(), 3u);
    uint64_t completed = 0;
    for (const auto& t : m.tenants) {
        EXPECT_EQ(t.inFlight, 0u) << "tenant " << t.id;
        completed += t.completed;
    }
    EXPECT_EQ(completed, 8u);
    // Uncontended completion: fairness is NaN or a sane ratio, never
    // a bogus zero.
    EXPECT_TRUE(std::isnan(m.fairnessRatio) || m.fairnessRatio >= 1.0);
    // Modeled load fully refunded once everything settled.
    for (const double load : m.podModeledLoadMs) {
        EXPECT_NEAR(load, 0.0, 1e-9);
    }
}

TEST(Cluster, AutoscalingOracleMatchesModeledPodThroughput)
{
    const hw::BootstrapModel model(hw::FpgaConfig{}, hw::HeapParams{},
                                   8);
    const double rps = model.podThroughputRps(64);
    ASSERT_GT(rps, 0.0);
    // The oracle is the ceiling of offered / modeled per-pod rate,
    // with a floor of one pod.
    EXPECT_EQ(model.podsNeeded(0.0, 64), 1u);
    EXPECT_EQ(model.podsNeeded(rps * 0.5, 64), 1u);
    EXPECT_EQ(model.podsNeeded(rps * 1.0, 64), 1u);
    EXPECT_EQ(model.podsNeeded(rps * 1.5, 64), 2u);
    EXPECT_EQ(model.podsNeeded(rps * 6.01, 64), 7u);
    // Nondecreasing in offered load.
    EXPECT_GE(model.podsNeeded(rps * 8, 64),
              model.podsNeeded(rps * 4, 64));
}

} // namespace
} // namespace heap::serve
