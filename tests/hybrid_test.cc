/**
 * @file
 * Tests for RNS base conversion (ModUp/ModDown's core) and hybrid
 * key switching with a special prime: correctness at every level,
 * and the order-of-magnitude noise advantage over the digit gadget.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "math/baseconv.h"
#include "math/primes.h"
#include "rlwe/gadget.h"
#include "rlwe/hybrid.h"

namespace heap {
namespace {

TEST(BaseConverter, ExactConversionOfSmallValues)
{
    const auto src = math::generateNttPrimes(30, 64, 3);
    const auto dst = math::generateNttPrimes(36, 64, 2);
    const math::BaseConverter bc(src, dst);

    Rng rng(1);
    for (int iter = 0; iter < 200; ++iter) {
        // Values below the source product round-trip exactly in
        // exact mode.
        const uint64_t x = rng.next() >> 4; // < 2^60 < P ~ 2^90
        std::vector<uint64_t> in(3), out(2);
        for (size_t i = 0; i < 3; ++i) {
            in[i] = x % src[i];
        }
        bc.convertCoeff(in, out, /*exact=*/true);
        for (size_t j = 0; j < 2; ++j) {
            ASSERT_EQ(out[j], x % dst[j]) << "x=" << x;
        }
    }
}

TEST(BaseConverter, FastConversionOffByMultipleOfP)
{
    const auto src = math::generateNttPrimes(30, 64, 2);
    const auto dst = math::generateNttPrimes(36, 64, 1);
    const math::BaseConverter bc(src, dst);
    const math::uint128 bigP =
        static_cast<math::uint128>(src[0]) * src[1];

    Rng rng(2);
    for (int iter = 0; iter < 200; ++iter) {
        const uint64_t x = rng.next() >> 6;
        std::vector<uint64_t> in = {x % src[0], x % src[1]};
        std::vector<uint64_t> out(1);
        bc.convertCoeff(in, out, /*exact=*/false);
        // out = (x + alpha * P) mod t for some alpha in {0, 1}.
        const uint64_t t = dst[0];
        const uint64_t exact = x % t;
        const uint64_t pModT = static_cast<uint64_t>(bigP % t);
        bool ok = false;
        for (uint64_t alpha = 0; alpha < 2; ++alpha) {
            if (out[0] == math::addMod(
                              exact,
                              math::mulModNaive(alpha, pModT, t), t)) {
                ok = true;
            }
        }
        ASSERT_TRUE(ok) << "x=" << x;
    }
}

TEST(BaseConverter, RejectsOverlappingBases)
{
    const auto p = math::generateNttPrimes(30, 64, 2);
    EXPECT_THROW(math::BaseConverter(p, p), UserError);
}

struct HybridFixture : ::testing::Test {
    static constexpr size_t kN = 128;
    // Message limbs 30-bit; the last 36-bit prime is the special P.
    std::shared_ptr<const math::RnsBasis> basis = [] {
        auto q = math::generateNttPrimes(30, kN, 3);
        q.push_back(math::generateNttPrimes(36, kN, 1)[0]);
        return std::make_shared<math::RnsBasis>(kN, std::move(q));
    }();
    Rng rng{606};
    rlwe::SecretKey sk = rlwe::SecretKey::sampleTernary(basis, rng);
    rlwe::SecretKey sk2 = rlwe::SecretKey::sampleTernary(basis, rng);

    std::vector<int64_t>
    message()
    {
        std::vector<int64_t> m(kN);
        for (auto& v : m) {
            v = static_cast<int64_t>(rng.uniform(1 << 21)) - (1 << 20);
        }
        return m;
    }

    double
    rmsError(const std::vector<int64_t>& got,
             const std::vector<int64_t>& want)
    {
        double s = 0;
        for (size_t i = 0; i < got.size(); ++i) {
            const double d = static_cast<double>(got[i] - want[i]);
            s += d * d;
        }
        return std::sqrt(s / static_cast<double>(got.size()));
    }
};

TEST_F(HybridFixture, SwitchPreservesMessageAtTopLevel)
{
    const auto m = message();
    const auto ct =
        rlwe::encrypt(sk2, math::rnsFromSigned(basis, 3, m), rng);
    const auto fromCoeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());
    const auto ksk = rlwe::makeHybridKeySwitchKey(sk, fromCoeff, rng);
    const auto out = rlwe::switchKeyHybrid(ct, ksk);
    EXPECT_EQ(out.limbCount(), 3u);
    // Hybrid noise ~ sigma * sqrt(N l / 12): tens, not thousands.
    EXPECT_LT(rmsError(rlwe::decryptSigned(out, sk), m), 200.0);
}

TEST_F(HybridFixture, SwitchWorksAtLowerLevels)
{
    const auto fromCoeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());
    const auto ksk = rlwe::makeHybridKeySwitchKey(sk, fromCoeff, rng);
    for (const size_t level : {1u, 2u}) {
        const auto m = message();
        const auto ct = rlwe::encrypt(
            sk2, math::rnsFromSigned(basis, level, m), rng);
        const auto out = rlwe::switchKeyHybrid(ct, ksk);
        EXPECT_EQ(out.limbCount(), level);
        EXPECT_LT(rmsError(rlwe::decryptSigned(out, sk), m), 200.0)
            << "level " << level;
    }
}

TEST_F(HybridFixture, QuieterThanDigitGadget)
{
    const auto m = message();
    const auto ct =
        rlwe::encrypt(sk2, math::rnsFromSigned(basis, 3, m), rng);
    const auto fromCoeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());

    Rng kr(7);
    const auto hybrid = rlwe::makeHybridKeySwitchKey(sk, fromCoeff, kr);
    const double hybridNoise = rmsError(
        rlwe::decryptSigned(rlwe::switchKeyHybrid(ct, hybrid), sk), m);

    Rng kr2(7);
    const rlwe::GadgetParams g{.baseBits = 12, .digitsPerLimb = 3};
    const auto gadget = rlwe::makeKeySwitchKey(sk, fromCoeff, g, kr2);
    const double gadgetNoise = rmsError(
        rlwe::decryptSigned(rlwe::switchKey(ct, gadget), sk), m);

    EXPECT_LT(hybridNoise * 10.0, gadgetNoise)
        << "hybrid " << hybridNoise << " vs gadget " << gadgetNoise;
}

struct GroupedHybridFixture : ::testing::Test {
    static constexpr size_t kN = 128;
    // Four 30-bit message limbs + two 36-bit special primes:
    // groupSize 2 gives dnum = 2 digits under a 72-bit P.
    std::shared_ptr<const math::RnsBasis> basis = [] {
        auto q = math::generateNttPrimes(30, kN, 4);
        const auto specials = math::generateNttPrimes(36, kN, 2);
        q.insert(q.end(), specials.begin(), specials.end());
        return std::make_shared<math::RnsBasis>(kN, std::move(q));
    }();
    Rng rng{707};
    rlwe::SecretKey sk = rlwe::SecretKey::sampleTernary(basis, rng);
    rlwe::SecretKey sk2 = rlwe::SecretKey::sampleTernary(basis, rng);
};

TEST_F(GroupedHybridFixture, TwoLimbGroupsSwitchCorrectly)
{
    const auto fromCoeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());
    const auto ksk = rlwe::makeHybridKeySwitchKey(
        sk, fromCoeff, rng, {}, /*groupSize=*/2, /*specialLimbs=*/2);
    EXPECT_EQ(ksk.rows.size(), 2u); // dnum = ceil(4/2)

    for (const size_t level : {1u, 2u, 3u, 4u}) {
        std::vector<int64_t> m(kN);
        for (auto& v : m) {
            v = static_cast<int64_t>(rng.uniform(1 << 21)) - (1 << 20);
        }
        const auto ct = rlwe::encrypt(
            sk2, math::rnsFromSigned(basis, level, m), rng);
        const auto out = rlwe::switchKeyHybrid(ct, ksk);
        EXPECT_EQ(out.limbCount(), level);
        const auto dec = rlwe::decryptSigned(out, sk);
        double worst = 0;
        for (size_t i = 0; i < kN; ++i) {
            worst = std::max(worst,
                             std::abs(static_cast<double>(dec[i] - m[i])));
        }
        // Noise ~ sigma * Q_group/P * sqrt(N * dnum / 3): small.
        EXPECT_LT(worst, 2e3) << "level " << level;
    }
}

TEST_F(GroupedHybridFixture, RejectsOversizedGroups)
{
    const auto fromCoeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());
    // Four 30-bit limbs in one group (120 bits) cannot hide under a
    // 72-bit special modulus.
    EXPECT_THROW(rlwe::makeHybridKeySwitchKey(sk, fromCoeff, rng, {},
                                              /*groupSize=*/4,
                                              /*specialLimbs=*/2),
                 UserError);
}

TEST_F(HybridFixture, RejectsFullBasisCiphertext)
{
    const auto m = message();
    const auto ct = rlwe::encrypt(
        sk2, math::rnsFromSigned(basis, basis->size(), m), rng);
    const auto fromCoeff =
        math::rnsFromSigned(basis, basis->size(), sk2.coeffs());
    const auto ksk = rlwe::makeHybridKeySwitchKey(sk, fromCoeff, rng);
    EXPECT_THROW(rlwe::switchKeyHybrid(ct, ksk), UserError);
}

} // namespace
} // namespace heap
