/**
 * @file
 * Unit and property tests for scalar modular arithmetic: the Barrett
 * reducer and Shoup constant multiplication are validated against the
 * __int128 reference across a range of modulus widths.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"

namespace heap::math {
namespace {

TEST(ModArith, AddSubNegBasics)
{
    const uint64_t q = 17;
    EXPECT_EQ(addMod(16, 16, q), 15u);
    EXPECT_EQ(addMod(0, 0, q), 0u);
    EXPECT_EQ(subMod(3, 5, q), 15u);
    EXPECT_EQ(subMod(5, 5, q), 0u);
    EXPECT_EQ(negMod(0, q), 0u);
    EXPECT_EQ(negMod(1, q), 16u);
}

TEST(ModArith, PowMod)
{
    EXPECT_EQ(powMod(2, 10, 1000003), 1024u);
    EXPECT_EQ(powMod(3, 0, 7), 1u);
    // Fermat: a^(p-1) = 1 mod p.
    const uint64_t p = 1152921504606830593ULL; // 60-bit prime
    EXPECT_EQ(powMod(12345, p - 1, p), 1u);
}

TEST(ModArith, InvMod)
{
    const uint64_t q = 65537;
    for (uint64_t a : {1ULL, 2ULL, 3ULL, 65536ULL, 12345ULL}) {
        const uint64_t inv = invMod(a, q);
        EXPECT_EQ(mulModNaive(a, inv, q), 1u) << "a=" << a;
    }
    EXPECT_THROW(invMod(0, 17), UserError);
}

TEST(ModArith, CenteredRoundTrip)
{
    const uint64_t q = 101;
    for (uint64_t a = 0; a < q; ++a) {
        const int64_t c = toCentered(a, q);
        EXPECT_GE(c, -static_cast<int64_t>(q) / 2 - 1);
        EXPECT_LE(c, static_cast<int64_t>(q) / 2);
        EXPECT_EQ(fromCentered(c, q), a);
    }
}

class BarrettParamTest : public ::testing::TestWithParam<int> {};

TEST_P(BarrettParamTest, MatchesNaiveReduction)
{
    const int bits = GetParam();
    Rng rng(42 + static_cast<uint64_t>(bits));
    // Pick an odd modulus of the requested width (primality not needed
    // for Barrett correctness).
    const uint64_t q =
        ((static_cast<uint64_t>(1) << (bits - 1)) | rng.next() >> (65 - bits))
        | 1;
    const BarrettReducer red(q);
    ASSERT_EQ(red.modulus(), q);
    for (int iter = 0; iter < 2000; ++iter) {
        const uint64_t a = rng.next();
        const uint64_t b = rng.next();
        const uint128 x = static_cast<uint128>(a) * b;
        EXPECT_EQ(red.reduce(x), static_cast<uint64_t>(x % q));
    }
    // Edge values.
    EXPECT_EQ(red.reduce(0), 0u);
    EXPECT_EQ(red.reduce(q), 0u);
    EXPECT_EQ(red.reduce(q - 1), q - 1);
    const uint128 maxProd = static_cast<uint128>(~0ULL) * (~0ULL);
    EXPECT_EQ(red.reduce(maxProd), static_cast<uint64_t>(maxProd % q));
}

INSTANTIATE_TEST_SUITE_P(Widths, BarrettParamTest,
                         ::testing::Values(20, 30, 36, 45, 50, 59, 62));

TEST(ModArith, BarrettRejectsBadModulus)
{
    EXPECT_THROW(BarrettReducer(1), UserError);
    EXPECT_THROW(BarrettReducer(static_cast<uint64_t>(1) << 62), UserError);
}

TEST(ModArith, ShoupMatchesNaive)
{
    Rng rng(7);
    for (int bits : {30, 36, 50, 60}) {
        const uint64_t q =
            ((static_cast<uint64_t>(1) << (bits - 1)) |
             rng.next() >> (65 - bits)) | 1;
        for (int iter = 0; iter < 500; ++iter) {
            const uint64_t w = rng.uniform(q);
            const uint64_t ws = shoupPrecompute(w, q);
            const uint64_t a = rng.uniform(q);
            EXPECT_EQ(mulModShoup(a, w, ws, q), mulModNaive(a, w, q));
            // Lazy input in [q, 2q) must also reduce correctly.
            const uint64_t lazy = a + q;
            if (lazy >= q) {
                EXPECT_EQ(mulModShoup(lazy, w, ws, q),
                          mulModNaive(lazy % q, w, q));
            }
        }
    }
}

TEST(ModArith, MulHi64)
{
    EXPECT_EQ(mulHi64(0, ~0ULL), 0u);
    EXPECT_EQ(mulHi64(~0ULL, ~0ULL), ~0ULL - 1);
    EXPECT_EQ(mulHi64(1ULL << 32, 1ULL << 32), 1u);
}

} // namespace
} // namespace heap::math
