/**
 * @file
 * Serving-runtime tests: the scheduler policy in isolation
 * (ItemQueue ranking/starvation, BatchPlanner sizing), and the
 * BootstrapService end to end — byte-identity of continuously batched
 * multi-client service against sequential per-request bootstrapping
 * (fault-free, fault-injected, and dead-secondary links, for worker
 * counts 1/2/8), backpressure rejection, priority and deadline
 * ordering, deadline-miss accounting, clean shutdown with in-flight
 * work, and the noise-budget health surface.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "serve/service.h"

namespace heap::serve {
namespace {

// Same miniature parameter set as the fault-injection suite: n = 64
// keeps a full bootstrap affordable while exercising every protocol
// path.
ckks::CkksParams
serveParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- //
// ItemQueue policy                                                 //
// ---------------------------------------------------------------- //

TEST(ItemQueue, PriorityThenDeadlineThenArrival)
{
    ItemQueue q(8);
    q.addRequest(1, 0, kInf, 2);     // low priority, first arrival
    q.addRequest(2, 5, kInf, 2);     // high priority
    q.addRequest(3, 0, 100.0, 2);    // low priority, tight deadline
    q.addRequest(4, 5, 50.0, 2);     // high priority, tight deadline
    EXPECT_EQ(q.pendingItems(), 8u);
    EXPECT_EQ(q.minDeadlineAbsMs(), 50.0);

    const PlannedBatch b = q.formBatch(8);
    ASSERT_EQ(b.items.size(), 8u);
    EXPECT_EQ(b.distinctRequests, 4u);
    // Rank order: 4 (pri 5, edf), 2 (pri 5), 3 (pri 0, edf), 1.
    const uint64_t wantOrder[] = {4, 4, 2, 2, 3, 3, 1, 1};
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(b.items[i].requestId, wantOrder[i]) << i;
    }
    // Within one request, items go out in ascending index order.
    EXPECT_EQ(b.items[0].index, 0u);
    EXPECT_EQ(b.items[1].index, 1u);
    EXPECT_TRUE(q.empty());
}

TEST(ItemQueue, PartialBatchesResumeWhereTheyLeftOff)
{
    ItemQueue q(8);
    q.addRequest(1, 0, kInf, 5);
    q.addRequest(2, 0, kInf, 5);
    const PlannedBatch b1 = q.formBatch(3);
    ASSERT_EQ(b1.items.size(), 3u);
    EXPECT_EQ(b1.distinctRequests, 1u); // request 1 only
    EXPECT_EQ(q.pendingItems(), 7u);

    const PlannedBatch b2 = q.formBatch(4);
    ASSERT_EQ(b2.items.size(), 4u);
    EXPECT_EQ(b2.distinctRequests, 2u); // tail of 1 + head of 2
    EXPECT_EQ(b2.items[0].requestId, 1u);
    EXPECT_EQ(b2.items[0].index, 3u);
    EXPECT_EQ(b2.items[2].requestId, 2u);
    EXPECT_EQ(b2.items[2].index, 0u);

    const PlannedBatch b3 = q.formBatch(64);
    EXPECT_EQ(b3.items.size(), 3u);
    EXPECT_TRUE(q.empty());
}

TEST(ItemQueue, StarvationBoostOvertakesPriority)
{
    ItemQueue q(2); // boost after 2 consecutive skips
    q.addRequest(1, 0, kInf, 1); // the would-be starved request
    q.addRequest(2, 9, kInf, 1);
    EXPECT_EQ(q.formBatch(1).items[0].requestId, 2u); // skip #1
    q.addRequest(3, 9, kInf, 1);
    EXPECT_EQ(q.formBatch(1).items[0].requestId, 3u); // skip #2
    q.addRequest(4, 9, kInf, 1);
    // Request 1 has now been skipped twice: it must win over the
    // fresh priority-9 arrival.
    EXPECT_EQ(q.formBatch(1).items[0].requestId, 1u);
    EXPECT_EQ(q.formBatch(1).items[0].requestId, 4u);
    EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------- //
// BatchPlanner sizing                                              //
// ---------------------------------------------------------------- //

TEST(BatchPlanner, ModellessFillsToTheCap)
{
    BatchPlanner p(nullptr, {.maxBatchItems = 48});
    EXPECT_EQ(p.chooseBatchSize(500, kInf), 48u);
    EXPECT_EQ(p.chooseBatchSize(500, 0.001), 48u); // no model: no cap
    EXPECT_EQ(p.chooseBatchSize(10, kInf), 10u);
    EXPECT_GT(p.batchCostMs(64, true), p.batchCostMs(1, true));
}

TEST(BatchPlanner, SlackCapsTheBatchMonotonically)
{
    const hw::FpgaConfig cfg;
    const hw::HeapParams params;
    const hw::BootstrapModel model(cfg, params, 8);
    BatchPlanner p(&model, {.maxBatchItems = 512});

    EXPECT_EQ(p.chooseBatchSize(512, kInf), 512u);
    const double fullCost = p.batchCostMs(512, true);
    const double halfCost = p.batchCostMs(256, true);
    EXPECT_GT(fullCost, halfCost);

    // Slack ample for the full batch keeps it; slack for exactly half
    // the cost returns a batch whose modeled cost fits.
    EXPECT_EQ(p.chooseBatchSize(512, fullCost * 2), 512u);
    const size_t capped = p.chooseBatchSize(512, halfCost);
    EXPECT_LT(capped, 512u);
    EXPECT_GE(capped, 1u);
    EXPECT_LE(p.batchCostMs(capped, true), halfCost);
    EXPECT_GT(p.batchCostMs(capped + 1, true), halfCost);

    // Tighter (but still feasible) slack never yields a larger batch.
    size_t prev = 512;
    for (double slack = fullCost; slack >= p.batchCostMs(1, true);
         slack /= 2) {
        const size_t s = p.chooseBatchSize(512, slack);
        EXPECT_LE(s, prev);
        prev = s;
    }
    // A deadline that cannot be met even by one item is already lost:
    // dispatch the full batch and account the miss.
    EXPECT_EQ(p.chooseBatchSize(512, 0.0), 512u);
}

// ---------------------------------------------------------------- //
// LatencyReservoir                                                 //
// ---------------------------------------------------------------- //

TEST(LatencyReservoir, CachedSortInvalidatesOnRecord)
{
    // Regression for the snapshot-sort fix: percentile() sorts once
    // and caches; a record() between reads must invalidate the cache,
    // and repeated reads must not perturb the reservoir.
    LatencyReservoir r(1024);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> u(0.1, 50.0);
    std::vector<double> samples;
    for (int step = 0; step < 200; ++step) {
        const double v = u(rng);
        r.record(v);
        samples.push_back(v);
        if (step % 7 != 0) {
            continue;
        }
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        for (const double p : {50.0, 95.0, 99.0}) {
            // Freshly computed oracle with the reservoir's own
            // interpolation rule.
            const double rank =
                p / 100.0 * static_cast<double>(sorted.size() - 1);
            const size_t lo = static_cast<size_t>(rank);
            const size_t hi = std::min(lo + 1, sorted.size() - 1);
            const double want =
                sorted[lo]
                + (sorted[hi] - sorted[lo]) * (rank - double(lo));
            EXPECT_DOUBLE_EQ(r.percentile(p), want)
                << "step " << step << " p" << p;
            // A second read off the cached sort is identical.
            EXPECT_DOUBLE_EQ(r.percentile(p), want);
        }
    }
}

TEST(LatencyReservoir, PercentilesAndDecimation)
{
    LatencyReservoir r(16);
    EXPECT_TRUE(std::isnan(r.percentile(50)));
    for (int i = 1; i <= 100; ++i) {
        r.record(static_cast<double>(i));
    }
    EXPECT_EQ(r.count(), 100u);
    EXPECT_GT(r.percentile(95), r.percentile(50));
    EXPECT_GE(r.percentile(100), r.percentile(99));
    EXPECT_GE(r.percentile(50), 1.0);
    EXPECT_LE(r.percentile(100), 100.0);
    EXPECT_GT(r.mean(), 0.0);
}

// ---------------------------------------------------------------- //
// BootstrapService end to end                                      //
// ---------------------------------------------------------------- //

struct ServeFixture : ::testing::Test {
    static constexpr size_t kRequests = 6;

    /** Deterministic per-request payloads (16 slots each). */
    static std::vector<ckks::Ciphertext>
    makeInputs(const ckks::Context& ctx, ckks::Evaluator& ev,
               size_t count)
    {
        std::vector<ckks::Ciphertext> inputs;
        for (size_t r = 0; r < count; ++r) {
            std::vector<ckks::Complex> z;
            for (size_t i = 0; i < 16; ++i) {
                const double t = static_cast<double>(i);
                const double s = static_cast<double>(r);
                z.emplace_back(0.7 * std::cos(0.2 * t + 0.3 * s),
                               0.4 * std::sin(0.5 * t - 0.1 * s));
            }
            auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
            ev.dropToLevel(ct, 1);
            inputs.push_back(std::move(ct));
        }
        return inputs;
    }

    /** The reference: one sequential bootstrap() per request. */
    static std::vector<std::vector<uint8_t>>
    sequentialBytes(uint64_t ctxSeed, size_t secondaries, size_t count)
    {
        ckks::Context ctx(serveParams(), ctxSeed);
        ckks::Evaluator ev(ctx);
        boot::DistributedBootstrapper dist(ctx, secondaries, kBrGadget);
        const auto inputs = makeInputs(ctx, ev, count);
        std::vector<std::vector<uint8_t>> out;
        for (const auto& in : inputs) {
            out.push_back(ckks::saveCiphertext(dist.bootstrap(in)));
        }
        return out;
    }

    struct ServeRun {
        std::vector<std::vector<uint8_t>> bytes;
        std::vector<RequestReport> reports;
        ServiceMetrics metrics;
    };

    /**
     * The same requests through a BootstrapService, submitted from
     * `clients` concurrent threads in a seed-shuffled order while the
     * service is paused (so the batch schedule deterministically
     * packs across requests), then resumed and awaited.
     */
    static ServeRun
    serviceRun(uint64_t ctxSeed, size_t secondaries, size_t count,
               size_t workers, size_t clients, const boot::FaultSpec* spec,
               long deadSecondary = -1)
    {
        // Identical construction order to sequentialBytes(): same ctx
        // seed and RNG call sequence => same keys and same inputs.
        ckks::Context ctx(serveParams(), ctxSeed);
        ckks::Evaluator ev(ctx);
        boot::DistributedBootstrapper dist(ctx, secondaries, kBrGadget);
        if (spec != nullptr) {
            dist.setFaults(*spec);
        }
        if (deadSecondary >= 0) {
            boot::FaultSpec dead;
            dead.drop = 1.0;
            dist.setSecondaryFaults(static_cast<size_t>(deadSecondary),
                                    dead);
        }
        const auto inputs = makeInputs(ctx, ev, count);

        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.maxQueuedRequests = count;
        // 48 < n = 64: batches straddle request boundaries, so the
        // occupancy assertion below genuinely tests cross-request
        // packing.
        cfg.maxBatchItems = 48;
        BootstrapService svc(dist, cfg);

        svc.pause();
        std::vector<std::shared_ptr<BootstrapTicket>> tickets(count);
        // Seeded arrival process: each client thread submits its
        // shuffled share of the requests concurrently.
        std::vector<size_t> order(count);
        for (size_t r = 0; r < count; ++r) {
            order[r] = r;
        }
        std::shuffle(order.begin(), order.end(),
                     std::mt19937(static_cast<unsigned>(ctxSeed)));
        std::vector<std::thread> pool;
        for (size_t c = 0; c < clients; ++c) {
            pool.emplace_back([&, c] {
                for (size_t k = c; k < count; k += clients) {
                    const size_t r = order[k];
                    tickets[r] = svc.submit(inputs[r]);
                }
            });
        }
        for (auto& t : pool) {
            t.join();
        }
        svc.resume();

        ServeRun run;
        run.bytes.resize(count);
        run.reports.resize(count);
        for (size_t r = 0; r < count; ++r) {
            run.bytes[r] = ckks::saveCiphertext(tickets[r]->wait());
            run.reports[r] = tickets[r]->report();
        }
        run.metrics = svc.metrics();
        return run;
    }
};

TEST_F(ServeFixture, ByteIdenticalToSequentialAcrossWorkersAndFaults)
{
    constexpr size_t kSecondaries = 3;
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        const auto want = sequentialBytes(seed, kSecondaries, kRequests);

        // Fault-free service, 8 concurrent clients, workers 1/2/8.
        for (const size_t workers : {1ul, 2ul, 8ul}) {
            const auto run = serviceRun(seed, kSecondaries, kRequests,
                                        workers, 8, nullptr);
            for (size_t r = 0; r < kRequests; ++r) {
                EXPECT_TRUE(run.bytes[r] == want[r])
                    << "seed " << seed << ", " << workers
                    << " workers, request " << r;
            }
            EXPECT_EQ(run.metrics.completed, kRequests);
            EXPECT_EQ(run.metrics.failed, 0u);
            // The tentpole: batches actually mixed requests.
            EXPECT_GT(run.metrics.batchOccupancy, 1.0)
                << "seed " << seed << ", " << workers << " workers";
        }

        // PR 3's fault cocktail on every link (service-owned retry
        // protocol): outputs must not change.
        boot::FaultSpec spec;
        spec.drop = 0.2;
        spec.bitflip = 0.15;
        spec.truncate = 0.1;
        spec.duplicate = 0.15;
        spec.reorder = 0.2;
        spec.delay = 0.25;
        spec.seed = seed;
        const auto faulted =
            serviceRun(seed, kSecondaries, kRequests, 2, 8, &spec);
        for (size_t r = 0; r < kRequests; ++r) {
            EXPECT_TRUE(faulted.bytes[r] == want[r])
                << "faulted, seed " << seed << ", request " << r;
        }
        EXPECT_GT(faulted.metrics.batchOccupancy, 1.0);
        EXPECT_GE(faulted.metrics.wireBytesOut,
                  faulted.metrics.wireBytesIn > 0 ? 1u : 0u);
    }
}

TEST_F(ServeFixture, DeadSecondaryIsReclaimedWithIdenticalOutputs)
{
    constexpr uint64_t kSeed = 21;
    constexpr size_t kSecondaries = 2;
    const auto want = sequentialBytes(kSeed, kSecondaries, kRequests);
    const auto run = serviceRun(kSeed, kSecondaries, kRequests, 2, 4,
                                nullptr, /*deadSecondary=*/1);
    for (size_t r = 0; r < kRequests; ++r) {
        EXPECT_TRUE(run.bytes[r] == want[r]) << "request " << r;
    }
    // Every batch routed at the dead secondary was reclaimed locally.
    EXPECT_GT(run.metrics.reclaimedBatches, 0u);
    EXPECT_EQ(run.metrics.completed, kRequests);
}

TEST_F(ServeFixture, ReportsSurfaceBudgetHealth)
{
    constexpr uint64_t kSeed = 7;
    ckks::Context ctx(serveParams(), kSeed);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 2);

    BootstrapService svc(dist, {.workers = 2});
    auto t0 = svc.submit(inputs[0]);
    auto t1 = svc.submit(inputs[1]);
    const auto out0 = t0->wait();
    (void)t1->wait();

    const RequestReport rep = t0->report();
    EXPECT_EQ(rep.id, 1u);
    EXPECT_GE(rep.totalMs, rep.queueMs);
    EXPECT_GE(rep.batches, 1u);
    EXPECT_FALSE(rep.deadlineMissed);
    // The report's budget figures match the context's reading of the
    // returned ciphertext: budget health without decrypting.
    EXPECT_DOUBLE_EQ(rep.budgetBits, ctx.noiseBudgetBits(out0));
    EXPECT_DOUBLE_EQ(rep.precisionBits, ctx.noisePrecisionBits(out0));
    EXPECT_TRUE(std::isfinite(rep.budgetBits));
    EXPECT_GT(rep.budgetBits, 0.0);

    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.completed, 2u);
    EXPECT_EQ(m.guardTrips, 0u);
    EXPECT_TRUE(std::isfinite(m.minReturnedBudgetBits));
    EXPECT_LE(m.minReturnedBudgetBits, rep.budgetBits);
    EXPECT_GT(m.p50Ms, 0.0);
    EXPECT_GE(m.p99Ms, m.p50Ms);
}

TEST_F(ServeFixture, BackpressureRejectsBeyondCapacity)
{
    ckks::Context ctx(serveParams(), 7);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 3);

    BootstrapService svc(dist,
                         {.workers = 1, .maxQueuedRequests = 2});
    svc.pause(); // nothing completes: the queue must fill
    auto t0 = svc.submit(inputs[0]);
    auto t1 = svc.submit(inputs[1]);
    EXPECT_THROW(svc.submit(inputs[2]), UserError);
    EXPECT_EQ(svc.metrics().rejected, 1u);
    EXPECT_EQ(svc.metrics().submitted, 2u);
    EXPECT_EQ(svc.metrics().queueDepth, 2u);

    // The accepted requests are unaffected by the rejection.
    svc.resume();
    EXPECT_GT(t0->wait().slots, 0u);
    EXPECT_GT(t1->wait().slots, 0u);
    EXPECT_EQ(svc.metrics().completed, 2u);
    EXPECT_EQ(svc.metrics().maxQueueDepth, 2u);
}

TEST_F(ServeFixture, SubmitValidatesLevelSynchronously)
{
    ckks::Context ctx(serveParams(), 7);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    BootstrapService svc(dist, {.workers = 1});
    const std::vector<double> v(16, 0.25);
    // Freshly encrypted => full level, not the level-1 bootstrap
    // input: rejected at submit, not via a failed ticket.
    const auto ct = ctx.encrypt(std::span<const double>(v));
    EXPECT_THROW(svc.submit(ct), UserError);
}

TEST_F(ServeFixture, PriorityOrdersCompletionUnderSingleWorker)
{
    ckks::Context ctx(serveParams(), 21);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 3);

    BootstrapService svc(dist, {.workers = 1});
    svc.pause();
    SubmitOptions lowPri;
    SubmitOptions highPri;
    highPri.priority = 5;
    auto low1 = svc.submit(inputs[0], lowPri);
    auto low2 = svc.submit(inputs[1], lowPri);
    auto high = svc.submit(inputs[2], highPri);
    svc.resume();
    svc.drain();

    // The high-priority request, submitted last, completes first;
    // equal priorities complete in arrival order.
    EXPECT_EQ(high->report().completionSeq, 1u);
    EXPECT_EQ(low1->report().completionSeq, 2u);
    EXPECT_EQ(low2->report().completionSeq, 3u);
}

TEST_F(ServeFixture, EarliestDeadlineBreaksPriorityTies)
{
    ckks::Context ctx(serveParams(), 21);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 2);

    BootstrapService svc(dist, {.workers = 1});
    svc.pause();
    auto relaxed = svc.submit(inputs[0]); // no deadline
    auto urgent = svc.submit(inputs[1], {.deadlineMs = 10.0});
    svc.resume();
    svc.drain();
    EXPECT_EQ(urgent->report().completionSeq, 1u);
    EXPECT_EQ(relaxed->report().completionSeq, 2u);
}

TEST_F(ServeFixture, DeadlineMissIsAccountedNeverDropped)
{
    constexpr uint64_t kSeed = 42;
    const auto want = sequentialBytes(kSeed, 1, 1);

    ckks::Context ctx(serveParams(), kSeed);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 1);

    BootstrapService svc(dist, {.workers = 1});
    // A zero-millisecond deadline is unmeetable: the request must
    // still complete correctly, with the miss accounted.
    auto t = svc.submit(inputs[0], {.deadlineMs = 0.0});
    const auto out = t->wait();
    EXPECT_TRUE(ckks::saveCiphertext(out) == want[0]);
    EXPECT_TRUE(t->report().deadlineMissed);
    EXPECT_EQ(svc.metrics().deadlineMisses, 1u);
    EXPECT_EQ(svc.metrics().completed, 1u);
}

TEST_F(ServeFixture, ShutdownDrainsInFlightWorkThenRejects)
{
    constexpr uint64_t kSeed = 7;
    const auto want = sequentialBytes(kSeed, 2, 4);

    ckks::Context ctx(serveParams(), kSeed);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 2, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 4);

    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    {
        BootstrapService svc(dist, {.workers = 2});
        for (const auto& in : inputs) {
            tickets.push_back(svc.submit(in));
        }
        svc.shutdown(); // drains everything accepted
        EXPECT_THROW(svc.submit(inputs[0]), UserError);
        EXPECT_EQ(svc.metrics().rejected, 1u);
        EXPECT_EQ(svc.metrics().completed, 4u);
    } // destruction after shutdown() is a no-op

    for (size_t r = 0; r < tickets.size(); ++r) {
        ASSERT_TRUE(tickets[r]->ready()) << r;
        EXPECT_TRUE(ckks::saveCiphertext(tickets[r]->wait())
                    == want[r])
            << r;
    }
}

TEST_F(ServeFixture, DestructionAloneDrainsAcceptedWork)
{
    ckks::Context ctx(serveParams(), 42);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 3);

    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    {
        BootstrapService svc(dist, {.workers = 2});
        for (const auto& in : inputs) {
            tickets.push_back(svc.submit(in));
        }
        // No wait, no shutdown: the destructor must finish the work.
    }
    for (const auto& t : tickets) {
        EXPECT_TRUE(t->ready());
        EXPECT_GT(t->wait().slots, 0u);
    }
}

} // namespace
} // namespace heap::serve
