/**
 * @file
 * Encrypted-lookup serving tests: PirService answers are
 * byte-identical to the direct PirServer::answer() fold for worker
 * counts {1, 2, 8} and seeds {7, 21, 42}; the pod-level fault
 * alphabet (inject / crash / recover / pause) behaves like the
 * bootstrap pod's; a mixed bootstrap+PIR cluster serves both tenant
 * classes through shared routing/breakers/key caches with exact
 * admission conservation; PIR flights fail over byte-identically
 * under a chaos crash; and the failover thread's per-pod sweep
 * batching re-dispatches an accumulated retry backlog in one batch.
 */

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "math/primes.h"
#include "serve/cluster.h"

namespace heap::serve {
namespace {

pir::PirParams
pirParams(std::vector<size_t> dims, size_t entries)
{
    const size_t n = 64;
    pir::PirParams p;
    p.basis = std::make_shared<math::RnsBasis>(
        n, math::generateNttPrimes(30, n, 2));
    p.limbs = 2;
    p.dims = std::move(dims);
    p.entries = entries;
    p.payloadCoeffs = 8;
    p.scaleBits = 35;
    p.payloadBits = 16;
    p.gadget = rlwe::GadgetParams{.baseBits = 5, .digitsPerLimb = 6};
    return p;
}

std::vector<uint8_t>
answerBytes(const rlwe::Ciphertext& ct)
{
    ByteWriter w;
    ckks::saveRlwe(ct, w);
    return w.bytes();
}

/** One client-side PIR world: params, key, database, queries. */
struct PirWorld {
    pir::PirParams params;
    std::shared_ptr<rlwe::SecretKey> sk;
    std::vector<std::vector<int64_t>> db;
    std::unique_ptr<pir::PirServer> server;
    std::unique_ptr<pir::PirClient> client;
};

PirWorld
makePirWorld(uint64_t seed)
{
    PirWorld w;
    w.params = pirParams({8, 8}, 64);
    Rng rng(seed);
    w.sk = std::make_shared<rlwe::SecretKey>(
        rlwe::SecretKey::sampleTernary(w.params.basis, rng));
    w.db = pir::randomDatabase(w.params, seed);
    w.server = std::make_unique<pir::PirServer>(w.params, w.db);
    w.client = std::make_unique<pir::PirClient>(w.params, *w.sk);
    return w;
}

std::vector<std::shared_ptr<const pir::PirQuery>>
makeQueries(const PirWorld& w, uint64_t seed,
            const std::vector<size_t>& indices)
{
    Rng rng(seed ^ 0x5151u);
    std::vector<std::shared_ptr<const pir::PirQuery>> out;
    for (const size_t idx : indices) {
        out.push_back(std::make_shared<const pir::PirQuery>(
            w.client->makeQuery(idx, rng)));
    }
    return out;
}

// ---- bootstrap-pod fixture, identical to cluster_test.cc ----------

ckks::CkksParams
serveParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

struct PodSet {
    std::unique_ptr<ckks::Context> ctx;
    std::unique_ptr<ckks::Evaluator> ev;
    std::vector<std::unique_ptr<boot::DistributedBootstrapper>> dists;
};

PodSet
makePods(uint64_t seed, size_t count, size_t secondaries)
{
    PodSet s;
    s.ctx = std::make_unique<ckks::Context>(serveParams(), seed);
    s.ev = std::make_unique<ckks::Evaluator>(*s.ctx);
    s.dists.push_back(std::make_unique<boot::DistributedBootstrapper>(
        *s.ctx, secondaries, kBrGadget));
    for (size_t i = 1; i < count; ++i) {
        s.dists.push_back(
            std::make_unique<boot::DistributedBootstrapper>(
                *s.dists[0], secondaries));
    }
    return s;
}

std::vector<boot::DistributedBootstrapper*>
distPtrs(PodSet& pods)
{
    std::vector<boot::DistributedBootstrapper*> out;
    for (auto& d : pods.dists) {
        out.push_back(d.get());
    }
    return out;
}

std::vector<ckks::Ciphertext>
makeInputs(const ckks::Context& ctx, ckks::Evaluator& ev, size_t count)
{
    std::vector<ckks::Ciphertext> inputs;
    for (size_t r = 0; r < count; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            const double t = static_cast<double>(i);
            const double s = static_cast<double>(r);
            z.emplace_back(0.7 * std::cos(0.2 * t + 0.3 * s),
                           0.4 * std::sin(0.5 * t - 0.1 * s));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        inputs.push_back(std::move(ct));
    }
    return inputs;
}

/** A tenant id whose consistent-hash preferred pod equals `want`. */
uint64_t
tenantPreferring(const ServiceCluster& cluster, size_t want,
                 uint64_t startId)
{
    for (uint64_t id = startId; id < startId + 1024; ++id) {
        if (cluster.preferredPod(id) == want) {
            return id;
        }
    }
    ADD_FAILURE() << "no tenant id preferring pod " << want;
    return startId;
}

// -------------------------------------------------------------------

TEST(PirService, ByteIdenticalAcrossWorkerCounts)
{
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        const PirWorld w = makePirWorld(seed);
        const std::vector<size_t> indices = {0,  1,  7,  8,
                                             31, 42, 55, 63};
        const auto queries = makeQueries(w, seed, indices);
        // Reference: the monolithic fold, one per query.
        std::vector<std::vector<uint8_t>> ref;
        for (const auto& q : queries) {
            ref.push_back(answerBytes(w.server->answer(*q)));
        }
        for (const size_t workers : {1u, 2u, 8u}) {
            PirService svc(*w.server,
                           PirServiceConfig{.workers = workers});
            std::vector<std::shared_ptr<PirTicket>> tickets;
            for (const auto& q : queries) {
                tickets.push_back(svc.submit(q));
            }
            for (size_t i = 0; i < tickets.size(); ++i) {
                const rlwe::Ciphertext ans = tickets[i]->wait();
                EXPECT_EQ(answerBytes(ans), ref[i])
                    << "seed " << seed << " workers " << workers
                    << " query " << i;
                EXPECT_EQ(w.client->decode(ans), w.db[indices[i]]);
            }
            const ServiceMetrics m = svc.metrics();
            EXPECT_EQ(m.submitted, queries.size());
            EXPECT_EQ(m.completed, queries.size());
            EXPECT_EQ(m.failed, 0u);
            EXPECT_GT(m.batches, 0u);
            EXPECT_GT(m.minReturnedBudgetBits, 0.0);
            EXPECT_EQ(m.guardTrips, 0u);
        }
    }
}

TEST(PirService, RejectsMalformedQueriesAndBackpressure)
{
    const PirWorld w = makePirWorld(7);
    PirService svc(*w.server, PirServiceConfig{.workers = 1});
    // Wrong dimension count.
    auto bad = std::make_shared<pir::PirQuery>();
    bad->dimBits.resize(1);
    EXPECT_THROW(svc.submit(bad), UserError);
    // Admission cap.
    PirService tiny(*w.server, PirServiceConfig{
                                   .workers = 1,
                                   .maxQueuedRequests = 1,
                               });
    tiny.pause();
    const auto queries = makeQueries(w, 7, {3, 4});
    auto t0 = tiny.submit(queries[0]);
    EXPECT_THROW(tiny.submit(queries[1]), UserError);
    EXPECT_EQ(tiny.metrics().rejected, 1u);
    tiny.resume();
    EXPECT_EQ(w.client->decode(t0->wait()), w.db[3]);
}

TEST(PirService, FaultAlphabetMatchesBootstrapSemantics)
{
    const PirWorld w = makePirWorld(21);
    const auto queries = makeQueries(w, 21, {5, 9, 17});
    PirService svc(*w.server, PirServiceConfig{.workers = 2});

    // Injected fault: exactly the next request fails, retryably.
    svc.injectFailures(1);
    auto t0 = svc.submit(queries[0]);
    EXPECT_THROW(t0->wait(), PodError);

    // Crash with queued work: accepted requests fail with PodError,
    // intake rejects, recover() restores service.
    svc.pause();
    auto t1 = svc.submit(queries[1]);
    svc.crash();
    EXPECT_THROW(t1->wait(), PodError);
    EXPECT_TRUE(svc.crashed());
    EXPECT_THROW(svc.submit(queries[2]), UserError);
    svc.recover();
    svc.resume();
    auto t2 = svc.submit(queries[2]);
    EXPECT_EQ(w.client->decode(t2->wait()), w.db[17]);

    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.injectedFailures, 1u);
    EXPECT_EQ(m.crashes, 1u);
    EXPECT_EQ(m.completed, 1u);
    EXPECT_EQ(m.failed, 2u);
}

TEST(PirCluster, MixedTenantClassesShareTheCluster)
{
    const uint64_t seed = 7;
    auto pods = makePods(seed, 2, 1);
    const PirWorld w = makePirWorld(seed);
    TenantRegistry reg;
    reg.registerTenant(TenantSpec{
        .id = 11, .name = "boots", .weight = 2.0,
        .keyBytes = size_t{1} << 20});
    reg.registerTenant(TenantSpec{
        .id = 12, .name = "lookup", .weight = 1.0,
        .keyBytes = size_t{64} << 10});

    ClusterConfig cfg;
    cfg.pod.workers = 2;
    cfg.pirServer = w.server.get();
    cfg.pirPod.workers = 2;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);

    const auto inputs = makeInputs(*pods.ctx, *pods.ev, 4);
    const std::vector<size_t> indices = {2, 13, 40, 63};
    const auto queries = makeQueries(w, seed, indices);

    // Interleave the two classes.
    std::vector<std::shared_ptr<BootstrapTicket>> boots;
    std::vector<std::shared_ptr<PirTicket>> lookups;
    for (size_t i = 0; i < 4; ++i) {
        boots.push_back(cluster.submit(11, inputs[i]));
        lookups.push_back(cluster.submitPir(12, queries[i]));
    }
    for (auto& t : boots) {
        EXPECT_NO_THROW(t->wait());
    }
    for (size_t i = 0; i < lookups.size(); ++i) {
        const rlwe::Ciphertext ans = lookups[i]->wait();
        EXPECT_EQ(answerBytes(ans),
                  answerBytes(w.server->answer(*queries[i])))
            << "lookup " << i;
        EXPECT_EQ(w.client->decode(ans), w.db[indices[i]]);
    }
    cluster.drain();

    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.submitted, 8u);
    EXPECT_EQ(m.pirSubmitted, 4u);
    EXPECT_EQ(m.pirCompleted, 4u);
    EXPECT_EQ(m.pirFailed, 0u);
    EXPECT_EQ(m.requestsCompleted, 8u);
    EXPECT_EQ(m.liveFlights, 0u);
    ASSERT_EQ(m.pirPods.size(), 2u);

    // Both classes hit the same per-pod key caches: the lookup
    // tenant's query-key footprint is resident where it was served.
    uint64_t pirPodCompleted = 0;
    for (const ServiceMetrics& pm : m.pirPods) {
        pirPodCompleted += pm.completed;
    }
    EXPECT_EQ(pirPodCompleted, 4u);
    size_t cachedTenants = 0;
    for (size_t i = 0; i < cluster.podCount(); ++i) {
        cachedTenants += cluster.keyCache(i).stats().residentTenants;
    }
    EXPECT_GE(cachedTenants, 2u);

    // Exact admission conservation per tenant.
    for (const TenantStats& t : m.tenants) {
        EXPECT_EQ(t.inFlight, 0u) << t.name;
        EXPECT_EQ(t.submitted, t.completed + t.failed) << t.name;
    }
}

TEST(PirCluster, ChaosCrashFailsOverByteIdentically)
{
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        auto pods = makePods(seed, 2, 1);
        const PirWorld w = makePirWorld(seed);
        TenantRegistry reg;
        reg.registerTenant(TenantSpec{.id = 5, .name = "lookup"});

        const size_t kQueries = 12;
        ClusterConfig cfg;
        cfg.pod.workers = 1;
        cfg.pirServer = w.server.get();
        cfg.pirPod.workers = 2;
        cfg.failover.maxAttempts = 4;
        // Crash one pod mid-run, recover it later; both tenant
        // classes of the pod go down together.
        ChaosSpec chaos;
        const size_t victim = 0;
        chaos.events.push_back(
            {ChaosEvent::Kind::Crash, victim, kQueries / 3, 0});
        chaos.events.push_back(
            {ChaosEvent::Kind::Recover, victim, kQueries - 2, 0});
        cfg.chaos = chaos;
        ServiceCluster cluster(distPtrs(pods), reg, cfg);

        std::vector<size_t> indices;
        for (size_t i = 0; i < kQueries; ++i) {
            indices.push_back((i * 11) % w.params.entries);
        }
        const auto queries = makeQueries(w, seed, indices);
        std::vector<std::shared_ptr<PirTicket>> tickets;
        for (const auto& q : queries) {
            tickets.push_back(cluster.submitPir(5, q));
        }
        for (size_t i = 0; i < tickets.size(); ++i) {
            // Failover budget covers the single crash: every flight
            // completes, and the answer is byte-identical wherever
            // it was recomputed.
            const rlwe::Ciphertext ans = tickets[i]->wait();
            EXPECT_EQ(answerBytes(ans),
                      answerBytes(w.server->answer(*queries[i])))
                << "seed " << seed << " query " << i;
            EXPECT_EQ(w.client->decode(ans), w.db[indices[i]]);
        }
        cluster.drain();

        const ClusterMetrics m = cluster.metrics();
        EXPECT_EQ(m.requestsCompleted, kQueries);
        EXPECT_EQ(m.pirCompleted, kQueries);
        EXPECT_EQ(m.liveFlights, 0u);
        EXPECT_EQ(m.chaos.crashes, 1u);
        EXPECT_EQ(m.chaos.recoveries, 1u);
        for (const TenantStats& t : m.tenants) {
            EXPECT_EQ(t.inFlight, 0u);
            EXPECT_EQ(t.submitted, t.completed + t.failed);
        }
    }
}

TEST(PirCluster, FailoverSweepBatchesAccumulatedRetries)
{
    const uint64_t seed = 42;
    auto pods = makePods(seed, 2, 1);
    const PirWorld w = makePirWorld(seed);
    TenantRegistry reg;

    ClusterConfig cfg;
    cfg.pod.workers = 1;
    cfg.pirServer = w.server.get();
    cfg.pirPod.workers = 2;
    cfg.failover.maxAttempts = 3;
    // The backoff gate makes the crashed pod's whole backlog DUE at
    // the same sweep: the failover thread must re-dispatch it as one
    // per-pod batch, not one retry per wakeup.
    cfg.failover.backoffMs = 40.0;
    ServiceCluster cluster(distPtrs(pods), reg, cfg);
    const uint64_t tenant = tenantPreferring(cluster, 0, 100);
    reg.registerTenant(TenantSpec{.id = tenant, .name = "lookup"});

    const std::vector<size_t> indices = {1, 9, 27, 50};
    const auto queries = makeQueries(w, seed, indices);

    // Wedge pod 0's PIR service so the submissions queue there, then
    // crash it: the crash flush fails all four at once and their
    // retries land in the queue together, gated by the backoff.
    cluster.pirPod(0).pause();
    std::vector<std::shared_ptr<PirTicket>> tickets;
    for (const auto& q : queries) {
        tickets.push_back(cluster.submitPir(tenant, q));
    }
    cluster.pirPod(0).crash();

    for (size_t i = 0; i < tickets.size(); ++i) {
        const rlwe::Ciphertext ans = tickets[i]->wait();
        EXPECT_EQ(answerBytes(ans),
                  answerBytes(w.server->answer(*queries[i])))
            << "query " << i;
        EXPECT_EQ(w.client->decode(ans), w.db[indices[i]]);
    }
    cluster.drain();

    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.pirCompleted, queries.size());
    EXPECT_EQ(m.failovers, queries.size());
    EXPECT_GE(m.failoverSweeps, 1u);
    // The whole backlog re-dispatched in one sweep.
    EXPECT_EQ(m.maxRetryBatch, queries.size());
    EXPECT_EQ(m.failoverSucceeded, queries.size());
    // Every completion landed on the surviving pod.
    ASSERT_EQ(m.pirPods.size(), 2u);
    EXPECT_EQ(m.pirPods[1].completed, queries.size());
}

} // namespace
} // namespace heap::serve
