/**
 * @file
 * Availability-under-faults identity tests: with a deterministic
 * chaos schedule wedging and crashing pods mid-run, every accepted
 * request still completes, its result is byte-identical to the
 * fault-free single-pod sequential bootstrap of the same input, and
 * the tenant-registry admission/completion accounting balances
 * exactly — for seeds {7, 21, 42}. This is the cluster analogue of
 * the link layer's fault_injection_test: faults may move work, never
 * change it.
 */

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "hw/bootstrap_model.h"
#include "serve/cluster.h"

namespace heap::serve {
namespace {

ckks::CkksParams
serveParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

struct PodSet {
    std::unique_ptr<ckks::Context> ctx;
    std::unique_ptr<ckks::Evaluator> ev;
    std::vector<std::unique_ptr<boot::DistributedBootstrapper>> dists;
};

PodSet
makePods(uint64_t seed, size_t count, size_t secondaries)
{
    PodSet s;
    s.ctx = std::make_unique<ckks::Context>(serveParams(), seed);
    s.ev = std::make_unique<ckks::Evaluator>(*s.ctx);
    s.dists.push_back(std::make_unique<boot::DistributedBootstrapper>(
        *s.ctx, secondaries, kBrGadget));
    for (size_t i = 1; i < count; ++i) {
        s.dists.push_back(
            std::make_unique<boot::DistributedBootstrapper>(
                *s.dists[0], secondaries));
    }
    return s;
}

std::vector<boot::DistributedBootstrapper*>
distPtrs(PodSet& pods)
{
    std::vector<boot::DistributedBootstrapper*> out;
    for (auto& d : pods.dists) {
        out.push_back(d.get());
    }
    return out;
}

std::vector<ckks::Ciphertext>
makeInputs(const ckks::Context& ctx, ckks::Evaluator& ev, size_t count)
{
    std::vector<ckks::Ciphertext> inputs;
    for (size_t r = 0; r < count; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            const double t = static_cast<double>(i);
            const double s = static_cast<double>(r);
            z.emplace_back(0.7 * std::cos(0.2 * t + 0.3 * s),
                           0.4 * std::sin(0.5 * t - 0.1 * s));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        inputs.push_back(std::move(ct));
    }
    return inputs;
}

/** Fault-free single-pod reference: sequential bootstrap(). */
std::vector<std::vector<uint8_t>>
sequentialBytes(uint64_t ctxSeed, size_t secondaries, size_t count)
{
    ckks::Context ctx(serveParams(), ctxSeed);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, secondaries, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, count);
    std::vector<std::vector<uint8_t>> out;
    for (const auto& in : inputs) {
        out.push_back(ckks::saveCiphertext(dist.bootstrap(in)));
    }
    return out;
}

// A hand-built schedule that GUARANTEES failover work: the tenant's
// preferred pod is wedged from the first submission (so it provably
// holds the early requests), crashes while holding them (failing
// them retryably), and recovers later. Every request must still
// complete, byte-identically.
TEST(FailoverIdentity, CrashedPodFailoverIsByteIdentical)
{
    constexpr size_t kPods = 3;
    constexpr size_t kSecondaries = 1;
    constexpr size_t kRequests = 8;
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        SCOPED_TRACE(testing::Message() << "seed " << seed);
        auto pods = makePods(seed, kPods, kSecondaries);
        TenantRegistry reg;
        reg.registerTenant({.id = 1, .name = "t1"});

        ClusterConfig cfg;
        cfg.failover.maxAttempts = 5;
        // The victim is the tenant's consistent routing target, so
        // the early submissions provably land on it.
        const uint64_t victim = [&] {
            ServiceCluster probe(distPtrs(pods), reg, {});
            return static_cast<uint64_t>(probe.preferredPod(1));
        }();
        ChaosSpec spec;
        spec.events.push_back(
            {ChaosEvent::Kind::Wedge, victim, 1, 0});
        spec.events.push_back(
            {ChaosEvent::Kind::Crash, victim, 4, 0});
        spec.events.push_back(
            {ChaosEvent::Kind::Unwedge, victim, 5, 0});
        spec.events.push_back(
            {ChaosEvent::Kind::Recover, victim, 7, 0});
        cfg.chaos = spec;
        ServiceCluster cluster(distPtrs(pods), reg, cfg);

        const auto inputs =
            makeInputs(*pods.ctx, *pods.ev, kRequests);
        std::vector<std::shared_ptr<BootstrapTicket>> tickets;
        for (const auto& in : inputs) {
            tickets.push_back(cluster.submit(1, in));
        }
        cluster.drain();

        const auto ref =
            sequentialBytes(seed, kSecondaries, kRequests);
        uint32_t maxAttempts = 0;
        for (size_t r = 0; r < kRequests; ++r) {
            SCOPED_TRACE(testing::Message() << "request " << r);
            ckks::Ciphertext out;
            ASSERT_NO_THROW(out = tickets[r]->wait());
            EXPECT_EQ(ckks::saveCiphertext(out), ref[r])
                << "failover result diverged from the fault-free "
                   "single-pod bootstrap";
            maxAttempts =
                std::max(maxAttempts, tickets[r]->report().attempts);
        }

        const ClusterMetrics m = cluster.metrics();
        EXPECT_EQ(m.requestsCompleted, kRequests);
        EXPECT_EQ(m.requestsFailed, 0u);
        EXPECT_EQ(m.liveFlights, 0u);
        // The wedged victim held submissions 1-3; crash() fails them
        // synchronously at submission 4; each completes elsewhere on
        // its second attempt. Exact counts — the schedule is
        // deterministic.
        EXPECT_EQ(m.failovers, 3u);
        EXPECT_EQ(m.failoverSucceeded, 3u);
        EXPECT_EQ(m.failoverExhausted, 0u);
        EXPECT_EQ(m.failed, 3u); // pod-level attempt failures
        EXPECT_EQ(maxAttempts, 2u);
        EXPECT_EQ(m.chaos.wedges, 1u);
        EXPECT_EQ(m.chaos.unwedges, 1u);
        EXPECT_EQ(m.chaos.crashes, 1u);
        EXPECT_EQ(m.chaos.recoveries, 1u);
        // Admission/completion conservation: one admission per
        // logical request, settled exactly once, zero leaks.
        const TenantStats ts = reg.stats(1);
        EXPECT_EQ(ts.submitted, kRequests);
        EXPECT_EQ(ts.completed, kRequests);
        EXPECT_EQ(ts.failed, 0u);
        EXPECT_EQ(ts.inFlight, 0u);
    }
}

// The seeded scripted() schedule (what bench/chaos_recovery sweeps):
// crash + wedge windows and failure bursts placed by the seed. The
// counters are schedule-dependent, but identity, conservation, and
// full completion must hold for every seed (maxAttempts is sized
// above the schedule's worst case).
TEST(FailoverIdentity, ScriptedChaosPreservesIdentityAndAccounting)
{
    constexpr size_t kPods = 3;
    constexpr size_t kSecondaries = 1;
    constexpr size_t kRequests = 8;
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        SCOPED_TRACE(testing::Message() << "seed " << seed);
        auto pods = makePods(seed, kPods, kSecondaries);
        TenantRegistry reg;
        reg.registerTenant({.id = 1, .name = "t1"});
        ClusterConfig cfg;
        cfg.failover.maxAttempts = 6;
        cfg.chaos = ChaosSpec::scripted(seed, kPods, kRequests);
        ServiceCluster cluster(distPtrs(pods), reg, cfg);

        const auto inputs =
            makeInputs(*pods.ctx, *pods.ev, kRequests);
        std::vector<std::shared_ptr<BootstrapTicket>> tickets;
        for (const auto& in : inputs) {
            tickets.push_back(cluster.submit(1, in));
        }
        cluster.drain();

        const auto ref =
            sequentialBytes(seed, kSecondaries, kRequests);
        for (size_t r = 0; r < kRequests; ++r) {
            SCOPED_TRACE(testing::Message() << "request " << r);
            ckks::Ciphertext out;
            ASSERT_NO_THROW(out = tickets[r]->wait());
            EXPECT_EQ(ckks::saveCiphertext(out), ref[r]);
        }
        const ClusterMetrics m = cluster.metrics();
        EXPECT_EQ(m.requestsCompleted, kRequests);
        EXPECT_EQ(m.requestsFailed, 0u);
        EXPECT_EQ(m.chaos.crashes, 1u);
        EXPECT_EQ(m.chaos.recoveries, 1u);
        const TenantStats ts = reg.stats(1);
        EXPECT_EQ(ts.submitted, kRequests);
        EXPECT_EQ(ts.completed, kRequests);
        EXPECT_EQ(ts.inFlight, 0u);
    }
}

} // namespace
} // namespace heap::serve
