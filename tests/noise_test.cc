/**
 * @file
 * Validates the analytic noise estimator against measured decryption
 * errors: every prediction must land within a small factor of the
 * empirical standard deviation across the primitive operations.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/noise.h"

namespace heap::ckks {
namespace {

CkksParams
noiseParams()
{
    CkksParams p;
    p.n = 256;
    p.limbBits = 30;
    p.levels = 3;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    return p;
}

struct NoiseFixture : ::testing::Test {
    Context ctx{noiseParams(), 777};
    Evaluator ev{ctx};
    NoiseEstimator est{ctx};
    Rng rng{31};

    std::vector<Complex>
    randomSlots(size_t count, double bound = 1.0)
    {
        std::vector<Complex> z(count);
        for (auto& v : z) {
            v = Complex((2 * rng.uniformReal() - 1) * bound,
                        (2 * rng.uniformReal() - 1) * bound);
        }
        return z;
    }

    static void
    expectWithinFactor(double measured, double predicted, double factor)
    {
        EXPECT_GT(measured, predicted / factor)
            << "measured " << measured << " vs predicted " << predicted;
        EXPECT_LT(measured, predicted * factor)
            << "measured " << measured << " vs predicted " << predicted;
    }
};

TEST_F(NoiseFixture, FreshPublicKeyNoise)
{
    const auto z = randomSlots(128);
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    const double measured = est.measure(ct, z);
    expectWithinFactor(measured, est.freshPublic(), 4.0);
}

TEST_F(NoiseFixture, AdditionNoise)
{
    const auto z1 = randomSlots(128);
    const auto z2 = randomSlots(128);
    const auto sum = ev.add(ctx.encrypt(std::span<const Complex>(z1)),
                            ctx.encrypt(std::span<const Complex>(z2)));
    std::vector<Complex> want(128);
    for (size_t i = 0; i < 128; ++i) {
        want[i] = z1[i] + z2[i];
    }
    const double measured = est.measure(sum, want);
    const double e = est.freshPublic();
    expectWithinFactor(measured, est.afterAdd(e, e), 4.0);
}

TEST_F(NoiseFixture, RotationNoiseMatchesActiveKeySwitch)
{
    ctx.makeRotationKeys(std::array<int64_t, 1>{1});
    const auto z = randomSlots(128);
    const auto rot = ev.rotate(ctx.encrypt(std::span<const Complex>(z)),
                               1);
    std::vector<Complex> want(128);
    for (size_t i = 0; i < 128; ++i) {
        want[i] = z[(i + 1) % 128];
    }
    const double measured = est.measure(rot, want);
    expectWithinFactor(measured, est.afterRotate(est.freshPublic()),
                       4.0);
    // This context has a special prime, so rotations take the quiet
    // hybrid path — orders of magnitude below the digit gadget.
    EXPECT_LT(100.0 * est.hybridNoise(ctx.maxLevel()),
              est.gadgetNoise(ctx.maxLevel(), ctx.params().gadget));
}

TEST_F(NoiseFixture, MultiplicationNoise)
{
    const auto z1 = randomSlots(128, 1.0);
    const auto z2 = randomSlots(128, 1.0);
    const auto prod =
        ev.multiply(ctx.encrypt(std::span<const Complex>(z1)),
                    ctx.encrypt(std::span<const Complex>(z2)));
    std::vector<Complex> want(128);
    for (size_t i = 0; i < 128; ++i) {
        want[i] = z1[i] * z2[i];
    }
    const double measured = est.measure(prod, want);
    // Slot RMS of uniform complex in the unit box ~ sqrt(2/3).
    const double rms =
        est.messageRms(std::sqrt(2.0 / 3.0), ctx.params().scale);
    const double e = est.freshPublic();
    expectWithinFactor(measured, est.afterMultiply(e, e, rms, rms),
                       5.0);
}

TEST_F(NoiseFixture, RescaleRoundingFloor)
{
    // Rescaling a fresh ciphertext: the divided noise vanishes below
    // the rounding floor ~sqrt(rho N / 12).
    const auto z = randomSlots(128, 0.5);
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    auto scaled = ev.multiplyScalar(ct, 1.0);
    ev.rescaleInPlace(scaled);
    const double predicted =
        est.afterRescale(est.freshPublic(), ct.level() - 1);
    // The scalar multiply adds its own encoding rounding; stay
    // within an order of magnitude.
    const double measured = est.measure(scaled, z);
    EXPECT_LT(measured, 50.0 * predicted);
    EXPECT_GT(measured, predicted / 50.0);
}

TEST_F(NoiseFixture, BalancedGadgetPredictionRatio)
{
    rlwe::GadgetParams bal = ctx.params().gadget;
    bal.balanced = true;
    rlwe::GadgetParams uns = bal;
    uns.balanced = false;
    const double ratio = est.gadgetNoise(3, uns) / est.gadgetNoise(3, bal);
    EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST_F(NoiseFixture, GadgetNoiseScalesWithBase)
{
    rlwe::GadgetParams small{.baseBits = 5, .digitsPerLimb = 6};
    rlwe::GadgetParams large{.baseBits = 10, .digitsPerLimb = 3};
    const double ratio =
        est.gadgetNoise(3, large) / est.gadgetNoise(3, small);
    // 2^5x larger base, half the digits: ~ 32/sqrt(2).
    EXPECT_NEAR(ratio, 32.0 / std::sqrt(2.0), 2.0);
}

// The tracked NoiseBudget composes the same analytic formulas as the
// estimator; these chain tests check the *composed* prediction still
// brackets the measured error after several dependent primitives.
TEST_F(NoiseFixture, TrackedBudgetMatchesMeasurementAcrossChain)
{
    ctx.makeRotationKeys(std::array<int64_t, 1>{1});
    const auto z1 = randomSlots(128, 0.5);
    const auto z2 = randomSlots(128, 0.5);
    auto a = ctx.encrypt(std::span<const Complex>(z1));
    auto b = ctx.encrypt(std::span<const Complex>(z2));

    auto t = ev.multiplyRescale(a, b);
    auto r = ev.rotate(t, 1);
    auto s = ev.add(t, r);
    ASSERT_TRUE(s.budget.tracked);

    std::vector<Complex> want(128);
    for (size_t i = 0; i < 128; ++i) {
        want[i] = z1[i] * z2[i] + z1[(i + 1) % 128] * z2[(i + 1) % 128];
    }
    const double measured = est.measure(s, want);
    // Chains accumulate encoding-rounding terms the tracker folds
    // into a single floor; an order of magnitude is the contract.
    EXPECT_LT(measured, 50.0 * s.budget.sigma);
    EXPECT_GT(measured, s.budget.sigma / 50.0);

    // The tracked message RMS should follow the encoded magnitude.
    double slotRms = 0;
    for (const auto& v : want) {
        slotRms += std::norm(v);
    }
    slotRms = std::sqrt(slotRms / 128.0);
    const double rmsWant = est.messageRms(slotRms, s.scale);
    EXPECT_LT(s.budget.messageRms, 8.0 * rmsWant);
    EXPECT_GT(s.budget.messageRms, rmsWant / 8.0);
}

TEST_F(NoiseFixture, TrackedBudgetMatchesMeasurementOnSquaringLadder)
{
    const auto z = randomSlots(128, 0.5);
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    std::vector<Complex> want(z.begin(), z.end());
    // Two rescaled squarings: depth-2 chain ending at level 1.
    for (int step = 0; step < 2; ++step) {
        ct = ev.multiplyRescale(ct, ct);
        for (auto& v : want) {
            v *= v;
        }
    }
    EXPECT_EQ(ct.level(), 1u);
    const double measured = est.measure(ct, want);
    EXPECT_LT(measured, 50.0 * ct.budget.sigma);
    EXPECT_GT(measured, ct.budget.sigma / 50.0);
    // Budget accounting: positive headroom left, and the precision
    // estimate brackets the actual slot accuracy.
    EXPECT_GT(ctx.noiseBudgetBits(ct), 0.0);
    EXPECT_GT(ctx.noisePrecisionBits(ct), 5.0);
}

} // namespace
} // namespace heap::ckks
