/**
 * @file
 * RNS layer tests: basis construction, domain conversions, ring
 * arithmetic across limbs, rescaling (division by the dropped prime),
 * and centered CRT recomposition.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/primes.h"
#include "math/rns.h"
#include "math/sampling.h"

namespace heap::math {
namespace {

constexpr size_t kN = 64;

std::shared_ptr<const RnsBasis>
makeBasis(size_t limbs = 3, int bits = 30)
{
    return std::make_shared<RnsBasis>(
        kN, generateNttPrimes(bits, kN, limbs));
}

TEST(RnsBasis, RejectsBadModuli)
{
    EXPECT_THROW(RnsBasis(kN, {15u}), UserError);           // composite
    EXPECT_THROW(RnsBasis(kN, {1000003u}), UserError);      // not 1 mod 2n
    const auto p = generateNttPrimes(30, kN, 1)[0];
    EXPECT_THROW(RnsBasis(kN, {p, p}), UserError);          // duplicate
    EXPECT_THROW(RnsBasis(kN, {}), UserError);              // empty
}

TEST(RnsBasis, InvModulusIsInverse)
{
    const auto basis = makeBasis(4);
    for (size_t i = 0; i < 4; ++i) {
        for (size_t j = 0; j < 4; ++j) {
            if (i == j) {
                continue;
            }
            const uint64_t qi = basis->modulus(i);
            const uint64_t prod = mulModNaive(
                basis->modulus(j) % qi, basis->invModulus(j, i), qi);
            EXPECT_EQ(prod, 1u);
        }
    }
}

TEST(RnsBasis, LogQAccumulates)
{
    const auto basis = makeBasis(3, 30);
    EXPECT_NEAR(basis->logQ(3), 90.0, 1.0);
    EXPECT_NEAR(basis->logQ(1), 30.0, 0.5);
}

TEST(RnsPoly, EvalCoeffRoundTrip)
{
    const auto basis = makeBasis();
    Rng rng(1);
    auto p = sampleUniformRns(basis, 3, Domain::Coeff, rng);
    std::vector<std::vector<uint64_t>> orig;
    for (size_t i = 0; i < 3; ++i) {
        orig.emplace_back(p.limb(i).begin(), p.limb(i).end());
    }
    p.toEval();
    EXPECT_EQ(p.domain(), Domain::Eval);
    p.toCoeff();
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(std::equal(p.limb(i).begin(), p.limb(i).end(),
                               orig[i].begin()));
    }
}

TEST(RnsPoly, AddSubRoundTrip)
{
    const auto basis = makeBasis();
    Rng rng(2);
    auto a = sampleUniformRns(basis, 3, Domain::Coeff, rng);
    const auto b = sampleUniformRns(basis, 3, Domain::Coeff, rng);
    auto saved = a;
    a.addInPlace(b);
    a.subInPlace(b);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(std::equal(a.limb(i).begin(), a.limb(i).end(),
                               saved.limb(i).begin()));
    }
}

TEST(RnsPoly, MulMatchesPerLimbConvolution)
{
    const auto basis = makeBasis(2);
    Rng rng(3);
    auto a = sampleUniformRns(basis, 2, Domain::Coeff, rng);
    auto b = sampleUniformRns(basis, 2, Domain::Coeff, rng);
    std::vector<std::vector<uint64_t>> expected;
    for (size_t i = 0; i < 2; ++i) {
        expected.push_back(negacyclicConvolveSchoolbook(
            a.limb(i), b.limb(i), basis->modulus(i)));
    }
    a.toEval();
    b.toEval();
    a.mulPointwiseInPlace(b);
    a.toCoeff();
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(std::equal(a.limb(i).begin(), a.limb(i).end(),
                               expected[i].begin()))
            << "limb " << i;
    }
}

TEST(RnsPoly, DomainMismatchThrows)
{
    const auto basis = makeBasis(2);
    Rng rng(4);
    auto a = sampleUniformRns(basis, 2, Domain::Coeff, rng);
    auto b = sampleUniformRns(basis, 2, Domain::Coeff, rng);
    EXPECT_THROW(a.mulPointwiseInPlace(b), UserError);
    b.toEval();
    EXPECT_THROW(a.addInPlace(b), UserError);
}

TEST(RnsPoly, RescaleDividesByDroppedPrime)
{
    // Embed a value divisible by q_last and check the quotient appears.
    const auto basis = makeBasis(3);
    const int64_t qLast = static_cast<int64_t>(basis->modulus(2));
    std::vector<int64_t> coeffs(kN, 0);
    coeffs[0] = 7 * qLast;
    coeffs[1] = -3 * qLast;
    coeffs[5] = qLast;
    auto p = rnsFromSigned(basis, 3, coeffs);
    p.rescaleLastLimb();
    ASSERT_EQ(p.limbCount(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        const uint64_t q = basis->modulus(i);
        EXPECT_EQ(p.limb(i)[0], fromCentered(7, q));
        EXPECT_EQ(p.limb(i)[1], fromCentered(-3, q));
        EXPECT_EQ(p.limb(i)[5], fromCentered(1, q));
        EXPECT_EQ(p.limb(i)[2], 0u);
    }
}

TEST(RnsPoly, RescaleRoundsNonMultiples)
{
    // Rescaling value v yields round-ish(v / q_last): error at most 1
    // from the centered-remainder correction.
    const auto basis = makeBasis(2);
    const int64_t qLast = static_cast<int64_t>(basis->modulus(1));
    std::vector<int64_t> coeffs(kN, 0);
    coeffs[0] = 1000 * qLast + 17;
    coeffs[1] = 1000 * qLast + qLast / 2 + 5;
    auto p = rnsFromSigned(basis, 2, coeffs);
    p.rescaleLastLimb();
    const uint64_t q0 = basis->modulus(0);
    EXPECT_EQ(toCentered(p.limb(0)[0], q0), 1000);
    EXPECT_EQ(toCentered(p.limb(0)[1], q0), 1001);
}

TEST(RnsPoly, RescaleInEvalDomainMatchesCoeffDomain)
{
    const auto basis = makeBasis(3);
    Rng rng(5);
    auto a = sampleUniformRns(basis, 3, Domain::Coeff, rng);
    auto b = a;
    a.rescaleLastLimb();
    b.toEval();
    b.rescaleLastLimb();
    b.toCoeff();
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(std::equal(a.limb(i).begin(), a.limb(i).end(),
                               b.limb(i).begin()))
            << "limb " << i;
    }
}

TEST(RnsPoly, DropLimbsKeepsResidues)
{
    const auto basis = makeBasis(3);
    Rng rng(6);
    auto a = sampleUniformRns(basis, 3, Domain::Coeff, rng);
    const std::vector<uint64_t> limb0(a.limb(0).begin(), a.limb(0).end());
    a.dropLimbs(2);
    EXPECT_EQ(a.limbCount(), 1u);
    EXPECT_TRUE(std::equal(a.limb(0).begin(), a.limb(0).end(),
                           limb0.begin()));
    EXPECT_THROW(a.dropLimbs(1), UserError);
}

TEST(Crt, CenteredInt64RoundTrip)
{
    const auto basis = makeBasis(3);
    const auto& moduli = basis->moduli();
    for (int64_t v : {0LL, 1LL, -1LL, 123456789LL, -987654321LL,
                      (1LL << 55), -(1LL << 55)}) {
        std::vector<uint64_t> residues;
        for (const uint64_t q : moduli) {
            residues.push_back(fromCentered(v, q));
        }
        EXPECT_EQ(crtToCenteredInt64(residues, moduli), v) << "v=" << v;
        EXPECT_NEAR(static_cast<double>(
                        crtToCenteredDouble(residues, moduli)),
                    static_cast<double>(v), std::abs(v) * 1e-15 + 1e-9);
    }
}

TEST(Crt, RejectsOverflow)
{
    const auto basis = makeBasis(3);
    const auto& moduli = basis->moduli();
    // Q/2 - 1 is far above 2^62 for three 30-bit primes... it is 2^89;
    // a large non-centered-small value must throw.
    std::vector<uint64_t> residues = {1, 2, 3};
    EXPECT_THROW(crtToCenteredInt64(residues, moduli), UserError);
}

TEST(RnsPoly, RestrictedToCopiesPrefix)
{
    const auto basis = makeBasis(3);
    Rng rng(7);
    const auto a = sampleUniformRns(basis, 3, Domain::Coeff, rng);
    const auto r = a.restrictedTo(2);
    EXPECT_EQ(r.limbCount(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(std::equal(r.limb(i).begin(), r.limb(i).end(),
                               a.limb(i).begin()));
    }
}

} // namespace
} // namespace heap::math
