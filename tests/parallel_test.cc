/**
 * @file
 * Tests for the host parallel-execution layer (common/parallel.h):
 * ThreadPool lifecycle, parallelFor index coverage and chunking,
 * exception propagation, nested-call safety, the SerialSection
 * override, and the HEAP_THREADS environment knob.
 */

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/parallel.h"

namespace heap {
namespace {

TEST(ThreadPool, LifecycleRunsEveryPostedTask)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        for (int i = 0; i < 100; ++i) {
            pool.post([&ran] { ran.fetch_add(1); });
        }
        // The destructor drains the queue before joining, so by the
        // end of this scope every task has executed.
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, RejectsBadSizes)
{
    EXPECT_THROW(ThreadPool(0), UserError);
    EXPECT_THROW(ThreadPool(257), UserError);
}

TEST(ThreadPool, GlobalIsASingleton)
{
    ThreadPool& a = ThreadPool::global();
    ThreadPool& b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, OnWorkerThreadIsVisibleOnlyToWorkers)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    ThreadPool pool(1);
    std::mutex m;
    std::condition_variable cv;
    std::optional<bool> seen;
    pool.post([&] {
        const bool onWorker = ThreadPool::onWorkerThread();
        std::lock_guard<std::mutex> lock(m);
        seen = onWorker;
        cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return seen.has_value(); });
    EXPECT_TRUE(*seen);
    EXPECT_FALSE(ThreadPool::onWorkerThread());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr size_t kCount = 1000;
    for (const size_t grain : {1ul, 7ul, 64ul, kCount, 2 * kCount}) {
        auto hits = std::make_unique<std::atomic<int>[]>(kCount);
        parallelFor(0, kCount, grain,
                    [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < kCount; ++i) {
            ASSERT_EQ(hits[i].load(), 1)
                << "index " << i << " grain " << grain;
        }
    }
}

TEST(ParallelFor, RespectsBeginOffset)
{
    auto hits = std::make_unique<std::atomic<int>[]>(50);
    parallelFor(10, 35, 4, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < 50; ++i) {
        ASSERT_EQ(hits[i].load(), (i >= 10 && i < 35) ? 1 : 0)
            << "index " << i;
    }
}

TEST(ParallelFor, EmptyRangeCallsNothing)
{
    std::atomic<int> calls{0};
    parallelFor(5, 5, 1, [&](size_t) { calls.fetch_add(1); });
    parallelFor(9, 3, 1, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, ZeroGrainIsRejected)
{
    EXPECT_THROW(parallelFor(0, 10, 0, [](size_t) {}), UserError);
}

TEST(ParallelFor, PropagatesTheBodyException)
{
    std::atomic<int> calls{0};
    EXPECT_THROW(parallelFor(0, 100, 3,
                             [&](size_t i) {
                                 calls.fetch_add(1);
                                 if (i == 37) {
                                     throw UserError("index 37 refuses");
                                 }
                             }),
                 UserError);
    // No index ran twice: at most one call per index even under abort.
    EXPECT_LE(calls.load(), 100);
    EXPECT_GE(calls.load(), 1);
}

TEST(ParallelFor, NestedCallsAreSafe)
{
    constexpr size_t kOuter = 8;
    constexpr size_t kInner = 100;
    auto hits = std::make_unique<std::atomic<int>[]>(kOuter * kInner);
    parallelFor(0, kOuter, 1, [&](size_t o) {
        // Inner calls from pool workers must run inline rather than
        // deadlock waiting for occupied pool threads.
        parallelFor(0, kInner, 10, [&](size_t i) {
            hits[o * kInner + i].fetch_add(1);
        });
    });
    for (size_t i = 0; i < kOuter * kInner; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "cell " << i;
    }
}

TEST(ParallelFor, SerialSectionForcesInlineExecution)
{
    const std::thread::id self = std::this_thread::get_id();
    std::vector<std::thread::id> ids(64);
    SerialSection serial;
    EXPECT_TRUE(serialForced());
    parallelFor(0, ids.size(), 1, [&](size_t i) {
        ids[i] = std::this_thread::get_id();
    });
    for (size_t i = 0; i < ids.size(); ++i) {
        ASSERT_EQ(ids[i], self) << "index " << i;
    }
}

TEST(ParallelFor, SerialSectionLiftsAtScopeExit)
{
    {
        SerialSection serial;
        EXPECT_TRUE(serialForced());
        {
            SerialSection nested;
            EXPECT_TRUE(serialForced());
        }
        EXPECT_TRUE(serialForced());
    }
    EXPECT_FALSE(serialForced());
}

/** Restores the prior HEAP_THREADS value at scope exit. */
class EnvGuard {
  public:
    EnvGuard()
    {
        const char* prev = std::getenv("HEAP_THREADS");
        if (prev != nullptr) {
            saved_ = prev;
        }
    }

    ~EnvGuard()
    {
        if (saved_.has_value()) {
            setenv("HEAP_THREADS", saved_->c_str(), 1);
        } else {
            unsetenv("HEAP_THREADS");
        }
    }

  private:
    std::optional<std::string> saved_;
};

TEST(DefaultThreadCount, HonorsHeapThreadsOverride)
{
    EnvGuard guard;
    setenv("HEAP_THREADS", "1", 1);
    EXPECT_EQ(defaultThreadCount(), 1u);
    setenv("HEAP_THREADS", "17", 1);
    EXPECT_EQ(defaultThreadCount(), 17u);
    // A pool sized from the override really is that small.
    setenv("HEAP_THREADS", "1", 1);
    ThreadPool pool(defaultThreadCount());
    EXPECT_EQ(pool.size(), 1u);
}

TEST(DefaultThreadCount, FallsBackOnInvalidValues)
{
    EnvGuard guard;
    const unsigned hw = std::thread::hardware_concurrency();
    const size_t fallback = hw == 0 ? 1 : hw;
    for (const char* bad : {"", "zonk", "0", "-3", "4cores", "999"}) {
        setenv("HEAP_THREADS", bad, 1);
        EXPECT_EQ(defaultThreadCount(), fallback) << "value '" << bad
                                                  << "'";
    }
    unsetenv("HEAP_THREADS");
    EXPECT_EQ(defaultThreadCount(), fallback);
}

} // namespace
} // namespace heap
