/**
 * @file
 * Negacyclic NTT correctness: round trips, linearity, and agreement of
 * the NTT-based product with the schoolbook negacyclic convolution.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace heap::math {
namespace {

std::vector<uint64_t>
randomPoly(size_t n, uint64_t q, Rng& rng)
{
    std::vector<uint64_t> p(n);
    for (auto& v : p) {
        v = rng.uniform(q);
    }
    return p;
}

class NttParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(NttParamTest, ForwardInverseRoundTrip)
{
    const auto [n, bits] = GetParam();
    const uint64_t q = generateNttPrimes(bits, n, 1)[0];
    const NttTables ntt(n, q);
    Rng rng(n * 1000 + static_cast<uint64_t>(bits));
    auto a = randomPoly(n, q, rng);
    const auto orig = a;
    ntt.forward(a);
    ntt.inverse(a);
    EXPECT_EQ(a, orig);
}

TEST_P(NttParamTest, ProductMatchesSchoolbook)
{
    const auto [n, bits] = GetParam();
    const uint64_t q = generateNttPrimes(bits, n, 1)[0];
    const NttTables ntt(n, q);
    Rng rng(n * 77 + static_cast<uint64_t>(bits));
    auto a = randomPoly(n, q, rng);
    auto b = randomPoly(n, q, rng);
    const auto expected = negacyclicConvolveSchoolbook(a, b, q);

    ntt.forward(a);
    ntt.forward(b);
    std::vector<uint64_t> c(n);
    const BarrettReducer red(q);
    for (size_t i = 0; i < n; ++i) {
        c[i] = red.mulMod(a[i], b[i]);
    }
    ntt.inverse(c);
    EXPECT_EQ(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NttParamTest,
    ::testing::Combine(::testing::Values<size_t>(4, 16, 64, 256, 1024),
                       ::testing::Values(28, 36, 59)));

TEST_P(NttParamTest, OnTheFlyMatchesTableDriven)
{
    const auto [n, bits] = GetParam();
    const uint64_t q = math::generateNttPrimes(bits, n, 1)[0];
    const NttTables ntt(n, q);
    Rng rng(n * 5 + static_cast<uint64_t>(bits));
    auto a = randomPoly(n, q, rng);
    auto b = a;
    ntt.forward(a);
    ntt.forwardOnTheFly(b);
    // Section IV-D: the control-signal switch between stored and
    // generated twiddles must be bit-identical.
    EXPECT_EQ(a, b);
}

TEST(Ntt, NegacyclicWrapSign)
{
    // (X^{n-1}) * X = X^n = -1: the product of the top monomial with X
    // must be the constant -1.
    const size_t n = 16;
    const uint64_t q = generateNttPrimes(28, n, 1)[0];
    const NttTables ntt(n, q);
    std::vector<uint64_t> a(n, 0), b(n, 0);
    a[n - 1] = 1;
    b[1] = 1;
    ntt.forward(a);
    ntt.forward(b);
    std::vector<uint64_t> c(n);
    for (size_t i = 0; i < n; ++i) {
        c[i] = mulModNaive(a[i], b[i], q);
    }
    ntt.inverse(c);
    EXPECT_EQ(c[0], q - 1);
    for (size_t i = 1; i < n; ++i) {
        EXPECT_EQ(c[i], 0u);
    }
}

TEST(Ntt, Linearity)
{
    const size_t n = 128;
    const uint64_t q = generateNttPrimes(36, n, 1)[0];
    const NttTables ntt(n, q);
    Rng rng(5);
    auto a = randomPoly(n, q, rng);
    auto b = randomPoly(n, q, rng);
    std::vector<uint64_t> sum(n);
    for (size_t i = 0; i < n; ++i) {
        sum[i] = addMod(a[i], b[i], q);
    }
    ntt.forward(a);
    ntt.forward(b);
    ntt.forward(sum);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sum[i], addMod(a[i], b[i], q));
    }
}

TEST(Ntt, ConstantPolynomialMapsToConstantSpectrum)
{
    const size_t n = 64;
    const uint64_t q = generateNttPrimes(30, n, 1)[0];
    const NttTables ntt(n, q);
    std::vector<uint64_t> a(n, 0);
    a[0] = 42;
    ntt.forward(a);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a[i], 42u);
    }
}

} // namespace
} // namespace heap::math
