/**
 * @file
 * Byte-identity of every SIMD kernel variant against the strict
 * scalar oracle, fuzzed across seeds, ring dimensions and limb
 * counts. The library's contract (math/kernels.h) is that the
 * dispatched lazy-reduction kernels are indistinguishable from the
 * strict scalar path at every kernel boundary — these tests enforce
 * it with memcmp, not modular equality.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "math/kernels.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "math/rns.h"

namespace {

using namespace heap;
using namespace heap::math;

const SimdLevel kAllLevels[] = {SimdLevel::Scalar, SimdLevel::Avx2,
                                SimdLevel::Avx512, SimdLevel::Neon};

std::vector<uint64_t>
randomPoly(size_t n, uint64_t q, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> v(n);
    for (auto& x : v) {
        x = rng.uniform(q);
    }
    return v;
}

// The strict scalar reference path (NttTables::forwardScalar /
// inverseScalar) vs every level's lazy kernel, across sizes, modulus
// widths (both sides of the 2^50 IFMA boundary) and seeds.
TEST(SimdEquivalence, NttMatchesStrictScalarOracle)
{
    for (const size_t n : {size_t{1024}, size_t{4096}, size_t{32768}}) {
        for (const int bits : {30, 36, 49, 60}) {
            const uint64_t q = generateNttPrimes(bits, n, 1)[0];
            const NttTables tab(n, q);
            for (const uint64_t seed : {11u, 22u, 33u}) {
                const auto input = randomPoly(n, q, seed);

                auto oracle = input;
                tab.forwardScalar(oracle);
                for (const SimdLevel lvl : kAllLevels) {
                    auto a = input;
                    kernelsForLevel(lvl).nttForward(a.data(), tab.view());
                    ASSERT_EQ(0, std::memcmp(a.data(), oracle.data(),
                                             n * sizeof(uint64_t)))
                        << "forward mismatch: level="
                        << simdLevelName(lvl) << " n=" << n
                        << " bits=" << bits << " seed=" << seed;
                }

                auto back = oracle;
                tab.inverseScalar(back);
                for (const SimdLevel lvl : kAllLevels) {
                    auto a = oracle;
                    kernelsForLevel(lvl).nttInverse(a.data(), tab.view());
                    ASSERT_EQ(0, std::memcmp(a.data(), back.data(),
                                             n * sizeof(uint64_t)))
                        << "inverse mismatch: level="
                        << simdLevelName(lvl) << " n=" << n
                        << " bits=" << bits << " seed=" << seed;
                }
                // Round trip must reproduce the input exactly.
                ASSERT_EQ(0, std::memcmp(back.data(), input.data(),
                                         n * sizeof(uint64_t)));
            }
        }
    }
}

// Pointwise kernels: every variant vs the scalar table, including
// non-multiple-of-lane-width tails.
TEST(SimdEquivalence, PointwiseKernelsMatchScalar)
{
    const KernelOps& ref = scalarKernels();
    for (const size_t n : {size_t{251}, size_t{1024}, size_t{4099}}) {
        for (const int bits : {30, 49, 60}) {
            const uint64_t q = generateNttPrimes(
                bits, 8192, 1)[0]; // any prime < 2^bits works here
            const BarrettReducer red(q);
            for (const uint64_t seed : {5u, 6u}) {
                const auto a = randomPoly(n, q, seed);
                const auto b = randomPoly(n, q, seed + 100);
                Rng rng(seed + 200);
                const uint64_t w = rng.uniform(q);
                const uint64_t ws = shoupPrecompute(w, q);
                std::vector<int64_t> digits(n);
                for (auto& d : digits) {
                    d = static_cast<int64_t>(rng.uniform(2048)) - 1024;
                }

                std::vector<uint64_t> want(n), got(n);
                for (const SimdLevel lvl : kAllLevels) {
                    const KernelOps& ops = kernelsForLevel(lvl);
                    const char* name = simdLevelName(lvl);

                    ref.mulMod(want.data(), a.data(), b.data(), n, red);
                    ops.mulMod(got.data(), a.data(), b.data(), n, red);
                    ASSERT_EQ(want, got) << "mulMod " << name;

                    want = b;
                    got = b;
                    ref.mulModAccum(want.data(), a.data(), b.data(), n,
                                    red);
                    ops.mulModAccum(got.data(), a.data(), b.data(), n,
                                    red);
                    ASSERT_EQ(want, got) << "mulModAccum " << name;

                    ref.addMod(want.data(), a.data(), b.data(), n, q);
                    ops.addMod(got.data(), a.data(), b.data(), n, q);
                    ASSERT_EQ(want, got) << "addMod " << name;

                    ref.subMod(want.data(), a.data(), b.data(), n, q);
                    ops.subMod(got.data(), a.data(), b.data(), n, q);
                    ASSERT_EQ(want, got) << "subMod " << name;

                    ref.negMod(want.data(), a.data(), n, q);
                    ops.negMod(got.data(), a.data(), n, q);
                    ASSERT_EQ(want, got) << "negMod " << name;

                    ref.mulScalarShoup(want.data(), a.data(), w, ws, n,
                                       q);
                    ops.mulScalarShoup(got.data(), a.data(), w, ws, n,
                                       q);
                    ASSERT_EQ(want, got) << "mulScalarShoup " << name;

                    want = b;
                    got = b;
                    ref.mulScalarShoupAccum(want.data(), a.data(), w,
                                            ws, n, q);
                    ops.mulScalarShoupAccum(got.data(), a.data(), w,
                                            ws, n, q);
                    ASSERT_EQ(want, got)
                        << "mulScalarShoupAccum " << name;

                    ref.liftSigned(want.data(), digits.data(), n, q);
                    ops.liftSigned(got.data(), digits.data(), n, q);
                    ASSERT_EQ(want, got) << "liftSigned " << name;
                }
            }
        }
    }
}

// Multi-limb RnsPoly transforms through the dispatched table: the
// eval/coeff round trip must be exact for 1..8 limbs, and the eval
// representation must match the strict per-limb oracle byte-for-byte.
TEST(SimdEquivalence, RnsPolyRoundTripAcrossLimbCounts)
{
    const size_t n = 1024;
    for (size_t limbs = 1; limbs <= 8; ++limbs) {
        const auto basis = std::make_shared<RnsBasis>(
            n, generateNttPrimes(36, n, limbs));
        for (const uint64_t seed : {3u, 4u}) {
            RnsPoly p(basis, limbs, Domain::Coeff);
            Rng rng(seed);
            for (size_t i = 0; i < limbs; ++i) {
                auto limb = p.limb(i);
                for (auto& x : limb) {
                    x = rng.uniform(basis->modulus(i));
                }
            }
            const RnsPoly original = p;

            p.toEval();
            for (size_t i = 0; i < limbs; ++i) {
                std::vector<uint64_t> oracle(
                    original.limb(i).begin(), original.limb(i).end());
                basis->ntt(i).forwardScalar(oracle);
                ASSERT_EQ(0, std::memcmp(p.limb(i).data(),
                                         oracle.data(),
                                         n * sizeof(uint64_t)))
                    << "limb " << i << " of " << limbs;
            }

            p.toCoeff();
            for (size_t i = 0; i < limbs; ++i) {
                ASSERT_EQ(0, std::memcmp(p.limb(i).data(),
                                         original.limb(i).data(),
                                         n * sizeof(uint64_t)))
                    << "round trip limb " << i << " of " << limbs;
            }
        }
    }
}

} // namespace
