/**
 * @file
 * Parameterized property tests for homomorphic Chebyshev evaluation
 * (the EvalMod/sigmoid engine): across a battery of functions and
 * degrees, the homomorphic result must match the plaintext series to
 * CKKS precision, and the series must match the true function to its
 * fit error.
 */

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "ckks/chebyshev.h"

namespace heap::ckks {
namespace {

struct FnCase {
    const char* name;
    std::function<double(double)> f;
    int degree;
    double fitTol;  ///< expected plaintext fit error bound
    double homTol;  ///< homomorphic vs true function bound
};

class ChebyshevFunctions : public ::testing::TestWithParam<FnCase> {};

TEST_P(ChebyshevFunctions, HomomorphicMatchesFunction)
{
    const auto& c = GetParam();
    const auto coeffs = chebyshevFit(c.f, c.degree);
    ASSERT_LT(chebyshevMaxError(c.f, coeffs), c.fitTol) << c.name;

    CkksParams p;
    p.n = 256;
    p.limbBits = 30;
    p.levels = 9; // enough for degree <= 63
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    Context ctx(p, 1000 + static_cast<uint64_t>(c.degree));
    Evaluator ev(ctx);

    std::vector<double> xs(128);
    for (size_t i = 0; i < xs.size(); ++i) {
        xs[i] = -0.98 + 1.96 * static_cast<double>(i)
                           / static_cast<double>(xs.size() - 1);
    }
    const auto ct = ctx.encrypt(std::span<const double>(xs));
    const auto out = evalChebyshev(ev, ct, coeffs);
    const auto got = ctx.decrypt(out);
    double worst = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        worst = std::max(worst, std::abs(got[i].real() - c.f(xs[i])));
    }
    EXPECT_LT(worst, c.homTol) << c.name << " deg " << c.degree;
}

INSTANTIATE_TEST_SUITE_P(
    Battery, ChebyshevFunctions,
    ::testing::Values(
        FnCase{"sigmoid8",
               [](double x) { return 1.0 / (1.0 + std::exp(-8 * x)); },
               31, 2e-2, 4e-2},
        FnCase{"sine2pi",
               [](double x) { return std::sin(2 * std::numbers::pi * x); },
               23, 1e-6, 1e-2},
        FnCase{"exp", [](double x) { return std::exp(x); }, 15, 1e-10,
               1e-2},
        FnCase{"gauss",
               [](double x) { return std::exp(-4 * x * x); }, 27, 1e-6,
               1e-2},
        FnCase{"cubic",
               [](double x) { return 0.3 * x * x * x - 0.5 * x; }, 3,
               1e-12, 5e-3},
        FnCase{"softrelu",
               [](double x) { return std::log1p(std::exp(6 * x)) / 6; },
               39, 1e-2, 3e-2}),
    [](const ::testing::TestParamInfo<FnCase>& info) {
        return std::string(info.param.name);
    });

TEST(ChebyshevEdge, DegreeOneIsAffine)
{
    CkksParams p;
    p.n = 128;
    p.limbBits = 30;
    p.levels = 3;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    Context ctx(p, 5);
    Evaluator ev(ctx);
    const std::vector<double> coeffs = {0.25, 0.5}; // 0.25 + 0.5 x
    std::vector<double> xs(64);
    for (size_t i = 0; i < xs.size(); ++i) {
        xs[i] = -1.0 + static_cast<double>(i) / 32.0;
    }
    const auto out = evalChebyshev(
        ev, ctx.encrypt(std::span<const double>(xs)), coeffs);
    const auto got = ctx.decrypt(out);
    for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_NEAR(got[i].real(), 0.25 + 0.5 * xs[i], 1e-3);
    }
}

TEST(ChebyshevEdge, RejectsDegenerateInput)
{
    CkksParams p;
    p.n = 128;
    p.limbBits = 30;
    p.levels = 3;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    Context ctx(p, 6);
    Evaluator ev(ctx);
    std::vector<double> xs(64, 0.5);
    const auto ct = ctx.encrypt(std::span<const double>(xs));
    EXPECT_THROW(evalChebyshev(ev, ct, std::vector<double>{1.0}),
                 UserError);
    EXPECT_THROW(evalChebyshev(ev, ct,
                               std::vector<double>{0.0, 0.0, 0.0}),
                 UserError);
    EXPECT_THROW(chebyshevFit([](double x) { return x; }, 0), UserError);
}

} // namespace
} // namespace heap::ckks
