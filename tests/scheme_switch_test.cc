/**
 * @file
 * Integration tests for the scheme-switching CKKS bootstrap
 * (Algorithm 2): a level-1 ciphertext is restored to the top level
 * with its message intact, computation continues afterwards, and the
 * exact-cancellation property keeps the error at the blind-rotate +
 * repack noise floor.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "boot/scheme_switch.h"

namespace heap::boot {
namespace {

ckks::CkksParams
bootParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    // Modest Hamming weight keeps the worst-case modulus-switch
    // rounding inside the LUT identity window at this tiny N (the
    // paper's N = 2^13 leaves ample probabilistic margin for uniform
    // ternary keys; see DESIGN.md).
    p.secretHamming = 16;
    return p;
}

struct BootFixture : ::testing::Test {
    ckks::Context ctx{bootParams(), 4242};
    ckks::Evaluator ev{ctx};
    SchemeSwitchBootstrapper boot{
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6}};

    static double
    maxErr(const std::vector<ckks::Complex>& a,
           const std::vector<ckks::Complex>& b)
    {
        double m = 0;
        for (size_t i = 0; i < a.size(); ++i) {
            m = std::max(m, std::abs(a[i] - b[i]));
        }
        return m;
    }
};

TEST_F(BootFixture, RestoresLevelAndMessage)
{
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < 32; ++i) {
        z.emplace_back(std::cos(0.2 * static_cast<double>(i)),
                       std::sin(0.3 * static_cast<double>(i)));
    }
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);
    EXPECT_EQ(ct.level(), 1u);

    const auto boosted = boot.bootstrap(ct);
    EXPECT_EQ(boosted.level(), ctx.maxLevel());
    const auto back = ctx.decrypt(boosted);
    EXPECT_LT(maxErr(back, z), 5e-2);

    // Scale must remain within a rounding factor of the input scale.
    EXPECT_NEAR(boosted.scale / ct.scale, 1.0, 1e-2);
}

TEST_F(BootFixture, ComputationContinuesAfterBootstrap)
{
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < 32; ++i) {
        z.emplace_back(0.5 + 0.01 * static_cast<double>(i), 0.0);
    }
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    // Burn the level budget, bootstrap, then square.
    ct = ev.multiplyRescale(ct, ct);
    EXPECT_EQ(ct.level(), 1u);
    auto boosted = boot.bootstrap(ct);
    boosted = ev.multiplyRescale(boosted, boosted);
    const auto back = ctx.decrypt(boosted);
    for (size_t i = 0; i < 32; ++i) {
        const double want = std::pow(z[i].real(), 4);
        EXPECT_NEAR(back[i].real(), want, 0.1) << "slot " << i;
    }
}

TEST_F(BootFixture, StepTimesArePopulated)
{
    std::vector<ckks::Complex> z(8, ckks::Complex(0.25, 0));
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);
    (void)boot.bootstrap(ct);
    const auto& t = boot.lastStepTimes();
    EXPECT_GT(t.blindRotateMs, 0.0);
    EXPECT_GT(t.repackMs, 0.0);
    EXPECT_GE(t.modSwitchMs, 0.0);
    EXPECT_GE(t.finishMs, 0.0);
    // BlindRotate dominates, as in the paper (1.33 of 1.5 ms).
    EXPECT_GT(t.blindRotateMs, t.modSwitchMs);
}

TEST_F(BootFixture, MultiWorkerMatchesSingleWorker)
{
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < 16; ++i) {
        z.emplace_back(0.1 * static_cast<double>(i) - 0.8, 0.3);
    }
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);

    const auto one = boot.bootstrap(ct);
    boot.setWorkers(8);
    const auto eight = boot.bootstrap(ct);
    boot.setWorkers(1);

    // Parallel scheduling must not change the ciphertext at all: the
    // jobs are data-independent (the paper's key observation).
    for (size_t i = 0; i < one.ct.limbCount(); ++i) {
        EXPECT_TRUE(std::equal(one.ct.a.limb(i).begin(),
                               one.ct.a.limb(i).end(),
                               eight.ct.a.limb(i).begin()));
        EXPECT_TRUE(std::equal(one.ct.b.limb(i).begin(),
                               one.ct.b.limb(i).end(),
                               eight.ct.b.limb(i).begin()));
    }
}

TEST_F(BootFixture, RepeatedBootstrapsAreStable)
{
    // Bootstrapping must be re-enterable: exhaust levels, refresh,
    // exhaust again, refresh again — the error stays at the noise
    // floor instead of compounding (the property that lets HELR run
    // 30 iterations, Section VI-F.1).
    std::vector<ckks::Complex> z;
    for (size_t i = 0; i < 32; ++i) {
        z.emplace_back(0.03 * static_cast<double>(i) - 0.5, 0.2);
    }
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    double firstErr = 0;
    for (int round = 0; round < 2; ++round) {
        ev.dropToLevel(ct, 1);
        ct = boot.bootstrap(ct);
        const auto back = ctx.decrypt(ct);
        const double err = maxErr(back, z);
        if (round == 0) {
            firstErr = err;
        } else {
            EXPECT_LT(err, 3.0 * firstErr + 1e-3)
                << "bootstrap error compounds across rounds";
        }
        EXPECT_LT(err, 5e-2);
    }
}

class BootSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BootSeedSweep, MessageSurvivesAcrossKeysAndMessages)
{
    // Fresh context, keys, and message per seed: the bootstrap must
    // not depend on a lucky key draw.
    ckks::Context ctx(bootParams(), GetParam());
    ckks::Evaluator ev(ctx);
    SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
    Rng mrng(GetParam() * 17 + 1);
    std::vector<ckks::Complex> z(32);
    for (auto& v : z) {
        v = ckks::Complex(2 * mrng.uniformReal() - 1,
                          2 * mrng.uniformReal() - 1);
    }
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);
    const auto back = ctx.decrypt(boot.bootstrap(ct));
    double worst = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        worst = std::max(worst, std::abs(back[i] - z[i]));
    }
    EXPECT_LT(worst, 5e-2) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BootSeedSweep,
                         ::testing::Values(11u, 222u, 3333u));

TEST_F(BootFixture, KeyMajorScheduleIsBitIdentical)
{
    std::vector<ckks::Complex> z(8, ckks::Complex(-0.3, 0.6));
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);
    const auto perCt = boot.bootstrap(ct);
    boot.setSchedule(SchemeSwitchBootstrapper::Schedule::KeyMajor);
    const auto keyMajor = boot.bootstrap(ct);
    boot.setSchedule(SchemeSwitchBootstrapper::Schedule::PerCiphertext);
    for (size_t i = 0; i < perCt.ct.limbCount(); ++i) {
        EXPECT_TRUE(std::equal(perCt.ct.b.limb(i).begin(),
                               perCt.ct.b.limb(i).end(),
                               keyMajor.ct.b.limb(i).begin()));
    }
    // The two schedules cannot be combined with multi-worker fan-out.
    boot.setSchedule(SchemeSwitchBootstrapper::Schedule::KeyMajor);
    EXPECT_THROW(boot.setWorkers(4), UserError);
    boot.setSchedule(SchemeSwitchBootstrapper::Schedule::PerCiphertext);
}

TEST_F(BootFixture, RejectsHighLevelInput)
{
    std::vector<ckks::Complex> z(8, ckks::Complex(0.5, 0));
    const auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    EXPECT_THROW(boot.bootstrap(ct), UserError);
}

TEST_F(BootFixture, KeyBytesAccounting)
{
    // 2 * N RGSW keys + log2(N) packing keys; just sanity-check the
    // order of magnitude and positivity.
    EXPECT_GT(boot.keyBytes(), 0u);
    const size_t n = ctx.params().n;
    const size_t limbs = ctx.basis()->size();
    const size_t polyBytes = n * limbs * 8;
    EXPECT_GE(boot.keyBytes(), 2 * n * polyBytes);
}

} // namespace
} // namespace heap::boot
