/**
 * @file
 * Boolean TFHE tests: exhaustive truth tables for every bootstrapped
 * gate, NOT/MUX semantics, deep-circuit composition (a ripple-carry
 * adder), and re-encryption freshness (gate outputs feed further
 * gates indefinitely).
 */

#include <gtest/gtest.h>

#include "tfhe/gates.h"

namespace heap::tfhe {
namespace {

struct GatesFixture : ::testing::Test {
    BooleanContext ctx{BooleanParams{}, 99};
};

TEST_F(GatesFixture, EncryptDecryptRoundTrip)
{
    for (int rep = 0; rep < 8; ++rep) {
        EXPECT_TRUE(ctx.decrypt(ctx.encrypt(true)));
        EXPECT_FALSE(ctx.decrypt(ctx.encrypt(false)));
    }
}

struct GateCase {
    const char* name;
    lwe::LweCiphertext (BooleanContext::*fn)(
        const lwe::LweCiphertext&, const lwe::LweCiphertext&) const;
    bool truth[4]; ///< outputs for (00, 01, 10, 11)
};

class GateTruthTable : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruthTable, Exhaustive)
{
    BooleanContext ctx{BooleanParams{}, 1234};
    const auto& c = GetParam();
    for (int in = 0; in < 4; ++in) {
        const bool a = (in >> 1) & 1;
        const bool b = in & 1;
        const auto out =
            (ctx.*c.fn)(ctx.encrypt(a), ctx.encrypt(b));
        EXPECT_EQ(ctx.decrypt(out), c.truth[in])
            << c.name << "(" << a << ", " << b << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateTruthTable,
    ::testing::Values(
        GateCase{"AND", &BooleanContext::gateAnd,
                 {false, false, false, true}},
        GateCase{"OR", &BooleanContext::gateOr,
                 {false, true, true, true}},
        GateCase{"NAND", &BooleanContext::gateNand,
                 {true, true, true, false}},
        GateCase{"NOR", &BooleanContext::gateNor,
                 {true, false, false, false}},
        GateCase{"XOR", &BooleanContext::gateXor,
                 {false, true, true, false}},
        GateCase{"XNOR", &BooleanContext::gateXnor,
                 {true, false, false, true}}),
    [](const ::testing::TestParamInfo<GateCase>& info) {
        return std::string(info.param.name);
    });

TEST_F(GatesFixture, NotIsFreeAndCorrect)
{
    const size_t before = ctx.bootstrapCount();
    EXPECT_FALSE(ctx.decrypt(ctx.gateNot(ctx.encrypt(true))));
    EXPECT_TRUE(ctx.decrypt(ctx.gateNot(ctx.encrypt(false))));
    EXPECT_EQ(ctx.bootstrapCount(), before); // no bootstraps
}

TEST_F(GatesFixture, MuxSelects)
{
    for (int in = 0; in < 8; ++in) {
        const bool sel = (in >> 2) & 1;
        const bool a = (in >> 1) & 1;
        const bool b = in & 1;
        const auto out = ctx.gateMux(ctx.encrypt(sel), ctx.encrypt(a),
                                     ctx.encrypt(b));
        EXPECT_EQ(ctx.decrypt(out), sel ? a : b)
            << "mux(" << sel << ", " << a << ", " << b << ")";
    }
}

TEST_F(GatesFixture, GateOutputsComposeDeeply)
{
    // Chain 8 gates: outputs must stay decryptable (freshness).
    auto x = ctx.encrypt(true);
    const auto one = ctx.encrypt(true);
    for (int i = 0; i < 8; ++i) {
        x = ctx.gateXor(x, one); // toggles each round
    }
    EXPECT_TRUE(ctx.decrypt(x)); // toggled an even number of times
}

TEST_F(GatesFixture, RippleCarryAdder)
{
    // 2-bit adder built from XOR/AND/OR; checks all 16 input pairs'
    // low bit and a sample of full sums.
    auto fullAdder = [&](const lwe::LweCiphertext& a,
                         const lwe::LweCiphertext& b,
                         const lwe::LweCiphertext& cin) {
        const auto axb = ctx.gateXor(a, b);
        const auto sum = ctx.gateXor(axb, cin);
        const auto carry = ctx.gateOr(ctx.gateAnd(a, b),
                                      ctx.gateAnd(axb, cin));
        return std::pair{sum, carry};
    };
    for (const int pair : {0, 5, 10, 15}) {
        const int x = pair >> 2, y = pair & 3;
        const auto a0 = ctx.encrypt(x & 1), a1 = ctx.encrypt((x >> 1) & 1);
        const auto b0 = ctx.encrypt(y & 1), b1 = ctx.encrypt((y >> 1) & 1);
        const auto zero = ctx.encrypt(false);
        const auto [s0, c0] = fullAdder(a0, b0, zero);
        const auto [s1, c1] = fullAdder(a1, b1, c0);
        const int got = ctx.decrypt(s0) + 2 * ctx.decrypt(s1)
                        + 4 * ctx.decrypt(c1);
        EXPECT_EQ(got, x + y) << x << " + " << y;
    }
}

TEST_F(GatesFixture, CountsBootstraps)
{
    const size_t before = ctx.bootstrapCount();
    (void)ctx.gateAnd(ctx.encrypt(true), ctx.encrypt(false));
    EXPECT_EQ(ctx.bootstrapCount(), before + 1);
    (void)ctx.gateMux(ctx.encrypt(true), ctx.encrypt(false),
                      ctx.encrypt(true));
    EXPECT_EQ(ctx.bootstrapCount(), before + 4); // 2 AND + 1 OR
}

} // namespace
} // namespace heap::tfhe
