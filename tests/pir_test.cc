/**
 * @file
 * Core encrypted-lookup (PIR) correctness: server-folded answers
 * decrypt to the EXACT database entry for every queried index, for
 * seeds {7, 21, 42}, a >= 64-entry database, and >= 2 dimensions;
 * the monolithic fold and the serving decomposition (per-group first
 * pass + finishFold) are byte-identical; the analytic noise-budget
 * floor is positive and honest against the measured phase error.
 */

#include <gtest/gtest.h>

#include "ckks/serialize.h"
#include "math/primes.h"
#include "pir/pir.h"

namespace heap {
namespace {

pir::PirParams
smallParams(std::vector<size_t> dims, size_t entries)
{
    const size_t n = 64;
    pir::PirParams p;
    p.basis = std::make_shared<math::RnsBasis>(
        n, math::generateNttPrimes(30, n, 2));
    p.limbs = 2;
    p.dims = std::move(dims);
    p.entries = entries;
    p.payloadCoeffs = 8;
    p.scaleBits = 35;
    p.payloadBits = 16;
    p.gadget = rlwe::GadgetParams{.baseBits = 5, .digitsPerLimb = 6};
    return p;
}

std::vector<uint8_t>
answerBytes(const rlwe::Ciphertext& ct)
{
    ByteWriter w;
    ckks::saveRlwe(ct, w);
    return w.bytes();
}

TEST(PirParams, ShapeAccessors)
{
    const pir::PirParams p = smallParams({8, 8}, 64);
    EXPECT_EQ(p.totalCells(), 64u);
    EXPECT_EQ(p.dimBitCount(0), 3u);
    EXPECT_EQ(p.queryBitCount(), 6u);
    EXPECT_EQ(p.firstDimGroups(), 8u);
    EXPECT_GT(p.foldSigma(), 0.0);
    EXPECT_GT(p.answerBudgetBits(), 0.0);
    EXPECT_NO_THROW(p.validate());
}

TEST(PirParams, RejectsBadShapes)
{
    pir::PirParams p = smallParams({8, 8}, 64);
    p.dims = {3, 8};
    EXPECT_THROW(p.validate(), UserError);
    p = smallParams({8, 8}, 65);
    EXPECT_THROW(p.validate(), UserError);
    p = smallParams({8, 8}, 64);
    p.payloadCoeffs = 65; // > ring dimension
    EXPECT_THROW(p.validate(), UserError);
    p = smallParams({8, 8}, 64);
    p.scaleBits = 50; // payload * scale no longer fits the modulus
    EXPECT_THROW(p.validate(), UserError);
    p = smallParams({8, 8}, 64);
    p.scaleBits = 8; // fold noise eats the rounding margin
    EXPECT_THROW(p.validate(), UserError);
}

TEST(PirLookup, ExactForEveryIndexTwoDims)
{
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        const pir::PirParams p = smallParams({8, 8}, 64);
        Rng rng(seed);
        const auto sk = rlwe::SecretKey::sampleTernary(p.basis, rng);
        const auto db = pir::randomDatabase(p, seed);
        const pir::PirServer server(p, db);
        const pir::PirClient client(p, sk);
        for (size_t index = 0; index < p.entries; ++index) {
            const pir::PirQuery q = client.makeQuery(index, rng);
            const rlwe::Ciphertext ans = server.answer(q);
            EXPECT_EQ(client.decode(ans), db[index])
                << "seed " << seed << " index " << index;
        }
    }
}

TEST(PirLookup, ExactThreeDimsUnevenRadix)
{
    // 4 x 8 x 2 = 64 cells, only 50 logical entries (zero-padded
    // tail), multi-coefficient payloads.
    const pir::PirParams p = smallParams({4, 8, 2}, 50);
    Rng rng(21);
    const auto sk = rlwe::SecretKey::sampleTernary(p.basis, rng);
    const auto db = pir::randomDatabase(p, 99);
    const pir::PirServer server(p, db);
    const pir::PirClient client(p, sk);
    for (size_t index = 0; index < p.entries; index += 7) {
        const pir::PirQuery q = client.makeQuery(index, rng);
        EXPECT_EQ(client.decode(server.answer(q)), db[index])
            << "index " << index;
    }
}

TEST(PirLookup, DecompositionMatchesMonolithicByteExactly)
{
    const pir::PirParams p = smallParams({8, 8}, 64);
    Rng rng(42);
    const auto sk = rlwe::SecretKey::sampleTernary(p.basis, rng);
    const auto db = pir::randomDatabase(p, 42);
    const pir::PirServer server(p, db);
    const pir::PirClient client(p, sk);
    for (const size_t index : {size_t{0}, size_t{13}, size_t{63}}) {
        const pir::PirQuery q = client.makeQuery(index, rng);
        const rlwe::Ciphertext mono = server.answer(q);
        std::vector<rlwe::Ciphertext> firstPass;
        // Collect groups in REVERSE order: the schedule must not
        // matter, only the group indexing.
        firstPass.resize(server.firstDimGroups());
        for (size_t g = server.firstDimGroups(); g-- > 0;) {
            firstPass[g] = server.foldFirstGroup(q, g);
        }
        const rlwe::Ciphertext staged =
            server.finishFold(q, std::move(firstPass));
        EXPECT_EQ(answerBytes(mono), answerBytes(staged))
            << "index " << index;
    }
}

TEST(PirLookup, MeasuredNoiseWithinAnalyticBudget)
{
    const pir::PirParams p = smallParams({8, 8}, 64);
    Rng rng(7);
    const auto sk = rlwe::SecretKey::sampleTernary(p.basis, rng);
    const auto db = pir::randomDatabase(p, 7);
    const pir::PirServer server(p, db);
    const pir::PirClient client(p, sk);
    const int64_t delta = int64_t{1} << p.scaleBits;
    const double guardNoise = p.guardMarginSigmas * p.foldSigma();
    int64_t worst = 0;
    for (size_t index = 0; index < p.entries; index += 5) {
        const pir::PirQuery q = client.makeQuery(index, rng);
        const auto dec = rlwe::decryptSigned(server.answer(q), sk);
        for (size_t i = 0; i < p.payloadCoeffs; ++i) {
            const int64_t err = dec[i] - db[index][i] * delta;
            worst = std::max(worst, std::abs(err));
        }
    }
    // The measured fold error must sit inside the guard-scaled
    // analytic envelope the budget floor is computed from (and hence
    // far inside the Delta/2 exactness boundary).
    EXPECT_LT(static_cast<double>(worst), guardNoise);
    EXPECT_LT(static_cast<double>(worst),
              static_cast<double>(delta) / 2.0);
    EXPECT_GT(p.answerBudgetBits(), 0.0);
}

TEST(PirQueryValidation, MismatchedQueryRejected)
{
    const pir::PirParams p = smallParams({8, 8}, 64);
    Rng rng(7);
    const auto sk = rlwe::SecretKey::sampleTernary(p.basis, rng);
    const pir::PirServer server(p, pir::randomDatabase(p, 7));
    const pir::PirClient client(p, sk);
    pir::PirQuery q = client.makeQuery(3, rng);
    q.dimBits.pop_back();
    EXPECT_THROW(server.answer(q), UserError);
    q = client.makeQuery(3, rng);
    q.dimBits[1].pop_back();
    EXPECT_THROW(server.answer(q), UserError);
    EXPECT_THROW(client.makeQuery(p.entries, rng), UserError);
}

TEST(PirDatabase, RandomDatabaseDeterministic)
{
    const pir::PirParams p = smallParams({8, 8}, 64);
    EXPECT_EQ(pir::randomDatabase(p, 7), pir::randomDatabase(p, 7));
    EXPECT_NE(pir::randomDatabase(p, 7), pir::randomDatabase(p, 8));
}

} // namespace
} // namespace heap
