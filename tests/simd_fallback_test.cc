/**
 * @file
 * The HEAP_FORCE_SCALAR escape hatch and the dispatch fallback rules:
 * forcing the portable path must work on any host (this is what the
 * CI portable leg runs), and requesting a variant that is not
 * compiled in or not runnable must degrade to a valid table rather
 * than fail.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "math/kernels.h"
#include "math/simd.h"

namespace {

using namespace heap::math;

class ForceScalarEnv : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        const char* prev = std::getenv("HEAP_FORCE_SCALAR");
        hadPrev_ = prev != nullptr;
        if (hadPrev_) {
            prev_ = prev;
        }
    }

    void
    TearDown() override
    {
        if (hadPrev_) {
            ::setenv("HEAP_FORCE_SCALAR", prev_.c_str(), 1);
        } else {
            ::unsetenv("HEAP_FORCE_SCALAR");
        }
    }

    bool hadPrev_ = false;
    std::string prev_;
};

TEST_F(ForceScalarEnv, ForcesScalarDetection)
{
    ::setenv("HEAP_FORCE_SCALAR", "1", 1);
    EXPECT_EQ(SimdLevel::Scalar, detail::detectSimdLevel());
    // Any non-empty, non-"0" value forces the fallback.
    ::setenv("HEAP_FORCE_SCALAR", "yes", 1);
    EXPECT_EQ(SimdLevel::Scalar, detail::detectSimdLevel());
}

TEST_F(ForceScalarEnv, ZeroAndUnsetDoNotForce)
{
    ::unsetenv("HEAP_FORCE_SCALAR");
    const SimdLevel unset = detail::detectSimdLevel();
    ::setenv("HEAP_FORCE_SCALAR", "0", 1);
    EXPECT_EQ(unset, detail::detectSimdLevel());
    ::setenv("HEAP_FORCE_SCALAR", "", 1);
    EXPECT_EQ(unset, detail::detectSimdLevel());
}

TEST(SimdDispatch, ScalarTableIsScalar)
{
    EXPECT_EQ(SimdLevel::Scalar, scalarKernels().level);
    EXPECT_EQ(SimdLevel::Scalar,
              kernelsForLevel(SimdLevel::Scalar).level);
}

TEST(SimdDispatch, EveryLevelResolvesToARunnableTable)
{
    // Levels that are not compiled in (or not supported by this CPU)
    // must degrade to a complete table, never a null pointer.
    for (const SimdLevel lvl : {SimdLevel::Scalar, SimdLevel::Avx2,
                                SimdLevel::Avx512, SimdLevel::Neon}) {
        const KernelOps& ops = kernelsForLevel(lvl);
        EXPECT_NE(nullptr, ops.nttForward) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.nttInverse) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.mulMod) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.mulModAccum) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.addMod) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.subMod) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.negMod) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.mulScalarShoup) << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.mulScalarShoupAccum)
            << simdLevelName(lvl);
        EXPECT_NE(nullptr, ops.liftSigned) << simdLevelName(lvl);
    }
}

TEST(SimdDispatch, ProcessTableMatchesActiveLevel)
{
    // kernels() is pinned to the level detected at first use; the two
    // must agree for the lifetime of the process.
    EXPECT_EQ(activeSimdLevel(), kernels().level);
}

TEST(SimdDispatch, LevelNamesAreStable)
{
    EXPECT_STREQ("scalar", simdLevelName(SimdLevel::Scalar));
    EXPECT_STREQ("avx2", simdLevelName(SimdLevel::Avx2));
    EXPECT_STREQ("avx512", simdLevelName(SimdLevel::Avx512));
    EXPECT_STREQ("neon", simdLevelName(SimdLevel::Neon));
}

} // namespace
