/**
 * @file
 * Serialization tests: byte-level primitives, ciphertext/key round
 * trips (including use-after-load), and rejection of corrupt,
 * truncated, or parameter-mismatched data.
 */

#include <bit>
#include <cmath>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "lwe/serialize.h"

namespace heap::ckks {
namespace {

/**
 * Budget equality by bit pattern: fuzzed payloads may decode -0.0
 * where the original held 0.0, which operator== would miss.
 */
bool
sameBudgetBits(const NoiseBudget& a, const NoiseBudget& b)
{
    return a.tracked == b.tracked
           && std::bit_cast<uint64_t>(a.sigma)
                  == std::bit_cast<uint64_t>(b.sigma)
           && std::bit_cast<uint64_t>(a.messageRms)
                  == std::bit_cast<uint64_t>(b.messageRms)
           && a.adds == b.adds && a.mults == b.mults
           && a.rescales == b.rescales && a.rotations == b.rotations
           && a.conjugations == b.conjugations
           && a.keySwitches == b.keySwitches
           && a.bootstraps == b.bootstraps;
}

TEST(ByteIo, PrimitivesRoundTrip)
{
    ByteWriter w;
    w.u64(0);
    w.u64(~0ULL);
    w.i64(-12345);
    w.f64(3.14159);
    w.u64Span(std::vector<uint64_t>{1, 2, 3});

    ByteReader r(w.bytes());
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_EQ(r.u64(), ~0ULL);
    EXPECT_EQ(r.i64(), -12345);
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.u64Vec(), (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteIo, TruncationThrows)
{
    ByteWriter w;
    w.u64(7);
    ByteReader r(std::span<const uint8_t>(w.bytes().data(), 5));
    EXPECT_THROW(r.u64(), UserError);
}

CkksParams
serParams()
{
    CkksParams p;
    p.n = 128;
    p.limbBits = 30;
    p.levels = 3;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    return p;
}

struct SerFixture : ::testing::Test {
    Context ctx{serParams(), 2525};
    Evaluator ev{ctx};
    Rng rng{4};

    std::vector<Complex>
    slots()
    {
        std::vector<Complex> z(64);
        for (auto& v : z) {
            v = Complex(2 * rng.uniformReal() - 1,
                        2 * rng.uniformReal() - 1);
        }
        return z;
    }
};

TEST_F(SerFixture, CiphertextRoundTripAndUse)
{
    const auto z = slots();
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    const auto bytes = saveCiphertext(ct);
    const auto back = loadCiphertext(bytes, ctx);

    EXPECT_EQ(back.level(), ct.level());
    EXPECT_EQ(back.slots, ct.slots);
    EXPECT_DOUBLE_EQ(back.scale, ct.scale);

    // The loaded ciphertext decrypts AND computes.
    const auto dec = ctx.decrypt(back);
    double worst = 0;
    for (size_t i = 0; i < z.size(); ++i) {
        worst = std::max(worst, std::abs(dec[i] - z[i]));
    }
    EXPECT_LT(worst, 1e-3);
    const auto sq = ctx.decrypt(ev.multiplyRescale(back, back));
    for (size_t i = 0; i < z.size(); ++i) {
        EXPECT_LT(std::abs(sq[i] - z[i] * z[i]), 1e-2);
    }
}

TEST_F(SerFixture, EvalDomainCiphertextRoundTrip)
{
    const auto z = slots();
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    ct.ct.toCoeff(); // exercise the Coeff-domain path
    const auto back = loadCiphertext(saveCiphertext(ct), ctx);
    EXPECT_EQ(back.ct.domain(), math::Domain::Coeff);
    const auto dec = ctx.decrypt(back);
    for (size_t i = 0; i < z.size(); ++i) {
        ASSERT_LT(std::abs(dec[i] - z[i]), 1e-3);
    }
}

TEST_F(SerFixture, GadgetKeyRoundTripAndUse)
{
    ctx.makeRotationKeys(std::array<int64_t, 1>{1});
    const auto bytes = saveGadget(ctx.rotationKey(1));
    const auto key = loadGadget(bytes, ctx);

    // Rotate using the reloaded key directly.
    const auto z = slots();
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    const uint64_t t = ctx.encoder().rotationExponent(1);
    Ciphertext rot = ct;
    rot.ct = rlwe::evalAuto(ct.ct, t, key);
    const auto dec = ctx.decrypt(rot);
    for (size_t i = 0; i < z.size(); ++i) {
        ASSERT_LT(std::abs(dec[i] - z[(i + 1) % z.size()]), 2e-2);
    }
}

TEST_F(SerFixture, RejectsCorruption)
{
    const auto z = slots();
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    auto bytes = saveCiphertext(ct);

    // Bad magic.
    auto bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_THROW(loadCiphertext(bad, ctx), UserError);

    // Truncated.
    EXPECT_THROW(loadCiphertext(
                     std::span<const uint8_t>(bytes.data(),
                                              bytes.size() / 2),
                     ctx),
                 UserError);

    // Trailing garbage.
    auto padded = bytes;
    padded.push_back(0);
    for (int i = 0; i < 7; ++i) {
        padded.push_back(0);
    }
    EXPECT_THROW(loadCiphertext(padded, ctx), UserError);

    // Out-of-range coefficient.
    auto tampered = bytes;
    // Flip high bits somewhere inside the coefficient payload.
    tampered[tampered.size() - 3] = 0xff;
    EXPECT_THROW(loadCiphertext(tampered, ctx), UserError);
}

TEST(LweWireFormat, RoundTripAndRejection)
{
    lwe::LweCiphertext ct;
    ct.modulus = uint64_t{1} << 40;
    ct.b = 123456789;
    ct.a.resize(128);
    for (size_t i = 0; i < ct.a.size(); ++i) {
        ct.a[i] = (0x9e3779b9ull * i) % ct.modulus;
    }
    ByteWriter w;
    lwe::saveLwe(ct, w);
    ByteReader r(w.bytes());
    const auto back = lwe::loadLwe(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(back.modulus, ct.modulus);
    EXPECT_EQ(back.b, ct.b);
    EXPECT_EQ(back.a, ct.a);

    // Body >= modulus and out-of-range mask entries are rejected.
    lwe::LweCiphertext bad = ct;
    bad.b = ct.modulus;
    ByteWriter wb;
    lwe::saveLwe(bad, wb);
    ByteReader rb(wb.bytes());
    EXPECT_THROW(lwe::loadLwe(rb), UserError);
}

TEST(LweWireFormat, FuzzedEncodingsThrowOrDecodeDifferently)
{
    // Deterministic mutation sweep (satellite of the fault-tolerance
    // work): truncations must always throw; single-bit flips must
    // either throw UserError or decode to a *different* ciphertext —
    // never crash, never silently round-trip as the original.
    lwe::LweCiphertext ct;
    ct.modulus = uint64_t{1} << 32;
    ct.b = 999;
    ct.a.resize(64);
    for (size_t i = 0; i < ct.a.size(); ++i) {
        ct.a[i] = (i * 7919 + 13) % ct.modulus;
    }
    ByteWriter w;
    lwe::saveLwe(ct, w);
    const auto& bytes = w.bytes();

    for (size_t len = 0; len < bytes.size(); len += 5) {
        ByteReader r(std::span<const uint8_t>(bytes.data(), len));
        EXPECT_THROW((void)lwe::loadLwe(r), UserError)
            << "prefix " << len;
    }

    for (size_t bit = 0; bit < bytes.size() * 8; bit += 11) {
        auto bad = bytes;
        bad[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        try {
            ByteReader r(bad);
            const auto got = lwe::loadLwe(r);
            const bool unchanged = r.atEnd() && got.modulus == ct.modulus
                                   && got.b == ct.b && got.a == ct.a
                                   && sameBudgetBits(got.budget,
                                                     ct.budget);
            EXPECT_FALSE(unchanged) << "bit " << bit;
        } catch (const UserError&) {
            // rejection is the common (and desired) outcome
        }
    }

    // Length inflation in the mask-vector count: must throw (either
    // as a truncation or as an over-large vector), never over-read.
    // Wire layout: magic(8) budget(80) modulus(8) b(8) count at 104.
    for (const uint64_t factor : {2ull, 1ull << 20, 1ull << 60}) {
        auto bad = bytes;
        const uint64_t len = ct.a.size() * factor;
        for (int i = 0; i < 8; ++i) {
            bad[104 + i] = static_cast<uint8_t>(len >> (8 * i));
        }
        ByteReader r(bad);
        EXPECT_THROW((void)lwe::loadLwe(r), UserError) << factor;
    }
}

TEST(LweWireFormat, BudgetRoundTrip)
{
    lwe::LweCiphertext ct;
    ct.modulus = uint64_t{1} << 40;
    ct.b = 42;
    ct.a.assign(64, 7);
    ct.budget.tracked = true;
    ct.budget.sigma = 12.5;
    ct.budget.messageRms = 512.0;
    ct.budget.keySwitches = 3;
    ct.budget.bootstraps = 1;
    ByteWriter w;
    lwe::saveLwe(ct, w);
    ByteReader r(w.bytes());
    const auto back = lwe::loadLwe(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_TRUE(sameBudgetBits(back.budget, ct.budget));
}

TEST(LweWireFormat, AcceptsLegacyMagiclessPayload)
{
    // Pre-noise-tracking payloads start directly with the modulus
    // word; the loader must still parse them (budget untracked).
    lwe::LweCiphertext ct;
    ct.modulus = uint64_t{1} << 32;
    ct.b = 77;
    ct.a = {1, 2, 3, 4};
    ByteWriter w;
    w.u64(ct.modulus);
    w.u64(ct.b);
    w.u64Span(ct.a);
    ByteReader r(w.bytes());
    const auto back = lwe::loadLwe(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(back.modulus, ct.modulus);
    EXPECT_EQ(back.b, ct.b);
    EXPECT_EQ(back.a, ct.a);
    EXPECT_FALSE(back.budget.tracked);
}

TEST_F(SerFixture, FuzzedRlweEncodingsThrowOrDecodeDifferently)
{
    const auto z = slots();
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    ByteWriter w;
    saveRlwe(ct.ct, w);
    const auto& bytes = w.bytes();
    const auto basis = ctx.basis();

    // Truncations always throw (loadRlwe consumes the whole pair).
    for (size_t len = 0; len < bytes.size(); len += 257) {
        ByteReader r(std::span<const uint8_t>(bytes.data(), len));
        EXPECT_THROW((void)loadRlwe(r, basis), UserError)
            << "prefix " << len;
    }

    // Bit flips: throw or decode to different polynomials; the sweep
    // covers the domain tag, limb counts, vector lengths, and the
    // coefficient payload of both components.
    ByteReader ref(bytes);
    const auto orig = loadRlwe(ref, basis);
    for (size_t bit = 0; bit < bytes.size() * 8; bit += 997) {
        auto bad = bytes;
        bad[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        try {
            ByteReader r(bad);
            const auto got = loadRlwe(r, basis);
            bool unchanged = r.atEnd()
                             && got.a.limbCount() == orig.a.limbCount()
                             && got.domain() == orig.domain();
            for (size_t i = 0; unchanged && i < got.a.limbCount();
                 ++i) {
                unchanged =
                    std::equal(got.a.limb(i).begin(),
                               got.a.limb(i).end(),
                               orig.a.limb(i).begin())
                    && std::equal(got.b.limb(i).begin(),
                                  got.b.limb(i).end(),
                                  orig.b.limb(i).begin());
            }
            EXPECT_FALSE(unchanged) << "bit " << bit;
        } catch (const UserError&) {
            // expected for most mutations
        }
    }

    // Limb-count inflation: the second u64 of the leading polynomial.
    auto bad = bytes;
    bad[8] = 0xff;
    ByteReader r(bad);
    EXPECT_THROW((void)loadRlwe(r, basis), UserError);
}

TEST_F(SerFixture, CiphertextBudgetRoundTrip)
{
    const auto z = slots();
    auto ct = ctx.encrypt(std::span<const Complex>(z));
    ct = ev.multiplyRescale(ct, ct);
    ASSERT_TRUE(ct.budget.tracked);
    const auto back = loadCiphertext(saveCiphertext(ct), ctx);
    EXPECT_TRUE(sameBudgetBits(back.budget, ct.budget));
    EXPECT_EQ(back.budget.mults, 1u);
    EXPECT_EQ(back.budget.rescales, 1u);
}

TEST_F(SerFixture, AcceptsV1PayloadWithoutBudget)
{
    // A V1 payload is the V2 layout minus the 80-byte budget block,
    // under the old magic. Splice one together from a V2 encoding and
    // check the loader still accepts it, leaving the budget untracked.
    const auto z = slots();
    const auto ct = ctx.encrypt(std::span<const Complex>(z));
    auto bytes = saveCiphertext(ct);
    const size_t budgetOff = 8 /*magic*/ + 8 /*n*/ + 8 /*limb count*/
                             + ct.level() * 8 /*moduli*/ + 8 /*scale*/
                             + 8 /*slots*/;
    bytes.erase(bytes.begin() + static_cast<ptrdiff_t>(budgetOff),
                bytes.begin() + static_cast<ptrdiff_t>(budgetOff + 80));
    const uint64_t v1Magic = 0x48454150'43543031ULL; // HEAPCT01
    for (int i = 0; i < 8; ++i) {
        bytes[static_cast<size_t>(i)] =
            static_cast<uint8_t>(v1Magic >> (8 * i));
    }
    const auto back = loadCiphertext(bytes, ctx);
    EXPECT_FALSE(back.budget.tracked);
    const auto dec = ctx.decrypt(back);
    for (size_t i = 0; i < z.size(); ++i) {
        ASSERT_LT(std::abs(dec[i] - z[i]), 1e-3);
    }
}

TEST_F(SerFixture, RejectsParameterMismatch)
{
    const auto z = slots();
    const auto bytes =
        saveCiphertext(ctx.encrypt(std::span<const Complex>(z)));
    auto other = serParams();
    other.n = 256;
    Context ctx2(other, 1);
    EXPECT_THROW(loadCiphertext(bytes, ctx2), UserError);

    auto other2 = serParams();
    other2.limbBits = 32;
    other2.gadget = rlwe::GadgetParams{.baseBits = 10, .digitsPerLimb = 4};
    Context ctx3(other2, 1);
    EXPECT_THROW(loadCiphertext(bytes, ctx3), UserError);
}

} // namespace
} // namespace heap::ckks
