/**
 * @file
 * Tests for the conventional CKKS bootstrapping baseline and its
 * building blocks (homomorphic linear transforms, Chebyshev
 * evaluation): the baseline that the paper's Algorithm 2 replaces.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "boot/conventional.h"

namespace heap::boot {
namespace {

ckks::CkksParams
convParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 11;
    p.firstLimbBits = 32; // q0 close to Delta maximizes EvalMod SNR
    p.auxLimbs = 1;       // special prime: rotations use hybrid KS
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 8; // keeps |I| within the sine range K
    return p;
}

struct ConvFixture : ::testing::Test {
    ckks::Context ctx{convParams(), 31337};
    ckks::Evaluator ev{ctx};
};

TEST(Chebyshev, FitAccuracy)
{
    auto f = [](double x) { return std::sin(3.0 * x); };
    const auto coeffs = ckks::chebyshevFit(f, 25);
    EXPECT_LT(ckks::chebyshevMaxError(f, coeffs), 1e-10);
    // Low degree: visible error.
    const auto rough = ckks::chebyshevFit(f, 3);
    EXPECT_GT(ckks::chebyshevMaxError(f, rough), 1e-3);
}

TEST(Chebyshev, DepthFormula)
{
    EXPECT_EQ(ckks::chebyshevDepth(1), 1u);
    EXPECT_EQ(ckks::chebyshevDepth(2), 2u);
    EXPECT_EQ(ckks::chebyshevDepth(8), 4u);
    EXPECT_EQ(ckks::chebyshevDepth(9), 5u);
    EXPECT_EQ(ckks::chebyshevDepth(45), 7u);
}

TEST_F(ConvFixture, HomomorphicChebyshevMatchesPlain)
{
    auto f = [](double x) { return 0.5 + 0.25 * x - x * x * x * 0.125; };
    const auto coeffs = ckks::chebyshevFit(f, 9);
    ASSERT_LT(ckks::chebyshevMaxError(f, coeffs), 1e-9);

    std::vector<double> xs;
    for (size_t i = 0; i < 32; ++i) {
        xs.push_back(-0.95 + 0.06 * static_cast<double>(i));
    }
    const auto ct = ctx.encrypt(std::span<const double>(xs));
    const auto out = ckks::evalChebyshev(ev, ct, coeffs);
    const auto got = ctx.decrypt(out);
    for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_NEAR(got[i].real(), f(xs[i]), 5e-3) << "x=" << xs[i];
    }
}

TEST_F(ConvFixture, LinearTransformPlainVsBsgs)
{
    const size_t slots = 32;
    Rng rng(17);
    ckks::SlotMatrix M(slots, std::vector<ckks::Complex>(slots));
    for (auto& row : M) {
        for (auto& e : row) {
            e = ckks::Complex(2 * rng.uniformReal() - 1,
                              2 * rng.uniformReal() - 1) * 0.2;
        }
    }
    ckks::LinearTransform plain(ctx, M, false);
    ckks::LinearTransform bsgs(ctx, M, true);
    EXPECT_LT(bsgs.rotationCount(), plain.rotationCount());
    ctx.makeRotationKeys(plain.requiredRotations());
    ctx.makeRotationKeys(bsgs.requiredRotations());

    std::vector<ckks::Complex> z(slots);
    for (auto& v : z) {
        v = ckks::Complex(2 * rng.uniformReal() - 1,
                          2 * rng.uniformReal() - 1);
    }
    const auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    const auto out1 = ctx.decrypt(plain.apply(ev, ct));
    const auto out2 = ctx.decrypt(bsgs.apply(ev, ct));

    for (size_t k = 0; k < slots; ++k) {
        ckks::Complex want(0, 0);
        for (size_t j = 0; j < slots; ++j) {
            want += M[k][j] * z[j];
        }
        EXPECT_LT(std::abs(out1[k] - want), 2e-2) << "plain k=" << k;
        EXPECT_LT(std::abs(out2[k] - want), 2e-2) << "bsgs k=" << k;
    }
}

TEST_F(ConvFixture, ConventionalBootstrapRoundTrip)
{
    ConventionalBootParams bp;
    bp.sineDegree = 45;
    bp.rangeK = 4.0;
    ConventionalBootstrapper boot(ctx, bp);
    EXPECT_LT(boot.sineFitError(), 1e-6);
    EXPECT_GT(boot.rotationCount(), 0u);

    // Small messages (|m| << q0) as the scaled-sine regime requires.
    std::vector<ckks::Complex> z(32);
    for (size_t i = 0; i < 32; ++i) {
        z[i] = ckks::Complex(0.4 * std::cos(0.5 * static_cast<double>(i)),
                             0.4 * std::sin(0.7 * static_cast<double>(i)));
    }
    auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
    ev.dropToLevel(ct, 1);

    const auto boosted = boot.bootstrap(ct);
    EXPECT_GE(boosted.level(), 2u);
    const auto back = ctx.decrypt(boosted);
    double worst = 0;
    for (size_t i = 0; i < 32; ++i) {
        worst = std::max(worst, std::abs(back[i] - z[i]));
    }
    EXPECT_LT(worst, 2e-2);
}

TEST_F(ConvFixture, ConventionalBootstrapDepthAccounting)
{
    ConventionalBootParams bp;
    bp.sineDegree = 45;
    bp.rangeK = 4.0;
    ConventionalBootstrapper boot(ctx, bp);
    // depth = 2 DFT levels + chebyshev depth.
    EXPECT_EQ(boot.depth(), 2u + ckks::chebyshevDepth(45));
    // A context without enough levels must be rejected.
    auto small = convParams();
    small.levels = 4;
    ckks::Context tiny(small, 1);
    EXPECT_THROW(ConventionalBootstrapper(tiny, bp), UserError);
}

} // namespace
} // namespace heap::boot
