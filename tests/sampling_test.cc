/**
 * @file
 * Statistical sanity tests for the lattice samplers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "math/primes.h"
#include "math/sampling.h"

namespace heap::math {
namespace {

TEST(Sampling, TernaryValuesAndBalance)
{
    Rng rng(11);
    const auto v = sampleTernary(100000, rng);
    size_t zeros = 0, pos = 0, neg = 0;
    for (const int64_t x : v) {
        ASSERT_GE(x, -1);
        ASSERT_LE(x, 1);
        zeros += x == 0;
        pos += x == 1;
        neg += x == -1;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / v.size(), 0.5, 0.02);
    EXPECT_NEAR(static_cast<double>(pos) / v.size(), 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(neg) / v.size(), 0.25, 0.02);
}

TEST(Sampling, TernaryHammingExactWeight)
{
    Rng rng(12);
    for (size_t h : {0u, 1u, 17u, 64u}) {
        const auto v = sampleTernaryHamming(64, h, rng);
        size_t nonzero = 0;
        for (const int64_t x : v) {
            nonzero += x != 0;
        }
        EXPECT_EQ(nonzero, h);
    }
    EXPECT_THROW(sampleTernaryHamming(8, 9, rng), UserError);
}

TEST(Sampling, GaussianMomentsMatch)
{
    Rng rng(13);
    const double sigma = 3.2;
    const auto v = sampleGaussian(200000, sigma, rng);
    double mean = 0, var = 0;
    for (const int64_t x : v) {
        mean += static_cast<double>(x);
    }
    mean /= static_cast<double>(v.size());
    for (const int64_t x : v) {
        var += (x - mean) * (x - mean);
    }
    var /= static_cast<double>(v.size());
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), sigma, 0.1);
    // Rounded Gaussians at sigma=3.2 should essentially never exceed
    // 8 sigma.
    for (const int64_t x : v) {
        ASSERT_LT(std::abs(x), static_cast<int64_t>(8 * sigma) + 1);
    }
}

TEST(Sampling, UniformRnsInRangeAndSpread)
{
    const size_t n = 256;
    const auto basis = std::make_shared<RnsBasis>(
        n, generateNttPrimes(30, n, 2));
    Rng rng(14);
    const auto p = sampleUniformRns(basis, 2, Domain::Coeff, rng);
    for (size_t i = 0; i < 2; ++i) {
        const uint64_t q = basis->modulus(i);
        double mean = 0;
        for (const uint64_t c : p.limb(i)) {
            ASSERT_LT(c, q);
            mean += static_cast<double>(c);
        }
        mean /= static_cast<double>(n);
        // Mean of U[0, q) is q/2 within ~q/(2 sqrt(3 n)).
        EXPECT_NEAR(mean / static_cast<double>(q), 0.5, 0.12);
    }
}

TEST(Sampling, Deterministic)
{
    Rng a(99), b(99);
    EXPECT_EQ(sampleTernary(64, a), sampleTernary(64, b));
    EXPECT_EQ(sampleGaussian(64, 3.2, a), sampleGaussian(64, 3.2, b));
}

} // namespace
} // namespace heap::math
