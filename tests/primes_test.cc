/**
 * @file
 * Tests for Miller-Rabin primality, NTT-prime generation, and
 * primitive-root search.
 */

#include <gtest/gtest.h>

#include "math/modarith.h"
#include "math/primes.h"

namespace heap::math {
namespace {

TEST(Primes, SmallKnownValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(65537));
    EXPECT_FALSE(isPrime(65536));
    // Carmichael numbers must be rejected.
    EXPECT_FALSE(isPrime(561));
    EXPECT_FALSE(isPrime(41041));
    EXPECT_FALSE(isPrime(825265));
}

TEST(Primes, LargeKnownValues)
{
    EXPECT_TRUE(isPrime(1152921504606830593ULL));
    EXPECT_TRUE(isPrime(4611686018427387847ULL)); // 2^62 - 57
    EXPECT_FALSE(isPrime(1152921504606830593ULL * 3));
}

TEST(Primes, BruteForceAgreementUpTo10k)
{
    auto slow = [](uint64_t n) {
        if (n < 2) return false;
        for (uint64_t d = 2; d * d <= n; ++d) {
            if (n % d == 0) return false;
        }
        return true;
    };
    for (uint64_t n = 0; n < 10000; ++n) {
        ASSERT_EQ(isPrime(n), slow(n)) << "n=" << n;
    }
}

class NttPrimeTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(NttPrimeTest, GeneratedPrimesAreNttFriendly)
{
    const auto [bits, n] = GetParam();
    const auto primes = generateNttPrimes(bits, n, 4);
    ASSERT_EQ(primes.size(), 4u);
    for (const uint64_t q : primes) {
        EXPECT_TRUE(isPrime(q));
        EXPECT_EQ((q - 1) % (2 * n), 0u) << "q=" << q;
        EXPECT_GE(q, static_cast<uint64_t>(1) << (bits - 1));
        EXPECT_LE(q, static_cast<uint64_t>(1) << bits);
    }
    // Distinct.
    for (size_t i = 0; i < primes.size(); ++i) {
        for (size_t j = i + 1; j < primes.size(); ++j) {
            EXPECT_NE(primes[i], primes[j]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, NttPrimeTest,
    ::testing::Combine(::testing::Values(28, 36, 45),
                       ::testing::Values<size_t>(256, 1024, 8192)));

TEST(Primes, PrimitiveRootHasFullOrder)
{
    for (const uint64_t q : {65537ULL, 786433ULL}) {
        const uint64_t g = primitiveRoot(q);
        // g^((q-1)/f) != 1 for each prime factor f of q-1; spot check
        // with f = 2 and f = 3 where applicable.
        EXPECT_NE(powMod(g, (q - 1) / 2, q), 1u);
        if ((q - 1) % 3 == 0) {
            EXPECT_NE(powMod(g, (q - 1) / 3, q), 1u);
        }
        EXPECT_EQ(powMod(g, q - 1, q), 1u);
    }
}

TEST(Primes, Primitive2NthRoot)
{
    const size_t n = 512;
    const uint64_t q = generateNttPrimes(30, n, 1)[0];
    const uint64_t psi = minimalPrimitiveRoot2N(q, n);
    // psi^n = -1 and psi^{2n} = 1 characterize a primitive 2n-th root.
    EXPECT_EQ(powMod(psi, n, q), q - 1);
    EXPECT_EQ(powMod(psi, 2 * n, q), 1u);
}

} // namespace
} // namespace heap::math
