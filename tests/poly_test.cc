/**
 * @file
 * Tests for single-limb polynomial operations: ring arithmetic,
 * negacyclic monomial multiplication (the TFHE rotation unit), and the
 * Galois automorphism (the CKKS automorph unit).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/ntt.h"
#include "math/poly.h"
#include "math/primes.h"

namespace heap::math {
namespace {

constexpr size_t kN = 64;

struct PolyFixture : ::testing::Test {
    uint64_t q = generateNttPrimes(30, kN, 1)[0];
    Rng rng{123};

    std::vector<uint64_t>
    random()
    {
        std::vector<uint64_t> p(kN);
        for (auto& v : p) {
            v = rng.uniform(q);
        }
        return p;
    }
};

TEST_F(PolyFixture, AddSubInverse)
{
    const auto a = random();
    const auto b = random();
    std::vector<uint64_t> c(kN), d(kN);
    polyAdd(a, b, c, q);
    polySub(c, b, d, q);
    EXPECT_EQ(d, a);
}

TEST_F(PolyFixture, NegIsSubFromZero)
{
    const auto a = random();
    std::vector<uint64_t> zero(kN, 0), n1(kN), n2(kN);
    polyNeg(a, n1, q);
    polySub(zero, a, n2, q);
    EXPECT_EQ(n1, n2);
}

TEST_F(PolyFixture, ScalarMulMatchesRepeatedAdd)
{
    const auto a = random();
    std::vector<uint64_t> triple(kN), acc(kN, 0);
    polyMulScalar(a, 3, triple, q);
    for (int i = 0; i < 3; ++i) {
        polyAdd(acc, a, acc, q);
    }
    EXPECT_EQ(triple, acc);
}

TEST_F(PolyFixture, ScalarAccum)
{
    const auto a = random();
    std::vector<uint64_t> acc(kN, 0), expect(kN);
    polyMulScalarAccum(a, 5, acc, q);
    polyMulScalarAccum(a, 7, acc, q);
    polyMulScalar(a, 12, expect, q);
    EXPECT_EQ(acc, expect);
}

TEST_F(PolyFixture, MonomialMulMatchesSchoolbook)
{
    const auto a = random();
    for (uint64_t k : std::initializer_list<uint64_t>{
             0, 1, 5, kN - 1, kN, kN + 3, 2 * kN - 1}) {
        std::vector<uint64_t> viaRot(kN);
        polyMonomialMul(a, k, viaRot, q);
        // Reference: multiply by the monomial X^k with the schoolbook
        // negacyclic convolution (X^{k mod 2N}, sign via X^N = -1).
        std::vector<uint64_t> mono(kN, 0);
        const uint64_t kk = k % (2 * kN);
        if (kk < kN) {
            mono[kk] = 1;
        } else {
            mono[kk - kN] = q - 1;
        }
        const auto expected = negacyclicConvolveSchoolbook(a, mono, q);
        EXPECT_EQ(viaRot, expected) << "k=" << k;
    }
}

TEST_F(PolyFixture, MonomialMulFullPeriod)
{
    // Rotating by 2N must be the identity; by N, negation.
    const auto a = random();
    std::vector<uint64_t> byN(kN), by2N(kN), neg(kN);
    polyMonomialMul(a, kN, byN, q);
    polyMonomialMul(a, 2 * kN, by2N, q);
    polyNeg(a, neg, q);
    EXPECT_EQ(byN, neg);
    EXPECT_EQ(by2N, a);
}

TEST_F(PolyFixture, AutomorphismEvaluationProperty)
{
    // (sigma_t a)(X) = a(X^t): check via evaluation at a 2N-th root of
    // unity in Z_q. a(psi^t) must equal (sigma_t a)(psi).
    const auto a = random();
    const uint64_t psi = minimalPrimitiveRoot2N(q, kN);
    auto evalAt = [&](const std::vector<uint64_t>& p, uint64_t x) {
        uint64_t acc = 0, xp = 1;
        for (size_t i = 0; i < kN; ++i) {
            acc = addMod(acc, mulModNaive(p[i], xp, q), q);
            xp = mulModNaive(xp, x, q);
        }
        return acc;
    };
    for (uint64_t t : std::initializer_list<uint64_t>{3, 5, 2 * kN - 1}) {
        std::vector<uint64_t> sa(kN);
        polyAutomorphism(a, t, sa, q);
        EXPECT_EQ(evalAt(sa, psi), evalAt(a, powMod(psi, t, q)))
            << "t=" << t;
    }
}

TEST_F(PolyFixture, AutomorphismComposition)
{
    // sigma_5(sigma_5(a)) = sigma_25(a).
    const auto a = random();
    std::vector<uint64_t> s5(kN), s55(kN), s25(kN);
    polyAutomorphism(a, 5, s5, q);
    polyAutomorphism(s5, 5, s55, q);
    polyAutomorphism(a, 25 % (2 * kN), s25, q);
    EXPECT_EQ(s55, s25);
}

TEST_F(PolyFixture, AutomorphismRejectsEvenExponent)
{
    const auto a = random();
    std::vector<uint64_t> out(kN);
    EXPECT_THROW(polyAutomorphism(a, 4, out, q), UserError);
}

} // namespace
} // namespace heap::math
