/**
 * @file
 * Thread-local scratch arena: LIFO frame semantics, span stability
 * across chunk growth, and the no-allocation steady state of the hot
 * paths that borrow from it (rescale, gadget apply / external
 * product).
 */

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "math/primes.h"
#include "math/rns.h"
#include "math/scratch.h"
#include "rlwe/gadget.h"

namespace {

using namespace heap;
using namespace heap::math;

TEST(ScratchArena, FramesReleaseInLifoOrder)
{
    ScratchArena& arena = ScratchArena::instance();
    ScratchFrame outer;
    auto a = outer.borrow(100);
    a[0] = 7;
    a[99] = 8;
    {
        ScratchFrame inner;
        auto b = inner.borrow(200);
        b[0] = 1;
        // Inner borrows must not alias the outer frame's live span.
        EXPECT_NE(a.data(), b.data());
        EXPECT_EQ(7u, a[0]);
    }
    // After the inner frame died, the outer span is still intact and
    // the arena hands back the space the inner frame used.
    EXPECT_EQ(7u, a[0]);
    EXPECT_EQ(8u, a[99]);
    auto c = outer.borrow(200);
    c[0] = 2;
    EXPECT_EQ(7u, a[0]);
    (void)arena;
}

TEST(ScratchArena, SpansSurviveChunkGrowth)
{
    ScratchFrame frame;
    // First borrow fits the initial chunk; the huge second borrow
    // forces a fresh chunk. The first span must remain valid (chunks
    // are never recycled while a frame holds marks into them).
    auto small = frame.borrow(64);
    for (size_t i = 0; i < small.size(); ++i) {
        small[i] = i;
    }
    auto huge = frame.borrow(1u << 20);
    huge[0] = 1;
    huge[huge.size() - 1] = 2;
    for (size_t i = 0; i < small.size(); ++i) {
        EXPECT_EQ(i, small[i]);
    }
}

TEST(ScratchArena, BorrowedBlocksAreCacheLineAligned)
{
    ScratchFrame frame;
    for (const size_t words : {1u, 3u, 8u, 100u, 4096u}) {
        auto s = frame.borrow(words);
        EXPECT_EQ(0u,
                  reinterpret_cast<uintptr_t>(s.data()) % 64)
            << words;
        ASSERT_GE(s.size(), words);
    }
    auto sg = frame.borrowSigned(17);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(sg.data()) % 64);
}

TEST(ScratchArena, ArenasAreThreadLocal)
{
    ScratchFrame frame;
    auto mine = frame.borrow(32);
    mine[0] = 42;
    std::thread other([] {
        ScratchFrame f;
        auto theirs = f.borrow(32);
        theirs[0] = 7; // separate arena: cannot clobber ours
    });
    other.join();
    EXPECT_EQ(42u, mine[0]);
}

// The tentpole no-allocation guarantee: once the arena has warmed up,
// repeated passes through the scratch-using hot paths (rescale,
// external product) must not grow it.
TEST(ScratchSteadyState, HotPathsDoNotGrowArenaAfterWarmup)
{
    const size_t n = 256;
    const auto basis = std::make_shared<RnsBasis>(
        n, generateNttPrimes(30, n, 3));
    Rng rng(9);
    const auto sk = rlwe::SecretKey::sampleTernary(basis, rng);
    const rlwe::GadgetParams gadget{.baseBits = 10, .digitsPerLimb = 3};
    const auto C = rlwe::rgswEncryptConstant(sk, 1, gadget, rng);

    std::vector<int64_t> m(n, 0);
    m[0] = 1 << 20;
    auto ct = rlwe::encrypt(sk, rnsFromSigned(basis, 2, m), rng);
    ct.toCoeff();

    auto pass = [&] {
        auto out = rlwe::externalProduct(ct, C);
        RnsPoly p(basis, 3, Domain::Eval);
        p.rescaleLastLimb();
    };

    // Warm up twice (chunk growth and any lazy caches), then the
    // counter must hold steady.
    pass();
    pass();
    const size_t warmed = scratchGrowthCount();
    for (int i = 0; i < 5; ++i) {
        pass();
    }
    EXPECT_EQ(warmed, scratchGrowthCount());
}

} // namespace
