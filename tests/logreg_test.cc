/**
 * @file
 * Application tests: the synthetic MNIST-3v8 dataset, the plaintext
 * HELR pipeline's ~97% accuracy, agreement between the encrypted and
 * plaintext gradient-descent pipelines, and encrypted training that
 * spans a scheme-switching bootstrap.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/logreg.h"

namespace heap::apps {
namespace {

TEST(Dataset, ShapeAndLabels)
{
    Rng rng(1);
    const auto d = makeSyntheticMnist38(200, 196, rng);
    EXPECT_EQ(d.size(), 200u);
    EXPECT_EQ(d.features, 196u);
    size_t pos = 0;
    for (size_t i = 0; i < d.size(); ++i) {
        EXPECT_EQ(d.x[i].size(), 196u);
        for (const double v : d.x[i]) {
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
        }
        ASSERT_TRUE(d.y[i] == 1 || d.y[i] == -1);
        pos += d.y[i] == 1;
    }
    EXPECT_EQ(pos, 100u); // balanced classes
}

TEST(Dataset, SplitPreservesSamples)
{
    Rng rng(2);
    const auto d = makeSyntheticMnist38(100, 16, rng);
    const auto [train, test] = splitDataset(d, 0.8, rng);
    EXPECT_EQ(train.size(), 80u);
    EXPECT_EQ(test.size(), 20u);
    EXPECT_THROW(splitDataset(d, 1.5, rng), UserError);
}

TEST(Dataset, ClassesAreSeparableButOverlapping)
{
    // A trivial mean-difference classifier should beat chance but
    // stay below perfection (the ~97% regime needs learning).
    Rng rng(3);
    const auto d = makeSyntheticMnist38(2000, 196, rng);
    std::vector<double> diff(196, 0.0);
    for (size_t i = 0; i < d.size(); ++i) {
        for (size_t f = 0; f < 196; ++f) {
            diff[f] += d.y[i] * d.x[i][f];
        }
    }
    size_t correct = 0;
    for (size_t i = 0; i < d.size(); ++i) {
        double u = 0;
        for (size_t f = 0; f < 196; ++f) {
            u += diff[f] * d.x[i][f];
        }
        correct += (u >= 0 ? 1 : -1) == d.y[i];
    }
    const double acc =
        static_cast<double>(correct) / static_cast<double>(d.size());
    EXPECT_GT(acc, 0.7);
}

TEST(PlainLr, PolySigmoidMatchesLogisticNearZero)
{
    for (double x : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
        const double ref = 1.0 / (1.0 + std::exp(-x));
        EXPECT_NEAR(polySigmoid3(x), ref, 0.12) << "x=" << x;
    }
    EXPECT_NEAR(polySigmoid3(0.0), 0.5, 1e-12);
}

TEST(PlainLr, ReachesPaperAccuracyOnFullScaleData)
{
    // The paper's Section VI-F.3 observation: ~97% on the 3-vs-8
    // task after 30 iterations of the HELR pipeline. Full 11,982 x
    // 196 dataset, mean-centered labels as in HELR.
    Rng rng(7);
    const auto full = makeSyntheticMnist38(11982 + 1984, 196, rng);
    auto [train, test] = splitDataset(
        full, 11982.0 / static_cast<double>(full.size()), rng);

    PlainLogisticRegression lr(196);
    LrConfig cfg;
    cfg.iterations = 30;
    cfg.learningRate = 4.0;
    cfg.decay = 0.1;
    cfg.featureScale = 0.125;
    cfg.batch = 1024;
    lr.train(train, cfg, rng);
    const double acc = lr.accuracy(test);
    EXPECT_GT(acc, 0.94);
    EXPECT_LT(acc, 1.0);
}

ckks::CkksParams
lrParams(size_t n, size_t levels)
{
    ckks::CkksParams p;
    p.n = n;
    p.limbBits = 30;
    p.levels = levels;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

TEST(EncryptedLr, MatchesPlaintextPipeline)
{
    // One full-precision (degree-3) iteration: the encrypted weights
    // must land on the plaintext pipeline's weights.
    const size_t features = 16, batch = 8;
    ckks::Context ctx(lrParams(256, 7), 555);
    Rng rng(8);
    auto data = makeSyntheticMnist38(batch, features, rng);

    EncryptedLogisticRegression enc(ctx, features, batch);
    const auto batchCt = enc.encryptBatch(data, 0);
    enc.train(batchCt, 1, 1.0);
    const auto wEnc = enc.decryptWeights();

    PlainLogisticRegression plain(features);
    LrConfig cfg;
    cfg.iterations = 1;
    cfg.learningRate = 1.0;
    plain.train(data, cfg, rng);

    for (size_t f = 0; f < features; ++f) {
        EXPECT_NEAR(wEnc[f], plain.weights()[f], 5e-2) << "f=" << f;
    }
    EXPECT_EQ(enc.bootstrapCount(), 0u);
}

TEST(EncryptedLr, TwoIterationsTrackPlaintext)
{
    const size_t features = 16, batch = 8;
    ckks::Context ctx(lrParams(256, 13), 556);
    Rng rng(9);
    auto data = makeSyntheticMnist38(batch, features, rng);

    EncryptedLogisticRegression enc(ctx, features, batch);
    const auto batchCt = enc.encryptBatch(data, 0);
    enc.train(batchCt, 2, 1.0);
    const auto wEnc = enc.decryptWeights();

    PlainLogisticRegression plain(features);
    LrConfig cfg;
    cfg.iterations = 2;
    plain.train(data, cfg, rng);
    for (size_t f = 0; f < features; ++f) {
        EXPECT_NEAR(wEnc[f], plain.weights()[f], 1e-1) << "f=" << f;
    }
}

TEST(EncryptedLr, TrainsAcrossBootstrap)
{
    // Level budget forces a scheme-switching bootstrap between the
    // two iterations (degree-1 sigmoid keeps the ring small).
    const size_t features = 8, batch = 4;
    ckks::Context ctx(lrParams(64, 5), 557);
    boot::SchemeSwitchBootstrapper boot(
        ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});

    Rng rng(10);
    auto data = makeSyntheticMnist38(batch, features, rng);
    EncryptedLogisticRegression enc(ctx, features, batch, &boot, 1);
    const auto batchCt = enc.encryptBatch(data, 0);
    enc.train(batchCt, 2, 1.0);
    EXPECT_GE(enc.bootstrapCount(), 1u);

    // Plaintext reference with the same degree-1 sigmoid.
    std::vector<double> w(features, 0.0);
    for (int it = 0; it < 2; ++it) {
        std::vector<double> grad(features, 0.0);
        for (size_t b = 0; b < batch; ++b) {
            double u = 0;
            for (size_t f = 0; f < features; ++f) {
                u += w[f] * data.x[b][f] * data.y[b];
            }
            const double g = 0.5 - 0.25 * u;
            for (size_t f = 0; f < features; ++f) {
                grad[f] += g * data.y[b] * data.x[b][f];
            }
        }
        for (size_t f = 0; f < features; ++f) {
            w[f] += grad[f] / static_cast<double>(batch);
        }
    }
    const auto wEnc = enc.decryptWeights();
    for (size_t f = 0; f < features; ++f) {
        EXPECT_NEAR(wEnc[f], w[f], 0.15) << "f=" << f;
    }
}

TEST(EncryptedLr, MiniBatchEpochsTrackPlaintext)
{
    // Two encrypted batches, one epoch: must match the plaintext
    // mini-batch pipeline stepping through the same 16 samples.
    const size_t features = 16, batch = 8;
    ckks::Context ctx(lrParams(256, 13), 559);
    Rng rng(11);
    const auto data = makeSyntheticMnist38(2 * batch, features, rng);

    EncryptedLogisticRegression enc(ctx, features, batch);
    const std::vector<ckks::Ciphertext> batches = {
        enc.encryptBatch(data, 0), enc.encryptBatch(data, batch)};
    enc.trainEpochs(batches, 1, 1.0);
    const auto wEnc = enc.decryptWeights();

    PlainLogisticRegression plain(features);
    LrConfig cfg;
    cfg.iterations = 2;
    cfg.batch = batch;
    plain.train(data, cfg, rng);
    for (size_t f = 0; f < features; ++f) {
        EXPECT_NEAR(wEnc[f], plain.weights()[f], 1e-1) << "f=" << f;
    }
}

TEST(EncryptedLr, BudgetDrivenRefreshKeepsAccuracy)
{
    // With nine levels, two degree-1 iterations never hit the level
    // floor, so the control run must not bootstrap. Inflating the
    // guard's noise margin makes the tracked budget report exhaustion
    // mid-training; refreshIfNeeded must then bootstrap on the budget
    // signal alone — and the weights must still land on the same
    // plaintext reference as the uninterrupted run.
    const size_t features = 8, batch = 4;
    Rng rng(10);
    const auto data = makeSyntheticMnist38(batch, features, rng);

    auto runTraining = [&](double marginSigmas, size_t& bootstraps) {
        ckks::Context ctx(lrParams(64, 9), 557);
        NoiseGuardConfig cfg;
        cfg.marginSigmas = marginSigmas;
        ctx.setNoiseGuard(cfg); // policy stays Off: tracking only
        boot::SchemeSwitchBootstrapper boot(
            ctx, rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6});
        EncryptedLogisticRegression enc(ctx, features, batch, &boot, 1);
        enc.train(enc.encryptBatch(data, 0), 2, 1.0);
        bootstraps = enc.bootstrapCount();
        return enc.decryptWeights();
    };

    size_t controlBoots = 0, tightBoots = 0;
    const auto wControl = runTraining(6.0, controlBoots);
    const auto wTight = runTraining(1e30, tightBoots);
    EXPECT_EQ(controlBoots, 0u);
    EXPECT_GE(tightBoots, 1u);

    // Same degree-1 plaintext reference as TrainsAcrossBootstrap.
    std::vector<double> w(features, 0.0);
    for (int it = 0; it < 2; ++it) {
        std::vector<double> grad(features, 0.0);
        for (size_t b = 0; b < batch; ++b) {
            double u = 0;
            for (size_t f = 0; f < features; ++f) {
                u += w[f] * data.x[b][f] * data.y[b];
            }
            const double g = 0.5 - 0.25 * u;
            for (size_t f = 0; f < features; ++f) {
                grad[f] += g * data.y[b] * data.x[b][f];
            }
        }
        for (size_t f = 0; f < features; ++f) {
            w[f] += grad[f] / static_cast<double>(batch);
        }
    }
    for (size_t f = 0; f < features; ++f) {
        EXPECT_NEAR(wControl[f], w[f], 0.15) << "f=" << f;
        EXPECT_NEAR(wTight[f], w[f], 0.15) << "f=" << f;
    }
}

TEST(EncryptedLr, RejectsBadLayout)
{
    ckks::Context ctx(lrParams(256, 7), 558);
    EXPECT_THROW(EncryptedLogisticRegression(ctx, 16, 4), UserError);
    EXPECT_THROW(EncryptedLogisticRegression(ctx, 12, 8), UserError);
}

} // namespace
} // namespace heap::apps
