/**
 * @file
 * Staged-pipeline equivalence matrix: the BootstrapService's
 * front/rotate/finish pipeline must return ciphertexts byte-identical
 * to sequential DistributedBootstrapper::bootstrap() across every
 * combination of seed {7, 21, 42} x workers {1, 2, 8} x link
 * condition {fault-free, fault cocktail, dead secondary}, while the
 * per-stage accounting proves the stages genuinely overlapped
 * (summed occupancy > 1 with two or more workers) and stayed
 * strictly sequential with one. Plus the drain/shutdown regressions:
 * requests resident in intermediate stage queues at drain or
 * shutdown time must complete — minimum queue bounds force the
 * backpressure paths and must never deadlock.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "serve/service.h"

namespace heap::serve {
namespace {

// Same miniature parameter set as serve_test.cc / the fault suite.
ckks::CkksParams
pipelineParams()
{
    ckks::CkksParams p;
    p.n = 64;
    p.limbBits = 30;
    p.levels = 2;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 9, .digitsPerLimb = 4};
    p.secretHamming = 16;
    return p;
}

constexpr auto kBrGadget =
    rlwe::GadgetParams{.baseBits = 6, .digitsPerLimb = 6};

enum class Link { FaultFree, Cocktail, DeadSecondary };

const char*
linkName(Link l)
{
    switch (l) {
    case Link::FaultFree:
        return "fault-free";
    case Link::Cocktail:
        return "fault-cocktail";
    case Link::DeadSecondary:
        return "dead-secondary";
    }
    return "";
}

std::vector<ckks::Ciphertext>
makeInputs(const ckks::Context& ctx, ckks::Evaluator& ev, size_t count)
{
    std::vector<ckks::Ciphertext> inputs;
    for (size_t r = 0; r < count; ++r) {
        std::vector<ckks::Complex> z;
        for (size_t i = 0; i < 16; ++i) {
            const double t = static_cast<double>(i);
            const double s = static_cast<double>(r);
            z.emplace_back(0.8 * std::cos(0.4 * t + 0.2 * s),
                           0.3 * std::sin(0.3 * t - 0.2 * s));
        }
        auto ct = ctx.encrypt(std::span<const ckks::Complex>(z));
        ev.dropToLevel(ct, 1);
        inputs.push_back(std::move(ct));
    }
    return inputs;
}

void
applyLink(boot::DistributedBootstrapper& dist, Link link, uint64_t seed)
{
    if (link == Link::Cocktail) {
        // PR 3's fault cocktail on every link; the retry protocol
        // runs unchanged inside the rotate stage.
        boot::FaultSpec spec;
        spec.drop = 0.2;
        spec.bitflip = 0.15;
        spec.truncate = 0.1;
        spec.duplicate = 0.15;
        spec.reorder = 0.2;
        spec.delay = 0.25;
        spec.seed = seed;
        dist.setFaults(spec);
    } else if (link == Link::DeadSecondary) {
        boot::FaultSpec dead;
        dead.drop = 1.0;
        dist.setSecondaryFaults(1, dead);
    }
}

std::vector<std::vector<uint8_t>>
sequentialBytes(uint64_t ctxSeed, size_t secondaries, size_t count)
{
    ckks::Context ctx(pipelineParams(), ctxSeed);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, secondaries, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, count);
    std::vector<std::vector<uint8_t>> out;
    for (const auto& in : inputs) {
        out.push_back(ckks::saveCiphertext(dist.bootstrap(in)));
    }
    return out;
}

struct PipelineRun {
    std::vector<std::vector<uint8_t>> bytes;
    ServiceMetrics metrics;
};

/**
 * Runs `count` requests through a pipelined service: submitted from
 * four client threads in a seed-shuffled order while paused (so the
 * batch schedule packs across requests), then resumed and awaited.
 */
PipelineRun
pipelineRun(uint64_t ctxSeed, size_t secondaries, size_t count,
            size_t workers, Link link)
{
    // Identical construction order to sequentialBytes(): same ctx
    // seed and RNG call sequence => same keys and same inputs.
    ckks::Context ctx(pipelineParams(), ctxSeed);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, secondaries, kBrGadget);
    applyLink(dist, link, ctxSeed);
    const auto inputs = makeInputs(ctx, ev, count);

    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.maxQueuedRequests = count;
    cfg.maxBatchItems = 48; // < n = 64: batches straddle requests
    BootstrapService svc(dist, cfg);

    svc.pause();
    std::vector<std::shared_ptr<BootstrapTicket>> tickets(count);
    std::vector<size_t> order(count);
    for (size_t r = 0; r < count; ++r) {
        order[r] = r;
    }
    std::shuffle(order.begin(), order.end(),
                 std::mt19937(static_cast<unsigned>(ctxSeed)));
    constexpr size_t kClients = 4;
    std::vector<std::thread> pool;
    for (size_t c = 0; c < kClients; ++c) {
        pool.emplace_back([&, c] {
            for (size_t k = c; k < count; k += kClients) {
                const size_t r = order[k];
                tickets[r] = svc.submit(inputs[r]);
            }
        });
    }
    for (auto& t : pool) {
        t.join();
    }
    svc.resume();

    PipelineRun run;
    run.bytes.resize(count);
    for (size_t r = 0; r < count; ++r) {
        run.bytes[r] = ckks::saveCiphertext(tickets[r]->wait());
    }
    run.metrics = svc.metrics();
    return run;
}

/** Stage accounting that must hold after every complete run. */
void
checkPipelineAccounting(const PipelineRun& run, size_t count,
                        size_t workers, const char* where)
{
    const PipelineMetrics& pm = run.metrics.pipeline;
    const StageMetrics& front = pm.stage(Stage::Front);
    const StageMetrics& rotate = pm.stage(Stage::Rotate);
    const StageMetrics& finish = pm.stage(Stage::Finish);

    // Conservation: every request passes every stage exactly once,
    // every extracted item passes the rotate queue exactly once, and
    // nothing is left resident in any stage queue.
    EXPECT_EQ(front.entered, count) << where;
    EXPECT_EQ(front.tasks, count) << where;
    EXPECT_EQ(rotate.entered, count * 64) << where;
    EXPECT_EQ(rotate.tasks, run.metrics.batches) << where;
    EXPECT_EQ(finish.entered, count) << where;
    EXPECT_EQ(finish.tasks, count) << where;
    EXPECT_EQ(front.queueDepth, 0u) << where;
    EXPECT_EQ(rotate.queueDepth, 0u) << where;
    EXPECT_EQ(finish.queueDepth, 0u) << where;
    EXPECT_GT(pm.windowMs, 0.0) << where;

    // The tentpole claim: with two or more workers the stage/lane
    // busy intervals genuinely overlap in wall-clock time (summed
    // occupancy above 1), while a single worker is provably
    // sequential (the sum can never exceed its busy fraction).
    if (workers >= 2) {
        EXPECT_GT(pm.overlap, 1.0) << where;
    } else {
        EXPECT_LE(pm.overlap, 1.005) << where;
    }
}

TEST(PipelineEquivalence, MatrixByteIdenticalAcrossSeedsWorkersLinks)
{
    constexpr size_t kSecondaries = 2;
    constexpr size_t kRequests = 4;
    for (const uint64_t seed : {7ull, 21ull, 42ull}) {
        const auto want =
            sequentialBytes(seed, kSecondaries, kRequests);
        for (const size_t workers : {1ul, 2ul, 8ul}) {
            for (const Link link : {Link::FaultFree, Link::Cocktail,
                                    Link::DeadSecondary}) {
                const auto run = pipelineRun(seed, kSecondaries,
                                             kRequests, workers, link);
                const std::string where =
                    "seed " + std::to_string(seed) + ", "
                    + std::to_string(workers) + " workers, "
                    + linkName(link);
                for (size_t r = 0; r < kRequests; ++r) {
                    EXPECT_TRUE(run.bytes[r] == want[r])
                        << where << ", request " << r;
                }
                EXPECT_EQ(run.metrics.completed, kRequests) << where;
                EXPECT_EQ(run.metrics.failed, 0u) << where;
                checkPipelineAccounting(run, kRequests, workers,
                                        where.c_str());
                if (link == Link::DeadSecondary) {
                    EXPECT_GT(run.metrics.reclaimedBatches, 0u)
                        << where;
                }
            }
        }
    }
}

// A single cheap case for CI smoke runs (ctest -R PipelineSmoke):
// byte-identity plus real stage overlap on two workers.
TEST(PipelineSmoke, ByteIdenticalWithStageOverlap)
{
    constexpr uint64_t kSeed = 7;
    const auto want = sequentialBytes(kSeed, 1, 2);
    const auto run = pipelineRun(kSeed, 1, 2, 2, Link::FaultFree);
    for (size_t r = 0; r < want.size(); ++r) {
        EXPECT_TRUE(run.bytes[r] == want[r]) << "request " << r;
    }
    checkPipelineAccounting(run, 2, 2, "smoke");
}

// ---------------------------------------------------------------- //
// Drain/shutdown with requests resident in stage queues            //
// ---------------------------------------------------------------- //

/** Minimum stage bounds force every backpressure path. */
ServiceConfig
tightConfig(size_t workers, size_t count)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.maxQueuedRequests = count;
    cfg.maxBatchItems = 48;
    cfg.rotateQueueRequests = 1; // one request rotating at a time
    cfg.finishQueueRequests = 1; // one request awaiting repack
    return cfg;
}

TEST(PipelineDrain, DrainCompletesWithItemsResidentInStageQueues)
{
    ckks::Context ctx(pipelineParams(), 42);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 4);

    BootstrapService svc(dist, tightConfig(2, 4));
    svc.pause();
    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    for (const auto& in : inputs) {
        tickets.push_back(svc.submit(in));
    }
    // At resume the whole backlog sits in the front queue; with both
    // downstream bounds at 1 the workers must repeatedly stall and
    // hand off between stages. drain() must still complete all four.
    svc.resume();
    svc.drain();
    for (const auto& t : tickets) {
        EXPECT_TRUE(t->ready());
    }
    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.completed, 4u);
    EXPECT_EQ(m.failed, 0u);
    checkPipelineAccounting(PipelineRun{{}, m}, 4, 2, "drain");
    // The tight bounds were actually exercised.
    EXPECT_GT(m.pipeline.stage(Stage::Front).backpressured, 0u);
}

TEST(PipelineDrain, ShutdownWhileStagesHoldWork)
{
    ckks::Context ctx(pipelineParams(), 7);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 1, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 3);

    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    BootstrapService svc(dist, tightConfig(1, 3));
    for (const auto& in : inputs) {
        tickets.push_back(svc.submit(in));
    }
    // Immediate shutdown: requests are mid-pipeline (front queue,
    // rotate pool, finish queue). Every accepted request must still
    // complete before the workers join; none may be lost in a queue.
    svc.shutdown();
    for (const auto& t : tickets) {
        ASSERT_TRUE(t->ready());
        EXPECT_GT(t->wait().slots, 0u);
    }
    EXPECT_EQ(svc.metrics().completed, 3u);
    EXPECT_EQ(svc.metrics().pipeline.stage(Stage::Finish).queueDepth,
              0u);
}

TEST(PipelineDrain, DestructorDrainsBackloggedStageQueues)
{
    ckks::Context ctx(pipelineParams(), 21);
    ckks::Evaluator ev(ctx);
    boot::DistributedBootstrapper dist(ctx, 2, kBrGadget);
    const auto inputs = makeInputs(ctx, ev, 4);

    std::vector<std::shared_ptr<BootstrapTicket>> tickets;
    {
        BootstrapService svc(dist, tightConfig(2, 4));
        svc.pause();
        for (const auto& in : inputs) {
            tickets.push_back(svc.submit(in));
        }
        svc.resume();
        // No wait, no explicit shutdown: destruction runs while the
        // stage queues still hold requests.
    }
    for (const auto& t : tickets) {
        EXPECT_TRUE(t->ready());
        EXPECT_GT(t->wait().slots, 0u);
    }
}

} // namespace
} // namespace heap::serve
