/**
 * @file
 * Client-facing request types of the bootstrap serving runtime:
 * submission options (priority, deadline) and the ticket a client
 * blocks on for its refreshed ciphertext plus a per-request report
 * (queue/service latency, batches spanned, deadline outcome, noise
 * budget of the returned ciphertext).
 */

#ifndef HEAP_SERVE_REQUEST_H
#define HEAP_SERVE_REQUEST_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "ckks/context.h"
#include "common/check.h"

namespace heap::serve {

/** Final per-request accounting; forward-declared for the hook. */
struct RequestReport;

/**
 * Retryable pod-level failure: an injected chaos fault or a pod
 * crash, as opposed to a UserError (which would fail identically on
 * every replica). The cluster's failover layer re-submits requests
 * that fail with a PodError to the next healthy pod; one reaching a
 * client means every candidate was exhausted.
 */
class PodError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/** Per-request scheduling knobs. */
struct SubmitOptions {
    /** Larger runs sooner; ties break earliest-deadline-first, then
     *  arrival order. */
    int priority = 0;
    /** Soft completion deadline relative to submission, in
     *  milliseconds. Missing it is *accounted*, never dropped: FHE
     *  results stay correct, the miss shows up in the report and the
     *  service counters. */
    std::optional<double> deadlineMs;
    /** Owning tenant (0 = untenanted). Purely bookkeeping at the
     *  service level; the cluster layer stamps it. */
    uint64_t tenantId = 0;
    /** Weighted-fair virtual-service tag (lower = served sooner,
     *  ahead of priority); see ItemQueue::addRequest. The cluster
     *  layer stamps it from the TenantRegistry; direct service users
     *  leave it 0 and get the classic priority/EDF order. */
    double fairRank = 0.0;
    /**
     * Completion hook, invoked exactly once after the ticket settles
     * (fulfil or fail), with `ok` = false on failure. Runs on a
     * service worker thread and MAY hold the service lock: the hook
     * must not call back into the service (the cluster layer uses it
     * for tenant and load bookkeeping only).
     */
    std::function<void(const RequestReport&, bool ok)> onDone;
};

/** Final per-request accounting, valid once the ticket is done. */
struct RequestReport {
    uint64_t id = 0;
    double queueMs = 0;   ///< submission -> first batch dispatched
    double totalMs = 0;   ///< submission -> result ready
    bool deadlineMissed = false;
    size_t batches = 0;   ///< blind-rotate batches this request rode
    /** Completion sequence number (service-wide, 1-based): request k
     *  finished k-th. */
    uint64_t completionSeq = 0;
    /** Pod index that produced the result, for cluster-served
     *  requests; -1 when the request was served by a bare
     *  BootstrapService (no cluster in front of it). */
    int servedPod = -1;
    /** Dispatch attempts the request took: 1 = no failover; > 1 means
     *  a pod failed it retryably and the cluster re-submitted. */
    uint32_t attempts = 1;
    /** Remaining noise budget (bits to predicted decryption failure)
     *  of the returned ciphertext; infinity when untracked. */
    double budgetBits = 0;
    /** Predicted precision log2(scale/sigma) of the returned
     *  ciphertext; infinity when untracked. */
    double precisionBits = 0;
};

/**
 * Completion handle for one submitted request, parameterized on the
 * result the serving class returns: a refreshed ckks::Ciphertext for
 * bootstrap requests (BootstrapTicket), a folded rlwe::Ciphertext
 * answer for encrypted-lookup requests (PirTicket, serve/pir_service.h).
 * Created by the service's submit(); the service fulfils it exactly
 * once.
 */
template <typename ResultT> class ResultTicket {
  public:
    /** Blocks until the request completes; returns the result or
     *  rethrows the failure. The result may be consumed once: a
     *  second wait() on a fulfilled ticket throws a UserError instead
     *  of dereferencing the moved-out result (a failed ticket
     *  rethrows its error on every call). */
    ResultT
    wait()
    {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] { return done_; });
        if (error_) {
            std::rethrow_exception(error_);
        }
        HEAP_CHECK(result_.has_value(),
                   "ResultTicket::wait() called twice: the result "
                   "was already consumed by an earlier wait()");
        ResultT out = std::move(*result_);
        result_.reset();
        return out;
    }

    bool
    ready() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return done_;
    }

    /** The per-request report; valid once ready() (also on failure,
     *  with timing fields filled). */
    RequestReport
    report() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return report_;
    }

    /** The failure, once ready(); nullptr on success (or before
     *  completion). Lets the cluster classify a failed attempt
     *  without consuming it via wait(). */
    std::exception_ptr
    error() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return error_;
    }

  private:
    friend class BootstrapService;
    friend class PirService;
    friend class ServiceCluster;

    void
    fulfil(ResultT&& out, const RequestReport& report)
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            result_ = std::move(out);
            report_ = report;
            done_ = true;
        }
        cv_.notify_all();
    }

    void
    fail(std::exception_ptr error, const RequestReport& report)
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            error_ = std::move(error);
            report_ = report;
            done_ = true;
        }
        cv_.notify_all();
    }

    mutable std::mutex m_;
    std::condition_variable cv_;
    bool done_ = false;
    std::optional<ResultT> result_;
    std::exception_ptr error_;
    RequestReport report_;
};

/** Bootstrap requests resolve to a refreshed CKKS ciphertext. */
using BootstrapTicket = ResultTicket<ckks::Ciphertext>;

/** Encrypted-lookup (PIR) requests resolve to one RLWE answer. */
using PirTicket = ResultTicket<rlwe::Ciphertext>;

} // namespace heap::serve

#endif // HEAP_SERVE_REQUEST_H
