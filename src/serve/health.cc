#include "serve/health.h"

#include <cmath>

#include "common/check.h"

namespace heap::serve {

const char*
breakerStateName(BreakerState s)
{
    switch (s) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig cfg) : cfg_(cfg)
{
    HEAP_CHECK(cfg.window >= 1, "breaker window must be >= 1");
    HEAP_CHECK(cfg.minSamples >= 1 && cfg.minSamples <= cfg.window,
               "breaker minSamples must be in [1, window]");
    HEAP_CHECK(cfg.failureThreshold > 0.0 && cfg.failureThreshold <= 1.0,
               "breaker failureThreshold must be in (0, 1]");
    HEAP_CHECK(cfg.halfOpenCanaryFraction >= 0.0
                   && cfg.halfOpenCanaryFraction <= 1.0,
               "breaker halfOpenCanaryFraction must be in [0, 1]");
    ring_.assign(cfg.window, 0);
}

BreakerState
CircuitBreaker::state() const
{
    return wedged_ ? BreakerState::Open : state_;
}

void
CircuitBreaker::openLocked()
{
    state_ = BreakerState::Open;
    probesInFlight_ = 0;
    halfOpenDecisions_ = 0;
    probesAdmitted_ = 0;
    skips_ = 0;
    windowCount_ = 0;
    windowFailures_ = 0;
    ringNext_ = 0;
    ++opens_;
}

CircuitBreaker::Gate
CircuitBreaker::gate()
{
    if (wedged_) {
        // Wedged pods are never probed: a paused/stuck pod would
        // accept the probe and sit on it. Progress (any completion)
        // clears the wedge instead.
        ++skippedRouting_;
        return Gate{false, false};
    }
    switch (state_) {
    case BreakerState::Closed:
        return Gate{true, false};
    case BreakerState::Open:
        if (++skips_ > cfg_.probeAfterSkips) {
            state_ = BreakerState::HalfOpen;
            halfOpenDecisions_ = 0;
            probesAdmitted_ = 0;
            probesInFlight_ = 0;
            skips_ = 0;
            // This decision is the episode's first HalfOpen decision:
            // fall through to the canary admission below (which
            // always admits it — ceil(1 * f) = 1 for any f > 0, and
            // the legacy mode has no probe in flight yet).
            return halfOpenGate();
        }
        ++skippedRouting_;
        return Gate{false, false};
    case BreakerState::HalfOpen:
        return halfOpenGate();
    }
    return Gate{false, false};
}

CircuitBreaker::Gate
CircuitBreaker::halfOpenGate()
{
    ++halfOpenDecisions_;
    const double f = cfg_.halfOpenCanaryFraction;
    bool admit = false;
    if (f <= 0.0) {
        // Legacy: exactly one probe outstanding; a cancelled probe's
        // replacement is admitted on the next decision.
        admit = probesInFlight_ == 0;
    } else {
        // Deterministic stride: the k-th HalfOpen decision probes
        // when ceil(k * f) exceeds the episode's admissions so far,
        // i.e. an f-fraction of decisions carry a canary, starting
        // with the first.
        const auto due = static_cast<uint64_t>(
            std::ceil(static_cast<double>(halfOpenDecisions_) * f));
        admit = probesAdmitted_ < due;
    }
    if (admit) {
        ++probesInFlight_;
        ++probesAdmitted_;
        ++probes_;
        return Gate{true, true};
    }
    ++skippedRouting_;
    return Gate{false, false};
}

void
CircuitBreaker::cancelProbe()
{
    HEAP_ASSERT(state_ == BreakerState::HalfOpen
                    && probesInFlight_ > 0,
                "cancelProbe without an admitted probe");
    --probesInFlight_;
    if (probesInFlight_ > 0) {
        // Fraction mode with other canaries still flying: they will
        // resolve the episode.
        return;
    }
    state_ = BreakerState::Open;
    // Refill the skip budget: the very next routing decision may
    // probe again (the cancellation was the router's fault, not the
    // pod's).
    skips_ = cfg_.probeAfterSkips;
}

void
CircuitBreaker::onOutcome(bool ok, bool probe)
{
    if (ok) {
        ++successes_;
    } else {
        ++failures_;
    }
    // Any completion is progress: the pod is not wedged.
    staleDecisions_ = 0;
    if (wedged_) {
        wedged_ = false;
        ++closes_;
    }
    if (probe) {
        if (probesInFlight_ > 0) {
            --probesInFlight_;
        }
        if (state_ != BreakerState::HalfOpen) {
            // The breaker already moved on (wedge cleared it, another
            // canary closed or reopened it); the outcome still
            // counted in the totals above.
            return;
        }
        if (ok) {
            // First canary success closes; stragglers from the same
            // episode land in the branch above.
            state_ = BreakerState::Closed;
            probesInFlight_ = 0;
            halfOpenDecisions_ = 0;
            probesAdmitted_ = 0;
            windowCount_ = 0;
            windowFailures_ = 0;
            ringNext_ = 0;
            skips_ = 0;
            ++closes_;
        } else {
            openLocked();
        }
        return;
    }
    if (state_ != BreakerState::Closed) {
        // Straggler outcome from before the breaker opened: totals
        // only, the probe decides the state.
        return;
    }
    // Rolling window update.
    const uint8_t bit = ok ? 0 : 1;
    if (windowCount_ == ring_.size()) {
        windowFailures_ -= ring_[ringNext_];
    } else {
        ++windowCount_;
    }
    ring_[ringNext_] = bit;
    windowFailures_ += bit;
    ringNext_ = (ringNext_ + 1) % ring_.size();
    if (windowCount_ >= cfg_.minSamples
        && static_cast<double>(windowFailures_)
               >= cfg_.failureThreshold
                      * static_cast<double>(windowCount_)) {
        openLocked();
    }
}

void
CircuitBreaker::noteDecision(bool backlog)
{
    if (cfg_.wedgeDecisions == 0) {
        return;
    }
    if (!backlog) {
        staleDecisions_ = 0;
        return;
    }
    if (++staleDecisions_ >= cfg_.wedgeDecisions && !wedged_) {
        wedged_ = true;
        ++wedgeOpens_;
        ++opens_;
    }
}

BreakerStats
CircuitBreaker::stats() const
{
    BreakerStats s;
    s.state = state();
    s.wedged = wedged_;
    s.successes = successes_;
    s.failures = failures_;
    s.windowCount = windowCount_;
    s.windowFailures = windowFailures_;
    s.opens = opens_;
    s.wedgeOpens = wedgeOpens_;
    s.probes = probes_;
    s.closes = closes_;
    s.skippedRouting = skippedRouting_;
    s.probesInFlight = probesInFlight_;
    return s;
}

} // namespace heap::serve
