/**
 * @file
 * Bootstrapping-key cache for multi-tenant serving.
 *
 * HEAP's scheme-switching bootstrap needs ~18x less key material than
 * conventional CKKS bootstrapping (Section III-C; table_keysizes) —
 * the paper's own argument that per-tenant bootstrapping keys are
 * cacheable at serving scale, and ARK (PAPERS.md) makes exactly this
 * inter-operation key reuse the centerpiece of accelerator
 * throughput. This cache models the key-residency layer of one pod:
 * which tenants' blind-rotate/packing key sets are resident in pod
 * memory (HBM in the paper's deployment), LRU-evicted under a byte
 * capacity, with exact hit/miss/eviction/byte accounting.
 *
 * Residency is what is modeled; the cryptographic keys themselves are
 * pod-shared in the functional build (every pod is keyed identically,
 * as in the paper's deployment where each FPGA is loaded with the
 * same RTL and keys), which is what keeps cluster outputs
 * byte-identical to the single-pod path. A miss therefore costs
 * modeled key-load bytes, never correctness.
 *
 * Thread-safe: the cluster touches one pod's cache from many client
 * threads; all state is guarded by an internal mutex.
 */

#ifndef HEAP_SERVE_KEYCACHE_H
#define HEAP_SERVE_KEYCACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace heap::serve {

/** Point-in-time counters of one BootstrappingKeyCache. */
struct KeyCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;    ///< every miss loads the tenant's keys
    uint64_t evictions = 0; ///< tenants displaced to make room
    uint64_t bytesLoaded = 0;  ///< key bytes fetched on misses
    uint64_t bytesEvicted = 0; ///< key bytes displaced by evictions
    size_t residentTenants = 0;
    size_t residentBytes = 0;
    size_t capacityBytes = 0;

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(hits)
                         / static_cast<double>(total);
    }
};

/**
 * Capacity-bounded LRU cache of per-tenant bootstrapping-key sets,
 * keyed by tenant id and charged in bytes.
 */
class BootstrappingKeyCache {
  public:
    /** @param capacityBytes total key bytes the pod keeps resident. */
    explicit BootstrappingKeyCache(size_t capacityBytes);

    /**
     * Marks the tenant's keys as used "now". Returns true on a hit
     * (keys already resident; moved to most-recently-used). On a miss
     * the keys are loaded: least-recently-used tenants are evicted
     * until `keyBytes` fits, then the tenant becomes resident at the
     * MRU position. `keyBytes` must not exceed the capacity and must
     * be stable per tenant (the charge of a resident tenant is the
     * one it was loaded with).
     */
    bool touch(uint64_t tenantId, size_t keyBytes);

    /** Whether the tenant's keys are currently resident. */
    bool contains(uint64_t tenantId) const;

    /** Resident tenants, least-recently-used first (for tests). */
    std::vector<uint64_t> lruOrder() const;

    KeyCacheStats stats() const;

  private:
    struct Entry {
        uint64_t tenantId = 0;
        size_t bytes = 0;
    };

    mutable std::mutex m_;
    size_t capacityBytes_;
    size_t residentBytes_ = 0;
    /** Front = least recently used, back = most recently used. */
    std::list<Entry> lru_;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
    uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
    uint64_t bytesLoaded_ = 0, bytesEvicted_ = 0;
};

/** Element-wise sum of per-pod cache stats (cluster roll-up).
 *  capacityBytes and resident figures add across pods. */
KeyCacheStats sumStats(const std::vector<KeyCacheStats>& stats);

} // namespace heap::serve

#endif // HEAP_SERVE_KEYCACHE_H
