#include "serve/pipeline.h"

#include <algorithm>

namespace heap::serve {

const char*
stageName(Stage s)
{
    switch (s) {
    case Stage::Front:
        return "front";
    case Stage::Rotate:
        return "rotate";
    case Stage::Finish:
        return "finish";
    }
    HEAP_ASSERT(false, "bad stage");
    return "";
}

void
PipelineBoard::enqueued(Stage s, size_t units)
{
    Counters& c = at(s);
    c.entered += units;
    c.depth += units;
    c.maxDepth = std::max(c.maxDepth, c.depth);
}

void
PipelineBoard::dequeued(Stage s, size_t units)
{
    Counters& c = at(s);
    HEAP_ASSERT(c.depth >= units, "stage queue depth underflow");
    c.depth -= units;
}

void
PipelineBoard::setDepth(Stage s, size_t depth)
{
    Counters& c = at(s);
    c.depth = depth;
    c.maxDepth = std::max(c.maxDepth, depth);
}

void
PipelineBoard::taskStarted(Stage s, double nowMs, double readyMs)
{
    at(s).stallMs += std::max(0.0, nowMs - readyMs);
    firstStartMs_ = std::min(firstStartMs_, nowMs);
}

void
PipelineBoard::taskFinished(Stage s, double startMs, double endMs)
{
    Counters& c = at(s);
    ++c.tasks;
    c.busyMs += std::max(0.0, endMs - startMs);
    lastEndMs_ = std::max(lastEndMs_, endMs);
}

void
PipelineBoard::backpressured(Stage s)
{
    ++at(s).backpressured;
}

PipelineMetrics
PipelineBoard::snapshot() const
{
    PipelineMetrics m;
    m.windowMs = lastEndMs_ > firstStartMs_ ? lastEndMs_ - firstStartMs_
                                            : 0.0;
    for (size_t i = 0; i < kStageCount; ++i) {
        const Counters& c = c_[i];
        StageMetrics& s = m.stages[i];
        s.name = stageName(static_cast<Stage>(i));
        s.entered = c.entered;
        s.tasks = c.tasks;
        s.queueDepth = c.depth;
        s.maxQueueDepth = c.maxDepth;
        s.busyMs = c.busyMs;
        s.stallMs = c.stallMs;
        s.occupancy = m.windowMs > 0 ? c.busyMs / m.windowMs : 0.0;
        s.backpressured = c.backpressured;
        m.overlap += s.occupancy;
    }
    return m;
}

} // namespace heap::serve
