/**
 * @file
 * ServiceCluster — sharded multi-tenant serving across multiple
 * BootstrapService pods (the ROADMAP's "millions of users"
 * milestone).
 *
 * Each pod is one BootstrapService over its own
 * DistributedBootstrapper (the paper's 8-FPGA group). The cluster
 * routes a tenant's requests to a stable preferred pod (consistent
 * hash of the tenant id), which keeps that tenant's bootstrapping
 * keys hot in the pod's BootstrappingKeyCache; when the preferred
 * pod's admission window is full, the request spills to the pod with
 * the least modeled outstanding load that still has room. If every
 * pod is full, the request is rejected (cluster-level backpressure —
 * bounded memory, never OOM).
 *
 * Tenancy: admission consults the TenantRegistry's per-tenant quota
 * and stamps each request with the registry's weighted-fair virtual
 * tag, its tenant's base priority, and a completion hook that settles
 * the tenant and load accounting; the pod's ItemQueue then serves
 * contending tenants in weight proportion (see tenant.h).
 *
 * Determinism: routing never changes what is computed, only where —
 * every pod carries byte-identical key material in the functional
 * build (same context seed), so a cluster-served bootstrap is
 * byte-identical to the single-pod path. tests/cluster_test.cc pins
 * this for seeds {7, 21, 42}.
 *
 * Thread-safe: submit() may be called from many client threads. The
 * cluster's own mutex guards only its counters and modeled-load
 * table, and is never held across a pod or registry call, so it
 * cannot deadlock against the service locks or completion hooks.
 */

#ifndef HEAP_SERVE_CLUSTER_H
#define HEAP_SERVE_CLUSTER_H

#include <limits>
#include <memory>
#include <vector>

#include "serve/keycache.h"
#include "serve/service.h"
#include "serve/tenant.h"

namespace heap::serve {

/** Cluster construction knobs. */
struct ClusterConfig {
    /** Per-pod service configuration (workers, admission cap, batch
     *  cap, stage bounds). Applied to every pod. */
    ServiceConfig pod;
    /** Per-pod bootstrapping-key cache capacity, in bytes (modeled
     *  residency accounting, not a real allocation). The default is
     *  8 GiB of pod key memory — roughly four of the paper's ~1.8 GB
     *  scheme-switching key sets per pod. */
    size_t keyCacheBytes = size_t{8} << 30;
    /** Key-footprint charge for tenants whose spec does not set one;
     *  0 = the cost model's per-pod key-read bytes (keyReadBytes()),
     *  or 1 MiB without a model. */
    size_t defaultTenantKeyBytes = 0;
    /** Optional accelerator cost model: drives the pods' batch
     *  sizing, the spill policy's modeled load, and the autoscaling
     *  oracle. Also installed as pod.costModel when that is null. */
    const hw::BootstrapModel* costModel = nullptr;
};

/** Cluster-wide metrics snapshot (metrics()). */
struct ClusterMetrics {
    // Cluster-level admission.
    uint64_t submitted = 0;        ///< accepted by some pod
    uint64_t rejectedQuota = 0;    ///< tenant quota at admission
    uint64_t rejectedCapacity = 0; ///< every pod full
    // Routing.
    uint64_t routedPreferred = 0; ///< landed on the consistent pod
    uint64_t spilled = 0;         ///< diverted by a full preferred pod
    // Pod roll-up.
    uint64_t completed = 0;
    uint64_t failed = 0;
    std::vector<ServiceMetrics> pods;
    std::vector<double> podModeledLoadMs; ///< outstanding, per pod
    // Key caches.
    std::vector<KeyCacheStats> podKeyCaches;
    KeyCacheStats keyCacheTotal;
    // Tenancy.
    std::vector<TenantStats> tenants;
    /** Weighted max/min served-share ratio (registry; NaN when fewer
     *  than two tenants qualify). */
    double fairnessRatio = std::numeric_limits<double>::quiet_NaN();
};

/**
 * Shards bootstrap requests across pods by tenant. The pods'
 * bootstrappers are borrowed, not owned, and must outlive the
 * cluster; each must be keyed identically (same context seed) for
 * the byte-identity guarantee. The registry is shared (quotas and
 * fairness are cluster-wide) and must outlive the cluster.
 */
class ServiceCluster {
  public:
    ServiceCluster(std::vector<boot::DistributedBootstrapper*> pods,
                   TenantRegistry& registry, ClusterConfig cfg = {});

    /** Drains and joins every pod. */
    ~ServiceCluster();

    ServiceCluster(const ServiceCluster&) = delete;
    ServiceCluster& operator=(const ServiceCluster&) = delete;

    /**
     * Submits one bootstrap for `tenantId` (registered, nonzero).
     * Throws UserError when the tenant is over quota or every pod is
     * at capacity; both rejections are counted (cluster and tenant
     * level) and nothing is queued. opts.priority is added to the
     * tenant's base priority; opts.fairRank and opts.tenantId are
     * overwritten by the cluster.
     */
    std::shared_ptr<BootstrapTicket> submit(uint64_t tenantId,
                                            const ckks::Ciphertext& in,
                                            SubmitOptions opts = {});

    size_t podCount() const { return services_.size(); }

    /** Consistent routing target for a tenant (stable across runs:
     *  a fixed 64-bit mix of the id, mod the pod count). */
    size_t preferredPod(uint64_t tenantId) const;

    BootstrapService& pod(size_t i) { return *services_.at(i); }
    const BootstrappingKeyCache&
    keyCache(size_t i) const
    {
        return *caches_.at(i);
    }
    TenantRegistry& registry() { return *registry_; }

    /** Blocks until every accepted request on every pod completed. */
    void drain();

    /** Stops intake on every pod, drains, joins workers. Idempotent. */
    void shutdown();

    ClusterMetrics metrics() const;

    /** Blind-rotate items per request (the ring dimension). */
    size_t itemsPerRequest() const { return itemsPerRequest_; }

  private:
    /** Pods to try, in order: preferred first, then the rest by
     *  ascending modeled outstanding load. */
    std::vector<size_t> candidateOrder(uint64_t tenantId) const;

    std::vector<boot::DistributedBootstrapper*> pods_;
    TenantRegistry* registry_;
    ClusterConfig cfg_;
    size_t itemsPerRequest_ = 0;
    size_t tenantKeyBytesDefault_ = 0;
    double requestCostMs_ = 0; ///< modeled per-request work
    std::vector<std::unique_ptr<BootstrapService>> services_;
    std::vector<std::unique_ptr<BootstrappingKeyCache>> caches_;

    mutable std::mutex m_; ///< counters + load table only
    std::vector<double> podLoadMs_; ///< modeled outstanding work
    uint64_t submitted_ = 0, rejectedQuota_ = 0, rejectedCapacity_ = 0;
    uint64_t routedPreferred_ = 0, spilled_ = 0;
};

} // namespace heap::serve

#endif // HEAP_SERVE_CLUSTER_H
