/**
 * @file
 * ServiceCluster — sharded multi-tenant serving across multiple
 * BootstrapService pods (the ROADMAP's "millions of users"
 * milestone), with a cluster-level failure domain: per-pod circuit
 * breakers, request failover, and deadline-aware load shedding.
 *
 * Each pod is one BootstrapService over its own
 * DistributedBootstrapper (the paper's 8-FPGA group). The cluster
 * routes a tenant's requests to a stable preferred pod (consistent
 * hash of the tenant id), which keeps that tenant's bootstrapping
 * keys hot in the pod's BootstrappingKeyCache; when the preferred
 * pod's admission window is full, the request spills to the pod with
 * the least modeled outstanding load that still has room. If every
 * pod is full, the request is rejected (cluster-level backpressure —
 * bounded memory, never OOM).
 *
 * Health: every pod carries a CircuitBreaker (serve/health.h) fed by
 * per-attempt outcomes and a modeled-load staleness detector, and
 * routing consults it — open or wedged pods are routed around, and a
 * deterministic probe admission re-tests an open pod after a fixed
 * number of skipped routing decisions. Probe candidates are tried
 * FIRST: the probe is one request by construction, and carrying it is
 * how an open breaker ever observes a recovery.
 *
 * Failover: the client's ticket belongs to the cluster, not to any
 * pod. Each dispatch attempt gets its own pod-level ticket; when an
 * attempt fails with a retryable PodError (injected fault, crash),
 * the cluster re-submits the SAME ciphertext to the next healthy
 * candidate — on a dedicated failover thread, never from the pod's
 * completion hook (the hook may run under the pod lock) — until the
 * FailoverPolicy's attempt or deadline budget runs out. Accounting is
 * exact: one TenantRegistry admission per logical request however
 * many attempts it takes, completion settled exactly once at the
 * terminal outcome, per-attempt modeled-load charges refunded by the
 * same hook that observed the attempt. A failed-over request touches
 * the new pod's key cache (a real, counted cache-cold event — the
 * BTS/ARK key traffic the paper's §5 sizing is about).
 *
 * Shedding (opt-in): a request whose deadline cannot be met even by
 * the least-loaded healthy pod under the modeled cost is rejected at
 * admission (deadline shed), and under sustained modeled overload
 * requests below a priority floor are rejected (brownout) — both
 * BEFORE the registry admission, so sheds never need refunds, and
 * both with distinct rejection counters.
 *
 * Chaos (opt-in): a deterministic ChaosSpec (serve/chaos.h) fires
 * pod-level faults — injected failures, wedges, crash/recover — as
 * the cluster's submission counter advances, which is what the
 * availability tests and bench/chaos_recovery drive. Faults are
 * pod-level: they hit both tenant classes of the targeted pod.
 *
 * Second tenant class (opt-in): with ClusterConfig::pirServer set,
 * every pod also carries a PirService over the shared encrypted-
 * lookup database, and submitPir() serves lookup flights through the
 * SAME routing, breakers, key caches (per-tenant query-key
 * footprints), shedding, fair queueing, and failover as bootstrap
 * flights — two tenant classes, one failure domain. Lookup answers
 * are byte-identical across worker counts and failover recomputes
 * because the fold is pure arithmetic on the query.
 *
 * Determinism: routing and failover never change what is computed,
 * only where — every pod carries byte-identical key material in the
 * functional build (same context seed), so a cluster-served bootstrap
 * is byte-identical to the single-pod path even when the serving pod
 * crashed mid-request and the result came from a failover re-compute.
 * tests/cluster_test.cc and tests/failover_identity_test.cc pin this
 * for seeds {7, 21, 42}.
 *
 * Thread-safe: submit() may be called from many client threads. The
 * cluster's own mutex guards its counters, modeled-load table, and
 * breakers, and is never held across a pod or registry call, so it
 * cannot deadlock against the service locks or completion hooks.
 * Lock order: pod lock -> cluster lock -> registry/ticket locks,
 * never the reverse.
 */

#ifndef HEAP_SERVE_CLUSTER_H
#define HEAP_SERVE_CLUSTER_H

#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "hw/pir_model.h"
#include "serve/chaos.h"
#include "serve/health.h"
#include "serve/keycache.h"
#include "serve/pir_service.h"
#include "serve/service.h"
#include "serve/tenant.h"

namespace heap::serve {

/** Retry budget for failed-over requests. */
struct FailoverPolicy {
    /** Total dispatch attempts per logical request (>= 1). 1 disables
     *  failover: the first retryable failure is terminal. */
    uint32_t maxAttempts = 3;
    /** Delay before a failed-over request is re-dispatched. 0 retries
     *  immediately (the deterministic default for tests). */
    double backoffMs = 0.0;
    /** Abandon retries once the modeled remaining deadline budget is
     *  below one modeled request cost (the retry could only miss). */
    bool respectDeadline = true;
};

/** Deadline-aware admission control (opt-in; off by default). */
struct SheddingPolicy {
    bool enabled = false;
    /** Deadline shed: reject when the request's deadline is shorter
     *  than slackFactor * (least healthy pod's modeled outstanding
     *  load + one modeled request cost) — i.e. its modeled slack is
     *  negative. Requests without a deadline are never deadline-shed. */
    double slackFactor = 1.0;
    /** Brownout: once the cluster's total modeled outstanding load
     *  reaches this many modeled milliseconds, requests whose
     *  effective priority (tenant base + submission) is below
     *  brownoutMinPriority are rejected. 0 disables the brownout. */
    double brownoutLoadMs = 0.0;
    int brownoutMinPriority = 0;
};

/** Cluster construction knobs. */
struct ClusterConfig {
    /** Per-pod service configuration (workers, admission cap, batch
     *  cap, stage bounds). Applied to every pod. */
    ServiceConfig pod;
    /** Per-pod bootstrapping-key cache capacity, in bytes (modeled
     *  residency accounting, not a real allocation). The default is
     *  8 GiB of pod key memory — roughly four of the paper's ~1.8 GB
     *  scheme-switching key sets per pod. */
    size_t keyCacheBytes = size_t{8} << 30;
    /** Key-footprint charge for tenants whose spec does not set one;
     *  0 = the cost model's per-pod key-read bytes (keyReadBytes()),
     *  or 1 MiB without a model. */
    size_t defaultTenantKeyBytes = 0;
    /** Optional accelerator cost model: drives the pods' batch
     *  sizing, the spill policy's modeled load, and the autoscaling
     *  oracle. Also installed as pod.costModel when that is null. */
    const hw::BootstrapModel* costModel = nullptr;
    /** Per-pod circuit-breaker tuning (applied to every pod). */
    BreakerConfig breaker;
    FailoverPolicy failover;
    SheddingPolicy shedding;
    /** Optional deterministic fault schedule, applied to the pods as
     *  the cluster's submission counter advances. */
    std::optional<ChaosSpec> chaos;
    /**
     * Optional second tenant class: the shared encrypted-lookup
     * database (borrowed, must outlive the cluster). When set, every
     * pod carries a colocated PirService over this server next to its
     * BootstrapService, and submitPir() routes lookup flights through
     * the same breakers, key caches, failover, and fair queueing as
     * bootstrap flights. Null = bootstrap-only cluster.
     */
    const pir::PirServer* pirServer = nullptr;
    /** Per-pod PIR service configuration (pirServer set). */
    PirServiceConfig pirPod;
    /** Optional PIR cost model: modeled per-lookup load for the spill
     *  policy, shedding, and failover deadline math of PIR flights.
     *  Without it lookup load is proportional to first-dim groups. */
    const hw::PirModel* pirModel = nullptr;
};

/** Cluster-wide metrics snapshot (metrics()). */
struct ClusterMetrics {
    // Cluster-level admission.
    uint64_t submitted = 0;        ///< accepted by some pod
    uint64_t rejectedQuota = 0;    ///< tenant quota at admission
    uint64_t rejectedCapacity = 0; ///< every candidate pod full
    uint64_t rejectedUnhealthy = 0; ///< every breaker refused routing
    uint64_t rejectedShedDeadline = 0; ///< negative modeled slack
    uint64_t rejectedShedBrownout = 0; ///< below the brownout floor
    // Routing.
    uint64_t routedPreferred = 0; ///< landed on the consistent pod
    uint64_t spilled = 0;         ///< diverted by a full preferred pod
    // Logical requests (cluster flights; a flight may span several
    // pod attempts under failover).
    uint64_t requestsCompleted = 0;
    uint64_t requestsFailed = 0; ///< terminally failed flights
    size_t liveFlights = 0;      ///< accepted, not yet settled
    // Failover.
    uint64_t failovers = 0;         ///< re-dispatches enqueued
    uint64_t failoverSucceeded = 0; ///< flights completed after > 1 attempt
    uint64_t failoverExhausted = 0; ///< retry budget ran out
    /** Re-dispatch sweeps the failover thread ran: each sweep drains
     *  every due retry at once, grouped per last-failed pod, instead
     *  of popping one retry per wakeup. */
    uint64_t failoverSweeps = 0;
    size_t maxRetryBatch = 0; ///< largest single-sweep retry batch
    // Encrypted-lookup tenant class (all zero / empty when no
    // pirServer is configured). Logical PIR flights, also included
    // in submitted / requestsCompleted / requestsFailed above.
    uint64_t pirSubmitted = 0;
    uint64_t pirCompleted = 0;
    uint64_t pirFailed = 0;
    std::vector<ServiceMetrics> pirPods; ///< per-pod PirService
    // Health.
    std::vector<BreakerStats> breakers; ///< one per pod
    uint64_t breakerOpens = 0;  ///< sum of per-pod opens
    uint64_t breakerCloses = 0; ///< sum of per-pod closes
    // Chaos (zero when no schedule was configured).
    ChaosStats chaos;
    // Pod roll-up. completed/failed count POD-LEVEL attempts (a
    // failed-over flight contributes a failure on the crashed pod and
    // a completion on the pod that served it); requestsCompleted /
    // requestsFailed above count logical flights.
    uint64_t completed = 0;
    uint64_t failed = 0;
    std::vector<ServiceMetrics> pods;
    std::vector<double> podModeledLoadMs; ///< outstanding, per pod
    // Key caches.
    std::vector<KeyCacheStats> podKeyCaches;
    KeyCacheStats keyCacheTotal;
    // Tenancy.
    std::vector<TenantStats> tenants;
    /** Weighted max/min served-share ratio (registry; NaN when fewer
     *  than two tenants qualify). */
    double fairnessRatio = std::numeric_limits<double>::quiet_NaN();
};

/**
 * Shards bootstrap requests across pods by tenant. The pods'
 * bootstrappers are borrowed, not owned, and must outlive the
 * cluster; each must be keyed identically (same context seed) for
 * the byte-identity guarantee. The registry is shared (quotas and
 * fairness are cluster-wide) and must outlive the cluster.
 */
class ServiceCluster {
  public:
    ServiceCluster(std::vector<boot::DistributedBootstrapper*> pods,
                   TenantRegistry& registry, ClusterConfig cfg = {});

    /** Drains and joins every pod and the failover thread. */
    ~ServiceCluster();

    ServiceCluster(const ServiceCluster&) = delete;
    ServiceCluster& operator=(const ServiceCluster&) = delete;

    /**
     * Submits one bootstrap for `tenantId` (registered, nonzero).
     * Throws UserError when the tenant is over quota, when the
     * shedding policy rejects the request, or when no healthy pod has
     * room; every rejection is counted (cluster and tenant level) and
     * nothing is queued. opts.priority is added to the tenant's base
     * priority; opts.fairRank and opts.tenantId are overwritten by
     * the cluster. The returned ticket is CLUSTER-owned: it settles
     * with the terminal outcome after failover, not with any single
     * pod attempt, and its report carries servedPod / attempts.
     */
    std::shared_ptr<BootstrapTicket> submit(uint64_t tenantId,
                                            const ckks::Ciphertext& in,
                                            SubmitOptions opts = {});

    /**
     * Submits one encrypted lookup for `tenantId` against the shared
     * PIR database (requires ClusterConfig::pirServer). The same
     * admission pipeline as submit(): shedding, tenant quota and fair
     * rank, breaker-gated routing to the tenant's preferred pod, key
     * cache touch (the tenant's query-key footprint), and failover on
     * retryable pod faults — the answer is byte-identical wherever it
     * is recomputed, because the fold is pure arithmetic on the query.
     * The query is shared, not copied, across attempts.
     */
    std::shared_ptr<PirTicket>
    submitPir(uint64_t tenantId,
              std::shared_ptr<const pir::PirQuery> query,
              SubmitOptions opts = {});

    size_t podCount() const { return services_.size(); }

    /** Whether the encrypted-lookup tenant class is configured. */
    bool hasPir() const { return cfg_.pirServer != nullptr; }

    /** Pod i's colocated PIR service (requires hasPir()). */
    PirService& pirPod(size_t i) { return *pirServices_.at(i); }

    /** Consistent routing target for a tenant (stable across runs:
     *  a fixed 64-bit mix of the id, mod the pod count). */
    size_t preferredPod(uint64_t tenantId) const;

    BootstrapService& pod(size_t i) { return *services_.at(i); }
    const BootstrappingKeyCache&
    keyCache(size_t i) const
    {
        return *caches_.at(i);
    }
    TenantRegistry& registry() { return *registry_; }

    /** One pod's breaker accounting (under the cluster lock). */
    BreakerStats breakerStats(size_t i) const;

    /**
     * Blocks until every accepted flight settled (including pending
     * failover re-dispatches). Requires eventual pod availability: a
     * cluster whose every pod stays crashed or wedged forever cannot
     * finish a drain.
     */
    void drain();

    /** Stops intake on every pod, settles every accepted flight
     *  (failing unplaceable retries), joins workers. Idempotent. */
    void shutdown();

    ClusterMetrics metrics() const;

    /** Blind-rotate items per request (the ring dimension). */
    size_t itemsPerRequest() const { return itemsPerRequest_; }

  private:
    /** Which tenant class a flight belongs to. */
    enum class FlightKind { Bootstrap, Pir };

    /** One logical client request, alive across failover attempts. */
    struct Flight {
        uint64_t seq = 0; ///< cluster submission index (1-based)
        uint64_t tenantId = 0;
        FlightKind kind = FlightKind::Bootstrap;
        ckks::Ciphertext input; ///< bootstrap: retained for re-submission
        /** PIR: the shared encrypted query (re-submitted as-is). */
        std::shared_ptr<const pir::PirQuery> query;
        /** Stamped options (priority/fairRank/tenantId), no hook. */
        SubmitOptions baseOpts;
        std::shared_ptr<BootstrapTicket> clientTicket; ///< bootstrap
        std::shared_ptr<PirTicket> pirClientTicket;    ///< pir
        std::function<void(const RequestReport&, bool)> userDone;
        size_t keyBytes = 0;
        /** Modeled per-attempt cost (class-specific load unit). */
        double costMs = 0;
        /** Registry admission units: the ring dimension for
         *  bootstrap flights, firstDimGroups() for PIR flights. */
        size_t items = 0;
        /** Dispatch attempts so far (guarded by the cluster mutex). */
        uint32_t attempts = 0;
        /** Pod of the last failed attempt; a retry tries every OTHER
         *  pod first ("the next healthy candidate"). Written by the
         *  completion hook before the retry is enqueued, read by the
         *  failover thread after it is dequeued (the retry queue's
         *  mutex orders the two). */
        int lastPod = -1;
        double submitMs = 0;
        double deadlineAbsMs = std::numeric_limits<double>::infinity();
    };

    /** A failed attempt awaiting re-dispatch. */
    struct Retry {
        std::shared_ptr<Flight> flight;
        std::exception_ptr lastError;
        double notBeforeMs = 0; ///< backoff gate (cluster clock)
    };

    /** Routing candidate admitted by the breaker layer. */
    struct Candidate {
        size_t pod = 0;
        bool probe = false;
        double loadMs = 0; ///< modeled-load snapshot at gate time
    };

    enum class Dispatch {
        Placed,    ///< accepted by a pod
        NoRoom,    ///< healthy candidates existed, all full
        NoHealthy, ///< every breaker refused routing
    };

    /**
     * One routing decision: with `gateHealth`, ticks every breaker's
     * staleness detector, gates each pod, and returns the admitted
     * candidates in try order — probes first, then the preferred pod,
     * then the rest by ascending modeled load. Without it (failover
     * re-dispatch), lists every pod without touching breaker state.
     * The load snapshot is taken under the cluster lock; the sort
     * runs outside it.
     */
    std::vector<Candidate> routeCandidates(uint64_t tenantId,
                                           bool gateHealth);

    /** Tries to place one attempt of `flight` on some candidate pod.
     *  `isRetry` selects failover vs initial-routing accounting. */
    Dispatch tryDispatch(const std::shared_ptr<Flight>& flight,
                         bool isRetry);

    /**
     * Per-attempt completion hook body (may run under a pod lock).
     * Exactly one of `attempt` / `pirAttempt` is non-null, matching
     * the flight's kind.
     */
    void onAttemptDone(const std::shared_ptr<Flight>& flight,
                       const std::shared_ptr<BootstrapTicket>& attempt,
                       const std::shared_ptr<PirTicket>& pirAttempt,
                       size_t podIdx, bool probe,
                       const RequestReport& rep, bool ok);

    /** Terminal settle paths; settle exactly once per flight. */
    void settleSuccess(const std::shared_ptr<Flight>& flight,
                       const std::shared_ptr<BootstrapTicket>& attempt,
                       const std::shared_ptr<PirTicket>& pirAttempt,
                       size_t podIdx, const RequestReport& rep);
    void settleFailure(const std::shared_ptr<Flight>& flight,
                       std::exception_ptr err, int podIdx,
                       const RequestReport& rep, bool exhausted);

    /** Common admission body of submit()/submitPir(): chaos advance,
     *  shedding, registry admission, option stamping, initial
     *  dispatch, rejection accounting. The flight arrives with its
     *  kind, payload, client ticket, costMs, and items set. */
    void submitFlight(const std::shared_ptr<Flight>& flight,
                      SubmitOptions opts);

    void failoverLoop();
    double nowMs() const;

    std::vector<boot::DistributedBootstrapper*> pods_;
    TenantRegistry* registry_;
    ClusterConfig cfg_;
    size_t itemsPerRequest_ = 0;
    size_t tenantKeyBytesDefault_ = 0;
    double requestCostMs_ = 0; ///< modeled per-request work
    double pirRequestCostMs_ = 0; ///< modeled per-lookup work
    size_t pirItemsPerRequest_ = 0; ///< first-dim groups per lookup
    std::vector<std::unique_ptr<BootstrapService>> services_;
    /** One colocated PIR pod per bootstrap pod; empty without a
     *  configured pirServer. */
    std::vector<std::unique_ptr<PirService>> pirServices_;
    std::vector<std::unique_ptr<BootstrappingKeyCache>> caches_;
    std::unique_ptr<ChaosEngine> chaos_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex m_; ///< counters + load table + breakers
    std::condition_variable settleCv_; ///< liveFlights_ drops
    std::vector<double> podLoadMs_; ///< modeled outstanding work
    std::vector<CircuitBreaker> breakers_;
    uint64_t submitSeq_ = 0; ///< submission counter (drives chaos)
    size_t liveFlights_ = 0;
    uint64_t submitted_ = 0, rejectedQuota_ = 0, rejectedCapacity_ = 0;
    uint64_t rejectedUnhealthy_ = 0;
    uint64_t rejectedShedDeadline_ = 0, rejectedShedBrownout_ = 0;
    uint64_t routedPreferred_ = 0, spilled_ = 0;
    uint64_t requestsCompleted_ = 0, requestsFailed_ = 0;
    uint64_t failovers_ = 0, failoverSucceeded_ = 0,
             failoverExhausted_ = 0;
    uint64_t failoverSweeps_ = 0;
    size_t maxRetryBatch_ = 0;
    uint64_t pirSubmitted_ = 0, pirCompleted_ = 0, pirFailed_ = 0;

    // Failover machinery (its own lock: the completion hooks enqueue
    // while possibly holding a pod lock, and must never wait on the
    // dispatch work the failover thread does).
    std::mutex retryM_;
    std::condition_variable retryCv_;
    std::deque<Retry> retryQ_;
    bool stopRetry_ = false;
    std::thread failoverThread_;
};

} // namespace heap::serve

#endif // HEAP_SERVE_CLUSTER_H
