/**
 * @file
 * Observability types for the bootstrap serving runtime: a bounded
 * latency reservoir with percentile extraction, and the per-service
 * metrics snapshot (queue depth, batch occupancy, latency
 * percentiles, rejection / deadline accounting, and the
 * noise-budget health of returned ciphertexts).
 *
 * Header-only so the bench layer (bench/bench_util.h) can reuse the
 * percentile math without linking the serving runtime.
 */

#ifndef HEAP_SERVE_METRICS_H
#define HEAP_SERVE_METRICS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "serve/pipeline.h"

namespace heap::serve {

/**
 * Bounded sample store for latency measurements. Keeps up to
 * `capacity` samples (oldest evicted by coarse decimation: when full,
 * every other retained sample is dropped and the sampling stride
 * doubles), so long-running services report stable percentiles in
 * O(capacity) memory. Not thread-safe; the service records under its
 * own lock.
 */
class LatencyReservoir {
  public:
    explicit LatencyReservoir(size_t capacity = 4096)
        : capacity_(capacity)
    {
        HEAP_CHECK(capacity >= 16, "reservoir too small");
    }

    void
    record(double ms)
    {
        ++seen_;
        if ((seen_ - 1) % stride_ != 0) {
            return;
        }
        if (samples_.size() == capacity_) {
            // Halve the resolution: keep every other sample and
            // double the stride so old and new samples stay
            // comparably weighted.
            std::vector<double> kept;
            kept.reserve(capacity_ / 2);
            for (size_t i = 0; i < samples_.size(); i += 2) {
                kept.push_back(samples_[i]);
            }
            samples_ = std::move(kept);
            stride_ *= 2;
        }
        samples_.push_back(ms);
        sortedDirty_ = true;
    }

    /** Total samples offered to record() (not just retained ones). */
    uint64_t count() const { return seen_; }

    /**
     * The p-th percentile (p in [0, 100]) by linear interpolation
     * over the retained samples; NaN when empty. The sorted view is cached and
     * only rebuilt after a record(), so a snapshot reading several
     * percentiles (p50/p95/p99) pays for ONE O(n log n) sort, not one
     * per call.
     */
    double
    percentile(double p) const
    {
        HEAP_CHECK(p >= 0.0 && p <= 100.0, "bad percentile " << p);
        if (samples_.empty()) {
            return std::numeric_limits<double>::quiet_NaN();
        }
        if (sortedDirty_) {
            sorted_ = samples_;
            std::sort(sorted_.begin(), sorted_.end());
            sortedDirty_ = false;
        }
        const double rank = p / 100.0
                            * static_cast<double>(sorted_.size() - 1);
        const size_t lo = static_cast<size_t>(rank);
        const size_t hi = std::min(lo + 1, sorted_.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
    }

    double
    mean() const
    {
        if (samples_.empty()) {
            return std::numeric_limits<double>::quiet_NaN();
        }
        double sum = 0;
        for (const double s : samples_) {
            sum += s;
        }
        return sum / static_cast<double>(samples_.size());
    }

  private:
    size_t capacity_;
    uint64_t stride_ = 1;
    uint64_t seen_ = 0;
    std::vector<double> samples_;
    /** Lazily rebuilt sorted copy of samples_ (percentile()). */
    mutable std::vector<double> sorted_;
    mutable bool sortedDirty_ = true;
};

/** Point-in-time snapshot of a BootstrapService (metrics()). */
struct ServiceMetrics {
    // Request accounting.
    uint64_t submitted = 0; ///< accepted by admission control
    uint64_t completed = 0;
    uint64_t failed = 0;    ///< completed exceptionally
    uint64_t rejected = 0;  ///< refused at admission (backpressure)
    uint64_t deadlineMisses = 0; ///< completed after their deadline

    // Queue state.
    size_t queueDepth = 0;    ///< live requests (queued + running)
    size_t maxQueueDepth = 0; ///< high-water mark since start

    // Continuous batching.
    uint64_t batches = 0; ///< blind-rotate batches dispatched
    /** Mean number of DISTINCT requests whose items shared a batch;
     *  > 1.0 means cross-request packing actually happened. */
    double batchOccupancy = 0;
    double meanBatchItems = 0; ///< mean LWE items per batch

    // Completed-request latency (submission to result), milliseconds.
    double p50Ms = 0;
    double p95Ms = 0;
    double p99Ms = 0;
    double meanMs = 0;

    // Link-protocol traffic aggregated over all remote exchanges.
    uint64_t wireBytesOut = 0;
    uint64_t wireBytesIn = 0;
    uint64_t retransmits = 0;
    uint64_t reclaimedBatches = 0;

    // Fault injection (chaos harness): requests failed by an
    // injected front-stage fault, and crash() transitions survived.
    uint64_t injectedFailures = 0;
    uint64_t crashes = 0;

    // Noise-budget health of the ciphertexts the service returned,
    // so clients see budget state without decrypting: the smallest
    // remaining budget (bits until predicted decryption failure) and
    // how many outputs crossed the context guard's thresholds.
    double minReturnedBudgetBits =
        std::numeric_limits<double>::infinity();
    uint64_t guardTrips = 0;

    // Staged-pipeline accounting: per-stage occupancy, queue depth,
    // stall time, and the cross-stage overlap score (see
    // serve/pipeline.h).
    PipelineMetrics pipeline;
};

} // namespace heap::serve

#endif // HEAP_SERVE_METRICS_H
