/**
 * @file
 * BootstrapService — the bootstrap serving runtime (the software
 * analogue of operating HEAP's 8-FPGA pod as a shared service).
 *
 * Many client threads submit() level-1 CKKS ciphertexts with a
 * priority and an optional deadline; the service decomposes each
 * request into its n independent blind-rotate work items (Algorithm
 * 2's Extract) and a continuous-batching scheduler packs items from
 * *different* requests into fixed-size batches dispatched over the
 * DistributedBootstrapper's link protocol — so a straggler request no
 * longer leaves secondaries idle between per-request bootstraps.
 *
 * Execution is a three-stage pipeline (serve/pipeline.h): front
 * (modswitch + extract), rotate (batch dispatch across the
 * primary-local lane and one lane per secondary link), and finish
 * (repack + rescale + fulfil), connected by bounded stage queues and
 * driven by the shared worker pool — so the repack of batch i
 * overlaps the rotation of batch i+1. Backpressure is applied at
 * stage entry: a worker does not start front work while the rotate
 * pool is at its request bound, and does not dispatch a batch while
 * the finish queue is full. The finish stage is never gated, which
 * guarantees forward progress.
 *
 * Guarantees:
 *  - Determinism: each returned ciphertext is byte-identical to what
 *    a sequential DistributedBootstrapper::bootstrap() of the same
 *    input under the same keys produces, for every worker count,
 *    batch shape, and link-fault pattern (blind rotation is a pure
 *    per-item function; the repack/finish runs per request in index
 *    order; the output budget is computed analytically on the
 *    primary). tests/serve_test.cc asserts this exactly.
 *  - Backpressure: admission control rejects submissions beyond
 *    maxQueuedRequests with a UserError — queueing is bounded, the
 *    service never OOMs under load.
 *  - Liveness: priority scheduling with starvation protection (see
 *    serve/scheduler.h); deadline misses are accounted, never
 *    dropped.
 *  - Clean shutdown: shutdown()/destruction stops intake, finishes
 *    every accepted request, and joins the workers.
 */

#ifndef HEAP_SERVE_SERVICE_H
#define HEAP_SERVE_SERVICE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "boot/distributed.h"
#include "serve/metrics.h"
#include "serve/pipeline.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace heap::serve {

/** Service construction knobs. */
struct ServiceConfig {
    /** Dispatch worker threads (front phases, batch exchanges, and
     *  finish phases all run on these). */
    size_t workers = 1;
    /** Admission cap: live requests (queued + running) beyond this
     *  are rejected at submit(). Bounds service memory. */
    size_t maxQueuedRequests = 64;
    /** Batch size cap in LWE items; 0 = the ring dimension N (the
     *  largest batch a SecondaryNode accepts). */
    size_t maxBatchItems = 0;
    /** Batches a pending request may be skipped by before it jumps
     *  the priority order (starvation protection). */
    size_t starvationPasses = 8;
    /** Modeled fixed cost per dispatched batch (batch sizing). */
    double dispatchOverheadMs = 0.05;
    /** Optional accelerator cost model driving batch sizing and lane
     *  assignment; not owned, may be nullptr (fixed-size batches). */
    const hw::BootstrapModel* costModel = nullptr;
    /** Rotate-stage bound, counted in requests with undispatched
     *  items: front work is gated while the pool is at the bound.
     *  0 = max(8, 2 * workers). */
    size_t rotateQueueRequests = 0;
    /** Finish-stage queue bound, counted in requests awaiting repack:
     *  batch dispatch is gated while the queue is full.
     *  0 = max(2, workers). */
    size_t finishQueueRequests = 0;
};

/**
 * Asynchronous, continuously-batched bootstrap server on top of a
 * DistributedBootstrapper. The service logically owns the
 * bootstrapper's link protocol while alive: do not call
 * dist.bootstrap() or mutate its faults/retry policy concurrently
 * with a running service.
 */
class BootstrapService {
  public:
    BootstrapService(boot::DistributedBootstrapper& dist,
                     ServiceConfig cfg = {});

    /** Drains accepted work, then joins the workers (shutdown()). */
    ~BootstrapService();

    BootstrapService(const BootstrapService&) = delete;
    BootstrapService& operator=(const BootstrapService&) = delete;

    /**
     * Submits one bootstrap request. Throws UserError immediately
     * when the input is not level-1, when the service is shutting
     * down or crashed, or when admission control is at capacity
     * (backpressure — the rejection is counted, nothing is queued).
     * Otherwise returns the ticket the caller blocks on for the
     * refreshed ciphertext.
     *
     * `ticket`, when non-null, is fulfilled instead of a fresh one —
     * the cluster layer creates the ticket first so its completion
     * hook can capture it (per-attempt result extraction for
     * failover) without racing the pod's workers.
     */
    std::shared_ptr<BootstrapTicket>
    submit(const ckks::Ciphertext& in, SubmitOptions opts = {},
           std::shared_ptr<BootstrapTicket> ticket = nullptr);

    /**
     * Stops forming batches and front phases (intake still accepts up
     * to capacity). For tests and maintenance windows; resume() picks
     * the backlog up again. Also the chaos harness's "wedge" fault:
     * a paused pod holds accepted requests without failing them.
     */
    void pause();
    void resume();

    /**
     * Crash the pod (chaos harness): every live request — queued,
     * rotating, or awaiting repack — fails with a retryable PodError,
     * and submit() rejects until recover(). In-flight batch compute
     * finishes (workers are never interrupted mid-kernel) but its
     * requests still fail: crash semantics are "in-flight work is
     * lost", and the cluster's failover recomputes it elsewhere,
     * byte-identically, because every replica is identically keyed.
     */
    void crash();

    /** Leave the crashed state: intake accepts again. */
    void recover();

    /** Whether the pod is currently crashed (cheap routing probe). */
    bool
    crashed() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return crashed_;
    }

    /**
     * Chaos harness: fail the next `n` requests that reach the front
     * stage with a retryable PodError (counted in metrics). Injected
     * failures stack; they survive pause/resume.
     */
    void injectFailures(uint64_t n);

    /** Blocks until every accepted request has completed. Must not be
     *  called while paused. */
    void drain();

    /**
     * Stops intake (further submits are rejected), completes every
     * accepted request — including in-flight batches — and joins the
     * workers. Idempotent.
     */
    void shutdown();

    /** Point-in-time service metrics snapshot. */
    ServiceMetrics metrics() const;

    /** Dispatch lanes: 1 local (primary) + one per secondary. */
    size_t lanes() const { return laneLoadMs_.size(); }

    /** Live requests (queued + running) — the admission-control
     *  occupancy. Cheaper than metrics() for routing decisions. */
    size_t
    liveRequests() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return live_.size();
    }

    /** The effective construction config (immutable after start). */
    const ServiceConfig& config() const { return cfg_; }

  private:
    /** Server-side state of one accepted request. */
    struct Request {
        uint64_t id = 0;
        std::shared_ptr<BootstrapTicket> ticket;
        ckks::Ciphertext input;
        SubmitOptions opts;
        double arrivalMs = 0;
        double deadlineAbsMs = 0; ///< infinity when none
        double firstDispatchMs = -1;
        /** When the front phase finished and the request's items
         *  became rotate-ready (feeds rotate stall accounting). */
        double rotateReadyMs = 0;
        boot::ModSwitched ms;
        std::vector<lwe::LweCiphertext> lwes; ///< extracted items
        std::vector<rlwe::Ciphertext> rotated;
        size_t remaining = 0; ///< accumulators still outstanding
        size_t batches = 0;
        /** First failure of a batch carrying this request's items;
         *  the ticket fails with it once every item settles. */
        std::exception_ptr batchError;
    };

    /** (request, item) reference resolved while the lock is held. */
    struct ItemRef {
        Request* req = nullptr;
        size_t index = 0;
    };

    void workerLoop();
    /** Pure compute: Extract front half. Returns nullptr on success. */
    std::exception_ptr runFront(Request* p) const;
    /** Dispatches one batch on `lane`, scatters the results, and
     *  queues requests whose last item settled for the finish stage.
     *  `dispatchMs` is the stage-task start; the rotate accounting
     *  runs under the lock BEFORE the finish handoff so a metrics()
     *  after the last ticket settles always counts the batch. */
    void runBatch(size_t lane, const std::vector<ItemRef>& refs,
                  double dispatchMs);
    /** Finish stage: repack + rescale + fulfil one request.
     *  `startMs` is the stage-task start (its finish accounting runs
     *  under the lock BEFORE the ticket settles, so a metrics() after
     *  ticket.wait() always sees the task counted). */
    void finishRequest(Request* p, double startMs);
    void failRequestLocked(Request* p, std::exception_ptr err);
    /** Free lane with the least cumulative modeled load; lanes()
     *  when every lane is busy. */
    size_t pickLaneLocked() const;
    double nowMs() const;
    /** Stage-entry gates: each requires waiting work AND room in the
     *  downstream stage queue (backpressure). */
    bool canFrontLocked() const;
    bool canDispatchLocked() const;
    bool haveRunnableWorkLocked() const;
    bool idleLocked() const;
    /** Crashed with flushable queued work pending. */
    bool crashWorkLocked() const;
    /** Crash drain: fails everything queued (intake, rotate pool,
     *  finish queue) with a PodError. Called with the lock held. */
    void crashFlushLocked();

    boot::DistributedBootstrapper* dist_;
    ServiceConfig cfg_;
    BatchPlanner planner_;
    ItemQueue queue_;

    mutable std::mutex m_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    PipelineBoard board_; ///< declared before the queues feeding it
    /** Admitted, front phase pending (bounded by admission control). */
    StageQueue<uint64_t> intake_{Stage::Front, &board_};
    /** Fully rotated, repack pending. */
    StageQueue<Request*> finishQ_{Stage::Finish, &board_};
    size_t rotateCap_ = 0; ///< rotate pool bound, in requests
    std::unordered_map<uint64_t, std::unique_ptr<Request>> live_;
    std::vector<uint8_t> laneBusy_;
    std::vector<double> laneLoadMs_; ///< cumulative modeled work
    bool paused_ = false;
    bool crashed_ = false;
    bool stopping_ = false;
    bool joined_ = false;
    uint64_t injectRemaining_ = 0; ///< front-stage failures pending
    size_t inFlight_ = 0; ///< front phases + batches being computed
    uint64_t nextId_ = 1;
    std::atomic<uint64_t> seq_{1}; ///< framing sequence numbers

    // Metrics (guarded by m_).
    std::chrono::steady_clock::time_point epoch_;
    uint64_t submitted_ = 0, completed_ = 0, failed_ = 0,
             rejected_ = 0, deadlineMisses_ = 0, completionSeq_ = 0;
    size_t maxQueueDepth_ = 0;
    uint64_t batches_ = 0, occupancySum_ = 0, itemsSum_ = 0;
    uint64_t wireOut_ = 0, wireIn_ = 0, retransmits_ = 0,
             reclaimed_ = 0;
    uint64_t injectedFailures_ = 0, crashes_ = 0;
    LatencyReservoir latency_;
    double minReturnedBudgetBits_ =
        std::numeric_limits<double>::infinity();
    uint64_t guardTrips_ = 0;
};

} // namespace heap::serve

#endif // HEAP_SERVE_SERVICE_H
