#include "serve/service.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace heap::serve {

BootstrapService::BootstrapService(boot::DistributedBootstrapper& dist,
                                   ServiceConfig cfg)
    : dist_(&dist),
      cfg_(cfg),
      planner_(cfg.costModel,
               BatchPlanner::Config{
                   cfg.maxBatchItems == 0 ? dist.context().basis()->n()
                                          : cfg.maxBatchItems,
                   cfg.dispatchOverheadMs}),
      queue_(cfg.starvationPasses),
      epoch_(std::chrono::steady_clock::now())
{
    HEAP_CHECK(cfg.workers >= 1 && cfg.workers <= 64,
               "bad worker count " << cfg.workers);
    HEAP_CHECK(cfg.maxQueuedRequests >= 1, "bad admission cap");
    const size_t n = dist.context().basis()->n();
    HEAP_CHECK(planner_.config().maxBatchItems <= n,
               "batch cap " << planner_.config().maxBatchItems
                            << " exceeds the ring dimension " << n);
    // The service owns the link protocol from here on: start from a
    // clean run (empty links, reseeded fault streams).
    dist.resetProtocolRun();
    rotateCap_ = cfg.rotateQueueRequests != 0
                     ? cfg.rotateQueueRequests
                     : std::max<size_t>(8, 2 * cfg.workers);
    finishQ_.setCapacity(cfg.finishQueueRequests != 0
                             ? cfg.finishQueueRequests
                             : std::max<size_t>(2, cfg.workers));
    laneBusy_.assign(dist.secondaryCount() + 1, 0);
    laneLoadMs_.assign(dist.secondaryCount() + 1, 0.0);
    workers_.reserve(cfg.workers);
    for (size_t i = 0; i < cfg.workers; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

BootstrapService::~BootstrapService()
{
    shutdown();
}

double
BootstrapService::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::shared_ptr<BootstrapTicket>
BootstrapService::submit(const ckks::Ciphertext& in, SubmitOptions opts,
                         std::shared_ptr<BootstrapTicket> ticket)
{
    HEAP_CHECK(in.level() == 1,
               "bootstrap expects a level-1 (single limb) ciphertext");
    if (opts.deadlineMs) {
        HEAP_CHECK(*opts.deadlineMs >= 0,
                   "negative deadline " << *opts.deadlineMs);
    }
    if (ticket == nullptr) {
        ticket = std::make_shared<BootstrapTicket>();
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        if (stopping_) {
            ++rejected_;
            HEAP_FATAL("bootstrap service is shutting down: "
                       "request rejected");
        }
        if (crashed_) {
            ++rejected_;
            HEAP_FATAL("bootstrap pod crashed: request rejected");
        }
        if (live_.size() >= cfg_.maxQueuedRequests) {
            // Backpressure: bounded queueing, reject-with-error.
            ++rejected_;
            HEAP_FATAL("bootstrap service at capacity ("
                       << live_.size() << " live requests): "
                       << "request rejected");
        }
        auto p = std::make_unique<Request>();
        p->id = nextId_++;
        p->ticket = ticket;
        p->input = in;
        p->opts = opts;
        p->arrivalMs = nowMs();
        p->deadlineAbsMs =
            opts.deadlineMs
                ? p->arrivalMs + *opts.deadlineMs
                : std::numeric_limits<double>::infinity();
        intake_.push(p->id, p->arrivalMs);
        live_.emplace(p->id, std::move(p));
        ++submitted_;
        maxQueueDepth_ = std::max(maxQueueDepth_, live_.size());
    }
    workCv_.notify_all();
    return ticket;
}

void
BootstrapService::pause()
{
    std::lock_guard<std::mutex> lock(m_);
    paused_ = true;
}

void
BootstrapService::resume()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        paused_ = false;
    }
    workCv_.notify_all();
}

void
BootstrapService::crash()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        if (!crashed_) {
            crashed_ = true;
            ++crashes_;
        }
        // Flush synchronously: when crash() returns, every request
        // without dispatched compute HAS failed and its hooks have
        // run. Deferring to the worker would make the fault window
        // scheduler-dependent — a crash/recover pair applied a few
        // microseconds apart (chaos events on adjacent submission
        // indices) could fail nothing at all. Requests with batches
        // in flight still settle through the worker when the batch
        // returns. Hooks fire under the pod lock here, same as the
        // ordinary failure path (lock order: pod -> cluster).
        crashFlushLocked();
    }
    workCv_.notify_all();
}

void
BootstrapService::recover()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        crashed_ = false;
    }
    workCv_.notify_all();
}

void
BootstrapService::injectFailures(uint64_t n)
{
    {
        std::lock_guard<std::mutex> lock(m_);
        injectRemaining_ += n;
    }
    workCv_.notify_all();
}

void
BootstrapService::drain()
{
    std::unique_lock<std::mutex> lock(m_);
    HEAP_CHECK(!paused_, "drain() on a paused service cannot finish");
    doneCv_.wait(lock, [&] { return live_.empty(); });
}

void
BootstrapService::shutdown()
{
    std::vector<std::thread> toJoin;
    {
        std::lock_guard<std::mutex> lock(m_);
        stopping_ = true;
        paused_ = false; // the drain needs the workers running
        if (!joined_) {
            joined_ = true;
            toJoin.swap(workers_);
        }
    }
    workCv_.notify_all();
    // Workers exit only once every accepted request has completed, so
    // joining them IS the drain.
    for (std::thread& t : toJoin) {
        t.join();
    }
}

size_t
BootstrapService::pickLaneLocked() const
{
    size_t best = laneBusy_.size();
    for (size_t i = 0; i < laneBusy_.size(); ++i) {
        if (laneBusy_[i]) {
            continue;
        }
        if (best == laneBusy_.size()
            || laneLoadMs_[i] < laneLoadMs_[best]) {
            best = i;
        }
    }
    return best;
}

bool
BootstrapService::canFrontLocked() const
{
    // Front entry is gated on the rotate pool's request bound. A
    // crashed pod does no front compute: the crash flush fails the
    // intake directly.
    return !paused_ && !crashed_ && !intake_.empty()
           && queue_.pendingRequests() < rotateCap_;
}

bool
BootstrapService::canDispatchLocked() const
{
    // Dispatch entry is gated on room in the finish queue plus a free
    // lane; the gate (not a blocking push) is what makes a full
    // finish queue unable to wedge the worker pool.
    return !paused_ && !crashed_ && !queue_.empty()
           && finishQ_.hasRoom()
           && pickLaneLocked() != laneBusy_.size();
}

bool
BootstrapService::crashWorkLocked() const
{
    return crashed_
           && (!intake_.empty() || !queue_.empty()
               || !finishQ_.empty());
}

bool
BootstrapService::haveRunnableWorkLocked() const
{
    // The finish stage is never gated (not even by pause(): in-flight
    // work always completes, exactly like the pre-pipeline inline
    // finish) — that is the pipeline's forward-progress guarantee.
    return crashWorkLocked() || !finishQ_.empty() || canFrontLocked()
           || canDispatchLocked();
}

bool
BootstrapService::idleLocked() const
{
    // finishQ_ matters here: a request resident in an intermediate
    // stage queue is accepted-but-unfinished work, and drain() /
    // shutdown() promise to complete it. Omitting any stage queue
    // would let workers exit (or drain() hang) with work still queued.
    return intake_.empty() && queue_.empty() && finishQ_.empty()
           && inFlight_ == 0;
}

void
BootstrapService::crashFlushLocked()
{
    auto podDown = [] {
        return std::make_exception_ptr(
            PodError("bootstrap pod crashed: request lost"));
    };
    double readyMs = 0;
    // Intake: nothing computed yet, fail directly.
    while (!intake_.empty()) {
        const uint64_t id = intake_.pop(&readyMs);
        failRequestLocked(live_.at(id).get(), podDown());
    }
    // Rotate pool: pull every undispatched item and settle it as
    // failed. Requests whose whole tail was still queued reach zero
    // remaining here; requests with batches in flight settle when
    // runBatch returns (their batchError is set now, so they fail
    // through the ordinary finish path). Never touching a request
    // with outstanding dispatched items is what makes the flush safe
    // against the workers computing those batches right now.
    if (!queue_.empty()) {
        PlannedBatch all = queue_.formBatch(queue_.pendingItems());
        board_.dequeued(Stage::Rotate, all.items.size());
        const double now = nowMs();
        for (const WorkItem& w : all.items) {
            Request* p = live_.at(w.requestId).get();
            if (!p->batchError) {
                p->batchError = podDown();
            }
            --p->remaining;
            if (p->remaining == 0) {
                finishQ_.push(p, now);
            }
        }
    }
    // Finish queue: every item settled; fail without repacking.
    while (!finishQ_.empty()) {
        Request* p = finishQ_.pop(&readyMs);
        failRequestLocked(p,
                          p->batchError ? p->batchError : podDown());
    }
}

std::exception_ptr
BootstrapService::runFront(Request* p) const
{
    try {
        // Steps 1-2 + extraction, the exact front phase the
        // sequential bootstrap() runs on the primary (boot layer owns
        // the single implementation — byte-identity by construction).
        boot::FrontPhase fp = boot::runFrontPhase(
            dist_->context(), p->input, 1.0, "serve bootstrap");
        p->ms = std::move(fp.ms);
        p->lwes = std::move(fp.items);
        p->rotated.resize(p->lwes.size());
        p->remaining = p->lwes.size();
        return nullptr;
    } catch (...) {
        return std::current_exception();
    }
}

void
BootstrapService::failRequestLocked(Request* p, std::exception_ptr err)
{
    RequestReport rep;
    const double now = nowMs();
    rep.id = p->id;
    rep.totalMs = now - p->arrivalMs;
    rep.queueMs =
        (p->firstDispatchMs >= 0 ? p->firstDispatchMs : now)
        - p->arrivalMs;
    rep.batches = p->batches;
    rep.deadlineMissed = now > p->deadlineAbsMs;
    rep.completionSeq = ++completionSeq_;
    rep.budgetBits = std::numeric_limits<double>::infinity();
    rep.precisionBits = std::numeric_limits<double>::infinity();
    ++failed_;
    auto ticket = std::move(p->ticket);
    auto onDone = std::move(p->opts.onDone);
    live_.erase(p->id);
    // The ticket's lock nests inside m_ only, never the reverse.
    ticket->fail(std::move(err), rep);
    if (onDone) {
        // Still under m_ (documented): the hook must not re-enter the
        // service.
        onDone(rep, /*ok=*/false);
    }
    doneCv_.notify_all();
}

void
BootstrapService::runBatch(size_t lane,
                           const std::vector<ItemRef>& refs,
                           double dispatchMs)
{
    // Move the items out. Safe without the lock: a request's front
    // phase happened-before its items were queued, each (request,
    // index) pair is dispatched exactly once, and concurrent batches
    // touch disjoint elements of the same vector (no resize).
    std::vector<lwe::LweCiphertext> lwes;
    lwes.reserve(refs.size());
    for (const ItemRef& r : refs) {
        lwes.push_back(std::move(r.req->lwes[r.index]));
    }

    std::vector<rlwe::Ciphertext> accs;
    boot::ExchangeStats st{};
    std::exception_ptr err;
    try {
        accs = lane == 0
                   ? dist_->rotateLocal(lwes)
                   : dist_->exchangeRotate(
                         lane - 1,
                         seq_.fetch_add(1, std::memory_order_relaxed),
                         lwes, st);
    } catch (...) {
        err = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(m_);
        wireOut_ += st.wireOut;
        wireIn_ += st.wireIn;
        retransmits_ += st.retransmits;
        if (st.dead) {
            ++reclaimed_;
        }
        const double now = nowMs();
        // Account the rotate task before any request it completes can
        // reach the finish stage: a metrics() snapshot taken after the
        // last ticket settles must already count this batch.
        board_.taskFinished(Stage::Rotate, dispatchMs, now);
        for (size_t i = 0; i < refs.size(); ++i) {
            Request* p = refs[i].req;
            if (err) {
                if (!p->batchError) {
                    p->batchError = err;
                }
            } else {
                p->rotated[refs[i].index] = std::move(accs[i]);
            }
            --p->remaining;
            if (p->remaining == 0) {
                // Hand the request to the finish stage instead of
                // repacking inline: this worker's lane frees up for
                // the next batch while another worker repacks, which
                // is the pipeline's rotate/finish overlap. The push
                // never blocks; dispatch gating keeps the queue near
                // its bound (one batch may complete several requests,
                // briefly overshooting it).
                finishQ_.push(p, now);
            }
        }
    }
    workCv_.notify_all();
}

void
BootstrapService::finishRequest(Request* p, double startMs)
{
    const ckks::Context& ctx = dist_->context();
    ckks::Ciphertext out;
    double budgetBits = std::numeric_limits<double>::infinity();
    double precisionBits = std::numeric_limits<double>::infinity();
    bool tripped = false;
    std::exception_ptr err = p->batchError;
    if (!err) {
        try {
            // Steps 3-5 tail, identical to the sequential path: the
            // repack consumes the accumulators in extraction order and
            // the output budget is computed analytically, so the
            // result does not depend on batch shape, lane, worker
            // count, or link faults.
            const auto basis = ctx.basis();
            rlwe::Ciphertext ctKq =
                tfhe::packRlwes(p->rotated, dist_->packingKeys());
            out = boot::finishBootstrap(std::move(ctKq), p->ms, *basis,
                                        p->input.scale, p->input.slots);
            out.budget = boot::bootstrapOutputBudget(
                ctx, p->input, dist_->bootBlindRotateSigma(), *basis);
            ctx.noiseGuardCheck(out, "bootstrap");
            budgetBits = ctx.noiseBudgetBits(out);
            precisionBits = ctx.noisePrecisionBits(out);
            tripped = budgetBits <= 0
                      || precisionBits
                             <= ctx.noiseGuard().minPrecisionBits;
        } catch (...) {
            err = std::current_exception();
        }
    }

    RequestReport rep;
    std::shared_ptr<BootstrapTicket> ticket;
    std::function<void(const RequestReport&, bool)> onDone;
    {
        std::lock_guard<std::mutex> lock(m_);
        const double now = nowMs();
        board_.taskFinished(Stage::Finish, startMs, now);
        rep.id = p->id;
        rep.totalMs = now - p->arrivalMs;
        rep.queueMs =
            (p->firstDispatchMs >= 0 ? p->firstDispatchMs : now)
            - p->arrivalMs;
        rep.batches = p->batches;
        rep.deadlineMissed = now > p->deadlineAbsMs;
        rep.completionSeq = ++completionSeq_;
        rep.budgetBits = budgetBits;
        rep.precisionBits = precisionBits;
        if (err) {
            ++failed_;
        } else {
            ++completed_;
            latency_.record(rep.totalMs);
            if (rep.deadlineMissed) {
                ++deadlineMisses_;
            }
            minReturnedBudgetBits_ =
                std::min(minReturnedBudgetBits_, budgetBits);
            if (tripped) {
                ++guardTrips_;
            }
        }
        ticket = std::move(p->ticket);
        onDone = std::move(p->opts.onDone);
        live_.erase(p->id);
    }
    const bool ok = err == nullptr;
    if (err) {
        ticket->fail(std::move(err), rep);
    } else {
        ticket->fulfil(std::move(out), rep);
    }
    if (onDone) {
        onDone(rep, ok);
    }
    doneCv_.notify_all();
}

void
BootstrapService::workerLoop()
{
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        workCv_.wait(lock, [&] {
            return haveRunnableWorkLocked()
                   || (stopping_ && idleLocked());
        });
        if (stopping_ && idleLocked()) {
            return;
        }

        // Backpressure accounting: a stage with waiting work held
        // back only by its downstream bound, sampled once per
        // executed loop iteration.
        if (!paused_ && !intake_.empty()
            && queue_.pendingRequests() >= rotateCap_) {
            board_.backpressured(Stage::Front);
        }
        if (!paused_ && !queue_.empty() && !finishQ_.hasRoom()) {
            board_.backpressured(Stage::Rotate);
        }

        // A crashed pod fails its backlog instead of computing it.
        if (crashWorkLocked()) {
            crashFlushLocked();
            workCv_.notify_all();
            continue;
        }

        // Stage precedence front > dispatch > finish keeps the
        // pre-pipeline scheduling order on a single worker: every
        // admitted request is ranked by the ItemQueue before batches
        // form, and completed rotations are repacked in completion
        // order once dispatch is gated or the queues empty out.
        if (canFrontLocked()) {
            // Front phase: modulus switch + extraction, off the lock.
            double readyMs = 0;
            const uint64_t id = intake_.pop(&readyMs);
            Request* p = live_.at(id).get();
            if (injectRemaining_ > 0) {
                // Chaos fault: this request fails before any compute,
                // with the retryable error the cluster fails over on.
                --injectRemaining_;
                ++injectedFailures_;
                failRequestLocked(
                    p, std::make_exception_ptr(PodError(
                           "injected pod fault: request failed")));
                workCv_.notify_all();
                continue;
            }
            ++inFlight_;
            const double startMs = nowMs();
            board_.taskStarted(Stage::Front, startMs, readyMs);
            lock.unlock();
            std::exception_ptr err = runFront(p);
            lock.lock();
            --inFlight_;
            board_.taskFinished(Stage::Front, startMs, nowMs());
            if (err) {
                failRequestLocked(p, std::move(err));
            } else if (crashed_) {
                // Crashed while the front phase ran: the work is lost.
                failRequestLocked(
                    p, std::make_exception_ptr(PodError(
                           "bootstrap pod crashed: request lost")));
            } else {
                p->rotateReadyMs = nowMs();
                queue_.addRequest(p->id, p->opts.priority,
                                  p->deadlineAbsMs, p->lwes.size(),
                                  p->opts.fairRank);
                board_.enqueued(Stage::Rotate, p->lwes.size());
            }
            workCv_.notify_all();
            continue;
        }

        if (canDispatchLocked()) {
            // Batch dispatch: form the next batch for the
            // least-loaded free lane (both decided under the lock, so
            // the scheduler state is consistent), run the exchange
            // off the lock.
            const size_t lane = pickLaneLocked();
            const double slackMs = queue_.minDeadlineAbsMs() - nowMs();
            const size_t size = planner_.chooseBatchSize(
                queue_.pendingItems(), slackMs);
            PlannedBatch batch = queue_.formBatch(size);
            HEAP_ASSERT(!batch.items.empty(), "empty batch formed");

            std::vector<ItemRef> refs;
            refs.reserve(batch.items.size());
            const double now = nowMs();
            double readyMs = now;
            Request* lastReq = nullptr;
            for (const WorkItem& w : batch.items) {
                Request* p = live_.at(w.requestId).get();
                refs.push_back(ItemRef{p, w.index});
                if (p != lastReq) { // items arrive grouped per request
                    if (p->firstDispatchMs < 0) {
                        p->firstDispatchMs = now;
                    }
                    ++p->batches;
                    readyMs = std::min(readyMs, p->rotateReadyMs);
                    lastReq = p;
                }
            }
            ++batches_;
            occupancySum_ += batch.distinctRequests;
            itemsSum_ += batch.items.size();
            laneBusy_[lane] = 1;
            laneLoadMs_[lane] +=
                planner_.batchCostMs(batch.items.size(), lane > 0);
            ++inFlight_;
            board_.dequeued(Stage::Rotate, batch.items.size());
            board_.taskStarted(Stage::Rotate, now, readyMs);
            lock.unlock();
            runBatch(lane, refs, now);
            lock.lock();
            --inFlight_;
            laneBusy_[lane] = 0;
            workCv_.notify_all();
            continue;
        }

        if (!finishQ_.empty()) {
            // Finish phase: repack + rescale + fulfil, off the lock.
            double readyMs = 0;
            Request* p = finishQ_.pop(&readyMs);
            ++inFlight_;
            const double startMs = nowMs();
            board_.taskStarted(Stage::Finish, startMs, readyMs);
            lock.unlock();
            finishRequest(p, startMs);
            lock.lock();
            --inFlight_;
            workCv_.notify_all();
            continue;
        }
        // Lost a race to another worker; re-evaluate the predicate.
    }
}

ServiceMetrics
BootstrapService::metrics() const
{
    std::lock_guard<std::mutex> lock(m_);
    ServiceMetrics m;
    m.submitted = submitted_;
    m.completed = completed_;
    m.failed = failed_;
    m.rejected = rejected_;
    m.deadlineMisses = deadlineMisses_;
    m.queueDepth = live_.size();
    m.maxQueueDepth = maxQueueDepth_;
    m.batches = batches_;
    if (batches_ > 0) {
        m.batchOccupancy = static_cast<double>(occupancySum_)
                           / static_cast<double>(batches_);
        m.meanBatchItems = static_cast<double>(itemsSum_)
                           / static_cast<double>(batches_);
    }
    if (latency_.count() > 0) {
        m.p50Ms = latency_.percentile(50);
        m.p95Ms = latency_.percentile(95);
        m.p99Ms = latency_.percentile(99);
        m.meanMs = latency_.mean();
    }
    m.injectedFailures = injectedFailures_;
    m.crashes = crashes_;
    m.wireBytesOut = wireOut_;
    m.wireBytesIn = wireIn_;
    m.retransmits = retransmits_;
    m.reclaimedBatches = reclaimed_;
    m.minReturnedBudgetBits = minReturnedBudgetBits_;
    m.guardTrips = guardTrips_;
    m.pipeline = board_.snapshot();
    return m;
}

} // namespace heap::serve
