/**
 * @file
 * PirService — the encrypted-lookup serving pod: the second tenant
 * class next to BootstrapService, riding the same worker-pool /
 * ItemQueue / admission-control machinery.
 *
 * Many client threads submit() RGSW-packed queries (pir::PirQuery)
 * against one shared pir::PirServer; the service decomposes each
 * query's dimension-0 fold into its firstDimGroups() independent
 * work items, the ItemQueue packs items from *different* queries
 * into batches (priority / EDF / weighted-fair order, same as
 * bootstrap), and the worker that settles a query's last group runs
 * the remaining-dimension fold inline and fulfils the ticket.
 *
 * Guarantees (mirroring BootstrapService, asserted by
 * tests/pir_serve_test.cc):
 *  - Determinism: each returned answer is byte-identical to
 *    PirServer::answer() of the same query — for every worker count,
 *    batch shape, and fault pattern — because the fold is pure
 *    arithmetic (foldFirstGroup per group, finishFold in group
 *    order; no RNG, no data-dependent scheduling effects).
 *  - Backpressure: submissions beyond maxQueuedRequests are rejected
 *    with a UserError; queueing is bounded.
 *  - Chaos surface: pause()/resume() (wedge), crash()/recover()
 *    (every live request fails with a retryable PodError; the
 *    cluster's failover recomputes it on a replica), and
 *    injectFailures() — the same fault alphabet the chaos harness
 *    drives on bootstrap pods.
 *  - Clean shutdown: shutdown()/destruction stops intake, settles
 *    every accepted request, and joins the workers.
 */

#ifndef HEAP_SERVE_PIR_SERVICE_H
#define HEAP_SERVE_PIR_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pir/pir.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace heap::serve {

/** PIR pod construction knobs (the bootstrap ServiceConfig's shape,
 *  minus the pipeline/link fields a fold does not have). */
struct PirServiceConfig {
    /** Worker threads: group folds and finish folds run on these. */
    size_t workers = 1;
    /** Admission cap: live queries (queued + running) beyond this are
     *  rejected at submit(). Bounds service memory. */
    size_t maxQueuedRequests = 64;
    /** Batch size cap in first-dimension groups; 0 = everything
     *  pending (one batch per dispatch). */
    size_t maxBatchItems = 0;
    /** Batches a pending query may be skipped by before it jumps the
     *  priority order (starvation protection). */
    size_t starvationPasses = 8;
};

/**
 * Asynchronous encrypted-lookup server over one immutable
 * pir::PirServer (shared, thread-safe: answer folds are const).
 */
class PirService {
  public:
    /** @param server borrowed; must outlive the service. */
    PirService(const pir::PirServer& server, PirServiceConfig cfg = {});

    /** Drains accepted work, then joins the workers (shutdown()). */
    ~PirService();

    PirService(const PirService&) = delete;
    PirService& operator=(const PirService&) = delete;

    /**
     * Submits one lookup. Shape-checks the query against the server's
     * parameters and throws UserError immediately on a mismatch, when
     * the service is shutting down or crashed, or when admission
     * control is at capacity (backpressure — the rejection is
     * counted, nothing is queued). The query is shared, not copied:
     * the cluster's failover re-submits the same encrypted query to a
     * replica.
     *
     * `ticket`, when non-null, is fulfilled instead of a fresh one
     * (cluster failover, same contract as BootstrapService::submit).
     */
    std::shared_ptr<PirTicket>
    submit(std::shared_ptr<const pir::PirQuery> query,
           SubmitOptions opts = {},
           std::shared_ptr<PirTicket> ticket = nullptr);

    /** Stops forming batches (intake still accepts up to capacity).
     *  Also the chaos harness's "wedge" fault. */
    void pause();
    void resume();

    /** Crash the pod (chaos harness): every live query fails with a
     *  retryable PodError — synchronously for everything undispatched,
     *  through the worker for groups being folded right now — and
     *  submit() rejects until recover(). */
    void crash();

    /** Leave the crashed state: intake accepts again. */
    void recover();

    /** Whether the pod is currently crashed (cheap routing probe). */
    bool
    crashed() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return crashed_;
    }

    /** Chaos harness: fail the next `n` queries that reach the
     *  dispatch stage with a retryable PodError. */
    void injectFailures(uint64_t n);

    /** Blocks until every accepted query has settled. Must not be
     *  called while paused. */
    void drain();

    /** Stops intake, settles every accepted query, joins the
     *  workers. Idempotent. */
    void shutdown();

    /** Point-in-time metrics snapshot: the bootstrap ServiceMetrics
     *  shape with PIR meanings — batches are group-fold batches,
     *  minReturnedBudgetBits is the analytic answer floor, and the
     *  link/pipeline fields stay zero (a fold has no wire). */
    ServiceMetrics metrics() const;

    /** Live queries (queued + running) — the admission-control
     *  occupancy. Cheaper than metrics() for routing decisions. */
    size_t
    liveRequests() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return live_.size();
    }

    const PirServiceConfig& config() const { return cfg_; }

    const pir::PirServer& server() const { return *server_; }

  private:
    /** Server-side state of one accepted query. */
    struct Request {
        uint64_t id = 0;
        std::shared_ptr<PirTicket> ticket;
        std::shared_ptr<const pir::PirQuery> query;
        SubmitOptions opts;
        double arrivalMs = 0;
        double deadlineAbsMs = 0; ///< infinity when none
        double firstDispatchMs = -1;
        /** Dimension-0 group results, written in group order. */
        std::vector<rlwe::Ciphertext> firstPass;
        size_t remaining = 0; ///< groups still outstanding
        size_t batches = 0;
        /** First failure of a batch carrying this query's groups;
         *  the ticket fails with it once every group settles. */
        std::exception_ptr batchError;
    };

    /** (request, group) reference resolved while the lock is held. */
    struct ItemRef {
        Request* req = nullptr;
        size_t group = 0;
    };

    void workerLoop();
    /** Finish stage: fold dimensions 1..d-1 over the collected group
     *  results and settle the ticket. Called without the lock. */
    void finishRequest(Request* p);
    void failRequestLocked(Request* p, std::exception_ptr err);
    double nowMs() const;
    bool canIntakeLocked() const;
    bool canDispatchLocked() const;
    bool haveRunnableWorkLocked() const;
    bool idleLocked() const;
    /** Crashed with flushable queued work pending. */
    bool crashWorkLocked() const;
    /** Crash drain: fails everything undispatched. Lock held. */
    void crashFlushLocked();

    const pir::PirServer* server_;
    PirServiceConfig cfg_;
    ItemQueue queue_;

    mutable std::mutex m_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    /** Admitted, not yet offered to the ItemQueue (the injection /
     *  validation point, like the bootstrap front stage). */
    std::deque<uint64_t> intake_;
    std::unordered_map<uint64_t, std::unique_ptr<Request>> live_;
    bool paused_ = false;
    bool crashed_ = false;
    bool stopping_ = false;
    bool joined_ = false;
    uint64_t injectRemaining_ = 0;
    size_t inFlight_ = 0; ///< batches + finish folds being computed
    uint64_t nextId_ = 1;

    // Metrics (guarded by m_).
    std::chrono::steady_clock::time_point epoch_;
    uint64_t submitted_ = 0, completed_ = 0, failed_ = 0,
             rejected_ = 0, deadlineMisses_ = 0, completionSeq_ = 0;
    size_t maxQueueDepth_ = 0;
    uint64_t batches_ = 0, occupancySum_ = 0, itemsSum_ = 0;
    uint64_t injectedFailures_ = 0, crashes_ = 0;
    LatencyReservoir latency_;
    double minReturnedBudgetBits_ =
        std::numeric_limits<double>::infinity();
    uint64_t guardTrips_ = 0;
};

} // namespace heap::serve

#endif // HEAP_SERVE_PIR_SERVICE_H
