/**
 * @file
 * Staged-pipeline plumbing of the bootstrap serving runtime: stage
 * identities, the bounded stage queues sitting between them, and the
 * PipelineBoard that accounts per-stage occupancy, queue depth, and
 * stall time.
 *
 * The service runs every request through three stages —
 *
 *   Front  : modulus switch + LWE extraction (Algorithm 2 steps 1-2)
 *   Rotate : blind-rotate batches dispatched across lanes
 *            (primary-local + one per secondary link)
 *   Finish : repack + rescale + analytic output budget (steps 4-5)
 *
 * — connected by bounded queues so repack of batch i overlaps
 * rotation of batch i+1, the software analogue of the compute/
 * communication overlap in HEAP's Section V schedule. Backpressure is
 * enforced at stage *entry* (a worker does not start a stage task
 * unless the downstream queue has room), never by blocking mid-push,
 * so the shared worker pool can never deadlock on a full queue.
 *
 * Nothing here is thread-safe on its own: the service mutates queues
 * and board under its single mutex, exactly like the ItemQueue.
 */

#ifndef HEAP_SERVE_PIPELINE_H
#define HEAP_SERVE_PIPELINE_H

#include <cstdint>
#include <deque>
#include <limits>

#include "common/check.h"

namespace heap::serve {

/** The three service stages, in dataflow order. */
enum class Stage : size_t {
    Front = 0,  ///< modulus switch + extraction
    Rotate = 1, ///< blind-rotate batch dispatch over lanes
    Finish = 2, ///< repack + rescale + fulfil
};

constexpr size_t kStageCount = 3;

/** Human-readable stage name ("front" / "rotate" / "finish"). */
const char* stageName(Stage s);

/** Point-in-time counters of one stage (see ServiceMetrics). */
struct StageMetrics {
    const char* name = "";
    /** Work units pushed into the stage queue (requests for front and
     *  finish, LWE items for rotate). */
    uint64_t entered = 0;
    /** Stage executions completed (front/finish phases run, rotate
     *  batches dispatched). */
    uint64_t tasks = 0;
    size_t queueDepth = 0;    ///< units currently waiting
    size_t maxQueueDepth = 0; ///< high-water mark since start
    double busyMs = 0;  ///< total wall time spent executing the stage
    double stallMs = 0; ///< total ready-to-started queue wait
    /**
     * busyMs over the pipeline's busy window (first task started to
     * last task finished). Rotate counts every lane, so values above
     * 1.0 mean concurrent lanes; the *sum* across stages above 1.0
     * means stages genuinely overlapped in time.
     */
    double occupancy = 0;
    /** Times a runnable task at this stage was held back because the
     *  downstream queue had no room (backpressure). */
    uint64_t backpressured = 0;
};

/** All three stages plus the overlap summary. */
struct PipelineMetrics {
    StageMetrics stages[kStageCount];
    double windowMs = 0; ///< first task start to last task end
    /** Sum of the per-stage occupancies: > 1.0 proves two stages (or
     *  two rotate lanes) were busy at the same wall-clock time. */
    double overlap = 0;

    const StageMetrics&
    stage(Stage s) const
    {
        return stages[static_cast<size_t>(s)];
    }
};

/**
 * Accounting board for the staged pipeline. The owning service calls
 * the hooks under its lock; timestamps are taken by the caller (its
 * monotonic clock) so the board never touches the clock itself.
 */
class PipelineBoard {
  public:
    /** `units` work units entered the stage queue. */
    void enqueued(Stage s, size_t units);

    /** `units` work units left the stage queue (picked up). */
    void dequeued(Stage s, size_t units);

    /** Absolute queue depth for stages with an external queue (the
     *  rotate stage's ItemQueue tracks its own item count). */
    void setDepth(Stage s, size_t depth);

    /** A worker started a stage task that became ready at `readyMs`. */
    void taskStarted(Stage s, double nowMs, double readyMs);

    /** The task that started at `startMs` finished at `endMs`. */
    void taskFinished(Stage s, double startMs, double endMs);

    /** A runnable task was skipped: downstream queue full. */
    void backpressured(Stage s);

    /** Snapshot with occupancies computed over the busy window. */
    PipelineMetrics snapshot() const;

  private:
    struct Counters {
        uint64_t entered = 0;
        uint64_t tasks = 0;
        uint64_t backpressured = 0;
        size_t depth = 0;
        size_t maxDepth = 0;
        double busyMs = 0;
        double stallMs = 0;
    };

    Counters&
    at(Stage s)
    {
        return c_[static_cast<size_t>(s)];
    }

    Counters c_[kStageCount];
    double firstStartMs_ = std::numeric_limits<double>::infinity();
    double lastEndMs_ = 0;
};

/**
 * FIFO stage queue with a capacity and per-entry ready timestamps
 * (feeding the board's stall accounting). Capacity is advisory at
 * *entry*: hasRoom() gates upstream work, push() itself never blocks
 * or fails — in-flight upstream tasks may briefly overshoot the bound
 * by the number of busy lanes (see DESIGN.md "Staged pipeline").
 */
template <typename T>
class StageQueue {
  public:
    StageQueue(Stage stage, PipelineBoard* board)
        : stage_(stage), board_(board)
    {
    }

    void
    setCapacity(size_t cap)
    {
        HEAP_CHECK(cap >= 1, "stage queue capacity must be >= 1");
        cap_ = cap;
    }

    size_t capacity() const { return cap_; }
    bool hasRoom() const { return q_.size() < cap_; }
    bool empty() const { return q_.empty(); }
    size_t size() const { return q_.size(); }

    void
    push(T value, double nowMs)
    {
        q_.push_back(Slot{std::move(value), nowMs});
        board_->enqueued(stage_, 1);
    }

    /** Pops the oldest entry; `*readyMs` gets its push timestamp. */
    T
    pop(double* readyMs)
    {
        HEAP_ASSERT(!q_.empty(), "pop on an empty stage queue");
        Slot s = std::move(q_.front());
        q_.pop_front();
        board_->dequeued(stage_, 1);
        *readyMs = s.readyMs;
        return std::move(s.value);
    }

  private:
    struct Slot {
        T value;
        double readyMs;
    };

    std::deque<Slot> q_;
    Stage stage_;
    PipelineBoard* board_;
    size_t cap_ = std::numeric_limits<size_t>::max();
};

} // namespace heap::serve

#endif // HEAP_SERVE_PIPELINE_H
