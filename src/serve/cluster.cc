#include "serve/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heap::serve {

namespace {

/** splitmix64 finalizer: a fixed, platform-independent mix so the
 *  tenant -> pod map is stable across runs and hosts. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** A pod with this much modeled outstanding work counts as holding a
 *  backlog for wedge detection (floating-point refunds may leave
 *  dust, so exact zero is the wrong test). */
constexpr double kBacklogEpsMs = 1e-9;

} // namespace

ServiceCluster::ServiceCluster(
    std::vector<boot::DistributedBootstrapper*> pods,
    TenantRegistry& registry, ClusterConfig cfg)
    : pods_(std::move(pods)),
      registry_(&registry),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now())
{
    HEAP_CHECK(!pods_.empty(), "cluster with no pods");
    for (const auto* p : pods_) {
        HEAP_CHECK(p != nullptr, "null pod bootstrapper");
    }
    HEAP_CHECK(cfg_.failover.maxAttempts >= 1,
               "failover needs at least one attempt");
    HEAP_CHECK(cfg_.failover.backoffMs >= 0,
               "negative failover backoff");
    itemsPerRequest_ = pods_[0]->context().basis()->n();
    for (const auto* p : pods_) {
        HEAP_CHECK(p->context().basis()->n() == itemsPerRequest_,
                   "pods disagree on the ring dimension");
    }
    if (cfg_.pod.costModel == nullptr) {
        cfg_.pod.costModel = cfg_.costModel;
    }
    tenantKeyBytesDefault_ =
        cfg_.defaultTenantKeyBytes != 0 ? cfg_.defaultTenantKeyBytes
        : cfg_.costModel != nullptr
            ? static_cast<size_t>(cfg_.costModel->keyReadBytes())
            : (size_t{1} << 20);
    // Modeled cost of one request's rotate work: the spill policy's
    // load unit. Any positive constant works without a model — load
    // is then proportional to outstanding requests.
    requestCostMs_ =
        cfg_.costModel != nullptr
            ? cfg_.costModel->blindRotateBatchMs(itemsPerRequest_)
                  + cfg_.costModel->batchCommMs(itemsPerRequest_)
            : static_cast<double>(itemsPerRequest_) * 0.01;
    if (cfg_.pirServer != nullptr) {
        const pir::PirParams& pp = cfg_.pirServer->params();
        pirItemsPerRequest_ = pp.firstDimGroups();
        if (cfg_.pirModel != nullptr) {
            hw::PirShape shape;
            shape.ringN = pp.basis->n();
            shape.limbs = pp.limbs;
            shape.digitsPerLimb = pp.gadget.digitsPerLimb;
            shape.dims = pp.dims;
            const hw::PirBreakdown b = cfg_.pirModel->answer(shape);
            pirRequestCostMs_ = b.foldMs + b.responseCommMs;
        } else {
            // Any positive constant works: lookup load is then
            // proportional to outstanding first-dim groups.
            pirRequestCostMs_ =
                static_cast<double>(pirItemsPerRequest_) * 0.01;
        }
    }
    services_.reserve(pods_.size());
    caches_.reserve(pods_.size());
    breakers_.reserve(pods_.size());
    if (cfg_.pirServer != nullptr) {
        pirServices_.reserve(pods_.size());
    }
    for (auto* p : pods_) {
        services_.push_back(
            std::make_unique<BootstrapService>(*p, cfg_.pod));
        if (cfg_.pirServer != nullptr) {
            pirServices_.push_back(std::make_unique<PirService>(
                *cfg_.pirServer, cfg_.pirPod));
        }
        caches_.push_back(std::make_unique<BootstrappingKeyCache>(
            cfg_.keyCacheBytes));
        breakers_.emplace_back(cfg_.breaker);
    }
    podLoadMs_.assign(pods_.size(), 0.0);
    if (cfg_.chaos) {
        chaos_ = std::make_unique<ChaosEngine>(*cfg_.chaos);
    }
    failoverThread_ = std::thread([this] { failoverLoop(); });
}

ServiceCluster::~ServiceCluster()
{
    shutdown();
}

double
ServiceCluster::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

size_t
ServiceCluster::preferredPod(uint64_t tenantId) const
{
    return static_cast<size_t>(mix64(tenantId) % services_.size());
}

BreakerStats
ServiceCluster::breakerStats(size_t i) const
{
    std::lock_guard<std::mutex> lock(m_);
    return breakers_.at(i).stats();
}

std::vector<ServiceCluster::Candidate>
ServiceCluster::routeCandidates(uint64_t tenantId, bool gateHealth)
{
    const size_t preferred = preferredPod(tenantId);
    std::vector<Candidate> cands;
    cands.reserve(services_.size());
    {
        std::lock_guard<std::mutex> lock(m_);
        if (gateHealth) {
            for (size_t i = 0; i < services_.size(); ++i) {
                breakers_[i].noteDecision(podLoadMs_[i]
                                          > kBacklogEpsMs);
            }
            for (size_t i = 0; i < services_.size(); ++i) {
                const CircuitBreaker::Gate g = breakers_[i].gate();
                if (g.admit) {
                    cands.push_back(
                        Candidate{i, g.probe, podLoadMs_[i]});
                }
            }
        } else {
            // Failover re-dispatch: breaker state is driven ONLY by
            // client routing decisions and attempt outcomes, both
            // deterministic in count — the failover thread's sweeps
            // are timing-dependent and must not tick the skip or
            // staleness counters. Retries consider every pod (the
            // dispatch loop skips crashed/full ones) so an all-open
            // moment cannot strand a flight.
            for (size_t i = 0; i < services_.size(); ++i) {
                cands.push_back(
                    Candidate{i, false, podLoadMs_[i]});
            }
        }
    }
    // Sort OUTSIDE the lock, over the load snapshot taken under it:
    // probes first (carrying the probe is how an open breaker ever
    // observes recovery), then the tenant's preferred pod, then the
    // rest by ascending modeled load.
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                         if (a.probe != b.probe) {
                             return a.probe;
                         }
                         const bool ap = a.pod == preferred;
                         const bool bp = b.pod == preferred;
                         if (ap != bp) {
                             return ap;
                         }
                         return a.loadMs < b.loadMs;
                     });
    return cands;
}

ServiceCluster::Dispatch
ServiceCluster::tryDispatch(const std::shared_ptr<Flight>& flight,
                            bool isRetry)
{
    std::vector<Candidate> cands =
        routeCandidates(flight->tenantId, /*gateHealth=*/!isRetry);
    if (cands.empty()) {
        return Dispatch::NoHealthy;
    }
    if (isRetry && flight->lastPod >= 0 && cands.size() > 1) {
        // "The next healthy candidate": the pod that just failed the
        // request goes last, not first — it stays eligible only as
        // the final fallback.
        std::stable_partition(
            cands.begin(), cands.end(), [&](const Candidate& c) {
                return static_cast<int>(c.pod) != flight->lastPod;
            });
    }
    const size_t preferred = preferredPod(flight->tenantId);
    const bool isPir = flight->kind == FlightKind::Pir;
    const double costMs = flight->costMs;
    for (size_t c = 0; c < cands.size(); ++c) {
        const size_t podIdx = cands[c].pod;
        const bool probe = cands[c].probe;
        BootstrapService& svc = *services_[podIdx];
        PirService* pirSvc =
            isPir ? pirServices_[podIdx].get() : nullptr;
        const bool podCrashed =
            isPir ? pirSvc->crashed() : svc.crashed();
        const bool podFull =
            isPir ? pirSvc->liveRequests()
                        >= cfg_.pirPod.maxQueuedRequests
                  : svc.liveRequests() >= cfg_.pod.maxQueuedRequests;
        if (podCrashed) {
            if (!isRetry) {
                // Observing a crash at a routing decision IS a health
                // outcome: it opens the breaker without waiting for
                // live requests to fail, and resolves a probe as
                // failed (the pod has not recovered), keeping the
                // probe cadence. Retry sweeps skip silently (see
                // routeCandidates).
                std::lock_guard<std::mutex> lock(m_);
                breakers_[podIdx].onOutcome(/*ok=*/false, probe);
            }
            continue;
        }
        if (podFull) {
            // Full is not unhealthy: release the probe (if any) so
            // the next routing decision re-probes, and move on.
            if (probe) {
                std::lock_guard<std::mutex> lock(m_);
                breakers_[podIdx].cancelProbe();
            }
            continue;
        }
        // The attempt's pod ticket is created HERE so the completion
        // hook can capture it: the pod fulfils it before invoking the
        // hook, which is what lets onAttemptDone() extract the result
        // of a settled attempt without racing the pod's workers.
        std::shared_ptr<BootstrapTicket> attempt;
        std::shared_ptr<PirTicket> pirAttempt;
        SubmitOptions opts = flight->baseOpts;
        if (std::isfinite(flight->deadlineAbsMs)) {
            // Re-base the deadline on the remaining cluster budget so
            // a failed-over attempt keeps an honest EDF position.
            opts.deadlineMs =
                std::max(0.0, flight->deadlineAbsMs - nowMs());
        }
        if (isPir) {
            pirAttempt = std::make_shared<PirTicket>();
        } else {
            attempt = std::make_shared<BootstrapTicket>();
        }
        opts.onDone = [this, flight, attempt, pirAttempt, podIdx,
                       probe](const RequestReport& rep, bool ok) {
            onAttemptDone(flight, attempt, pirAttempt, podIdx, probe,
                          rep, ok);
        };
        {
            // Charge the modeled load and count the attempt before
            // the pod can complete it: the hook's refund then always
            // balances, and its attempts read is never stale.
            std::lock_guard<std::mutex> lock(m_);
            podLoadMs_[podIdx] += costMs;
            ++flight->attempts;
        }
        try {
            if (isPir) {
                pirSvc->submit(flight->query, std::move(opts),
                               pirAttempt);
            } else {
                svc.submit(flight->input, std::move(opts), attempt);
            }
        } catch (const UserError&) {
            // Lost the admission race (the pod filled or crashed
            // between the probe above and submit): refund and try the
            // next candidate. No hook was installed, so this is the
            // only accounting path for the attempt.
            std::lock_guard<std::mutex> lock(m_);
            podLoadMs_[podIdx] -= costMs;
            --flight->attempts;
            if (probe) {
                breakers_[podIdx].cancelProbe();
            }
            continue;
        }
        // The attempt is on exactly one pod: account the key touch
        // (a failover lands cache-cold on the new pod — a real,
        // counted key-traffic event) and the routing outcome.
        caches_[podIdx]->touch(flight->tenantId, flight->keyBytes);
        {
            std::lock_guard<std::mutex> lock(m_);
            if (!isRetry) {
                if (podIdx == preferred) {
                    ++routedPreferred_;
                } else {
                    ++spilled_;
                }
            }
            // Probe admissions further down the candidate list were
            // never carried: revert them so the next routing decision
            // probes again.
            for (size_t r = c + 1; r < cands.size(); ++r) {
                if (cands[r].probe) {
                    breakers_[cands[r].pod].cancelProbe();
                }
            }
        }
        return Dispatch::Placed;
    }
    return Dispatch::NoRoom;
}

void
ServiceCluster::onAttemptDone(
    const std::shared_ptr<Flight>& flight,
    const std::shared_ptr<BootstrapTicket>& attempt,
    const std::shared_ptr<PirTicket>& pirAttempt, size_t podIdx,
    bool probe, const RequestReport& rep, bool ok)
{
    // May run under the pod's lock (failure path): cluster lock,
    // registry, and ticket locks only — never back into a pod.
    uint32_t attempts = 0;
    {
        std::lock_guard<std::mutex> lock(m_);
        podLoadMs_[podIdx] -= flight->costMs;
        breakers_[podIdx].onOutcome(ok, probe);
        attempts = flight->attempts;
    }
    if (ok) {
        settleSuccess(flight, attempt, pirAttempt, podIdx, rep);
        return;
    }
    std::exception_ptr err = pirAttempt != nullptr
                                 ? pirAttempt->error()
                                 : attempt->error();
    bool retryable = false;
    if (err) {
        try {
            std::rethrow_exception(err);
        } catch (const PodError&) {
            retryable = true;
        } catch (...) {
            // UserError / InternalError / anything else would fail
            // identically on every replica: terminal.
        }
    } else {
        err = std::make_exception_ptr(
            PodError("pod attempt failed without a recorded error"));
        retryable = true;
    }
    bool deadlineOk = true;
    if (cfg_.failover.respectDeadline
        && std::isfinite(flight->deadlineAbsMs)) {
        deadlineOk = nowMs() + flight->costMs
                     <= flight->deadlineAbsMs;
    }
    if (retryable && attempts < cfg_.failover.maxAttempts
        && deadlineOk) {
        flight->lastPod = static_cast<int>(podIdx);
        {
            std::lock_guard<std::mutex> lock(m_);
            ++failovers_;
        }
        {
            // Never re-dispatch from here — this hook may hold the
            // failing pod's lock, and submitting to another pod nests
            // pod locks (deadlock). The failover thread re-dispatches.
            std::lock_guard<std::mutex> lock(retryM_);
            retryQ_.push_back(Retry{flight, err,
                                    nowMs() + cfg_.failover.backoffMs});
        }
        retryCv_.notify_all();
        return;
    }
    settleFailure(flight, err, static_cast<int>(podIdx), rep,
                  /*exhausted=*/retryable);
}

void
ServiceCluster::settleSuccess(
    const std::shared_ptr<Flight>& flight,
    const std::shared_ptr<BootstrapTicket>& attempt,
    const std::shared_ptr<PirTicket>& pirAttempt, size_t podIdx,
    const RequestReport& rep)
{
    RequestReport r = rep;
    r.servedPod = static_cast<int>(podIdx);
    r.totalMs = nowMs() - flight->submitMs;
    if (std::isfinite(flight->deadlineAbsMs)) {
        r.deadlineMissed = nowMs() > flight->deadlineAbsMs;
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        r.attempts = flight->attempts;
        ++requestsCompleted_;
        if (flight->kind == FlightKind::Pir) {
            ++pirCompleted_;
        }
        if (flight->attempts > 1) {
            ++failoverSucceeded_;
        }
        HEAP_ASSERT(liveFlights_ >= 1, "settle without a live flight");
        --liveFlights_;
    }
    // Exactly one registry completion per logical request, at the
    // terminal outcome — attempts in between were invisible to the
    // tenant accounting (admit/refund conservation).
    registry_->onComplete(flight->tenantId, flight->items, true);
    // The pod fulfilled the attempt ticket before invoking the hook,
    // so these wait()s return immediately with the result.
    if (flight->kind == FlightKind::Pir) {
        flight->pirClientTicket->fulfil(pirAttempt->wait(), r);
    } else {
        flight->clientTicket->fulfil(attempt->wait(), r);
    }
    if (flight->userDone) {
        flight->userDone(r, true);
    }
    settleCv_.notify_all();
}

void
ServiceCluster::settleFailure(const std::shared_ptr<Flight>& flight,
                              std::exception_ptr err, int podIdx,
                              const RequestReport& rep, bool exhausted)
{
    RequestReport r = rep;
    r.servedPod = podIdx;
    r.totalMs = nowMs() - flight->submitMs;
    if (std::isfinite(flight->deadlineAbsMs)) {
        r.deadlineMissed = nowMs() > flight->deadlineAbsMs;
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        r.attempts = flight->attempts;
        ++requestsFailed_;
        if (flight->kind == FlightKind::Pir) {
            ++pirFailed_;
        }
        if (exhausted) {
            ++failoverExhausted_;
        }
        HEAP_ASSERT(liveFlights_ >= 1, "settle without a live flight");
        --liveFlights_;
    }
    registry_->onComplete(flight->tenantId, flight->items, false);
    if (flight->kind == FlightKind::Pir) {
        flight->pirClientTicket->fail(std::move(err), r);
    } else {
        flight->clientTicket->fail(std::move(err), r);
    }
    if (flight->userDone) {
        flight->userDone(r, false);
    }
    settleCv_.notify_all();
}

void
ServiceCluster::failoverLoop()
{
    std::unique_lock<std::mutex> lock(retryM_);
    for (;;) {
        retryCv_.wait(lock,
                      [&] { return stopRetry_ || !retryQ_.empty(); });
        if (retryQ_.empty()) {
            if (stopRetry_) {
                return;
            }
            continue;
        }
        const bool stopping = stopRetry_;
        const double now = nowMs();
        // Sweep: drain EVERY due retry at once instead of popping one
        // per wakeup — under a pod crash the queue holds that pod's
        // whole backlog, and a per-retry wakeup/dispatch round trip
        // each would serialize the recovery. Not-yet-due retries stay
        // queued; the earliest backoff gate bounds the next sleep.
        std::vector<Retry> sweep;
        double nextDueMs = std::numeric_limits<double>::infinity();
        {
            std::deque<Retry> notDue;
            while (!retryQ_.empty()) {
                Retry r = std::move(retryQ_.front());
                retryQ_.pop_front();
                if (!stopping && r.notBeforeMs > now) {
                    nextDueMs = std::min(nextDueMs, r.notBeforeMs);
                    notDue.push_back(std::move(r));
                } else {
                    sweep.push_back(std::move(r));
                }
            }
            retryQ_ = std::move(notDue);
        }
        if (sweep.empty()) {
            // Backoff gate: sleep until the earliest opens (or new
            // work / shutdown wakes us).
            retryCv_.wait_for(lock,
                              std::chrono::duration<double, std::milli>(
                                  nextDueMs - now));
            continue;
        }
        // Group the sweep per last-failed pod (stable, so enqueue
        // order is preserved within a group): a crashed pod's whole
        // backlog re-dispatches as one contiguous batch, and each
        // group's "failed pod goes last" candidate order stays
        // coherent across its members. Per-retry admission and
        // refund accounting is untouched — tryDispatch charges and
        // refunds exactly as the one-at-a-time loop did.
        std::stable_sort(sweep.begin(), sweep.end(),
                         [](const Retry& a, const Retry& b) {
                             return a.flight->lastPod
                                    < b.flight->lastPod;
                         });
        {
            std::lock_guard<std::mutex> cl(m_);
            ++failoverSweeps_;
            maxRetryBatch_ = std::max(maxRetryBatch_, sweep.size());
        }
        lock.unlock();
        std::vector<Retry> requeue;
        for (Retry& r : sweep) {
            if (stopping) {
                // Pods are shut down: nothing can carry the retry.
                RequestReport rep;
                rep.id = r.flight->seq;
                settleFailure(r.flight, r.lastError, -1, rep,
                              /*exhausted=*/true);
                continue;
            }
            if (tryDispatch(r.flight, /*isRetry=*/true)
                != Dispatch::Placed) {
                bool abandon = false;
                if (cfg_.failover.respectDeadline
                    && std::isfinite(r.flight->deadlineAbsMs)) {
                    abandon = nowMs() + r.flight->costMs
                              > r.flight->deadlineAbsMs;
                }
                if (abandon) {
                    RequestReport rep;
                    rep.id = r.flight->seq;
                    settleFailure(r.flight, r.lastError, -1, rep,
                                  /*exhausted=*/true);
                } else {
                    // No pod can take it right now (full, crashed,
                    // or breaker-open). Room opens as pods drain or
                    // chaos recovers them: re-enqueue with a small
                    // pacing delay instead of spinning.
                    r.notBeforeMs =
                        nowMs()
                        + std::max(cfg_.failover.backoffMs, 0.2);
                    requeue.push_back(std::move(r));
                }
            }
        }
        lock.lock();
        for (Retry& r : requeue) {
            retryQ_.push_back(std::move(r));
        }
    }
}

void
ServiceCluster::submitFlight(const std::shared_ptr<Flight>& flight,
                             SubmitOptions opts)
{
    const uint64_t tenantId = flight->tenantId;
    HEAP_CHECK(tenantId != 0, "tenant id 0 is reserved");
    const TenantSpec& spec = registry_->spec(tenantId);
    // Key-cache charge: the tenant's declared footprint, else the
    // cluster default (cost model's key-read bytes when available).
    // Validated before admission so a misconfigured tenant cannot
    // leak an in-flight slot or poison the candidate loop.
    const size_t keyBytes =
        spec.keyBytes != 0 ? spec.keyBytes : tenantKeyBytesDefault_;
    HEAP_CHECK(keyBytes <= cfg_.keyCacheBytes,
               "tenant " << tenantId << " key footprint (" << keyBytes
                         << " B) exceeds the pod key cache ("
                         << cfg_.keyCacheBytes << " B)");
    flight->keyBytes = keyBytes;

    // The chaos schedule advances on the submission counter — BEFORE
    // routing, so "crash pod 0 before the 12th submit" is observed by
    // the 12th submit's routing decision. Both tenant classes drive
    // the same counter: a mixed workload's fault interleaving is
    // still a pure function of the submission order.
    uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(m_);
        seq = ++submitSeq_;
    }
    if (chaos_) {
        chaos_->advance(seq, services_, pirServices_);
    }
    flight->seq = seq;

    const int effPriority = opts.priority + spec.priority;
    if (cfg_.shedding.enabled) {
        double minLoadMs = std::numeric_limits<double>::infinity();
        double totalLoadMs = 0;
        {
            std::lock_guard<std::mutex> lock(m_);
            for (const double l : podLoadMs_) {
                minLoadMs = std::min(minLoadMs, l);
                totalLoadMs += l;
            }
        }
        // Sheds run BEFORE tryAdmit: a shed request was never
        // admitted, so there is nothing to refund.
        if (cfg_.shedding.brownoutLoadMs > 0
            && totalLoadMs >= cfg_.shedding.brownoutLoadMs
            && effPriority < cfg_.shedding.brownoutMinPriority) {
            {
                std::lock_guard<std::mutex> lock(m_);
                ++rejectedShedBrownout_;
            }
            registry_->onShed(tenantId);
            HEAP_FATAL("brownout: cluster modeled load "
                       << totalLoadMs << " ms >= "
                       << cfg_.shedding.brownoutLoadMs
                       << " ms and priority " << effPriority
                       << " is below the floor "
                       << cfg_.shedding.brownoutMinPriority
                       << ": request shed");
        }
        if (opts.deadlineMs) {
            const double modeledMs =
                cfg_.shedding.slackFactor
                * (minLoadMs + flight->costMs);
            if (*opts.deadlineMs < modeledMs) {
                {
                    std::lock_guard<std::mutex> lock(m_);
                    ++rejectedShedDeadline_;
                }
                registry_->onShed(tenantId);
                HEAP_FATAL("deadline shed: "
                           << *opts.deadlineMs
                           << " ms deadline is under the modeled "
                           << modeledMs
                           << " ms completion (negative slack): "
                           << "request shed");
            }
        }
    }

    const auto adm = registry_->tryAdmit(tenantId, flight->items);
    if (!adm) {
        {
            std::lock_guard<std::mutex> lock(m_);
            ++rejectedQuota_;
        }
        HEAP_FATAL("tenant " << tenantId
                             << " over its in-flight quota: "
                             << "request rejected");
    }
    opts.tenantId = tenantId;
    opts.priority = effPriority;
    opts.fairRank = adm->fairRank;

    flight->userDone = std::move(opts.onDone);
    opts.onDone = nullptr;
    flight->baseOpts = std::move(opts);
    flight->submitMs = nowMs();
    if (flight->baseOpts.deadlineMs) {
        flight->deadlineAbsMs =
            flight->submitMs + *flight->baseOpts.deadlineMs;
    }

    {
        std::lock_guard<std::mutex> lock(m_);
        ++liveFlights_;
    }
    const Dispatch d = tryDispatch(flight, /*isRetry=*/false);
    if (d != Dispatch::Placed) {
        // Total rejection of the initial dispatch: the ONLY place the
        // admission is cancelled rather than completed.
        registry_->cancelAdmit(tenantId, flight->items);
        {
            std::lock_guard<std::mutex> lock(m_);
            --liveFlights_;
            if (d == Dispatch::NoHealthy) {
                ++rejectedUnhealthy_;
            } else {
                ++rejectedCapacity_;
            }
        }
        settleCv_.notify_all();
        if (d == Dispatch::NoHealthy) {
            HEAP_FATAL("no healthy pod (every breaker open): tenant "
                       << tenantId << " request rejected");
        }
        HEAP_FATAL("cluster at capacity (every pod full): tenant "
                   << tenantId << " request rejected");
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        ++submitted_;
        if (flight->kind == FlightKind::Pir) {
            ++pirSubmitted_;
        }
    }
}

std::shared_ptr<BootstrapTicket>
ServiceCluster::submit(uint64_t tenantId, const ckks::Ciphertext& in,
                       SubmitOptions opts)
{
    auto flight = std::make_shared<Flight>();
    flight->tenantId = tenantId;
    flight->kind = FlightKind::Bootstrap;
    flight->input = in;
    flight->clientTicket = std::make_shared<BootstrapTicket>();
    flight->costMs = requestCostMs_;
    flight->items = itemsPerRequest_;
    submitFlight(flight, std::move(opts));
    return flight->clientTicket;
}

std::shared_ptr<PirTicket>
ServiceCluster::submitPir(uint64_t tenantId,
                          std::shared_ptr<const pir::PirQuery> query,
                          SubmitOptions opts)
{
    HEAP_CHECK(cfg_.pirServer != nullptr,
               "cluster has no encrypted-lookup tenant class "
               "(ClusterConfig::pirServer is null)");
    HEAP_CHECK(query != nullptr, "null PIR query");
    // Shape-check at the cluster door: a malformed query is a
    // UserError here, never a retryable pod fault.
    cfg_.pirServer->validateQuery(*query);
    auto flight = std::make_shared<Flight>();
    flight->tenantId = tenantId;
    flight->kind = FlightKind::Pir;
    flight->query = std::move(query);
    flight->pirClientTicket = std::make_shared<PirTicket>();
    flight->costMs = pirRequestCostMs_;
    flight->items = pirItemsPerRequest_;
    submitFlight(flight, std::move(opts));
    return flight->pirClientTicket;
}

void
ServiceCluster::drain()
{
    std::unique_lock<std::mutex> lock(m_);
    settleCv_.wait(lock, [&] { return liveFlights_ == 0; });
}

void
ServiceCluster::shutdown()
{
    // Pods first: every accepted attempt settles during the pod
    // shutdowns, so every completion hook fires and every failover
    // decision is enqueued BEFORE the failover thread is told to
    // stop — no retry can arrive after the thread exits.
    for (auto& svc : services_) {
        svc->shutdown();
    }
    for (auto& svc : pirServices_) {
        svc->shutdown();
    }
    {
        std::lock_guard<std::mutex> lock(retryM_);
        stopRetry_ = true;
    }
    retryCv_.notify_all();
    if (failoverThread_.joinable()) {
        failoverThread_.join();
    }
}

ClusterMetrics
ServiceCluster::metrics() const
{
    ClusterMetrics m;
    {
        std::lock_guard<std::mutex> lock(m_);
        m.submitted = submitted_;
        m.rejectedQuota = rejectedQuota_;
        m.rejectedCapacity = rejectedCapacity_;
        m.rejectedUnhealthy = rejectedUnhealthy_;
        m.rejectedShedDeadline = rejectedShedDeadline_;
        m.rejectedShedBrownout = rejectedShedBrownout_;
        m.routedPreferred = routedPreferred_;
        m.spilled = spilled_;
        m.requestsCompleted = requestsCompleted_;
        m.requestsFailed = requestsFailed_;
        m.liveFlights = liveFlights_;
        m.failovers = failovers_;
        m.failoverSucceeded = failoverSucceeded_;
        m.failoverExhausted = failoverExhausted_;
        m.failoverSweeps = failoverSweeps_;
        m.maxRetryBatch = maxRetryBatch_;
        m.pirSubmitted = pirSubmitted_;
        m.pirCompleted = pirCompleted_;
        m.pirFailed = pirFailed_;
        m.podModeledLoadMs = podLoadMs_;
        m.breakers.reserve(breakers_.size());
        for (const CircuitBreaker& b : breakers_) {
            m.breakers.push_back(b.stats());
            m.breakerOpens += m.breakers.back().opens;
            m.breakerCloses += m.breakers.back().closes;
        }
    }
    if (chaos_) {
        m.chaos = chaos_->stats();
    }
    m.pods.reserve(services_.size());
    for (const auto& svc : services_) {
        m.pods.push_back(svc->metrics());
        m.completed += m.pods.back().completed;
        m.failed += m.pods.back().failed;
    }
    m.pirPods.reserve(pirServices_.size());
    for (const auto& svc : pirServices_) {
        m.pirPods.push_back(svc->metrics());
        m.completed += m.pirPods.back().completed;
        m.failed += m.pirPods.back().failed;
    }
    m.podKeyCaches.reserve(caches_.size());
    for (const auto& c : caches_) {
        m.podKeyCaches.push_back(c->stats());
    }
    m.keyCacheTotal = sumStats(m.podKeyCaches);
    m.tenants = registry_->allStats();
    m.fairnessRatio = registry_->fairnessRatio();
    return m;
}

} // namespace heap::serve
