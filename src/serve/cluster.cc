#include "serve/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace heap::serve {

namespace {

/** splitmix64 finalizer: a fixed, platform-independent mix so the
 *  tenant -> pod map is stable across runs and hosts. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** A pod with this much modeled outstanding work counts as holding a
 *  backlog for wedge detection (floating-point refunds may leave
 *  dust, so exact zero is the wrong test). */
constexpr double kBacklogEpsMs = 1e-9;

} // namespace

ServiceCluster::ServiceCluster(
    std::vector<boot::DistributedBootstrapper*> pods,
    TenantRegistry& registry, ClusterConfig cfg)
    : pods_(std::move(pods)),
      registry_(&registry),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now())
{
    HEAP_CHECK(!pods_.empty(), "cluster with no pods");
    for (const auto* p : pods_) {
        HEAP_CHECK(p != nullptr, "null pod bootstrapper");
    }
    HEAP_CHECK(cfg_.failover.maxAttempts >= 1,
               "failover needs at least one attempt");
    HEAP_CHECK(cfg_.failover.backoffMs >= 0,
               "negative failover backoff");
    itemsPerRequest_ = pods_[0]->context().basis()->n();
    for (const auto* p : pods_) {
        HEAP_CHECK(p->context().basis()->n() == itemsPerRequest_,
                   "pods disagree on the ring dimension");
    }
    if (cfg_.pod.costModel == nullptr) {
        cfg_.pod.costModel = cfg_.costModel;
    }
    tenantKeyBytesDefault_ =
        cfg_.defaultTenantKeyBytes != 0 ? cfg_.defaultTenantKeyBytes
        : cfg_.costModel != nullptr
            ? static_cast<size_t>(cfg_.costModel->keyReadBytes())
            : (size_t{1} << 20);
    // Modeled cost of one request's rotate work: the spill policy's
    // load unit. Any positive constant works without a model — load
    // is then proportional to outstanding requests.
    requestCostMs_ =
        cfg_.costModel != nullptr
            ? cfg_.costModel->blindRotateBatchMs(itemsPerRequest_)
                  + cfg_.costModel->batchCommMs(itemsPerRequest_)
            : static_cast<double>(itemsPerRequest_) * 0.01;
    services_.reserve(pods_.size());
    caches_.reserve(pods_.size());
    breakers_.reserve(pods_.size());
    for (auto* p : pods_) {
        services_.push_back(
            std::make_unique<BootstrapService>(*p, cfg_.pod));
        caches_.push_back(std::make_unique<BootstrappingKeyCache>(
            cfg_.keyCacheBytes));
        breakers_.emplace_back(cfg_.breaker);
    }
    podLoadMs_.assign(pods_.size(), 0.0);
    if (cfg_.chaos) {
        chaos_ = std::make_unique<ChaosEngine>(*cfg_.chaos);
    }
    failoverThread_ = std::thread([this] { failoverLoop(); });
}

ServiceCluster::~ServiceCluster()
{
    shutdown();
}

double
ServiceCluster::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

size_t
ServiceCluster::preferredPod(uint64_t tenantId) const
{
    return static_cast<size_t>(mix64(tenantId) % services_.size());
}

BreakerStats
ServiceCluster::breakerStats(size_t i) const
{
    std::lock_guard<std::mutex> lock(m_);
    return breakers_.at(i).stats();
}

std::vector<ServiceCluster::Candidate>
ServiceCluster::routeCandidates(uint64_t tenantId, bool gateHealth)
{
    const size_t preferred = preferredPod(tenantId);
    std::vector<Candidate> cands;
    cands.reserve(services_.size());
    {
        std::lock_guard<std::mutex> lock(m_);
        if (gateHealth) {
            for (size_t i = 0; i < services_.size(); ++i) {
                breakers_[i].noteDecision(podLoadMs_[i]
                                          > kBacklogEpsMs);
            }
            for (size_t i = 0; i < services_.size(); ++i) {
                const CircuitBreaker::Gate g = breakers_[i].gate();
                if (g.admit) {
                    cands.push_back(
                        Candidate{i, g.probe, podLoadMs_[i]});
                }
            }
        } else {
            // Failover re-dispatch: breaker state is driven ONLY by
            // client routing decisions and attempt outcomes, both
            // deterministic in count — the failover thread's sweeps
            // are timing-dependent and must not tick the skip or
            // staleness counters. Retries consider every pod (the
            // dispatch loop skips crashed/full ones) so an all-open
            // moment cannot strand a flight.
            for (size_t i = 0; i < services_.size(); ++i) {
                cands.push_back(
                    Candidate{i, false, podLoadMs_[i]});
            }
        }
    }
    // Sort OUTSIDE the lock, over the load snapshot taken under it:
    // probes first (carrying the probe is how an open breaker ever
    // observes recovery), then the tenant's preferred pod, then the
    // rest by ascending modeled load.
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                         if (a.probe != b.probe) {
                             return a.probe;
                         }
                         const bool ap = a.pod == preferred;
                         const bool bp = b.pod == preferred;
                         if (ap != bp) {
                             return ap;
                         }
                         return a.loadMs < b.loadMs;
                     });
    return cands;
}

ServiceCluster::Dispatch
ServiceCluster::tryDispatch(const std::shared_ptr<Flight>& flight,
                            bool isRetry)
{
    std::vector<Candidate> cands =
        routeCandidates(flight->tenantId, /*gateHealth=*/!isRetry);
    if (cands.empty()) {
        return Dispatch::NoHealthy;
    }
    if (isRetry && flight->lastPod >= 0 && cands.size() > 1) {
        // "The next healthy candidate": the pod that just failed the
        // request goes last, not first — it stays eligible only as
        // the final fallback.
        std::stable_partition(
            cands.begin(), cands.end(), [&](const Candidate& c) {
                return static_cast<int>(c.pod) != flight->lastPod;
            });
    }
    const size_t preferred = preferredPod(flight->tenantId);
    const double costMs = requestCostMs_;
    for (size_t c = 0; c < cands.size(); ++c) {
        const size_t podIdx = cands[c].pod;
        const bool probe = cands[c].probe;
        BootstrapService& svc = *services_[podIdx];
        if (svc.crashed()) {
            if (!isRetry) {
                // Observing a crash at a routing decision IS a health
                // outcome: it opens the breaker without waiting for
                // live requests to fail, and resolves a probe as
                // failed (the pod has not recovered), keeping the
                // probe cadence. Retry sweeps skip silently (see
                // routeCandidates).
                std::lock_guard<std::mutex> lock(m_);
                breakers_[podIdx].onOutcome(/*ok=*/false, probe);
            }
            continue;
        }
        if (svc.liveRequests() >= cfg_.pod.maxQueuedRequests) {
            // Full is not unhealthy: release the probe (if any) so
            // the next routing decision re-probes, and move on.
            if (probe) {
                std::lock_guard<std::mutex> lock(m_);
                breakers_[podIdx].cancelProbe();
            }
            continue;
        }
        // The attempt's pod ticket is created HERE so the completion
        // hook can capture it: the pod fulfils it before invoking the
        // hook, which is what lets onAttemptDone() extract the result
        // of a settled attempt without racing the pod's workers.
        auto attempt = std::make_shared<BootstrapTicket>();
        SubmitOptions opts = flight->baseOpts;
        if (std::isfinite(flight->deadlineAbsMs)) {
            // Re-base the deadline on the remaining cluster budget so
            // a failed-over attempt keeps an honest EDF position.
            opts.deadlineMs =
                std::max(0.0, flight->deadlineAbsMs - nowMs());
        }
        opts.onDone = [this, flight, attempt, podIdx,
                       probe](const RequestReport& rep, bool ok) {
            onAttemptDone(flight, attempt, podIdx, probe, rep, ok);
        };
        {
            // Charge the modeled load and count the attempt before
            // the pod can complete it: the hook's refund then always
            // balances, and its attempts read is never stale.
            std::lock_guard<std::mutex> lock(m_);
            podLoadMs_[podIdx] += costMs;
            ++flight->attempts;
        }
        try {
            svc.submit(flight->input, std::move(opts), attempt);
        } catch (const UserError&) {
            // Lost the admission race (the pod filled or crashed
            // between the probe above and submit): refund and try the
            // next candidate. No hook was installed, so this is the
            // only accounting path for the attempt.
            std::lock_guard<std::mutex> lock(m_);
            podLoadMs_[podIdx] -= costMs;
            --flight->attempts;
            if (probe) {
                breakers_[podIdx].cancelProbe();
            }
            continue;
        }
        // The attempt is on exactly one pod: account the key touch
        // (a failover lands cache-cold on the new pod — a real,
        // counted key-traffic event) and the routing outcome.
        caches_[podIdx]->touch(flight->tenantId, flight->keyBytes);
        {
            std::lock_guard<std::mutex> lock(m_);
            if (!isRetry) {
                if (podIdx == preferred) {
                    ++routedPreferred_;
                } else {
                    ++spilled_;
                }
            }
            // Probe admissions further down the candidate list were
            // never carried: revert them so the next routing decision
            // probes again.
            for (size_t r = c + 1; r < cands.size(); ++r) {
                if (cands[r].probe) {
                    breakers_[cands[r].pod].cancelProbe();
                }
            }
        }
        return Dispatch::Placed;
    }
    return Dispatch::NoRoom;
}

void
ServiceCluster::onAttemptDone(
    const std::shared_ptr<Flight>& flight,
    const std::shared_ptr<BootstrapTicket>& attempt, size_t podIdx,
    bool probe, const RequestReport& rep, bool ok)
{
    // May run under the pod's lock (failure path): cluster lock,
    // registry, and ticket locks only — never back into a pod.
    uint32_t attempts = 0;
    {
        std::lock_guard<std::mutex> lock(m_);
        podLoadMs_[podIdx] -= requestCostMs_;
        breakers_[podIdx].onOutcome(ok, probe);
        attempts = flight->attempts;
    }
    if (ok) {
        settleSuccess(flight, attempt, podIdx, rep);
        return;
    }
    std::exception_ptr err = attempt->error();
    bool retryable = false;
    if (err) {
        try {
            std::rethrow_exception(err);
        } catch (const PodError&) {
            retryable = true;
        } catch (...) {
            // UserError / InternalError / anything else would fail
            // identically on every replica: terminal.
        }
    } else {
        err = std::make_exception_ptr(
            PodError("pod attempt failed without a recorded error"));
        retryable = true;
    }
    bool deadlineOk = true;
    if (cfg_.failover.respectDeadline
        && std::isfinite(flight->deadlineAbsMs)) {
        deadlineOk =
            nowMs() + requestCostMs_ <= flight->deadlineAbsMs;
    }
    if (retryable && attempts < cfg_.failover.maxAttempts
        && deadlineOk) {
        flight->lastPod = static_cast<int>(podIdx);
        {
            std::lock_guard<std::mutex> lock(m_);
            ++failovers_;
        }
        {
            // Never re-dispatch from here — this hook may hold the
            // failing pod's lock, and submitting to another pod nests
            // pod locks (deadlock). The failover thread re-dispatches.
            std::lock_guard<std::mutex> lock(retryM_);
            retryQ_.push_back(Retry{flight, err,
                                    nowMs() + cfg_.failover.backoffMs});
        }
        retryCv_.notify_all();
        return;
    }
    settleFailure(flight, err, static_cast<int>(podIdx), rep,
                  /*exhausted=*/retryable);
}

void
ServiceCluster::settleSuccess(
    const std::shared_ptr<Flight>& flight,
    const std::shared_ptr<BootstrapTicket>& attempt, size_t podIdx,
    const RequestReport& rep)
{
    // The pod fulfilled the attempt ticket before invoking the hook,
    // so this wait() returns immediately with the result.
    ckks::Ciphertext out = attempt->wait();
    RequestReport r = rep;
    r.servedPod = static_cast<int>(podIdx);
    r.totalMs = nowMs() - flight->submitMs;
    if (std::isfinite(flight->deadlineAbsMs)) {
        r.deadlineMissed = nowMs() > flight->deadlineAbsMs;
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        r.attempts = flight->attempts;
        ++requestsCompleted_;
        if (flight->attempts > 1) {
            ++failoverSucceeded_;
        }
        HEAP_ASSERT(liveFlights_ >= 1, "settle without a live flight");
        --liveFlights_;
    }
    // Exactly one registry completion per logical request, at the
    // terminal outcome — attempts in between were invisible to the
    // tenant accounting (admit/refund conservation).
    registry_->onComplete(flight->tenantId, itemsPerRequest_, true);
    flight->clientTicket->fulfil(std::move(out), r);
    if (flight->userDone) {
        flight->userDone(r, true);
    }
    settleCv_.notify_all();
}

void
ServiceCluster::settleFailure(const std::shared_ptr<Flight>& flight,
                              std::exception_ptr err, int podIdx,
                              const RequestReport& rep, bool exhausted)
{
    RequestReport r = rep;
    r.servedPod = podIdx;
    r.totalMs = nowMs() - flight->submitMs;
    if (std::isfinite(flight->deadlineAbsMs)) {
        r.deadlineMissed = nowMs() > flight->deadlineAbsMs;
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        r.attempts = flight->attempts;
        ++requestsFailed_;
        if (exhausted) {
            ++failoverExhausted_;
        }
        HEAP_ASSERT(liveFlights_ >= 1, "settle without a live flight");
        --liveFlights_;
    }
    registry_->onComplete(flight->tenantId, itemsPerRequest_, false);
    flight->clientTicket->fail(std::move(err), r);
    if (flight->userDone) {
        flight->userDone(r, false);
    }
    settleCv_.notify_all();
}

void
ServiceCluster::failoverLoop()
{
    std::unique_lock<std::mutex> lock(retryM_);
    for (;;) {
        retryCv_.wait(lock,
                      [&] { return stopRetry_ || !retryQ_.empty(); });
        if (retryQ_.empty()) {
            if (stopRetry_) {
                return;
            }
            continue;
        }
        const bool stopping = stopRetry_;
        Retry r = retryQ_.front();
        const double now = nowMs();
        if (!stopping && r.notBeforeMs > now) {
            // Backoff gate: sleep until it opens (or new work /
            // shutdown wakes us).
            retryCv_.wait_for(lock,
                              std::chrono::duration<double, std::milli>(
                                  r.notBeforeMs - now));
            continue;
        }
        retryQ_.pop_front();
        lock.unlock();
        if (stopping) {
            // Pods are shut down: nothing can carry the retry.
            RequestReport rep;
            rep.id = r.flight->seq;
            settleFailure(r.flight, r.lastError, -1, rep,
                          /*exhausted=*/true);
        } else if (tryDispatch(r.flight, /*isRetry=*/true)
                   != Dispatch::Placed) {
            bool abandon = false;
            if (cfg_.failover.respectDeadline
                && std::isfinite(r.flight->deadlineAbsMs)) {
                abandon = nowMs() + requestCostMs_
                          > r.flight->deadlineAbsMs;
            }
            if (abandon) {
                RequestReport rep;
                rep.id = r.flight->seq;
                settleFailure(r.flight, r.lastError, -1, rep,
                              /*exhausted=*/true);
            } else {
                // No pod can take it right now (full, crashed, or
                // breaker-open). Room opens as pods drain or chaos
                // recovers them: re-enqueue with a small pacing
                // delay instead of spinning.
                lock.lock();
                retryQ_.push_back(
                    Retry{r.flight, r.lastError,
                          nowMs()
                              + std::max(cfg_.failover.backoffMs,
                                         0.2)});
                continue;
            }
        }
        lock.lock();
    }
}

std::shared_ptr<BootstrapTicket>
ServiceCluster::submit(uint64_t tenantId, const ckks::Ciphertext& in,
                       SubmitOptions opts)
{
    HEAP_CHECK(tenantId != 0, "tenant id 0 is reserved");
    const size_t items = itemsPerRequest_;
    const TenantSpec& spec = registry_->spec(tenantId);
    // Key-cache charge: the tenant's declared footprint, else the
    // cluster default (cost model's key-read bytes when available).
    // Validated before admission so a misconfigured tenant cannot
    // leak an in-flight slot or poison the candidate loop.
    const size_t keyBytes =
        spec.keyBytes != 0 ? spec.keyBytes : tenantKeyBytesDefault_;
    HEAP_CHECK(keyBytes <= cfg_.keyCacheBytes,
               "tenant " << tenantId << " key footprint (" << keyBytes
                         << " B) exceeds the pod key cache ("
                         << cfg_.keyCacheBytes << " B)");

    // The chaos schedule advances on the submission counter — BEFORE
    // routing, so "crash pod 0 before the 12th submit" is observed by
    // the 12th submit's routing decision.
    uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(m_);
        seq = ++submitSeq_;
    }
    if (chaos_) {
        chaos_->advance(seq, services_);
    }

    const int effPriority = opts.priority + spec.priority;
    if (cfg_.shedding.enabled) {
        double minLoadMs = std::numeric_limits<double>::infinity();
        double totalLoadMs = 0;
        {
            std::lock_guard<std::mutex> lock(m_);
            for (const double l : podLoadMs_) {
                minLoadMs = std::min(minLoadMs, l);
                totalLoadMs += l;
            }
        }
        // Sheds run BEFORE tryAdmit: a shed request was never
        // admitted, so there is nothing to refund.
        if (cfg_.shedding.brownoutLoadMs > 0
            && totalLoadMs >= cfg_.shedding.brownoutLoadMs
            && effPriority < cfg_.shedding.brownoutMinPriority) {
            {
                std::lock_guard<std::mutex> lock(m_);
                ++rejectedShedBrownout_;
            }
            registry_->onShed(tenantId);
            HEAP_FATAL("brownout: cluster modeled load "
                       << totalLoadMs << " ms >= "
                       << cfg_.shedding.brownoutLoadMs
                       << " ms and priority " << effPriority
                       << " is below the floor "
                       << cfg_.shedding.brownoutMinPriority
                       << ": request shed");
        }
        if (opts.deadlineMs) {
            const double modeledMs =
                cfg_.shedding.slackFactor
                * (minLoadMs + requestCostMs_);
            if (*opts.deadlineMs < modeledMs) {
                {
                    std::lock_guard<std::mutex> lock(m_);
                    ++rejectedShedDeadline_;
                }
                registry_->onShed(tenantId);
                HEAP_FATAL("deadline shed: "
                           << *opts.deadlineMs
                           << " ms deadline is under the modeled "
                           << modeledMs
                           << " ms completion (negative slack): "
                           << "request shed");
            }
        }
    }

    const auto adm = registry_->tryAdmit(tenantId, items);
    if (!adm) {
        {
            std::lock_guard<std::mutex> lock(m_);
            ++rejectedQuota_;
        }
        HEAP_FATAL("tenant " << tenantId
                             << " over its in-flight quota: "
                             << "request rejected");
    }
    opts.tenantId = tenantId;
    opts.priority = effPriority;
    opts.fairRank = adm->fairRank;

    auto flight = std::make_shared<Flight>();
    flight->seq = seq;
    flight->tenantId = tenantId;
    flight->input = in;
    flight->clientTicket = std::make_shared<BootstrapTicket>();
    flight->userDone = std::move(opts.onDone);
    opts.onDone = nullptr;
    flight->baseOpts = std::move(opts);
    flight->keyBytes = keyBytes;
    flight->submitMs = nowMs();
    if (flight->baseOpts.deadlineMs) {
        flight->deadlineAbsMs =
            flight->submitMs + *flight->baseOpts.deadlineMs;
    }

    {
        std::lock_guard<std::mutex> lock(m_);
        ++liveFlights_;
    }
    const Dispatch d = tryDispatch(flight, /*isRetry=*/false);
    if (d != Dispatch::Placed) {
        // Total rejection of the initial dispatch: the ONLY place the
        // admission is cancelled rather than completed.
        registry_->cancelAdmit(tenantId, items);
        {
            std::lock_guard<std::mutex> lock(m_);
            --liveFlights_;
            if (d == Dispatch::NoHealthy) {
                ++rejectedUnhealthy_;
            } else {
                ++rejectedCapacity_;
            }
        }
        settleCv_.notify_all();
        if (d == Dispatch::NoHealthy) {
            HEAP_FATAL("no healthy pod (every breaker open): tenant "
                       << tenantId << " request rejected");
        }
        HEAP_FATAL("cluster at capacity (every pod full): tenant "
                   << tenantId << " request rejected");
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        ++submitted_;
    }
    return flight->clientTicket;
}

void
ServiceCluster::drain()
{
    std::unique_lock<std::mutex> lock(m_);
    settleCv_.wait(lock, [&] { return liveFlights_ == 0; });
}

void
ServiceCluster::shutdown()
{
    // Pods first: every accepted attempt settles during the pod
    // shutdowns, so every completion hook fires and every failover
    // decision is enqueued BEFORE the failover thread is told to
    // stop — no retry can arrive after the thread exits.
    for (auto& svc : services_) {
        svc->shutdown();
    }
    {
        std::lock_guard<std::mutex> lock(retryM_);
        stopRetry_ = true;
    }
    retryCv_.notify_all();
    if (failoverThread_.joinable()) {
        failoverThread_.join();
    }
}

ClusterMetrics
ServiceCluster::metrics() const
{
    ClusterMetrics m;
    {
        std::lock_guard<std::mutex> lock(m_);
        m.submitted = submitted_;
        m.rejectedQuota = rejectedQuota_;
        m.rejectedCapacity = rejectedCapacity_;
        m.rejectedUnhealthy = rejectedUnhealthy_;
        m.rejectedShedDeadline = rejectedShedDeadline_;
        m.rejectedShedBrownout = rejectedShedBrownout_;
        m.routedPreferred = routedPreferred_;
        m.spilled = spilled_;
        m.requestsCompleted = requestsCompleted_;
        m.requestsFailed = requestsFailed_;
        m.liveFlights = liveFlights_;
        m.failovers = failovers_;
        m.failoverSucceeded = failoverSucceeded_;
        m.failoverExhausted = failoverExhausted_;
        m.podModeledLoadMs = podLoadMs_;
        m.breakers.reserve(breakers_.size());
        for (const CircuitBreaker& b : breakers_) {
            m.breakers.push_back(b.stats());
            m.breakerOpens += m.breakers.back().opens;
            m.breakerCloses += m.breakers.back().closes;
        }
    }
    if (chaos_) {
        m.chaos = chaos_->stats();
    }
    m.pods.reserve(services_.size());
    for (const auto& svc : services_) {
        m.pods.push_back(svc->metrics());
        m.completed += m.pods.back().completed;
        m.failed += m.pods.back().failed;
    }
    m.podKeyCaches.reserve(caches_.size());
    for (const auto& c : caches_) {
        m.podKeyCaches.push_back(c->stats());
    }
    m.keyCacheTotal = sumStats(m.podKeyCaches);
    m.tenants = registry_->allStats();
    m.fairnessRatio = registry_->fairnessRatio();
    return m;
}

} // namespace heap::serve
