#include "serve/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace heap::serve {

namespace {

/** splitmix64 finalizer: a fixed, platform-independent mix so the
 *  tenant -> pod map is stable across runs and hosts. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

ServiceCluster::ServiceCluster(
    std::vector<boot::DistributedBootstrapper*> pods,
    TenantRegistry& registry, ClusterConfig cfg)
    : pods_(std::move(pods)), registry_(&registry), cfg_(cfg)
{
    HEAP_CHECK(!pods_.empty(), "cluster with no pods");
    for (const auto* p : pods_) {
        HEAP_CHECK(p != nullptr, "null pod bootstrapper");
    }
    itemsPerRequest_ = pods_[0]->context().basis()->n();
    for (const auto* p : pods_) {
        HEAP_CHECK(p->context().basis()->n() == itemsPerRequest_,
                   "pods disagree on the ring dimension");
    }
    if (cfg_.pod.costModel == nullptr) {
        cfg_.pod.costModel = cfg_.costModel;
    }
    tenantKeyBytesDefault_ =
        cfg_.defaultTenantKeyBytes != 0 ? cfg_.defaultTenantKeyBytes
        : cfg_.costModel != nullptr
            ? static_cast<size_t>(cfg_.costModel->keyReadBytes())
            : (size_t{1} << 20);
    // Modeled cost of one request's rotate work: the spill policy's
    // load unit. Any positive constant works without a model — load
    // is then proportional to outstanding requests.
    requestCostMs_ =
        cfg_.costModel != nullptr
            ? cfg_.costModel->blindRotateBatchMs(itemsPerRequest_)
                  + cfg_.costModel->batchCommMs(itemsPerRequest_)
            : static_cast<double>(itemsPerRequest_) * 0.01;
    services_.reserve(pods_.size());
    caches_.reserve(pods_.size());
    for (auto* p : pods_) {
        services_.push_back(
            std::make_unique<BootstrapService>(*p, cfg_.pod));
        caches_.push_back(std::make_unique<BootstrappingKeyCache>(
            cfg_.keyCacheBytes));
    }
    podLoadMs_.assign(pods_.size(), 0.0);
}

ServiceCluster::~ServiceCluster()
{
    shutdown();
}

size_t
ServiceCluster::preferredPod(uint64_t tenantId) const
{
    return static_cast<size_t>(mix64(tenantId) % services_.size());
}

std::vector<size_t>
ServiceCluster::candidateOrder(uint64_t tenantId) const
{
    const size_t preferred = preferredPod(tenantId);
    std::vector<size_t> order;
    order.reserve(services_.size());
    order.push_back(preferred);
    std::vector<size_t> rest;
    for (size_t i = 0; i < services_.size(); ++i) {
        if (i != preferred) {
            rest.push_back(i);
        }
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        std::stable_sort(rest.begin(), rest.end(),
                         [&](size_t a, size_t b) {
                             return podLoadMs_[a] < podLoadMs_[b];
                         });
    }
    order.insert(order.end(), rest.begin(), rest.end());
    return order;
}

std::shared_ptr<BootstrapTicket>
ServiceCluster::submit(uint64_t tenantId, const ckks::Ciphertext& in,
                       SubmitOptions opts)
{
    HEAP_CHECK(tenantId != 0, "tenant id 0 is reserved");
    const size_t items = itemsPerRequest_;
    const TenantSpec& spec = registry_->spec(tenantId);
    // Key-cache charge: the tenant's declared footprint, else the
    // cluster default (cost model's key-read bytes when available).
    // Validated before admission so a misconfigured tenant cannot
    // leak an in-flight slot or poison the candidate loop.
    const size_t keyBytes =
        spec.keyBytes != 0 ? spec.keyBytes : tenantKeyBytesDefault_;
    HEAP_CHECK(keyBytes <= cfg_.keyCacheBytes,
               "tenant " << tenantId << " key footprint (" << keyBytes
                         << " B) exceeds the pod key cache ("
                         << cfg_.keyCacheBytes << " B)");
    const auto adm = registry_->tryAdmit(tenantId, items);
    if (!adm) {
        {
            std::lock_guard<std::mutex> lock(m_);
            ++rejectedQuota_;
        }
        HEAP_FATAL("tenant " << tenantId
                             << " over its in-flight quota: "
                             << "request rejected");
    }
    opts.tenantId = tenantId;
    opts.priority += spec.priority;
    opts.fairRank = adm->fairRank;

    const auto userDone = std::move(opts.onDone);
    const size_t preferred = preferredPod(tenantId);
    const double costMs = requestCostMs_;
    for (const size_t podIdx : candidateOrder(tenantId)) {
        if (services_[podIdx]->liveRequests()
            >= cfg_.pod.maxQueuedRequests) {
            continue; // full; the next candidate may have room
        }
        // Tenant + load bookkeeping settles when the ticket does.
        // Runs on a pod worker thread, possibly under the pod's lock:
        // it must only touch the registry and the cluster counters
        // (see SubmitOptions::onDone).
        opts.onDone = [this, tenantId, items, costMs, podIdx,
                       userDone](const RequestReport& rep, bool ok) {
            registry_->onComplete(tenantId, items, ok);
            {
                std::lock_guard<std::mutex> lock(m_);
                podLoadMs_[podIdx] -= costMs;
            }
            if (userDone) {
                userDone(rep, ok);
            }
        };
        {
            // Charge the modeled load before the pod can complete the
            // request: the hook's refund then always balances.
            std::lock_guard<std::mutex> lock(m_);
            podLoadMs_[podIdx] += costMs;
        }
        std::shared_ptr<BootstrapTicket> ticket;
        try {
            ticket = services_[podIdx]->submit(in, opts);
        } catch (const UserError&) {
            // Lost the admission race (the pod filled between the
            // liveRequests() probe and submit): refund and try the
            // next candidate.
            std::lock_guard<std::mutex> lock(m_);
            podLoadMs_[podIdx] -= costMs;
            continue;
        }
        // The request is on exactly one pod: account the key touch
        // and the routing outcome (keyBytes fits by the check above).
        caches_[podIdx]->touch(tenantId, keyBytes);
        std::lock_guard<std::mutex> lock(m_);
        ++submitted_;
        if (podIdx == preferred) {
            ++routedPreferred_;
        } else {
            ++spilled_;
        }
        return ticket;
    }
    registry_->cancelAdmit(tenantId, items);
    {
        std::lock_guard<std::mutex> lock(m_);
        ++rejectedCapacity_;
    }
    HEAP_FATAL("cluster at capacity (every pod full): tenant "
               << tenantId << " request rejected");
}

void
ServiceCluster::drain()
{
    for (auto& svc : services_) {
        svc->drain();
    }
}

void
ServiceCluster::shutdown()
{
    for (auto& svc : services_) {
        svc->shutdown();
    }
}

ClusterMetrics
ServiceCluster::metrics() const
{
    ClusterMetrics m;
    {
        std::lock_guard<std::mutex> lock(m_);
        m.submitted = submitted_;
        m.rejectedQuota = rejectedQuota_;
        m.rejectedCapacity = rejectedCapacity_;
        m.routedPreferred = routedPreferred_;
        m.spilled = spilled_;
        m.podModeledLoadMs = podLoadMs_;
    }
    m.pods.reserve(services_.size());
    for (const auto& svc : services_) {
        m.pods.push_back(svc->metrics());
        m.completed += m.pods.back().completed;
        m.failed += m.pods.back().failed;
    }
    m.podKeyCaches.reserve(caches_.size());
    for (const auto& c : caches_) {
        m.podKeyCaches.push_back(c->stats());
    }
    m.keyCacheTotal = sumStats(m.podKeyCaches);
    m.tenants = registry_->allStats();
    m.fairnessRatio = registry_->fairnessRatio();
    return m;
}

} // namespace heap::serve
