/**
 * @file
 * Per-pod health tracking for the serving cluster: a circuit breaker
 * driven by a rolling success/failure window plus wedge detection via
 * modeled-load staleness.
 *
 * State machine (the classic three-state breaker, made deterministic
 * by counting routing decisions instead of wall time):
 *
 *        failure rate >= threshold            probe success
 *   Closed ------------------------> Open  ------------------+
 *      ^                               |                     |
 *      |       skips >= probeAfterSkips|                     |
 *      +--- HalfOpen <-----------------+                     |
 *      |        |  probe failure -> Open                     |
 *      +<----------------------------------------------------+
 *
 *  - Closed: outcomes feed a rolling window; when the window holds at
 *    least `minSamples` outcomes and the failure fraction reaches
 *    `failureThreshold`, the breaker opens.
 *  - Open: the router skips the pod. Every skipped routing decision
 *    counts; after `probeAfterSkips` skips the next decision admits
 *    exactly one request as a *probe* (HalfOpen). Deterministic: the
 *    k-th routing decision after the open always probes, independent
 *    of wall time.
 *  - HalfOpen: one probe in flight, everything else routes around.
 *    Probe success closes the breaker (window cleared); probe failure
 *    reopens it and the skip count restarts. With a canary fraction
 *    configured (halfOpenCanaryFraction > 0), HalfOpen instead admits
 *    a deterministic small fraction of routing decisions as probes —
 *    several canaries may fly at once; the first success closes, any
 *    failure reopens.
 *
 * Wedge detection is orthogonal: a pod that *holds* modeled load but
 * produces no completion for `wedgeDecisions` consecutive routing
 * decisions is declared wedged and treated as Open (routed around,
 * but not probed — a wedged pod would just swallow the probe). Any
 * completion from the pod is progress and clears the wedge.
 *
 * Not thread-safe: the cluster mutates breakers under its own mutex,
 * exactly like the pods' modeled-load table.
 */

#ifndef HEAP_SERVE_HEALTH_H
#define HEAP_SERVE_HEALTH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace heap::serve {

/** Breaker phase; see the file comment for the transitions. */
enum class BreakerState { Closed, Open, HalfOpen };

/** "closed" / "open" / "half-open". */
const char* breakerStateName(BreakerState s);

/** Per-pod breaker tuning. */
struct BreakerConfig {
    /** Rolling outcome window length (attempt completions). */
    size_t window = 16;
    /** Outcomes required in the window before the failure rate can
     *  trip the breaker (a single early failure is not a pattern). */
    size_t minSamples = 4;
    /** Open when windowFailures / windowCount >= this. */
    double failureThreshold = 0.5;
    /** Open -> HalfOpen: skipped routing decisions before one probe
     *  request is admitted. */
    uint64_t probeAfterSkips = 8;
    /**
     * HalfOpen canary fraction. 0 (the default) keeps the legacy
     * behaviour: exactly one probe in flight, everything else routed
     * around until it resolves. A value f in (0, 1] admits a probe on
     * a deterministic f-fraction of HalfOpen routing decisions — the
     * k-th HalfOpen decision probes when ceil(k * f) exceeds the
     * probes already admitted this episode — so several canaries may
     * be in flight at once and a slow probe cannot stall recovery
     * observation. Any canary failure reopens the breaker; the first
     * canary success closes it.
     */
    double halfOpenCanaryFraction = 0.0;
    /** Wedge detection: routing decisions a pod may hold modeled load
     *  without completing anything before it is declared wedged.
     *  0 disables wedge detection. */
    uint64_t wedgeDecisions = 256;
};

/** Point-in-time breaker accounting (ClusterMetrics::breakers). */
struct BreakerStats {
    BreakerState state = BreakerState::Closed;
    bool wedged = false;
    // Totals since start.
    uint64_t successes = 0;
    uint64_t failures = 0;
    // Rolling window contents.
    size_t windowCount = 0;
    size_t windowFailures = 0;
    // Transition counters.
    uint64_t opens = 0;      ///< Closed->Open trips + probe-failure reopens
    uint64_t wedgeOpens = 0; ///< staleness detections (also counted in opens)
    uint64_t probes = 0;     ///< probe admissions (Open->HalfOpen)
    uint64_t closes = 0;     ///< recoveries (probe success or wedge cleared)
    uint64_t skippedRouting = 0; ///< decisions that routed around this pod
    /** Probes currently in flight (HalfOpen; > 1 only with a canary
     *  fraction configured). */
    uint64_t probesInFlight = 0;
};

/**
 * One pod's breaker. All methods are called under the cluster mutex;
 * "routing decision" means one ServiceCluster::submit() considering
 * this pod.
 */
class CircuitBreaker {
  public:
    explicit CircuitBreaker(BreakerConfig cfg = {});

    /** Effective state: wedged pods report Open regardless of the
     *  underlying outcome-window state. */
    BreakerState state() const;

    /** Routing-time admission decision. */
    struct Gate {
        bool admit = false;
        bool probe = false; ///< this admission is the HalfOpen probe
    };

    /**
     * One routing decision considers this pod: returns whether to
     * admit, and whether the admission is a probe. Mutates the skip
     * counter and performs the Open -> HalfOpen transition.
     */
    Gate gate();

    /**
     * The probe admitted by gate() was never dispatched (the pod was
     * full/crashed, or another candidate won the request). When it
     * was the only probe in flight, revert to Open with the skip
     * budget refilled, so the next routing decision probes again;
     * with other canaries still flying (fraction mode), stay HalfOpen
     * and let them resolve the episode.
     */
    void cancelProbe();

    /**
     * One attempt on this pod completed. `probe` must be the flag the
     * admitting gate() returned. Clears any wedge (a completion IS
     * progress), feeds the rolling window, and performs the
     * failure-rate trip / probe-resolution transitions.
     */
    void onOutcome(bool ok, bool probe);

    /**
     * Wedge staleness tick, called once per routing decision for
     * every pod: `backlog` is whether the pod currently holds modeled
     * outstanding load. A pod with no backlog cannot be wedged.
     */
    void noteDecision(bool backlog);

    BreakerStats stats() const;

    const BreakerConfig& config() const { return cfg_; }

  private:
    void openLocked();
    /** One HalfOpen routing decision: canary/legacy probe admission. */
    Gate halfOpenGate();

    BreakerConfig cfg_;
    BreakerState state_ = BreakerState::Closed;
    bool wedged_ = false;
    uint64_t probesInFlight_ = 0;
    /** HalfOpen episode counters (canary stride admission). */
    uint64_t halfOpenDecisions_ = 0;
    uint64_t probesAdmitted_ = 0;
    uint64_t skips_ = 0;
    uint64_t staleDecisions_ = 0;
    // Rolling outcome ring (1 = failure).
    std::vector<uint8_t> ring_;
    size_t ringNext_ = 0;
    size_t windowCount_ = 0;
    size_t windowFailures_ = 0;
    // Totals.
    uint64_t successes_ = 0, failures_ = 0;
    uint64_t opens_ = 0, wedgeOpens_ = 0, probes_ = 0, closes_ = 0;
    uint64_t skippedRouting_ = 0;
};

} // namespace heap::serve

#endif // HEAP_SERVE_HEALTH_H
