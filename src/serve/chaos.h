/**
 * @file
 * Deterministic pod-level fault injection for the serving cluster —
 * the inter-pod sibling of the link layer's FaultSpec (PR 3): where
 * FaultSpec mangles individual wire messages inside a pod, ChaosSpec
 * fails, wedges, and crashes whole pods on a schedule.
 *
 * Determinism: events fire at cluster *submission indices*, not wall
 * times — "before the 12th submit, crash pod 0" — so a given spec
 * produces the same fault interleaving on every host and run, which
 * is what lets the availability tests pin byte-identity and exact
 * accounting under faults. The scripted() generator derives a
 * schedule from a seed with a fixed platform-independent mix, so
 * benches can sweep seeds without hand-writing event lists.
 *
 * Event kinds:
 *  - FailRequests: the pod fails its next `count` requests with a
 *    retryable PodError (the cluster fails them over).
 *  - Wedge / Unwedge: pause()/resume() the pod — accepted requests
 *    sit, nothing fails, the breaker's staleness detector is the only
 *    signal.
 *  - Crash / Recover: the pod fails every live request and rejects
 *    intake until recovery (crash-and-recover).
 *
 * Thread-safe: advance() may be called from concurrent submitters;
 * events apply exactly once, in (atSubmit, insertion) order.
 */

#ifndef HEAP_SERVE_CHAOS_H
#define HEAP_SERVE_CHAOS_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace heap::serve {

class BootstrapService;
class PirService;

/** One scheduled pod-level fault. */
struct ChaosEvent {
    enum class Kind {
        FailRequests, ///< fail the pod's next `count` requests
        Wedge,        ///< pause the pod (wedge)
        Unwedge,      ///< resume the pod
        Crash,        ///< fail all live work, reject intake
        Recover,      ///< accept work again
    };
    Kind kind = Kind::FailRequests;
    size_t pod = 0;
    /** Fires just before the cluster's `atSubmit`-th submission
     *  (1-based). Events sharing an index apply in list order. */
    uint64_t atSubmit = 0;
    /** FailRequests only: how many requests to fail. */
    uint64_t count = 1;
};

/** A full fault schedule. */
struct ChaosSpec {
    std::vector<ChaosEvent> events;

    /**
     * Seeded schedule over `horizon` submissions on `pods` pods: one
     * crash-and-recover window, one wedge window on a different pod,
     * and `failBursts` short FailRequests bursts, all placed by a
     * fixed 64-bit mix of the seed (identical on every platform).
     */
    static ChaosSpec scripted(uint64_t seed, size_t pods,
                              uint64_t horizon,
                              uint64_t failBursts = 2);
};

/** Applied-event accounting (ClusterMetrics::chaos). */
struct ChaosStats {
    uint64_t eventsApplied = 0;
    uint64_t injectedFailures = 0; ///< requests scheduled to fail
    uint64_t wedges = 0;
    uint64_t unwedges = 0;
    uint64_t crashes = 0;
    uint64_t recoveries = 0;
};

/**
 * Applies a ChaosSpec to a cluster's pods as the submission counter
 * advances. Owned by the ServiceCluster when ClusterConfig::chaos is
 * set; usable standalone in tests.
 */
class ChaosEngine {
  public:
    explicit ChaosEngine(ChaosSpec spec);

    /**
     * Applies every not-yet-applied event with atSubmit <= submitIdx
     * to `pods` (validating pod indices). Called by the cluster just
     * before dispatching its submitIdx-th submission.
     *
     * Faults are POD-level: when the pod also serves the encrypted
     * lookup tenant class (`pirPods[e.pod]` non-null), the same
     * event applies to its colocated PirService — a crash takes both
     * services down, a wedge pauses both, a FailRequests burst fails
     * the next `count` requests of each. `pirPods` may be empty
     * (bootstrap-only clusters) or hold nulls for pods without a PIR
     * tenant.
     */
    void advance(uint64_t submitIdx,
                 const std::vector<std::unique_ptr<BootstrapService>>&
                     pods,
                 const std::vector<std::unique_ptr<PirService>>&
                     pirPods = {});

    /** True once every event has been applied. */
    bool done() const;

    ChaosStats stats() const;

  private:
    mutable std::mutex m_;
    std::vector<ChaosEvent> events_; ///< stably sorted by atSubmit
    size_t cursor_ = 0;
    ChaosStats st_;
};

} // namespace heap::serve

#endif // HEAP_SERVE_CHAOS_H
