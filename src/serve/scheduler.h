/**
 * @file
 * Scheduling core of the bootstrap serving runtime, split from the
 * threaded service so the policy is unit-testable in isolation:
 *
 *  - ItemQueue: the continuous-batching work-item queue. Every
 *    admitted request contributes `itemCount` independent
 *    blind-rotate items (Algorithm 2's n LWE extractions); batches
 *    are formed from the *globally* highest-ranked items, so one
 *    batch freely mixes items from different requests and a
 *    straggler request no longer leaves a node idle. Ranking is
 *    weighted-fair credit (the tenant layer's virtual-service tag,
 *    lower first), then priority, then earliest deadline, then
 *    arrival order, with starvation protection: a request skipped by
 *    too many consecutive batch formations is boosted ahead of
 *    everything. Single-tenant callers leave every fair rank at 0, so
 *    the tier is inert and the policy reduces to priority/EDF.
 *
 *  - BatchPlanner: picks the batch size from hw::BootstrapModel cost
 *    estimates — as large as the pending work allows (amortizing the
 *    per-batch dispatch/framing overhead) but capped so the modeled
 *    batch latency still fits the tightest pending deadline's slack.
 */

#ifndef HEAP_SERVE_SCHEDULER_H
#define HEAP_SERVE_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "hw/bootstrap_model.h"

namespace heap::serve {

/** One blind-rotate work item: request + extraction index. */
struct WorkItem {
    uint64_t requestId = 0;
    size_t index = 0;
};

/** A formed batch plus its packing statistics. */
struct PlannedBatch {
    std::vector<WorkItem> items;
    size_t distinctRequests = 0;
};

/**
 * Priority/deadline/aging-ordered pool of pending blind-rotate items.
 * Not thread-safe; the service mutates it under its own lock.
 */
class ItemQueue {
  public:
    /** @param starvationPasses consecutive batch formations a request
     *         may be skipped by before it is boosted to the front. */
    explicit ItemQueue(size_t starvationPasses);

    /**
     * Admits a request's items. `deadlineAbsMs` is the absolute
     * deadline on the caller's clock (infinity when none); requests
     * admitted earlier win ties. `fairRank` is the tenant layer's
     * weighted-fair virtual-service tag (TenantRegistry::tryAdmit):
     * lower ranks are served first, ahead of priority, so a tenant
     * that has consumed more weight-normalized service yields to one
     * that has consumed less. The default 0 keeps every request in
     * one fairness class (the pre-tenant behaviour).
     */
    void addRequest(uint64_t id, int priority, double deadlineAbsMs,
                    size_t itemCount, double fairRank = 0.0);

    bool empty() const { return pendingItems_ == 0; }
    size_t pendingItems() const { return pendingItems_; }
    /** Requests that still have undispatched items (the rotate-stage
     *  queue bound is counted in requests, not items). */
    size_t pendingRequests() const { return pending_.size(); }

    /** Tightest absolute deadline among pending requests (infinity
     *  when none carries one); feeds the planner's slack cap. */
    double minDeadlineAbsMs() const;

    /**
     * Forms the next batch of up to `maxItems` items in rank order
     * (within one request, items go out in ascending index order).
     * Requests left with pending items accrue one starvation pass;
     * included requests reset theirs.
     */
    PlannedBatch formBatch(size_t maxItems);

  private:
    struct Entry {
        uint64_t id = 0;
        int priority = 0;
        double fairRank = 0;
        double deadlineAbsMs = 0;
        uint64_t arrivalSeq = 0;
        size_t nextIndex = 0; ///< first undispatched item
        size_t itemCount = 0;
        size_t passes = 0;    ///< consecutive batches that skipped it
    };

    /** True when a ranks strictly before b under the policy. */
    bool ranksBefore(const Entry& a, const Entry& b) const;

    std::vector<Entry> pending_;
    size_t starvationPasses_;
    size_t pendingItems_ = 0;
    uint64_t arrivalCounter_ = 0;
};

/**
 * Cost-model-driven batch sizing. Without a model it degrades to
 * "fill up to maxBatchItems" — correctness never depends on the
 * model, only batch shape does.
 */
class BatchPlanner {
  public:
    struct Config {
        size_t maxBatchItems = 64;    ///< hard cap (<= ring N)
        double dispatchOverheadMs = 0.05; ///< per-batch fixed cost
    };

    /** @param model optional; not owned, must outlive the planner. */
    BatchPlanner(const hw::BootstrapModel* model, Config cfg);

    /**
     * Batch size for the next dispatch: min(pendingItems,
     * maxBatchItems), shrunk while the modeled remote batch latency
     * exceeds `slackMs` (the tightest pending deadline minus now).
     * Never below 1; unlimited slack (infinity) keeps the full size.
     */
    size_t chooseBatchSize(size_t pendingItems, double slackMs) const;

    /**
     * Modeled wall-clock of one batch: dispatch overhead + blind
     * rotation, plus link time for remote lanes. Used for batch
     * sizing and for least-modeled-backlog lane assignment.
     */
    double batchCostMs(size_t items, bool remote) const;

    const Config& config() const { return cfg_; }

  private:
    const hw::BootstrapModel* model_;
    Config cfg_;
};

} // namespace heap::serve

#endif // HEAP_SERVE_SCHEDULER_H
