#include "serve/keycache.h"

#include "common/check.h"

namespace heap::serve {

BootstrappingKeyCache::BootstrappingKeyCache(size_t capacityBytes)
    : capacityBytes_(capacityBytes)
{
    HEAP_CHECK(capacityBytes >= 1, "key cache with no capacity");
}

bool
BootstrappingKeyCache::touch(uint64_t tenantId, size_t keyBytes)
{
    HEAP_CHECK(keyBytes >= 1, "tenant with zero-byte keys");
    HEAP_CHECK(keyBytes <= capacityBytes_,
               "tenant keys (" << keyBytes
                               << " B) exceed the cache capacity ("
                               << capacityBytes_ << " B)");
    std::lock_guard<std::mutex> lock(m_);
    const auto it = index_.find(tenantId);
    if (it != index_.end()) {
        ++hits_;
        // Refresh recency: splice the entry to the MRU end.
        lru_.splice(lru_.end(), lru_, it->second);
        return true;
    }
    ++misses_;
    bytesLoaded_ += keyBytes;
    while (residentBytes_ + keyBytes > capacityBytes_) {
        HEAP_ASSERT(!lru_.empty(), "over-capacity with empty cache");
        const Entry victim = lru_.front();
        index_.erase(victim.tenantId);
        lru_.pop_front();
        residentBytes_ -= victim.bytes;
        ++evictions_;
        bytesEvicted_ += victim.bytes;
    }
    lru_.push_back(Entry{tenantId, keyBytes});
    index_.emplace(tenantId, std::prev(lru_.end()));
    residentBytes_ += keyBytes;
    return false;
}

bool
BootstrappingKeyCache::contains(uint64_t tenantId) const
{
    std::lock_guard<std::mutex> lock(m_);
    return index_.find(tenantId) != index_.end();
}

std::vector<uint64_t>
BootstrappingKeyCache::lruOrder() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<uint64_t> order;
    order.reserve(lru_.size());
    for (const Entry& e : lru_) {
        order.push_back(e.tenantId);
    }
    return order;
}

KeyCacheStats
BootstrappingKeyCache::stats() const
{
    std::lock_guard<std::mutex> lock(m_);
    KeyCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.bytesLoaded = bytesLoaded_;
    s.bytesEvicted = bytesEvicted_;
    s.residentTenants = lru_.size();
    s.residentBytes = residentBytes_;
    s.capacityBytes = capacityBytes_;
    return s;
}

KeyCacheStats
sumStats(const std::vector<KeyCacheStats>& stats)
{
    KeyCacheStats sum;
    for (const KeyCacheStats& s : stats) {
        sum.hits += s.hits;
        sum.misses += s.misses;
        sum.evictions += s.evictions;
        sum.bytesLoaded += s.bytesLoaded;
        sum.bytesEvicted += s.bytesEvicted;
        sum.residentTenants += s.residentTenants;
        sum.residentBytes += s.residentBytes;
        sum.capacityBytes += s.capacityBytes;
    }
    return sum;
}

} // namespace heap::serve
