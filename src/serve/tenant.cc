#include "serve/tenant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace heap::serve {

TenantRegistry::TenantRegistry(size_t defaultKeyBytes)
    : defaultKeyBytes_(defaultKeyBytes)
{
    HEAP_CHECK(defaultKeyBytes >= 1, "bad default key footprint");
}

void
TenantRegistry::registerTenant(TenantSpec spec)
{
    HEAP_CHECK(spec.id != 0, "tenant id 0 is reserved (untenanted)");
    HEAP_CHECK(spec.weight > 0 && std::isfinite(spec.weight),
               "bad tenant weight " << spec.weight);
    std::lock_guard<std::mutex> lock(m_);
    const auto [it, inserted] =
        tenants_.emplace(spec.id, State{std::move(spec)});
    HEAP_CHECK(inserted,
               "tenant " << it->first << " already registered");
}

bool
TenantRegistry::known(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(m_);
    return tenants_.find(id) != tenants_.end();
}

size_t
TenantRegistry::count() const
{
    std::lock_guard<std::mutex> lock(m_);
    return tenants_.size();
}

std::vector<uint64_t>
TenantRegistry::tenantIds() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<uint64_t> ids;
    ids.reserve(tenants_.size());
    for (const auto& [id, st] : tenants_) {
        ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

const TenantRegistry::State&
TenantRegistry::at(uint64_t id) const
{
    const auto it = tenants_.find(id);
    HEAP_CHECK(it != tenants_.end(), "unknown tenant " << id);
    return it->second;
}

TenantRegistry::State&
TenantRegistry::at(uint64_t id)
{
    const auto it = tenants_.find(id);
    HEAP_CHECK(it != tenants_.end(), "unknown tenant " << id);
    return it->second;
}

const TenantSpec&
TenantRegistry::spec(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(m_);
    return at(id).spec;
}

size_t
TenantRegistry::keyBytesFor(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(m_);
    const size_t bytes = at(id).spec.keyBytes;
    return bytes != 0 ? bytes : defaultKeyBytes_;
}

std::optional<Admission>
TenantRegistry::tryAdmit(uint64_t id, size_t items)
{
    HEAP_CHECK(items >= 1, "request with no work items");
    std::lock_guard<std::mutex> lock(m_);
    State& s = at(id);
    if (s.spec.maxInFlight != 0 && s.inFlight >= s.spec.maxInFlight) {
        ++s.rejectedQuota;
        return std::nullopt;
    }
    if (s.inFlight == 0) {
        // WFQ catch-up: an idle tenant re-enters at the floor of the
        // busy tenants' virtual clocks, so idling never banks credit
        // it could later spend to monopolize the queue.
        double floor = std::numeric_limits<double>::infinity();
        for (const auto& [tid, st] : tenants_) {
            if (st.inFlight > 0) {
                floor = std::min(floor, st.virtualService);
            }
        }
        if (std::isfinite(floor)) {
            s.virtualService = std::max(s.virtualService, floor);
        }
    }
    Admission adm{s.virtualService};
    s.virtualService +=
        static_cast<double>(items) / s.spec.weight;
    ++s.inFlight;
    ++s.submitted;
    return adm;
}

void
TenantRegistry::cancelAdmit(uint64_t id, size_t items)
{
    std::lock_guard<std::mutex> lock(m_);
    State& s = at(id);
    HEAP_ASSERT(s.inFlight >= 1 && s.submitted >= 1,
                "cancelAdmit without a matching tryAdmit");
    s.virtualService -= static_cast<double>(items) / s.spec.weight;
    --s.inFlight;
    --s.submitted;
    ++s.rejectedCapacity;
}

void
TenantRegistry::onComplete(uint64_t id, size_t items, bool ok)
{
    std::lock_guard<std::mutex> lock(m_);
    State& s = at(id);
    HEAP_ASSERT(s.inFlight >= 1, "completion without admission");
    --s.inFlight;
    if (ok) {
        ++s.completed;
        s.servedItems += items;
    } else {
        ++s.failed;
    }
}

void
TenantRegistry::onShed(uint64_t id)
{
    std::lock_guard<std::mutex> lock(m_);
    ++at(id).rejectedShed;
}

TenantStats
TenantRegistry::statsLocked(const State& s) const
{
    TenantStats out;
    out.id = s.spec.id;
    out.name = s.spec.name;
    out.weight = s.spec.weight;
    out.submitted = s.submitted;
    out.completed = s.completed;
    out.failed = s.failed;
    out.rejectedQuota = s.rejectedQuota;
    out.rejectedCapacity = s.rejectedCapacity;
    out.rejectedShed = s.rejectedShed;
    out.inFlight = s.inFlight;
    out.servedItems = s.servedItems;
    out.virtualService = s.virtualService;
    return out;
}

TenantStats
TenantRegistry::stats(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(m_);
    return statsLocked(at(id));
}

std::vector<TenantStats>
TenantRegistry::allStats() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<TenantStats> out;
    out.reserve(tenants_.size());
    for (const auto& [id, st] : tenants_) {
        out.push_back(statsLocked(st));
    }
    std::sort(out.begin(), out.end(),
              [](const TenantStats& a, const TenantStats& b) {
                  return a.id < b.id;
              });
    return out;
}

double
TenantRegistry::fairnessRatio(uint64_t minCompleted) const
{
    std::lock_guard<std::mutex> lock(m_);
    double minShare = std::numeric_limits<double>::infinity();
    double maxShare = 0;
    size_t qualified = 0;
    for (const auto& [id, s] : tenants_) {
        if (s.completed < minCompleted) {
            continue;
        }
        const double share =
            static_cast<double>(s.servedItems) / s.spec.weight;
        minShare = std::min(minShare, share);
        maxShare = std::max(maxShare, share);
        ++qualified;
    }
    if (qualified < 2 || minShare <= 0) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    return maxShare / minShare;
}

} // namespace heap::serve
