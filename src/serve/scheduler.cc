#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace heap::serve {

ItemQueue::ItemQueue(size_t starvationPasses)
    : starvationPasses_(starvationPasses)
{
    HEAP_CHECK(starvationPasses >= 1, "bad starvation threshold");
}

void
ItemQueue::addRequest(uint64_t id, int priority, double deadlineAbsMs,
                      size_t itemCount, double fairRank)
{
    HEAP_CHECK(itemCount >= 1, "request with no work items");
    HEAP_CHECK(std::isfinite(fairRank), "bad fair rank " << fairRank);
    Entry e;
    e.id = id;
    e.priority = priority;
    e.fairRank = fairRank;
    e.deadlineAbsMs = deadlineAbsMs;
    e.arrivalSeq = arrivalCounter_++;
    e.itemCount = itemCount;
    pending_.push_back(e);
    pendingItems_ += itemCount;
}

double
ItemQueue::minDeadlineAbsMs() const
{
    double min = std::numeric_limits<double>::infinity();
    for (const Entry& e : pending_) {
        min = std::min(min, e.deadlineAbsMs);
    }
    return min;
}

bool
ItemQueue::ranksBefore(const Entry& a, const Entry& b) const
{
    // Starvation boost dominates everything: a request skipped by
    // starvationPasses_ consecutive batches goes first, oldest first,
    // so a stream of high-priority arrivals cannot starve the tail.
    const bool aBoost = a.passes >= starvationPasses_;
    const bool bBoost = b.passes >= starvationPasses_;
    if (aBoost != bBoost) {
        return aBoost;
    }
    if (aBoost) {
        return a.arrivalSeq < b.arrivalSeq;
    }
    // Weighted fairness outranks priority: a tenant that has consumed
    // less weight-normalized service (lower virtual tag) goes first,
    // so one tenant's priority-9 flood cannot crowd out another
    // tenant's share. All-equal tags (the single-tenant case) fall
    // through to the classic priority/EDF order.
    if (a.fairRank != b.fairRank) {
        return a.fairRank < b.fairRank;
    }
    if (a.priority != b.priority) {
        return a.priority > b.priority;
    }
    if (a.deadlineAbsMs != b.deadlineAbsMs) {
        return a.deadlineAbsMs < b.deadlineAbsMs;
    }
    return a.arrivalSeq < b.arrivalSeq;
}

PlannedBatch
ItemQueue::formBatch(size_t maxItems)
{
    HEAP_CHECK(maxItems >= 1, "empty batch requested");
    PlannedBatch batch;
    if (pending_.empty()) {
        return batch;
    }
    std::stable_sort(pending_.begin(), pending_.end(),
                     [&](const Entry& a, const Entry& b) {
                         return ranksBefore(a, b);
                     });
    size_t taken = 0;
    for (Entry& e : pending_) {
        if (taken == maxItems) {
            ++e.passes; // skipped entirely by this batch
            continue;
        }
        const size_t want = e.itemCount - e.nextIndex;
        const size_t grab = std::min(want, maxItems - taken);
        for (size_t k = 0; k < grab; ++k) {
            batch.items.push_back(WorkItem{e.id, e.nextIndex + k});
        }
        e.nextIndex += grab;
        taken += grab;
        ++batch.distinctRequests;
        // Served (even partially): the starvation counter restarts.
        e.passes = 0;
    }
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [](const Entry& e) {
                                      return e.nextIndex == e.itemCount;
                                  }),
                   pending_.end());
    pendingItems_ -= batch.items.size();
    return batch;
}

BatchPlanner::BatchPlanner(const hw::BootstrapModel* model, Config cfg)
    : model_(model), cfg_(cfg)
{
    HEAP_CHECK(cfg.maxBatchItems >= 1, "bad batch cap");
    HEAP_CHECK(cfg.dispatchOverheadMs >= 0, "bad dispatch overhead");
}

double
BatchPlanner::batchCostMs(size_t items, bool remote) const
{
    double cost = cfg_.dispatchOverheadMs;
    if (model_ != nullptr) {
        cost += model_->blindRotateBatchMs(items);
        if (remote) {
            cost += model_->batchCommMs(items);
        }
    } else {
        // Modelless fallback: cost proportional to the item count so
        // lane balancing still prefers the shorter backlog.
        cost += static_cast<double>(items) * 0.01;
    }
    return cost;
}

size_t
BatchPlanner::chooseBatchSize(size_t pendingItems, double slackMs) const
{
    HEAP_CHECK(pendingItems >= 1, "no pending items");
    size_t size = std::min(pendingItems, cfg_.maxBatchItems);
    if (model_ == nullptr || !std::isfinite(slackMs)) {
        return size;
    }
    // batchCostMs is monotone in the item count: binary-search the
    // largest batch whose modeled latency still fits the slack. When
    // even a single item does not fit, the deadline is already lost —
    // dispatch a full batch and let the miss be accounted.
    if (batchCostMs(1, true) > slackMs) {
        return size;
    }
    size_t lo = 1, hi = size;
    while (lo < hi) {
        const size_t mid = lo + (hi - lo + 1) / 2;
        if (batchCostMs(mid, true) <= slackMs) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    return lo;
}

} // namespace heap::serve
