#include "serve/chaos.h"

#include <algorithm>

#include "common/check.h"
#include "serve/pir_service.h"
#include "serve/service.h"

namespace heap::serve {

namespace {

/** splitmix64 finalizer — the same fixed mix the cluster's router
 *  uses, so scripted schedules are platform-independent. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

ChaosSpec
ChaosSpec::scripted(uint64_t seed, size_t pods, uint64_t horizon,
                    uint64_t failBursts)
{
    HEAP_CHECK(pods >= 1, "chaos schedule needs at least one pod");
    HEAP_CHECK(horizon >= 8,
               "chaos horizon too short: " << horizon);
    ChaosSpec spec;
    const size_t crashPod = static_cast<size_t>(mix64(seed) % pods);
    // Crash one pod across the middle third of the run.
    spec.events.push_back({ChaosEvent::Kind::Crash, crashPod,
                           horizon / 3, 0});
    spec.events.push_back({ChaosEvent::Kind::Recover, crashPod,
                           2 * horizon / 3, 0});
    if (pods >= 2) {
        // Wedge a different pod over an earlier window.
        const size_t wedgePod = (crashPod + 1) % pods;
        spec.events.push_back({ChaosEvent::Kind::Wedge, wedgePod,
                               horizon / 5, 0});
        spec.events.push_back({ChaosEvent::Kind::Unwedge, wedgePod,
                               horizon / 2, 0});
    }
    for (uint64_t b = 0; b < failBursts; ++b) {
        const uint64_t h = mix64(seed ^ (b + 1));
        const size_t pod = static_cast<size_t>(h % pods);
        const uint64_t at = 1 + (h >> 8) % horizon;
        spec.events.push_back(
            {ChaosEvent::Kind::FailRequests, pod, at, 1 + (h >> 40) % 2});
    }
    return spec;
}

ChaosEngine::ChaosEngine(ChaosSpec spec)
    : events_(std::move(spec.events))
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const ChaosEvent& a, const ChaosEvent& b) {
                         return a.atSubmit < b.atSubmit;
                     });
}

void
ChaosEngine::advance(
    uint64_t submitIdx,
    const std::vector<std::unique_ptr<BootstrapService>>& pods,
    const std::vector<std::unique_ptr<PirService>>& pirPods)
{
    std::lock_guard<std::mutex> lock(m_);
    while (cursor_ < events_.size()
           && events_[cursor_].atSubmit <= submitIdx) {
        const ChaosEvent& e = events_[cursor_++];
        HEAP_CHECK(e.pod < pods.size(),
                   "chaos event targets pod " << e.pod << " of "
                                              << pods.size());
        BootstrapService& svc = *pods[e.pod];
        PirService* pir = e.pod < pirPods.size()
                              ? pirPods[e.pod].get()
                              : nullptr;
        switch (e.kind) {
        case ChaosEvent::Kind::FailRequests:
            svc.injectFailures(e.count);
            if (pir != nullptr) {
                pir->injectFailures(e.count);
            }
            st_.injectedFailures += e.count;
            break;
        case ChaosEvent::Kind::Wedge:
            svc.pause();
            if (pir != nullptr) {
                pir->pause();
            }
            ++st_.wedges;
            break;
        case ChaosEvent::Kind::Unwedge:
            svc.resume();
            if (pir != nullptr) {
                pir->resume();
            }
            ++st_.unwedges;
            break;
        case ChaosEvent::Kind::Crash:
            svc.crash();
            if (pir != nullptr) {
                pir->crash();
            }
            ++st_.crashes;
            break;
        case ChaosEvent::Kind::Recover:
            svc.recover();
            if (pir != nullptr) {
                pir->recover();
            }
            ++st_.recoveries;
            break;
        }
        ++st_.eventsApplied;
    }
}

bool
ChaosEngine::done() const
{
    std::lock_guard<std::mutex> lock(m_);
    return cursor_ == events_.size();
}

ChaosStats
ChaosEngine::stats() const
{
    std::lock_guard<std::mutex> lock(m_);
    return st_;
}

} // namespace heap::serve
