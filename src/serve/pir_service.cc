#include "serve/pir_service.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace heap::serve {

PirService::PirService(const pir::PirServer& server,
                       PirServiceConfig cfg)
    : server_(&server),
      cfg_(cfg),
      queue_(cfg.starvationPasses),
      epoch_(std::chrono::steady_clock::now())
{
    HEAP_CHECK(cfg.workers >= 1 && cfg.workers <= 64,
               "bad worker count " << cfg.workers);
    HEAP_CHECK(cfg.maxQueuedRequests >= 1, "bad admission cap");
    workers_.reserve(cfg.workers);
    for (size_t i = 0; i < cfg.workers; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

PirService::~PirService()
{
    shutdown();
}

double
PirService::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::shared_ptr<PirTicket>
PirService::submit(std::shared_ptr<const pir::PirQuery> query,
                   SubmitOptions opts,
                   std::shared_ptr<PirTicket> ticket)
{
    HEAP_CHECK(query != nullptr, "null PIR query");
    // Shape-check before admission: a malformed query fails loudly at
    // the door, never as a retryable pod fault.
    server_->validateQuery(*query);
    if (opts.deadlineMs) {
        HEAP_CHECK(*opts.deadlineMs >= 0,
                   "negative deadline " << *opts.deadlineMs);
    }
    if (ticket == nullptr) {
        ticket = std::make_shared<PirTicket>();
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        if (stopping_) {
            ++rejected_;
            HEAP_FATAL("pir service is shutting down: "
                       "request rejected");
        }
        if (crashed_) {
            ++rejected_;
            HEAP_FATAL("pir pod crashed: request rejected");
        }
        if (live_.size() >= cfg_.maxQueuedRequests) {
            ++rejected_;
            HEAP_FATAL("pir service at capacity ("
                       << live_.size() << " live requests): "
                       << "request rejected");
        }
        auto p = std::make_unique<Request>();
        p->id = nextId_++;
        p->ticket = ticket;
        p->query = std::move(query);
        p->opts = opts;
        p->arrivalMs = nowMs();
        p->deadlineAbsMs =
            opts.deadlineMs
                ? p->arrivalMs + *opts.deadlineMs
                : std::numeric_limits<double>::infinity();
        intake_.push_back(p->id);
        live_.emplace(p->id, std::move(p));
        ++submitted_;
        maxQueueDepth_ = std::max(maxQueueDepth_, live_.size());
    }
    workCv_.notify_all();
    return ticket;
}

void
PirService::pause()
{
    std::lock_guard<std::mutex> lock(m_);
    paused_ = true;
}

void
PirService::resume()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        paused_ = false;
    }
    workCv_.notify_all();
}

void
PirService::crash()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        if (!crashed_) {
            crashed_ = true;
            ++crashes_;
        }
        // Flush synchronously, same contract as the bootstrap pod:
        // when crash() returns, every query without dispatched
        // compute HAS failed and its hooks have run. Queries with
        // groups being folded right now settle through the worker
        // when the batch returns (their batchError is set here).
        crashFlushLocked();
    }
    workCv_.notify_all();
}

void
PirService::recover()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        crashed_ = false;
    }
    workCv_.notify_all();
}

void
PirService::injectFailures(uint64_t n)
{
    {
        std::lock_guard<std::mutex> lock(m_);
        injectRemaining_ += n;
    }
    workCv_.notify_all();
}

void
PirService::drain()
{
    std::unique_lock<std::mutex> lock(m_);
    HEAP_CHECK(!paused_, "drain() on a paused service cannot finish");
    doneCv_.wait(lock, [&] { return live_.empty(); });
}

void
PirService::shutdown()
{
    std::vector<std::thread> toJoin;
    {
        std::lock_guard<std::mutex> lock(m_);
        stopping_ = true;
        paused_ = false; // the drain needs the workers running
        if (!joined_) {
            joined_ = true;
            toJoin.swap(workers_);
        }
    }
    workCv_.notify_all();
    for (std::thread& t : toJoin) {
        t.join();
    }
}

bool
PirService::canIntakeLocked() const
{
    return !paused_ && !crashed_ && !intake_.empty();
}

bool
PirService::canDispatchLocked() const
{
    return !paused_ && !crashed_ && !queue_.empty();
}

bool
PirService::crashWorkLocked() const
{
    return crashed_ && (!intake_.empty() || !queue_.empty());
}

bool
PirService::haveRunnableWorkLocked() const
{
    return crashWorkLocked() || canIntakeLocked()
           || canDispatchLocked();
}

bool
PirService::idleLocked() const
{
    return intake_.empty() && queue_.empty() && inFlight_ == 0;
}

void
PirService::crashFlushLocked()
{
    auto podDown = [] {
        return std::make_exception_ptr(
            PodError("pir pod crashed: request lost"));
    };
    // Intake: nothing dispatched yet, fail directly.
    while (!intake_.empty()) {
        const uint64_t id = intake_.front();
        intake_.pop_front();
        failRequestLocked(live_.at(id).get(), podDown());
    }
    // Group pool: pull every undispatched item and settle it as
    // failed; queries whose whole tail was still queued reach zero
    // remaining here. Queries with groups in a flying batch keep
    // their outstanding count and fail when the batch returns — the
    // flush never touches a group a worker is folding right now.
    if (!queue_.empty()) {
        PlannedBatch all = queue_.formBatch(queue_.pendingItems());
        for (const WorkItem& w : all.items) {
            Request* p = live_.at(w.requestId).get();
            if (!p->batchError) {
                p->batchError = podDown();
            }
            --p->remaining;
            if (p->remaining == 0) {
                failRequestLocked(p, p->batchError);
            }
        }
    }
}

void
PirService::failRequestLocked(Request* p, std::exception_ptr err)
{
    RequestReport rep;
    const double now = nowMs();
    rep.id = p->id;
    rep.totalMs = now - p->arrivalMs;
    rep.queueMs =
        (p->firstDispatchMs >= 0 ? p->firstDispatchMs : now)
        - p->arrivalMs;
    rep.batches = p->batches;
    rep.deadlineMissed = now > p->deadlineAbsMs;
    rep.completionSeq = ++completionSeq_;
    rep.budgetBits = std::numeric_limits<double>::infinity();
    rep.precisionBits = std::numeric_limits<double>::infinity();
    ++failed_;
    auto ticket = std::move(p->ticket);
    auto onDone = std::move(p->opts.onDone);
    live_.erase(p->id);
    // The ticket's lock nests inside m_ only, never the reverse.
    ticket->fail(std::move(err), rep);
    if (onDone) {
        // Still under m_ (documented): the hook must not re-enter
        // the service.
        onDone(rep, /*ok=*/false);
    }
    doneCv_.notify_all();
}

void
PirService::finishRequest(Request* p)
{
    rlwe::Ciphertext out;
    std::exception_ptr err = p->batchError;
    if (!err) {
        try {
            // Remaining-dimension fold over the collected group
            // results, in group order — the exact tail answer()
            // runs, so the result does not depend on batch shape or
            // worker count.
            out = server_->finishFold(*p->query,
                                      std::move(p->firstPass));
        } catch (...) {
            err = std::current_exception();
        }
    }

    const double budgetBits = server_->answerBudgetBits();
    RequestReport rep;
    std::shared_ptr<PirTicket> ticket;
    std::function<void(const RequestReport&, bool)> onDone;
    {
        std::lock_guard<std::mutex> lock(m_);
        const double now = nowMs();
        rep.id = p->id;
        rep.totalMs = now - p->arrivalMs;
        rep.queueMs =
            (p->firstDispatchMs >= 0 ? p->firstDispatchMs : now)
            - p->arrivalMs;
        rep.batches = p->batches;
        rep.deadlineMissed = now > p->deadlineAbsMs;
        rep.completionSeq = ++completionSeq_;
        rep.budgetBits = budgetBits;
        rep.precisionBits =
            std::numeric_limits<double>::infinity();
        if (err) {
            ++failed_;
        } else {
            ++completed_;
            latency_.record(rep.totalMs);
            if (rep.deadlineMissed) {
                ++deadlineMisses_;
            }
            minReturnedBudgetBits_ =
                std::min(minReturnedBudgetBits_, budgetBits);
            if (budgetBits <= 0) {
                ++guardTrips_;
            }
        }
        ticket = std::move(p->ticket);
        onDone = std::move(p->opts.onDone);
        live_.erase(p->id);
    }
    const bool ok = err == nullptr;
    if (err) {
        ticket->fail(std::move(err), rep);
    } else {
        ticket->fulfil(std::move(out), rep);
    }
    if (onDone) {
        onDone(rep, ok);
    }
    doneCv_.notify_all();
}

void
PirService::workerLoop()
{
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        workCv_.wait(lock, [&] {
            return haveRunnableWorkLocked()
                   || (stopping_ && idleLocked());
        });
        if (stopping_ && idleLocked()) {
            return;
        }

        // A crashed pod fails its backlog instead of computing it.
        if (crashWorkLocked()) {
            crashFlushLocked();
            workCv_.notify_all();
            continue;
        }

        // Intake: the injection point (the bootstrap front stage's
        // role), then the query's groups enter the scheduled pool.
        if (canIntakeLocked()) {
            const uint64_t id = intake_.front();
            intake_.pop_front();
            Request* p = live_.at(id).get();
            if (injectRemaining_ > 0) {
                --injectRemaining_;
                ++injectedFailures_;
                failRequestLocked(
                    p, std::make_exception_ptr(PodError(
                           "injected pod fault: request failed")));
                workCv_.notify_all();
                continue;
            }
            const size_t groups = server_->firstDimGroups();
            p->firstPass.resize(groups);
            p->remaining = groups;
            queue_.addRequest(p->id, p->opts.priority,
                              p->deadlineAbsMs, groups,
                              p->opts.fairRank);
            workCv_.notify_all();
            continue;
        }

        if (canDispatchLocked()) {
            const size_t cap = cfg_.maxBatchItems == 0
                                   ? queue_.pendingItems()
                                   : cfg_.maxBatchItems;
            PlannedBatch batch = queue_.formBatch(
                std::min(cap, queue_.pendingItems()));
            HEAP_ASSERT(!batch.items.empty(), "empty batch formed");

            std::vector<ItemRef> refs;
            refs.reserve(batch.items.size());
            const double now = nowMs();
            Request* lastReq = nullptr;
            for (const WorkItem& w : batch.items) {
                Request* p = live_.at(w.requestId).get();
                refs.push_back(ItemRef{p, w.index});
                if (p != lastReq) { // items arrive grouped per request
                    if (p->firstDispatchMs < 0) {
                        p->firstDispatchMs = now;
                    }
                    ++p->batches;
                    lastReq = p;
                }
            }
            ++batches_;
            occupancySum_ += batch.distinctRequests;
            itemsSum_ += batch.items.size();
            ++inFlight_;
            lock.unlock();

            // Group folds, off the lock: pure const arithmetic on
            // the shared server. One failure poisons the whole
            // batch, mirroring the bootstrap batch contract.
            std::vector<rlwe::Ciphertext> outs(refs.size());
            std::exception_ptr err;
            try {
                for (size_t i = 0; i < refs.size(); ++i) {
                    outs[i] = server_->foldFirstGroup(
                        *refs[i].req->query, refs[i].group);
                }
            } catch (...) {
                err = std::current_exception();
            }

            lock.lock();
            std::vector<Request*> done;
            for (size_t i = 0; i < refs.size(); ++i) {
                Request* p = refs[i].req;
                if (err) {
                    if (!p->batchError) {
                        p->batchError = err;
                    }
                } else {
                    p->firstPass[refs[i].group] =
                        std::move(outs[i]);
                }
                --p->remaining;
                if (p->remaining == 0) {
                    if (crashed_ && !p->batchError) {
                        // Crashed while the batch was folding:
                        // in-flight work is lost, same as the
                        // bootstrap pod.
                        p->batchError = std::make_exception_ptr(
                            PodError("pir pod crashed: "
                                     "request lost"));
                    }
                    done.push_back(p);
                }
            }
            // Settle completed queries off the lock (finishFold is
            // real compute); failed ones settle under it, exactly
            // like the ordinary failure path.
            std::vector<Request*> toFinish;
            for (Request* p : done) {
                if (p->batchError) {
                    failRequestLocked(p, p->batchError);
                } else {
                    toFinish.push_back(p);
                }
            }
            lock.unlock();
            for (Request* p : toFinish) {
                finishRequest(p);
            }
            lock.lock();
            --inFlight_;
            workCv_.notify_all();
            continue;
        }
        // Lost a race to another worker; re-evaluate the predicate.
    }
}

ServiceMetrics
PirService::metrics() const
{
    std::lock_guard<std::mutex> lock(m_);
    ServiceMetrics m;
    m.submitted = submitted_;
    m.completed = completed_;
    m.failed = failed_;
    m.rejected = rejected_;
    m.deadlineMisses = deadlineMisses_;
    m.queueDepth = live_.size();
    m.maxQueueDepth = maxQueueDepth_;
    m.batches = batches_;
    if (batches_ > 0) {
        m.batchOccupancy = static_cast<double>(occupancySum_)
                           / static_cast<double>(batches_);
        m.meanBatchItems = static_cast<double>(itemsSum_)
                           / static_cast<double>(batches_);
    }
    if (latency_.count() > 0) {
        m.p50Ms = latency_.percentile(50);
        m.p95Ms = latency_.percentile(95);
        m.p99Ms = latency_.percentile(99);
        m.meanMs = latency_.mean();
    }
    m.injectedFailures = injectedFailures_;
    m.crashes = crashes_;
    m.minReturnedBudgetBits = minReturnedBudgetBits_;
    m.guardTrips = guardTrips_;
    return m;
}

} // namespace heap::serve
