/**
 * @file
 * Tenant layer of the serving runtime: the TenantRegistry holds each
 * tenant's identity, weighted-fair share, admission quota, base
 * priority, and modeled bootstrapping-key footprint, and implements
 * the weighted-fair virtual clock whose tags feed the ItemQueue's
 * fairness tier.
 *
 * Fairness model (start-time weighted fair queueing): every tenant t
 * carries a virtual-service counter V_t. Admitting a request of
 * `items` blind-rotate items charges V_t += items / weight_t, and the
 * request enters the scheduler tagged with V_t *before* the charge —
 * so within any contended interval, the number of items a tenant gets
 * served is proportional to its weight, independent of how fast it
 * submits. A tenant that went idle re-enters at the floor of the
 * currently busy tenants' counters (the classic WFQ catch-up rule),
 * so sleeping never banks credit.
 *
 * Quotas are a hard per-tenant in-flight cap enforced at admission —
 * the per-tenant analogue of the service's maxQueuedRequests — so one
 * tenant cannot occupy a whole pod's admission window.
 *
 * Thread-safe: the cluster admits/completes from many threads; all
 * state is guarded by an internal mutex. The completion hooks the
 * cluster installs call back into this registry from service worker
 * threads that may hold the service lock, so nothing here may call
 * into a service.
 */

#ifndef HEAP_SERVE_TENANT_H
#define HEAP_SERVE_TENANT_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace heap::serve {

/** Registration-time description of one tenant. */
struct TenantSpec {
    uint64_t id = 0; ///< nonzero, unique
    std::string name = {};
    /** Weighted-fair share: under contention a tenant receives
     *  service proportional to its weight. Must be > 0. */
    double weight = 1.0;
    /** Hard cap on this tenant's in-flight (admitted, unfinished)
     *  requests across the cluster; exceeding it rejects at
     *  admission. 0 = unlimited. */
    size_t maxInFlight = 0;
    /** Base scheduling priority added to each submission's own. */
    int priority = 0;
    /** Modeled bytes of this tenant's bootstrapping-key set (blind-
     *  rotate + packing keys); 0 = the registry default. */
    size_t keyBytes = 0;
};

/** Point-in-time accounting of one tenant. */
struct TenantStats {
    uint64_t id = 0;
    std::string name;
    double weight = 1.0;
    uint64_t submitted = 0; ///< admitted by quota + capacity
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t rejectedQuota = 0;    ///< refused by maxInFlight
    uint64_t rejectedCapacity = 0; ///< refused by pod admission
    uint64_t rejectedShed = 0;     ///< refused by load shedding
    size_t inFlight = 0;
    uint64_t servedItems = 0; ///< blind-rotate items completed
    double virtualService = 0; ///< the WFQ counter (servedItems-equiv / weight)
};

/** Admission outcome: the fair tag the request enters with. */
struct Admission {
    double fairRank = 0;
};

/**
 * Registry of tenants plus the weighted-fair virtual clock. One
 * registry spans the whole cluster (quotas and fairness are
 * cluster-wide, not per pod).
 */
class TenantRegistry {
  public:
    /** @param defaultKeyBytes key-footprint charge for tenants whose
     *         spec leaves keyBytes at 0. */
    explicit TenantRegistry(size_t defaultKeyBytes = 1);

    /** Registers a tenant; throws on a duplicate or invalid spec. */
    void registerTenant(TenantSpec spec);

    bool known(uint64_t id) const;
    size_t count() const;
    std::vector<uint64_t> tenantIds() const;
    const TenantSpec& spec(uint64_t id) const;

    /** The tenant's key-cache charge (spec or registry default). */
    size_t keyBytesFor(uint64_t id) const;

    /**
     * Quota check + weighted-fair tagging for one request of `items`
     * blind-rotate items: returns nullopt (and counts the rejection)
     * when the tenant is at its in-flight cap, otherwise charges the
     * virtual clock and returns the tag the request must carry into
     * the scheduler.
     */
    std::optional<Admission> tryAdmit(uint64_t id, size_t items);

    /**
     * Rolls back a tryAdmit whose request was never accepted by any
     * pod (capacity rejection): refunds the virtual-clock charge,
     * releases the in-flight slot, and counts the capacity rejection.
     */
    void cancelAdmit(uint64_t id, size_t items);

    /** Completion bookkeeping for an admitted request. */
    void onComplete(uint64_t id, size_t items, bool ok);

    /** Counts a load-shed rejection (deadline slack or brownout).
     *  Sheds happen BEFORE tryAdmit, so there is nothing to refund —
     *  this only records the outcome against the tenant. */
    void onShed(uint64_t id);

    TenantStats stats(uint64_t id) const;
    std::vector<TenantStats> allStats() const;

    /**
     * Weighted-fairness figure of merit: max over tenants of
     * (servedItems / weight) divided by the min, restricted to
     * tenants with at least `minCompleted` completed requests
     * (occasional tenants are noise, not unfairness). 1.0 = perfectly
     * weighted-proportional service; NaN when fewer than two tenants
     * qualify.
     */
    double fairnessRatio(uint64_t minCompleted = 1) const;

  private:
    struct State {
        TenantSpec spec;
        uint64_t submitted = 0, completed = 0, failed = 0;
        uint64_t rejectedQuota = 0, rejectedCapacity = 0;
        uint64_t rejectedShed = 0;
        size_t inFlight = 0;
        uint64_t servedItems = 0;
        double virtualService = 0;
    };

    const State& at(uint64_t id) const;
    State& at(uint64_t id);
    TenantStats statsLocked(const State& s) const;

    mutable std::mutex m_;
    size_t defaultKeyBytes_;
    std::unordered_map<uint64_t, State> tenants_;
};

} // namespace heap::serve

#endif // HEAP_SERVE_TENANT_H
