#include "math/primes.h"

#include <array>

#include "common/check.h"
#include "math/modarith.h"

namespace heap::math {

namespace {

/** Factorizes n by trial division (used only on q-1, small factor sets). */
std::vector<uint64_t>
primeFactors(uint64_t n)
{
    std::vector<uint64_t> factors;
    for (uint64_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
        if (n % p == 0) {
            factors.push_back(p);
            while (n % p == 0) {
                n /= p;
            }
        }
    }
    if (n > 1) {
        factors.push_back(n);
    }
    return factors;
}

} // namespace

bool
isPrime(uint64_t n)
{
    if (n < 2) {
        return false;
    }
    for (const uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                             19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0) {
            return n == p;
        }
    }
    // Write n-1 = d * 2^r.
    uint64_t d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // Deterministic witness set for 64-bit integers.
    constexpr std::array<uint64_t, 12> witnesses = {
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};
    for (const uint64_t a : witnesses) {
        uint64_t x = powMod(a % n, d, n);
        if (x == 1 || x == n - 1) {
            continue;
        }
        bool composite = true;
        for (int i = 0; i < r - 1; ++i) {
            x = mulModNaive(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite) {
            return false;
        }
    }
    return true;
}

std::vector<uint64_t>
generateNttPrimes(int bits, size_t n, size_t count)
{
    HEAP_CHECK(bits >= 20 && bits <= kMaxModulusBits,
               "prime bit width out of range: " << bits);
    HEAP_CHECK(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two");
    const uint64_t step = 2 * static_cast<uint64_t>(n);
    std::vector<uint64_t> primes;
    // Scan q = k * 2n + 1 downward from 2^bits.
    uint64_t q = ((static_cast<uint64_t>(1) << bits) / step) * step + 1;
    while (primes.size() < count) {
        HEAP_CHECK(q > (static_cast<uint64_t>(1) << (bits - 1)),
                   "ran out of " << bits << "-bit NTT primes for n=" << n);
        if (isPrime(q)) {
            primes.push_back(q);
        }
        q -= step;
    }
    return primes;
}

uint64_t
primitiveRoot(uint64_t q)
{
    HEAP_CHECK(isPrime(q), "primitiveRoot requires a prime modulus");
    const uint64_t order = q - 1;
    const auto factors = primeFactors(order);
    for (uint64_t g = 2; g < q; ++g) {
        bool ok = true;
        for (const uint64_t f : factors) {
            if (powMod(g, order / f, q) == 1) {
                ok = false;
                break;
            }
        }
        if (ok) {
            return g;
        }
    }
    HEAP_PANIC("no primitive root found for q=" << q);
}

uint64_t
minimalPrimitiveRoot2N(uint64_t q, size_t n)
{
    const uint64_t m = 2 * static_cast<uint64_t>(n);
    HEAP_CHECK((q - 1) % m == 0, "q != 1 mod 2n");
    const uint64_t g = primitiveRoot(q);
    uint64_t root = powMod(g, (q - 1) / m, q);
    // root is a primitive 2n-th root; find the smallest one for
    // reproducibility across runs.
    uint64_t best = root;
    uint64_t cur = root;
    for (uint64_t k = 3; k < m; k += 2) {
        cur = mulModNaive(cur, mulModNaive(root, root, q), q);
        // cur = root^k for odd k; all odd powers are primitive.
        if (cur < best) {
            best = cur;
        }
    }
    return best;
}

} // namespace heap::math
