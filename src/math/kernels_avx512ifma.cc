/**
 * @file
 * AVX-512 IFMA NTT bodies: negacyclic butterflies built on the
 * 52x52-bit fused multiply-add units (vpmadd52luq/vpmadd52huq),
 * following the same Harvey lazy-reduction discipline as the scalar
 * kernels but with beta = 2^52 instead of 2^64:
 *
 *   shoupLazy52(a, w) = low52(a*w) - low52(floor(a*w52 / 2^52) * q)
 *                     mod 2^52, with w52 = floor(w * 2^52 / q),
 *
 * which lands in [0, 2q) for any a < 2^52 provided q < 2^50
 * (kIfmaMaxModulusBits). That is one vpmadd52huq plus two vpmadd52luq
 * per 8 lanes — the closest software analogue of the paper's
 * DSP-packed 52-bit multiplier columns (Section IV-A).
 *
 * Intermediates here may take different lazy representatives than the
 * 64-bit scalar/DQ paths, but every path normalizes to canonical
 * [0, q) in its final pass, so whole-transform outputs remain
 * byte-identical (asserted by tests/simd_equivalence_test.cc).
 *
 * Only reachable when the tables carry 52-bit companions
 * (NttTablesView::psi52 != nullptr) and the CPU reports avx512ifma;
 * kernels_avx512.cc performs both checks before branching here.
 */

#if defined(HEAP_HAVE_AVX512IFMA) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "math/kernels.h"

namespace heap::math {
namespace {

constexpr uint64_t kMask52 = (static_cast<uint64_t>(1) << 52) - 1;

/** Lazy 52-bit Shoup product a*w in [0, 2q); a < 2^52, w < q < 2^50. */
inline __m512i
shoupLazy52V(__m512i a, __m512i w, __m512i w52, __m512i q,
             __m512i zero, __m512i mask52)
{
    const __m512i hi = _mm512_madd52hi_epu64(zero, a, w52);
    const __m512i lo = _mm512_madd52lo_epu64(zero, a, w);
    const __m512i lo2 = _mm512_madd52lo_epu64(zero, hi, q);
    // True result < 2q < 2^51, so the mod-2^52 difference is exact.
    return _mm512_and_si512(_mm512_sub_epi64(lo, lo2), mask52);
}

/** x >= lim ? x - lim : x, unsigned lanes. */
inline __m512i
condSubV(__m512i x, __m512i lim)
{
    const __mmask8 ge = _mm512_cmpge_epu64_mask(x, lim);
    return _mm512_mask_sub_epi64(x, ge, x, lim);
}

/**
 * One forward butterfly stage with len in {1, 2, 4}, entirely inside a
 * 512-bit register: lanes are permuted so every lane sees its pair's
 * (u, v), both butterfly outputs are computed across all lanes, and
 * vMask selects the product lanes. Inputs < 2q, outputs < 2q.
 */
inline __m512i
fwdStageSmallV(__m512i z, __m512i uIdx, __m512i vIdx, __mmask8 vMask,
               __m512i w, __m512i w52, __m512i q, __m512i twoQ,
               __m512i zero, __m512i mask52)
{
    const __m512i u = _mm512_permutexvar_epi64(uIdx, z);
    const __m512i v = _mm512_permutexvar_epi64(vIdx, z);
    const __m512i sum = condSubV(_mm512_add_epi64(u, v), twoQ);
    const __m512i diff =
        _mm512_add_epi64(_mm512_sub_epi64(u, v), twoQ);
    const __m512i prod = shoupLazy52V(diff, w, w52, q, zero, mask52);
    return _mm512_mask_blend_epi64(vMask, sum, prod);
}

/**
 * One inverse butterfly stage with len in {1, 2, 4}, in-register like
 * fwdStageSmallV. Inputs < 4q, outputs < 4q (Harvey's bound).
 */
inline __m512i
invStageSmallV(__m512i z, __m512i uIdx, __m512i vIdx, __mmask8 vMask,
               __m512i w, __m512i w52, __m512i q, __m512i twoQ,
               __m512i zero, __m512i mask52)
{
    const __m512i u =
        condSubV(_mm512_permutexvar_epi64(uIdx, z), twoQ);
    const __m512i v = shoupLazy52V(_mm512_permutexvar_epi64(vIdx, z),
                                   w, w52, q, zero, mask52);
    const __m512i x = _mm512_add_epi64(u, v);
    const __m512i y =
        _mm512_add_epi64(_mm512_sub_epi64(u, v), twoQ);
    return _mm512_mask_blend_epi64(vMask, x, y);
}

} // namespace

namespace detail {

void
nttForwardAvx512Ifma(uint64_t* a, const NttTablesView& t)
{
    const size_t n = t.n;
    if (n < 32) {
        nttForwardScalarLazy(a, t);
        return;
    }
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    const __m512i twoQv =
        _mm512_set1_epi64(static_cast<int64_t>(twoQ));
    const __m512i zero = _mm512_setzero_si512();
    const __m512i mask52 =
        _mm512_set1_epi64(static_cast<int64_t>(kMask52));

    // Twist: a[i] *= psi^i, lazily (< 2q).
    for (size_t i = 0; i < n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i w = _mm512_loadu_si512(t.psi + i);
        const __m512i w52 = _mm512_loadu_si512(t.psi52 + i);
        _mm512_storeu_si512(
            a + i, shoupLazy52V(x, w, w52, qv, zero, mask52));
    }
    // Vector DIF stages (len >= 8); inputs < 2q, diff < 4q < 2^52.
    for (size_t len = n / 2; len >= 8; len >>= 1) {
        const uint64_t* tw = t.tw + len;
        const uint64_t* tw52 = t.tw52 + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; j += 8) {
                const __m512i u = _mm512_loadu_si512(x + j);
                const __m512i v = _mm512_loadu_si512(y + j);
                const __m512i sum =
                    condSubV(_mm512_add_epi64(u, v), twoQv);
                const __m512i diff = _mm512_add_epi64(
                    _mm512_sub_epi64(u, v), twoQv);
                const __m512i w = _mm512_loadu_si512(tw + j);
                const __m512i w52 = _mm512_loadu_si512(tw52 + j);
                _mm512_storeu_si512(x + j, sum);
                _mm512_storeu_si512(
                    y + j,
                    shoupLazy52V(diff, w, w52, qv, zero, mask52));
            }
        }
    }
    // Last three stages (len 4, 2, 1) live entirely inside one
    // register; the final normalization to [0, q) is fused in.
    const __m512i dup4 = _mm512_setr_epi64(0, 1, 2, 3, 0, 1, 2, 3);
    const __m512i dup2 = _mm512_setr_epi64(0, 1, 0, 1, 0, 1, 0, 1);
    const __m512i vIdx4 = _mm512_setr_epi64(4, 5, 6, 7, 4, 5, 6, 7);
    const __m512i uIdx2 = _mm512_setr_epi64(0, 1, 0, 1, 4, 5, 4, 5);
    const __m512i vIdx2 = _mm512_setr_epi64(2, 3, 2, 3, 6, 7, 6, 7);
    const __m512i uIdx1 = _mm512_setr_epi64(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i vIdx1 = _mm512_setr_epi64(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i w4 =
        _mm512_permutexvar_epi64(dup4, _mm512_loadu_si512(t.tw + 4));
    const __m512i w4x = _mm512_permutexvar_epi64(
        dup4, _mm512_loadu_si512(t.tw52 + 4));
    const __m512i w2 =
        _mm512_permutexvar_epi64(dup2, _mm512_loadu_si512(t.tw + 2));
    const __m512i w2x = _mm512_permutexvar_epi64(
        dup2, _mm512_loadu_si512(t.tw52 + 2));
    const __m512i w1 =
        _mm512_set1_epi64(static_cast<int64_t>(t.tw[1]));
    const __m512i w1x =
        _mm512_set1_epi64(static_cast<int64_t>(t.tw52[1]));
    for (size_t i = 0; i < n; i += 8) {
        __m512i z = _mm512_loadu_si512(a + i);
        z = fwdStageSmallV(z, dup4, vIdx4, 0xF0, w4, w4x, qv, twoQv,
                           zero, mask52);
        z = fwdStageSmallV(z, uIdx2, vIdx2, 0xCC, w2, w2x, qv, twoQv,
                           zero, mask52);
        z = fwdStageSmallV(z, uIdx1, vIdx1, 0xAA, w1, w1x, qv, twoQv,
                           zero, mask52);
        _mm512_storeu_si512(a + i, condSubV(z, qv));
    }
}

void
nttInverseAvx512Ifma(uint64_t* a, const NttTablesView& t)
{
    const size_t n = t.n;
    if (n < 32) {
        nttInverseScalarLazy(a, t);
        return;
    }
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    const __m512i twoQv =
        _mm512_set1_epi64(static_cast<int64_t>(twoQ));
    const __m512i zero = _mm512_setzero_si512();
    const __m512i mask52 =
        _mm512_set1_epi64(static_cast<int64_t>(kMask52));

    // First three stages (len 1, 2, 4) in-register; 4q invariant.
    const __m512i dup4 = _mm512_setr_epi64(0, 1, 2, 3, 0, 1, 2, 3);
    const __m512i dup2 = _mm512_setr_epi64(0, 1, 0, 1, 0, 1, 0, 1);
    const __m512i vIdx4 = _mm512_setr_epi64(4, 5, 6, 7, 4, 5, 6, 7);
    const __m512i uIdx2 = _mm512_setr_epi64(0, 1, 0, 1, 4, 5, 4, 5);
    const __m512i vIdx2 = _mm512_setr_epi64(2, 3, 2, 3, 6, 7, 6, 7);
    const __m512i uIdx1 = _mm512_setr_epi64(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i vIdx1 = _mm512_setr_epi64(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i w4 =
        _mm512_permutexvar_epi64(dup4, _mm512_loadu_si512(t.itw + 4));
    const __m512i w4x = _mm512_permutexvar_epi64(
        dup4, _mm512_loadu_si512(t.itw52 + 4));
    const __m512i w2 =
        _mm512_permutexvar_epi64(dup2, _mm512_loadu_si512(t.itw + 2));
    const __m512i w2x = _mm512_permutexvar_epi64(
        dup2, _mm512_loadu_si512(t.itw52 + 2));
    const __m512i w1 =
        _mm512_set1_epi64(static_cast<int64_t>(t.itw[1]));
    const __m512i w1x =
        _mm512_set1_epi64(static_cast<int64_t>(t.itw52[1]));
    for (size_t i = 0; i < n; i += 8) {
        __m512i z = _mm512_loadu_si512(a + i);
        z = invStageSmallV(z, uIdx1, vIdx1, 0xAA, w1, w1x, qv, twoQv,
                           zero, mask52);
        z = invStageSmallV(z, uIdx2, vIdx2, 0xCC, w2, w2x, qv, twoQv,
                           zero, mask52);
        z = invStageSmallV(z, dup4, vIdx4, 0xF0, w4, w4x, qv, twoQv,
                           zero, mask52);
        _mm512_storeu_si512(a + i, z);
    }
    // Vector DIT stages (len >= 8); y inputs < 4q < 2^52.
    for (size_t len = 8; len <= n / 2; len <<= 1) {
        const uint64_t* tw = t.itw + len;
        const uint64_t* tw52 = t.itw52 + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; j += 8) {
                const __m512i u =
                    condSubV(_mm512_loadu_si512(x + j), twoQv);
                const __m512i w = _mm512_loadu_si512(tw + j);
                const __m512i w52 = _mm512_loadu_si512(tw52 + j);
                const __m512i v =
                    shoupLazy52V(_mm512_loadu_si512(y + j), w, w52,
                                 qv, zero, mask52);
                _mm512_storeu_si512(x + j, _mm512_add_epi64(u, v));
                _mm512_storeu_si512(
                    y + j,
                    _mm512_add_epi64(_mm512_sub_epi64(u, v), twoQv));
            }
        }
    }
    // Untwist + scale (inputs < 4q < 2^52), then normalize to [0, q).
    for (size_t i = 0; i < n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i w = _mm512_loadu_si512(t.ipsiScaled + i);
        const __m512i w52 = _mm512_loadu_si512(t.ipsiScaled52 + i);
        _mm512_storeu_si512(
            a + i,
            condSubV(shoupLazy52V(x, w, w52, qv, zero, mask52), qv));
    }
}

} // namespace detail
} // namespace heap::math

#endif // HEAP_HAVE_AVX512IFMA && x86
