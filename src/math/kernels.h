/**
 * @file
 * Flat, batch-oriented modular kernels with runtime SIMD dispatch.
 *
 * These are the software mirror of the paper's fused modular
 * multiply + Barrett units feeding the radix-2 NTT datapath (Sections
 * IV-A, IV-D): every kernel is a branch-light loop over a contiguous
 * array — one RnsPoly limb of the limb-major layout — with all
 * per-modulus constants hoisted out of the loop.
 *
 * Reduction discipline (see DESIGN.md "Limb-major math core"):
 *  - all kernel *inputs and outputs* are fully reduced to [0, q);
 *  - *inside* the NTT kernels values are kept lazily reduced —
 *    < 2q across the forward (Gentleman-Sande) stages and < 4q across
 *    the inverse (Cooley-Tukey) stages, exploiting the q < 2^62
 *    headroom guaranteed by modarith.h — and normalized exactly once
 *    in the final twist pass;
 *  - every variant (scalar / AVX2 / NEON) produces byte-identical
 *    output; tests/simd_equivalence_test.cc enforces this.
 *
 * Use kernels() for the process-wide dispatched table (selected once
 * via math/simd.h) or kernelsForLevel() to pin a specific variant
 * (benchmarks and equivalence tests).
 */

#ifndef HEAP_MATH_KERNELS_H
#define HEAP_MATH_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "math/modarith.h"
#include "math/simd.h"

namespace heap::math {

/**
 * Borrowed view of one modulus' NTT tables (owned by NttTables):
 * stage-flattened twiddles with Shoup companions plus the negacyclic
 * twist vectors. All pointers reference arrays of length n except
 * where noted.
 */
struct NttTablesView {
    size_t n = 0;
    uint64_t q = 0;
    const uint64_t* tw = nullptr;      ///< tw[len + j], forward twiddles
    const uint64_t* twShoup = nullptr;
    const uint64_t* itw = nullptr;     ///< inverse twiddles
    const uint64_t* itwShoup = nullptr;
    const uint64_t* psi = nullptr;     ///< psi^i twist
    const uint64_t* psiShoup = nullptr;
    const uint64_t* ipsiScaled = nullptr; ///< psi^{-i} * n^{-1}
    const uint64_t* ipsiScaledShoup = nullptr;
    // 52-bit Shoup companions (shoupPrecompute52) for the AVX-512 IFMA
    // path; only populated when q < 2^kIfmaMaxModulusBits, nullptr
    // otherwise. The twiddle values themselves are shared with the
    // 64-bit path above.
    const uint64_t* tw52 = nullptr;
    const uint64_t* itw52 = nullptr;
    const uint64_t* psi52 = nullptr;
    const uint64_t* ipsiScaled52 = nullptr;
};

/**
 * Dispatch table of flat kernels. All array arguments may alias only
 * as dst == a (in-place); n is the element count. Unless stated, all
 * inputs are in [0, q) and outputs are returned in [0, q).
 */
struct KernelOps {
    SimdLevel level = SimdLevel::Scalar;

    /** In-place forward negacyclic NTT, natural -> bit-reversed. */
    void (*nttForward)(uint64_t* a, const NttTablesView& t);
    /** In-place inverse negacyclic NTT, bit-reversed -> natural. */
    void (*nttInverse)(uint64_t* a, const NttTablesView& t);

    /** dst[i] = a[i] * b[i] mod q (full Barrett reduction). */
    void (*mulMod)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n, const BarrettReducer& red);
    /** dst[i] = (dst[i] + a[i] * b[i]) mod q. */
    void (*mulModAccum)(uint64_t* dst, const uint64_t* a,
                        const uint64_t* b, size_t n,
                        const BarrettReducer& red);
    /** dst[i] = (a[i] + b[i]) mod q. */
    void (*addMod)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n, uint64_t q);
    /** dst[i] = (a[i] - b[i]) mod q. */
    void (*subMod)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n, uint64_t q);
    /** dst[i] = (-a[i]) mod q. */
    void (*negMod)(uint64_t* dst, const uint64_t* a, size_t n,
                   uint64_t q);
    /** dst[i] = a[i] * w mod q via the Shoup companion ws. @pre w < q. */
    void (*mulScalarShoup)(uint64_t* dst, const uint64_t* a, uint64_t w,
                           uint64_t ws, size_t n, uint64_t q);
    /** dst[i] = (dst[i] + a[i] * w) mod q. @pre w < q. */
    void (*mulScalarShoupAccum)(uint64_t* dst, const uint64_t* a,
                                uint64_t w, uint64_t ws, size_t n,
                                uint64_t q);
    /**
     * Lifts signed digits into [0, q): dst[i] = a[i] mod q.
     * @pre |a[i]| < q (gadget digits, |digit| <= B/2 < q).
     */
    void (*liftSigned)(uint64_t* dst, const int64_t* a, size_t n,
                       uint64_t q);
};

/** The process-wide table, selected once per activeSimdLevel(). */
const KernelOps& kernels();

/**
 * The table for a specific level; falls back to Scalar when the
 * requested variant is not compiled in or not runnable on this host.
 */
const KernelOps& kernelsForLevel(SimdLevel level);

/** Portable scalar table (always available; the dispatch fallback). */
const KernelOps& scalarKernels();

namespace detail {

/** Portable lazy-reduction NTT bodies (small-size fallback for the
 *  SIMD variants; byte-identical to the dispatched output). */
void nttForwardScalarLazy(uint64_t* a, const NttTablesView& t);
void nttInverseScalarLazy(uint64_t* a, const NttTablesView& t);

} // namespace detail

#if defined(HEAP_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
namespace detail {
/** Fills `ops` with the AVX2 variants (defined in kernels_avx2.cc). */
void installAvx2Kernels(KernelOps& ops);
} // namespace detail
#endif

#if defined(HEAP_HAVE_AVX512) && (defined(__x86_64__) || defined(__i386__))
namespace detail {
/** Fills `ops` with the AVX-512 variants (kernels_avx512.cc). */
void installAvx512Kernels(KernelOps& ops);
} // namespace detail
#endif

#if defined(HEAP_HAVE_AVX512IFMA) && (defined(__x86_64__) || defined(__i386__))
namespace detail {
/**
 * AVX-512 IFMA NTT bodies (kernels_avx512ifma.cc): 52x52-bit fused
 * multiply butterflies, usable only when the tables carry 52-bit
 * Shoup companions (q < 2^kIfmaMaxModulusBits). The AVX-512 kernels
 * branch into these per call after an avx512ifma cpuid check.
 */
void nttForwardAvx512Ifma(uint64_t* a, const NttTablesView& t);
void nttInverseAvx512Ifma(uint64_t* a, const NttTablesView& t);
} // namespace detail
#endif

#if defined(HEAP_HAVE_NEON) && defined(__aarch64__)
namespace detail {
/** Fills `ops` with the NEON variants (defined in kernels_neon.cc). */
void installNeonKernels(KernelOps& ops);
} // namespace detail
#endif

} // namespace heap::math

#endif // HEAP_MATH_KERNELS_H
