#include "math/simd.h"

#include <cstdlib>
#include <cstring>

namespace heap::math {

const char*
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Avx512:
        return "avx512";
    case SimdLevel::Neon:
        return "neon";
    case SimdLevel::Scalar:
        break;
    }
    return "scalar";
}

namespace detail {

SimdLevel
detectSimdLevel()
{
    const char* force = std::getenv("HEAP_FORCE_SCALAR");
    if (force != nullptr && force[0] != '\0' && force[0] != '0') {
        return SimdLevel::Scalar;
    }
#if defined(HEAP_HAVE_AVX512) && (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx512f")
        && __builtin_cpu_supports("avx512dq")
        && __builtin_cpu_supports("avx512vl")) {
        return SimdLevel::Avx512;
    }
#endif
#if defined(HEAP_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx2")) {
        return SimdLevel::Avx2;
    }
#endif
#if defined(HEAP_HAVE_NEON) && defined(__aarch64__)
    // NEON is architecturally guaranteed on aarch64.
    return SimdLevel::Neon;
#endif
    return SimdLevel::Scalar;
}

} // namespace detail

SimdLevel
activeSimdLevel()
{
    static const SimdLevel level = detail::detectSimdLevel();
    return level;
}

} // namespace heap::math
