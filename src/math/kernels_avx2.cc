/**
 * @file
 * AVX2 variants of the flat math kernels (see kernels.h for the
 * reduction-discipline contract). Compiled with -mavx2 and only ever
 * called after runtime detection (math/simd.cc), so no other TU needs
 * the flag.
 *
 * AVX2 has no 64x64 multiply, so the 64-bit high/low products behind
 * Shoup multiplication are synthesized from _mm256_mul_epu32 partials
 * — the same widening-multiplier decomposition the paper's DSP
 * packing performs in hardware (Section IV-A). The wins come from
 * 4-wide butterflies, branchless lazy reductions, and 4-wide
 * add/sub/compare; the Barrett 128-bit pointwise reduction stays
 * scalar (the emulation would cost more than the scalar mul chain).
 */

#if defined(HEAP_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "math/kernels.h"

namespace heap::math {
namespace {

const __m256i kSign = _mm256_set1_epi64x(
    static_cast<int64_t>(0x8000000000000000ULL));
const __m256i kLo32 = _mm256_set1_epi64x(0xffffffffLL);

/** High 64 bits of the 64x64 product, per lane. */
inline __m256i
mulHi64v(__m256i x, __m256i y)
{
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i yh = _mm256_srli_epi64(y, 32);
    const __m256i ll = _mm256_mul_epu32(x, y);
    const __m256i lh = _mm256_mul_epu32(x, yh);
    const __m256i hl = _mm256_mul_epu32(xh, y);
    const __m256i hh = _mm256_mul_epu32(xh, yh);
    const __m256i cross = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, kLo32)),
        _mm256_and_si256(hl, kLo32));
    return _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                         _mm256_srli_epi64(cross, 32)));
}

/** Low 64 bits of the 64x64 product, per lane. */
inline __m256i
mulLo64v(__m256i x, __m256i y)
{
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i yh = _mm256_srli_epi64(y, 32);
    const __m256i ll = _mm256_mul_epu32(x, y);
    const __m256i lh = _mm256_mul_epu32(x, yh);
    const __m256i hl = _mm256_mul_epu32(xh, y);
    return _mm256_add_epi64(
        ll, _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32));
}

/** Lazy Shoup product a*w in [0, 2q); a arbitrary, w < q. */
inline __m256i
shoupLazyV(__m256i a, __m256i w, __m256i ws, __m256i q)
{
    const __m256i hi = mulHi64v(a, ws);
    return _mm256_sub_epi64(mulLo64v(a, w), mulLo64v(hi, q));
}

/** x >= lim ? x - lim : x, for unsigned lanes. lim1s = (lim-1)^sign. */
inline __m256i
condSubV(__m256i x, __m256i lim, __m256i lim1s)
{
    const __m256i ge = _mm256_cmpgt_epi64(_mm256_xor_si256(x, kSign),
                                          lim1s);
    return _mm256_sub_epi64(x, _mm256_and_si256(lim, ge));
}

inline __m256i
signedLim(__m256i lim)
{
    return _mm256_xor_si256(
        _mm256_sub_epi64(lim, _mm256_set1_epi64x(1)), kSign);
}

void
nttForwardAvx2(uint64_t* a, const NttTablesView& t)
{
    const size_t n = t.n;
    if (n < 16) {
        detail::nttForwardScalarLazy(a, t);
        return;
    }
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i twoQv =
        _mm256_set1_epi64x(static_cast<int64_t>(twoQ));
    const __m256i q1s = signedLim(qv);
    const __m256i twoQ1s = signedLim(twoQv);

    // Twist: a[i] *= psi^i, lazily (< 2q).
    for (size_t i = 0; i < n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(t.psi + i));
        const __m256i ws = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(t.psiShoup + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                            shoupLazyV(x, w, ws, qv));
    }
    // Vector DIF stages (len >= 4).
    for (size_t len = n / 2; len >= 4; len >>= 1) {
        const uint64_t* tw = t.tw + len;
        const uint64_t* tws = t.twShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; j += 4) {
                const __m256i u = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(x + j));
                const __m256i v = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(y + j));
                const __m256i sum = condSubV(_mm256_add_epi64(u, v),
                                             twoQv, twoQ1s);
                const __m256i diff = _mm256_add_epi64(
                    _mm256_sub_epi64(u, v), twoQv);
                const __m256i w = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(tw + j));
                const __m256i ws = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(tws + j));
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + j),
                                    sum);
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j),
                                    shoupLazyV(diff, w, ws, qv));
            }
        }
    }
    // Last two stages (len 2, 1): strided scalar butterflies.
    for (size_t len = 2; len >= 1; len >>= 1) {
        const uint64_t* tw = t.tw + len;
        const uint64_t* tws = t.twShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; ++j) {
                const uint64_t u = x[j];
                const uint64_t v = y[j];
                uint64_t sum = u + v;
                if (sum >= twoQ) {
                    sum -= twoQ;
                }
                x[j] = sum;
                y[j] = mulModShoupLazy(u - v + twoQ, tw[j], tws[j], q);
            }
        }
    }
    // Final normalization to [0, q).
    for (size_t i = 0; i < n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                            condSubV(x, qv, q1s));
    }
}

void
nttInverseAvx2(uint64_t* a, const NttTablesView& t)
{
    const size_t n = t.n;
    if (n < 16) {
        detail::nttInverseScalarLazy(a, t);
        return;
    }
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i twoQv =
        _mm256_set1_epi64x(static_cast<int64_t>(twoQ));
    const __m256i q1s = signedLim(qv);
    const __m256i twoQ1s = signedLim(twoQv);

    // First two stages (len 1, 2): scalar butterflies, 4q invariant.
    for (size_t len = 1; len <= 2; len <<= 1) {
        const uint64_t* tw = t.itw + len;
        const uint64_t* tws = t.itwShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; ++j) {
                uint64_t u = x[j];
                if (u >= twoQ) {
                    u -= twoQ;
                }
                const uint64_t v =
                    mulModShoupLazy(y[j], tw[j], tws[j], q);
                x[j] = u + v;
                y[j] = u - v + twoQ;
            }
        }
    }
    // Vector DIT stages (len >= 4).
    for (size_t len = 4; len <= n / 2; len <<= 1) {
        const uint64_t* tw = t.itw + len;
        const uint64_t* tws = t.itwShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; j += 4) {
                const __m256i u0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(x + j));
                const __m256i u = condSubV(u0, twoQv, twoQ1s);
                const __m256i w = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(tw + j));
                const __m256i ws = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(tws + j));
                const __m256i v = shoupLazyV(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(y + j)),
                    w, ws, qv);
                _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + j),
                                    _mm256_add_epi64(u, v));
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(y + j),
                    _mm256_add_epi64(_mm256_sub_epi64(u, v), twoQv));
            }
        }
    }
    // Untwist + scale, then normalize to [0, q).
    for (size_t i = 0; i < n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(t.ipsiScaled + i));
        const __m256i ws = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(t.ipsiScaledShoup + i));
        const __m256i r = shoupLazyV(x, w, ws, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                            condSubV(r, qv, q1s));
    }
}

void
addModAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
           size_t n, uint64_t q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i q1s = signedLim(qv);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i y = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            condSubV(_mm256_add_epi64(x, y), qv, q1s));
    }
    for (; i < n; ++i) {
        dst[i] = addMod(a[i], b[i], q);
    }
}

void
subModAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
           size_t n, uint64_t q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i q1s = signedLim(qv);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i y = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + i));
        // a - b + q in (0, 2q), then one conditional subtract.
        const __m256i r =
            _mm256_add_epi64(_mm256_sub_epi64(x, y), qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            condSubV(r, qv, q1s));
    }
    for (; i < n; ++i) {
        dst[i] = subMod(a[i], b[i], q);
    }
}

void
negModAvx2(uint64_t* dst, const uint64_t* a, size_t n, uint64_t q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i r = _mm256_sub_epi64(qv, x);
        const __m256i isZero = _mm256_cmpeq_epi64(x, zero);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_andnot_si256(isZero, r));
    }
    for (; i < n; ++i) {
        dst[i] = negMod(a[i], q);
    }
}

void
mulScalarShoupAvx2(uint64_t* dst, const uint64_t* a, uint64_t w,
                   uint64_t ws, size_t n, uint64_t q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i q1s = signedLim(qv);
    const __m256i wv = _mm256_set1_epi64x(static_cast<int64_t>(w));
    const __m256i wsv = _mm256_set1_epi64x(static_cast<int64_t>(ws));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i r = shoupLazyV(x, wv, wsv, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            condSubV(r, qv, q1s));
    }
    for (; i < n; ++i) {
        dst[i] = mulModShoup(a[i], w, ws, q);
    }
}

void
mulScalarShoupAccumAvx2(uint64_t* dst, const uint64_t* a, uint64_t w,
                        uint64_t ws, size_t n, uint64_t q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i q1s = signedLim(qv);
    const __m256i wv = _mm256_set1_epi64x(static_cast<int64_t>(w));
    const __m256i wsv = _mm256_set1_epi64x(static_cast<int64_t>(ws));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(dst + i));
        const __m256i r =
            condSubV(shoupLazyV(x, wv, wsv, qv), qv, q1s);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            condSubV(_mm256_add_epi64(d, r), qv, q1s));
    }
    for (; i < n; ++i) {
        dst[i] = addMod(dst[i], mulModShoup(a[i], w, ws, q), q);
    }
}

void
liftSignedAvx2(uint64_t* dst, const int64_t* a, size_t n, uint64_t q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<int64_t>(q));
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i isNeg = _mm256_cmpgt_epi64(zero, v);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + i),
            _mm256_add_epi64(v, _mm256_and_si256(qv, isNeg)));
    }
    for (; i < n; ++i) {
        const int64_t v = a[i];
        dst[i] = static_cast<uint64_t>(v)
                 + (q & static_cast<uint64_t>(v >> 63));
    }
}

} // namespace

namespace detail {

void
installAvx2Kernels(KernelOps& ops)
{
    ops.nttForward = &nttForwardAvx2;
    ops.nttInverse = &nttInverseAvx2;
    ops.addMod = &addModAvx2;
    ops.subMod = &subModAvx2;
    ops.negMod = &negModAvx2;
    ops.mulScalarShoup = &mulScalarShoupAvx2;
    ops.mulScalarShoupAccum = &mulScalarShoupAccumAvx2;
    ops.liftSigned = &liftSignedAvx2;
    // mulMod / mulModAccum stay scalar: the 128-bit Barrett reduction
    // has no profitable AVX2 formulation (no 64-bit vector multiply).
}

} // namespace detail
} // namespace heap::math

#endif // HEAP_HAVE_AVX2 && x86
