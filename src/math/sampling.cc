#include "math/sampling.h"

#include <cmath>

#include "common/check.h"

namespace heap::math {

std::vector<int64_t>
sampleTernary(size_t n, Rng& rng)
{
    std::vector<int64_t> out(n);
    for (auto& v : out) {
        v = rng.ternary();
    }
    return out;
}

std::vector<int64_t>
sampleTernaryHamming(size_t n, size_t hamming, Rng& rng)
{
    HEAP_CHECK(hamming <= n, "Hamming weight exceeds dimension");
    std::vector<int64_t> out(n, 0);
    size_t placed = 0;
    while (placed < hamming) {
        const size_t idx = rng.uniform(n);
        if (out[idx] == 0) {
            out[idx] = (rng.next() & 1) ? 1 : -1;
            ++placed;
        }
    }
    return out;
}

std::vector<int64_t>
sampleGaussian(size_t n, double stddev, Rng& rng)
{
    std::vector<int64_t> out(n);
    for (auto& v : out) {
        v = static_cast<int64_t>(std::llround(rng.gaussian() * stddev));
    }
    return out;
}

RnsPoly
sampleUniformRns(std::shared_ptr<const RnsBasis> basis, size_t limbs,
                 Domain domain, Rng& rng)
{
    RnsPoly out(basis, limbs, domain);
    for (size_t i = 0; i < limbs; ++i) {
        const uint64_t q = basis->modulus(i);
        auto dst = out.limb(i);
        for (auto& v : dst) {
            v = rng.uniform(q);
        }
    }
    return out;
}

} // namespace heap::math
