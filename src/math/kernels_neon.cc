/**
 * @file
 * NEON variants of the flat math kernels (see kernels.h for the
 * reduction-discipline contract). Compiled only on aarch64, where
 * NEON is architecturally guaranteed — no extra compile flags needed.
 *
 * NEON also lacks a 64x64 vector multiply, so only the 2-wide
 * add/sub/neg/lift kernels are vectorized here; the Shoup and NTT
 * paths reuse the scalar lazy-reduction bodies, which the aarch64
 * backend already schedules well (umulh is a single instruction).
 * Output is byte-identical to the scalar table by construction.
 */

#if defined(HEAP_HAVE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include "math/kernels.h"

namespace heap::math {
namespace {

void
addModNeon(uint64_t* dst, const uint64_t* a, const uint64_t* b,
           size_t n, uint64_t q)
{
    const uint64x2_t qv = vdupq_n_u64(q);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t s = vaddq_u64(vld1q_u64(a + i),
                                       vld1q_u64(b + i));
        const uint64x2_t ge = vcgeq_u64(s, qv);
        vst1q_u64(dst + i, vsubq_u64(s, vandq_u64(qv, ge)));
    }
    for (; i < n; ++i) {
        dst[i] = addMod(a[i], b[i], q);
    }
}

void
subModNeon(uint64_t* dst, const uint64_t* a, const uint64_t* b,
           size_t n, uint64_t q)
{
    const uint64x2_t qv = vdupq_n_u64(q);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t d = vaddq_u64(
            vsubq_u64(vld1q_u64(a + i), vld1q_u64(b + i)), qv);
        const uint64x2_t ge = vcgeq_u64(d, qv);
        vst1q_u64(dst + i, vsubq_u64(d, vandq_u64(qv, ge)));
    }
    for (; i < n; ++i) {
        dst[i] = subMod(a[i], b[i], q);
    }
}

void
negModNeon(uint64_t* dst, const uint64_t* a, size_t n, uint64_t q)
{
    const uint64x2_t qv = vdupq_n_u64(q);
    const uint64x2_t zero = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t x = vld1q_u64(a + i);
        const uint64x2_t nz = vtstq_u64(x, x); // all-ones iff x != 0
        vst1q_u64(dst + i, vandq_u64(vsubq_u64(qv, x), nz));
        (void)zero;
    }
    for (; i < n; ++i) {
        dst[i] = negMod(a[i], q);
    }
}

void
liftSignedNeon(uint64_t* dst, const int64_t* a, size_t n, uint64_t q)
{
    const int64x2_t qv = vdupq_n_s64(static_cast<int64_t>(q));
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const int64x2_t v = vld1q_s64(a + i);
        // v < 0 ? v + q : v, branchlessly via the sign mask.
        const int64x2_t neg = vshrq_n_s64(v, 63);
        const int64x2_t r = vaddq_s64(
            v, vandq_s64(qv, neg));
        vst1q_s64(reinterpret_cast<int64_t*>(dst + i), r);
    }
    for (; i < n; ++i) {
        const int64_t v = a[i];
        dst[i] = static_cast<uint64_t>(v)
                 + (q & static_cast<uint64_t>(v >> 63));
    }
}

} // namespace

namespace detail {

void
installNeonKernels(KernelOps& ops)
{
    ops.addMod = &addModNeon;
    ops.subMod = &subModNeon;
    ops.negMod = &negModNeon;
    ops.liftSigned = &liftSignedNeon;
    // NTT / Shoup / Barrett kernels stay scalar: no 64-bit vector
    // multiply on NEON; scalar umulh already saturates the pipeline.
}

} // namespace detail
} // namespace heap::math

#endif // HEAP_HAVE_NEON && __aarch64__
