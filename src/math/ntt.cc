#include "math/ntt.h"

#include <bit>

#include "common/check.h"
#include "math/primes.h"

namespace heap::math {

NttTables::NttTables(size_t n, uint64_t q)
    : n_(n), q_(q), barrett_(q)
{
    HEAP_CHECK(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two");
    logN_ = 0;
    while ((static_cast<size_t>(1) << logN_) < n) {
        ++logN_;
    }

    const uint64_t psi = minimalPrimitiveRoot2N(q, n);
    const uint64_t omega = mulModNaive(psi, psi, q);
    const uint64_t psiInv = invMod(psi, q);
    const uint64_t omegaInv = invMod(omega, q);
    const uint64_t nInv = invMod(static_cast<uint64_t>(n), q);

    // Stage-flattened omega twiddles: for each stage length `len`
    // (a power of two in [1, n/2]), tw_[len + j] = omega^{j * n/(2 len)}.
    tw_.assign(n, 1);
    itw_.assign(n, 1);
    stageStep_.assign(logN_ + 1, 1);
    for (size_t len = 1; len <= n / 2; len <<= 1) {
        const uint64_t stride = static_cast<uint64_t>(n / (2 * len));
        uint64_t w = 1, iw = 1;
        const uint64_t wStep = powMod(omega, stride, q);
        const uint64_t iwStep = powMod(omegaInv, stride, q);
        stageStep_[std::bit_width(len) - 1] = wStep;
        for (size_t j = 0; j < len; ++j) {
            tw_[len + j] = w;
            itw_[len + j] = iw;
            w = mulModNaive(w, wStep, q);
            iw = mulModNaive(iw, iwStep, q);
        }
    }

    psiPow_.resize(n);
    ipsiPowScaled_.resize(n);
    uint64_t p = 1;
    uint64_t ip = nInv;
    for (size_t i = 0; i < n; ++i) {
        psiPow_[i] = p;
        ipsiPowScaled_[i] = ip;
        p = mulModNaive(p, psi, q);
        ip = mulModNaive(ip, psiInv, q);
    }

    auto shoupify = [&](const std::vector<uint64_t>& v) {
        std::vector<uint64_t> s(v.size());
        for (size_t i = 0; i < v.size(); ++i) {
            s[i] = shoupPrecompute(v[i], q);
        }
        return s;
    };
    twShoup_ = shoupify(tw_);
    itwShoup_ = shoupify(itw_);
    psiPowShoup_ = shoupify(psiPow_);
    ipsiPowScaledShoup_ = shoupify(ipsiPowScaled_);

    // 52-bit companions for the IFMA butterflies: only valid (and only
    // precomputed) when the modulus leaves the 2^52 operand headroom.
    if ((q >> kIfmaMaxModulusBits) == 0) {
        auto shoupify52 = [&](const std::vector<uint64_t>& v) {
            std::vector<uint64_t> s(v.size());
            for (size_t i = 0; i < v.size(); ++i) {
                s[i] = shoupPrecompute52(v[i], q);
            }
            return s;
        };
        tw52_ = shoupify52(tw_);
        itw52_ = shoupify52(itw_);
        psiPow52_ = shoupify52(psiPow_);
        ipsiPowScaled52_ = shoupify52(ipsiPowScaled_);
    }
}

NttTablesView
NttTables::view() const
{
    NttTablesView v;
    v.n = n_;
    v.q = q_;
    v.tw = tw_.data();
    v.twShoup = twShoup_.data();
    v.itw = itw_.data();
    v.itwShoup = itwShoup_.data();
    v.psi = psiPow_.data();
    v.psiShoup = psiPowShoup_.data();
    v.ipsiScaled = ipsiPowScaled_.data();
    v.ipsiScaledShoup = ipsiPowScaledShoup_.data();
    if (!tw52_.empty()) {
        v.tw52 = tw52_.data();
        v.itw52 = itw52_.data();
        v.psi52 = psiPow52_.data();
        v.ipsiScaled52 = ipsiPowScaled52_.data();
    }
    return v;
}

void
NttTables::forward(std::span<uint64_t> a) const
{
    HEAP_ASSERT(a.size() == n_, "NTT size mismatch");
    kernels().nttForward(a.data(), view());
}

void
NttTables::inverse(std::span<uint64_t> a) const
{
    HEAP_ASSERT(a.size() == n_, "NTT size mismatch");
    kernels().nttInverse(a.data(), view());
}

void
NttTables::forwardScalar(std::span<uint64_t> a) const
{
    HEAP_ASSERT(a.size() == n_, "NTT size mismatch");
    // Pre-multiply by psi^i (negacyclic twist).
    for (size_t i = 0; i < n_; ++i) {
        a[i] = mulModShoup(a[i], psiPow_[i], psiPowShoup_[i], q_);
    }
    // DIF pass: natural in, bit-reversed out.
    for (size_t len = n_ / 2; len >= 1; len >>= 1) {
        for (size_t start = 0; start < n_; start += 2 * len) {
            for (size_t j = 0; j < len; ++j) {
                const uint64_t w = tw_[len + j];
                const uint64_t ws = twShoup_[len + j];
                const uint64_t u = a[start + j];
                const uint64_t v = a[start + j + len];
                a[start + j] = addMod(u, v, q_);
                a[start + j + len] =
                    mulModShoup(subMod(u, v, q_), w, ws, q_);
            }
        }
    }
}

void
NttTables::forwardOnTheFly(std::span<uint64_t> a) const
{
    HEAP_ASSERT(a.size() == n_, "NTT size mismatch");
    for (size_t i = 0; i < n_; ++i) {
        a[i] = mulModShoup(a[i], psiPow_[i], psiPowShoup_[i], q_);
    }
    for (size_t len = n_ / 2; len >= 1; len >>= 1) {
        // Generate this stage's twiddles by repeated multiplication
        // with the stage seed (only log2(n) seeds are stored).
        const uint64_t step = stageStep_[std::bit_width(len) - 1];
        for (size_t start = 0; start < n_; start += 2 * len) {
            uint64_t w = 1;
            for (size_t j = 0; j < len; ++j) {
                const uint64_t u = a[start + j];
                const uint64_t v = a[start + j + len];
                a[start + j] = addMod(u, v, q_);
                a[start + j + len] =
                    barrett_.mulMod(subMod(u, v, q_), w);
                w = barrett_.mulMod(w, step);
            }
        }
    }
}

void
NttTables::inverseScalar(std::span<uint64_t> a) const
{
    HEAP_ASSERT(a.size() == n_, "NTT size mismatch");
    // DIT pass: bit-reversed in, natural out, using omega^{-1}.
    for (size_t len = 1; len <= n_ / 2; len <<= 1) {
        for (size_t start = 0; start < n_; start += 2 * len) {
            for (size_t j = 0; j < len; ++j) {
                const uint64_t w = itw_[len + j];
                const uint64_t ws = itwShoup_[len + j];
                const uint64_t u = a[start + j];
                const uint64_t v =
                    mulModShoup(a[start + j + len], w, ws, q_);
                a[start + j] = addMod(u, v, q_);
                a[start + j + len] = subMod(u, v, q_);
            }
        }
    }
    // Post-multiply by psi^{-i} * n^{-1} (untwist + scale).
    for (size_t i = 0; i < n_; ++i) {
        a[i] = mulModShoup(a[i], ipsiPowScaled_[i], ipsiPowScaledShoup_[i],
                           q_);
    }
}

std::vector<uint64_t>
negacyclicConvolveSchoolbook(std::span<const uint64_t> a,
                             std::span<const uint64_t> b, uint64_t q)
{
    const size_t n = a.size();
    HEAP_CHECK(b.size() == n, "size mismatch");
    std::vector<uint64_t> out(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0) {
            continue;
        }
        for (size_t j = 0; j < n; ++j) {
            const uint64_t prod = mulModNaive(a[i], b[j], q);
            const size_t k = i + j;
            if (k < n) {
                out[k] = addMod(out[k], prod, q);
            } else {
                out[k - n] = subMod(out[k - n], prod, q);
            }
        }
    }
    return out;
}

} // namespace heap::math
