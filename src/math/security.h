/**
 * @file
 * LWE/RLWE security estimation from the HomomorphicEncryption.org
 * standard tables (ternary secret, classical attacks): the maximum
 * ciphertext-modulus width that keeps a given ring dimension at a
 * target security level, and an interpolated security estimate for
 * arbitrary (N, log Q) points.
 *
 * The paper selects N = 2^13 with log Q = 216 for 128-bit security
 * (Section III-C); estimateSecurityBits() lets tests and users check
 * parameter sets against the standard's conservative curve — and
 * flags that the bootstrapping basis Qp (log Qp = 252) dips slightly
 * below 128 bits under the same accounting (see EXPERIMENTS.md).
 */

#ifndef HEAP_MATH_SECURITY_H
#define HEAP_MATH_SECURITY_H

#include <cstddef>

namespace heap::math {

/**
 * Maximum log2(Q) for the target security level at ring dimension n
 * (HE-standard table, ternary secret, classical). Supported levels:
 * 128, 192, 256. Returns 0 when n is below the table (< 1024).
 */
size_t maxLogQForSecurity(size_t n, int securityBits);

/**
 * Estimated classical security (bits) of an RLWE instance with ring
 * dimension n and ciphertext modulus of logQ bits, by interpolation
 * on the standard tables. Saturated to [0, 300].
 */
double estimateSecurityBits(size_t n, double logQ);

/** True when (n, logQ) meets the target level per the tables. */
inline bool
meetsSecurity(size_t n, double logQ, int securityBits)
{
    return estimateSecurityBits(n, logQ)
           >= static_cast<double>(securityBits);
}

} // namespace heap::math

#endif // HEAP_MATH_SECURITY_H
