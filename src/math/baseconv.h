/**
 * @file
 * RNS base conversion — the "basis conversion operation during ModUp
 * and ModDown in the CKKS KeySwitch" whose datapath the paper shares
 * with the TFHE ExternalProduct unit (Sections IV-A, IV-E).
 *
 * Given the residues of x with respect to a source prime basis
 * P = prod(p_i), computes residues with respect to a disjoint target
 * basis. Two variants:
 *
 *  - fast (approximate) conversion: x~ = sum_i [x * (P/p_i)^{-1}]_{p_i}
 *    * (P/p_i) mod t, which equals x + alpha*P for a small integer
 *    alpha in [0, k) — the classic FBC of the RNS CKKS literature;
 *  - exact conversion: the same sum with alpha estimated from the
 *    floating-point sum of y_i / p_i and subtracted.
 */

#ifndef HEAP_MATH_BASECONV_H
#define HEAP_MATH_BASECONV_H

#include <cstdint>
#include <span>
#include <vector>

#include "math/modarith.h"

namespace heap::math {

class BaseConverter {
  public:
    /**
     * Precomputes conversion constants from `src` to `dst`.
     * @pre bases are disjoint sets of primes.
     */
    BaseConverter(std::vector<uint64_t> src, std::vector<uint64_t> dst);

    const std::vector<uint64_t>& srcModuli() const { return src_; }
    const std::vector<uint64_t>& dstModuli() const { return dst_; }

    /**
     * Converts one coefficient: srcResidues[i] = [x]_{p_i}.
     * @param exact subtract the alpha*P overshoot (costs one
     *        floating-point pass)
     * @param dstResidues out: [x + alpha*P]_{t_j} (alpha = 0 if exact)
     */
    void convertCoeff(std::span<const uint64_t> srcResidues,
                      std::span<uint64_t> dstResidues,
                      bool exact = false) const;

    /**
     * Converts whole coefficient vectors: src[i] is the limb of p_i
     * (length n each), dst[j] the output limb of t_j.
     */
    void convert(std::span<const std::span<const uint64_t>> src,
                 std::span<std::span<uint64_t>> dst,
                 bool exact = false) const;

  private:
    std::vector<uint64_t> src_, dst_;
    std::vector<BarrettReducer> dstRed_;
    // pHatInv_[i] = [(P/p_i)^{-1}]_{p_i} with Shoup companion.
    std::vector<uint64_t> pHatInv_, pHatInvShoup_;
    // pHatModDst_[i * dst + j] = [P/p_i]_{t_j}.
    std::vector<uint64_t> pHatModDst_;
    // pModDst_[j] = [P]_{t_j} (for the exact correction).
    std::vector<uint64_t> pModDst_;
    // 1 / p_i as double (for the alpha estimate).
    std::vector<double> pInv_;
};

} // namespace heap::math

#endif // HEAP_MATH_BASECONV_H
