#include "math/baseconv.h"

#include <cmath>

#include "common/check.h"

namespace heap::math {

BaseConverter::BaseConverter(std::vector<uint64_t> src,
                             std::vector<uint64_t> dst)
    : src_(std::move(src)), dst_(std::move(dst))
{
    HEAP_CHECK(!src_.empty() && !dst_.empty(), "empty basis");
    for (const uint64_t p : src_) {
        for (const uint64_t t : dst_) {
            HEAP_CHECK(p != t, "bases must be disjoint (prime " << p
                                                                << ")");
        }
    }
    const size_t k = src_.size();
    const size_t m = dst_.size();

    for (const uint64_t t : dst_) {
        dstRed_.emplace_back(t);
    }

    // pHatInv_[i] = [(P/p_i)^{-1}]_{p_i}.
    pHatInv_.resize(k);
    pHatInvShoup_.resize(k);
    for (size_t i = 0; i < k; ++i) {
        uint64_t prod = 1;
        for (size_t u = 0; u < k; ++u) {
            if (u != i) {
                prod = mulModNaive(prod, src_[u] % src_[i], src_[i]);
            }
        }
        pHatInv_[i] = invMod(prod, src_[i]);
        pHatInvShoup_[i] = shoupPrecompute(pHatInv_[i], src_[i]);
    }

    // pHatModDst_ and pModDst_.
    pHatModDst_.assign(k * m, 0);
    pModDst_.resize(m);
    for (size_t j = 0; j < m; ++j) {
        const uint64_t t = dst_[j];
        uint64_t pMod = 1;
        for (const uint64_t p : src_) {
            pMod = mulModNaive(pMod, p % t, t);
        }
        pModDst_[j] = pMod;
        for (size_t i = 0; i < k; ++i) {
            uint64_t hat = 1;
            for (size_t u = 0; u < k; ++u) {
                if (u != i) {
                    hat = mulModNaive(hat, src_[u] % t, t);
                }
            }
            pHatModDst_[i * m + j] = hat;
        }
    }

    pInv_.resize(k);
    for (size_t i = 0; i < k; ++i) {
        pInv_[i] = 1.0 / static_cast<double>(src_[i]);
    }
}

void
BaseConverter::convertCoeff(std::span<const uint64_t> srcResidues,
                            std::span<uint64_t> dstResidues,
                            bool exact) const
{
    const size_t k = src_.size();
    const size_t m = dst_.size();
    HEAP_CHECK(srcResidues.size() == k && dstResidues.size() == m,
               "residue count mismatch");

    // y_i = [x * (P/p_i)^{-1}]_{p_i}; alpha ~ round(sum y_i / p_i).
    double alphaEst = 0;
    uint64_t y[64];
    HEAP_CHECK(k <= 64, "source basis too large");
    for (size_t i = 0; i < k; ++i) {
        y[i] = mulModShoup(srcResidues[i] % src_[i], pHatInv_[i],
                           pHatInvShoup_[i], src_[i]);
        alphaEst += static_cast<double>(y[i]) * pInv_[i];
    }
    const auto alpha =
        exact ? static_cast<uint64_t>(std::llround(alphaEst)) : 0;

    for (size_t j = 0; j < m; ++j) {
        const uint64_t t = dst_[j];
        uint64_t acc = 0;
        for (size_t i = 0; i < k; ++i) {
            acc = addMod(acc,
                         dstRed_[j].mulMod(y[i], pHatModDst_[i * m + j]),
                         t);
        }
        if (exact && alpha != 0) {
            acc = subMod(acc,
                         dstRed_[j].mulMod(alpha % t, pModDst_[j]), t);
        }
        dstResidues[j] = acc;
    }
}

void
BaseConverter::convert(std::span<const std::span<const uint64_t>> src,
                       std::span<std::span<uint64_t>> dst,
                       bool exact) const
{
    HEAP_CHECK(src.size() == src_.size() && dst.size() == dst_.size(),
               "limb count mismatch");
    const size_t n = src[0].size();
    std::vector<uint64_t> in(src_.size()), out(dst_.size());
    for (size_t c = 0; c < n; ++c) {
        for (size_t i = 0; i < src_.size(); ++i) {
            in[i] = src[i][c];
        }
        convertCoeff(in, out, exact);
        for (size_t j = 0; j < dst_.size(); ++j) {
            dst[j][c] = out[j];
        }
    }
}

} // namespace heap::math
