#include "math/poly.h"

#include "common/check.h"
#include "math/kernels.h"
#include "math/modarith.h"

namespace heap::math {

void
polyAdd(std::span<const uint64_t> a, std::span<const uint64_t> b,
        std::span<uint64_t> out, uint64_t q)
{
    HEAP_ASSERT(a.size() == b.size() && a.size() == out.size(),
                "polyAdd size mismatch");
    kernels().addMod(out.data(), a.data(), b.data(), a.size(), q);
}

void
polySub(std::span<const uint64_t> a, std::span<const uint64_t> b,
        std::span<uint64_t> out, uint64_t q)
{
    HEAP_ASSERT(a.size() == b.size() && a.size() == out.size(),
                "polySub size mismatch");
    kernels().subMod(out.data(), a.data(), b.data(), a.size(), q);
}

void
polyNeg(std::span<const uint64_t> a, std::span<uint64_t> out, uint64_t q)
{
    HEAP_ASSERT(a.size() == out.size(), "polyNeg size mismatch");
    kernels().negMod(out.data(), a.data(), a.size(), q);
}

void
polyMulPointwise(std::span<const uint64_t> a, std::span<const uint64_t> b,
                 std::span<uint64_t> out, uint64_t q)
{
    HEAP_ASSERT(a.size() == b.size() && a.size() == out.size(),
                "polyMulPointwise size mismatch");
    const BarrettReducer red(q);
    kernels().mulMod(out.data(), a.data(), b.data(), a.size(), red);
}

void
polyMulScalar(std::span<const uint64_t> a, uint64_t c,
              std::span<uint64_t> out, uint64_t q)
{
    HEAP_ASSERT(a.size() == out.size(), "polyMulScalar size mismatch");
    c %= q;
    kernels().mulScalarShoup(out.data(), a.data(), c,
                             shoupPrecompute(c, q), a.size(), q);
}

void
polyMulScalarAccum(std::span<const uint64_t> a, uint64_t c,
                   std::span<uint64_t> out, uint64_t q)
{
    HEAP_ASSERT(a.size() == out.size(), "polyMulScalarAccum size mismatch");
    c %= q;
    kernels().mulScalarShoupAccum(out.data(), a.data(), c,
                                  shoupPrecompute(c, q), a.size(), q);
}

void
polyMonomialMul(std::span<const uint64_t> a, uint64_t k,
                std::span<uint64_t> out, uint64_t q)
{
    const size_t n = a.size();
    HEAP_ASSERT(out.size() == n, "polyMonomialMul size mismatch");
    HEAP_ASSERT(a.data() != out.data(), "polyMonomialMul must not alias");
    k %= 2 * n;
    // a_i * X^k contributes to coefficient (i + k) mod 2N with a sign
    // flip whenever the destination wraps past X^N = -1.
    for (size_t i = 0; i < n; ++i) {
        const size_t dst = (i + k) % (2 * n);
        if (dst < n) {
            out[dst] = a[i];
        } else {
            out[dst - n] = negMod(a[i], q);
        }
    }
}

void
polyAutomorphism(std::span<const uint64_t> a, uint64_t t,
                 std::span<uint64_t> out, uint64_t q)
{
    const size_t n = a.size();
    HEAP_ASSERT(out.size() == n, "polyAutomorphism size mismatch");
    HEAP_ASSERT(a.data() != out.data(), "polyAutomorphism must not alias");
    HEAP_CHECK((t & 1) == 1, "automorphism exponent must be odd");
    const uint64_t m = 2 * static_cast<uint64_t>(n);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t dst = (static_cast<uint64_t>(i) * (t % m)) % m;
        if (dst < n) {
            out[dst] = a[i];
        } else {
            out[dst - n] = negMod(a[i], q);
        }
    }
}

} // namespace heap::math
