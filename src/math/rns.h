/**
 * @file
 * Residue number system (RNS) polynomials.
 *
 * A ciphertext polynomial with a large modulus Q = prod(q_i) is stored
 * as one machine-word "limb" per prime q_i (Section II-A of the paper).
 * RnsPoly tracks the active limb count (the CKKS level) and whether the
 * limbs are in coefficient or evaluation (NTT) representation.
 */

#ifndef HEAP_MATH_RNS_H
#define HEAP_MATH_RNS_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "math/modarith.h"
#include "math/ntt.h"

namespace heap::math {

class BaseConverter;

/**
 * Cached per-basis gadget power table: pow[i * digits + j] =
 * (2^baseBits)^j mod q_i, with Shoup companions. Shared by gadget
 * encryption and decomposition (rlwe/gadget.cc).
 */
struct GadgetPowerTable {
    int baseBits = 0;
    int digits = 0;
    std::vector<uint64_t> pow;
    std::vector<uint64_t> powShoup;
};

/**
 * A fixed chain of NTT-friendly prime moduli for ring dimension N,
 * with shared NTT tables and CRT constants.
 */
class RnsBasis {
  public:
    /**
     * Builds a basis over Z[X]/(X^n + 1) for the given prime chain.
     * @pre every modulus is prime, = 1 (mod 2n), and distinct.
     */
    RnsBasis(size_t n, std::vector<uint64_t> moduli);

    // Out-of-line: the cache holds unique_ptrs to the forward-declared
    // BaseConverter.
    ~RnsBasis();

    size_t n() const { return n_; }
    size_t size() const { return moduli_.size(); }
    uint64_t modulus(size_t i) const { return moduli_[i]; }
    const std::vector<uint64_t>& moduli() const { return moduli_; }
    const NttTables& ntt(size_t i) const { return *ntt_[i]; }
    const BarrettReducer& reducer(size_t i) const { return reducers_[i]; }

    /** Returns [q_j^{-1}]_{q_i} (cached). @pre i != j. */
    uint64_t invModulus(size_t j, size_t i) const;

    /** Shoup companion of invModulus(j, i) (cached). @pre i != j. */
    uint64_t invModulusShoup(size_t j, size_t i) const;

    /** log2(prod of the first `limbs` moduli). */
    double logQ(size_t limbs) const;

    /**
     * Cached exact base converter from the contiguous sub-chain
     * [lo, hi) to its complement within the full chain — the hybrid
     * key-switch ModUp shape. Built on first use, thread-safe.
     */
    const BaseConverter& baseConverterFor(size_t lo, size_t hi) const;

    /**
     * Cached gadget base-power table for a (baseBits, digits)
     * configuration. Built on first use, thread-safe.
     */
    const GadgetPowerTable& gadgetPowersFor(int baseBits,
                                            int digits) const;

  private:
    size_t n_;
    std::vector<uint64_t> moduli_;
    std::vector<std::unique_ptr<NttTables>> ntt_;
    std::vector<BarrettReducer> reducers_;
    // invQ_[j * L + i] = q_j^{-1} mod q_i (with Shoup companions).
    std::vector<uint64_t> invQ_, invQShoup_;
    // Lazily-built per-context tables (see baseConverterFor /
    // gadgetPowersFor). Guarded by cacheMutex_; entries are stable
    // once inserted, so returned references never dangle.
    mutable std::mutex cacheMutex_;
    mutable std::map<std::pair<size_t, size_t>,
                     std::unique_ptr<BaseConverter>>
        baseConvCache_;
    mutable std::map<std::pair<int, int>,
                     std::unique_ptr<GadgetPowerTable>>
        gadgetPowerCache_;
};

/** Representation domain of RnsPoly limbs. */
enum class Domain { Coeff, Eval };

/**
 * An element of R_{Q_l} = Z_{Q_l}[X]/(X^N+1) in RNS form with
 * l = limbCount() active limbs.
 *
 * Storage is limb-major and contiguous: one 64-byte-aligned
 * allocation of limbCount() * n words, limb i occupying words
 * [i*n, (i+1)*n). This is the software analogue of the paper's
 * per-limb lane layout (Section II-A): kernels stream each limb as
 * one flat array, and whole-poly copies/serialization are single
 * memcpy-sized passes.
 */
class RnsPoly {
  public:
    RnsPoly() = default;

    /** Creates the zero polynomial with `limbs` active limbs. */
    RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t limbs,
            Domain domain = Domain::Coeff);

    // Copies trim to the active limbs (dropLimbs only shrinks the
    // active count, not the allocation).
    RnsPoly(const RnsPoly& other);
    RnsPoly& operator=(const RnsPoly& other);
    RnsPoly(RnsPoly&&) noexcept = default;
    RnsPoly& operator=(RnsPoly&&) noexcept = default;

    const RnsBasis& basis() const { return *basis_; }
    std::shared_ptr<const RnsBasis> basisPtr() const { return basis_; }
    size_t n() const { return n_; }
    size_t limbCount() const { return limbs_; }
    Domain domain() const { return domain_; }
    bool empty() const { return basis_ == nullptr; }

    std::span<uint64_t> limb(size_t i)
    {
        return {data_.data() + i * n_, n_};
    }
    std::span<const uint64_t> limb(size_t i) const
    {
        return {data_.data() + i * n_, n_};
    }

    /** The contiguous limb-major buffer of all active limbs. */
    std::span<uint64_t> flat() { return {data_.data(), limbs_ * n_}; }
    std::span<const uint64_t> flat() const
    {
        return {data_.data(), limbs_ * n_};
    }

    /** Overwrites all limbs with zero. */
    void setZero();

    /** Converts all limbs to the evaluation domain (no-op if already). */
    void toEval();

    /** Converts all limbs to the coefficient domain (no-op if already). */
    void toCoeff();

    /** Forces the domain tag without transforming (expert use). */
    void setDomain(Domain d) { domain_ = d; }

    // Element-wise ring operations (operands must share basis, limb
    // count, and domain).
    void addInPlace(const RnsPoly& other);
    void subInPlace(const RnsPoly& other);
    void negInPlace();

    /** Pointwise product; both operands must be in Eval domain. */
    void mulPointwiseInPlace(const RnsPoly& other);

    /** out += a * b (pointwise, Eval domain). */
    void mulPointwiseAccum(const RnsPoly& a, const RnsPoly& b);

    /** Multiplies every limb by the integer scalar c (c reduced per limb). */
    void mulScalarInPlace(uint64_t c);

    /** Multiplies limb i by cPerLimb[i]. */
    void mulScalarRnsInPlace(std::span<const uint64_t> cPerLimb);

    /** Applies X -> X^t. @pre Coeff domain, t odd. */
    RnsPoly automorphism(uint64_t t) const;

    /** Multiplies by X^k (negacyclic). @pre Coeff domain. */
    RnsPoly monomialMul(uint64_t k) const;

    /** Drops the last `count` limbs without scaling (CKKS ModReduce). */
    void dropLimbs(size_t count = 1);

    /**
     * RNS rescale: divides by the last active modulus and drops it
     * (CKKS Rescale, Section II-A). Works in either domain; returns in
     * the same domain it was given.
     */
    void rescaleLastLimb();

    /** Deep copy restricted to the first `limbs` limbs. */
    RnsPoly restrictedTo(size_t limbs) const;

  private:
    std::shared_ptr<const RnsBasis> basis_;
    AlignedU64 data_; ///< limb-major: limb i at [i*n_, (i+1)*n_)
    size_t n_ = 0;
    size_t limbs_ = 0; ///< active limbs (<= data_.size() / n_)
    Domain domain_ = Domain::Coeff;
};

/** Embeds small signed coefficients into all `limbs` limbs of a basis. */
RnsPoly rnsFromSigned(std::shared_ptr<const RnsBasis> basis, size_t limbs,
                      std::span<const int64_t> coeffs);

/**
 * CRT-recomposes residues (one per modulus) into the centered value in
 * (-Q/2, Q/2], returned as long double via Garner mixed-radix digits.
 * Accurate when the centered magnitude is far below Q.
 */
long double crtToCenteredDouble(std::span<const uint64_t> residues,
                                std::span<const uint64_t> moduli);

/**
 * Exact centered CRT recomposition; requires |centered value| < 2^62.
 */
int64_t crtToCenteredInt64(std::span<const uint64_t> residues,
                           std::span<const uint64_t> moduli);

} // namespace heap::math

#endif // HEAP_MATH_RNS_H
