/**
 * @file
 * Single-limb polynomial operations over Z_q[X]/(X^N + 1).
 *
 * Polynomials are plain coefficient vectors (length N, entries in
 * [0, q)); the functions here are the building blocks shared by the RNS
 * layer, the TFHE blind-rotation unit (negacyclic monomial rotations,
 * Section IV-A "Permute Unit") and the CKKS automorphism (Rotate).
 */

#ifndef HEAP_MATH_POLY_H
#define HEAP_MATH_POLY_H

#include <cstdint>
#include <span>
#include <vector>

namespace heap::math {

/** out[i] = (a[i] + b[i]) mod q. */
void polyAdd(std::span<const uint64_t> a, std::span<const uint64_t> b,
             std::span<uint64_t> out, uint64_t q);

/** out[i] = (a[i] - b[i]) mod q. */
void polySub(std::span<const uint64_t> a, std::span<const uint64_t> b,
             std::span<uint64_t> out, uint64_t q);

/** out[i] = (-a[i]) mod q. */
void polyNeg(std::span<const uint64_t> a, std::span<uint64_t> out,
             uint64_t q);

/** out[i] = (a[i] * b[i]) mod q (evaluation-domain product). */
void polyMulPointwise(std::span<const uint64_t> a,
                      std::span<const uint64_t> b, std::span<uint64_t> out,
                      uint64_t q);

/** out[i] = (a[i] * c) mod q. */
void polyMulScalar(std::span<const uint64_t> a, uint64_t c,
                   std::span<uint64_t> out, uint64_t q);

/** out[i] += a[i] * c (mod q). */
void polyMulScalarAccum(std::span<const uint64_t> a, uint64_t c,
                        std::span<uint64_t> out, uint64_t q);

/**
 * Negacyclic monomial multiplication: out = a * X^k mod (X^N + 1).
 * This is the TFHE rotation unit. k is taken mod 2N; X^N = -1.
 */
void polyMonomialMul(std::span<const uint64_t> a, uint64_t k,
                     std::span<uint64_t> out, uint64_t q);

/**
 * Galois automorphism: out(X) = a(X^t) mod (X^N + 1).
 * Coefficient i moves to position (i*t mod 2N), negated when the
 * destination index lands in [N, 2N). @pre t odd.
 */
void polyAutomorphism(std::span<const uint64_t> a, uint64_t t,
                      std::span<uint64_t> out, uint64_t q);

} // namespace heap::math

#endif // HEAP_MATH_POLY_H
