/**
 * @file
 * Lattice noise and secret samplers (uniform, discrete Gaussian,
 * ternary). Sparse/ternary-with-fixed-Hamming-weight secrets are
 * supported for the scheme-switching LUT-domain bound, but the default
 * is uniform ternary, matching the paper's "no sparse keys" stance.
 */

#ifndef HEAP_MATH_SAMPLING_H
#define HEAP_MATH_SAMPLING_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "math/rns.h"

namespace heap::math {

/** Default error standard deviation used throughout the library. */
inline constexpr double kErrorStdDev = 3.2;

/** Samples n signed ternary values in {-1, 0, 1}. */
std::vector<int64_t> sampleTernary(size_t n, Rng& rng);

/**
 * Samples n ternary values with exactly `hamming` nonzero entries
 * (signs uniform). @pre hamming <= n.
 */
std::vector<int64_t> sampleTernaryHamming(size_t n, size_t hamming,
                                          Rng& rng);

/** Samples n rounded-Gaussian values with the given stddev. */
std::vector<int64_t> sampleGaussian(size_t n, double stddev, Rng& rng);

/** Samples a uniform RnsPoly with `limbs` limbs in the given domain. */
RnsPoly sampleUniformRns(std::shared_ptr<const RnsBasis> basis,
                         size_t limbs, Domain domain, Rng& rng);

} // namespace heap::math

#endif // HEAP_MATH_SAMPLING_H
