#include "math/kernels.h"

namespace heap::math {

// ---------------------------------------------------------------------
// Portable scalar kernels. The NTT kernels use lazy reduction: the
// forward (Gentleman-Sande) pass keeps values < 2q, the inverse
// (Cooley-Tukey) pass keeps values < 4q (Harvey's bound), and both
// normalize to [0, q) exactly once in the final twist pass. With
// q < 2^62 (modarith.h) no intermediate can overflow 64 bits.
// ---------------------------------------------------------------------

void
detail::nttForwardScalarLazy(uint64_t* a, const NttTablesView& t)
{
    const size_t n = t.n;
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    // Negacyclic twist: a[i] *= psi^i, lazily (< 2q).
    for (size_t i = 0; i < n; ++i) {
        a[i] = mulModShoupLazy(a[i], t.psi[i], t.psiShoup[i], q);
    }
    // DIF stages; invariant: stage inputs < 2q.
    for (size_t len = n / 2; len >= 1; len >>= 1) {
        const uint64_t* w = t.tw + len;
        const uint64_t* ws = t.twShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; ++j) {
                const uint64_t u = x[j];
                const uint64_t v = y[j];
                uint64_t sum = u + v; // < 4q
                if (sum >= twoQ) {
                    sum -= twoQ;
                }
                x[j] = sum; // < 2q
                // u - v + 2q in (0, 4q); lazy Shoup brings it < 2q.
                y[j] = mulModShoupLazy(u - v + twoQ, w[j], ws[j], q);
            }
        }
    }
    // Single final normalization to [0, q).
    for (size_t i = 0; i < n; ++i) {
        const uint64_t x = a[i];
        a[i] = x >= q ? x - q : x;
    }
}

void
detail::nttInverseScalarLazy(uint64_t* a, const NttTablesView& t)
{
    const size_t n = t.n;
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    // DIT stages; invariant (Harvey): stage inputs < 4q.
    for (size_t len = 1; len <= n / 2; len <<= 1) {
        const uint64_t* w = t.itw + len;
        const uint64_t* ws = t.itwShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; ++j) {
                uint64_t u = x[j];
                if (u >= twoQ) {
                    u -= twoQ; // < 2q
                }
                const uint64_t v =
                    mulModShoupLazy(y[j], w[j], ws[j], q); // < 2q
                x[j] = u + v;            // < 4q
                y[j] = u - v + twoQ;     // < 4q
            }
        }
    }
    // Untwist + scale by n^{-1}; lazy product < 2q, then normalize.
    for (size_t i = 0; i < n; ++i) {
        const uint64_t x = mulModShoupLazy(a[i], t.ipsiScaled[i],
                                           t.ipsiScaledShoup[i], q);
        a[i] = x >= q ? x - q : x;
    }
}

namespace {

void
mulModScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             size_t n, const BarrettReducer& red)
{
    for (size_t i = 0; i < n; ++i) {
        dst[i] = red.mulMod(a[i], b[i]);
    }
}

void
mulModAccumScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                  size_t n, const BarrettReducer& red)
{
    const uint64_t q = red.modulus();
    for (size_t i = 0; i < n; ++i) {
        dst[i] = addMod(dst[i], red.mulMod(a[i], b[i]), q);
    }
}

void
addModScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i) {
        dst[i] = addMod(a[i], b[i], q);
    }
}

void
subModScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i) {
        dst[i] = subMod(a[i], b[i], q);
    }
}

void
negModScalar(uint64_t* dst, const uint64_t* a, size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i) {
        dst[i] = negMod(a[i], q);
    }
}

void
mulScalarShoupScalar(uint64_t* dst, const uint64_t* a, uint64_t w,
                     uint64_t ws, size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i) {
        dst[i] = mulModShoup(a[i], w, ws, q);
    }
}

void
mulScalarShoupAccumScalar(uint64_t* dst, const uint64_t* a, uint64_t w,
                          uint64_t ws, size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i) {
        dst[i] = addMod(dst[i], mulModShoup(a[i], w, ws, q), q);
    }
}

void
liftSignedScalar(uint64_t* dst, const int64_t* a, size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i) {
        const int64_t v = a[i];
        // Branchless fromCentered for |v| < q: add q iff v < 0.
        dst[i] = static_cast<uint64_t>(v)
                 + (q & static_cast<uint64_t>(v >> 63));
    }
}

KernelOps
makeScalarOps()
{
    KernelOps ops;
    ops.level = SimdLevel::Scalar;
    ops.nttForward = &detail::nttForwardScalarLazy;
    ops.nttInverse = &detail::nttInverseScalarLazy;
    ops.mulMod = &mulModScalar;
    ops.mulModAccum = &mulModAccumScalar;
    ops.addMod = &addModScalar;
    ops.subMod = &subModScalar;
    ops.negMod = &negModScalar;
    ops.mulScalarShoup = &mulScalarShoupScalar;
    ops.mulScalarShoupAccum = &mulScalarShoupAccumScalar;
    ops.liftSigned = &liftSignedScalar;
    return ops;
}

KernelOps
makeOpsForLevel(SimdLevel level)
{
    KernelOps ops = makeScalarOps();
    switch (level) {
    case SimdLevel::Avx512:
#if defined(HEAP_HAVE_AVX512) && (defined(__x86_64__) || defined(__i386__))
        if (__builtin_cpu_supports("avx512f")
            && __builtin_cpu_supports("avx512dq")
            && __builtin_cpu_supports("avx512vl")) {
            detail::installAvx512Kernels(ops);
            ops.level = SimdLevel::Avx512;
            break;
        }
#endif
        // Host can't run AVX-512: degrade to the AVX2 table.
        [[fallthrough]];
    case SimdLevel::Avx2:
#if defined(HEAP_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
        if (__builtin_cpu_supports("avx2")) {
            detail::installAvx2Kernels(ops);
            ops.level = SimdLevel::Avx2;
        }
#endif
        break;
    case SimdLevel::Neon:
#if defined(HEAP_HAVE_NEON) && defined(__aarch64__)
        detail::installNeonKernels(ops);
        ops.level = SimdLevel::Neon;
#endif
        break;
    case SimdLevel::Scalar:
        break;
    }
    return ops;
}

} // namespace

const KernelOps&
scalarKernels()
{
    static const KernelOps ops = makeScalarOps();
    return ops;
}

const KernelOps&
kernelsForLevel(SimdLevel level)
{
    static const KernelOps avx2 = makeOpsForLevel(SimdLevel::Avx2);
    static const KernelOps avx512 = makeOpsForLevel(SimdLevel::Avx512);
    static const KernelOps neon = makeOpsForLevel(SimdLevel::Neon);
    switch (level) {
    case SimdLevel::Avx2:
        return avx2;
    case SimdLevel::Avx512:
        return avx512;
    case SimdLevel::Neon:
        return neon;
    case SimdLevel::Scalar:
        break;
    }
    return scalarKernels();
}

const KernelOps&
kernels()
{
    static const KernelOps& ops = kernelsForLevel(activeSimdLevel());
    return ops;
}

} // namespace heap::math
