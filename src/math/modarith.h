/**
 * @file
 * Scalar modular arithmetic for word-sized RNS limbs.
 *
 * The paper (Section IV-A) builds all FHE compute out of modular adders,
 * subtractors and multipliers, using Barrett reduction fused with the
 * integer multiply. This header provides the software equivalents:
 *
 *  - addMod/subMod via the conditional-subtract idiom (the paper's
 *    "conditional operator" reduction for add/sub),
 *  - BarrettReducer: 128-bit Barrett reduction with a precomputed
 *    floor(2^128 / q) ratio (the paper's fused multiply+Barrett unit),
 *  - Shoup multiplication for multiplications by precomputed constants
 *    (NTT twiddle factors),
 *  - powMod/invMod helpers.
 *
 * All moduli are required to be < 2^62 so that lazy sums never overflow.
 */

#ifndef HEAP_MATH_MODARITH_H
#define HEAP_MATH_MODARITH_H

#include <cstdint>

#include "common/check.h"

namespace heap::math {

using uint128 = unsigned __int128;

/** Maximum supported modulus bit width. */
inline constexpr int kMaxModulusBits = 62;

/** Returns (a + b) mod q. @pre a, b < q < 2^63. */
inline uint64_t
addMod(uint64_t a, uint64_t b, uint64_t q)
{
    const uint64_t s = a + b;
    return s >= q ? s - q : s;
}

/** Returns (a - b) mod q. @pre a, b < q. */
inline uint64_t
subMod(uint64_t a, uint64_t b, uint64_t q)
{
    return a >= b ? a - b : a + q - b;
}

/** Returns (-a) mod q. @pre a < q. */
inline uint64_t
negMod(uint64_t a, uint64_t q)
{
    return a == 0 ? 0 : q - a;
}

/** Returns the high 64 bits of a 64x64 multiply. */
inline uint64_t
mulHi64(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>((static_cast<uint128>(a) * b) >> 64);
}

/** Returns (a * b) mod q via 128-bit division (reference path). */
inline uint64_t
mulModNaive(uint64_t a, uint64_t b, uint64_t q)
{
    return static_cast<uint64_t>(static_cast<uint128>(a) * b % q);
}

/**
 * Barrett reducer for a fixed modulus q < 2^62.
 *
 * Precomputes ratio = floor(2^128 / q) as two 64-bit words; reduce()
 * then brings any 128-bit value into [0, q) with two multiplies and at
 * most one correction, mirroring the paper's DSP-friendly fused
 * multiplier + Barrett pipeline.
 */
class BarrettReducer {
  public:
    BarrettReducer() = default;

    /** Builds the reducer. @pre 2 <= q < 2^62. */
    explicit BarrettReducer(uint64_t q)
        : q_(q)
    {
        HEAP_CHECK(q >= 2 && (q >> kMaxModulusBits) == 0,
                   "modulus out of range: " << q);
        // floor(2^128 / q) = d1 * 2^64 + floor(r1 * 2^64 / q), where
        // 2^64 = d1 * q + r1.
        const uint128 b = static_cast<uint128>(1) << 64;
        const uint64_t d1 = static_cast<uint64_t>(b / q);
        const uint64_t r1 = static_cast<uint64_t>(b % q);
        ratioHi_ = d1;
        ratioLo_ = static_cast<uint64_t>((static_cast<uint128>(r1) << 64)
                                         / q);
    }

    /** The modulus. */
    uint64_t modulus() const { return q_; }

    /** Reduces a full 128-bit value into [0, q). */
    uint64_t
    reduce(uint128 x) const
    {
        const uint64_t xLo = static_cast<uint64_t>(x);
        const uint64_t xHi = static_cast<uint64_t>(x >> 64);
        // Estimate floor(x * ratio / 2^128).
        const uint64_t t1 = mulHi64(xLo, ratioLo_);
        const uint128 t2 = static_cast<uint128>(xLo) * ratioHi_;
        const uint128 t3 = static_cast<uint128>(xHi) * ratioLo_;
        const uint128 mid = t2 + t3 + t1;
        const uint64_t est = xHi * ratioHi_
                             + static_cast<uint64_t>(mid >> 64);
        uint64_t r = xLo - est * q_;
        // Barrett estimate may be off by at most 2 multiples of q.
        if (r >= q_) {
            r -= q_;
        }
        if (r >= q_) {
            r -= q_;
        }
        return r;
    }

    /** Returns (a * b) mod q. @pre a, b < 2^64 with a*b < q*2^64. */
    uint64_t
    mulMod(uint64_t a, uint64_t b) const
    {
        return reduce(static_cast<uint128>(a) * b);
    }

  private:
    uint64_t q_ = 0;
    uint64_t ratioHi_ = 0;
    uint64_t ratioLo_ = 0;
};

/** Precomputes the Shoup companion word floor(w * 2^64 / q). @pre w < q. */
inline uint64_t
shoupPrecompute(uint64_t w, uint64_t q)
{
    return static_cast<uint64_t>((static_cast<uint128>(w) << 64) / q);
}

/**
 * Modulus bound for the 52-bit (AVX-512 IFMA) Shoup path: Harvey's
 * lazy bound with beta = 2^52 needs q < beta/4, and every lazy NTT
 * intermediate (< 4q) must fit the 52-bit multiplier operands.
 */
inline constexpr int kIfmaMaxModulusBits = 50;

/**
 * Precomputes the 52-bit Shoup companion floor(w * 2^52 / q) used by
 * the IFMA kernels (52x52-bit fused multipliers). @pre w < q < 2^50.
 */
inline uint64_t
shoupPrecompute52(uint64_t w, uint64_t q)
{
    return static_cast<uint64_t>((static_cast<uint128>(w) << 52) / q);
}

/**
 * Multiplies a by the fixed constant w using its Shoup companion.
 * @pre w < q, wShoup = shoupPrecompute(w, q), a < 2q (lazy inputs OK).
 * @return a * w mod q, in [0, q).
 */
inline uint64_t
mulModShoup(uint64_t a, uint64_t w, uint64_t wShoup, uint64_t q)
{
    const uint64_t hi = mulHi64(a, wShoup);
    uint64_t r = a * w - hi * q;
    return r >= q ? r - q : r;
}

/**
 * Lazy Shoup multiplication (Harvey): returns a value congruent to
 * a * w mod q in [0, 2q) without the final conditional subtract.
 * @pre w < q < 2^62, wShoup = shoupPrecompute(w, q); a may be any
 * 64-bit value (lazily-reduced NTT intermediates included).
 */
inline uint64_t
mulModShoupLazy(uint64_t a, uint64_t w, uint64_t wShoup, uint64_t q)
{
    return a * w - mulHi64(a, wShoup) * q;
}

/** Returns base^exp mod q (binary exponentiation). */
inline uint64_t
powMod(uint64_t base, uint64_t exp, uint64_t q)
{
    uint64_t result = 1 % q;
    uint64_t b = base % q;
    while (exp > 0) {
        if (exp & 1) {
            result = mulModNaive(result, b, q);
        }
        b = mulModNaive(b, b, q);
        exp >>= 1;
    }
    return result;
}

/**
 * Returns a^{-1} mod q via the extended Euclidean algorithm.
 * @pre gcd(a, q) == 1.
 */
inline uint64_t
invMod(uint64_t a, uint64_t q)
{
    HEAP_CHECK(a % q != 0, "invMod of zero");
    int64_t t = 0, newT = 1;
    int64_t r = static_cast<int64_t>(q);
    int64_t newR = static_cast<int64_t>(a % q);
    while (newR != 0) {
        const int64_t quot = r / newR;
        const int64_t tmpT = t - quot * newT;
        t = newT;
        newT = tmpT;
        const int64_t tmpR = r - quot * newR;
        r = newR;
        newR = tmpR;
    }
    HEAP_CHECK(r == 1, "invMod: arguments not coprime");
    if (t < 0) {
        t += static_cast<int64_t>(q);
    }
    return static_cast<uint64_t>(t);
}

/**
 * Maps a residue in [0, q) to its centered representative in
 * [-q/2, q/2) as a signed 64-bit integer.
 */
inline int64_t
toCentered(uint64_t a, uint64_t q)
{
    return a >= (q + 1) / 2 ? static_cast<int64_t>(a) -
                                  static_cast<int64_t>(q)
                            : static_cast<int64_t>(a);
}

/** Maps a signed integer to its residue in [0, q). */
inline uint64_t
fromCentered(int64_t a, uint64_t q)
{
    int64_t r = a % static_cast<int64_t>(q);
    if (r < 0) {
        r += static_cast<int64_t>(q);
    }
    return static_cast<uint64_t>(r);
}

} // namespace heap::math

#endif // HEAP_MATH_MODARITH_H
