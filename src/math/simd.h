/**
 * @file
 * Runtime SIMD dispatch for the math kernels.
 *
 * The flat kernels in math/kernels.h come in up to three variants:
 * a portable scalar implementation, an AVX2 implementation (x86-64),
 * and a NEON implementation (aarch64). The variant is chosen exactly
 * once per process, mirroring how the paper fixes the datapath width
 * at synthesis time (Section IV-A): there is no per-call branching in
 * the hot loops, only a single function-pointer table selected at
 * startup.
 *
 * The environment variable HEAP_FORCE_SCALAR=1 forces the portable
 * scalar fallback regardless of hardware support — used by the `simd`
 * ctest label to validate the fallback path on SIMD-capable hosts.
 * All variants are byte-identical by construction and asserted so in
 * tests/simd_equivalence_test.cc.
 */

#ifndef HEAP_MATH_SIMD_H
#define HEAP_MATH_SIMD_H

namespace heap::math {

/** Instruction-set level a kernel variant is implemented against. */
enum class SimdLevel {
    Scalar, ///< portable lazy-reduction scalar kernels
    Avx2,   ///< x86-64 AVX2 (256-bit) kernels
    Avx512, ///< x86-64 AVX-512F/DQ/VL (512-bit, native 64-bit mullo)
    Neon,   ///< aarch64 NEON (128-bit) kernels
};

/** Human-readable name ("scalar", "avx2", "avx512", "neon"). */
const char* simdLevelName(SimdLevel level);

/**
 * The level selected for this process: the widest supported variant
 * compiled into the library, unless HEAP_FORCE_SCALAR=1 is set in the
 * environment. Computed once and cached.
 */
SimdLevel activeSimdLevel();

namespace detail {

/** Re-runs detection (re-reading the environment). Test-only. */
SimdLevel detectSimdLevel();

} // namespace detail

} // namespace heap::math

#endif // HEAP_MATH_SIMD_H
