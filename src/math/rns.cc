#include "math/rns.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/parallel.h"
#include "math/baseconv.h"
#include "math/kernels.h"
#include "math/poly.h"
#include "math/primes.h"
#include "math/scratch.h"

namespace heap::math {

namespace {

// Below this ring dimension a single NTT is cheaper than one task
// dispatch, so the limb loop stays serial.
constexpr size_t kParallelNttMinN = 1024;

} // namespace

RnsBasis::RnsBasis(size_t n, std::vector<uint64_t> moduli)
    : n_(n), moduli_(std::move(moduli))
{
    HEAP_CHECK(!moduli_.empty(), "empty modulus chain");
    for (size_t i = 0; i < moduli_.size(); ++i) {
        const uint64_t q = moduli_[i];
        HEAP_CHECK(isPrime(q), "modulus " << q << " is not prime");
        HEAP_CHECK((q - 1) % (2 * n) == 0,
                   "modulus " << q << " is not NTT-friendly for n=" << n);
        for (size_t j = 0; j < i; ++j) {
            HEAP_CHECK(moduli_[j] != q, "duplicate modulus " << q);
        }
        ntt_.push_back(std::make_unique<NttTables>(n, q));
        reducers_.emplace_back(q);
    }
    const size_t l = moduli_.size();
    invQ_.assign(l * l, 0);
    invQShoup_.assign(l * l, 0);
    for (size_t j = 0; j < l; ++j) {
        for (size_t i = 0; i < l; ++i) {
            if (i != j) {
                const uint64_t inv =
                    invMod(moduli_[j] % moduli_[i], moduli_[i]);
                invQ_[j * l + i] = inv;
                invQShoup_[j * l + i] =
                    shoupPrecompute(inv, moduli_[i]);
            }
        }
    }
}

RnsBasis::~RnsBasis() = default;

uint64_t
RnsBasis::invModulus(size_t j, size_t i) const
{
    HEAP_ASSERT(i != j, "invModulus(i, i) undefined");
    return invQ_[j * moduli_.size() + i];
}

uint64_t
RnsBasis::invModulusShoup(size_t j, size_t i) const
{
    HEAP_ASSERT(i != j, "invModulusShoup(i, i) undefined");
    return invQShoup_[j * moduli_.size() + i];
}

const BaseConverter&
RnsBasis::baseConverterFor(size_t lo, size_t hi) const
{
    HEAP_CHECK(lo < hi && hi <= moduli_.size(),
               "bad base-converter group [" << lo << ", " << hi << ")");
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto& slot = baseConvCache_[{lo, hi}];
    if (slot == nullptr) {
        std::vector<uint64_t> srcMods(moduli_.begin() + lo,
                                      moduli_.begin() + hi);
        std::vector<uint64_t> dstMods;
        for (size_t k = 0; k < moduli_.size(); ++k) {
            if (k < lo || k >= hi) {
                dstMods.push_back(moduli_[k]);
            }
        }
        slot = std::make_unique<BaseConverter>(std::move(srcMods),
                                               std::move(dstMods));
    }
    return *slot;
}

const GadgetPowerTable&
RnsBasis::gadgetPowersFor(int baseBits, int digits) const
{
    HEAP_CHECK(baseBits >= 1 && digits >= 1,
               "bad gadget configuration");
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto& slot = gadgetPowerCache_[{baseBits, digits}];
    if (slot == nullptr) {
        auto table = std::make_unique<GadgetPowerTable>();
        table->baseBits = baseBits;
        table->digits = digits;
        const size_t l = moduli_.size();
        table->pow.resize(l * static_cast<size_t>(digits));
        table->powShoup.resize(l * static_cast<size_t>(digits));
        for (size_t i = 0; i < l; ++i) {
            const uint64_t qi = moduli_[i];
            for (int j = 0; j < digits; ++j) {
                const uint64_t p =
                    powMod(1ULL << baseBits, static_cast<uint64_t>(j),
                           qi);
                table->pow[i * digits + j] = p;
                table->powShoup[i * digits + j] =
                    shoupPrecompute(p, qi);
            }
        }
        slot = std::move(table);
    }
    return *slot;
}

double
RnsBasis::logQ(size_t limbs) const
{
    HEAP_CHECK(limbs <= moduli_.size(), "limb count exceeds basis");
    double s = 0.0;
    for (size_t i = 0; i < limbs; ++i) {
        s += std::log2(static_cast<double>(moduli_[i]));
    }
    return s;
}

RnsPoly::RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t limbs,
                 Domain domain)
    : basis_(std::move(basis)), domain_(domain)
{
    HEAP_CHECK(limbs >= 1 && limbs <= basis_->size(),
               "invalid limb count " << limbs);
    n_ = basis_->n();
    limbs_ = limbs;
    data_ = AlignedU64(limbs * n_);
}

RnsPoly::RnsPoly(const RnsPoly& other)
    : basis_(other.basis_),
      n_(other.n_),
      limbs_(other.limbs_),
      domain_(other.domain_)
{
    // Copy only the active limbs: after dropLimbs the allocation may
    // be larger than limbs_ * n_, and copies right-size it.
    if (limbs_ * n_ > 0) {
        data_ = AlignedU64(limbs_ * n_);
        std::memcpy(data_.data(), other.data_.data(),
                    limbs_ * n_ * sizeof(uint64_t));
    }
}

RnsPoly&
RnsPoly::operator=(const RnsPoly& other)
{
    if (this != &other) {
        RnsPoly tmp(other);
        *this = std::move(tmp);
    }
    return *this;
}

void
RnsPoly::setZero()
{
    std::memset(data_.data(), 0, limbs_ * n_ * sizeof(uint64_t));
}

void
RnsPoly::toEval()
{
    if (domain_ == Domain::Eval) {
        return;
    }
    // Limbs transform independently (distinct tables, distinct data).
    if (limbs_ >= 2 && n_ >= kParallelNttMinN) {
        parallelFor(0, limbs_, 1,
                    [this](size_t i) { basis_->ntt(i).forward(limb(i)); });
    } else {
        for (size_t i = 0; i < limbs_; ++i) {
            basis_->ntt(i).forward(limb(i));
        }
    }
    domain_ = Domain::Eval;
}

void
RnsPoly::toCoeff()
{
    if (domain_ == Domain::Coeff) {
        return;
    }
    if (limbs_ >= 2 && n_ >= kParallelNttMinN) {
        parallelFor(0, limbs_, 1,
                    [this](size_t i) { basis_->ntt(i).inverse(limb(i)); });
    } else {
        for (size_t i = 0; i < limbs_; ++i) {
            basis_->ntt(i).inverse(limb(i));
        }
    }
    domain_ = Domain::Coeff;
}

namespace {

void
checkCompatible(const RnsPoly& a, const RnsPoly& b)
{
    HEAP_CHECK(&a.basis() == &b.basis(), "basis mismatch");
    HEAP_CHECK(a.limbCount() == b.limbCount(),
               "limb count mismatch: " << a.limbCount() << " vs "
                                       << b.limbCount());
    HEAP_CHECK(a.domain() == b.domain(), "domain mismatch");
}

} // namespace

void
RnsPoly::addInPlace(const RnsPoly& other)
{
    checkCompatible(*this, other);
    const KernelOps& ops = kernels();
    for (size_t i = 0; i < limbs_; ++i) {
        uint64_t* dst = data_.data() + i * n_;
        ops.addMod(dst, dst, other.limb(i).data(), n_,
                   basis_->modulus(i));
    }
}

void
RnsPoly::subInPlace(const RnsPoly& other)
{
    checkCompatible(*this, other);
    const KernelOps& ops = kernels();
    for (size_t i = 0; i < limbs_; ++i) {
        uint64_t* dst = data_.data() + i * n_;
        ops.subMod(dst, dst, other.limb(i).data(), n_,
                   basis_->modulus(i));
    }
}

void
RnsPoly::negInPlace()
{
    const KernelOps& ops = kernels();
    for (size_t i = 0; i < limbs_; ++i) {
        uint64_t* dst = data_.data() + i * n_;
        ops.negMod(dst, dst, n_, basis_->modulus(i));
    }
}

void
RnsPoly::mulPointwiseInPlace(const RnsPoly& other)
{
    checkCompatible(*this, other);
    HEAP_CHECK(domain_ == Domain::Eval,
               "pointwise multiply requires Eval domain");
    const KernelOps& ops = kernels();
    for (size_t i = 0; i < limbs_; ++i) {
        uint64_t* dst = data_.data() + i * n_;
        ops.mulMod(dst, dst, other.limb(i).data(), n_,
                   basis_->reducer(i));
    }
}

void
RnsPoly::mulPointwiseAccum(const RnsPoly& a, const RnsPoly& b)
{
    checkCompatible(a, b);
    checkCompatible(*this, a);
    HEAP_CHECK(domain_ == Domain::Eval, "accumulate requires Eval domain");
    const KernelOps& ops = kernels();
    for (size_t i = 0; i < limbs_; ++i) {
        uint64_t* dst = data_.data() + i * n_;
        ops.mulModAccum(dst, a.limb(i).data(), b.limb(i).data(), n_,
                        basis_->reducer(i));
    }
}

void
RnsPoly::mulScalarInPlace(uint64_t c)
{
    const KernelOps& ops = kernels();
    for (size_t i = 0; i < limbs_; ++i) {
        const uint64_t q = basis_->modulus(i);
        const uint64_t w = c % q;
        uint64_t* dst = data_.data() + i * n_;
        ops.mulScalarShoup(dst, dst, w, shoupPrecompute(w, q), n_, q);
    }
}

void
RnsPoly::mulScalarRnsInPlace(std::span<const uint64_t> cPerLimb)
{
    HEAP_CHECK(cPerLimb.size() >= limbs_, "scalar vector too short");
    const KernelOps& ops = kernels();
    for (size_t i = 0; i < limbs_; ++i) {
        const uint64_t q = basis_->modulus(i);
        const uint64_t w = cPerLimb[i] % q;
        uint64_t* dst = data_.data() + i * n_;
        ops.mulScalarShoup(dst, dst, w, shoupPrecompute(w, q), n_, q);
    }
}

RnsPoly
RnsPoly::automorphism(uint64_t t) const
{
    HEAP_CHECK(domain_ == Domain::Coeff,
               "automorphism requires Coeff domain");
    RnsPoly out(basis_, limbs_, Domain::Coeff);
    for (size_t i = 0; i < limbs_; ++i) {
        polyAutomorphism(limb(i), t, out.limb(i), basis_->modulus(i));
    }
    return out;
}

RnsPoly
RnsPoly::monomialMul(uint64_t k) const
{
    HEAP_CHECK(domain_ == Domain::Coeff,
               "monomialMul requires Coeff domain");
    RnsPoly out(basis_, limbs_, Domain::Coeff);
    for (size_t i = 0; i < limbs_; ++i) {
        polyMonomialMul(limb(i), k, out.limb(i), basis_->modulus(i));
    }
    return out;
}

void
RnsPoly::dropLimbs(size_t count)
{
    HEAP_CHECK(count < limbs_, "cannot drop all limbs");
    // O(1): the allocation keeps its size; copies right-size it.
    limbs_ -= count;
}

void
RnsPoly::rescaleLastLimb()
{
    HEAP_CHECK(limbs_ >= 2, "rescale needs at least two limbs");
    const size_t last = limbs_ - 1;
    const uint64_t qLast = basis_->modulus(last);
    const Domain orig = domain_;
    const KernelOps& ops = kernels();

    ScratchFrame scratch;
    // Bring the dropped limb into coefficient representation.
    auto lastCoeff = scratch.borrow(n_);
    std::memcpy(lastCoeff.data(), limb(last).data(),
                n_ * sizeof(uint64_t));
    if (orig == Domain::Eval) {
        basis_->ntt(last).inverse(lastCoeff);
    }

    auto corr = scratch.borrow(n_);
    for (size_t i = 0; i < last; ++i) {
        const uint64_t qi = basis_->modulus(i);
        // Centered lift of the last limb reduced mod q_i (rounding
        // rather than floor division).
        for (size_t j = 0; j < n_; ++j) {
            corr[j] = fromCentered(toCentered(lastCoeff[j], qLast), qi);
        }
        if (orig == Domain::Eval) {
            basis_->ntt(i).forward(corr);
        }
        uint64_t* dst = data_.data() + i * n_;
        ops.subMod(dst, dst, corr.data(), n_, qi);
        ops.mulScalarShoup(dst, dst, basis_->invModulus(last, i),
                           basis_->invModulusShoup(last, i), n_, qi);
    }
    limbs_ -= 1;
}

RnsPoly
RnsPoly::restrictedTo(size_t limbs) const
{
    HEAP_CHECK(limbs >= 1 && limbs <= limbs_,
               "restrictedTo limb count out of range");
    RnsPoly out(basis_, limbs, domain_);
    std::memcpy(out.data_.data(), data_.data(),
                limbs * n_ * sizeof(uint64_t));
    return out;
}

RnsPoly
rnsFromSigned(std::shared_ptr<const RnsBasis> basis, size_t limbs,
              std::span<const int64_t> coeffs)
{
    HEAP_CHECK(coeffs.size() == basis->n(), "coefficient count mismatch");
    RnsPoly out(basis, limbs, Domain::Coeff);
    for (size_t i = 0; i < limbs; ++i) {
        const uint64_t q = basis->modulus(i);
        auto dst = out.limb(i);
        for (size_t j = 0; j < coeffs.size(); ++j) {
            dst[j] = fromCentered(coeffs[j], q);
        }
    }
    return out;
}

namespace {

/** Garner mixed-radix digits of the CRT value (digit i is mod q_i). */
std::vector<uint64_t>
garnerDigits(std::span<const uint64_t> residues,
             std::span<const uint64_t> moduli,
             const RnsBasis* basis = nullptr)
{
    const size_t k = residues.size();
    std::vector<uint64_t> v(k);
    for (size_t i = 0; i < k; ++i) {
        uint64_t x = residues[i] % moduli[i];
        for (size_t j = 0; j < i; ++j) {
            const uint64_t vj = v[j] % moduli[i];
            const uint64_t inv =
                basis != nullptr
                    ? basis->invModulus(j, i)
                    : invMod(moduli[j] % moduli[i], moduli[i]);
            x = mulModNaive(subMod(x % moduli[i], vj, moduli[i]), inv,
                            moduli[i]);
        }
        v[i] = x;
    }
    return v;
}

/** Accumulates mixed-radix digits into a long double. */
long double
mixedRadixValue(const std::vector<uint64_t>& v,
                std::span<const uint64_t> moduli)
{
    long double value = 0.0L;
    long double radix = 1.0L;
    for (size_t i = 0; i < v.size(); ++i) {
        value += static_cast<long double>(v[i]) * radix;
        radix *= static_cast<long double>(moduli[i]);
    }
    return value;
}

/** Lexicographic comparison from the most significant digit. */
bool
mixedRadixLess(const std::vector<uint64_t>& a,
               const std::vector<uint64_t>& b)
{
    for (size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i]) {
            return a[i] < b[i];
        }
    }
    return false;
}

} // namespace

long double
crtToCenteredDouble(std::span<const uint64_t> residues,
                    std::span<const uint64_t> moduli)
{
    HEAP_CHECK(residues.size() == moduli.size() && !moduli.empty(),
               "bad CRT input");
    const auto pos = garnerDigits(residues, moduli);
    std::vector<uint64_t> negRes(residues.size());
    for (size_t i = 0; i < residues.size(); ++i) {
        negRes[i] = negMod(residues[i] % moduli[i], moduli[i]);
    }
    const auto neg = garnerDigits(negRes, moduli);
    if (mixedRadixLess(neg, pos)) {
        return -mixedRadixValue(neg, moduli);
    }
    return mixedRadixValue(pos, moduli);
}

int64_t
crtToCenteredInt64(std::span<const uint64_t> residues,
                   std::span<const uint64_t> moduli)
{
    HEAP_CHECK(residues.size() == moduli.size() && !moduli.empty(),
               "bad CRT input");
    const auto pos = garnerDigits(residues, moduli);
    std::vector<uint64_t> negRes(residues.size());
    for (size_t i = 0; i < residues.size(); ++i) {
        negRes[i] = negMod(residues[i] % moduli[i], moduli[i]);
    }
    const auto neg = garnerDigits(negRes, moduli);
    const bool isNeg = mixedRadixLess(neg, pos);
    const auto& digits = isNeg ? neg : pos;

    uint128 value = 0;
    uint128 radix = 1;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (digits[i] != 0) {
            HEAP_CHECK((radix >> 62) == 0,
                       "centered value exceeds 2^62 at digit " << i);
            value += radix * digits[i];
            HEAP_CHECK((value >> 62) == 0, "centered value exceeds 2^62");
        }
        if ((radix >> 64) == 0) {
            radix *= moduli[i];
        }
    }
    const int64_t v = static_cast<int64_t>(value);
    return isNeg ? -v : v;
}

} // namespace heap::math
