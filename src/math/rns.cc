#include "math/rns.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "math/poly.h"
#include "math/primes.h"

namespace heap::math {

namespace {

// Below this ring dimension a single NTT is cheaper than one task
// dispatch, so the limb loop stays serial.
constexpr size_t kParallelNttMinN = 1024;

} // namespace

RnsBasis::RnsBasis(size_t n, std::vector<uint64_t> moduli)
    : n_(n), moduli_(std::move(moduli))
{
    HEAP_CHECK(!moduli_.empty(), "empty modulus chain");
    for (size_t i = 0; i < moduli_.size(); ++i) {
        const uint64_t q = moduli_[i];
        HEAP_CHECK(isPrime(q), "modulus " << q << " is not prime");
        HEAP_CHECK((q - 1) % (2 * n) == 0,
                   "modulus " << q << " is not NTT-friendly for n=" << n);
        for (size_t j = 0; j < i; ++j) {
            HEAP_CHECK(moduli_[j] != q, "duplicate modulus " << q);
        }
        ntt_.push_back(std::make_unique<NttTables>(n, q));
        reducers_.emplace_back(q);
    }
    const size_t l = moduli_.size();
    invQ_.assign(l * l, 0);
    for (size_t j = 0; j < l; ++j) {
        for (size_t i = 0; i < l; ++i) {
            if (i != j) {
                invQ_[j * l + i] = invMod(moduli_[j] % moduli_[i],
                                          moduli_[i]);
            }
        }
    }
}

uint64_t
RnsBasis::invModulus(size_t j, size_t i) const
{
    HEAP_ASSERT(i != j, "invModulus(i, i) undefined");
    return invQ_[j * moduli_.size() + i];
}

double
RnsBasis::logQ(size_t limbs) const
{
    HEAP_CHECK(limbs <= moduli_.size(), "limb count exceeds basis");
    double s = 0.0;
    for (size_t i = 0; i < limbs; ++i) {
        s += std::log2(static_cast<double>(moduli_[i]));
    }
    return s;
}

RnsPoly::RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t limbs,
                 Domain domain)
    : basis_(std::move(basis)), domain_(domain)
{
    HEAP_CHECK(limbs >= 1 && limbs <= basis_->size(),
               "invalid limb count " << limbs);
    limbs_.assign(limbs, std::vector<uint64_t>(basis_->n(), 0));
}

void
RnsPoly::setZero()
{
    for (auto& l : limbs_) {
        std::fill(l.begin(), l.end(), 0);
    }
}

void
RnsPoly::toEval()
{
    if (domain_ == Domain::Eval) {
        return;
    }
    // Limbs transform independently (distinct tables, distinct data).
    if (limbs_.size() >= 2 && basis_->n() >= kParallelNttMinN) {
        parallelFor(0, limbs_.size(), 1,
                    [this](size_t i) { basis_->ntt(i).forward(limbs_[i]); });
    } else {
        for (size_t i = 0; i < limbs_.size(); ++i) {
            basis_->ntt(i).forward(limbs_[i]);
        }
    }
    domain_ = Domain::Eval;
}

void
RnsPoly::toCoeff()
{
    if (domain_ == Domain::Coeff) {
        return;
    }
    if (limbs_.size() >= 2 && basis_->n() >= kParallelNttMinN) {
        parallelFor(0, limbs_.size(), 1,
                    [this](size_t i) { basis_->ntt(i).inverse(limbs_[i]); });
    } else {
        for (size_t i = 0; i < limbs_.size(); ++i) {
            basis_->ntt(i).inverse(limbs_[i]);
        }
    }
    domain_ = Domain::Coeff;
}

namespace {

void
checkCompatible(const RnsPoly& a, const RnsPoly& b)
{
    HEAP_CHECK(&a.basis() == &b.basis(), "basis mismatch");
    HEAP_CHECK(a.limbCount() == b.limbCount(),
               "limb count mismatch: " << a.limbCount() << " vs "
                                       << b.limbCount());
    HEAP_CHECK(a.domain() == b.domain(), "domain mismatch");
}

} // namespace

void
RnsPoly::addInPlace(const RnsPoly& other)
{
    checkCompatible(*this, other);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        polyAdd(limbs_[i], other.limb(i), limbs_[i], basis_->modulus(i));
    }
}

void
RnsPoly::subInPlace(const RnsPoly& other)
{
    checkCompatible(*this, other);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        polySub(limbs_[i], other.limb(i), limbs_[i], basis_->modulus(i));
    }
}

void
RnsPoly::negInPlace()
{
    for (size_t i = 0; i < limbs_.size(); ++i) {
        polyNeg(limbs_[i], limbs_[i], basis_->modulus(i));
    }
}

void
RnsPoly::mulPointwiseInPlace(const RnsPoly& other)
{
    checkCompatible(*this, other);
    HEAP_CHECK(domain_ == Domain::Eval,
               "pointwise multiply requires Eval domain");
    for (size_t i = 0; i < limbs_.size(); ++i) {
        const auto& red = basis_->reducer(i);
        auto dst = limbs_[i].data();
        const auto src = other.limb(i).data();
        for (size_t j = 0; j < basis_->n(); ++j) {
            dst[j] = red.mulMod(dst[j], src[j]);
        }
    }
}

void
RnsPoly::mulPointwiseAccum(const RnsPoly& a, const RnsPoly& b)
{
    checkCompatible(a, b);
    checkCompatible(*this, a);
    HEAP_CHECK(domain_ == Domain::Eval, "accumulate requires Eval domain");
    for (size_t i = 0; i < limbs_.size(); ++i) {
        const uint64_t q = basis_->modulus(i);
        const auto& red = basis_->reducer(i);
        auto dst = limbs_[i].data();
        const auto pa = a.limb(i).data();
        const auto pb = b.limb(i).data();
        for (size_t j = 0; j < basis_->n(); ++j) {
            dst[j] = addMod(dst[j], red.mulMod(pa[j], pb[j]), q);
        }
    }
}

void
RnsPoly::mulScalarInPlace(uint64_t c)
{
    for (size_t i = 0; i < limbs_.size(); ++i) {
        polyMulScalar(limbs_[i], c % basis_->modulus(i), limbs_[i],
                      basis_->modulus(i));
    }
}

void
RnsPoly::mulScalarRnsInPlace(std::span<const uint64_t> cPerLimb)
{
    HEAP_CHECK(cPerLimb.size() >= limbs_.size(), "scalar vector too short");
    for (size_t i = 0; i < limbs_.size(); ++i) {
        polyMulScalar(limbs_[i], cPerLimb[i], limbs_[i],
                      basis_->modulus(i));
    }
}

RnsPoly
RnsPoly::automorphism(uint64_t t) const
{
    HEAP_CHECK(domain_ == Domain::Coeff,
               "automorphism requires Coeff domain");
    RnsPoly out(basis_, limbs_.size(), Domain::Coeff);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        polyAutomorphism(limbs_[i], t, out.limb(i), basis_->modulus(i));
    }
    return out;
}

RnsPoly
RnsPoly::monomialMul(uint64_t k) const
{
    HEAP_CHECK(domain_ == Domain::Coeff,
               "monomialMul requires Coeff domain");
    RnsPoly out(basis_, limbs_.size(), Domain::Coeff);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        polyMonomialMul(limbs_[i], k, out.limb(i), basis_->modulus(i));
    }
    return out;
}

void
RnsPoly::dropLimbs(size_t count)
{
    HEAP_CHECK(count < limbs_.size(), "cannot drop all limbs");
    limbs_.resize(limbs_.size() - count);
}

void
RnsPoly::rescaleLastLimb()
{
    HEAP_CHECK(limbs_.size() >= 2, "rescale needs at least two limbs");
    const size_t last = limbs_.size() - 1;
    const uint64_t qLast = basis_->modulus(last);
    const Domain orig = domain_;

    // Bring the dropped limb into coefficient representation.
    std::vector<uint64_t> lastCoeff = limbs_[last];
    if (orig == Domain::Eval) {
        basis_->ntt(last).inverse(lastCoeff);
    }

    for (size_t i = 0; i < last; ++i) {
        const uint64_t qi = basis_->modulus(i);
        // Centered lift of the last limb reduced mod q_i (rounding
        // rather than floor division).
        std::vector<uint64_t> corr(basis_->n());
        for (size_t j = 0; j < basis_->n(); ++j) {
            corr[j] = fromCentered(toCentered(lastCoeff[j], qLast), qi);
        }
        if (orig == Domain::Eval) {
            basis_->ntt(i).forward(corr);
        }
        polySub(limbs_[i], corr, limbs_[i], qi);
        polyMulScalar(limbs_[i], basis_->invModulus(last, i), limbs_[i],
                      qi);
    }
    limbs_.pop_back();
}

RnsPoly
RnsPoly::restrictedTo(size_t limbs) const
{
    HEAP_CHECK(limbs >= 1 && limbs <= limbs_.size(),
               "restrictedTo limb count out of range");
    RnsPoly out(basis_, limbs, domain_);
    for (size_t i = 0; i < limbs; ++i) {
        out.limbs_[i] = limbs_[i];
    }
    return out;
}

RnsPoly
rnsFromSigned(std::shared_ptr<const RnsBasis> basis, size_t limbs,
              std::span<const int64_t> coeffs)
{
    HEAP_CHECK(coeffs.size() == basis->n(), "coefficient count mismatch");
    RnsPoly out(basis, limbs, Domain::Coeff);
    for (size_t i = 0; i < limbs; ++i) {
        const uint64_t q = basis->modulus(i);
        auto dst = out.limb(i);
        for (size_t j = 0; j < coeffs.size(); ++j) {
            dst[j] = fromCentered(coeffs[j], q);
        }
    }
    return out;
}

namespace {

/** Garner mixed-radix digits of the CRT value (digit i is mod q_i). */
std::vector<uint64_t>
garnerDigits(std::span<const uint64_t> residues,
             std::span<const uint64_t> moduli,
             const RnsBasis* basis = nullptr)
{
    const size_t k = residues.size();
    std::vector<uint64_t> v(k);
    for (size_t i = 0; i < k; ++i) {
        uint64_t x = residues[i] % moduli[i];
        for (size_t j = 0; j < i; ++j) {
            const uint64_t vj = v[j] % moduli[i];
            const uint64_t inv =
                basis != nullptr
                    ? basis->invModulus(j, i)
                    : invMod(moduli[j] % moduli[i], moduli[i]);
            x = mulModNaive(subMod(x % moduli[i], vj, moduli[i]), inv,
                            moduli[i]);
        }
        v[i] = x;
    }
    return v;
}

/** Accumulates mixed-radix digits into a long double. */
long double
mixedRadixValue(const std::vector<uint64_t>& v,
                std::span<const uint64_t> moduli)
{
    long double value = 0.0L;
    long double radix = 1.0L;
    for (size_t i = 0; i < v.size(); ++i) {
        value += static_cast<long double>(v[i]) * radix;
        radix *= static_cast<long double>(moduli[i]);
    }
    return value;
}

/** Lexicographic comparison from the most significant digit. */
bool
mixedRadixLess(const std::vector<uint64_t>& a,
               const std::vector<uint64_t>& b)
{
    for (size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i]) {
            return a[i] < b[i];
        }
    }
    return false;
}

} // namespace

long double
crtToCenteredDouble(std::span<const uint64_t> residues,
                    std::span<const uint64_t> moduli)
{
    HEAP_CHECK(residues.size() == moduli.size() && !moduli.empty(),
               "bad CRT input");
    const auto pos = garnerDigits(residues, moduli);
    std::vector<uint64_t> negRes(residues.size());
    for (size_t i = 0; i < residues.size(); ++i) {
        negRes[i] = negMod(residues[i] % moduli[i], moduli[i]);
    }
    const auto neg = garnerDigits(negRes, moduli);
    if (mixedRadixLess(neg, pos)) {
        return -mixedRadixValue(neg, moduli);
    }
    return mixedRadixValue(pos, moduli);
}

int64_t
crtToCenteredInt64(std::span<const uint64_t> residues,
                   std::span<const uint64_t> moduli)
{
    HEAP_CHECK(residues.size() == moduli.size() && !moduli.empty(),
               "bad CRT input");
    const auto pos = garnerDigits(residues, moduli);
    std::vector<uint64_t> negRes(residues.size());
    for (size_t i = 0; i < residues.size(); ++i) {
        negRes[i] = negMod(residues[i] % moduli[i], moduli[i]);
    }
    const auto neg = garnerDigits(negRes, moduli);
    const bool isNeg = mixedRadixLess(neg, pos);
    const auto& digits = isNeg ? neg : pos;

    uint128 value = 0;
    uint128 radix = 1;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (digits[i] != 0) {
            HEAP_CHECK((radix >> 62) == 0,
                       "centered value exceeds 2^62 at digit " << i);
            value += radix * digits[i];
            HEAP_CHECK((value >> 62) == 0, "centered value exceeds 2^62");
        }
        if ((radix >> 64) == 0) {
            radix *= moduli[i];
        }
    }
    const int64_t v = static_cast<int64_t>(value);
    return isNeg ? -v : v;
}

} // namespace heap::math
