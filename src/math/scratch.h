/**
 * @file
 * Thread-local scratch arena for hot-path temporaries.
 *
 * The flat kernels avoid per-call heap allocations by borrowing
 * scratch space from a per-thread chunked arena: a ScratchFrame marks
 * the arena on construction and releases everything borrowed after it
 * on destruction (strict LIFO). Chunks are never freed or reused
 * while a frame holds spans into them, so outstanding spans stay
 * valid even when a nested borrow forces the arena to grow a new
 * chunk.
 *
 * The growth counter (scratchGrowthCount()) lets tests assert
 * steady-state allocation-freedom: after warm-up, repeated calls into
 * the multiply/NTT/gadget paths must not grow the arena.
 */

#ifndef HEAP_MATH_SCRATCH_H
#define HEAP_MATH_SCRATCH_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.h"

namespace heap::math {

/** Per-thread chunked bump arena of 64-byte-aligned uint64_t blocks. */
class ScratchArena {
  public:
    /** The calling thread's arena. */
    static ScratchArena& instance();

    /**
     * Borrows n words (64-byte aligned, uninitialized). The span
     * stays valid until the enclosing ScratchFrame is destroyed.
     */
    std::span<uint64_t> borrow(size_t n);

    /** Same block viewed as signed words (gadget digits). */
    std::span<int64_t> borrowSigned(size_t n);

    /**
     * Number of times this thread's arena grew a new chunk. Stable
     * across steady-state calls once warmed up; asserted in
     * tests/scratch_test.cc.
     */
    size_t growthCount() const { return growthCount_; }

  private:
    friend class ScratchFrame;

    struct Mark {
        size_t chunk;
        size_t used;
    };

    struct Chunk {
        AlignedU64 buf;
        size_t used = 0;

        explicit Chunk(size_t words)
            : buf(words)
        {
        }
    };

    Mark mark() const;
    void release(const Mark& m);

    static constexpr size_t kMinChunkWords = 1 << 14; // 128 KiB

    std::vector<std::unique_ptr<Chunk>> chunks_;
    size_t active_ = 0; ///< index of the chunk currently bumping
    size_t growthCount_ = 0;
};

/**
 * RAII scope for scratch borrows. Frames must nest (stack order);
 * destroying a frame releases every borrow made while it was the
 * innermost frame.
 */
class ScratchFrame {
  public:
    ScratchFrame()
        : arena_(ScratchArena::instance()), mark_(arena_.mark())
    {
    }

    ~ScratchFrame() { arena_.release(mark_); }

    ScratchFrame(const ScratchFrame&) = delete;
    ScratchFrame& operator=(const ScratchFrame&) = delete;

    std::span<uint64_t> borrow(size_t n) { return arena_.borrow(n); }
    std::span<int64_t> borrowSigned(size_t n)
    {
        return arena_.borrowSigned(n);
    }

  private:
    ScratchArena& arena_;
    ScratchArena::Mark mark_;
};

/** This thread's arena growth counter (see ScratchArena). */
inline size_t
scratchGrowthCount()
{
    return ScratchArena::instance().growthCount();
}

} // namespace heap::math

#endif // HEAP_MATH_SCRATCH_H
