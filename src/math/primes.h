/**
 * @file
 * NTT-friendly prime generation and primitive-root search.
 *
 * CKKS/TFHE RNS limbs must be primes q with q = 1 (mod 2N) so that the
 * negacyclic NTT exists. generateNttPrimes() finds such primes near a
 * requested bit width (the paper uses 36-bit limbs).
 */

#ifndef HEAP_MATH_PRIMES_H
#define HEAP_MATH_PRIMES_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace heap::math {

/** Deterministic Miller-Rabin primality test valid for all 64-bit n. */
bool isPrime(uint64_t n);

/**
 * Generates `count` distinct primes of roughly `bits` bits with
 * q = 1 (mod 2n), scanning downward from 2^bits.
 *
 * @param bits  target bit width (20..62)
 * @param n     ring dimension (power of two)
 * @param count number of primes required
 * @return primes in the order found (descending)
 */
std::vector<uint64_t> generateNttPrimes(int bits, size_t n, size_t count);

/** Returns a generator of the multiplicative group of Z_q (q prime). */
uint64_t primitiveRoot(uint64_t q);

/**
 * Returns a primitive 2n-th root of unity mod q.
 * @pre q prime, q = 1 (mod 2n), n a power of two.
 */
uint64_t minimalPrimitiveRoot2N(uint64_t q, size_t n);

} // namespace heap::math

#endif // HEAP_MATH_PRIMES_H
