#include "math/scratch.h"

#include "common/check.h"

namespace heap::math {

ScratchArena&
ScratchArena::instance()
{
    thread_local ScratchArena arena;
    return arena;
}

std::span<uint64_t>
ScratchArena::borrow(size_t n)
{
    // Round to a 64-byte boundary so every borrow stays aligned.
    const size_t words = (n + 7) & ~static_cast<size_t>(7);
    while (active_ < chunks_.size()) {
        Chunk& c = *chunks_[active_];
        if (c.used + words <= c.buf.size()) {
            uint64_t* p = c.buf.data() + c.used;
            c.used += words;
            return {p, n};
        }
        // Current chunk exhausted; try the next (its used is 0 —
        // release() resets every chunk past the mark).
        ++active_;
    }
    const size_t cap = words > kMinChunkWords ? words : kMinChunkWords;
    chunks_.push_back(std::make_unique<Chunk>(cap));
    ++growthCount_;
    Chunk& c = *chunks_.back();
    c.used = words;
    return {c.buf.data(), n};
}

std::span<int64_t>
ScratchArena::borrowSigned(size_t n)
{
    const std::span<uint64_t> s = borrow(n);
    return {reinterpret_cast<int64_t*>(s.data()), n};
}

ScratchArena::Mark
ScratchArena::mark() const
{
    if (active_ < chunks_.size()) {
        return {active_, chunks_[active_]->used};
    }
    return {active_, 0};
}

void
ScratchArena::release(const Mark& m)
{
    HEAP_ASSERT(m.chunk <= active_ || active_ >= chunks_.size(),
                "scratch frames released out of order");
    for (size_t i = chunks_.size(); i-- > m.chunk + 1;) {
        chunks_[i]->used = 0;
    }
    if (m.chunk < chunks_.size()) {
        chunks_[m.chunk]->used = m.used;
    }
    active_ = m.chunk;
}

} // namespace heap::math
