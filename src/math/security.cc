#include "math/security.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace heap::math {

namespace {

/**
 * HomomorphicEncryption.org standard (Nov 2018 tables), uniform
 * ternary secret, classical cost model: max log2(Q) per (n, level).
 */
struct TableRow {
    size_t n;
    size_t logQ128, logQ192, logQ256;
};

constexpr std::array<TableRow, 6> kStandard = {{
    {1024, 27, 19, 14},
    {2048, 54, 37, 29},
    {4096, 109, 75, 58},
    {8192, 218, 152, 118},
    {16384, 438, 305, 237},
    {32768, 881, 611, 476},
}};

} // namespace

size_t
maxLogQForSecurity(size_t n, int securityBits)
{
    HEAP_CHECK(securityBits == 128 || securityBits == 192
                   || securityBits == 256,
               "supported levels: 128/192/256");
    for (const auto& row : kStandard) {
        if (row.n == n) {
            switch (securityBits) {
            case 128:
                return row.logQ128;
            case 192:
                return row.logQ192;
            default:
                return row.logQ256;
            }
        }
    }
    // Between table rows: security scales ~linearly in n at fixed
    // logQ, so the max logQ scales ~linearly too.
    if (n < kStandard.front().n) {
        return 0;
    }
    if (n > kStandard.back().n) {
        const double scale = static_cast<double>(n)
                             / static_cast<double>(kStandard.back().n);
        return static_cast<size_t>(
            scale * static_cast<double>(
                        maxLogQForSecurity(kStandard.back().n,
                                           securityBits)));
    }
    // n is a power of two within the table in all supported cases.
    HEAP_CHECK(std::has_single_bit(n), "n must be a power of two");
    HEAP_PANIC("unreachable table lookup for n=" << n);
}

double
estimateSecurityBits(size_t n, double logQ)
{
    HEAP_CHECK(n >= 2 && std::has_single_bit(n),
               "n must be a power of two");
    HEAP_CHECK(logQ > 0, "logQ must be positive");
    if (n < kStandard.front().n) {
        // Demo-sized rings: extrapolate the same n/logQ law; tiny
        // rings offer essentially no security.
        const double bits = 128.0 * static_cast<double>(n)
                            / (static_cast<double>(logQ) * 37.6);
        return std::clamp(bits, 0.0, 300.0);
    }
    // The table is well approximated by security ~ c * n / logQ with
    // c calibrated per level; use the 128/192/256 anchors for a
    // piecewise-linear estimate in 1/logQ.
    auto levelAt = [&](size_t nn, double lq) {
        // Interpolate between the three anchor levels for ring nn.
        const double q128 =
            static_cast<double>(maxLogQForSecurity(nn, 128));
        const double q192 =
            static_cast<double>(maxLogQForSecurity(nn, 192));
        const double q256 =
            static_cast<double>(maxLogQForSecurity(nn, 256));
        if (lq >= q128) {
            return 128.0 * q128 / lq; // beyond the table: ~1/logQ
        }
        if (lq >= q192) {
            return 128.0
                   + (192.0 - 128.0) * (q128 - lq) / (q128 - q192);
        }
        if (lq >= q256) {
            return 192.0
                   + (256.0 - 192.0) * (q192 - lq) / (q192 - q256);
        }
        return std::min(300.0, 256.0 * q256 / lq);
    };
    if (n > kStandard.back().n) {
        const double scale = static_cast<double>(n)
                             / static_cast<double>(kStandard.back().n);
        return std::clamp(levelAt(kStandard.back().n, logQ / scale),
                          0.0, 300.0);
    }
    return std::clamp(levelAt(n, logQ), 0.0, 300.0);
}

} // namespace heap::math
