/**
 * @file
 * Negacyclic number theoretic transform over Z_q[X]/(X^N + 1).
 *
 * The transform is factored exactly the way the paper's NTT datapath is
 * (Section IV-D): radix-2 butterflies following the Cooley-Tukey access
 * pattern, with per-stage twiddle groups so the address generation is
 * `address = i_g + i_nc * 2^cs`. In software:
 *
 *  - forward(): multiply by psi^i, then an iterative DIF pass
 *    (natural order in, bit-reversed order out) with omega = psi^2,
 *  - inverse(): iterative DIT pass (bit-reversed in, natural out) with
 *    omega^{-1}, then multiply by psi^{-i} / N.
 *
 * Pointwise products are performed in the bit-reversed evaluation
 * domain, so forward/inverse compose to the exact negacyclic product.
 * Twiddle factors carry Shoup companions for fast constant
 * multiplication.
 */

#ifndef HEAP_MATH_NTT_H
#define HEAP_MATH_NTT_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "math/kernels.h"
#include "math/modarith.h"

namespace heap::math {

/**
 * Precomputed tables for the negacyclic NTT of size n modulo q.
 */
class NttTables {
  public:
    /**
     * Builds tables for ring dimension n and prime modulus q.
     * @pre n a power of two, q prime with q = 1 (mod 2n).
     */
    NttTables(size_t n, uint64_t q);

    size_t n() const { return n_; }
    uint64_t modulus() const { return q_; }
    const BarrettReducer& reducer() const { return barrett_; }

    /** Borrowed view of the tables for the flat kernels (kernels.h). */
    NttTablesView view() const;

    /**
     * In-place forward negacyclic NTT (natural -> bit-reversed),
     * dispatched through the process-wide kernel table (lazy
     * reduction + SIMD when available). Byte-identical to
     * forwardScalar().
     */
    void forward(std::span<uint64_t> a) const;

    /**
     * Strict-reduction scalar reference forward NTT (every butterfly
     * fully reduced). Kept as the oracle for the `simd` equivalence
     * tests; the dispatched forward() must match it byte-for-byte.
     */
    void forwardScalar(std::span<uint64_t> a) const;

    /**
     * Forward NTT with on-the-fly twiddle generation (Section IV-D's
     * control-signal alternative): only log2(n) stage seeds are read
     * from memory; each stage's twiddles are produced by repeated
     * multiplication. Trades multiplier bandwidth for on-chip
     * memory — bit-identical to forward().
     */
    void forwardOnTheFly(std::span<uint64_t> a) const;

    /**
     * In-place inverse negacyclic NTT (bit-reversed -> natural),
     * dispatched like forward(). Byte-identical to inverseScalar().
     */
    void inverse(std::span<uint64_t> a) const;

    /** Strict-reduction scalar reference inverse NTT (oracle). */
    void inverseScalar(std::span<uint64_t> a) const;

  private:
    size_t n_;
    int logN_;
    uint64_t q_;
    BarrettReducer barrett_;
    // Stage-flattened twiddles: tw_[len + j] = omega^{j * n / (2 len)}.
    std::vector<uint64_t> tw_, twShoup_;
    // Per-stage twiddle steps omega^{n/(2 len)} for on-the-fly mode.
    std::vector<uint64_t> stageStep_;
    std::vector<uint64_t> itw_, itwShoup_;
    // psiPow_[i] = psi^i; ipsiPowScaled_[i] = psi^{-i} * n^{-1}.
    std::vector<uint64_t> psiPow_, psiPowShoup_;
    std::vector<uint64_t> ipsiPowScaled_, ipsiPowScaledShoup_;
    // 52-bit Shoup companions for the IFMA kernels; empty unless
    // q < 2^kIfmaMaxModulusBits.
    std::vector<uint64_t> tw52_, itw52_, psiPow52_, ipsiPowScaled52_;
};

/**
 * Reference negacyclic convolution in O(n^2); the oracle NTT results are
 * validated against in unit tests.
 */
std::vector<uint64_t> negacyclicConvolveSchoolbook(
    std::span<const uint64_t> a, std::span<const uint64_t> b, uint64_t q);

} // namespace heap::math

#endif // HEAP_MATH_NTT_H
