/**
 * @file
 * AVX-512 variants of the flat math kernels (see kernels.h for the
 * reduction-discipline contract). Compiled with -mavx512f -mavx512dq
 * -mavx512vl and only called after runtime detection (math/simd.cc).
 *
 * AVX-512DQ supplies a native 64-bit low multiply
 * (_mm512_mullo_epi64), so the lazy Shoup product needs only one
 * emulated high-half multiply; unsigned compares come for free as
 * mask registers. This is the widest software mirror of the paper's
 * DSP-packed modular multiplier array (Section IV-A): 8 butterflies
 * per instruction, branch-free lazy reduction.
 */

#if defined(HEAP_HAVE_AVX512) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "math/kernels.h"

namespace heap::math {
namespace {

/** High 64 bits of the 64x64 product, per lane. */
inline __m512i
mulHi64v(__m512i x, __m512i y)
{
    const __m512i lo32 = _mm512_set1_epi64(0xffffffffLL);
    const __m512i xh = _mm512_srli_epi64(x, 32);
    const __m512i yh = _mm512_srli_epi64(y, 32);
    const __m512i ll = _mm512_mul_epu32(x, y);
    const __m512i lh = _mm512_mul_epu32(x, yh);
    const __m512i hl = _mm512_mul_epu32(xh, y);
    const __m512i hh = _mm512_mul_epu32(xh, yh);
    const __m512i cross = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, lo32)),
        _mm512_and_si512(hl, lo32));
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32),
                         _mm512_srli_epi64(cross, 32)));
}

/** Lazy Shoup product a*w in [0, 2q); a arbitrary, w < q. */
inline __m512i
shoupLazyV(__m512i a, __m512i w, __m512i ws, __m512i q)
{
    const __m512i hi = mulHi64v(a, ws);
    return _mm512_sub_epi64(_mm512_mullo_epi64(a, w),
                            _mm512_mullo_epi64(hi, q));
}

/** x >= lim ? x - lim : x, unsigned lanes (mask subtract). */
inline __m512i
condSubV(__m512i x, __m512i lim)
{
    const __mmask8 ge = _mm512_cmpge_epu64_mask(x, lim);
    return _mm512_mask_sub_epi64(x, ge, x, lim);
}

#if defined(HEAP_HAVE_AVX512IFMA)
inline bool
cpuHasIfma()
{
    static const bool has = __builtin_cpu_supports("avx512ifma");
    return has;
}
#endif

void
nttForwardAvx512(uint64_t* a, const NttTablesView& t)
{
#if defined(HEAP_HAVE_AVX512IFMA)
    // Small moduli ride the 52-bit fused-multiply butterflies when the
    // hardware has them; the tables expose 52-bit companions only for
    // q < 2^kIfmaMaxModulusBits.
    if (t.psi52 != nullptr && cpuHasIfma()) {
        detail::nttForwardAvx512Ifma(a, t);
        return;
    }
#endif
    const size_t n = t.n;
    if (n < 32) {
        detail::nttForwardScalarLazy(a, t);
        return;
    }
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    const __m512i twoQv =
        _mm512_set1_epi64(static_cast<int64_t>(twoQ));

    // Twist: a[i] *= psi^i, lazily (< 2q).
    for (size_t i = 0; i < n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i w = _mm512_loadu_si512(t.psi + i);
        const __m512i ws = _mm512_loadu_si512(t.psiShoup + i);
        _mm512_storeu_si512(a + i, shoupLazyV(x, w, ws, qv));
    }
    // Vector DIF stages (len >= 8).
    for (size_t len = n / 2; len >= 8; len >>= 1) {
        const uint64_t* tw = t.tw + len;
        const uint64_t* tws = t.twShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; j += 8) {
                const __m512i u = _mm512_loadu_si512(x + j);
                const __m512i v = _mm512_loadu_si512(y + j);
                const __m512i sum =
                    condSubV(_mm512_add_epi64(u, v), twoQv);
                const __m512i diff = _mm512_add_epi64(
                    _mm512_sub_epi64(u, v), twoQv);
                const __m512i w = _mm512_loadu_si512(tw + j);
                const __m512i ws = _mm512_loadu_si512(tws + j);
                _mm512_storeu_si512(x + j, sum);
                _mm512_storeu_si512(y + j,
                                    shoupLazyV(diff, w, ws, qv));
            }
        }
    }
    // Last three stages (len 4, 2, 1): strided scalar butterflies.
    for (size_t len = 4; len >= 1; len >>= 1) {
        const uint64_t* tw = t.tw + len;
        const uint64_t* tws = t.twShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; ++j) {
                const uint64_t u = x[j];
                const uint64_t v = y[j];
                uint64_t sum = u + v;
                if (sum >= twoQ) {
                    sum -= twoQ;
                }
                x[j] = sum;
                y[j] = mulModShoupLazy(u - v + twoQ, tw[j], tws[j], q);
            }
        }
    }
    // Final normalization to [0, q).
    for (size_t i = 0; i < n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        _mm512_storeu_si512(a + i, condSubV(x, qv));
    }
}

void
nttInverseAvx512(uint64_t* a, const NttTablesView& t)
{
#if defined(HEAP_HAVE_AVX512IFMA)
    if (t.psi52 != nullptr && cpuHasIfma()) {
        detail::nttInverseAvx512Ifma(a, t);
        return;
    }
#endif
    const size_t n = t.n;
    if (n < 32) {
        detail::nttInverseScalarLazy(a, t);
        return;
    }
    const uint64_t q = t.q;
    const uint64_t twoQ = 2 * q;
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    const __m512i twoQv =
        _mm512_set1_epi64(static_cast<int64_t>(twoQ));

    // First three stages (len 1, 2, 4): scalar, 4q invariant.
    for (size_t len = 1; len <= 4; len <<= 1) {
        const uint64_t* tw = t.itw + len;
        const uint64_t* tws = t.itwShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; ++j) {
                uint64_t u = x[j];
                if (u >= twoQ) {
                    u -= twoQ;
                }
                const uint64_t v =
                    mulModShoupLazy(y[j], tw[j], tws[j], q);
                x[j] = u + v;
                y[j] = u - v + twoQ;
            }
        }
    }
    // Vector DIT stages (len >= 8).
    for (size_t len = 8; len <= n / 2; len <<= 1) {
        const uint64_t* tw = t.itw + len;
        const uint64_t* tws = t.itwShoup + len;
        for (size_t start = 0; start < n; start += 2 * len) {
            uint64_t* x = a + start;
            uint64_t* y = a + start + len;
            for (size_t j = 0; j < len; j += 8) {
                const __m512i u =
                    condSubV(_mm512_loadu_si512(x + j), twoQv);
                const __m512i w = _mm512_loadu_si512(tw + j);
                const __m512i ws = _mm512_loadu_si512(tws + j);
                const __m512i v = shoupLazyV(
                    _mm512_loadu_si512(y + j), w, ws, qv);
                _mm512_storeu_si512(x + j, _mm512_add_epi64(u, v));
                _mm512_storeu_si512(
                    y + j,
                    _mm512_add_epi64(_mm512_sub_epi64(u, v), twoQv));
            }
        }
    }
    // Untwist + scale, then normalize to [0, q).
    for (size_t i = 0; i < n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i w = _mm512_loadu_si512(t.ipsiScaled + i);
        const __m512i ws = _mm512_loadu_si512(t.ipsiScaledShoup + i);
        _mm512_storeu_si512(a + i,
                            condSubV(shoupLazyV(x, w, ws, qv), qv));
    }
}

void
addModAvx512(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             size_t n, uint64_t q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i s = _mm512_add_epi64(_mm512_loadu_si512(a + i),
                                           _mm512_loadu_si512(b + i));
        _mm512_storeu_si512(dst + i, condSubV(s, qv));
    }
    for (; i < n; ++i) {
        dst[i] = addMod(a[i], b[i], q);
    }
}

void
subModAvx512(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             size_t n, uint64_t q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i d = _mm512_add_epi64(
            _mm512_sub_epi64(_mm512_loadu_si512(a + i),
                             _mm512_loadu_si512(b + i)),
            qv);
        _mm512_storeu_si512(dst + i, condSubV(d, qv));
    }
    for (; i < n; ++i) {
        dst[i] = subMod(a[i], b[i], q);
    }
}

void
negModAvx512(uint64_t* dst, const uint64_t* a, size_t n, uint64_t q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __mmask8 nz = _mm512_test_epi64_mask(x, x);
        _mm512_storeu_si512(dst + i, _mm512_maskz_sub_epi64(nz, qv, x));
    }
    for (; i < n; ++i) {
        dst[i] = negMod(a[i], q);
    }
}

void
mulScalarShoupAvx512(uint64_t* dst, const uint64_t* a, uint64_t w,
                     uint64_t ws, size_t n, uint64_t q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    const __m512i wv = _mm512_set1_epi64(static_cast<int64_t>(w));
    const __m512i wsv = _mm512_set1_epi64(static_cast<int64_t>(ws));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        _mm512_storeu_si512(dst + i,
                            condSubV(shoupLazyV(x, wv, wsv, qv), qv));
    }
    for (; i < n; ++i) {
        dst[i] = mulModShoup(a[i], w, ws, q);
    }
}

void
mulScalarShoupAccumAvx512(uint64_t* dst, const uint64_t* a, uint64_t w,
                          uint64_t ws, size_t n, uint64_t q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    const __m512i wv = _mm512_set1_epi64(static_cast<int64_t>(w));
    const __m512i wsv = _mm512_set1_epi64(static_cast<int64_t>(ws));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i d = _mm512_loadu_si512(dst + i);
        const __m512i r = condSubV(shoupLazyV(x, wv, wsv, qv), qv);
        _mm512_storeu_si512(dst + i,
                            condSubV(_mm512_add_epi64(d, r), qv));
    }
    for (; i < n; ++i) {
        dst[i] = addMod(dst[i], mulModShoup(a[i], w, ws, q), q);
    }
}

void
liftSignedAvx512(uint64_t* dst, const int64_t* a, size_t n, uint64_t q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<int64_t>(q));
    const __m512i zero = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v = _mm512_loadu_si512(a + i);
        const __mmask8 neg = _mm512_cmplt_epi64_mask(v, zero);
        _mm512_storeu_si512(dst + i,
                            _mm512_mask_add_epi64(v, neg, v, qv));
    }
    for (; i < n; ++i) {
        const int64_t v = a[i];
        dst[i] = static_cast<uint64_t>(v)
                 + (q & static_cast<uint64_t>(v >> 63));
    }
}

} // namespace

namespace detail {

void
installAvx512Kernels(KernelOps& ops)
{
    // mulMod/mulModAccum stay scalar: the 128-bit Barrett chain maps
    // to 1-cycle mulx scalar code but needs 4 emulated 64-bit high
    // multiplies per vector — measured slower than scalar here.
    ops.nttForward = &nttForwardAvx512;
    ops.nttInverse = &nttInverseAvx512;
    ops.addMod = &addModAvx512;
    ops.subMod = &subModAvx512;
    ops.negMod = &negModAvx512;
    ops.mulScalarShoup = &mulScalarShoupAvx512;
    ops.mulScalarShoupAccum = &mulScalarShoupAccumAvx512;
    ops.liftSigned = &liftSignedAvx512;
}

} // namespace detail
} // namespace heap::math

#endif // HEAP_HAVE_AVX512 && x86
