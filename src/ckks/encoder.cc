#include "ckks/encoder.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace heap::ckks {

namespace {

void
bitReverse(std::vector<Complex>& vals)
{
    const size_t n = vals.size();
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j ^= bit;
        if (i < j) {
            std::swap(vals[i], vals[j]);
        }
    }
}

} // namespace

Encoder::Encoder(size_t n)
    : n_(n)
{
    HEAP_CHECK(n >= 4 && std::has_single_bit(n),
               "ring dimension must be a power of two >= 4");
    const size_t m = 2 * n;
    ksiPows_.resize(m + 1);
    for (size_t j = 0; j <= m; ++j) {
        const double theta = 2.0 * std::numbers::pi
                             * static_cast<double>(j)
                             / static_cast<double>(m);
        ksiPows_[j] = Complex(std::cos(theta), std::sin(theta));
    }
    rotGroup_.resize(n / 2);
    uint64_t five = 1;
    for (size_t i = 0; i < n / 2; ++i) {
        rotGroup_[i] = five;
        five = five * 5 % m;
    }
}

void
Encoder::fftSpecial(std::vector<Complex>& vals) const
{
    const size_t size = vals.size();
    const size_t m = 2 * n_;
    bitReverse(vals);
    for (size_t len = 2; len <= size; len <<= 1) {
        const size_t lenh = len >> 1;
        const size_t lenq = len << 2;
        const size_t gap = m / lenq;
        for (size_t i = 0; i < size; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                const size_t idx = (rotGroup_[j] % lenq) * gap;
                const Complex u = vals[i + j];
                const Complex v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
Encoder::fftSpecialInv(std::vector<Complex>& vals) const
{
    const size_t size = vals.size();
    const size_t m = 2 * n_;
    for (size_t len = size; len >= 2; len >>= 1) {
        const size_t lenh = len >> 1;
        const size_t lenq = len << 2;
        const size_t gap = m / lenq;
        for (size_t i = 0; i < size; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                const size_t idx = (lenq - (rotGroup_[j] % lenq)) * gap;
                const Complex u = vals[i + j] + vals[i + j + lenh];
                const Complex v =
                    (vals[i + j] - vals[i + j + lenh]) * ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    bitReverse(vals);
    for (auto& v : vals) {
        v /= static_cast<double>(size);
    }
}

std::vector<int64_t>
Encoder::encode(std::span<const Complex> values, double scale) const
{
    const size_t slots = values.size();
    HEAP_CHECK(slots >= 1 && slots <= maxSlots()
                   && std::has_single_bit(slots),
               "slot count must be a power of two <= N/2, got " << slots);
    HEAP_CHECK(scale > 0, "scale must be positive");
    std::vector<Complex> vals(values.begin(), values.end());
    fftSpecialInv(vals);
    // Interleave with gap for sparse packing: slot i contributes to
    // coefficients gap*i (real) and gap*i + N/2 (imaginary).
    const size_t gap = maxSlots() / slots;
    std::vector<int64_t> coeffs(n_, 0);
    for (size_t i = 0; i < slots; ++i) {
        coeffs[gap * i] =
            static_cast<int64_t>(std::llround(vals[i].real() * scale));
        coeffs[gap * i + n_ / 2] =
            static_cast<int64_t>(std::llround(vals[i].imag() * scale));
    }
    return coeffs;
}

std::vector<int64_t>
Encoder::encodeReal(std::span<const double> values, double scale) const
{
    std::vector<Complex> z(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        z[i] = Complex(values[i], 0.0);
    }
    return encode(z, scale);
}

std::vector<double>
Encoder::encodeRaw(std::span<const Complex> values) const
{
    HEAP_CHECK(values.size() == maxSlots(),
               "encodeRaw requires full packing");
    std::vector<Complex> vals(values.begin(), values.end());
    fftSpecialInv(vals);
    std::vector<double> coeffs(n_);
    for (size_t i = 0; i < maxSlots(); ++i) {
        coeffs[i] = vals[i].real();
        coeffs[i + n_ / 2] = vals[i].imag();
    }
    return coeffs;
}

std::vector<Complex>
Encoder::decode(std::span<const long double> coeffs, double scale,
                size_t slots) const
{
    HEAP_CHECK(coeffs.size() == n_, "coefficient count mismatch");
    HEAP_CHECK(slots >= 1 && slots <= maxSlots()
                   && std::has_single_bit(slots),
               "bad slot count " << slots);
    const size_t gap = maxSlots() / slots;
    std::vector<Complex> vals(slots);
    for (size_t i = 0; i < slots; ++i) {
        vals[i] = Complex(
            static_cast<double>(coeffs[gap * i]) / scale,
            static_cast<double>(coeffs[gap * i + n_ / 2]) / scale);
    }
    fftSpecial(vals);
    return vals;
}

std::vector<Complex>
Encoder::decode(std::span<const int64_t> coeffs, double scale,
                size_t slots) const
{
    std::vector<long double> c(coeffs.size());
    for (size_t i = 0; i < coeffs.size(); ++i) {
        c[i] = static_cast<long double>(coeffs[i]);
    }
    return decode(c, scale, slots);
}

uint64_t
Encoder::rotationExponent(int64_t steps) const
{
    const uint64_t m = 2 * n_;
    const size_t half = n_ / 2;
    // Rotations are modulo the slot count; 5 has order N/2 mod 2N.
    int64_t r = steps % static_cast<int64_t>(half);
    if (r < 0) {
        r += static_cast<int64_t>(half);
    }
    uint64_t e = 1;
    for (int64_t i = 0; i < r; ++i) {
        e = e * 5 % m;
    }
    return e;
}

} // namespace heap::ckks
