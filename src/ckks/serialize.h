/**
 * @file
 * Wire format for CKKS/RLWE artifacts. Versioned and validated on
 * load (ring dimension and modulus chain must match the receiving
 * context's basis — a ciphertext is meaningless under a different
 * parameter set).
 */

#ifndef HEAP_CKKS_SERIALIZE_H
#define HEAP_CKKS_SERIALIZE_H

#include "ckks/context.h"
#include "common/serialize.h"

namespace heap::ckks {

/** Serializes an RNS polynomial (domain, limbs, coefficients). */
void savePoly(const math::RnsPoly& p, ByteWriter& w);

/** Loads an RNS polynomial onto the given basis (validated). */
math::RnsPoly loadPoly(ByteReader& r,
                       std::shared_ptr<const math::RnsBasis> basis);

/** Serializes an RLWE ciphertext pair. */
void saveRlwe(const rlwe::Ciphertext& ct, ByteWriter& w);
rlwe::Ciphertext loadRlwe(ByteReader& r,
                          std::shared_ptr<const math::RnsBasis> basis);

/** Serializes a CKKS ciphertext (RLWE pair + scale + slots). */
std::vector<uint8_t> saveCiphertext(const Ciphertext& ct);
Ciphertext loadCiphertext(std::span<const uint8_t> data,
                          const Context& ctx);

/** Serializes a gadget (key-switching) ciphertext. */
std::vector<uint8_t> saveGadget(const rlwe::GadgetCiphertext& key);
rlwe::GadgetCiphertext loadGadget(std::span<const uint8_t> data,
                                  const Context& ctx);

} // namespace heap::ckks

#endif // HEAP_CKKS_SERIALIZE_H
