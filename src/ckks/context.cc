#include "ckks/context.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "ckks/noise.h"
#include "common/check.h"
#include "math/primes.h"

namespace heap::ckks {

CkksParams
CkksParams::paperSet()
{
    CkksParams p;
    p.n = 1 << 13;
    p.limbBits = 36;
    p.levels = 6;
    p.auxLimbs = 1;
    p.scale = std::pow(2.0, 30);
    p.gadget = rlwe::GadgetParams{.baseBits = 18, .digitsPerLimb = 2};
    return p;
}

namespace {

std::vector<uint64_t>
buildModuli(const CkksParams& p)
{
    HEAP_CHECK(p.levels >= 1, "need at least one level");
    HEAP_CHECK(p.limbBits >= 20 && p.limbBits <= 54,
               "limbBits must be in [20, 54]");
    // First limb gets extra headroom bits so the final-level message
    // still fits; auxiliary primes match the first limb's width.
    const int firstBits = p.firstLimbBits > 0
                              ? p.firstLimbBits
                              : std::min(p.limbBits + 6, 60);
    HEAP_CHECK(firstBits > p.limbBits && firstBits <= 60,
               "firstLimbBits must be in (limbBits, 60]");
    const size_t bigCount = 1 + p.auxLimbs;
    const auto big = math::generateNttPrimes(firstBits, p.n, bigCount);
    std::vector<uint64_t> moduli;
    moduli.push_back(big[0]);
    if (p.levels > 1) {
        const auto mids =
            math::generateNttPrimes(p.limbBits, p.n, p.levels - 1);
        moduli.insert(moduli.end(), mids.begin(), mids.end());
    }
    for (size_t i = 0; i < p.auxLimbs; ++i) {
        moduli.push_back(big[1 + i]);
    }
    return moduli;
}

rlwe::SecretKey
makeSecret(const CkksParams& p,
           const std::shared_ptr<const math::RnsBasis>& basis, Rng& rng)
{
    if (p.secretHamming) {
        return rlwe::SecretKey::sampleTernaryHamming(
            basis, *p.secretHamming, rng);
    }
    return rlwe::SecretKey::sampleTernary(basis, rng);
}

} // namespace

Context::Context(const CkksParams& params, uint64_t seed)
    : params_(params),
      basis_(std::make_shared<math::RnsBasis>(params.n,
                                              buildModuli(params))),
      encoder_(params.n),
      rng_(seed),
      sk_(makeSecret(params, basis_, rng_)),
      pk_{rlwe::encryptZero(sk_, basis_->size(), rng_, noiseParams())}
{
    params_.gadget.validateFor(*basis_);
    HEAP_CHECK(params_.scale > 1.0, "scale must exceed 1");
    // Relinearization key: gadget encryption of s^2.
    math::RnsPoly s2 = sk_.evalSquared();
    s2.toCoeff();
    relinKey_ =
        rlwe::gadgetEncrypt(sk_, s2, params_.gadget, rng_, noiseParams());
    conjKey_ = rlwe::makeAutomorphismKey(
        sk_, encoder_.conjugationExponent(), params_.gadget, rng_,
        noiseParams());
    if (useHybridKeySwitch()) {
        hybridRelin_ = rlwe::makeHybridKeySwitchKey(sk_, s2, rng_,
                                                    noiseParams());
        hybridConj_ = rlwe::makeHybridAutomorphismKey(
            sk_, encoder_.conjugationExponent(), rng_, noiseParams());
    }
}

const rlwe::HybridKeySwitchKey&
Context::hybridRelinKey() const
{
    HEAP_CHECK(useHybridKeySwitch(), "hybrid switching disabled");
    return hybridRelin_;
}

const rlwe::HybridKeySwitchKey&
Context::hybridConjugationKey() const
{
    HEAP_CHECK(useHybridKeySwitch(), "hybrid switching disabled");
    return hybridConj_;
}

const rlwe::HybridKeySwitchKey&
Context::hybridRotationKey(int64_t steps) const
{
    const auto it = hybridRotKeys_.find(normalizeStep(steps));
    HEAP_CHECK(it != hybridRotKeys_.end(),
               "hybrid rotation key for step " << steps
                                               << " was not generated");
    return it->second;
}

int64_t
Context::normalizeStep(int64_t steps) const
{
    const auto half = static_cast<int64_t>(params_.n / 2);
    int64_t r = steps % half;
    if (r < 0) {
        r += half;
    }
    return r;
}

void
Context::makeRotationKeys(std::span<const int64_t> steps)
{
    for (const int64_t raw : steps) {
        const int64_t s = normalizeStep(raw);
        if (s == 0 || rotKeys_.contains(s)) {
            continue;
        }
        const uint64_t t = encoder_.rotationExponent(s);
        rotKeys_.emplace(s, rlwe::makeAutomorphismKey(
                                sk_, t, params_.gadget, rng_,
                                noiseParams()));
        if (useHybridKeySwitch()) {
            hybridRotKeys_.emplace(
                s, rlwe::makeHybridAutomorphismKey(sk_, t, rng_,
                                                   noiseParams()));
        }
    }
}

const rlwe::GadgetCiphertext&
Context::rotationKey(int64_t steps) const
{
    const auto it = rotKeys_.find(normalizeStep(steps));
    HEAP_CHECK(it != rotKeys_.end(),
               "rotation key for step " << steps
                                        << " was not generated");
    return it->second;
}

bool
Context::hasRotationKey(int64_t steps) const
{
    return rotKeys_.contains(normalizeStep(steps));
}

double
Context::logQBits(size_t level) const
{
    HEAP_CHECK(level >= 1 && level <= basis_->size(),
               "level out of range: " << level);
    double bits = 0;
    for (size_t i = 0; i < level; ++i) {
        bits += std::log2(static_cast<double>(basis_->modulus(i)));
    }
    return bits;
}

double
Context::noiseBudgetBits(const Ciphertext& ct) const
{
    if (!ct.budget.tracked) {
        return std::numeric_limits<double>::infinity();
    }
    // Decryption fails when the per-coefficient peak of m + e wraps
    // past q/2; allow marginSigmas tails on the noise and a 4x
    // RMS-to-peak allowance on the message.
    const double load = guard_.marginSigmas * ct.budget.sigma
                        + 4.0 * ct.budget.messageRms;
    if (load <= 0) {
        return std::numeric_limits<double>::infinity();
    }
    return logQBits(ct.level()) - 1.0 - std::log2(load);
}

double
Context::noisePrecisionBits(const Ciphertext& ct) const
{
    if (!ct.budget.tracked || ct.budget.sigma <= 0 || ct.scale <= 0) {
        return std::numeric_limits<double>::infinity();
    }
    return std::log2(ct.scale / ct.budget.sigma);
}

void
Context::noiseGuardCheck(const Ciphertext& ct, const char* op) const
{
    if (!ct.budget.tracked) {
        return;
    }
    const double budget = noiseBudgetBits(ct);
    const double precision = noisePrecisionBits(ct);
    stats_.noteOp(budget);
    if (guard_.policy == NoiseGuardPolicy::Off) {
        return;
    }
    NoiseTripKind kind;
    if (budget <= 0) {
        kind = NoiseTripKind::DecryptionFailure;
    } else if (precision <= guard_.minPrecisionBits) {
        kind = NoiseTripKind::Precision;
    } else {
        return;
    }
    stats_.noteTrip();
    NoiseEvent ev;
    ev.kind = kind;
    ev.op = op;
    ev.sigma = ct.budget.sigma;
    ev.scale = ct.scale;
    ev.precisionBits = precision;
    ev.budgetBits = budget;
    ev.opChain = ct.budget.opChain();
    const char* what = kind == NoiseTripKind::DecryptionFailure
                           ? "decryption-failure"
                           : "precision";
    switch (guard_.policy) {
    case NoiseGuardPolicy::Warn:
        std::fprintf(stderr,
                     "heap: noise guard (%s) tripped at op '%s': "
                     "sigma=%.3g scale=%.3g budget=%.1f bits "
                     "precision=%.1f bits; op chain: %s\n",
                     what, op, ev.sigma, ev.scale, ev.budgetBits,
                     ev.precisionBits, ev.opChain.c_str());
        break;
    case NoiseGuardPolicy::Throw:
        HEAP_FATAL("noise guard ("
                   << what << ") tripped at op '" << op
                   << "': predicted sigma " << ev.sigma << " at scale "
                   << ev.scale << ", remaining budget "
                   << ev.budgetBits << " bits, precision "
                   << ev.precisionBits << " bits; op chain: "
                   << ev.opChain);
        break;
    case NoiseGuardPolicy::Callback:
        if (guard_.callback) {
            guard_.callback(ev);
        }
        break;
    case NoiseGuardPolicy::Off:
        break;
    }
}

Ciphertext
Context::encryptCoeffs(std::span<const int64_t> coeffs, double scale,
                       size_t slots, size_t level) const
{
    HEAP_CHECK(level >= 1 && level <= maxLevel(),
               "level out of range: " << level);
    auto msg = math::rnsFromSigned(basis_, level,
                                   std::vector<int64_t>(coeffs.begin(),
                                                        coeffs.end()));
    msg.toEval();

    // Public-key encryption: ct = v * pk + (e0, e1) + (0, m).
    const auto v = math::sampleTernary(params_.n, rng_);
    auto vPoly = math::rnsFromSigned(basis_, level, v);
    vPoly.toEval();

    Ciphertext out;
    out.scale = scale;
    out.slots = slots;
    out.ct.a = pk_.key.a.restrictedTo(level);
    out.ct.a.mulPointwiseInPlace(vPoly);
    out.ct.b = pk_.key.b.restrictedTo(level);
    out.ct.b.mulPointwiseInPlace(vPoly);

    const auto noise = noiseParams();
    auto e0 = math::rnsFromSigned(
        basis_, level,
        math::sampleGaussian(params_.n, noise.errorStdDev, rng_));
    e0.toEval();
    auto e1 = math::rnsFromSigned(
        basis_, level,
        math::sampleGaussian(params_.n, noise.errorStdDev, rng_));
    e1.toEval();
    out.ct.a.addInPlace(e0);
    out.ct.b.addInPlace(e1);
    out.ct.b.addInPlace(msg);

    // Fresh budget: public-key noise plus the exact coefficient RMS
    // of the encoded message (metadata only — never alters bytes).
    out.budget.tracked = true;
    out.budget.sigma = NoiseEstimator(*this).freshPublic();
    double sum = 0;
    for (const int64_t c : coeffs) {
        sum += static_cast<double>(c) * static_cast<double>(c);
    }
    out.budget.messageRms =
        std::sqrt(sum / static_cast<double>(params_.n));
    noiseGuardCheck(out, "encrypt");
    return out;
}

Ciphertext
Context::encrypt(std::span<const Complex> values) const
{
    const auto coeffs = encoder_.encode(values, params_.scale);
    return encryptCoeffs(coeffs, params_.scale, values.size(),
                         maxLevel());
}

Ciphertext
Context::encrypt(std::span<const double> values) const
{
    const auto coeffs = encoder_.encodeReal(values, params_.scale);
    return encryptCoeffs(coeffs, params_.scale, values.size(),
                         maxLevel());
}

std::vector<Complex>
Context::decrypt(const Ciphertext& ct) const
{
    const auto coeffs = rlwe::decryptCentered(ct.ct, sk_);
    return encoder_.decode(coeffs, ct.scale, ct.slots);
}

std::vector<long double>
Context::decryptCoeffs(const Ciphertext& ct) const
{
    return rlwe::decryptCentered(ct.ct, sk_);
}

} // namespace heap::ckks
