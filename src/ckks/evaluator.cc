#include "ckks/evaluator.h"

#include <cmath>

#include "ckks/noise.h"
#include "common/check.h"

namespace heap::ckks {

namespace {

/** Exact RMS of a signed coefficient vector. */
double
coeffVectorRms(std::span<const int64_t> coeffs, size_t n)
{
    double sum = 0;
    for (const int64_t c : coeffs) {
        sum += static_cast<double>(c) * static_cast<double>(c);
    }
    return std::sqrt(sum / static_cast<double>(n));
}

} // namespace

NoiseBudget
Evaluator::mergedBudget(const NoiseBudget& a, const NoiseBudget& b)
{
    NoiseBudget m = a;
    m.tracked = a.tracked && b.tracked;
    m.absorbCounters(b);
    return m;
}

Plaintext
Evaluator::makePlaintext(std::span<const Complex> values, double scale,
                         size_t level) const
{
    const auto coeffs = ctx_->encoder().encode(values, scale);
    const double rms = coeffVectorRms(coeffs, ctx_->params().n);
    auto poly = math::rnsFromSigned(ctx_->basis(), level, coeffs);
    poly.toEval();
    return Plaintext{std::move(poly), scale, values.size(), rms};
}

Plaintext
Evaluator::makePlaintext(std::span<const double> values, double scale,
                         size_t level) const
{
    std::vector<Complex> z(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        z[i] = Complex(values[i], 0);
    }
    return makePlaintext(z, scale, level);
}

Plaintext
Evaluator::makeConstant(double value, double scale, size_t slots,
                        size_t level) const
{
    // A slot-constant decodes from a constant polynomial: encode
    // directly as round(value * scale) in the constant coefficient.
    std::vector<int64_t> coeffs(ctx_->params().n, 0);
    coeffs[0] = static_cast<int64_t>(std::llround(value * scale));
    const double rms = coeffVectorRms(coeffs, ctx_->params().n);
    auto poly = math::rnsFromSigned(ctx_->basis(), level, coeffs);
    poly.toEval();
    return Plaintext{std::move(poly), scale, slots, rms};
}

void
Evaluator::checkScalesMatch(double s1, double s2) const
{
    // Prime-chain drift leaves scales within ~0.1% of each other
    // after equal-depth paths; larger gaps indicate a user error.
    HEAP_CHECK(std::abs(s1 - s2) <= 1e-3 * std::max(s1, s2),
               "scale mismatch: " << s1 << " vs " << s2
                                  << " (rescale or adjust first)");
}

Ciphertext
Evaluator::add(const Ciphertext& a, const Ciphertext& b) const
{
    checkScalesMatch(a.scale, b.scale);
    Ciphertext x = a, y = b;
    alignLevels(x, y);
    x.ct.toEval();
    y.ct.toEval();
    x.ct.addInPlace(y.ct);
    x.budget = mergedBudget(a.budget, b.budget);
    x.budget.sigma =
        NoiseEstimator(*ctx_).afterAdd(a.budget.sigma, b.budget.sigma);
    x.budget.messageRms =
        std::hypot(a.budget.messageRms, b.budget.messageRms);
    ++x.budget.adds;
    ctx_->noiseGuardCheck(x, "add");
    return x;
}

Ciphertext
Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const
{
    checkScalesMatch(a.scale, b.scale);
    Ciphertext x = a, y = b;
    alignLevels(x, y);
    x.ct.toEval();
    y.ct.toEval();
    x.ct.subInPlace(y.ct);
    x.budget = mergedBudget(a.budget, b.budget);
    x.budget.sigma =
        NoiseEstimator(*ctx_).afterAdd(a.budget.sigma, b.budget.sigma);
    x.budget.messageRms =
        std::hypot(a.budget.messageRms, b.budget.messageRms);
    ++x.budget.adds;
    ctx_->noiseGuardCheck(x, "sub");
    return x;
}

Ciphertext
Evaluator::negate(const Ciphertext& a) const
{
    Ciphertext x = a;
    x.ct.negInPlace();
    return x;
}

Ciphertext
Evaluator::addPlain(const Ciphertext& a, const Plaintext& p) const
{
    checkScalesMatch(a.scale, p.scale);
    HEAP_CHECK(p.poly.limbCount() >= a.level(),
               "plaintext level too low");
    Ciphertext x = a;
    x.ct.toEval();
    x.ct.b.addInPlace(p.poly.restrictedTo(a.level()));
    x.budget.messageRms = std::hypot(a.budget.messageRms, p.coeffRms);
    ++x.budget.adds;
    ctx_->noiseGuardCheck(x, "addPlain");
    return x;
}

Ciphertext
Evaluator::subPlain(const Ciphertext& a, const Plaintext& p) const
{
    checkScalesMatch(a.scale, p.scale);
    HEAP_CHECK(p.poly.limbCount() >= a.level(),
               "plaintext level too low");
    Ciphertext x = a;
    x.ct.toEval();
    x.ct.b.subInPlace(p.poly.restrictedTo(a.level()));
    x.budget.messageRms = std::hypot(a.budget.messageRms, p.coeffRms);
    ++x.budget.adds;
    ctx_->noiseGuardCheck(x, "subPlain");
    return x;
}

Ciphertext
Evaluator::multiply(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext x = a, y = b;
    alignLevels(x, y);
    x.ct.toEval();
    y.ct.toEval();

    // Tensor: d0 = b1*b2, d1 = a1*b2 + a2*b1, d2 = a1*a2.
    math::RnsPoly d0 = x.ct.b;
    d0.mulPointwiseInPlace(y.ct.b);
    math::RnsPoly d1 = x.ct.a;
    d1.mulPointwiseInPlace(y.ct.b);
    math::RnsPoly d1b = y.ct.a;
    d1b.mulPointwiseInPlace(x.ct.b);
    d1.addInPlace(d1b);
    math::RnsPoly d2 = x.ct.a;
    d2.mulPointwiseInPlace(y.ct.a);

    // Relinearize d2 (an s^2 component) down to (a, b); the hybrid
    // path is both quieter and cheaper when a special prime exists.
    d2.toCoeff();
    rlwe::Ciphertext relin =
        ctx_->useHybridKeySwitch()
            ? rlwe::applyHybrid(d2, ctx_->hybridRelinKey())
            : rlwe::gadgetApply(d2, ctx_->relinKey());

    Ciphertext out;
    out.scale = x.scale * y.scale;
    out.slots = std::max(x.slots, y.slots);
    out.ct.a = std::move(d1);
    out.ct.a.addInPlace(relin.a);
    out.ct.b = std::move(d0);
    out.ct.b.addInPlace(relin.b);
    out.budget = mergedBudget(a.budget, b.budget);
    out.budget.sigma = NoiseEstimator(*ctx_).afterMultiply(
        a.budget.sigma, b.budget.sigma, a.budget.messageRms,
        b.budget.messageRms);
    out.budget.messageRms =
        std::sqrt(static_cast<double>(ctx_->params().n))
        * a.budget.messageRms * b.budget.messageRms;
    ++out.budget.mults;
    ++out.budget.keySwitches;
    ctx_->noiseGuardCheck(out, "multiply");
    return out;
}

Ciphertext
Evaluator::square(const Ciphertext& a) const
{
    return multiply(a, a);
}

Ciphertext
Evaluator::multiplyPlain(const Ciphertext& a, const Plaintext& p) const
{
    HEAP_CHECK(p.poly.limbCount() >= a.level(),
               "plaintext level too low");
    Ciphertext x = a;
    x.ct.toEval();
    const auto pt = p.poly.restrictedTo(a.level());
    x.ct.a.mulPointwiseInPlace(pt);
    x.ct.b.mulPointwiseInPlace(pt);
    x.scale = a.scale * p.scale;
    const double rootN = std::sqrt(static_cast<double>(ctx_->params().n));
    x.budget.sigma = rootN * p.coeffRms * a.budget.sigma;
    x.budget.messageRms = rootN * p.coeffRms * a.budget.messageRms;
    ++x.budget.mults;
    ctx_->noiseGuardCheck(x, "multiplyPlain");
    return x;
}

Ciphertext
Evaluator::multiplyScalar(const Ciphertext& a, double value) const
{
    const auto p = makeConstant(value, ctx_->params().scale, a.slots,
                                a.level());
    return multiplyPlain(a, p);
}

Ciphertext
Evaluator::addScalar(const Ciphertext& a, double value) const
{
    const auto pt = makeConstant(value, a.scale, a.slots, a.level());
    return addPlain(a, pt);
}

Ciphertext
Evaluator::power(const Ciphertext& a, size_t k) const
{
    HEAP_CHECK(k >= 1, "power expects k >= 1");
    // Square-and-multiply over the bits of k, most significant first.
    int top = 63;
    while (((k >> top) & 1) == 0) {
        --top;
    }
    Ciphertext acc = a;
    for (int bit = top - 1; bit >= 0; --bit) {
        acc = multiplyRescale(acc, acc);
        if ((k >> bit) & 1) {
            Ciphertext base = a;
            alignLevels(acc, base);
            base.scale = acc.scale; // drift tolerance
            acc = multiplyRescale(acc, base);
        }
    }
    return acc;
}

Ciphertext
Evaluator::innerSum(const Ciphertext& a, size_t count) const
{
    HEAP_CHECK(count >= 1 && (count & (count - 1)) == 0
                   && count <= a.slots,
               "innerSum count must be a power of two <= slots");
    Ciphertext acc = a;
    for (size_t s = 1; s < count; s <<= 1) {
        acc = add(acc, rotate(acc, static_cast<int64_t>(s)));
    }
    return acc;
}

void
Evaluator::rescaleInPlace(Ciphertext& a) const
{
    HEAP_CHECK(a.level() >= 2, "cannot rescale at level 1");
    const uint64_t q = ctx_->basis()->modulus(a.level() - 1);
    a.budget.sigma =
        NoiseEstimator(*ctx_).afterRescale(a.budget.sigma,
                                           a.level() - 1);
    a.budget.messageRms /= static_cast<double>(q);
    ++a.budget.rescales;
    a.ct.rescaleLastLimb();
    a.scale /= static_cast<double>(q);
    ctx_->noiseGuardCheck(a, "rescale");
}

Ciphertext
Evaluator::rescale(const Ciphertext& a) const
{
    Ciphertext x = a;
    rescaleInPlace(x);
    return x;
}

Ciphertext
Evaluator::multiplyRescale(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext x = multiply(a, b);
    rescaleInPlace(x);
    return x;
}

Ciphertext
Evaluator::rotate(const Ciphertext& a, int64_t steps) const
{
    const size_t half = ctx_->params().n / 2;
    int64_t r = steps % static_cast<int64_t>(half);
    if (r < 0) {
        r += static_cast<int64_t>(half);
    }
    if (r == 0) {
        return a;
    }
    const uint64_t t = ctx_->encoder().rotationExponent(r);
    Ciphertext out = a;
    out.ct = ctx_->useHybridKeySwitch()
                 ? rlwe::evalAutoHybrid(a.ct, t,
                                        ctx_->hybridRotationKey(r))
                 : rlwe::evalAuto(a.ct, t, ctx_->rotationKey(r));
    out.budget.sigma = NoiseEstimator(*ctx_).afterRotate(a.budget.sigma);
    ++out.budget.rotations;
    ++out.budget.keySwitches;
    ctx_->noiseGuardCheck(out, "rotate");
    return out;
}

Ciphertext
Evaluator::conjugate(const Ciphertext& a) const
{
    Ciphertext out = a;
    out.ct =
        ctx_->useHybridKeySwitch()
            ? rlwe::evalAutoHybrid(a.ct,
                                   ctx_->encoder().conjugationExponent(),
                                   ctx_->hybridConjugationKey())
            : rlwe::evalAuto(a.ct,
                             ctx_->encoder().conjugationExponent(),
                             ctx_->conjugationKey());
    out.budget.sigma = NoiseEstimator(*ctx_).afterRotate(a.budget.sigma);
    ++out.budget.conjugations;
    ++out.budget.keySwitches;
    ctx_->noiseGuardCheck(out, "conjugate");
    return out;
}

void
Evaluator::dropToLevel(Ciphertext& a, size_t level) const
{
    HEAP_CHECK(level >= 1 && level <= a.level(),
               "bad target level " << level);
    if (level < a.level()) {
        a.ct.dropLimbs(a.level() - level);
        // Sigma is unchanged but the budget shrinks with q: re-check.
        ctx_->noiseGuardCheck(a, "dropToLevel");
    }
}

void
Evaluator::alignLevels(Ciphertext& a, Ciphertext& b) const
{
    const size_t level = std::min(a.level(), b.level());
    dropToLevel(a, level);
    dropToLevel(b, level);
}

} // namespace heap::ckks
