#include "ckks/serialize.h"

namespace heap::ckks {

namespace {

constexpr uint64_t kCiphertextMagicV1 = 0x48454150'43543031ULL; // HEAPCT01
constexpr uint64_t kCiphertextMagic = 0x48454150'43543032ULL;   // HEAPCT02
constexpr uint64_t kGadgetMagic = 0x48454150'474b3031ULL;       // HEAPGK01

void
checkBasisTag(ByteReader& r, const math::RnsBasis& basis)
{
    const uint64_t n = r.u64();
    HEAP_CHECK(n == basis.n(),
               "ring dimension mismatch: data " << n << ", context "
                                                << basis.n());
    const auto moduli = r.u64Vec(64);
    HEAP_CHECK(moduli.size() <= basis.size(),
               "data uses more limbs than the context basis");
    for (size_t i = 0; i < moduli.size(); ++i) {
        HEAP_CHECK(moduli[i] == basis.modulus(i),
                   "modulus chain mismatch at limb " << i);
    }
}

void
writeBasisTag(const math::RnsBasis& basis, size_t limbs, ByteWriter& w)
{
    w.u64(basis.n());
    w.u64(limbs);
    for (size_t i = 0; i < limbs; ++i) {
        w.u64(basis.modulus(i));
    }
}

} // namespace

void
savePoly(const math::RnsPoly& p, ByteWriter& w)
{
    w.u64(p.domain() == math::Domain::Eval ? 1 : 0);
    w.u64(p.limbCount());
    for (size_t i = 0; i < p.limbCount(); ++i) {
        w.u64Span(p.limb(i));
    }
}

math::RnsPoly
loadPoly(ByteReader& r, std::shared_ptr<const math::RnsBasis> basis)
{
    const uint64_t domainTag = r.u64();
    HEAP_CHECK(domainTag <= 1, "corrupt polynomial domain tag");
    const uint64_t limbs = r.u64();
    HEAP_CHECK(limbs >= 1 && limbs <= basis->size(),
               "limb count out of range: " << limbs);
    math::RnsPoly p(basis, limbs,
                    domainTag == 1 ? math::Domain::Eval
                                   : math::Domain::Coeff);
    for (size_t i = 0; i < limbs; ++i) {
        const auto data = r.u64Vec(basis->n());
        HEAP_CHECK(data.size() == basis->n(),
                   "coefficient count mismatch in limb "
                       << i << " (byte offset " << r.pos() << ")");
        const uint64_t q = basis->modulus(i);
        for (size_t j = 0; j < data.size(); ++j) {
            HEAP_CHECK(data[j] < q, "coefficient out of range at limb "
                                        << i << ", index " << j);
            p.limb(i)[j] = data[j];
        }
    }
    return p;
}

void
saveRlwe(const rlwe::Ciphertext& ct, ByteWriter& w)
{
    savePoly(ct.a, w);
    savePoly(ct.b, w);
}

rlwe::Ciphertext
loadRlwe(ByteReader& r, std::shared_ptr<const math::RnsBasis> basis)
{
    rlwe::Ciphertext ct;
    ct.a = loadPoly(r, basis);
    ct.b = loadPoly(r, std::move(basis));
    HEAP_CHECK(ct.a.limbCount() == ct.b.limbCount()
                   && ct.a.domain() == ct.b.domain(),
               "inconsistent ciphertext components");
    return ct;
}

std::vector<uint8_t>
saveCiphertext(const Ciphertext& ct)
{
    ByteWriter w;
    w.u64(kCiphertextMagic);
    writeBasisTag(ct.ct.a.basis(), ct.level(), w);
    w.f64(ct.scale);
    w.u64(ct.slots);
    saveNoiseBudget(ct.budget, w);
    saveRlwe(ct.ct, w);
    return w.bytes();
}

Ciphertext
loadCiphertext(std::span<const uint8_t> data, const Context& ctx)
{
    ByteReader r(data);
    const uint64_t magic = r.u64();
    HEAP_CHECK(magic == kCiphertextMagic || magic == kCiphertextMagicV1,
               "not a HEAP ciphertext (bad magic)");
    checkBasisTag(r, *ctx.basis());
    Ciphertext ct;
    ct.scale = r.f64();
    HEAP_CHECK(ct.scale > 0, "corrupt scale");
    ct.slots = r.u64();
    HEAP_CHECK(ct.slots >= 1 && ct.slots <= ctx.params().n / 2,
               "corrupt slot count");
    if (magic == kCiphertextMagic) {
        ct.budget = loadNoiseBudget(r);
    }
    // V1 payloads predate noise tracking: budget stays untracked.
    ct.ct = loadRlwe(r, ctx.basis());
    HEAP_CHECK(r.atEnd(), "trailing bytes after ciphertext");
    return ct;
}

std::vector<uint8_t>
saveGadget(const rlwe::GadgetCiphertext& key)
{
    HEAP_CHECK(key.rowCount() > 0, "empty gadget ciphertext");
    ByteWriter w;
    w.u64(kGadgetMagic);
    const auto& p = key.params();
    writeBasisTag(key.row(0, 0).a.basis(),
                  key.row(0, 0).a.limbCount(), w);
    w.u64(static_cast<uint64_t>(p.baseBits));
    w.u64(static_cast<uint64_t>(p.digitsPerLimb));
    w.u64(p.balanced ? 1 : 0);
    w.u64(key.rowCount());
    for (size_t i = 0;
         i < key.rowCount()
             / static_cast<size_t>(p.digitsPerLimb);
         ++i) {
        for (int j = 0; j < p.digitsPerLimb; ++j) {
            saveRlwe(key.row(i, static_cast<size_t>(j)), w);
        }
    }
    return w.bytes();
}

rlwe::GadgetCiphertext
loadGadget(std::span<const uint8_t> data, const Context& ctx)
{
    ByteReader r(data);
    HEAP_CHECK(r.u64() == kGadgetMagic,
               "not a HEAP gadget key (bad magic)");
    checkBasisTag(r, *ctx.basis());
    rlwe::GadgetParams p;
    p.baseBits = static_cast<int>(r.u64());
    p.digitsPerLimb = static_cast<int>(r.u64());
    p.balanced = r.u64() != 0;
    p.validateFor(*ctx.basis());
    const uint64_t rows = r.u64();
    HEAP_CHECK(rows >= 1 && rows <= 4096, "corrupt row count");
    std::vector<rlwe::Ciphertext> cts;
    cts.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
        cts.push_back(loadRlwe(r, ctx.basis()));
    }
    HEAP_CHECK(r.atEnd(), "trailing bytes after gadget key");
    return rlwe::GadgetCiphertext(std::move(cts), p);
}

} // namespace heap::ckks
