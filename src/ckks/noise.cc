#include "ckks/noise.h"

#include <cmath>

#include "common/check.h"

namespace heap::ckks {

namespace {

/** Density of nonzero secret coefficients. */
double
secretDensity(const Context& ctx)
{
    if (ctx.params().secretHamming) {
        return static_cast<double>(*ctx.params().secretHamming)
               / static_cast<double>(ctx.params().n);
    }
    return 2.0 / 3.0;
}

} // namespace

double
NoiseEstimator::freshSymmetric() const
{
    return ctx_->params().errorStdDev;
}

double
NoiseEstimator::freshPublic() const
{
    // phase error = v*e_pk + e1 + e0*s with ternary v, s.
    const double n = static_cast<double>(ctx_->params().n);
    const double sigma = ctx_->params().errorStdDev;
    const double rho = secretDensity(*ctx_);
    return sigma * std::sqrt(n * (2.0 / 3.0) + 1.0 + n * rho);
}

double
NoiseEstimator::afterAdd(double e1, double e2) const
{
    return std::hypot(e1, e2);
}

double
NoiseEstimator::gadgetNoise(size_t limbs,
                            const rlwe::GadgetParams& g) const
{
    const double n = static_cast<double>(ctx_->params().n);
    const double sigma = ctx_->params().errorStdDev;
    const double base = std::pow(2.0, g.baseBits);
    // Balanced digits: uniform in [-B/2, B/2]; unsigned: uniform in
    // [0, B) (variance B^2/12 plus the squared mean B/2).
    const double digitVar =
        g.balanced ? base * base / 12.0
                   : base * base / 12.0 + base * base / 4.0;
    const double terms = static_cast<double>(limbs)
                         * static_cast<double>(g.digitsPerLimb) * n;
    return sigma * std::sqrt(terms * digitVar);
}

double
NoiseEstimator::hybridNoise(size_t limbs) const
{
    const auto& basis = *ctx_->basis();
    HEAP_CHECK(limbs < basis.size(), "no special prime available");
    const double n = static_cast<double>(ctx_->params().n);
    const double sigma = ctx_->params().errorStdDev;
    const double p =
        static_cast<double>(basis.modulus(basis.size() - 1));
    // Centered per-limb digits of magnitude ~q_j/sqrt(12), divided by
    // P at ModDown, plus the ModDown rounding floor.
    double sumQ2 = 0;
    for (size_t j = 0; j < limbs; ++j) {
        const double q = static_cast<double>(basis.modulus(j));
        sumQ2 += q * q;
    }
    const double rho = secretDensity(*ctx_);
    const double switching = sigma / p * std::sqrt(n / 12.0 * sumQ2);
    const double rounding = std::sqrt((1.0 + rho * n) / 12.0);
    return std::hypot(switching, rounding);
}

double
NoiseEstimator::keySwitchNoise(size_t limbs) const
{
    if (ctx_->useHybridKeySwitch()) {
        return hybridNoise(limbs);
    }
    return gadgetNoise(limbs, ctx_->params().gadget);
}

double
NoiseEstimator::afterMultiply(double e1, double e2, double rms1,
                              double rms2) const
{
    const double n = static_cast<double>(ctx_->params().n);
    const double cross =
        std::sqrt(n * (rms1 * rms1 * e2 * e2 + rms2 * rms2 * e1 * e1));
    const double relin = keySwitchNoise(ctx_->maxLevel());
    return std::hypot(cross, relin);
}

double
NoiseEstimator::afterRescale(double e, size_t droppedLimbIndex) const
{
    HEAP_CHECK(droppedLimbIndex < ctx_->basis()->size(),
               "bad limb index");
    const double q = static_cast<double>(
        ctx_->basis()->modulus(droppedLimbIndex));
    const double n = static_cast<double>(ctx_->params().n);
    const double rho = secretDensity(*ctx_);
    const double rounding = std::sqrt((1.0 + rho * n) / 12.0);
    return std::hypot(e / q, rounding);
}

double
NoiseEstimator::afterRotate(double e) const
{
    return std::hypot(e, keySwitchNoise(ctx_->maxLevel()));
}

double
NoiseEstimator::messageRms(double slotRms, double scale) const
{
    // Parseval over the canonical embedding: slot energy is N times
    // the coefficient energy.
    return scale * slotRms / std::sqrt(static_cast<double>(
               ctx_->params().n));
}

double
NoiseEstimator::repackNoise(double inSigma, size_t count) const
{
    // Variance recurrence per tree level: v' = 2v + ks^2; after
    // log2(count) levels, v ~= count * (v0 + ks^2). The packing keys
    // are gadget keys at the full Qp basis.
    const double ks = gadgetNoise(ctx_->basis()->size(),
                                  ctx_->params().gadget);
    return std::sqrt(static_cast<double>(count))
           * std::hypot(inSigma, ks);
}

double
NoiseEstimator::measure(const Ciphertext& ct,
                        std::span<const Complex> expected) const
{
    const auto got = ctx_->decryptCoeffs(ct);
    const auto want =
        ctx_->encoder().encode(expected, ct.scale);
    double sum = 0;
    for (size_t i = 0; i < got.size(); ++i) {
        const double d = static_cast<double>(got[i])
                         - static_cast<double>(want[i]);
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(got.size()));
}

} // namespace heap::ckks
