/**
 * @file
 * Homomorphic Chebyshev-series evaluation with logarithmic
 * multiplicative depth.
 *
 * Chebyshev polynomials are built through the product identities
 * T_{2k} = 2 T_k^2 - 1 and T_{2k+1} = 2 T_k T_{k+1} - T_1, giving
 * depth ceil(log2(deg)) + 1 instead of deg. This powers the EvalMod
 * (scaled sine) step of the conventional-bootstrapping baseline and
 * the sigmoid evaluation in the logistic-regression application.
 */

#ifndef HEAP_CKKS_CHEBYSHEV_H
#define HEAP_CKKS_CHEBYSHEV_H

#include <functional>
#include <vector>

#include "ckks/evaluator.h"

namespace heap::ckks {

/**
 * Numerically fits f on [-1, 1] with a Chebyshev series of the given
 * degree (Chebyshev-Gauss quadrature). coeffs[k] multiplies T_k; the
 * k = 0 term is already halved.
 */
std::vector<double> chebyshevFit(const std::function<double(double)>& f,
                                 int degree);

/** Max |f(x) - series(x)| over a dense grid (fit diagnostics). */
double chebyshevMaxError(const std::function<double(double)>& f,
                         const std::vector<double>& coeffs);

/**
 * Evaluates sum_k coeffs[k] T_k(x) homomorphically; `x` must encrypt
 * slot values in [-1, 1]. Consumes ceil(log2(deg)) + 1 levels.
 */
Ciphertext evalChebyshev(const Evaluator& ev, const Ciphertext& x,
                         std::span<const double> coeffs);

/** Multiplicative depth evalChebyshev will consume for this degree. */
size_t chebyshevDepth(int degree);

} // namespace heap::ckks

#endif // HEAP_CKKS_CHEBYSHEV_H
