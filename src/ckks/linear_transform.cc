#include "ckks/linear_transform.h"

#include <cmath>

#include "common/check.h"

namespace heap::ckks {

namespace {

bool
nonZero(const std::vector<Complex>& v)
{
    for (const auto& c : v) {
        if (std::abs(c) > 1e-12) {
            return true;
        }
    }
    return false;
}

} // namespace

LinearTransform::LinearTransform(const Context& ctx, SlotMatrix matrix,
                                 bool useBsgs)
    : ctx_(&ctx), matrix_(std::move(matrix)),
      slots_(matrix_.size()), useBsgs_(useBsgs)
{
    // Slot rotations act on the full slot vector, so the transform is
    // defined for fully packed ciphertexts.
    HEAP_CHECK(slots_ == ctx.params().n / 2,
               "linear transform requires full packing (slots = N/2)");
    for (const auto& row : matrix_) {
        HEAP_CHECK(row.size() == slots_, "matrix must be square");
    }
    // Generalized diagonals: diag_d[k] = M[k][(k + d) mod n].
    diags_.assign(slots_, std::vector<Complex>(slots_));
    for (size_t d = 0; d < slots_; ++d) {
        for (size_t k = 0; k < slots_; ++k) {
            diags_[d][k] = matrix_[k][(k + d) % slots_];
        }
    }
    if (useBsgs_) {
        baby_ = static_cast<size_t>(
            std::ceil(std::sqrt(static_cast<double>(slots_))));
        giant_ = (slots_ + baby_ - 1) / baby_;
        // Pre-rotate each diagonal by -g*i so the giant-step rotation
        // can be applied after the inner sum.
        for (size_t i = 0; i < giant_; ++i) {
            for (size_t j = 0; j < baby_; ++j) {
                const size_t d = baby_ * i + j;
                if (d >= slots_ || i == 0) {
                    continue;
                }
                std::vector<Complex> pre(slots_);
                for (size_t k = 0; k < slots_; ++k) {
                    pre[k] =
                        diags_[d][(k + slots_ - (baby_ * i) % slots_)
                                  % slots_];
                }
                diags_[d] = std::move(pre);
            }
        }
    }
    diagNonZero_.resize(slots_);
    for (size_t d = 0; d < slots_; ++d) {
        diagNonZero_[d] = nonZero(diags_[d]);
    }
}

std::vector<int64_t>
LinearTransform::requiredRotations() const
{
    std::vector<int64_t> rots;
    if (!useBsgs_) {
        for (size_t d = 1; d < slots_; ++d) {
            if (diagNonZero_[d]) {
                rots.push_back(static_cast<int64_t>(d));
            }
        }
        return rots;
    }
    for (size_t j = 1; j < baby_; ++j) {
        rots.push_back(static_cast<int64_t>(j));
    }
    for (size_t i = 1; i < giant_; ++i) {
        rots.push_back(static_cast<int64_t>(baby_ * i));
    }
    return rots;
}

size_t
LinearTransform::rotationCount() const
{
    if (!useBsgs_) {
        size_t c = 0;
        for (size_t d = 1; d < slots_; ++d) {
            c += diagNonZero_[d];
        }
        return c;
    }
    return (baby_ - 1) + (giant_ - 1);
}

Ciphertext
LinearTransform::apply(const Evaluator& ev, const Ciphertext& ct) const
{
    HEAP_CHECK(ct.slots == slots_,
               "ciphertext slot count " << ct.slots
                                        << " != matrix dim " << slots_);
    HEAP_CHECK(ct.level() >= 2, "linear transform needs a spare level");
    const double ptScale = ctx_->params().scale;

    auto mulDiag = [&](const Ciphertext& c, size_t d) {
        const auto pt = ev.makePlaintext(
            std::span<const Complex>(diags_[d]), ptScale, c.level());
        return ev.multiplyPlain(c, pt);
    };

    Ciphertext acc;
    bool haveAcc = false;
    auto accumulate = [&](Ciphertext&& term) {
        if (!haveAcc) {
            acc = std::move(term);
            haveAcc = true;
        } else {
            acc = ev.add(acc, term);
        }
    };

    if (!useBsgs_) {
        for (size_t d = 0; d < slots_; ++d) {
            if (!diagNonZero_[d]) {
                continue;
            }
            const Ciphertext r =
                d == 0 ? ct : ev.rotate(ct, static_cast<int64_t>(d));
            accumulate(mulDiag(r, d));
        }
    } else {
        // Baby steps: rotations of the input.
        std::vector<Ciphertext> baby(baby_);
        std::vector<bool> babyReady(baby_, false);
        auto babyRot = [&](size_t j) -> const Ciphertext& {
            if (!babyReady[j]) {
                baby[j] = j == 0
                              ? ct
                              : ev.rotate(ct, static_cast<int64_t>(j));
                babyReady[j] = true;
            }
            return baby[j];
        };
        for (size_t i = 0; i < giant_; ++i) {
            Ciphertext inner;
            bool haveInner = false;
            for (size_t j = 0; j < baby_; ++j) {
                const size_t d = baby_ * i + j;
                if (d >= slots_ || !diagNonZero_[d]) {
                    continue;
                }
                Ciphertext term = mulDiag(babyRot(j), d);
                if (!haveInner) {
                    inner = std::move(term);
                    haveInner = true;
                } else {
                    inner = ev.add(inner, term);
                }
            }
            if (!haveInner) {
                continue;
            }
            if (i > 0) {
                inner = ev.rotate(
                    inner, static_cast<int64_t>((baby_ * i) % slots_));
            }
            accumulate(std::move(inner));
        }
    }
    HEAP_CHECK(haveAcc, "linear transform of the zero matrix");
    ev.rescaleInPlace(acc);
    return acc;
}

} // namespace heap::ckks
