/**
 * @file
 * Analytic noise estimator for the CKKS/TFHE pipeline.
 *
 * Tracks the standard deviation of the decryption-phase error in
 * coefficient units through each primitive, using the standard
 * central-limit heuristics (ternary secret of density 2/3, ring
 * products scale by sqrt(N) times the companion's RMS). Predictions
 * are order-accurate (validated within a small factor by tests) and
 * are used to pick gadget bases and level budgets — the same
 * trade-off the paper navigates when sizing d and the key formats.
 */

#ifndef HEAP_CKKS_NOISE_H
#define HEAP_CKKS_NOISE_H

#include "ckks/context.h"

namespace heap::ckks {

class NoiseEstimator {
  public:
    explicit NoiseEstimator(const Context& ctx)
        : ctx_(&ctx)
    {
    }

    /** Fresh symmetric encryption: sigma. */
    double freshSymmetric() const;

    /** Fresh public-key encryption: sigma * sqrt(2N/3 + ...). */
    double freshPublic() const;

    /** Sum/difference of independent errors. */
    double afterAdd(double e1, double e2) const;

    /**
     * Tensor + relinearize: m1*e2 + m2*e1 cross terms (messageRms =
     * RMS coefficient magnitude of each operand) plus the gadget
     * noise of the relinearization.
     */
    double afterMultiply(double e1, double e2, double rms1,
                         double rms2) const;

    /** Rescale: error divides by q_last, plus rounding ~sqrt(N/18). */
    double afterRescale(double e, size_t droppedLimbIndex) const;

    /** Rotation/conjugation: permutation + key switch. */
    double afterRotate(double e) const;

    /** Additive key-switch (gadget) noise at the given level. */
    double gadgetNoise(size_t limbs, const rlwe::GadgetParams& g) const;

    /** Additive hybrid (special-prime) key-switch noise. */
    double hybridNoise(size_t limbs) const;

    /** The key-switch noise of whichever method the context uses. */
    double keySwitchNoise(size_t limbs) const;

    /**
     * RMS coefficient magnitude of an encoded message with slot RMS
     * `slotRms` at scale `scale` (Parseval over the embedding).
     */
    double messageRms(double slotRms, double scale) const;

    /**
     * Output sigma of packRlwes over `count` ciphertexts of error
     * `inSigma`: the log2(count)-level automorphism tree compounds
     * the per-level doubling with one gadget key switch per merge,
     * ~ sqrt(count) * hypot(inSigma, ks).
     */
    double repackNoise(double inSigma, size_t count) const;

    /**
     * Measured phase-error standard deviation of `ct` against the
     * expected slot values (testing/diagnostics; needs the secret).
     */
    double measure(const Ciphertext& ct,
                   std::span<const Complex> expected) const;

  private:
    const Context* ctx_;
};

} // namespace heap::ckks

#endif // HEAP_CKKS_NOISE_H
