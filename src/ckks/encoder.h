/**
 * @file
 * CKKS encoder: canonical embedding between complex slot vectors and
 * negacyclic polynomial coefficients (Section II-A).
 *
 * A plaintext is a vector of up to N/2 complex slots; encode() maps it
 * through the special inverse FFT (evaluation points zeta^{5^i}, the
 * power-of-five orbit also used by the automorph unit) and scales by
 * Delta. Slot rotation corresponds to the Galois automorphism
 * X -> X^{5^r}; conjugation to X -> X^{-1}.
 */

#ifndef HEAP_CKKS_ENCODER_H
#define HEAP_CKKS_ENCODER_H

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace heap::ckks {

using Complex = std::complex<double>;

/**
 * Encoder/decoder for ring dimension N (slots = N/2), supporting
 * sparse packing with any power-of-two slot count <= N/2.
 */
class Encoder {
  public:
    explicit Encoder(size_t n);

    size_t n() const { return n_; }
    size_t maxSlots() const { return n_ / 2; }

    /**
     * Encodes `values` (power-of-two length <= N/2) into integer
     * coefficients scaled by `scale`.
     */
    std::vector<int64_t> encode(std::span<const Complex> values,
                                double scale) const;

    /** Real-vector convenience. */
    std::vector<int64_t> encodeReal(std::span<const double> values,
                                    double scale) const;

    /**
     * Unrounded, unscaled embedding of a full slot vector into real
     * coefficients (used to probe the embedding when building
     * homomorphic DFT matrices). @pre values.size() == N/2.
     */
    std::vector<double> encodeRaw(std::span<const Complex> values) const;

    /** Decodes centered coefficients into `slots` complex values. */
    std::vector<Complex> decode(std::span<const long double> coeffs,
                                double scale, size_t slots) const;

    /** Decodes from exact signed coefficients. */
    std::vector<Complex> decode(std::span<const int64_t> coeffs,
                                double scale, size_t slots) const;

    /** Galois exponent 5^steps mod 2N implementing a left slot
     *  rotation by `steps` (negative steps rotate right). */
    uint64_t rotationExponent(int64_t steps) const;

    /** Galois exponent 2N-1 implementing slot conjugation. */
    uint64_t conjugationExponent() const { return 2 * n_ - 1; }

  private:
    /** Slot -> coefficient-embedding direction (decode). */
    void fftSpecial(std::vector<Complex>& vals) const;
    /** Coefficient-embedding -> slot direction (encode). */
    void fftSpecialInv(std::vector<Complex>& vals) const;

    size_t n_;
    std::vector<Complex> ksiPows_;    // exp(2 pi i j / 2N)
    std::vector<uint64_t> rotGroup_;  // 5^i mod 2N
};

} // namespace heap::ckks

#endif // HEAP_CKKS_ENCODER_H
