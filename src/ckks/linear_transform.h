/**
 * @file
 * Homomorphic linear transforms on CKKS slots via the diagonal method,
 * with optional baby-step/giant-step (BSGS) rotation scheduling [28].
 *
 * Used by the conventional-bootstrapping baseline (CoeffToSlot /
 * SlotToCoeff, Section VIII "CKKS Acceleration Efforts") and by
 * matrix-vector workloads in the example applications.
 */

#ifndef HEAP_CKKS_LINEAR_TRANSFORM_H
#define HEAP_CKKS_LINEAR_TRANSFORM_H

#include <vector>

#include "ckks/evaluator.h"

namespace heap::ckks {

/** Dense slot-space matrix (row-major, slots x slots). */
using SlotMatrix = std::vector<std::vector<Complex>>;

/**
 * Homomorphic matrix-vector product out_slots = M * in_slots.
 */
class LinearTransform {
  public:
    /**
     * Precomputes the generalized diagonals of M.
     * @param slots matrix dimension (must divide/equal ct slots)
     * @param useBsgs baby-step/giant-step scheduling (sqrt(n)+sqrt(n)
     *        rotations instead of n)
     */
    LinearTransform(const Context& ctx, SlotMatrix matrix, bool useBsgs);

    /** Slot steps whose rotation keys apply() requires. */
    std::vector<int64_t> requiredRotations() const;

    /** Applies the transform; consumes one multiplicative level. */
    Ciphertext apply(const Evaluator& ev, const Ciphertext& ct) const;

    size_t slots() const { return slots_; }
    bool usesBsgs() const { return useBsgs_; }

    /** Number of ciphertext rotations one apply() performs. */
    size_t rotationCount() const;

  private:
    const Context* ctx_;
    SlotMatrix matrix_;
    size_t slots_;
    bool useBsgs_;
    size_t baby_ = 0;  // g
    size_t giant_ = 0; // n / g
    // diag_[d][k] = M[k][(k + d) mod n]; for BSGS, pre-rotated.
    std::vector<std::vector<Complex>> diags_;
    std::vector<bool> diagNonZero_;
};

} // namespace heap::ckks

#endif // HEAP_CKKS_LINEAR_TRANSFORM_H
