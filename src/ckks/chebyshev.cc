#include "ckks/chebyshev.h"

#include <cmath>
#include <map>
#include <numbers>

#include "common/check.h"

namespace heap::ckks {

std::vector<double>
chebyshevFit(const std::function<double(double)>& f, int degree)
{
    HEAP_CHECK(degree >= 1 && degree <= 2048, "bad Chebyshev degree");
    const int m = 2 * (degree + 1);
    std::vector<double> fx(m);
    for (int j = 0; j < m; ++j) {
        const double theta =
            std::numbers::pi * (j + 0.5) / static_cast<double>(m);
        fx[j] = f(std::cos(theta));
    }
    std::vector<double> coeffs(degree + 1);
    for (int k = 0; k <= degree; ++k) {
        double s = 0;
        for (int j = 0; j < m; ++j) {
            const double theta =
                std::numbers::pi * (j + 0.5) / static_cast<double>(m);
            s += fx[j] * std::cos(k * theta);
        }
        coeffs[k] = 2.0 * s / static_cast<double>(m);
    }
    coeffs[0] /= 2.0;
    return coeffs;
}

double
chebyshevMaxError(const std::function<double(double)>& f,
                  const std::vector<double>& coeffs)
{
    double worst = 0;
    for (int i = 0; i <= 1000; ++i) {
        const double x = -1.0 + 2.0 * i / 1000.0;
        // Clenshaw evaluation.
        double b1 = 0, b2 = 0;
        for (size_t k = coeffs.size(); k-- > 1;) {
            const double b0 = 2 * x * b1 - b2 + coeffs[k];
            b2 = b1;
            b1 = b0;
        }
        const double val = x * b1 - b2 + coeffs[0];
        worst = std::max(worst, std::abs(f(x) - val));
    }
    return worst;
}

size_t
chebyshevDepth(int degree)
{
    size_t d = 0;
    while ((1 << d) < degree) {
        ++d;
    }
    return d + 1;
}

Ciphertext
evalChebyshev(const Evaluator& ev, const Ciphertext& x,
              std::span<const double> coeffs)
{
    HEAP_CHECK(coeffs.size() >= 2, "need degree >= 1");

    std::map<size_t, Ciphertext> T;
    T.emplace(1, x);
    // T_k via T_{2k} = 2 T_k^2 - 1, T_{2k+1} = 2 T_k T_{k+1} - T_1.
    std::function<const Ciphertext&(size_t)> getT =
        [&](size_t k) -> const Ciphertext& {
        auto it = T.find(k);
        if (it != T.end()) {
            return it->second;
        }
        Ciphertext r;
        if (k % 2 == 0) {
            const Ciphertext h = getT(k / 2);
            r = ev.multiplyRescale(h, h);
            r = ev.add(r, r);
            const auto one =
                ev.makeConstant(1.0, r.scale, r.slots, r.level());
            r = ev.subPlain(r, one);
        } else {
            const Ciphertext a = getT(k / 2);
            const Ciphertext b = getT(k / 2 + 1);
            r = ev.multiplyRescale(a, b);
            r = ev.add(r, r);
            Ciphertext t1 = x;
            ev.dropToLevel(t1, r.level());
            t1.scale = r.scale; // within the scale-drift tolerance
            r = ev.sub(r, t1);
        }
        return T.emplace(k, std::move(r)).first->second;
    };

    Ciphertext acc;
    bool haveAcc = false;
    for (size_t k = coeffs.size(); k-- > 1;) {
        if (std::abs(coeffs[k]) < 1e-12) {
            continue;
        }
        Ciphertext term = ev.multiplyScalar(getT(k), coeffs[k]);
        ev.rescaleInPlace(term);
        if (!haveAcc) {
            acc = std::move(term);
            haveAcc = true;
        } else {
            // Align the (slightly drifted) scales before adding.
            Ciphertext a = std::move(acc);
            ev.alignLevels(a, term);
            term.scale = a.scale;
            acc = ev.add(a, term);
        }
    }
    HEAP_CHECK(haveAcc, "all-zero Chebyshev series");
    if (std::abs(coeffs[0]) > 1e-12) {
        const auto c0 =
            ev.makeConstant(coeffs[0], acc.scale, acc.slots,
                            acc.level());
        acc = ev.addPlain(acc, c0);
    }
    return acc;
}

} // namespace heap::ckks
