/**
 * @file
 * CKKS parameter set, key material, and context.
 *
 * The context owns the RNS basis (L message limbs q_0..q_{L-1} plus
 * auxLimbs auxiliary primes p used only inside bootstrapping, Section
 * III-C), the encoder, and every key: secret, public, relinearization,
 * rotation/conjugation (hybrid gadget key switching).
 */

#ifndef HEAP_CKKS_CONTEXT_H
#define HEAP_CKKS_CONTEXT_H

#include <map>
#include <memory>
#include <optional>

#include "ckks/encoder.h"
#include "common/noise_budget.h"
#include "rlwe/gadget.h"
#include "rlwe/hybrid.h"
#include "rlwe/rlwe.h"

namespace heap::ckks {

/** User-facing CKKS parameters. */
struct CkksParams {
    size_t n = 1 << 10;        ///< ring dimension N
    int limbBits = 30;         ///< log2 q_i of each RNS limb
    size_t levels = 3;         ///< L: message limbs (levels)
    int firstLimbBits = 0;     ///< log2 q_0 (0 = limbBits + 6)
    size_t auxLimbs = 1;       ///< auxiliary primes p (bootstrapping)
    double scale = 1 << 20;    ///< default encoding scale Delta
    rlwe::GadgetParams gadget{.baseBits = 10, .digitsPerLimb = 3};
    double errorStdDev = 3.2;
    /** Optional fixed Hamming weight for the ternary secret; the
     *  default (nullopt) samples uniform ternary, matching the
     *  paper's no-sparse-keys stance. */
    std::optional<size_t> secretHamming;

    /** The paper's HEAP parameter set (Section III-C): N = 2^13,
     *  log q = 36, L = 6, one auxiliary prime, d = 2 (18-bit digits). */
    static CkksParams paperSet();
};

/** CKKS ciphertext: RLWE pair plus scale/slot/noise metadata. */
struct Ciphertext {
    rlwe::Ciphertext ct;
    double scale = 0;
    size_t slots = 0;
    NoiseBudget budget; ///< live predicted-noise record

    size_t level() const { return ct.limbCount(); }
};

/** Public encryption key (an encryption of zero at the full basis). */
struct PublicKey {
    rlwe::Ciphertext key;
};

/**
 * Owns parameters, basis, encoder and keys; issues encryption and
 * exposes key material to the evaluator and bootstrappers.
 */
class Context {
  public:
    explicit Context(const CkksParams& params, uint64_t seed = 1);

    const CkksParams& params() const { return params_; }
    std::shared_ptr<const math::RnsBasis> basis() const { return basis_; }
    const Encoder& encoder() const { return encoder_; }
    Rng& rng() const { return rng_; }

    /** Message limbs (excludes auxiliary bootstrap primes). */
    size_t maxLevel() const { return params_.levels; }

    const rlwe::SecretKey& secretKey() const { return sk_; }
    const PublicKey& publicKey() const { return pk_; }
    const rlwe::GadgetCiphertext& relinKey() const { return relinKey_; }

    /** True when an auxiliary prime is available and evaluator ops
     *  use the (quieter, faster) hybrid key switching. Bootstrapping
     *  key material stays on the gadget path, which also works at the
     *  full QP basis. */
    bool useHybridKeySwitch() const { return params_.auxLimbs >= 1; }
    const rlwe::HybridKeySwitchKey& hybridRelinKey() const;
    const rlwe::HybridKeySwitchKey& hybridConjugationKey() const;
    const rlwe::HybridKeySwitchKey& hybridRotationKey(
        int64_t steps) const;

    /** Generates rotation keys for the given slot steps. */
    void makeRotationKeys(std::span<const int64_t> steps);

    /** Key for a left rotation by `steps` (throws if not generated). */
    const rlwe::GadgetCiphertext& rotationKey(int64_t steps) const;
    bool hasRotationKey(int64_t steps) const;

    /** Reduces a step to its canonical value in [0, N/2). */
    int64_t normalizeStep(int64_t steps) const;

    /** Key for slot conjugation (generated on construction). */
    const rlwe::GadgetCiphertext& conjugationKey() const
    {
        return conjKey_;
    }

    /** Encrypts encoded coefficients at the given level and scale. */
    Ciphertext encryptCoeffs(std::span<const int64_t> coeffs, double scale,
                             size_t slots, size_t level) const;

    /** Encrypts a complex slot vector at the top level. */
    Ciphertext encrypt(std::span<const Complex> values) const;

    /** Encrypts a real slot vector at the top level. */
    Ciphertext encrypt(std::span<const double> values) const;

    /** Decrypts to complex slot values. */
    std::vector<Complex> decrypt(const Ciphertext& ct) const;

    /** Decrypts to raw centered coefficients (no decoding). */
    std::vector<long double> decryptCoeffs(const Ciphertext& ct) const;

    rlwe::NoiseParams noiseParams() const
    {
        return rlwe::NoiseParams{params_.errorStdDev};
    }

    // --- noise guard -------------------------------------------------
    /** Installs the guard policy for every op on this context. */
    void setNoiseGuard(const NoiseGuardConfig& cfg) { guard_ = cfg; }
    const NoiseGuardConfig& noiseGuard() const { return guard_; }

    /** Observability counters (ops tracked, min budget, trips). */
    NoiseStats& noiseStats() const { return stats_; }

    /** Sum of log2(q_i) over the first `level` limbs. */
    double logQBits(size_t level) const;

    /**
     * Remaining bits until predicted decryption failure:
     * log2(q/2) - log2(marginSigmas * sigma + 4 * messageRms).
     * Infinity for untracked ciphertexts.
     */
    double noiseBudgetBits(const Ciphertext& ct) const;

    /** Predicted precision: log2(scale / sigma); infinity when the
     *  ciphertext is untracked or noiseless. */
    double noisePrecisionBits(const Ciphertext& ct) const;

    /**
     * Records `ct` in the stats and fires the guard policy when a
     * threshold is crossed. Called by every evaluator primitive and
     * by the bootstrappers on their outputs; a no-op for untracked
     * ciphertexts.
     */
    void noiseGuardCheck(const Ciphertext& ct, const char* op) const;

  private:
    CkksParams params_;
    std::shared_ptr<const math::RnsBasis> basis_;
    Encoder encoder_;
    mutable Rng rng_;
    rlwe::SecretKey sk_;
    PublicKey pk_;
    rlwe::GadgetCiphertext relinKey_;
    rlwe::GadgetCiphertext conjKey_;
    std::map<int64_t, rlwe::GadgetCiphertext> rotKeys_;
    rlwe::HybridKeySwitchKey hybridRelin_;
    rlwe::HybridKeySwitchKey hybridConj_;
    std::map<int64_t, rlwe::HybridKeySwitchKey> hybridRotKeys_;
    NoiseGuardConfig guard_;
    mutable NoiseStats stats_;
};

} // namespace heap::ckks

#endif // HEAP_CKKS_CONTEXT_H
