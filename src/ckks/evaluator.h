/**
 * @file
 * CKKS homomorphic evaluator: PtAdd, Add, PtMult, Mult (with
 * relinearization), Rescale, Rotate, and Conjugate (the primitive set
 * of Section II-A), plus level/scale management helpers.
 */

#ifndef HEAP_CKKS_EVALUATOR_H
#define HEAP_CKKS_EVALUATOR_H

#include "ckks/context.h"

namespace heap::ckks {

/** Encoded plaintext at a specific level/scale (Eval domain). */
struct Plaintext {
    math::RnsPoly poly;
    double scale = 0;
    size_t slots = 0;
    /** Exact RMS of the encoded coefficients (set by makePlaintext /
     *  makeConstant); drives noise tracking for plaintext products. */
    double coeffRms = 0;
};

/**
 * Stateless-per-operation evaluator bound to a Context.
 */
class Evaluator {
  public:
    explicit Evaluator(const Context& ctx)
        : ctx_(&ctx)
    {
    }

    // --- encoding -------------------------------------------------
    /** Encodes complex values at the given level and scale. */
    Plaintext makePlaintext(std::span<const Complex> values, double scale,
                            size_t level) const;
    Plaintext makePlaintext(std::span<const double> values, double scale,
                            size_t level) const;
    /** Constant-across-slots plaintext. */
    Plaintext makeConstant(double value, double scale, size_t slots,
                           size_t level) const;

    // --- additive ops ----------------------------------------------
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext negate(const Ciphertext& a) const;
    Ciphertext addPlain(const Ciphertext& a, const Plaintext& p) const;
    Ciphertext subPlain(const Ciphertext& a, const Plaintext& p) const;

    // --- multiplicative ops ----------------------------------------
    /** Mult with relinearization. Scales multiply; no auto-rescale. */
    Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext square(const Ciphertext& a) const;
    Ciphertext multiplyPlain(const Ciphertext& a,
                             const Plaintext& p) const;
    /** Multiplies by a scalar encoded at the context scale. */
    Ciphertext multiplyScalar(const Ciphertext& a, double value) const;

    /** Adds a scalar to every slot (free: constant-coefficient add). */
    Ciphertext addScalar(const Ciphertext& a, double value) const;

    /** a^k by square-and-multiply (depth ceil(log2 k)); k >= 1. */
    Ciphertext power(const Ciphertext& a, size_t k) const;

    /**
     * Cyclic rotate-and-fold: every slot becomes the sum of `count`
     * consecutive slots (count a power of two; needs rotation keys
     * for the power-of-two steps below count).
     */
    Ciphertext innerSum(const Ciphertext& a, size_t count) const;

    /** Divides by the last limb; scale /= q_last (CKKS Rescale). */
    void rescaleInPlace(Ciphertext& a) const;
    Ciphertext rescale(const Ciphertext& a) const;

    /** Multiply + rescale convenience. */
    Ciphertext multiplyRescale(const Ciphertext& a,
                               const Ciphertext& b) const;

    // --- permutations ----------------------------------------------
    /** Left-rotates slots by `steps` (requires the rotation key). */
    Ciphertext rotate(const Ciphertext& a, int64_t steps) const;
    /** Conjugates every slot. */
    Ciphertext conjugate(const Ciphertext& a) const;

    // --- level/scale management -------------------------------------
    /** Drops limbs (ModReduce) to the target level; scale unchanged. */
    void dropToLevel(Ciphertext& a, size_t level) const;
    /** Aligns levels of both operands to the minimum of the two. */
    void alignLevels(Ciphertext& a, Ciphertext& b) const;

  private:
    void checkScalesMatch(double s1, double s2) const;

    /** Merged provenance of a binary op (tracked iff both are). */
    static NoiseBudget mergedBudget(const NoiseBudget& a,
                                    const NoiseBudget& b);

    const Context* ctx_;
};

} // namespace heap::ckks

#endif // HEAP_CKKS_EVALUATOR_H
