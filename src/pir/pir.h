/**
 * @file
 * Encrypted lookup (PIR) on the RGSW substrate — the ROADMAP's
 * "second tenant class" workload, in the style of OnionPIR's RGSW
 * query folding: the client encrypts a database index as per-dimension
 * RGSW selection bits (the existing gadget encoding), and the server
 * folds a plaintext database through dimension-by-dimension CMux
 * trees (each CMux = one external product, the same primitive
 * BlindRotate iterates) down to ONE RLWE ciphertext answer.
 *
 * Protocol shape:
 *  - The database's T = prod(dims) cells are laid out mixed-radix
 *    with the dimension-0 digit fastest-varying: cell index
 *    t = (((u_{d-1}) * D_{d-2} + ...) * D_0) + u_0.
 *  - The query carries log2(D_k) RGSW bit encryptions per dimension
 *    (LSB first) — log2(T) RGSW ciphertexts total, vs T RLWE
 *    ciphertexts for the naive 1-dimensional packing.
 *  - Folding dimension 0 collapses each group of D_0 adjacent cells
 *    (trivial RLWE encryptions of the plaintext cells) through a
 *    CMux tree selecting the u_0-th; the surviving T / D_0
 *    ciphertexts are then folded by dimension 1, and so on. After
 *    all d dimensions one ciphertext encrypting cell u remains.
 *
 * Exactness: entries are scaled by Delta = 2^scaleBits at encoding
 * time; decoding rounds the decrypted phase to the nearest multiple
 * of Delta, so lookups are BIT-EXACT as long as the accumulated fold
 * noise stays below Delta/2. answerBudgetBits() reports the analytic
 * margin (bits between the guard-scaled noise and the rounding
 * boundary) — the serving layer's noise-budget floor.
 *
 * Determinism: the server side is pure arithmetic on the query and
 * the plaintext cells — no RNG, no data-dependent branching — so a
 * folded answer is byte-identical however the fold is scheduled
 * (monolithic, per-group work items, any worker count, after
 * failover). tests/pir_test.cc and tests/pir_serve_test.cc pin this.
 */

#ifndef HEAP_PIR_PIR_H
#define HEAP_PIR_PIR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "rlwe/gadget.h"
#include "rlwe/rlwe.h"

namespace heap::pir {

/** Protocol parameters shared by client and server. */
struct PirParams {
    std::shared_ptr<const math::RnsBasis> basis;
    /** Active RNS limbs of the answer ciphertext. */
    size_t limbs = 2;
    /** Per-dimension sizes, each a power of two >= 2; their product
     *  is the cell count and must cover `entries`. */
    std::vector<size_t> dims;
    /** Logical database entries (<= prod(dims); the tail cells are
     *  zero-padded). */
    size_t entries = 0;
    /** Coefficients of payload per entry (<= ring dimension). */
    size_t payloadCoeffs = 8;
    /** Entry values are encoded as v * 2^scaleBits; decoding rounds
     *  to the nearest multiple, which is what makes lookups exact. */
    int scaleBits = 35;
    /** Payload values must satisfy |v| < 2^payloadBits. */
    int payloadBits = 16;
    /** RGSW gadget for the query bits. */
    rlwe::GadgetParams gadget{.baseBits = 5, .digitsPerLimb = 6};
    /** Client-side encryption noise width (the noise model input). */
    double keyErrStdDev = math::kErrorStdDev;
    /** Guard margin: the budget floor measures the gap between
     *  guardMarginSigmas * foldSigma() and the Delta/2 boundary. */
    double guardMarginSigmas = 6.0;

    /** Validates shape and that the noise budget floor is positive:
     *  dims are powers of two covering `entries`, the payload fits
     *  the ring and the modulus, and answerBudgetBits() > 0. */
    void validate() const;

    size_t totalCells() const;
    /** log2(dims[k]): RGSW selection bits for dimension k. */
    size_t dimBitCount(size_t k) const;
    /** Total RGSW bits in one query: log2(totalCells()). */
    size_t queryBitCount() const;
    /** Dimension-0 groups = totalCells / dims[0]: the independent
     *  first-pass work items the serving layer schedules. */
    size_t firstDimGroups() const;

    /**
     * Analytic phase-noise stddev of a folded answer: one external
     * product per CMux level on the selected path (queryBitCount()
     * levels), each contributing gadget noise from limbs * d * N
     * digit terms at the key's error width.
     */
    double foldSigma() const;

    /**
     * Noise-budget floor of an answer, in bits:
     * log2(Delta/2) - log2(guardMarginSigmas * foldSigma()). Positive
     * means the guard-scaled fold noise clears the exact-rounding
     * boundary with that many bits to spare.
     */
    double answerBudgetBits() const;
};

/** One encrypted index: per-dimension RGSW selection bits. */
struct PirQuery {
    /** dimBits[k][j] = RGSW(bit j of digit u_k), LSB first. */
    std::vector<std::vector<rlwe::RgswCiphertext>> dimBits;

    size_t
    bitCount() const
    {
        size_t total = 0;
        for (const auto& d : dimBits) {
            total += d.size();
        }
        return total;
    }
};

/** Client half: owns the secret key, packs queries, decodes answers. */
class PirClient {
  public:
    /** @param sk borrowed; must outlive the client and live on
     *         params.basis. */
    PirClient(PirParams params, const rlwe::SecretKey& sk);

    /** Encrypts `index` (< params.entries) as per-dimension RGSW
     *  selection bits. */
    PirQuery makeQuery(size_t index, Rng& rng) const;

    /** Decrypts and descales an answer to the exact payload values
     *  (payloadCoeffs of them). */
    std::vector<int64_t> decode(const rlwe::Ciphertext& answer) const;

    const PirParams& params() const { return params_; }

  private:
    PirParams params_;
    const rlwe::SecretKey* sk_;
};

/**
 * Server half: the plaintext database, encoded once at construction
 * (scaled RNS cells in Coeff domain), folded per query. Stateless
 * across queries and deterministic: answer() is const and safe to
 * call from many worker threads concurrently.
 */
class PirServer {
  public:
    /** @param entries one payload vector per logical entry (values
     *         within +-2^payloadBits, at most payloadCoeffs each;
     *         shorter vectors are zero-padded). */
    PirServer(PirParams params,
              const std::vector<std::vector<int64_t>>& entries);

    /** Folds every dimension: the one-ciphertext answer. */
    rlwe::Ciphertext answer(const PirQuery& query) const;

    /**
     * Serving decomposition, byte-identical to answer(): dimension 0
     * folds as firstDimGroups() independent work items (one CMux tree
     * over D_0 plaintext cells each), then finishFold() folds the
     * remaining dimensions over the collected group results.
     */
    rlwe::Ciphertext foldFirstGroup(const PirQuery& query,
                                    size_t group) const;
    rlwe::Ciphertext
    finishFold(const PirQuery& query,
               std::vector<rlwe::Ciphertext> firstPass) const;

    /** Shape-checks a query against the parameters (throws
     *  UserError): dimension count, per-dimension bit counts. */
    void validateQuery(const PirQuery& query) const;

    const PirParams& params() const { return params_; }
    size_t firstDimGroups() const { return params_.firstDimGroups(); }

    /** The analytic per-answer budget floor (params shortcut). */
    double answerBudgetBits() const
    {
        return params_.answerBudgetBits();
    }

  private:
    /** One CMux-tree fold of `table` by `bits` (size log2(D)):
     *  collapses every D adjacent ciphertexts to the u-th. */
    std::vector<rlwe::Ciphertext>
    foldDimension(std::vector<rlwe::Ciphertext> table,
                  const std::vector<rlwe::RgswCiphertext>& bits) const;

    PirParams params_;
    std::vector<math::RnsPoly> cells_; ///< scaled, Coeff domain
};

/** Deterministic pseudo-random database for tests and benches:
 *  entries x payloadCoeffs values in (-2^payloadBits, 2^payloadBits),
 *  derived from `seed` with a fixed platform-independent mix. */
std::vector<std::vector<int64_t>>
randomDatabase(const PirParams& params, uint64_t seed);

} // namespace heap::pir

#endif // HEAP_PIR_PIR_H
