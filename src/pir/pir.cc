#include "pir/pir.h"

#include <cmath>

#include "common/check.h"
#include "tfhe/blind_rotate.h"

namespace heap::pir {

namespace {

bool
isPowerOfTwo(size_t x)
{
    return x >= 1 && (x & (x - 1)) == 0;
}

size_t
log2Exact(size_t x)
{
    size_t bits = 0;
    while ((size_t{1} << bits) < x) {
        ++bits;
    }
    return bits;
}

/** splitmix64 finalizer (the repo's fixed platform-independent mix). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

size_t
PirParams::totalCells() const
{
    size_t total = 1;
    for (const size_t d : dims) {
        total *= d;
    }
    return total;
}

size_t
PirParams::dimBitCount(size_t k) const
{
    return log2Exact(dims.at(k));
}

size_t
PirParams::queryBitCount() const
{
    size_t total = 0;
    for (size_t k = 0; k < dims.size(); ++k) {
        total += dimBitCount(k);
    }
    return total;
}

size_t
PirParams::firstDimGroups() const
{
    return totalCells() / dims.at(0);
}

double
PirParams::foldSigma() const
{
    const double base = std::pow(2.0, gadget.baseBits);
    const double digitVar = gadget.balanced
                                ? base * base / 12.0
                                : base * base / 12.0
                                      + base * base / 4.0;
    const double terms = static_cast<double>(limbs)
                         * static_cast<double>(gadget.digitsPerLimb)
                         * static_cast<double>(basis->n());
    const double perProduct = keyErrStdDev * std::sqrt(terms * digitVar);
    // One external product per CMux level on the selected path; the
    // selected branch's noise rides through each level unscaled
    // (mu in {0, 1}), so the level noises add in variance.
    return perProduct
           * std::sqrt(static_cast<double>(queryBitCount()));
}

double
PirParams::answerBudgetBits() const
{
    const double delta = std::pow(2.0, scaleBits);
    return std::log2(delta / 2.0)
           - std::log2(guardMarginSigmas * foldSigma());
}

void
PirParams::validate() const
{
    HEAP_CHECK(basis != nullptr, "PIR params need a basis");
    HEAP_CHECK(limbs >= 1 && limbs <= basis->size(),
               "PIR limbs " << limbs << " out of range");
    HEAP_CHECK(!dims.empty(), "PIR needs at least one dimension");
    for (const size_t d : dims) {
        HEAP_CHECK(d >= 2 && isPowerOfTwo(d),
                   "PIR dimension size " << d
                                         << " must be a power of two "
                                            ">= 2");
    }
    HEAP_CHECK(entries >= 1 && entries <= totalCells(),
               "PIR entries " << entries << " must be in [1, "
                              << totalCells() << "]");
    HEAP_CHECK(payloadCoeffs >= 1 && payloadCoeffs <= basis->n(),
               "PIR payloadCoeffs " << payloadCoeffs
                                    << " exceeds the ring");
    HEAP_CHECK(scaleBits >= 2 && payloadBits >= 1,
               "PIR scale/payload bits must be positive");
    HEAP_CHECK(scaleBits + payloadBits <= 61,
               "PIR scaled payload overflows int64 encoding");
    // Scaled payload plus fold noise must stay within the modulus:
    // |v * Delta| < 2^(payloadBits + scaleBits) and the decoder reads
    // centered representatives, so demand one spare bit under Q/2.
    const double logQ = basis->logQ(limbs);
    HEAP_CHECK(static_cast<double>(scaleBits + payloadBits) + 2.0
                   <= logQ,
               "PIR payload * scale needs "
                   << (scaleBits + payloadBits + 2)
                   << " bits but the modulus has " << logQ);
    gadget.validateFor(*basis);
    HEAP_CHECK(guardMarginSigmas > 0, "PIR guard margin must be > 0");
    HEAP_CHECK(answerBudgetBits() > 0,
               "PIR parameters leave no noise budget: "
                   << answerBudgetBits()
                   << " bits (deepen the scale or shrink the fold)");
}

PirClient::PirClient(PirParams params, const rlwe::SecretKey& sk)
    : params_(std::move(params)), sk_(&sk)
{
    params_.validate();
    HEAP_CHECK(sk_->basisPtr()->n() == params_.basis->n(),
               "PIR client key ring does not match the parameters");
}

PirQuery
PirClient::makeQuery(size_t index, Rng& rng) const
{
    HEAP_CHECK(index < params_.entries,
               "PIR index " << index << " out of range (entries = "
                            << params_.entries << ")");
    const rlwe::NoiseParams noise{params_.keyErrStdDev};
    PirQuery q;
    q.dimBits.resize(params_.dims.size());
    size_t rem = index;
    for (size_t k = 0; k < params_.dims.size(); ++k) {
        const size_t digit = rem % params_.dims[k];
        rem /= params_.dims[k];
        const size_t bits = params_.dimBitCount(k);
        q.dimBits[k].reserve(bits);
        for (size_t j = 0; j < bits; ++j) {
            q.dimBits[k].push_back(rlwe::rgswEncryptConstant(
                *sk_, static_cast<int64_t>((digit >> j) & 1),
                params_.gadget, rng, noise));
        }
    }
    return q;
}

std::vector<int64_t>
PirClient::decode(const rlwe::Ciphertext& answer) const
{
    const std::vector<int64_t> dec = rlwe::decryptSigned(answer, *sk_);
    const int64_t delta = int64_t{1} << params_.scaleBits;
    const int64_t half = delta / 2;
    std::vector<int64_t> out(params_.payloadCoeffs, 0);
    for (size_t i = 0; i < params_.payloadCoeffs; ++i) {
        const int64_t c = dec.at(i);
        // Round to the nearest multiple of Delta in exact integer
        // arithmetic (the phase fits int64 by validate()'s bound).
        out[i] = (c >= 0 ? c + half : c - half) / delta;
    }
    return out;
}

PirServer::PirServer(PirParams params,
                     const std::vector<std::vector<int64_t>>& entries)
    : params_(std::move(params))
{
    params_.validate();
    HEAP_CHECK(entries.size() == params_.entries,
               "PIR database has " << entries.size()
                                   << " entries, parameters say "
                                   << params_.entries);
    const int64_t delta = int64_t{1} << params_.scaleBits;
    const int64_t bound = int64_t{1} << params_.payloadBits;
    const size_t n = params_.basis->n();
    cells_.reserve(params_.totalCells());
    std::vector<int64_t> coeffs(n, 0);
    for (size_t t = 0; t < params_.totalCells(); ++t) {
        std::fill(coeffs.begin(), coeffs.end(), 0);
        if (t < entries.size()) {
            const auto& e = entries[t];
            HEAP_CHECK(e.size() <= params_.payloadCoeffs,
                       "PIR entry " << t << " has " << e.size()
                                    << " values, payloadCoeffs is "
                                    << params_.payloadCoeffs);
            for (size_t i = 0; i < e.size(); ++i) {
                HEAP_CHECK(e[i] > -bound && e[i] < bound,
                           "PIR entry " << t << " value " << e[i]
                                        << " exceeds payloadBits");
                coeffs[i] = e[i] * delta;
            }
        }
        cells_.push_back(
            math::rnsFromSigned(params_.basis, params_.limbs, coeffs));
    }
}

void
PirServer::validateQuery(const PirQuery& query) const
{
    HEAP_CHECK(query.dimBits.size() == params_.dims.size(),
               "PIR query has " << query.dimBits.size()
                                << " dimensions, parameters say "
                                << params_.dims.size());
    for (size_t k = 0; k < params_.dims.size(); ++k) {
        HEAP_CHECK(query.dimBits[k].size() == params_.dimBitCount(k),
                   "PIR query dimension "
                       << k << " carries " << query.dimBits[k].size()
                       << " bits, expected " << params_.dimBitCount(k));
    }
}

std::vector<rlwe::Ciphertext>
PirServer::foldDimension(
    std::vector<rlwe::Ciphertext> table,
    const std::vector<rlwe::RgswCiphertext>& bits) const
{
    for (const rlwe::RgswCiphertext& bit : bits) {
        std::vector<rlwe::Ciphertext> next;
        next.reserve(table.size() / 2);
        for (size_t i = 0; i + 1 < table.size(); i += 2) {
            next.push_back(tfhe::cmux(bit, table[i], table[i + 1]));
        }
        table = std::move(next);
    }
    return table;
}

rlwe::Ciphertext
PirServer::foldFirstGroup(const PirQuery& query, size_t group) const
{
    validateQuery(query);
    HEAP_CHECK(group < params_.firstDimGroups(),
               "PIR group " << group << " out of range");
    const size_t d0 = params_.dims[0];
    std::vector<rlwe::Ciphertext> leaves;
    leaves.reserve(d0);
    for (size_t j = 0; j < d0; ++j) {
        leaves.push_back(rlwe::trivialEncrypt(cells_[group * d0 + j]));
    }
    std::vector<rlwe::Ciphertext> folded =
        foldDimension(std::move(leaves), query.dimBits[0]);
    HEAP_ASSERT(folded.size() == 1, "dimension fold did not collapse");
    return std::move(folded[0]);
}

rlwe::Ciphertext
PirServer::finishFold(const PirQuery& query,
                      std::vector<rlwe::Ciphertext> firstPass) const
{
    validateQuery(query);
    HEAP_CHECK(firstPass.size() == params_.firstDimGroups(),
               "PIR finishFold got " << firstPass.size()
                                     << " group results, expected "
                                     << params_.firstDimGroups());
    std::vector<rlwe::Ciphertext> table = std::move(firstPass);
    for (size_t k = 1; k < params_.dims.size(); ++k) {
        table = foldDimension(std::move(table), query.dimBits[k]);
    }
    HEAP_ASSERT(table.size() == 1, "PIR fold did not collapse");
    return std::move(table[0]);
}

rlwe::Ciphertext
PirServer::answer(const PirQuery& query) const
{
    validateQuery(query);
    const size_t groups = params_.firstDimGroups();
    std::vector<rlwe::Ciphertext> firstPass;
    firstPass.reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
        firstPass.push_back(foldFirstGroup(query, g));
    }
    return finishFold(query, std::move(firstPass));
}

std::vector<std::vector<int64_t>>
randomDatabase(const PirParams& params, uint64_t seed)
{
    const int64_t bound = (int64_t{1} << params.payloadBits) - 1;
    const uint64_t range = 2 * static_cast<uint64_t>(bound) + 1;
    std::vector<std::vector<int64_t>> db(params.entries);
    for (size_t t = 0; t < params.entries; ++t) {
        db[t].resize(params.payloadCoeffs);
        for (size_t i = 0; i < params.payloadCoeffs; ++i) {
            const uint64_t h =
                mix64(seed ^ mix64(static_cast<uint64_t>(t) * 0x10001
                                   + static_cast<uint64_t>(i)));
            db[t][i] = static_cast<int64_t>(h % range) - bound;
        }
    }
    return db;
}

} // namespace heap::pir
