#include "rlwe/hybrid.h"

#include <cmath>

#include "common/check.h"
#include "math/baseconv.h"
#include "math/modarith.h"
#include "math/poly.h"

namespace heap::rlwe {

namespace {

/** Message-limb count of a basis with `specialLimbs` special primes. */
size_t
messageLimbs(const math::RnsBasis& basis, size_t specialLimbs)
{
    HEAP_CHECK(specialLimbs >= 1 && specialLimbs < basis.size(),
               "bad special-prime count");
    return basis.size() - specialLimbs;
}

} // namespace

HybridKeySwitchKey
makeHybridKeySwitchKey(const SecretKey& to,
                       const math::RnsPoly& fromCoeff, Rng& rng,
                       const NoiseParams& noise, size_t groupSize,
                       size_t specialLimbs)
{
    auto basis = to.basisPtr();
    const size_t full = basis->size();
    const size_t msgLimbs = messageLimbs(*basis, specialLimbs);
    HEAP_CHECK(groupSize >= 1 && groupSize <= msgLimbs,
               "bad group size");
    HEAP_CHECK(fromCoeff.limbCount() == full
                   && fromCoeff.domain() == Domain::Coeff,
               "source key must be full-basis Coeff");

    // Noise containment: the largest group product must fit under P.
    double groupBits = 0, specialBits = 0;
    for (size_t g = 0; g < msgLimbs; g += groupSize) {
        double bits = 0;
        for (size_t i = g; i < std::min(g + groupSize, msgLimbs); ++i) {
            bits += std::log2(static_cast<double>(basis->modulus(i)));
        }
        groupBits = std::max(groupBits, bits);
    }
    for (size_t i = msgLimbs; i < full; ++i) {
        specialBits += std::log2(static_cast<double>(basis->modulus(i)));
    }
    HEAP_CHECK(groupBits <= specialBits + 1.0,
               "group modulus (" << groupBits
                                 << " bits) exceeds the special modulus ("
                                 << specialBits << " bits)");

    // [P]_{q_i} for the message limbs.
    std::vector<uint64_t> pMod(msgLimbs);
    for (size_t i = 0; i < msgLimbs; ++i) {
        const uint64_t qi = basis->modulus(i);
        uint64_t v = 1;
        for (size_t s = msgLimbs; s < full; ++s) {
            v = math::mulModNaive(v, basis->modulus(s) % qi, qi);
        }
        pMod[i] = v;
    }

    HybridKeySwitchKey ksk;
    ksk.groupSize = groupSize;
    ksk.specialLimbs = specialLimbs;
    const size_t groups = (msgLimbs + groupSize - 1) / groupSize;
    ksk.rows.reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
        const size_t lo = g * groupSize;
        const size_t hi = std::min(lo + groupSize, msgLimbs);
        Ciphertext row = encryptZero(to, full, rng, noise);
        // Message P * e_g * s': e_g = (Q/Q_g) * [(Q/Q_g)^{-1}]_{Q_g}
        // is 1 mod the group's primes, 0 mod the other message primes,
        // and P * e_g = 0 mod the special primes. Within the group,
        // e_g mod q_i = (Q/Q_g mod q_i) * inv(Q/Q_g mod q_i) = 1, so
        // the row's limb-i message is simply (P mod q_i) * s'.
        for (size_t i = lo; i < hi; ++i) {
            const uint64_t qi = basis->modulus(i);
            std::vector<uint64_t> contrib(basis->n());
            math::polyMulScalar(fromCoeff.limb(i), pMod[i], contrib, qi);
            basis->ntt(i).forward(contrib);
            math::polyAdd(row.b.limb(i), contrib, row.b.limb(i), qi);
        }
        ksk.rows.push_back(std::move(row));
    }
    return ksk;
}

Ciphertext
applyHybrid(const math::RnsPoly& x, const HybridKeySwitchKey& ksk)
{
    auto basis = x.basisPtr();
    const size_t full = basis->size();
    const size_t msgLimbs = messageLimbs(*basis, ksk.specialLimbs);
    const size_t l = x.limbCount();
    HEAP_CHECK(l <= msgLimbs, "operand occupies the special limbs");
    HEAP_CHECK(x.domain() == Domain::Coeff,
               "hybrid apply expects Coeff domain");
    const size_t groups =
        (msgLimbs + ksk.groupSize - 1) / ksk.groupSize;
    HEAP_CHECK(ksk.rows.size() == groups, "key row count mismatch");

    Ciphertext acc;
    acc.a = math::RnsPoly(basis, full, Domain::Eval);
    acc.b = math::RnsPoly(basis, full, Domain::Eval);

    const size_t n = basis->n();
    // The digit poly is fully overwritten every group, so one
    // allocation serves the whole loop.
    math::RnsPoly digit(basis, full, Domain::Coeff);
    for (size_t g = 0; g * ksk.groupSize < l; ++g) {
        const size_t lo = g * ksk.groupSize;
        const size_t hi = std::min(lo + ksk.groupSize, l);
        digit.setDomain(Domain::Coeff);

        // ModUp: lift the group digit [a]_{Q'_g} from its active
        // limbs into every limb of QP. Inside the group the residues
        // are the originals; outside, exact fast base conversion
        // reconstructs them (single-limb groups take the direct,
        // centered-lift shortcut).
        if (hi - lo == 1) {
            const uint64_t qj = basis->modulus(lo);
            const auto src = x.limb(lo);
            for (size_t k = 0; k < full; ++k) {
                const uint64_t qk = basis->modulus(k);
                auto lane = digit.limb(k);
                for (size_t t = 0; t < n; ++t) {
                    lane[t] = math::fromCentered(
                        math::toCentered(src[t], qj), qk);
                }
            }
        } else {
            // Cached per-basis converter: [lo, hi) -> complement.
            const math::BaseConverter& bc =
                basis->baseConverterFor(lo, hi);
            std::vector<size_t> dstIdx;
            for (size_t k = 0; k < full; ++k) {
                if (k < lo || k >= hi) {
                    dstIdx.push_back(k);
                }
            }
            std::vector<uint64_t> in(hi - lo), out(dstIdx.size());
            for (size_t t = 0; t < n; ++t) {
                for (size_t i = lo; i < hi; ++i) {
                    in[i - lo] = x.limb(i)[t];
                }
                bc.convertCoeff(in, out, /*exact=*/true);
                for (size_t d = 0; d < dstIdx.size(); ++d) {
                    digit.limb(dstIdx[d])[t] = out[d];
                }
            }
            for (size_t i = lo; i < hi; ++i) {
                std::copy(x.limb(i).begin(), x.limb(i).end(),
                          digit.limb(i).begin());
            }
        }
        digit.toEval();
        acc.a.mulPointwiseAccum(digit, ksk.rows[g].a);
        acc.b.mulPointwiseAccum(digit, ksk.rows[g].b);
    }

    // ModDown: divide by every special prime, then drop the unused
    // intermediate limbs.
    for (size_t s = 0; s < ksk.specialLimbs; ++s) {
        acc.rescaleLastLimb();
    }
    if (acc.limbCount() > l) {
        acc.dropLimbs(acc.limbCount() - l);
    }
    return acc;
}

Ciphertext
switchKeyHybrid(const Ciphertext& ct, const HybridKeySwitchKey& ksk)
{
    math::RnsPoly a = ct.a;
    a.toCoeff();
    Ciphertext out = applyHybrid(a, ksk);
    math::RnsPoly b = ct.b;
    b.toEval();
    out.b.addInPlace(b);
    return out;
}

HybridKeySwitchKey
makeHybridAutomorphismKey(const SecretKey& sk, uint64_t t, Rng& rng,
                          const NoiseParams& noise, size_t groupSize,
                          size_t specialLimbs)
{
    auto basis = sk.basisPtr();
    math::RnsPoly sCoeff =
        math::rnsFromSigned(basis, basis->size(), sk.coeffs());
    return makeHybridKeySwitchKey(sk, sCoeff.automorphism(t), rng,
                                  noise, groupSize, specialLimbs);
}

Ciphertext
evalAutoHybrid(const Ciphertext& ct, uint64_t t,
               const HybridKeySwitchKey& key)
{
    Ciphertext c = ct;
    c.toCoeff();
    Ciphertext mapped = c.automorphism(t);
    Ciphertext out = switchKeyHybrid(mapped, key);
    out.toCoeff();
    return out;
}

} // namespace heap::rlwe
