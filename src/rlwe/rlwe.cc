#include "rlwe/rlwe.h"

#include "common/check.h"
#include "math/modarith.h"

namespace heap::rlwe {

SecretKey::SecretKey(std::shared_ptr<const RnsBasis> basis,
                     std::vector<int64_t> coeffs)
    : basis_(std::move(basis)), coeffs_(std::move(coeffs))
{
    HEAP_CHECK(coeffs_.size() == basis_->n(),
               "secret key length must equal ring dimension");
    eval_ = math::rnsFromSigned(basis_, basis_->size(), coeffs_);
    eval_.toEval();
}

SecretKey
SecretKey::sampleTernary(std::shared_ptr<const RnsBasis> basis, Rng& rng)
{
    auto coeffs = math::sampleTernary(basis->n(), rng);
    return SecretKey(std::move(basis), std::move(coeffs));
}

SecretKey
SecretKey::sampleTernaryHamming(std::shared_ptr<const RnsBasis> basis,
                                size_t hamming, Rng& rng)
{
    auto coeffs = math::sampleTernaryHamming(basis->n(), hamming, rng);
    return SecretKey(std::move(basis), std::move(coeffs));
}

const RnsPoly&
SecretKey::evalSquared() const
{
    if (evalSquared_.empty()) {
        evalSquared_ = eval_;
        evalSquared_.mulPointwiseInPlace(eval_);
    }
    return evalSquared_;
}

void
Ciphertext::toEval()
{
    a.toEval();
    b.toEval();
}

void
Ciphertext::toCoeff()
{
    a.toCoeff();
    b.toCoeff();
}

void
Ciphertext::addInPlace(const Ciphertext& other)
{
    a.addInPlace(other.a);
    b.addInPlace(other.b);
}

void
Ciphertext::subInPlace(const Ciphertext& other)
{
    a.subInPlace(other.a);
    b.subInPlace(other.b);
}

void
Ciphertext::negInPlace()
{
    a.negInPlace();
    b.negInPlace();
}

void
Ciphertext::mulScalarInPlace(uint64_t c)
{
    a.mulScalarInPlace(c);
    b.mulScalarInPlace(c);
}

Ciphertext
Ciphertext::monomialMul(uint64_t k) const
{
    return Ciphertext(a.monomialMul(k), b.monomialMul(k));
}

Ciphertext
Ciphertext::automorphism(uint64_t t) const
{
    return Ciphertext(a.automorphism(t), b.automorphism(t));
}

void
Ciphertext::rescaleLastLimb()
{
    a.rescaleLastLimb();
    b.rescaleLastLimb();
}

void
Ciphertext::dropLimbs(size_t count)
{
    a.dropLimbs(count);
    b.dropLimbs(count);
}

Ciphertext
encryptZero(const SecretKey& sk, size_t limbs, Rng& rng,
            const NoiseParams& noise)
{
    auto basis = sk.basisPtr();
    Ciphertext ct;
    ct.a = math::sampleUniformRns(basis, limbs, Domain::Eval, rng);
    // e in coefficient form, then to Eval.
    auto e = math::sampleGaussian(basis->n(), noise.errorStdDev, rng);
    ct.b = math::rnsFromSigned(basis, limbs, e);
    ct.b.toEval();
    // b = -a*s + e.
    RnsPoly as = ct.a;
    as.mulPointwiseInPlace(sk.eval().restrictedTo(limbs));
    ct.b.subInPlace(as);
    return ct;
}

Ciphertext
encrypt(const SecretKey& sk, const RnsPoly& msg, Rng& rng,
        const NoiseParams& noise)
{
    Ciphertext ct = encryptZero(sk, msg.limbCount(), rng, noise);
    RnsPoly m = msg;
    m.toEval();
    ct.b.addInPlace(m);
    return ct;
}

Ciphertext
trivialEncrypt(RnsPoly msg)
{
    Ciphertext ct;
    ct.a = RnsPoly(msg.basisPtr(), msg.limbCount(), msg.domain());
    ct.b = std::move(msg);
    return ct;
}

RnsPoly
phase(const Ciphertext& ct, const SecretKey& sk)
{
    RnsPoly a = ct.a;
    a.toEval();
    a.mulPointwiseInPlace(sk.eval().restrictedTo(a.limbCount()));
    RnsPoly b = ct.b;
    b.toEval();
    b.addInPlace(a);
    b.toCoeff();
    return b;
}

std::vector<int64_t>
decryptSigned(const Ciphertext& ct, const SecretKey& sk)
{
    const RnsPoly p = phase(ct, sk);
    const size_t l = p.limbCount();
    const auto& allModuli = p.basis().moduli();
    const std::vector<uint64_t> moduli(allModuli.begin(),
                                       allModuli.begin() + l);
    std::vector<int64_t> out(p.n());
    std::vector<uint64_t> residues(l);
    for (size_t j = 0; j < p.n(); ++j) {
        for (size_t i = 0; i < l; ++i) {
            residues[i] = p.limb(i)[j];
        }
        out[j] = math::crtToCenteredInt64(residues, moduli);
    }
    return out;
}

std::vector<long double>
decryptCentered(const Ciphertext& ct, const SecretKey& sk)
{
    const RnsPoly p = phase(ct, sk);
    const size_t l = p.limbCount();
    const auto& allModuli = p.basis().moduli();
    const std::vector<uint64_t> moduli(allModuli.begin(),
                                       allModuli.begin() + l);
    std::vector<long double> out(p.n());
    std::vector<uint64_t> residues(l);
    for (size_t j = 0; j < p.n(); ++j) {
        for (size_t i = 0; i < l; ++i) {
            residues[i] = p.limb(i)[j];
        }
        out[j] = math::crtToCenteredDouble(residues, moduli);
    }
    return out;
}

Ciphertext
liftToLimbs(const Ciphertext& ct, size_t limbs)
{
    HEAP_CHECK(ct.limbCount() == 1, "lift expects a single-limb input");
    HEAP_CHECK(ct.domain() == Domain::Coeff,
               "lift expects Coeff domain");
    auto basis = ct.a.basisPtr();
    Ciphertext out;
    out.a = RnsPoly(basis, limbs, Domain::Coeff);
    out.b = RnsPoly(basis, limbs, Domain::Coeff);
    for (size_t i = 0; i < limbs; ++i) {
        const uint64_t qi = basis->modulus(i);
        for (size_t j = 0; j < basis->n(); ++j) {
            out.a.limb(i)[j] = ct.a.limb(0)[j] % qi;
            out.b.limb(i)[j] = ct.b.limb(0)[j] % qi;
        }
    }
    return out;
}

} // namespace heap::rlwe
