/**
 * @file
 * Hybrid key switching with special primes (Han-Ki [30], the
 * "hybrid key-switching method" of the paper's related work, whose
 * ModUp/ModDown basis conversions the HEAP datapath accelerates —
 * Sections IV-A/IV-E).
 *
 * The basis's last `specialLimbs` primes form the special modulus P;
 * the message limbs are partitioned into groups of `groupSize` limbs
 * (dnum = ceil(L / groupSize) digits). A key has one row per group:
 * row j encrypts P * e_j * s' where e_j is the CRT idempotent of the
 * group modulus. Switching ModUps each group digit into the full QP
 * basis (single-limb groups reduce exactly; larger groups use the
 * exact fast-base-conversion of math/baseconv.h), accumulates against
 * the rows modulo QP, and ModDowns by P.
 *
 * Noise ~ sigma * sqrt(N * dnum / 12) * Q_group / P, so the group
 * product must not exceed the special modulus — checked at key
 * generation. groupSize = 1 with one special prime (the default)
 * needs dnum = L rows; larger groups need fewer rows (fewer NTTs, the
 * paper's ModUp/ModDown traffic) at the price of more special primes.
 */

#ifndef HEAP_RLWE_HYBRID_H
#define HEAP_RLWE_HYBRID_H

#include "rlwe/rlwe.h"

namespace heap::rlwe {

/** Hybrid key-switching key: one RLWE row per limb group. */
struct HybridKeySwitchKey {
    std::vector<Ciphertext> rows; ///< row j: enc(P * e_j * s'), Eval
    size_t groupSize = 1;         ///< limbs per digit (alpha)
    size_t specialLimbs = 1;      ///< primes forming P
};

/**
 * Builds the hybrid key from s' to `to`'s secret. The basis's last
 * `specialLimbs` primes are the special modulus; keys span the full
 * basis. @pre group product <= special product (noise containment).
 */
HybridKeySwitchKey makeHybridKeySwitchKey(const SecretKey& to,
                                          const math::RnsPoly& fromCoeff,
                                          Rng& rng,
                                          const NoiseParams& noise = {},
                                          size_t groupSize = 1,
                                          size_t specialLimbs = 1);

/**
 * Core hybrid application: returns an encryption of x * s' (Eval
 * domain, x's limb count). x must be in Coeff domain and must not
 * occupy the special limbs.
 */
Ciphertext applyHybrid(const math::RnsPoly& x,
                       const HybridKeySwitchKey& ksk);

/**
 * Hybrid key switch of ct = (a, b): returns a ciphertext under `to`'s
 * secret with ct's limb count (Eval domain).
 */
Ciphertext switchKeyHybrid(const Ciphertext& ct,
                           const HybridKeySwitchKey& ksk);

/** Hybrid automorphism key for psi_t(s) -> s. */
HybridKeySwitchKey makeHybridAutomorphismKey(
    const SecretKey& sk, uint64_t t, Rng& rng,
    const NoiseParams& noise = {}, size_t groupSize = 1,
    size_t specialLimbs = 1);

/** Homomorphic automorphism via hybrid switching (Coeff output). */
Ciphertext evalAutoHybrid(const Ciphertext& ct, uint64_t t,
                          const HybridKeySwitchKey& key);

} // namespace heap::rlwe

#endif // HEAP_RLWE_HYBRID_H
