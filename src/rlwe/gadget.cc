#include "rlwe/gadget.h"

#include <bit>

#include "common/check.h"
#include "common/parallel.h"
#include "math/kernels.h"
#include "math/modarith.h"
#include "math/poly.h"
#include "math/scratch.h"

namespace heap::rlwe {

void
GadgetParams::validateFor(const math::RnsBasis& basis) const
{
    HEAP_CHECK(baseBits >= 1 && baseBits <= 32,
               "gadget baseBits out of range: " << baseBits);
    HEAP_CHECK(digitsPerLimb >= 1, "gadget needs at least one digit");
    for (size_t i = 0; i < basis.size(); ++i) {
        const int limbBits = std::bit_width(basis.modulus(i) - 1);
        HEAP_CHECK(digitsPerLimb * baseBits >= limbBits,
                   "gadget digits (" << digitsPerLimb << " x " << baseBits
                                     << " bits) do not cover limb of "
                                     << limbBits << " bits");
    }
}

namespace {

/**
 * Splits the centered value v into d balanced base-B digits written to
 * out[0], out[stride], ..., out[(d-1)*stride]. The top digit absorbs
 * the final remainder.
 */
inline void
decomposeCentered(int64_t v, int d, int baseBits, int64_t* out,
                  size_t stride)
{
    const int64_t base = 1LL << baseBits;
    for (int j = 0; j < d; ++j) {
        if (j == d - 1) {
            out[static_cast<size_t>(j) * stride] = v;
            break;
        }
        int64_t r = v % base;
        if (r > base / 2) {
            r -= base;
        } else if (r < -base / 2) {
            r += base;
        }
        out[static_cast<size_t>(j) * stride] = r;
        v = (v - r) >> baseBits;
    }
}

/**
 * Flat digit decomposition: digit (i, j) occupies
 * out[(i*d + j) * n, +n). Digit values match gadgetDecompose().
 */
void
decomposeInto(const math::RnsPoly& x, const GadgetParams& params,
              std::span<int64_t> out)
{
    const size_t n = x.n();
    const size_t l = x.limbCount();
    const int d = params.digitsPerLimb;
    const uint64_t mask = (1ULL << params.baseBits) - 1;
    for (size_t i = 0; i < l; ++i) {
        const uint64_t qi = x.basis().modulus(i);
        const auto src = x.limb(i);
        int64_t* base = out.data() + i * static_cast<size_t>(d) * n;
        for (size_t t = 0; t < n; ++t) {
            if (!params.balanced) {
                for (int j = 0; j < d; ++j) {
                    base[static_cast<size_t>(j) * n + t] =
                        static_cast<int64_t>(
                            (src[t] >> (j * params.baseBits)) & mask);
                }
                continue;
            }
            decomposeCentered(math::toCentered(src[t], qi), d,
                              params.baseBits, base + t, n);
        }
    }
}

} // namespace

std::vector<std::vector<int64_t>>
gadgetDecompose(const math::RnsPoly& x, const GadgetParams& params)
{
    HEAP_CHECK(x.domain() == Domain::Coeff,
               "gadget decomposition requires Coeff domain");
    const size_t n = x.n();
    const size_t l = x.limbCount();
    const int d = params.digitsPerLimb;
    const uint64_t mask = (1ULL << params.baseBits) - 1;
    std::vector<std::vector<int64_t>> digits(l * d);
    for (size_t i = 0; i < l; ++i) {
        for (int j = 0; j < d; ++j) {
            digits[i * d + j].resize(n);
        }
    }
    for (size_t i = 0; i < l; ++i) {
        const uint64_t qi = x.basis().modulus(i);
        const auto src = x.limb(i);
        for (size_t t = 0; t < n; ++t) {
            if (!params.balanced) {
                for (int j = 0; j < d; ++j) {
                    digits[i * d + j][t] = static_cast<int64_t>(
                        (src[t] >> (j * params.baseBits)) & mask);
                }
                continue;
            }
            // Balanced: decompose the centered representative with
            // digits in [-B/2, B/2] (carry propagation); the top
            // digit absorbs the final remainder.
            int64_t local[64];
            HEAP_ASSERT(d <= 64, "too many gadget digits");
            decomposeCentered(math::toCentered(src[t], qi), d,
                              params.baseBits, local, 1);
            for (int j = 0; j < d; ++j) {
                digits[i * d + j][t] = local[j];
            }
        }
    }
    return digits;
}

GadgetCiphertext
gadgetEncrypt(const SecretKey& sk, const math::RnsPoly& msg,
              const GadgetParams& params, Rng& rng,
              const NoiseParams& noise)
{
    auto basis = sk.basisPtr();
    params.validateFor(*basis);
    HEAP_CHECK(msg.limbCount() == basis->size(),
               "gadget message must be at the full basis");
    HEAP_CHECK(msg.domain() == Domain::Coeff,
               "gadget message must be in Coeff domain");
    const size_t l = basis->size();
    const int d = params.digitsPerLimb;

    const auto& powers =
        basis->gadgetPowersFor(params.baseBits, d);
    const math::KernelOps& ops = math::kernels();
    math::ScratchFrame scratch;
    auto contrib = scratch.borrow(basis->n());
    std::vector<Ciphertext> rows;
    rows.reserve(l * d);
    for (size_t i = 0; i < l; ++i) {
        const uint64_t qi = basis->modulus(i);
        for (int j = 0; j < d; ++j) {
            Ciphertext row = encryptZero(sk, l, rng, noise);
            // Add e_i * B^j * msg: only limb i receives a contribution
            // because the CRT idempotent e_i vanishes mod q_k, k != i.
            ops.mulScalarShoup(contrib.data(), msg.limb(i).data(),
                               powers.pow[i * d + j],
                               powers.powShoup[i * d + j],
                               basis->n(), qi);
            basis->ntt(i).forward(contrib);
            auto dst = row.b.limb(i);
            ops.addMod(dst.data(), dst.data(), contrib.data(),
                       basis->n(), qi);
            rows.push_back(std::move(row));
        }
    }
    return GadgetCiphertext(std::move(rows), params);
}

Ciphertext
gadgetApply(const math::RnsPoly& x, const GadgetCiphertext& K)
{
    auto basis = x.basisPtr();
    const size_t n = x.n();
    const size_t l = x.limbCount();
    const int d = K.params().digitsPerLimb;
    HEAP_CHECK(x.domain() == Domain::Coeff,
               "gadget decomposition requires Coeff domain");
    HEAP_CHECK(K.rowCount() >= l * static_cast<size_t>(d),
               "gadget ciphertext has too few rows");

    // Decompose every limb once into a flat signed-digit buffer; the
    // digits are shared read-only by all output limbs.
    math::ScratchFrame scratch;
    auto digits = scratch.borrowSigned(l * static_cast<size_t>(d) * n);
    decomposeInto(x, K.params(), digits);

    Ciphertext acc;
    acc.a = math::RnsPoly(basis, l, Domain::Eval);
    acc.b = math::RnsPoly(basis, l, Domain::Eval);

    // Fused per-limb pipeline (lift digit -> NTT -> multiply-accumulate
    // both components): each output limb is independent, so the limb
    // loop fans out exactly like RnsPoly::toEval. Digit magnitudes are
    // < B < every modulus, so liftSigned's |v| < q precondition holds.
    auto processLimb = [&](size_t k) {
        const uint64_t qk = basis->modulus(k);
        const auto& red = basis->reducer(k);
        const math::KernelOps& ops = math::kernels();
        math::ScratchFrame inner;
        auto tmp = inner.borrow(n);
        auto accA = acc.a.limb(k);
        auto accB = acc.b.limb(k);
        for (size_t i = 0; i < l; ++i) {
            for (int j = 0; j < d; ++j) {
                const int64_t* dig =
                    digits.data()
                    + (i * static_cast<size_t>(d)
                       + static_cast<size_t>(j))
                          * n;
                ops.liftSigned(tmp.data(), dig, n, qk);
                basis->ntt(k).forward(tmp);
                const Ciphertext& row = K.row(i, j);
                ops.mulModAccum(accA.data(), tmp.data(),
                                row.a.limb(k).data(), n, red);
                ops.mulModAccum(accB.data(), tmp.data(),
                                row.b.limb(k).data(), n, red);
            }
        }
    };
    if (l >= 2 && n >= 1024) {
        parallelFor(0, l, 1, processLimb);
    } else {
        for (size_t k = 0; k < l; ++k) {
            processLimb(k);
        }
    }
    return acc;
}

GadgetCiphertext
makeKeySwitchKey(const SecretKey& to, const math::RnsPoly& fromKeyCoeff,
                 const GadgetParams& params, Rng& rng,
                 const NoiseParams& noise)
{
    return gadgetEncrypt(to, fromKeyCoeff, params, rng, noise);
}

Ciphertext
switchKey(const Ciphertext& ct, const GadgetCiphertext& ksk)
{
    math::RnsPoly aCoeff = ct.a;
    aCoeff.toCoeff();
    Ciphertext out = gadgetApply(aCoeff, ksk);
    math::RnsPoly b = ct.b;
    b.toEval();
    out.b.addInPlace(b);
    return out;
}

Ciphertext
evalAuto(const Ciphertext& ct, uint64_t t, const GadgetCiphertext& key)
{
    Ciphertext c = ct;
    c.toCoeff();
    Ciphertext mapped = c.automorphism(t);
    // mapped decrypts under psi_t(s); switch its a-component back.
    Ciphertext out = switchKey(mapped, key);
    out.toCoeff();
    return out;
}

GadgetCiphertext
makeAutomorphismKey(const SecretKey& sk, uint64_t t,
                    const GadgetParams& params, Rng& rng,
                    const NoiseParams& noise)
{
    auto basis = sk.basisPtr();
    math::RnsPoly sCoeff =
        math::rnsFromSigned(basis, basis->size(), sk.coeffs());
    return makeKeySwitchKey(sk, sCoeff.automorphism(t), params, rng,
                            noise);
}

RgswCiphertext
rgswEncrypt(const SecretKey& sk, const math::RnsPoly& mu,
            const GadgetParams& params, Rng& rng,
            const NoiseParams& noise)
{
    HEAP_CHECK(mu.domain() == Domain::Coeff,
               "RGSW message must be in Coeff domain");
    RgswCiphertext out;
    out.forB = gadgetEncrypt(sk, mu, params, rng, noise);
    math::RnsPoly muS = mu;
    muS.toEval();
    muS.mulPointwiseInPlace(sk.eval());
    muS.toCoeff();
    out.forA = gadgetEncrypt(sk, muS, params, rng, noise);
    return out;
}

RgswCiphertext
rgswEncryptConstant(const SecretKey& sk, int64_t value,
                    const GadgetParams& params, Rng& rng,
                    const NoiseParams& noise)
{
    auto basis = sk.basisPtr();
    std::vector<int64_t> coeffs(basis->n(), 0);
    coeffs[0] = value;
    const auto mu = math::rnsFromSigned(basis, basis->size(), coeffs);
    return rgswEncrypt(sk, mu, params, rng, noise);
}

Ciphertext
externalProduct(const Ciphertext& ct, const RgswCiphertext& C)
{
    math::RnsPoly b = ct.b;
    b.toCoeff();
    math::RnsPoly a = ct.a;
    a.toCoeff();
    Ciphertext out = gadgetApply(b, C.forB);
    const Ciphertext fromA = gadgetApply(a, C.forA);
    out.addInPlace(fromA);
    return out;
}

RgswCiphertext
internalProduct(const RgswCiphertext& A, const RgswCiphertext& B)
{
    auto transformHalf = [&](const GadgetCiphertext& half) {
        std::vector<Ciphertext> rows;
        rows.reserve(half.rowCount());
        const int d = half.params().digitsPerLimb;
        const size_t limbs = half.rowCount() / static_cast<size_t>(d);
        for (size_t i = 0; i < limbs; ++i) {
            for (int j = 0; j < d; ++j) {
                Ciphertext out = externalProduct(
                    half.row(i, static_cast<size_t>(j)), B);
                out.toEval();
                rows.push_back(std::move(out));
            }
        }
        return GadgetCiphertext(std::move(rows), half.params());
    };
    RgswCiphertext out;
    out.forB = transformHalf(A.forB);
    out.forA = transformHalf(A.forA);
    return out;
}

} // namespace heap::rlwe
