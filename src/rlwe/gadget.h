/**
 * @file
 * RNS gadget decomposition, gadget (key-switching) ciphertexts, RGSW
 * ciphertexts, and the external product.
 *
 * The gadget realizes the paper's decomposition degree d (Section
 * III-C, d = 2): every active limb [x]_{q_i} is split into d base-B
 * digits (B = 2^baseBits; for 36-bit limbs and d = 2 the digits are
 * 18-bit, exactly the paper's configuration). The gadget vector entry
 * for (limb i, digit j) is g_{i,j} = e_i * B^j where e_i is the CRT
 * idempotent of q_i, so
 *
 *     sum_{i,j} Digit_{i,j}(x) * g_{i,j} = x  (mod Q_l)
 *
 * holds at *every* level l: since e_i = delta_{ik} (mod q_k), a key
 * generated once at the full basis restricts to a valid key at any
 * level simply by ignoring the dropped limbs. CKKS KeySwitch (relin,
 * rotation, conjugation), the Chen et al. repacking, and the TFHE
 * ExternalProduct all reuse this one mechanism — mirroring the paper's
 * observation that the basis-conversion datapath and the
 * ExternalProduct datapath are the same hardware (Section IV-E).
 */

#ifndef HEAP_RLWE_GADGET_H
#define HEAP_RLWE_GADGET_H

#include <cstdint>
#include <vector>

#include "rlwe/rlwe.h"

namespace heap::rlwe {

/** Gadget configuration: digits of B = 2^baseBits per RNS limb. */
struct GadgetParams {
    int baseBits = 18;      ///< log2 of the digit base B
    int digitsPerLimb = 2;  ///< the paper's decomposition degree d
    /** Balanced (signed) digits in [-B/2, B/2] instead of [0, B):
     *  halves the decomposition noise at identical cost. */
    bool balanced = true;

    /** Digits must cover the widest limb: d * baseBits >= limb bits. */
    void validateFor(const math::RnsBasis& basis) const;
};

/**
 * Splits every active limb of x (Coeff domain) into base-B digit
 * polynomials. Returns limbCount*d vectors ordered (limb 0 digit 0,
 * limb 0 digit 1, ..., limb 1 digit 0, ...). Digit coefficients are
 * in [0, B) (unsigned mode) or [-B/2, B/2] (balanced mode, applied to
 * the centered representative).
 */
std::vector<std::vector<int64_t>> gadgetDecompose(
    const math::RnsPoly& x, const GadgetParams& params);

/**
 * A vector of RLWE rows encrypting g_{i,j} * msg: the key-switching
 * key / half of an RGSW ciphertext. Rows are stored at the full basis
 * in Eval domain; row(i, j) = rows[i * d + j].
 */
class GadgetCiphertext {
  public:
    GadgetCiphertext() = default;
    GadgetCiphertext(std::vector<Ciphertext> rows, GadgetParams params)
        : rows_(std::move(rows)), params_(params)
    {
    }

    const GadgetParams& params() const { return params_; }
    const Ciphertext& row(size_t i, size_t j) const
    {
        return rows_[i * params_.digitsPerLimb + j];
    }
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<Ciphertext> rows_;
    GadgetParams params_;
};

/**
 * Generates a gadget encryption of `msg` (full-basis, Coeff domain)
 * under `sk`: row (i, j) encrypts e_i * B^j * msg.
 */
GadgetCiphertext gadgetEncrypt(const SecretKey& sk,
                               const math::RnsPoly& msg,
                               const GadgetParams& params, Rng& rng,
                               const NoiseParams& noise = {});

/**
 * Computes sum_{i,j} Digit_{i,j}(x) (*) K.row(i,j) restricted to
 * x's limb count — an RLWE encryption of approximately x * msg(K).
 *
 * @param x polynomial to decompose (Coeff domain, l limbs)
 * @return ciphertext with l limbs in Eval domain
 */
Ciphertext gadgetApply(const math::RnsPoly& x, const GadgetCiphertext& K);

/**
 * Key-switching key from secret s' to secret s: gadget encryption of
 * s' under s. Switching ct = (a, b) valid under (s', s-shared-b...)
 * is performed by switchKey below.
 */
GadgetCiphertext makeKeySwitchKey(const SecretKey& to,
                                  const math::RnsPoly& fromKeyCoeff,
                                  const GadgetParams& params, Rng& rng,
                                  const NoiseParams& noise = {});

/**
 * Applies a key switch to a ciphertext whose a-component multiplies a
 * foreign secret s': returns (a'', b + b'') such that the result
 * decrypts under `to`'s secret. Input may be in either domain; output
 * is Eval.
 */
Ciphertext switchKey(const Ciphertext& ct, const GadgetCiphertext& ksk);

/**
 * Homomorphic Galois automorphism: maps an encryption of m(X) to an
 * encryption of m(X^t) under the same key, using the key-switching
 * key for psi_t(s) (the paper's automorph unit + KeySwitch pair that
 * realizes CKKS Rotate). Output is in Coeff domain.
 */
Ciphertext evalAuto(const Ciphertext& ct, uint64_t t,
                    const GadgetCiphertext& key);

/** Builds the key-switching key for evalAuto with exponent t. */
GadgetCiphertext makeAutomorphismKey(const SecretKey& sk, uint64_t t,
                                     const GadgetParams& params, Rng& rng,
                                     const NoiseParams& noise = {});

/**
 * RGSW ciphertext of a small message mu: two gadget halves, one
 * encrypting mu (applied against the b-component) and one encrypting
 * mu * s (applied against the a-component).
 */
struct RgswCiphertext {
    GadgetCiphertext forB; ///< rows encrypt g_{i,j} * mu
    GadgetCiphertext forA; ///< rows encrypt g_{i,j} * mu * s
};

/** Encrypts mu (full-basis Coeff domain) as an RGSW ciphertext. */
RgswCiphertext rgswEncrypt(const SecretKey& sk, const math::RnsPoly& mu,
                           const GadgetParams& params, Rng& rng,
                           const NoiseParams& noise = {});

/** Convenience: RGSW of a small signed constant. */
RgswCiphertext rgswEncryptConstant(const SecretKey& sk, int64_t value,
                                   const GadgetParams& params, Rng& rng,
                                   const NoiseParams& noise = {});

/**
 * External product ct (x) C -> RLWE(mu * m) where ct = RLWE(m).
 * Input in Coeff domain preferred (decomposition happens there);
 * output has ct's limb count, Eval domain.
 */
Ciphertext externalProduct(const Ciphertext& ct, const RgswCiphertext& C);

/**
 * Internal product RGSW(muA) (x) RGSW(muB) -> RGSW(muA * muB): every
 * RLWE row of A is externally multiplied by B (Section VII-A's
 * standalone-TFHE construction). Noise grows by one external-product
 * step per row.
 */
RgswCiphertext internalProduct(const RgswCiphertext& A,
                               const RgswCiphertext& B);

} // namespace heap::rlwe

#endif // HEAP_RLWE_GADGET_H
