/**
 * @file
 * RLWE ciphertexts and secret keys over an RNS basis.
 *
 * An RLWE ciphertext is the pair ct = (a, b) with decryption phase
 * phi = b + a*s (mod Q_l). This type is shared between the CKKS side
 * (where it carries a scale) and the TFHE side (blind-rotation
 * accumulators, repacking) of the scheme-switching pipeline.
 */

#ifndef HEAP_RLWE_RLWE_H
#define HEAP_RLWE_RLWE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "math/rns.h"
#include "math/sampling.h"

namespace heap::rlwe {

using math::Domain;
using math::RnsBasis;
using math::RnsPoly;

/**
 * Ring secret key: small signed coefficients plus cached RNS
 * evaluation-domain forms at the full basis.
 */
class SecretKey {
  public:
    /** Wraps signed coefficients (ternary or Gaussian) as a key. */
    SecretKey(std::shared_ptr<const RnsBasis> basis,
              std::vector<int64_t> coeffs);

    /** Samples a uniform ternary secret. */
    static SecretKey sampleTernary(std::shared_ptr<const RnsBasis> basis,
                                   Rng& rng);

    /** Samples a ternary secret with fixed Hamming weight. */
    static SecretKey sampleTernaryHamming(
        std::shared_ptr<const RnsBasis> basis, size_t hamming, Rng& rng);

    const std::vector<int64_t>& coeffs() const { return coeffs_; }
    std::shared_ptr<const RnsBasis> basisPtr() const { return basis_; }

    /** Full-basis evaluation-domain form of s. */
    const RnsPoly& eval() const { return eval_; }

    /** Full-basis evaluation-domain form of s^2 (cached lazily). */
    const RnsPoly& evalSquared() const;

  private:
    std::shared_ptr<const RnsBasis> basis_;
    std::vector<int64_t> coeffs_;
    RnsPoly eval_;
    mutable RnsPoly evalSquared_;
};

/** An RLWE ciphertext (a, b); phase(ct) = b + a * s. */
struct Ciphertext {
    RnsPoly a;
    RnsPoly b;

    Ciphertext() = default;
    Ciphertext(RnsPoly a_, RnsPoly b_)
        : a(std::move(a_)), b(std::move(b_))
    {
    }

    size_t limbCount() const { return b.limbCount(); }
    Domain domain() const { return b.domain(); }

    void toEval();
    void toCoeff();
    void addInPlace(const Ciphertext& other);
    void subInPlace(const Ciphertext& other);
    void negInPlace();
    void mulScalarInPlace(uint64_t c);

    /** Both components multiplied by X^k (Coeff domain). */
    Ciphertext monomialMul(uint64_t k) const;

    /** Both components mapped through X -> X^t (Coeff domain). */
    Ciphertext automorphism(uint64_t t) const;

    /** Rescales both components by the last limb and drops it. */
    void rescaleLastLimb();

    /** Drops trailing limbs without scaling. */
    void dropLimbs(size_t count = 1);
};

/** Noise parameters used at encryption time. */
struct NoiseParams {
    double errorStdDev = math::kErrorStdDev;
};

/** Encryption of zero under s at the given limb count (Eval domain). */
Ciphertext encryptZero(const SecretKey& sk, size_t limbs, Rng& rng,
                       const NoiseParams& noise = {});

/**
 * Symmetric encryption: zero encryption plus the message.
 * @param msg message polynomial; converted to Eval internally.
 */
Ciphertext encrypt(const SecretKey& sk, const RnsPoly& msg, Rng& rng,
                   const NoiseParams& noise = {});

/** Noiseless trivial encryption (0, msg). */
Ciphertext trivialEncrypt(RnsPoly msg);

/** Computes the decryption phase b + a*s in Coeff domain. */
RnsPoly phase(const Ciphertext& ct, const SecretKey& sk);

/**
 * Decrypts to centered signed coefficients (exact CRT; values must be
 * below 2^62 in magnitude).
 */
std::vector<int64_t> decryptSigned(const Ciphertext& ct,
                                   const SecretKey& sk);

/** Decrypts to centered long-double coefficients (large levels). */
std::vector<long double> decryptCentered(const Ciphertext& ct,
                                         const SecretKey& sk);

/**
 * Re-expresses a ciphertext whose entries live in the first limb of
 * `basis` as a ciphertext modulo the first `limbs` limbs by lifting
 * each entry r in [0, q_0) to the integer r (CKKS ModRaise; step 4 of
 * Algorithm 2 adds the lifted ct' to the blind-rotated ct_kq).
 */
Ciphertext liftToLimbs(const Ciphertext& ct, size_t limbs);

} // namespace heap::rlwe

#endif // HEAP_RLWE_RLWE_H
