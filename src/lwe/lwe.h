/**
 * @file
 * LWE ciphertexts and the TFHE-side scalar operations of the paper:
 * Extract (sample extraction, Eq. 2), ModulusSwitch (to 2N), and LWE
 * key switching (dimension reduction, Section VII-A).
 *
 * An LWE ciphertext is ct = (a, b) in Z_q^{n+1} with phase
 * phi = b + <a, s>. Moduli here are arbitrary (powers of two such as
 * 2N included) — no NTT is ever applied to LWE data.
 */

#ifndef HEAP_LWE_LWE_H
#define HEAP_LWE_LWE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/noise_budget.h"
#include "common/rng.h"

namespace heap::lwe {

/** LWE ciphertext: mask vector a, body b, working modulus q. */
struct LweCiphertext {
    std::vector<uint64_t> a;
    uint64_t b = 0;
    uint64_t modulus = 0;
    /** Predicted noise record (metadata; never feeds the arithmetic). */
    NoiseBudget budget;

    size_t dimension() const { return a.size(); }
};

/** LWE secret key: small signed coefficients. */
struct LweSecretKey {
    std::vector<int64_t> coeffs;

    /** Samples a uniform ternary key of dimension n. */
    static LweSecretKey sampleTernary(size_t n, Rng& rng);
};

/** Computes the phase b + <a, s> centered in (-q/2, q/2]. */
int64_t lwePhase(const LweCiphertext& ct, const LweSecretKey& sk);

/** Encrypts the centered message m with Gaussian noise. */
LweCiphertext lweEncrypt(int64_t m, const LweSecretKey& sk, uint64_t q,
                         Rng& rng, double errStdDev = 3.2);

/** Decrypts to the centered phase (message + noise). */
inline int64_t
lweDecrypt(const LweCiphertext& ct, const LweSecretKey& sk)
{
    return lwePhase(ct, sk);
}

/**
 * Extract (Eq. 2): forms the LWE ciphertext of coefficient `idx` of an
 * RLWE ciphertext (a(X), b(X)) given as raw single-modulus coefficient
 * vectors. The LWE secret is the RLWE secret's coefficient vector.
 */
LweCiphertext extractLwe(std::span<const uint64_t> aPoly,
                         std::span<const uint64_t> bPoly, size_t idx,
                         uint64_t modulus);

/**
 * ModulusSwitch: rescales every entry from modulus q to newModulus by
 * rounding round(x * newModulus / q). The paper's Algorithm 2 instead
 * uses the exact-division form computed at the RLWE level (see
 * boot/scheme_switch.h); this rounding form serves standalone TFHE.
 */
LweCiphertext lweModSwitch(const LweCiphertext& ct, uint64_t newModulus);

/**
 * LWE key-switching key: for every source-key coefficient j and digit
 * d, an encryption of s_j * B^d under the destination key. This is the
 * paper's "vector of h*N*d LWE ciphertexts" (Section II-B).
 */
struct LweKeySwitchKey {
    // rows[j * digits + d] encrypts sSrc_j * B^d.
    std::vector<LweCiphertext> rows;
    int baseBits = 0;
    int digits = 0;
    size_t srcDim = 0;
    /** Error width the rows were encrypted with (noise tracking). */
    double errStdDev = 3.2;
};

/** Builds a key-switching key from `src` to `dst` at modulus q. */
LweKeySwitchKey makeLweKeySwitchKey(const LweSecretKey& dst,
                                    const LweSecretKey& src, uint64_t q,
                                    int baseBits, Rng& rng,
                                    double errStdDev = 3.2);

/** Switches ct (under src) to an LWE ciphertext under dst. */
LweCiphertext lweKeySwitch(const LweCiphertext& ct,
                           const LweKeySwitchKey& ksk);

} // namespace heap::lwe

#endif // HEAP_LWE_LWE_H
