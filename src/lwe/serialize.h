/**
 * @file
 * Wire format for LWE ciphertexts — the payloads the Section V
 * protocol streams between the primary and secondary nodes.
 */

#ifndef HEAP_LWE_SERIALIZE_H
#define HEAP_LWE_SERIALIZE_H

#include "common/serialize.h"
#include "lwe/lwe.h"

namespace heap::lwe {

/** "HEAPLW02": leads the current LWE wire format (with budget). */
constexpr uint64_t kLweMagic = 0x484541504C573032ULL;

inline void
saveLwe(const LweCiphertext& ct, ByteWriter& w)
{
    w.u64(kLweMagic);
    saveNoiseBudget(ct.budget, w);
    w.u64(ct.modulus);
    w.u64(ct.b);
    w.u64Span(ct.a);
}

inline LweCiphertext
loadLwe(ByteReader& r)
{
    LweCiphertext ct;
    // The legacy (pre-budget) format led with the modulus. Dispatch on
    // the first word: the magic cannot collide with a sane modulus.
    const uint64_t head = r.u64();
    if (head == kLweMagic) {
        ct.budget = loadNoiseBudget(r);
        ct.modulus = r.u64();
    } else {
        ct.modulus = head;
    }
    HEAP_CHECK(ct.modulus >= 2, "corrupt LWE modulus");
    ct.b = r.u64();
    HEAP_CHECK(ct.b < ct.modulus, "corrupt LWE body");
    ct.a = r.u64Vec(1 << 20);
    HEAP_CHECK(!ct.a.empty(), "empty LWE mask");
    for (size_t i = 0; i < ct.a.size(); ++i) {
        HEAP_CHECK(ct.a[i] < ct.modulus,
                   "corrupt LWE mask entry at index " << i);
    }
    return ct;
}

} // namespace heap::lwe

#endif // HEAP_LWE_SERIALIZE_H
