#include "lwe/lwe.h"

#include <bit>
#include <cmath>

#include "common/check.h"
#include "math/modarith.h"
#include "math/sampling.h"

namespace heap::lwe {

using math::addMod;
using math::fromCentered;
using math::mulModNaive;
using math::negMod;
using math::subMod;
using math::toCentered;

LweSecretKey
LweSecretKey::sampleTernary(size_t n, Rng& rng)
{
    return LweSecretKey{math::sampleTernary(n, rng)};
}

int64_t
lwePhase(const LweCiphertext& ct, const LweSecretKey& sk)
{
    HEAP_CHECK(ct.a.size() == sk.coeffs.size(),
               "LWE dimension mismatch: " << ct.a.size() << " vs "
                                          << sk.coeffs.size());
    const uint64_t q = ct.modulus;
    uint64_t acc = ct.b % q;
    for (size_t j = 0; j < ct.a.size(); ++j) {
        const int64_t s = sk.coeffs[j];
        if (s == 0) {
            continue;
        }
        const uint64_t term =
            mulModNaive(ct.a[j] % q, fromCentered(s, q), q);
        acc = addMod(acc, term, q);
    }
    return toCentered(acc, q);
}

LweCiphertext
lweEncrypt(int64_t m, const LweSecretKey& sk, uint64_t q, Rng& rng,
           double errStdDev)
{
    LweCiphertext ct;
    ct.modulus = q;
    ct.a.resize(sk.coeffs.size());
    for (auto& v : ct.a) {
        v = rng.uniform(q);
    }
    // b = m + e - <a, s>.
    const int64_t e =
        static_cast<int64_t>(std::llround(rng.gaussian() * errStdDev));
    uint64_t b = fromCentered(m + e, q);
    for (size_t j = 0; j < ct.a.size(); ++j) {
        const int64_t s = sk.coeffs[j];
        if (s == 0) {
            continue;
        }
        b = subMod(b, mulModNaive(ct.a[j], fromCentered(s, q), q), q);
    }
    ct.b = b;
    ct.budget.tracked = true;
    ct.budget.sigma = errStdDev;
    ct.budget.messageRms = std::abs(static_cast<double>(m));
    return ct;
}

LweCiphertext
extractLwe(std::span<const uint64_t> aPoly, std::span<const uint64_t> bPoly,
           size_t idx, uint64_t modulus)
{
    const size_t n = aPoly.size();
    HEAP_CHECK(bPoly.size() == n, "RLWE component size mismatch");
    HEAP_CHECK(idx < n, "extraction index out of range");
    LweCiphertext ct;
    ct.modulus = modulus;
    ct.b = bPoly[idx] % modulus;
    ct.a.resize(n);
    // Coefficient idx of a(X)*s(X) mod X^N+1 equals
    //   sum_{k<=idx} a_{idx-k} s_k - sum_{k>idx} a_{N+idx-k} s_k,
    // so the LWE mask pairs s_k with a_{idx-k} (negated on wraparound):
    // Eq. (2) of the paper.
    for (size_t k = 0; k < n; ++k) {
        if (k <= idx) {
            ct.a[k] = aPoly[idx - k] % modulus;
        } else {
            ct.a[k] = negMod(aPoly[n + idx - k] % modulus, modulus);
        }
    }
    return ct;
}

LweCiphertext
lweModSwitch(const LweCiphertext& ct, uint64_t newModulus)
{
    HEAP_CHECK(newModulus >= 2, "bad target modulus");
    const long double ratio = static_cast<long double>(newModulus)
                              / static_cast<long double>(ct.modulus);
    auto sw = [&](uint64_t x) {
        const auto r = static_cast<uint64_t>(
            std::llroundl(static_cast<long double>(x) * ratio));
        return r % newModulus;
    };
    LweCiphertext out;
    out.modulus = newModulus;
    out.b = sw(ct.b);
    out.a.resize(ct.a.size());
    for (size_t j = 0; j < ct.a.size(); ++j) {
        out.a[j] = sw(ct.a[j]);
    }
    out.budget = ct.budget;
    if (ct.budget.tracked) {
        // Scaled error plus n+1 rounding terms, each uniform in
        // [-1/2, 1/2], of which ~2/3 survive the ternary secret.
        const double r = static_cast<double>(ratio);
        const double rounding = std::sqrt(
            (1.0 + (2.0 / 3.0) * static_cast<double>(ct.a.size()))
            / 12.0);
        out.budget.sigma = std::hypot(ct.budget.sigma * r, rounding);
        out.budget.messageRms = ct.budget.messageRms * r;
    }
    return out;
}

LweKeySwitchKey
makeLweKeySwitchKey(const LweSecretKey& dst, const LweSecretKey& src,
                    uint64_t q, int baseBits, Rng& rng, double errStdDev)
{
    HEAP_CHECK(baseBits >= 1 && baseBits < 32, "bad key-switch base");
    LweKeySwitchKey ksk;
    ksk.baseBits = baseBits;
    ksk.errStdDev = errStdDev;
    ksk.srcDim = src.coeffs.size();
    const int qBits = std::bit_width(q - 1);
    ksk.digits = (qBits + baseBits - 1) / baseBits;
    ksk.rows.reserve(ksk.srcDim * static_cast<size_t>(ksk.digits));
    for (size_t j = 0; j < ksk.srcDim; ++j) {
        for (int d = 0; d < ksk.digits; ++d) {
            const uint64_t scale = math::powMod(1ULL << baseBits,
                                                static_cast<uint64_t>(d),
                                                q);
            const int64_t msg = toCentered(
                mulModNaive(fromCentered(src.coeffs[j], q), scale, q), q);
            ksk.rows.push_back(lweEncrypt(msg, dst, q, rng, errStdDev));
        }
    }
    return ksk;
}

LweCiphertext
lweKeySwitch(const LweCiphertext& ct, const LweKeySwitchKey& ksk)
{
    HEAP_CHECK(ct.a.size() == ksk.srcDim, "key-switch dimension mismatch");
    HEAP_CHECK(!ksk.rows.empty(), "empty key-switch key");
    const uint64_t q = ct.modulus;
    const uint64_t mask = (1ULL << ksk.baseBits) - 1;
    const size_t dstDim = ksk.rows.front().a.size();

    LweCiphertext out;
    out.modulus = q;
    out.b = ct.b % q;
    out.a.assign(dstDim, 0);
    for (size_t j = 0; j < ksk.srcDim; ++j) {
        uint64_t v = ct.a[j] % q;
        for (int d = 0; d < ksk.digits; ++d) {
            const uint64_t dig = (v >> (d * ksk.baseBits)) & mask;
            if (dig == 0) {
                continue;
            }
            const auto& row =
                ksk.rows[j * static_cast<size_t>(ksk.digits)
                         + static_cast<size_t>(d)];
            out.b = addMod(out.b, mulModNaive(dig, row.b, q), q);
            for (size_t k = 0; k < dstDim; ++k) {
                out.a[k] =
                    addMod(out.a[k], mulModNaive(dig, row.a[k], q), q);
            }
        }
    }
    out.budget = ct.budget;
    if (ct.budget.tracked) {
        // srcDim * digits rows, each scaled by an unsigned digit
        // uniform in [0, B) (second moment B^2/3).
        const double base = std::pow(2.0, ksk.baseBits);
        const double terms = static_cast<double>(ksk.srcDim)
                             * static_cast<double>(ksk.digits);
        const double kskNoise =
            ksk.errStdDev * std::sqrt(terms * base * base / 3.0);
        out.budget.sigma = std::hypot(ct.budget.sigma, kskNoise);
        ++out.budget.keySwitches;
    }
    return out;
}

} // namespace heap::lwe
