/**
 * @file
 * Shared pieces of Algorithm 2 used by both the single-process
 * bootstrapper (scheme_switch.h) and the distributed multi-node
 * protocol (distributed.h): the exact-division modulus switch
 * (steps 1-2), the pre-scaled triangle test polynomial, and the
 * finishing arithmetic (steps 4-5).
 */

#ifndef HEAP_BOOT_ALGORITHM2_H
#define HEAP_BOOT_ALGORITHM2_H

#include "ckks/context.h"
#include "lwe/lwe.h"

namespace heap::boot {

/** Output of Algorithm 2's steps 1-2. */
struct ModSwitched {
    rlwe::Ciphertext ctPrime;   ///< 2N * ct (mod q), single limb
    std::vector<uint64_t> aMs;  ///< (2N*a - a') / q, entries in [0, 2N)
    std::vector<uint64_t> bMs;
};

/**
 * Steps 1-2: ct' = 2N*ct (mod q) and the exact-division modulus
 * switch to R_2N. @pre in is a level-1 Coeff-domain ciphertext.
 */
ModSwitched modSwitchSplit(const rlwe::Ciphertext& in,
                           const math::RnsBasis& basis);

/**
 * The blind-rotation LUT of Algorithm 2: F(u) = q0 * u on the
 * identity window, pre-divided by the repacking gain N, over the full
 * bootstrapping basis Qp.
 */
math::RnsPoly makeBootstrapTestPoly(
    std::shared_ptr<const math::RnsBasis> basis);

/**
 * Steps 4-5: ct'' = ct_kq + lift(ct'), multiply by round(p/2N),
 * rescale by p. Returns the refreshed CKKS ciphertext.
 *
 * @param ctKq  repacked blind-rotation output (full basis)
 * @param ms    the step 1-2 artifacts
 * @param inScale/slots metadata of the original ciphertext
 */
ckks::Ciphertext finishBootstrap(rlwe::Ciphertext ctKq,
                                 const ModSwitched& ms,
                                 const math::RnsBasis& basis,
                                 double inScale, size_t slots);

/** Output of the full front phase (steps 1-2 plus extraction). */
struct FrontPhase {
    ModSwitched ms;
    /** All n extracted blind-rotate work items, in index order, each
     *  stamped with the modulus-switched budget. */
    std::vector<lwe::LweCiphertext> items;
};

/**
 * The complete front half of Algorithm 2 as one unit: budget
 * validation, the exact-division modulus switch, and extraction of
 * all n LWE work items. Every item carries the modulus-switched
 * budget (the input error scaled by 2N/q0) so any item may cross a
 * link; the budget never feeds the rotation arithmetic, which keeps
 * local and remote lanes interchangeable. Shared by the sequential
 * bootstrappers and the serving runtime's front stage so both paths
 * extract byte-identical items.
 *
 * @pre in is a level-1 ciphertext; throws UserError otherwise.
 */
FrontPhase runFrontPhase(const ckks::Context& ctx,
                         const ckks::Ciphertext& in,
                         double minBudgetBits, const char* who);

/**
 * Input validation for bootstrap(): if `in` carries a tracked budget
 * and the context guard is active, requires at least `minBudgetBits`
 * of remaining budget (the scheme-switch path needs the phase to stay
 * inside the triangle LUT's identity window, so > 1 bit; the
 * conventional path only needs decryptability, so > 0). Reports
 * through the context's guard policy, naming `who`.
 */
void checkBootstrappable(const ckks::Context& ctx,
                         const ckks::Ciphertext& in,
                         double minBudgetBits, const char* who);

/**
 * Predicted output budget of an Algorithm 2 bootstrap: the input
 * error amplified by 2N, the repacked blind-rotation error, the
 * multiply by c = round(p/2N), and the final rescale by p. Counter
 * provenance is inherited from `in` with bootstraps incremented.
 *
 * @param brSigma predicted accumulator error of one blind rotation
 *                (see tfhe::blindRotateSigma), in Qp units
 */
NoiseBudget bootstrapOutputBudget(const ckks::Context& ctx,
                                  const ckks::Ciphertext& in,
                                  double brSigma,
                                  const math::RnsBasis& bootBasis);

} // namespace heap::boot

#endif // HEAP_BOOT_ALGORITHM2_H
