#include "boot/algorithm2.h"

#include "common/check.h"
#include "math/modarith.h"
#include "tfhe/blind_rotate.h"

namespace heap::boot {

ModSwitched
modSwitchSplit(const rlwe::Ciphertext& in, const math::RnsBasis& basis)
{
    HEAP_CHECK(in.limbCount() == 1, "expected a level-1 ciphertext");
    const size_t n = basis.n();
    const uint64_t twoN = 2 * n;
    const uint64_t q0 = basis.modulus(0);

    ModSwitched ms;
    rlwe::Ciphertext ct = in;
    ct.toCoeff();
    ms.ctPrime = ct;
    ms.ctPrime.mulScalarInPlace(twoN % q0);

    auto exactDiv = [&](std::span<const uint64_t> x,
                        std::span<const uint64_t> xPrime,
                        std::vector<uint64_t>& out) {
        out.resize(n);
        for (size_t j = 0; j < n; ++j) {
            const auto prod = static_cast<math::uint128>(x[j]) * twoN;
            out[j] = static_cast<uint64_t>((prod - xPrime[j]) / q0);
        }
    };
    exactDiv(ct.a.limb(0), ms.ctPrime.a.limb(0), ms.aMs);
    exactDiv(ct.b.limb(0), ms.ctPrime.b.limb(0), ms.bMs);
    return ms;
}

math::RnsPoly
makeBootstrapTestPoly(std::shared_ptr<const math::RnsBasis> basis)
{
    const size_t limbs = basis->size();
    const size_t n = basis->n();
    const uint64_t q0 = basis->modulus(0);
    math::RnsPoly testPoly =
        tfhe::buildIdentityTestPoly(basis, limbs, q0);
    std::vector<uint64_t> invN(limbs);
    for (size_t i = 0; i < limbs; ++i) {
        invN[i] =
            math::invMod(n % basis->modulus(i), basis->modulus(i));
    }
    testPoly.mulScalarRnsInPlace(invN);
    return testPoly;
}

ckks::Ciphertext
finishBootstrap(rlwe::Ciphertext ctKq, const ModSwitched& ms,
                const math::RnsBasis& basis, double inScale,
                size_t slots)
{
    const size_t bootLimbs = basis.size();
    const uint64_t twoN = 2 * basis.n();
    rlwe::Ciphertext lifted = rlwe::liftToLimbs(ms.ctPrime, bootLimbs);
    ctKq.toCoeff();
    ctKq.addInPlace(lifted);

    const uint64_t p = basis.modulus(bootLimbs - 1);
    const uint64_t c = (p + twoN / 2) / twoN;
    ctKq.mulScalarInPlace(c);
    ctKq.rescaleLastLimb();
    HEAP_ASSERT(ctKq.limbCount() == bootLimbs - 1,
                "limb accounting error");

    ckks::Ciphertext out;
    out.ct = std::move(ctKq);
    out.scale = inScale
                * (static_cast<double>(twoN) * static_cast<double>(c)
                   / static_cast<double>(p));
    out.slots = slots;
    return out;
}

} // namespace heap::boot
