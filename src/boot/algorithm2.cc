#include "boot/algorithm2.h"

#include <cmath>
#include <cstdio>

#include "ckks/noise.h"
#include "common/check.h"
#include "math/modarith.h"
#include "tfhe/blind_rotate.h"

namespace heap::boot {

ModSwitched
modSwitchSplit(const rlwe::Ciphertext& in, const math::RnsBasis& basis)
{
    HEAP_CHECK(in.limbCount() == 1, "expected a level-1 ciphertext");
    const size_t n = basis.n();
    const uint64_t twoN = 2 * n;
    const uint64_t q0 = basis.modulus(0);

    ModSwitched ms;
    rlwe::Ciphertext ct = in;
    ct.toCoeff();
    ms.ctPrime = ct;
    ms.ctPrime.mulScalarInPlace(twoN % q0);

    auto exactDiv = [&](std::span<const uint64_t> x,
                        std::span<const uint64_t> xPrime,
                        std::vector<uint64_t>& out) {
        out.resize(n);
        for (size_t j = 0; j < n; ++j) {
            const auto prod = static_cast<math::uint128>(x[j]) * twoN;
            out[j] = static_cast<uint64_t>((prod - xPrime[j]) / q0);
        }
    };
    exactDiv(ct.a.limb(0), ms.ctPrime.a.limb(0), ms.aMs);
    exactDiv(ct.b.limb(0), ms.ctPrime.b.limb(0), ms.bMs);
    return ms;
}

math::RnsPoly
makeBootstrapTestPoly(std::shared_ptr<const math::RnsBasis> basis)
{
    const size_t limbs = basis->size();
    const size_t n = basis->n();
    const uint64_t q0 = basis->modulus(0);
    math::RnsPoly testPoly =
        tfhe::buildIdentityTestPoly(basis, limbs, q0);
    std::vector<uint64_t> invN(limbs);
    for (size_t i = 0; i < limbs; ++i) {
        invN[i] =
            math::invMod(n % basis->modulus(i), basis->modulus(i));
    }
    testPoly.mulScalarRnsInPlace(invN);
    return testPoly;
}

ckks::Ciphertext
finishBootstrap(rlwe::Ciphertext ctKq, const ModSwitched& ms,
                const math::RnsBasis& basis, double inScale,
                size_t slots)
{
    const size_t bootLimbs = basis.size();
    const uint64_t twoN = 2 * basis.n();
    rlwe::Ciphertext lifted = rlwe::liftToLimbs(ms.ctPrime, bootLimbs);
    ctKq.toCoeff();
    ctKq.addInPlace(lifted);

    const uint64_t p = basis.modulus(bootLimbs - 1);
    const uint64_t c = (p + twoN / 2) / twoN;
    ctKq.mulScalarInPlace(c);
    ctKq.rescaleLastLimb();
    HEAP_ASSERT(ctKq.limbCount() == bootLimbs - 1,
                "limb accounting error");

    ckks::Ciphertext out;
    out.ct = std::move(ctKq);
    out.scale = inScale
                * (static_cast<double>(twoN) * static_cast<double>(c)
                   / static_cast<double>(p));
    out.slots = slots;
    return out;
}

FrontPhase
runFrontPhase(const ckks::Context& ctx, const ckks::Ciphertext& in,
              double minBudgetBits, const char* who)
{
    HEAP_CHECK(in.level() == 1,
               "bootstrap expects a level-1 (single limb) ciphertext");
    checkBootstrappable(ctx, in, minBudgetBits, who);
    const auto basis = ctx.basis();
    const size_t n = basis->n();
    const uint64_t twoN = 2 * n;

    FrontPhase fp;
    fp.ms = modSwitchSplit(in.ct, *basis);

    // The modulus-switched phase carries the input error scaled by
    // 2N/q0: stamp that on every item so budgets survive the link.
    const double msScale = static_cast<double>(twoN)
                           / static_cast<double>(basis->modulus(0));
    fp.items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        auto ext = lwe::extractLwe(fp.ms.aMs, fp.ms.bMs, i, twoN);
        ext.budget = in.budget;
        ext.budget.sigma = in.budget.sigma * msScale;
        ext.budget.messageRms = in.budget.messageRms * msScale;
        fp.items.push_back(std::move(ext));
    }
    return fp;
}

void
checkBootstrappable(const ckks::Context& ctx, const ckks::Ciphertext& in,
                    double minBudgetBits, const char* who)
{
    const auto& guard = ctx.noiseGuard();
    if (!in.budget.tracked || guard.policy == NoiseGuardPolicy::Off) {
        return;
    }
    const double budget = ctx.noiseBudgetBits(in);
    if (budget > minBudgetBits) {
        return;
    }
    ctx.noiseStats().noteTrip();
    NoiseEvent ev;
    ev.kind = NoiseTripKind::DecryptionFailure;
    ev.op = who;
    ev.sigma = in.budget.sigma;
    ev.scale = in.scale;
    ev.precisionBits = ctx.noisePrecisionBits(in);
    ev.budgetBits = budget;
    ev.opChain = in.budget.opChain();
    switch (guard.policy) {
    case NoiseGuardPolicy::Warn:
        std::fprintf(stderr,
                     "heap: %s input budget exhausted: %.1f bits "
                     "remain, > %.1f required; op chain: %s\n",
                     who, budget, minBudgetBits, ev.opChain.c_str());
        break;
    case NoiseGuardPolicy::Throw:
        HEAP_FATAL(who << " input budget exhausted: " << budget
                       << " bits remain, > " << minBudgetBits
                       << " required (predicted sigma " << ev.sigma
                       << " at scale " << ev.scale
                       << "); op chain: " << ev.opChain);
        break;
    case NoiseGuardPolicy::Callback:
        if (guard.callback) {
            guard.callback(ev);
        }
        break;
    case NoiseGuardPolicy::Off:
        break;
    }
}

NoiseBudget
bootstrapOutputBudget(const ckks::Context& ctx,
                      const ckks::Ciphertext& in, double brSigma,
                      const math::RnsBasis& bootBasis)
{
    const size_t bootLimbs = bootBasis.size();
    const uint64_t twoN = 2 * bootBasis.n();
    const uint64_t p = bootBasis.modulus(bootLimbs - 1);
    const uint64_t c = (p + twoN / 2) / twoN;
    const ckks::NoiseEstimator est(ctx);
    // Step 4 adds lift(2N * ct) to the repacked accumulators; step 5
    // multiplies by c and rescales away p.
    const double repack = est.repackNoise(brSigma, bootBasis.n());
    const double pre =
        std::hypot(in.budget.sigma * static_cast<double>(twoN), repack)
        * static_cast<double>(c);
    NoiseBudget out = in.budget;
    out.sigma = est.afterRescale(pre, bootLimbs - 1);
    out.messageRms = in.budget.messageRms
                     * (static_cast<double>(twoN)
                        * static_cast<double>(c)
                        / static_cast<double>(p));
    ++out.bootstraps;
    return out;
}

} // namespace heap::boot
