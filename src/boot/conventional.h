/**
 * @file
 * Conventional CKKS bootstrapping baseline (Cheon et al. [12], the
 * "state-of-the-art bootstrapping algorithm" of Figure 1a that HEAP's
 * scheme switching replaces).
 *
 * Pipeline: ModRaise -> CoeffToSlot (homomorphic DFT, one linear
 * transform each for the holomorphic and anti-holomorphic parts) ->
 * EvalMod (scaled-sine Chebyshev approximation of the mod-q reduction)
 * on the real and imaginary coefficient streams -> SlotToCoeff.
 *
 * This is the baseline whose serial, KeySwitch-heavy structure
 * motivates the paper (Section I); it consumes many levels
 * (Section III: 15-19 at production parameters) whereas Algorithm 2
 * consumes one.
 */

#ifndef HEAP_BOOT_CONVENTIONAL_H
#define HEAP_BOOT_CONVENTIONAL_H

#include <memory>

#include "ckks/chebyshev.h"
#include "ckks/linear_transform.h"

namespace heap::boot {

/** Tuning for the conventional bootstrap. */
struct ConventionalBootParams {
    int sineDegree = 27;   ///< Chebyshev degree for sin(2 pi K x)
    double rangeK = 3.0;   ///< |I| bound: phase in (-K q, K q)
    bool useBsgs = true;   ///< BSGS scheduling in the DFT transforms
};

/**
 * Conventional bootstrapper bound to a CKKS context. Generates the
 * CoeffToSlot/SlotToCoeff matrices (by probing the context's encoder)
 * and the rotation keys they need.
 */
class ConventionalBootstrapper {
  public:
    ConventionalBootstrapper(ckks::Context& ctx,
                             const ConventionalBootParams& params = {});

    /**
     * Bootstraps a level-1 ciphertext. The output lands
     * `depth()` levels below the top; messages must satisfy
     * |m| << q_0 (the scaled-sine small-angle regime).
     */
    ckks::Ciphertext bootstrap(const ckks::Ciphertext& ct) const;

    /** Levels consumed: 1 (C2S) + chebyshev + 1 (S2C). */
    size_t depth() const;

    /** Chebyshev fit error of the scaled-sine approximation. */
    double sineFitError() const { return fitError_; }

    /** Rotations performed per bootstrap (for the cost model). */
    size_t rotationCount() const;

  private:
    const ckks::Context* ctx_;
    ConventionalBootParams params_;
    ckks::Evaluator ev_;
    std::unique_ptr<ckks::LinearTransform> c2sA_, c2sB_;
    std::unique_ptr<ckks::LinearTransform> s2cA_, s2cB_;
    std::vector<double> sineCoeffs_;
    double fitError_ = 0;
};

} // namespace heap::boot

#endif // HEAP_BOOT_CONVENTIONAL_H
