/**
 * @file
 * The paper's primary contribution: CKKS bootstrapping via CKKS->TFHE
 * scheme switching (Section III, Algorithm 2).
 *
 * Given a level-1 CKKS ciphertext ct = (a, b) in R_q^2:
 *
 *   1. ct'   = 2N * ct (mod q)
 *   2. ct_ms = (2N * ct - ct') / q  in R_{2N}   (exact division)
 *   3. ct_kq = Repack( BlindRotate( Extract(ct_ms) ) )  mod Qp
 *   4. ct''  = ct_kq + ct' (mod Qp)             = Enc(2N * (m + e))
 *   5. ct_boot = Rescale( round(p / 2N) * ct'', p )  in R_Q
 *
 * The blind rotations use the triangle LUT F(u) = q * u (pre-divided
 * by the repacking gain); per the exact identity
 * q*u_i + phi'_i = 2N*(m_i + e_i), the modulus-switch rounding error
 * cancels *exactly* against ct', so the output error is only the
 * blind-rotate + repack noise.
 *
 * Every coefficient's BlindRotate is independent — the source of the
 * paper's multi-FPGA parallelism — and is exposed here as a job list
 * executed on a configurable worker pool.
 *
 * Functional-scope note (see DESIGN.md): the functional path extracts
 * with the full ring secret (n_t = N, no intermediate LWE key switch),
 * which preserves Algorithm 2's exact error cancellation; the hardware
 * model uses the paper's n_t = 500.
 */

#ifndef HEAP_BOOT_SCHEME_SWITCH_H
#define HEAP_BOOT_SCHEME_SWITCH_H

#include <cstddef>

#include "ckks/evaluator.h"
#include "tfhe/blind_rotate.h"
#include "tfhe/repack.h"

namespace heap::boot {

/** Wall-clock split of the last bootstrap (mirrors Section VI-E). */
struct BootstrapStepTimes {
    double modSwitchMs = 0;   ///< Algorithm 2 steps 1-2
    double blindRotateMs = 0; ///< step 3 (extract + N blind rotations)
    double repackMs = 0;      ///< step 3 (repacking)
    double finishMs = 0;      ///< steps 4-5
};

/**
 * Key material + driver for the scheme-switching bootstrap. Keys are
 * derived from a CKKS context's secret at construction: blind-rotate
 * keys (RGSW of each secret coefficient) and repacking automorphism
 * keys — together the paper's 18x-smaller bootstrapping key set.
 */
class SchemeSwitchBootstrapper {
  public:
    /**
     * Generates bootstrapping keys.
     * @param brGadget optional gadget override for the blind-rotate
     *        keys (smaller digits => less noise, more compute); the
     *        context's gadget is used when digitsPerLimb is 0.
     */
    explicit SchemeSwitchBootstrapper(
        const ckks::Context& ctx,
        rlwe::GadgetParams brGadget = {.baseBits = 0, .digitsPerLimb = 0});

    /**
     * Bootstraps a level-1 ciphertext back to the top level. The
     * ciphertext's message magnitude must satisfy |m + e| < q_0 / 8
     * (the LUT identity window).
     */
    ckks::Ciphertext bootstrap(const ckks::Ciphertext& ct) const;

    /**
     * Number of parallel blind-rotate shares (default 1 = serial).
     * Shares execute on the process-wide pool (common/parallel.h);
     * results are byte-identical for every worker count.
     */
    void setWorkers(size_t workers);
    size_t workers() const { return workers_; }

    /** Blind-rotation scheduling (Section IV-E). */
    enum class Schedule {
        PerCiphertext, ///< finish each ciphertext before the next
        KeyMajor       ///< one brk key serves all ciphertexts, then
                       ///< the next key (single-worker only)
    };
    void setSchedule(Schedule s);
    Schedule schedule() const { return schedule_; }

    const BootstrapStepTimes& lastStepTimes() const { return times_; }

    /** Total serialized key bytes (for the Section III-C accounting). */
    size_t keyBytes() const;

  private:
    const ckks::Context* ctx_;
    rlwe::GadgetParams brGadget_;
    tfhe::BlindRotateKey brk_;
    tfhe::PackingKeys packKeys_;
    size_t workers_ = 1;
    Schedule schedule_ = Schedule::PerCiphertext;
    mutable BootstrapStepTimes times_;
};

} // namespace heap::boot

#endif // HEAP_BOOT_SCHEME_SWITCH_H
