#include "boot/conventional.h"

#include <cmath>
#include <numbers>

#include "boot/algorithm2.h"
#include "common/check.h"

namespace heap::boot {

namespace {

using ckks::Complex;
using ckks::SlotMatrix;

/**
 * Splits an R-linear slot map L into C-linear matrices (A, B) with
 * L(z) = A z + B conj(z), by probing L at e_j and i*e_j.
 */
std::pair<SlotMatrix, SlotMatrix>
probeLinearMap(size_t slots,
               const std::function<std::vector<Complex>(
                   const std::vector<Complex>&)>& L)
{
    SlotMatrix A(slots, std::vector<Complex>(slots));
    SlotMatrix B(slots, std::vector<Complex>(slots));
    const Complex I(0, 1);
    for (size_t j = 0; j < slots; ++j) {
        std::vector<Complex> e(slots, Complex(0, 0));
        e[j] = Complex(1, 0);
        const auto w1 = L(e);
        e[j] = I;
        const auto w2 = L(e);
        for (size_t k = 0; k < slots; ++k) {
            A[k][j] = (w1[k] - I * w2[k]) * 0.5;
            B[k][j] = (w1[k] + I * w2[k]) * 0.5;
        }
    }
    return {std::move(A), std::move(B)};
}

bool
isZeroMatrix(const SlotMatrix& m)
{
    for (const auto& row : m) {
        for (const auto& e : row) {
            if (std::abs(e) > 1e-9) {
                return false;
            }
        }
    }
    return true;
}

/** Multiplies every slot by i via the exact monomial X^{N/2}. */
ckks::Ciphertext
mulByI(const ckks::Ciphertext& ct)
{
    ckks::Ciphertext r = ct;
    r.ct.toCoeff();
    r.ct = r.ct.monomialMul(r.ct.b.n() / 2);
    return r;
}

} // namespace

ConventionalBootstrapper::ConventionalBootstrapper(
    ckks::Context& ctx, const ConventionalBootParams& params)
    : ctx_(&ctx), params_(params), ev_(ctx)
{
    const size_t n = ctx.params().n;
    const size_t half = n / 2;
    const auto& enc = ctx.encoder();
    const double q0 = static_cast<double>(ctx.basis()->modulus(0));
    const double K = params_.rangeK;
    HEAP_CHECK(K >= 1.0, "rangeK must be >= 1");
    HEAP_CHECK(ctx.maxLevel() >= depth() + 1,
               "conventional bootstrap needs " << depth() + 1
                                               << " levels, context has "
                                               << ctx.maxLevel());

    // CoeffToSlot: z -> v with v_k = (P_k + i P_{k+half}) * Delta /
    // (2 K q0), where P = encodeRaw(z) are the plaintext coefficients
    // of z at scale Delta. The Delta factor keeps the matrix entries
    // (and hence their fixed-point encodings) at moderate magnitude;
    // the matching 1/Delta is folded into SlotToCoeff below.
    const double delta = ctx.params().scale;
    const double alpha = delta / (2.0 * K * q0);
    auto c2s = [&](const std::vector<Complex>& z) {
        const auto P = enc.encodeRaw(z);
        std::vector<Complex> w(half);
        for (size_t k = 0; k < half; ++k) {
            w[k] = Complex(P[k], P[k + half]) * alpha;
        }
        return w;
    };
    auto [A, B] = probeLinearMap(half, c2s);
    c2sA_ = std::make_unique<ckks::LinearTransform>(ctx, std::move(A),
                                                    params_.useBsgs);
    if (!isZeroMatrix(B)) {
        c2sB_ = std::make_unique<ckks::LinearTransform>(
            ctx, std::move(B), params_.useBsgs);
    }

    // SlotToCoeff: w -> decode(P', Delta) with P'_k = Re(w_k) * q0 and
    // P'_{k+half} = Im(w_k) * q0 (entries ~ q0/Delta, moderate).
    auto s2c = [&](const std::vector<Complex>& w) {
        std::vector<long double> P(n);
        for (size_t k = 0; k < half; ++k) {
            P[k] = static_cast<long double>(w[k].real() * q0);
            P[k + half] = static_cast<long double>(w[k].imag() * q0);
        }
        return enc.decode(P, delta, half);
    };
    auto [A2, B2] = probeLinearMap(half, s2c);
    s2cA_ = std::make_unique<ckks::LinearTransform>(ctx, std::move(A2),
                                                    params_.useBsgs);
    if (!isZeroMatrix(B2)) {
        s2cB_ = std::make_unique<ckks::LinearTransform>(
            ctx, std::move(B2), params_.useBsgs);
    }

    // EvalMod: g(x) = sin(2 pi K x) / (2 pi), so that
    // q0 * g(P/(K q0)) ~= [P]_q0 in the small-angle regime.
    auto g = [K](double x) {
        return std::sin(2.0 * std::numbers::pi * K * x)
               / (2.0 * std::numbers::pi);
    };
    sineCoeffs_ = ckks::chebyshevFit(g, params_.sineDegree);
    fitError_ = ckks::chebyshevMaxError(g, sineCoeffs_);

    // Rotation keys for all four transforms.
    for (const auto* lt : {c2sA_.get(), c2sB_.get(), s2cA_.get(),
                           s2cB_.get()}) {
        if (lt != nullptr) {
            ctx.makeRotationKeys(lt->requiredRotations());
        }
    }
}

size_t
ConventionalBootstrapper::depth() const
{
    return 2 + ckks::chebyshevDepth(params_.sineDegree);
}

size_t
ConventionalBootstrapper::rotationCount() const
{
    size_t total = 0;
    for (const auto* lt : {c2sA_.get(), c2sB_.get(), s2cA_.get(),
                           s2cB_.get()}) {
        if (lt != nullptr) {
            total += lt->rotationCount();
        }
    }
    return total;
}

ckks::Ciphertext
ConventionalBootstrapper::bootstrap(const ckks::Ciphertext& in) const
{
    HEAP_CHECK(in.level() == 1,
               "bootstrap expects a level-1 ciphertext");
    const size_t half = ctx_->params().n / 2;
    HEAP_CHECK(in.slots == half,
               "conventional bootstrap requires full packing");
    // The folded constants assume the ciphertext sits at the context
    // scale (the usual steady state after rescaling).
    HEAP_CHECK(std::abs(in.scale / ctx_->params().scale - 1.0) < 0.01,
               "input scale must match the context scale");
    // Conventional bootstrap only needs the input to decrypt.
    checkBootstrappable(*ctx_, in, 0.0, "conventional bootstrap");

    // ModRaise: reinterpret the single-limb ciphertext at the top
    // level; the phase gains a q0 * I(X) term to be removed.
    rlwe::Ciphertext lifted = in.ct;
    lifted.toCoeff();
    ckks::Ciphertext raised;
    raised.ct = rlwe::liftToLimbs(lifted, ctx_->maxLevel());
    raised.scale = in.scale;
    raised.slots = half;
    // The raised phase inherits the input's noise record; the q0*I(X)
    // term removed by EvalMod is not modeled as message mass.
    raised.budget = in.budget;

    // CoeffToSlot.
    ckks::Ciphertext v = c2sA_->apply(ev_, raised);
    if (c2sB_ != nullptr) {
        v = ev_.add(v, c2sB_->apply(ev_, ev_.conjugate(raised)));
    }

    // Separate the real/imaginary coefficient streams.
    ckks::Ciphertext vConj = ev_.conjugate(v);
    ckks::Ciphertext xRe = ev_.add(v, vConj);
    ckks::Ciphertext xIm = mulByI(ev_.sub(vConj, v));

    // EvalMod on both streams.
    ckks::Ciphertext yRe = ckks::evalChebyshev(ev_, xRe, sineCoeffs_);
    ckks::Ciphertext yIm = ckks::evalChebyshev(ev_, xIm, sineCoeffs_);

    // Recombine: w = yRe + i * yIm.
    ckks::Ciphertext yImI = mulByI(yIm);
    yImI.scale = yRe.scale;
    ckks::Ciphertext w = ev_.add(yRe, yImI);

    // SlotToCoeff.
    // The tracked scale already accounts for the rescale drift along
    // the multiplicative path; the semantic output is m at ~in.scale.
    ckks::Ciphertext out = s2cA_->apply(ev_, w);
    if (s2cB_ != nullptr) {
        out = ev_.add(out, s2cB_->apply(ev_, ev_.conjugate(w)));
    }
    out.slots = in.slots;
    if (out.budget.tracked) {
        ++out.budget.bootstraps;
        ctx_->noiseGuardCheck(out, "bootstrap");
    }
    return out;
}

} // namespace heap::boot
