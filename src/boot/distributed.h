/**
 * @file
 * The Section V multi-node bootstrap protocol, functionally: a
 * primary node modulus-switches and extracts, streams *serialized*
 * LWE batches to secondary nodes over byte-counting links, each
 * secondary blind-rotates its share, the serialized accumulators
 * stream back, and the primary repacks and finishes. Every byte that
 * would cross the paper's 100G CMAC links is accounted for, so the
 * functional traffic can be checked against the hardware model's
 * communication terms.
 *
 * The links are unreliable on demand: a seeded FaultSpec makes a
 * SimulatedLink drop, truncate, bit-flip, duplicate, reorder, or
 * delay messages, and the primary's retry protocol (framing + CRC,
 * per-batch timeout with bounded exponential backoff, NACK-and-resend,
 * dead-secondary reclaim) guarantees that any fault pattern below the
 * retry cap degrades only latency, never the bootstrap output. See
 * DESIGN.md "Fault model".
 */

#ifndef HEAP_BOOT_DISTRIBUTED_H
#define HEAP_BOOT_DISTRIBUTED_H

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "boot/algorithm2.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "tfhe/blind_rotate.h"
#include "tfhe/repack.h"

namespace heap::boot {

/**
 * Seeded fault-injection policy for a SimulatedLink. Each probability
 * is evaluated independently per send() from the link's dedicated RNG
 * stream (never heap::Rng), so a given (spec, seed) pair produces the
 * same fault pattern for the same message sequence regardless of how
 * many worker threads drive the protocol.
 */
struct FaultSpec {
    double drop = 0;      ///< message lost on the wire
    double truncate = 0;  ///< tail bytes cut off
    double bitflip = 0;   ///< one random bit inverted
    double duplicate = 0; ///< delivered twice
    double reorder = 0;   ///< jumps ahead of queued messages
    double delay = 0;     ///< held back for up to maxDelayPolls polls
    size_t maxDelayPolls = 3; ///< bound on the modeled latency
    uint64_t seed = 1;        ///< base seed for the fault RNG stream

    bool
    enabled() const
    {
        return drop > 0 || truncate > 0 || bitflip > 0 || duplicate > 0
               || reorder > 0 || delay > 0;
    }
};

/**
 * One-directional byte-counting message channel (a CMAC link).
 * Thread-safe: concurrent senders/receivers serialize on an internal
 * mutex, so the byte accounting stays exact under the parallel batch
 * schedule. With a FaultSpec installed, send() may mangle, drop,
 * duplicate, reorder, or delay the message; bytesTransferred() always
 * counts what the sender put on the wire.
 */
class SimulatedLink {
  public:
    void send(std::vector<uint8_t> message);

    /** Delivers the next queued message; throws when none is queued. */
    std::vector<uint8_t> receive();

    /**
     * One receive poll: ages every delayed message by one tick, then
     * delivers the first ready message, or nullopt when none is ready
     * (empty link, or everything still delayed).
     */
    std::optional<std::vector<uint8_t>> tryReceive();

    /** Installs a fault policy with the given RNG stream seed. */
    void setFaults(const FaultSpec& spec, uint64_t seed);

    /** Restores the reliable (fault-free) behaviour. */
    void clearFaults();

    /** Discards all queued messages (counters are kept). */
    void clear();

    size_t
    bytesTransferred() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return bytes_;
    }

    size_t
    messageCount() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return messages_;
    }

    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return queue_.empty();
    }

  private:
    struct Pending {
        std::vector<uint8_t> bytes;
        size_t delay = 0; ///< polls until deliverable
    };

    mutable std::mutex m_;
    std::vector<Pending> queue_;
    FaultSpec faults_{};
    bool haveFaults_ = false;
    Rng faultRng_{1};
    size_t bytes_ = 0;
    size_t messages_ = 0;
};

/**
 * A secondary node (Section V): holds the shared blind-rotate keys
 * and test polynomial, consumes serialized LWE batches, produces
 * serialized blind-rotated accumulators.
 */
class SecondaryNode {
  public:
    SecondaryNode(std::shared_ptr<const math::RnsBasis> basis,
                  const tfhe::BlindRotateKey* brk,
                  const math::RnsPoly* testPoly);

    /**
     * Deserializes a batch, blind-rotates each ciphertext (key-major
     * schedule), returns the serialized results. Throws UserError —
     * naming the offending batch offset — when a payload LWE does not
     * belong to this node's basis (modulus != 2N or wrong dimension).
     */
    std::vector<uint8_t> processBatch(
        std::span<const uint8_t> batch) const;

    /** LWE ciphertexts processed so far. */
    size_t
    processed() const
    {
        return processed_.load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<const math::RnsBasis> basis_;
    const tfhe::BlindRotateKey* brk_;
    const math::RnsPoly* testPoly_;
    // Atomic: processBatch runs concurrently for different batches
    // when the primary drives the protocol with multiple workers.
    mutable std::atomic<size_t> processed_{0};
};

/**
 * Parses a secondary's reply payload and validates it against the
 * batch the primary actually sent: the declared accumulator count
 * must equal `expectedCount` *before* anything is written, so a
 * corrupt or malicious reply throws UserError instead of writing out
 * of bounds. Per-accumulator decode failures name the batch offset.
 */
std::vector<rlwe::Ciphertext> loadAccumulatorReply(
    std::span<const uint8_t> payload, size_t expectedCount,
    std::shared_ptr<const math::RnsBasis> basis);

/**
 * Retry parameters of the primary's per-batch exchange. "Polls" are
 * the simulated-time unit: one poll pumps each link once (and ages
 * delayed messages by one tick). The timeout for attempt k is
 * min(maxPolls, basePolls << k) — bounded exponential backoff.
 */
struct RetryPolicy {
    size_t maxRetries = 6; ///< resends per batch beyond the first send
    size_t basePolls = 4;  ///< first-attempt timeout, in polls
    size_t maxPolls = 64;  ///< backoff cap, in polls
};

/**
 * Outcome of one batch exchange (exchangeRotate), reduced into a
 * DistributedTraffic by bootstrap() and by the serving layer.
 */
struct ExchangeStats {
    size_t lweBytesOut = 0;
    size_t accBytesIn = 0;
    size_t wireOut = 0;
    size_t wireIn = 0;
    size_t retransmits = 0;
    size_t nacks = 0;
    size_t corruptFrames = 0;
    size_t duplicateFrames = 0;
    bool dead = false;
};

/** Per-bootstrap communication accounting. */
struct DistributedTraffic {
    size_t lweBytesOut = 0; ///< goodput: accepted batch frames
    size_t accBytesIn = 0;  ///< goodput: accepted reply frames
    size_t batches = 0;
    size_t wireBytesOut = 0; ///< effective bytes primary -> secondaries
    size_t wireBytesIn = 0;  ///< effective bytes secondaries -> primary
    size_t retransmits = 0;  ///< batch frames resent (timeout or NACK)
    size_t nacks = 0;        ///< NACK frames sent (both directions)
    size_t corruptFrames = 0;   ///< frames rejected by magic/length/CRC
    size_t duplicateFrames = 0; ///< well-formed frames dropped as dups
    size_t reclaimedBatches = 0; ///< shares blind-rotated locally
    size_t deadSecondaries = 0;  ///< nodes that exhausted their retries
};

/**
 * Primary node + protocol driver. Key material is generated once and
 * (conceptually) replicated to the secondaries, as in the paper's
 * deployment where every FPGA is loaded with the same RTL and keys.
 */
class DistributedBootstrapper {
  public:
    DistributedBootstrapper(
        const ckks::Context& ctx, size_t secondaries,
        rlwe::GadgetParams brGadget = {.baseBits = 0,
                                       .digitsPerLimb = 0});

    /**
     * Replica constructor: a new pod loaded with `other`'s key
     * material — the paper's deployment, where keys are generated
     * once and replicated to every FPGA group. Shares other's
     * context (which must outlive the replica) and copies the
     * blind-rotate/packing keys and test polynomial, so the replica's
     * bootstrap outputs are byte-identical to other's; links,
     * secondaries, fault policy, and traffic accounting are its own.
     * Draws nothing from the context RNG.
     */
    DistributedBootstrapper(const DistributedBootstrapper& other,
                            size_t secondaries);

    /**
     * Runs Algorithm 2 with the blind rotations fanned out across the
     * secondaries (the primary keeps an equal share). Tolerates link
     * faults per the installed FaultSpec: batches are retried under
     * the RetryPolicy, and a secondary that exhausts its retries is
     * reclaimed — its share is blind-rotated locally — so the output
     * is byte-identical to the fault-free run as long as faults are
     * detectable (framing CRC) and below the retry cap. Concurrent
     * calls on one object serialize on an internal mutex; lastTraffic()
     * reflects the most recently completed call.
     */
    ckks::Ciphertext bootstrap(const ckks::Ciphertext& in) const;

    /**
     * Number of host threads driving secondary batches concurrently
     * (default 1 = the serial reference schedule). Traffic counters
     * and outputs are identical for every worker count.
     */
    void setWorkers(size_t workers);
    size_t workers() const { return workers_; }

    /**
     * Installs a fault policy on every secondary's link pair. Each
     * link derives its own RNG stream from spec.seed, the link index,
     * and a per-bootstrap counter, so fault patterns are deterministic
     * per link and independent of the worker count.
     */
    void setFaults(const FaultSpec& spec);

    /** Fault policy for one secondary's links only. */
    void setSecondaryFaults(size_t s, const FaultSpec& spec);

    void setRetryPolicy(const RetryPolicy& policy);
    const RetryPolicy& retryPolicy() const { return retry_; }

    size_t secondaryCount() const { return nodes_.size(); }
    const DistributedTraffic& lastTraffic() const { return traffic_; }
    const SecondaryNode& node(size_t i) const { return *nodes_[i]; }
    const ckks::Context& context() const { return *ctx_; }
    const tfhe::PackingKeys& packingKeys() const { return packKeys_; }
    const math::RnsPoly& bootTestPoly() const { return testPoly_; }

    /** Predicted accumulator error stddev of one blind rotation with
     *  this object's keys (feeds bootstrapOutputBudget). */
    double bootBlindRotateSigma() const;

    // --- batch-level protocol API (used by bootstrap() itself and by
    // --- the serving layer, serve::BootstrapService) -----------------

    /**
     * Runs one framed batch exchange with secondary `s`: serializes
     * `lwes`, frames them under sequence number `seq` (nonzero, unique
     * among exchanges concurrently in flight on this secondary's
     * links), drives the retry protocol, and returns the blind-rotated
     * accumulators in input order. When retries are exhausted the
     * secondary is dead for this exchange (st.dead) and the share is
     * blind-rotated locally, so the returned accumulators are always
     * byte-identical to a fault-free exchange. Thread-safe for
     * distinct `s`; callers must not run two exchanges on the same
     * secondary concurrently (replies would be mistaken for
     * duplicates).
     */
    std::vector<rlwe::Ciphertext> exchangeRotate(
        size_t s, uint64_t seq, std::span<const lwe::LweCiphertext> lwes,
        ExchangeStats& st) const;

    /** Blind-rotates a batch on the primary (no links involved). */
    std::vector<rlwe::Ciphertext> rotateLocal(
        std::span<const lwe::LweCiphertext> lwes) const;

    /**
     * Starts a fresh protocol run: drops anything a previous run left
     * queued on the links (late duplicates, delayed frames) and
     * reseeds the per-link fault streams from the spec seed, the link
     * index, and a run ordinal. bootstrap() calls this internally;
     * external drivers call it once before a stream of
     * exchangeRotate() calls. Not thread-safe against in-flight
     * exchanges.
     */
    void resetProtocolRun() const;

  private:

    const ckks::Context* ctx_;
    tfhe::BlindRotateKey brk_;
    tfhe::PackingKeys packKeys_;
    math::RnsPoly testPoly_;
    std::vector<std::unique_ptr<SecondaryNode>> nodes_;
    size_t workers_ = 1;
    RetryPolicy retry_{};
    std::vector<FaultSpec> faultSpecs_;
    mutable std::vector<SimulatedLink> out_, in_;
    mutable DistributedTraffic traffic_;
    // Serializes concurrent bootstrap() calls: links, traffic_, and
    // the fault RNG streams are per-object state.
    mutable std::mutex bootMutex_;
    mutable uint64_t runCounter_ = 0;
};

} // namespace heap::boot

#endif // HEAP_BOOT_DISTRIBUTED_H
