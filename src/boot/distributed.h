/**
 * @file
 * The Section V multi-node bootstrap protocol, functionally: a
 * primary node modulus-switches and extracts, streams *serialized*
 * LWE batches to secondary nodes over byte-counting links, each
 * secondary blind-rotates its share, the serialized accumulators
 * stream back, and the primary repacks and finishes. Every byte that
 * would cross the paper's 100G CMAC links is accounted for, so the
 * functional traffic can be checked against the hardware model's
 * communication terms.
 */

#ifndef HEAP_BOOT_DISTRIBUTED_H
#define HEAP_BOOT_DISTRIBUTED_H

#include <atomic>
#include <memory>
#include <mutex>

#include "boot/algorithm2.h"
#include "tfhe/blind_rotate.h"
#include "tfhe/repack.h"

namespace heap::boot {

/**
 * One-directional byte-counting message channel (a CMAC link).
 * Thread-safe: concurrent senders/receivers serialize on an internal
 * mutex, so the byte accounting stays exact under the parallel batch
 * schedule.
 */
class SimulatedLink {
  public:
    void send(std::vector<uint8_t> message);
    std::vector<uint8_t> receive();

    size_t
    bytesTransferred() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return bytes_;
    }

    size_t
    messageCount() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return messages_;
    }

    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return queue_.empty();
    }

  private:
    mutable std::mutex m_;
    std::vector<std::vector<uint8_t>> queue_;
    size_t bytes_ = 0;
    size_t messages_ = 0;
};

/**
 * A secondary node (Section V): holds the shared blind-rotate keys
 * and test polynomial, consumes serialized LWE batches, produces
 * serialized blind-rotated accumulators.
 */
class SecondaryNode {
  public:
    SecondaryNode(std::shared_ptr<const math::RnsBasis> basis,
                  const tfhe::BlindRotateKey* brk,
                  const math::RnsPoly* testPoly);

    /** Deserializes a batch, blind-rotates each ciphertext (key-major
     *  schedule), returns the serialized results. */
    std::vector<uint8_t> processBatch(
        std::span<const uint8_t> batch) const;

    /** LWE ciphertexts processed so far. */
    size_t
    processed() const
    {
        return processed_.load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<const math::RnsBasis> basis_;
    const tfhe::BlindRotateKey* brk_;
    const math::RnsPoly* testPoly_;
    // Atomic: processBatch runs concurrently for different batches
    // when the primary drives the protocol with multiple workers.
    mutable std::atomic<size_t> processed_{0};
};

/** Per-bootstrap communication accounting. */
struct DistributedTraffic {
    size_t lweBytesOut = 0;  ///< primary -> secondaries
    size_t accBytesIn = 0;   ///< secondaries -> primary
    size_t batches = 0;
};

/**
 * Primary node + protocol driver. Key material is generated once and
 * (conceptually) replicated to the secondaries, as in the paper's
 * deployment where every FPGA is loaded with the same RTL and keys.
 */
class DistributedBootstrapper {
  public:
    DistributedBootstrapper(
        const ckks::Context& ctx, size_t secondaries,
        rlwe::GadgetParams brGadget = {.baseBits = 0,
                                       .digitsPerLimb = 0});

    /** Runs Algorithm 2 with the blind rotations fanned out across
     *  the secondaries (the primary keeps an equal share). */
    ckks::Ciphertext bootstrap(const ckks::Ciphertext& in) const;

    /**
     * Number of host threads driving secondary batches concurrently
     * (default 1 = the serial reference schedule). Traffic counters
     * and outputs are identical for every worker count.
     */
    void setWorkers(size_t workers);
    size_t workers() const { return workers_; }

    size_t secondaryCount() const { return nodes_.size(); }
    const DistributedTraffic& lastTraffic() const { return traffic_; }
    const SecondaryNode& node(size_t i) const { return *nodes_[i]; }

  private:
    const ckks::Context* ctx_;
    tfhe::BlindRotateKey brk_;
    tfhe::PackingKeys packKeys_;
    math::RnsPoly testPoly_;
    std::vector<std::unique_ptr<SecondaryNode>> nodes_;
    size_t workers_ = 1;
    mutable std::vector<SimulatedLink> out_, in_;
    mutable DistributedTraffic traffic_;
};

} // namespace heap::boot

#endif // HEAP_BOOT_DISTRIBUTED_H
