#include "boot/scheme_switch.h"

#include "boot/algorithm2.h"

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "math/modarith.h"

namespace heap::boot {

using math::Domain;
using math::RnsPoly;

SchemeSwitchBootstrapper::SchemeSwitchBootstrapper(
    const ckks::Context& ctx, rlwe::GadgetParams brGadget)
    : ctx_(&ctx)
{
    brGadget_ = brGadget.digitsPerLimb > 0 ? brGadget
                                           : ctx.params().gadget;
    brGadget_.validateFor(*ctx.basis());
    HEAP_CHECK(ctx.params().auxLimbs >= 1,
               "scheme-switching bootstrap needs an auxiliary prime p");
    Rng& rng = ctx.rng();
    // Blind-rotate keys over the ring secret itself (n_t = N).
    brk_ = tfhe::makeBlindRotateKey(ctx.secretKey(),
                                    ctx.secretKey().coeffs(), brGadget_,
                                    rng, ctx.noiseParams());
    packKeys_ = tfhe::makePackingKeys(ctx.secretKey(), ctx.params().n,
                                      ctx.params().gadget, rng,
                                      ctx.noiseParams());
}

void
SchemeSwitchBootstrapper::setWorkers(size_t workers)
{
    HEAP_CHECK(workers >= 1 && workers <= 256, "bad worker count");
    HEAP_CHECK(workers == 1 || schedule_ == Schedule::PerCiphertext,
               "the key-major schedule is single-worker");
    workers_ = workers;
}

void
SchemeSwitchBootstrapper::setSchedule(Schedule s)
{
    HEAP_CHECK(s == Schedule::PerCiphertext || workers_ == 1,
               "the key-major schedule is single-worker");
    schedule_ = s;
}

size_t
SchemeSwitchBootstrapper::keyBytes() const
{
    const auto& basis = *ctx_->basis();
    const size_t polyBytes = basis.n() * basis.size() * sizeof(uint64_t);
    // Each RGSW = 2 gadget halves of (limbs * d) RLWE rows of 2 polys.
    const size_t rowsPerGadget =
        basis.size() * static_cast<size_t>(brGadget_.digitsPerLimb);
    const size_t rgswBytes = 2 * rowsPerGadget * 2 * polyBytes;
    size_t total = (brk_.plus.size() + brk_.minus.size()) * rgswBytes / 2;
    const size_t kskRows = basis.size()
        * static_cast<size_t>(ctx_->params().gadget.digitsPerLimb);
    total += packKeys_.autoKeys.size() * kskRows * 2 * polyBytes;
    return total;
}

ckks::Ciphertext
SchemeSwitchBootstrapper::bootstrap(const ckks::Ciphertext& in) const
{
    HEAP_CHECK(in.level() == 1,
               "bootstrap expects a level-1 (single limb) ciphertext");
    // The triangle LUT only matches the identity on |m + e| < q0/4:
    // demand at least one bit of headroom beyond decryptability.
    checkBootstrappable(*ctx_, in, 1.0, "scheme-switch bootstrap");
    const auto basis = ctx_->basis();
    const size_t n = basis->n();
    const uint64_t twoN = 2 * n;
    const size_t bootLimbs = basis->size(); // q_0..q_{L-1}, p
    const size_t outLimbs = bootLimbs - 1;

    Timer timer;

    // --- Steps 1-2: ct' = 2N*ct mod q; ct_ms = (2N*ct - ct') / q ----
    rlwe::Ciphertext ct = in.ct;
    ct.toCoeff();
    const ModSwitched ms = modSwitchSplit(ct, *basis);
    const auto& aMs = ms.aMs;
    const auto& bMs = ms.bMs;
    times_.modSwitchMs = timer.millis();
    timer.reset();

    // --- Step 3a: Extract + BlindRotate every coefficient -----------
    // LUT: F(u) = q0 * u, pre-divided by the repacking gain N.
    const RnsPoly testPoly = makeBootstrapTestPoly(basis);

    std::vector<rlwe::Ciphertext> rotated(n);
    auto rotateOne = [&](size_t i) {
        const auto lwe = lwe::extractLwe(aMs, bMs, i, twoN);
        rotated[i] = tfhe::blindRotate(lwe, testPoly, brk_);
    };
    if (schedule_ == Schedule::KeyMajor) {
        // Section IV-E: one key fetch serves every ciphertext.
        std::vector<lwe::LweCiphertext> lwes;
        lwes.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            lwes.push_back(lwe::extractLwe(aMs, bMs, i, twoN));
        }
        rotated = tfhe::blindRotateBatch(lwes, testPoly, brk_);
    } else if (workers_ <= 1) {
        for (size_t i = 0; i < n; ++i) {
            rotateOne(i);
        }
    } else {
        // The paper's multi-node fan-out: coefficients are split into
        // `workers_` contiguous shares (Section V); here nodes are
        // pool threads. Deterministic: rotateOne draws no randomness
        // and writes only rotated[i].
        parallelFor(0, n, (n + workers_ - 1) / workers_, rotateOne);
    }
    times_.blindRotateMs = timer.millis();
    timer.reset();

    // --- Step 3b: repack the N results into one RLWE ciphertext -----
    rlwe::Ciphertext ctKq = tfhe::packRlwes(rotated, packKeys_);
    times_.repackMs = timer.millis();
    timer.reset();

    // --- Steps 4-5: add lift(ct'), scale by round(p/2N), rescale -----
    ckks::Ciphertext out =
        finishBootstrap(std::move(ctKq), ms, *basis, in.scale, in.slots);
    HEAP_ASSERT(out.level() == outLimbs, "limb accounting error");
    out.budget = bootstrapOutputBudget(
        *ctx_, in,
        tfhe::blindRotateSigma(brk_, bootLimbs, n), *basis);
    ctx_->noiseGuardCheck(out, "bootstrap");
    times_.finishMs = timer.millis();
    return out;
}

} // namespace heap::boot
