#include "boot/distributed.h"

#include <algorithm>
#include <map>

#include "ckks/serialize.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/vtime.h"
#include "lwe/serialize.h"

namespace heap::boot {

namespace {

/** splitmix64 step: derives per-link fault-stream seeds. */
uint64_t
mixSeed(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
SimulatedLink::send(std::vector<uint8_t> message)
{
    std::lock_guard<std::mutex> lock(m_);
    bytes_ += message.size();
    ++messages_;
    if (!haveFaults_) {
        queue_.push_back(Pending{std::move(message), 0});
        return;
    }
    // One fixed block of draws per send: the fault stream is a
    // function of the message ordinal on this link alone, never of
    // which faults fire or of cross-link scheduling, so fault patterns
    // (and hence retransmit counts) reproduce across worker counts.
    const double uDrop = faultRng_.uniformReal();
    const double uTruncate = faultRng_.uniformReal();
    const double uFlip = faultRng_.uniformReal();
    const double uDup = faultRng_.uniformReal();
    const double uReorder = faultRng_.uniformReal();
    const double uDelay = faultRng_.uniformReal();
    const uint64_t rTruncate = faultRng_.next();
    const uint64_t rFlip = faultRng_.next();
    const uint64_t rDelay = faultRng_.next();

    if (uDrop < faults_.drop) {
        return; // lost on the wire; the sender still paid the bytes
    }
    if (uTruncate < faults_.truncate && message.size() > 1) {
        message.resize(1 + rTruncate % (message.size() - 1));
    }
    if (uFlip < faults_.bitflip && !message.empty()) {
        const size_t bit = rFlip % (message.size() * 8);
        message[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    size_t delay = 0;
    if (uDelay < faults_.delay && faults_.maxDelayPolls > 0) {
        delay = 1 + rDelay % faults_.maxDelayPolls;
    }
    const bool dup = uDup < faults_.duplicate;
    if (dup) {
        // The duplicate crosses the wire too.
        bytes_ += message.size();
        ++messages_;
    }
    if (uReorder < faults_.reorder && !queue_.empty()) {
        queue_.insert(queue_.begin(), Pending{message, delay});
    } else {
        queue_.push_back(Pending{message, delay});
    }
    if (dup) {
        queue_.push_back(Pending{std::move(message), delay});
    }
}

std::vector<uint8_t>
SimulatedLink::receive()
{
    std::lock_guard<std::mutex> lock(m_);
    HEAP_CHECK(!queue_.empty(), "receive on an empty link");
    auto msg = std::move(queue_.front().bytes);
    queue_.erase(queue_.begin());
    return msg;
}

std::optional<std::vector<uint8_t>>
SimulatedLink::tryReceive()
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto& p : queue_) {
        if (p.delay > 0) {
            --p.delay;
        }
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->delay == 0) {
            auto msg = std::move(it->bytes);
            queue_.erase(it);
            return msg;
        }
    }
    return std::nullopt;
}

void
SimulatedLink::setFaults(const FaultSpec& spec, uint64_t seed)
{
    std::lock_guard<std::mutex> lock(m_);
    faults_ = spec;
    haveFaults_ = spec.enabled();
    faultRng_ = Rng(seed);
}

void
SimulatedLink::clearFaults()
{
    std::lock_guard<std::mutex> lock(m_);
    faults_ = FaultSpec{};
    haveFaults_ = false;
}

void
SimulatedLink::clear()
{
    std::lock_guard<std::mutex> lock(m_);
    queue_.clear();
}

SecondaryNode::SecondaryNode(std::shared_ptr<const math::RnsBasis> basis,
                             const tfhe::BlindRotateKey* brk,
                             const math::RnsPoly* testPoly)
    : basis_(std::move(basis)), brk_(brk), testPoly_(testPoly)
{
}

std::vector<uint8_t>
SecondaryNode::processBatch(std::span<const uint8_t> batch) const
{
    ByteReader r(batch);
    const uint64_t count = r.u64();
    HEAP_CHECK(count >= 1 && count <= basis_->n(),
               "corrupt batch header");
    const uint64_t twoN = 2 * basis_->n();
    std::vector<lwe::LweCiphertext> lwes;
    lwes.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        lwe::LweCiphertext ct;
        try {
            ct = lwe::loadLwe(r);
        } catch (const UserError& e) {
            HEAP_FATAL("bad LWE at batch offset " << i << ": "
                                                  << e.what());
        }
        HEAP_CHECK(ct.modulus == twoN,
                   "batch offset " << i << ": LWE modulus "
                                   << ct.modulus
                                   << " does not match this node's 2N = "
                                   << twoN);
        HEAP_CHECK(ct.a.size() == basis_->n(),
                   "batch offset " << i << ": LWE dimension "
                                   << ct.a.size()
                                   << " does not match this node's N = "
                                   << basis_->n());
        lwes.push_back(std::move(ct));
    }
    HEAP_CHECK(r.atEnd(), "trailing bytes in batch");

    const auto accs = tfhe::blindRotateBatch(lwes, *testPoly_, *brk_);
    HEAP_ASSERT(accs.size() == count,
                "reply holds " << accs.size() << " accumulators for a "
                               << count << "-ciphertext batch");
    processed_.fetch_add(lwes.size(), std::memory_order_relaxed);

    ByteWriter w;
    w.u64(accs.size());
    for (const auto& acc : accs) {
        ckks::saveRlwe(acc, w);
    }
    return w.bytes();
}

std::vector<rlwe::Ciphertext>
loadAccumulatorReply(std::span<const uint8_t> payload,
                     size_t expectedCount,
                     std::shared_ptr<const math::RnsBasis> basis)
{
    ByteReader r(payload);
    const uint64_t count = r.u64();
    HEAP_CHECK(count == expectedCount,
               "reply declares " << count << " accumulators, batch had "
                                 << expectedCount);
    std::vector<rlwe::Ciphertext> accs;
    accs.reserve(expectedCount);
    for (uint64_t i = 0; i < count; ++i) {
        try {
            accs.push_back(ckks::loadRlwe(r, basis));
        } catch (const UserError& e) {
            HEAP_FATAL("bad accumulator at batch offset " << i << ": "
                                                          << e.what());
        }
    }
    HEAP_CHECK(r.atEnd(), "trailing bytes in reply");
    return accs;
}

DistributedBootstrapper::DistributedBootstrapper(
    const ckks::Context& ctx, size_t secondaries,
    rlwe::GadgetParams brGadget)
    : ctx_(&ctx)
{
    HEAP_CHECK(secondaries >= 1 && secondaries <= 63,
               "bad secondary count");
    HEAP_CHECK(ctx.params().auxLimbs >= 1,
               "scheme-switching bootstrap needs an auxiliary prime p");
    const rlwe::GadgetParams g = brGadget.digitsPerLimb > 0
                                     ? brGadget
                                     : ctx.params().gadget;
    g.validateFor(*ctx.basis());
    Rng& rng = ctx.rng();
    brk_ = tfhe::makeBlindRotateKey(ctx.secretKey(),
                                    ctx.secretKey().coeffs(), g, rng,
                                    ctx.noiseParams());
    packKeys_ = tfhe::makePackingKeys(ctx.secretKey(), ctx.params().n,
                                      ctx.params().gadget, rng,
                                      ctx.noiseParams());
    testPoly_ = makeBootstrapTestPoly(ctx.basis());
    for (size_t i = 0; i < secondaries; ++i) {
        nodes_.push_back(std::make_unique<SecondaryNode>(
            ctx.basis(), &brk_, &testPoly_));
    }
    faultSpecs_.resize(secondaries);
    // Assignment rather than resize: SimulatedLink owns a mutex and
    // is therefore not move-insertable.
    out_ = std::vector<SimulatedLink>(secondaries);
    in_ = std::vector<SimulatedLink>(secondaries);
}

DistributedBootstrapper::DistributedBootstrapper(
    const DistributedBootstrapper& other, size_t secondaries)
    : ctx_(other.ctx_), brk_(other.brk_), packKeys_(other.packKeys_),
      testPoly_(other.testPoly_)
{
    HEAP_CHECK(secondaries >= 1 && secondaries <= 63,
               "bad secondary count");
    for (size_t i = 0; i < secondaries; ++i) {
        nodes_.push_back(std::make_unique<SecondaryNode>(
            ctx_->basis(), &brk_, &testPoly_));
    }
    faultSpecs_.resize(secondaries);
    out_ = std::vector<SimulatedLink>(secondaries);
    in_ = std::vector<SimulatedLink>(secondaries);
}

void
DistributedBootstrapper::setWorkers(size_t workers)
{
    HEAP_CHECK(workers >= 1 && workers <= 256, "bad worker count");
    workers_ = workers;
}

void
DistributedBootstrapper::setFaults(const FaultSpec& spec)
{
    for (auto& s : faultSpecs_) {
        s = spec;
    }
}

void
DistributedBootstrapper::setSecondaryFaults(size_t s,
                                            const FaultSpec& spec)
{
    HEAP_CHECK(s < faultSpecs_.size(), "bad secondary index " << s);
    faultSpecs_[s] = spec;
}

void
DistributedBootstrapper::setRetryPolicy(const RetryPolicy& policy)
{
    HEAP_CHECK(policy.basePolls >= 1 && policy.maxPolls >= policy.basePolls,
               "bad retry policy: polls");
    HEAP_CHECK(policy.maxRetries <= 64, "bad retry policy: cap");
    retry_ = policy;
}

double
DistributedBootstrapper::bootBlindRotateSigma() const
{
    const auto basis = ctx_->basis();
    return tfhe::blindRotateSigma(brk_, basis->size(), basis->n());
}

std::vector<rlwe::Ciphertext>
DistributedBootstrapper::rotateLocal(
    std::span<const lwe::LweCiphertext> lwes) const
{
    return tfhe::blindRotateBatch(lwes, testPoly_, brk_);
}

/**
 * One batch exchange with secondary `s`, playing both protocol roles
 * over the faulty links (the secondary's engine runs when the primary
 * pumps its inbound link, as the paper's nodes run when frames hit
 * their CMACs). Touches only this secondary's links, node, and stats,
 * so exchanges for different secondaries are data-race-free and the
 * per-link fault streams see identical message sequences for every
 * worker count.
 */
std::vector<rlwe::Ciphertext>
DistributedBootstrapper::exchangeRotate(
    size_t s, uint64_t seq, std::span<const lwe::LweCiphertext> lwes,
    ExchangeStats& st) const
{
    HEAP_CHECK(s < nodes_.size(), "bad secondary index " << s);
    HEAP_CHECK(seq != 0, "sequence number 0 marks unreadable frames");
    HEAP_CHECK(!lwes.empty(), "empty batch");
    const size_t outBytesBefore = out_[s].bytesTransferred();
    const size_t inBytesBefore = in_[s].bytesTransferred();
    const size_t expected = lwes.size();
    ByteWriter pw;
    pw.u64(lwes.size());
    for (const auto& ct : lwes) {
        lwe::saveLwe(ct, pw);
    }
    const std::vector<uint8_t>& payload = pw.bytes();
    const auto framed = frameMessage(FrameType::Batch, seq, payload);
    std::vector<rlwe::Ciphertext> rotated(expected);

    // The secondary's protocol state for this bootstrap: framed
    // replies cached by sequence number, so duplicated or NACKed
    // batches are answered without recomputing (processed() stays
    // exact under faults).
    std::map<uint64_t, std::vector<uint8_t>> replyCache;
    bool accepted = false;

    auto pumpSecondary = [&] {
        while (auto msg = out_[s].tryReceive()) {
            Frame f;
            try {
                f = parseFrame(*msg);
            } catch (const UserError&) {
                ++st.corruptFrames;
                ++st.nacks;
                in_[s].send(frameMessage(FrameType::Nack, 0, {}));
                continue;
            }
            if (f.type == FrameType::Nack) {
                // The primary saw a corrupt reply: resend the cached
                // frame rather than recomputing the rotation.
                if (auto it = replyCache.find(f.seq);
                    it != replyCache.end()) {
                    in_[s].send(it->second);
                }
                continue;
            }
            if (f.type != FrameType::Batch) {
                ++st.duplicateFrames;
                continue;
            }
            if (auto it = replyCache.find(f.seq);
                it != replyCache.end()) {
                ++st.duplicateFrames;
                in_[s].send(it->second);
                continue;
            }
            std::vector<uint8_t> reply;
            try {
                reply = nodes_[s]->processBatch(f.payload);
            } catch (const UserError&) {
                // Cleared the CRC but failed validation: ask for a
                // resend instead of crashing the node.
                ++st.nacks;
                in_[s].send(frameMessage(FrameType::Nack, f.seq, {}));
                continue;
            }
            auto framedReply = frameMessage(FrameType::Acc, f.seq, reply);
            replyCache.emplace(f.seq, framedReply);
            in_[s].send(std::move(framedReply));
        }
    };

    for (size_t attempt = 0;
         attempt <= retry_.maxRetries && !accepted; ++attempt) {
        if (attempt > 0) {
            ++st.retransmits;
        }
        out_[s].send(framed);
        const size_t shift = std::min<size_t>(attempt, 16);
        const size_t polls =
            std::min(retry_.maxPolls, retry_.basePolls << shift);
        bool resendNow = false;
        // One virtual-time poll per step; pollWait yields the CPU
        // between misses so waiting exchanges don't starve compute
        // threads (poll counts — and so RetryPolicy semantics and the
        // traffic counters — are exactly as before).
        pollWait(polls, [&] {
            pumpSecondary();
            while (auto msg = in_[s].tryReceive()) {
                Frame f;
                try {
                    f = parseFrame(*msg);
                } catch (const UserError&) {
                    // Corrupt reply: NACK so the secondary resends its
                    // cached copy.
                    ++st.corruptFrames;
                    ++st.nacks;
                    out_[s].send(frameMessage(FrameType::Nack, seq, {}));
                    continue;
                }
                if (f.type == FrameType::Nack) {
                    // The secondary could not read our batch.
                    resendNow = true;
                    break;
                }
                if (f.type != FrameType::Acc || f.seq != seq
                    || accepted) {
                    ++st.duplicateFrames;
                    continue;
                }
                auto accs = loadAccumulatorReply(f.payload, expected,
                                                 ctx_->basis());
                st.accBytesIn += msg->size();
                for (size_t i = 0; i < accs.size(); ++i) {
                    rotated[i] = std::move(accs[i]);
                }
                accepted = true;
            }
            return accepted || resendNow;
        });
    }

    if (accepted) {
        st.lweBytesOut += framed.size();
    } else {
        // Retries exhausted: the secondary is dead for this exchange.
        // Reclaim its share on the primary — correct result, slower
        // wall-clock — exactly as a lost FPGA would be absorbed.
        st.dead = true;
        auto accs = tfhe::blindRotateBatch(lwes, testPoly_, brk_);
        for (size_t i = 0; i < accs.size(); ++i) {
            rotated[i] = std::move(accs[i]);
        }
    }
    st.wireOut = out_[s].bytesTransferred() - outBytesBefore;
    st.wireIn = in_[s].bytesTransferred() - inBytesBefore;
    return rotated;
}

void
DistributedBootstrapper::resetProtocolRun() const
{
    ++runCounter_;
    const size_t nsec = nodes_.size();
    for (size_t s = 0; s < nsec; ++s) {
        out_[s].clear();
        in_[s].clear();
        if (faultSpecs_[s].enabled()) {
            const uint64_t base =
                faultSpecs_[s].seed ^ (runCounter_ * 0x10001ULL);
            out_[s].setFaults(faultSpecs_[s], mixSeed(base + 2 * s));
            in_[s].setFaults(faultSpecs_[s], mixSeed(base + 2 * s + 1));
        } else {
            out_[s].clearFaults();
            in_[s].clearFaults();
        }
    }
}

ckks::Ciphertext
DistributedBootstrapper::bootstrap(const ckks::Ciphertext& in) const
{
    // Links, traffic counters, and fault RNG streams are per-object
    // state: concurrent bootstrap() calls serialize here.
    std::lock_guard<std::mutex> bootLock(bootMutex_);
    const auto basis = ctx_->basis();
    const size_t n = basis->n();

    // Steps 1-2 + extraction on the primary (the same front phase the
    // serving runtime's pipeline stage runs).
    FrontPhase fp = runFrontPhase(*ctx_, in, 1.0,
                                  "distributed bootstrap");
    const ModSwitched& ms = fp.ms;

    // Fresh protocol run: drop anything a previous run left queued
    // (late duplicates, delayed frames) and restart the per-link fault
    // streams from seeds derived off the spec seed, the link index,
    // and the run ordinal.
    resetProtocolRun();
    const size_t nsec = nodes_.size();

    // Partition the N extracted ciphertexts evenly over all nodes;
    // the primary keeps the first share (Section V).
    const size_t nodesTotal = nsec + 1;
    const size_t share = (n + nodesTotal - 1) / nodesTotal;
    traffic_ = DistributedTraffic{};

    // Slice one LWE batch per secondary off the extracted items
    // (unframed; the exchange serializes and frames it with this
    // batch's sequence number).
    struct Plan {
        size_t begin = 0, end = 0;
        std::vector<lwe::LweCiphertext> lwes;
    };
    std::vector<Plan> plans(nsec);
    for (size_t s = 0; s < nsec; ++s) {
        const size_t begin = std::min(n, (s + 1) * share);
        const size_t end = std::min(n, (s + 2) * share);
        if (begin >= end) {
            continue;
        }
        Plan plan{begin, end, {}};
        plan.lwes.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
            plan.lwes.push_back(std::move(fp.items[i]));
        }
        plans[s] = std::move(plan);
        ++traffic_.batches;
    }

    // Primary's own share computes while the secondaries work.
    std::vector<rlwe::Ciphertext> rotated(n);
    {
        std::vector<lwe::LweCiphertext> mine;
        mine.reserve(std::min(n, share));
        for (size_t i = 0; i < std::min(n, share); ++i) {
            mine.push_back(std::move(fp.items[i]));
        }
        auto accs = rotateLocal(mine);
        for (size_t i = 0; i < accs.size(); ++i) {
            rotated[i] = std::move(accs[i]);
        }
    }

    // Per-secondary exchanges run concurrently when workers_ > 1 (the
    // paper's nodes are physically parallel). Each exchange touches
    // only its own links, node, stats slot, and slice of rotated;
    // stats are reduced serially below, so the accounting is exact
    // and identical for every worker count.
    std::vector<ExchangeStats> stats(nsec);
    const size_t grain = (nsec + workers_ - 1) / workers_;
    parallelFor(0, nsec, grain, [&](size_t s) {
        const Plan& plan = plans[s];
        if (plan.begin >= plan.end) {
            return;
        }
        // seq = s + 1: nonzero, and unique per link pair within a run.
        auto accs = exchangeRotate(s, s + 1, plan.lwes, stats[s]);
        for (size_t i = 0; i < accs.size(); ++i) {
            rotated[plan.begin + i] = std::move(accs[i]);
        }
    });
    for (const ExchangeStats& st : stats) {
        traffic_.lweBytesOut += st.lweBytesOut;
        traffic_.accBytesIn += st.accBytesIn;
        traffic_.wireBytesOut += st.wireOut;
        traffic_.wireBytesIn += st.wireIn;
        traffic_.retransmits += st.retransmits;
        traffic_.nacks += st.nacks;
        traffic_.corruptFrames += st.corruptFrames;
        traffic_.duplicateFrames += st.duplicateFrames;
        if (st.dead) {
            ++traffic_.deadSecondaries;
            ++traffic_.reclaimedBatches;
        }
    }

    // Repack + finish on the primary. The output budget is computed
    // analytically on the primary alone, so it is byte-identical
    // regardless of link faults, retries, or reclaimed shares.
    rlwe::Ciphertext ctKq = tfhe::packRlwes(rotated, packKeys_);
    ckks::Ciphertext out = finishBootstrap(std::move(ctKq), ms, *basis,
                                           in.scale, in.slots);
    out.budget = bootstrapOutputBudget(
        *ctx_, in, tfhe::blindRotateSigma(brk_, basis->size(), n),
        *basis);
    ctx_->noiseGuardCheck(out, "bootstrap");
    return out;
}

} // namespace heap::boot
