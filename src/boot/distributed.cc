#include "boot/distributed.h"

#include "ckks/serialize.h"
#include "common/check.h"
#include "common/parallel.h"
#include "lwe/serialize.h"

namespace heap::boot {

void
SimulatedLink::send(std::vector<uint8_t> message)
{
    std::lock_guard<std::mutex> lock(m_);
    bytes_ += message.size();
    ++messages_;
    queue_.push_back(std::move(message));
}

std::vector<uint8_t>
SimulatedLink::receive()
{
    std::lock_guard<std::mutex> lock(m_);
    HEAP_CHECK(!queue_.empty(), "receive on an empty link");
    auto msg = std::move(queue_.front());
    queue_.erase(queue_.begin());
    return msg;
}

SecondaryNode::SecondaryNode(std::shared_ptr<const math::RnsBasis> basis,
                             const tfhe::BlindRotateKey* brk,
                             const math::RnsPoly* testPoly)
    : basis_(std::move(basis)), brk_(brk), testPoly_(testPoly)
{
}

std::vector<uint8_t>
SecondaryNode::processBatch(std::span<const uint8_t> batch) const
{
    ByteReader r(batch);
    const uint64_t count = r.u64();
    HEAP_CHECK(count >= 1 && count <= basis_->n(),
               "corrupt batch header");
    std::vector<lwe::LweCiphertext> lwes;
    lwes.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        lwes.push_back(lwe::loadLwe(r));
    }
    HEAP_CHECK(r.atEnd(), "trailing bytes in batch");

    const auto accs = tfhe::blindRotateBatch(lwes, *testPoly_, *brk_);
    processed_.fetch_add(lwes.size(), std::memory_order_relaxed);

    ByteWriter w;
    w.u64(accs.size());
    for (const auto& acc : accs) {
        ckks::saveRlwe(acc, w);
    }
    return w.bytes();
}

DistributedBootstrapper::DistributedBootstrapper(
    const ckks::Context& ctx, size_t secondaries,
    rlwe::GadgetParams brGadget)
    : ctx_(&ctx)
{
    HEAP_CHECK(secondaries >= 1 && secondaries <= 63,
               "bad secondary count");
    HEAP_CHECK(ctx.params().auxLimbs >= 1,
               "scheme-switching bootstrap needs an auxiliary prime p");
    const rlwe::GadgetParams g = brGadget.digitsPerLimb > 0
                                     ? brGadget
                                     : ctx.params().gadget;
    g.validateFor(*ctx.basis());
    Rng& rng = ctx.rng();
    brk_ = tfhe::makeBlindRotateKey(ctx.secretKey(),
                                    ctx.secretKey().coeffs(), g, rng,
                                    ctx.noiseParams());
    packKeys_ = tfhe::makePackingKeys(ctx.secretKey(), ctx.params().n,
                                      ctx.params().gadget, rng,
                                      ctx.noiseParams());
    testPoly_ = makeBootstrapTestPoly(ctx.basis());
    for (size_t i = 0; i < secondaries; ++i) {
        nodes_.push_back(std::make_unique<SecondaryNode>(
            ctx.basis(), &brk_, &testPoly_));
    }
    // Assignment rather than resize: SimulatedLink owns a mutex and
    // is therefore not move-insertable.
    out_ = std::vector<SimulatedLink>(secondaries);
    in_ = std::vector<SimulatedLink>(secondaries);
}

void
DistributedBootstrapper::setWorkers(size_t workers)
{
    HEAP_CHECK(workers >= 1 && workers <= 256, "bad worker count");
    workers_ = workers;
}

ckks::Ciphertext
DistributedBootstrapper::bootstrap(const ckks::Ciphertext& in) const
{
    HEAP_CHECK(in.level() == 1,
               "bootstrap expects a level-1 (single limb) ciphertext");
    const auto basis = ctx_->basis();
    const size_t n = basis->n();
    const uint64_t twoN = 2 * n;

    // Steps 1-2 on the primary.
    rlwe::Ciphertext ct = in.ct;
    ct.toCoeff();
    const ModSwitched ms = modSwitchSplit(ct, *basis);

    // Partition the N extracted ciphertexts evenly over all nodes;
    // the primary keeps the first share (Section V).
    const size_t nodesTotal = nodes_.size() + 1;
    const size_t share = (n + nodesTotal - 1) / nodesTotal;
    traffic_ = DistributedTraffic{};

    // Distribute: one secondary's whole batch before the next one.
    for (size_t s = 0; s < nodes_.size(); ++s) {
        const size_t begin = std::min(n, (s + 1) * share);
        const size_t end = std::min(n, (s + 2) * share);
        if (begin >= end) {
            continue;
        }
        ByteWriter w;
        w.u64(end - begin);
        for (size_t i = begin; i < end; ++i) {
            lwe::saveLwe(lwe::extractLwe(ms.aMs, ms.bMs, i, twoN), w);
        }
        out_[s].send(w.bytes());
        ++traffic_.batches;
    }

    // Primary's own share computes while the secondaries work.
    std::vector<rlwe::Ciphertext> rotated(n);
    {
        std::vector<lwe::LweCiphertext> mine;
        for (size_t i = 0; i < std::min(n, share); ++i) {
            mine.push_back(lwe::extractLwe(ms.aMs, ms.bMs, i, twoN));
        }
        auto accs = tfhe::blindRotateBatch(mine, testPoly_, brk_);
        for (size_t i = 0; i < accs.size(); ++i) {
            rotated[i] = std::move(accs[i]);
        }
    }

    // Secondaries process and stream results back, concurrently when
    // workers_ > 1 (the paper's nodes are physically parallel). Each
    // index touches only its own links and its own slice of rotated;
    // the shared byte totals accumulate through atomics, so the
    // traffic accounting is exact for every worker count.
    const size_t nsec = nodes_.size();
    const size_t grain = (nsec + workers_ - 1) / workers_;
    std::atomic<size_t> lweBytesOut{0};
    parallelFor(0, nsec, grain, [&](size_t s) {
        if (out_[s].empty()) {
            return;
        }
        const auto batch = out_[s].receive();
        lweBytesOut.fetch_add(batch.size(), std::memory_order_relaxed);
        in_[s].send(nodes_[s]->processBatch(batch));
    });
    traffic_.lweBytesOut = lweBytesOut.load();
    std::atomic<size_t> accBytesIn{0};
    parallelFor(0, nsec, grain, [&](size_t s) {
        if (in_[s].empty()) {
            return;
        }
        const auto reply = in_[s].receive();
        accBytesIn.fetch_add(reply.size(), std::memory_order_relaxed);
        ByteReader r(reply);
        const uint64_t count = r.u64();
        const size_t begin = std::min(n, (s + 1) * share);
        for (uint64_t i = 0; i < count; ++i) {
            rotated[begin + i] = ckks::loadRlwe(r, basis);
        }
        HEAP_CHECK(r.atEnd(), "trailing bytes in reply");
    });
    traffic_.accBytesIn = accBytesIn.load();

    // Repack + finish on the primary.
    rlwe::Ciphertext ctKq = tfhe::packRlwes(rotated, packKeys_);
    return finishBootstrap(std::move(ctKq), ms, *basis, in.scale,
                           in.slots);
}

} // namespace heap::boot
