/**
 * @file
 * Multi-FPGA scheme-switching bootstrap timeline model (Sections V,
 * VI-E) and the amortized per-slot multiplication metric of Eq. 3.
 *
 * The model is anchored on the paper's measured stage split for the
 * fully packed case on eight FPGAs (0.0025 / 1.3303 / 0.1672 ms for
 * Algorithm 2's steps 1-2 / 3 / 4-5) and scales structurally:
 *
 *  - the BlindRotate stage scales with the per-FPGA ciphertext count
 *    ceil(n_br / fpgas) (the n_br knob of Section V) and with n_t,
 *  - communication uses the 100G CMAC link (458 cycles per RLWE
 *    ciphertext) and overlaps with compute per the paper's schedule,
 *  - key traffic uses the HBM bandwidth and the Section III-C key
 *    sizes.
 *
 * firstPrinciplesBlindRotateMs() additionally reports the unanchored
 * datapath estimate; EXPERIMENTS.md discusses the gap between it and
 * the paper's figure.
 */

#ifndef HEAP_HW_BOOTSTRAP_MODEL_H
#define HEAP_HW_BOOTSTRAP_MODEL_H

#include "hw/op_model.h"

namespace heap::hw {

/** Timeline of one scheme-switching bootstrap. */
struct BootstrapBreakdown {
    double modSwitchMs = 0;   ///< Algorithm 2 steps 1-2
    double blindRotateMs = 0; ///< step 3 compute (dominant)
    double commMs = 0;        ///< non-overlapped FPGA-to-FPGA traffic
    double finishMs = 0;      ///< repack + steps 4-5
    double totalMs = 0;
    /// Application bytes the protocol must deliver (loss-free volume).
    double commGoodputBytes = 0;
    /// Bytes actually crossing the links once retransmits are paid:
    /// goodput / (1 - lossRate). Equals goodput on reliable links.
    double commWireBytes = 0;
};

class BootstrapModel {
  public:
    BootstrapModel(const FpgaConfig& cfg, const HeapParams& p,
                   size_t numFpgas);

    size_t numFpgas() const { return fpgas_; }

    /** Timeline for bootstrapping with `slots` packed slots. */
    BootstrapBreakdown bootstrap(size_t slots) const;

    /**
     * Amortized per-slot multiplication time (Eq. 3) in microseconds.
     * Uses the paper's accounting: n = N message coefficients and
     * l = limbs at the starting bootstrapping modulus minus the
     * depth-1 bootstrap.
     */
    double tMultPerSlotUs(size_t slots) const;

    /** Bytes of BlindRotate keys read per bootstrap (Section III-C). */
    double keyReadBytes() const { return params_.brkTotalBytes(); }

    /** Conventional bootstrapping's key traffic (~32 GB). */
    double conventionalKeyReadBytes() const
    {
        return HeapParams::conventionalKeyBytes();
    }

    /** Unanchored first-principles estimate of the BlindRotate stage. */
    double firstPrinciplesBlindRotateMs(size_t slots) const;

    /**
     * Modeled time for ONE node to blind-rotate a batch of `count`
     * LWE ciphertexts (the per-batch compute term the serving
     * scheduler packs against; same anchor scaling as bootstrap()).
     */
    double blindRotateBatchMs(size_t count) const;

    /**
     * Modeled 100G-link time to ship a `count`-ciphertext batch to a
     * secondary and its accumulators back, including the retransmit
     * inflation of setLinkLossRate(). Zero-cost batches don't exist:
     * the frame header and protocol turnaround are folded in as one
     * link round trip.
     */
    double batchCommMs(size_t count) const;

    /**
     * Fraction of frames lost/corrupted per link traversal and paid
     * for by retransmission (the fault-tolerance layer of the
     * functional model). 0 (the default) reproduces the paper's
     * reliable-link numbers; [0, 1) inflates the wire bytes by
     * 1 / (1 - rate) and re-derives the non-overlapped comm time.
     */
    void setLinkLossRate(double rate);
    double linkLossRate() const { return linkLossRate_; }

    /**
     * Modeled sustained service rate of ONE pod (this model's
     * `numFpgas`-FPGA group running back-to-back bootstraps at
     * `slots` packed slots), in bootstraps per second. The serving
     * layer's autoscaling oracle.
     */
    double podThroughputRps(size_t slots) const;

    /**
     * Smallest number of pods whose combined modeled throughput
     * covers `offeredRps` (k-FPGA scaling as the autoscaling oracle:
     * pods needed = ceil(offered / podThroughputRps)). Zero offered
     * load still needs one pod (a cluster cannot scale to nothing).
     */
    size_t podsNeeded(double offeredRps, size_t slots) const;

    const OpCostModel& ops() const { return ops_; }
    const HeapParams& params() const { return params_; }

  private:
    FpgaConfig cfg_;
    HeapParams params_;
    size_t fpgas_;
    OpCostModel ops_;
    double linkLossRate_ = 0;
};

} // namespace heap::hw

#endif // HEAP_HW_BOOTSTRAP_MODEL_H
