#include "hw/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace heap::hw {

void
ScheduleTimeline::add(std::string lane, double startMs, double endMs,
                      char glyph, std::string label)
{
    HEAP_CHECK(endMs >= startMs, "event ends before it starts");
    if (std::find(laneOrder_.begin(), laneOrder_.end(), lane)
        == laneOrder_.end()) {
        laneOrder_.push_back(lane);
    }
    events_.push_back(TimelineEvent{std::move(lane), startMs, endMs,
                                    glyph, std::move(label)});
}

double
ScheduleTimeline::spanMs() const
{
    double end = 0;
    for (const auto& e : events_) {
        end = std::max(end, e.endMs);
    }
    return end;
}

double
ScheduleTimeline::utilization(const std::string& lane) const
{
    double busy = 0;
    for (const auto& e : events_) {
        if (e.lane == lane) {
            busy += e.endMs - e.startMs;
        }
    }
    const double span = spanMs();
    return span > 0 ? busy / span : 0;
}

std::string
ScheduleTimeline::render(size_t width) const
{
    const double span = spanMs();
    HEAP_CHECK(span > 0, "empty timeline");
    size_t laneWidth = 0;
    for (const auto& l : laneOrder_) {
        laneWidth = std::max(laneWidth, l.size());
    }
    std::ostringstream oss;
    for (const auto& lane : laneOrder_) {
        std::string bar(width, '.');
        for (const auto& e : events_) {
            if (e.lane != lane) {
                continue;
            }
            auto col = [&](double t) {
                return std::min(
                    width - 1,
                    static_cast<size_t>(t / span
                                        * static_cast<double>(width)));
            };
            const size_t c0 = col(e.startMs);
            const size_t c1 = std::max(c0, col(e.endMs));
            for (size_t c = c0; c <= c1; ++c) {
                bar[c] = e.glyph;
            }
        }
        oss << lane << std::string(laneWidth - lane.size(), ' ') << " |"
            << bar << "| "
            << static_cast<int>(100.0 * utilization(lane) + 0.5)
            << "%\n";
    }
    oss << std::string(laneWidth, ' ') << " 0" << std::string(width - 6, ' ')
        << std::fixed;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fms", span);
    oss << buf << "\n";
    return oss.str();
}

ScheduleTimeline
buildBootstrapTimeline(const BootstrapModel& model, size_t slots)
{
    const auto b = model.bootstrap(slots);
    const size_t fpgas = model.numFpgas();
    const auto& p = model.params();
    const double ctsPerFpga = std::ceil(
        static_cast<double>(slots) / static_cast<double>(fpgas));
    // Time to ship one FPGA's batch over the 100G link (each way).
    const double batchMs =
        ctsPerFpga * p.lweBytes() / (100e9 / 8.0) * 1e3;
    const double brMs = b.blindRotateMs;

    ScheduleTimeline tl;
    const double t0 = b.modSwitchMs;
    tl.add("fpga0 (primary)", 0, t0, 'M', "ModulusSwitch");
    // Distribution: one secondary's batch at a time (Section V).
    for (size_t j = 1; j < fpgas; ++j) {
        const double s = t0 + static_cast<double>(j - 1) * batchMs;
        tl.add("link out", s, s + batchMs, '>', "batch to fpga" +
                                                    std::to_string(j));
        // Secondary computes as soon as its batch lands; results
        // stream back during the tail of its compute window.
        const std::string lane = "fpga" + std::to_string(j);
        tl.add(lane, s + batchMs, s + batchMs + brMs, '#',
               "BlindRotate");
        tl.add("link in", s + batchMs + brMs - batchMs,
               s + batchMs + brMs, '<', "results");
    }
    // Primary's own share computes during/after distribution.
    const double primaryStart =
        t0 + static_cast<double>(fpgas - 1) * batchMs;
    tl.add("fpga0 (primary)", t0, primaryStart, 'D', "distribute");
    tl.add("fpga0 (primary)", primaryStart, primaryStart + brMs, '#',
           "BlindRotate");
    // Repack + finish once everything has landed.
    double lastIn = primaryStart + brMs;
    for (size_t j = 1; j < fpgas; ++j) {
        lastIn = std::max(lastIn, t0 + static_cast<double>(j) * batchMs
                                      + brMs);
    }
    tl.add("fpga0 (primary)", lastIn, lastIn + b.finishMs, 'R',
           "repack+finish");
    return tl;
}

ScheduleTimeline
buildServePipelineTimeline(const BootstrapModel& model,
                           const ServePipelineSpec& spec)
{
    HEAP_CHECK(spec.requests >= 1 && spec.itemsPerRequest >= 1
                   && spec.batchItems >= 1,
               "empty serve pipeline spec");
    const auto b = model.bootstrap(spec.itemsPerRequest);
    const size_t lanes = spec.secondaries + 1;

    ScheduleTimeline tl;
    // Register the lanes in dataflow order so the chart reads
    // front-to-finish even though events are appended greedily.
    tl.add("front", 0, 0, 'F');
    std::vector<double> laneFree(lanes, 0.0);
    for (size_t k = 0; k < lanes; ++k) {
        tl.add("rotate:" + std::to_string(k), 0, 0, '#');
    }
    tl.add("finish", 0, 0, 'R');

    double frontFree = 0;
    double finishFree = 0;
    for (size_t r = 0; r < spec.requests; ++r) {
        // Serial front lane: one modswitch + extraction per request.
        const double frontEnd = frontFree + b.modSwitchMs;
        tl.add("front", frontFree, frontEnd, 'F',
               "extract r" + std::to_string(r));
        frontFree = frontEnd;

        // Greedy batch dispatch: each fixed-size batch goes to the
        // earliest-free lane once the request's items exist; remote
        // lanes pay the link on top of the rotation.
        double lastAcc = frontEnd;
        size_t remaining = spec.itemsPerRequest;
        while (remaining > 0) {
            const size_t count = std::min(remaining, spec.batchItems);
            remaining -= count;
            size_t lane = 0;
            for (size_t k = 1; k < lanes; ++k) {
                if (laneFree[k] < laneFree[lane]) {
                    lane = k;
                }
            }
            const double start = std::max(laneFree[lane], frontEnd);
            const double cost =
                model.blindRotateBatchMs(count)
                + (lane > 0 ? model.batchCommMs(count) : 0.0);
            tl.add("rotate:" + std::to_string(lane), start,
                   start + cost, '#', "batch r" + std::to_string(r));
            laneFree[lane] = start + cost;
            lastAcc = std::max(lastAcc, start + cost);
        }

        // Serial finish lane: repack as soon as the last accumulator
        // of THIS request lands — request r+1 may still be rotating.
        const double finStart = std::max(finishFree, lastAcc);
        tl.add("finish", finStart, finStart + b.finishMs, 'R',
               "repack r" + std::to_string(r));
        finishFree = finStart + b.finishMs;
    }
    return tl;
}

StageOccupancy
serveStageOccupancy(const ScheduleTimeline& tl)
{
    const double span = tl.spanMs();
    StageOccupancy occ;
    if (span <= 0) {
        return occ;
    }
    for (const TimelineEvent& e : tl.events()) {
        const double busy = e.endMs - e.startMs;
        if (e.lane == "front") {
            occ.front += busy / span;
        } else if (e.lane.rfind("rotate", 0) == 0) {
            occ.rotate += busy / span;
        } else if (e.lane == "finish") {
            occ.finish += busy / span;
        }
    }
    return occ;
}

} // namespace heap::hw
