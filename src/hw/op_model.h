/**
 * @file
 * Cycle-level cost model of HEAP's single-FPGA datapath (Sections
 * IV-A..IV-E): NTT, elementwise ops, automorph, KeySwitch, and the
 * TFHE BlindRotate. Reproduces Tables III and IV.
 *
 * Compute cycles follow the 512-FU radix-2 datapath: two limbs are
 * processed concurrently (one coefficient from each of two same-prime
 * limbs per URAM word, Section IV-D), so the aggregate butterfly rate
 * is modFUs per cycle. Memory terms use the 32x256-bit HBM interface;
 * op latency is max(compute, memory) since transfers overlap compute
 * through the RD/WR FIFOs.
 */

#ifndef HEAP_HW_OP_MODEL_H
#define HEAP_HW_OP_MODEL_H

#include "hw/config.h"

namespace heap::hw {

/** TFHE-library-scale parameters for the Table III BlindRotate row. */
struct TfheOpParams {
    size_t n = 1024;  ///< TFHE ring dimension
    size_t nt = 630;  ///< LWE dimension
    int d = 2;        ///< decomposition degree
    int h = 1;        ///< GLWE mask
    size_t limbs = 1; ///< single torus limb
};

/**
 * Depth of stage overlap in the BlindRotate loop (Section IV-E): with
 * fine-grained pipelining, the rotate / decompose / NTT / MAC / iNTT
 * stages of consecutive iterations execute concurrently, so steady-
 * state throughput is set by the deepest stage rather than the stage
 * sum. Eight concurrent stages reflect the datapath's structure.
 */
inline constexpr double kPipelineOverlap = 8.0;

/** Per-operation latency model. */
class OpCostModel {
  public:
    OpCostModel(const FpgaConfig& cfg, const HeapParams& p)
        : cfg_(cfg), params_(p)
    {
    }

    // --- primitive kernels ------------------------------------------
    /** Cycles for one negacyclic NTT over one limb of size n. */
    double nttCyclesPerLimb(size_t n) const;
    /** Cycles for an elementwise pass over one limb (N coefficients). */
    double pointwiseCyclesPerLimb(size_t n) const;
    /** Cycles for a KeySwitch at `limbs` active limbs (ModUp/Down
     *  basis-conversion datapath, Section IV-E). */
    double keySwitchCycles(size_t limbs) const;

    // --- Table III rows (times in ms) --------------------------------
    double addMs() const;
    double multMs() const;
    double rescaleMs() const;
    double rotateMs() const;
    /** Single TFHE BlindRotate at library-scale parameters. */
    double blindRotateMs(const TfheOpParams& tp = {}) const;

    // --- Table IV -----------------------------------------------------
    /** Full-ciphertext NTTs (2 polys x L limbs) per second. */
    double nttThroughputOpsPerSec() const;

    /** Seconds to move `bytes` through HBM. */
    double memSeconds(double bytes) const
    {
        return bytes / cfg_.hbmBandwidthBps;
    }

    double cyclesToMs(double cycles) const
    {
        return cycles / cfg_.kernelClockHz * 1e3;
    }

  private:
    FpgaConfig cfg_;
    HeapParams params_;
};

} // namespace heap::hw

#endif // HEAP_HW_OP_MODEL_H
